// Chaos-soak benchmark: throughput of the cross-layer fault-injection bus.
//
// Measures how fast the stack survives seeded random fault plans in each of
// the three mission scenarios (boot chain, AXI-backed accelerator transfer,
// hypervisor cyclic plan), and reports the campaign outcome as counters:
// plans run, missions survived, faults fired. The robustness PR's acceptance
// envelope — never hang, always a clean Status — is exercised here at scale.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "axi/hls_axi.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "boot/loadlist.hpp"
#include "dataflow/taskgraph.hpp"
#include "fault/injector.hpp"
#include "hls/flow.hpp"
#include "hv/hypervisor.hpp"
#include "nxmap/bitstream.hpp"

namespace {

using namespace hermes;

constexpr std::string_view kBootPoints[] = {
    "flash.rot.replica", "flash.rot.voted", "spw.frame.corrupt",
    "spw.frame.drop"};
constexpr std::string_view kAxiPoints[] = {
    "axi.ar.stall", "axi.aw.stall", "axi.r.stall",
    "axi.r.corrupt", "axi.r.slverr", "axi.b.slverr"};
constexpr std::string_view kHvPoints[] = {"hv.job.overrun",
                                          "hv.partition.crash"};
constexpr std::string_view kEfpgaPoints[] = {
    "efpga.prog.header.corrupt", "efpga.prog.frame.corrupt",
    "efpga.prog.frame.drop", "efpga.config.rot"};
constexpr std::string_view kDataflowPoints[] = {
    "df.node.transient", "df.node.overrun", "df.node.permanent"};

std::vector<std::uint8_t> bench_bitstream(unsigned frames_count,
                                          std::size_t words_per_frame) {
  std::vector<nx::BitstreamFrame> frames(frames_count);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].column = static_cast<std::uint32_t>(f);
    for (std::size_t w = 0; w < words_per_frame; ++w) {
      frames[f].words.push_back(
          static_cast<std::uint32_t>((f << 20) ^ (w * 0x9E3779B9u)));
    }
  }
  return nx::pack_raw_bitstream(/*device_id=*/0xBEC5, frames);
}

void BM_ChaosBoot(benchmark::State& state) {
  std::uint64_t plans = 0, survived = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(fault::make_random_plan(seed++, kBootPoints));
    boot::BootEnvironment env;
    env.attach_injector(&injector);
    std::vector<std::uint8_t> bl1(1024, 0x11);
    boot::LoadList list;
    boot::LoadEntry app;
    app.kind = boot::LoadKind::kBl2;
    app.name = "app";
    app.dest_addr = boot::MemoryMap::kDdrBase;
    list.entries.push_back(app);
    std::vector<std::vector<std::uint8_t>> images = {
        std::vector<std::uint8_t>(2048, 0x22)};
    boot::stage_boot_media(env, bl1, list, images);
    const boot::BootResult result = boot::run_boot_chain(env);
    ++plans;
    survived += result.status.ok() ? 1 : 0;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(result.report.total_cycles);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosBoot)->Unit(benchmark::kMillisecond);

void BM_ChaosAxi(benchmark::State& state) {
  const char* source = R"(
    void scale(int32_t data[32], int factor) {
      for (int i = 0; i < 32; i = i + 1) {
        data[i] = data[i] * factor + 1;
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "scale";
  auto flow = hls::run_flow(source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }
  const axi::AxiMap map = axi::default_axi_map(flow.value().function);

  std::uint64_t plans = 0, survived = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(fault::make_random_plan(seed++, kAxiPoints));
    axi::AxiSlaveMemory ddr(1 << 16, axi::MemoryTiming{});
    ddr.attach_injector(&injector);
    for (std::size_t i = 0; i < 32; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i * 5 + 2, 4);
    }
    axi::MasterConfig config;
    config.watchdog_cycles = 10'000;
    auto run = axi::run_with_axi(flow.value(), {3}, ddr, map,
                                 axi::AxiMode::kDmaBurst, {}, 2'000'000,
                                 config);
    ++plans;
    survived += run.ok() ? 1 : 0;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(run.ok());
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosAxi)->Unit(benchmark::kMillisecond);

void BM_ChaosHypervisor(benchmark::State& state) {
  std::uint64_t plans = 0, restarts = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    hv::HvConfig config;
    config.plan.major_frame = 1000;
    config.plan.per_core.assign(hv::kNumCores, {});
    config.plan.per_core[0] = {{0, 450, 0, 0}, {500, 450, 1, 0}};
    hv::PartitionConfig p0;
    p0.name = "aocs";
    p0.region = {0x0000, 0x1000};
    p0.profile = {1000, 0, 200};
    hv::PartitionConfig p1;
    p1.name = "vbn";
    p1.region = {0x1000, 0x1000};
    p1.profile = {1000, 0, 300};
    config.partitions = {p0, p1};
    config.hm_table[hv::HmEvent::kBudgetOverrun] =
        hv::HmAction::kRestartPartition;

    fault::FaultInjector injector(fault::make_random_plan(seed++, kHvPoints));
    hv::Hypervisor hv(config);
    hv.attach_injector(&injector);
    auto stats = hv.run(30'000);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().to_string().c_str());
      return;
    }
    ++plans;
    for (const hv::PartitionStats& partition : stats.value().partitions) {
      restarts += partition.restarts;
    }
    fires += injector.total_fires();
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["restarts"] = static_cast<double>(restarts);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosHypervisor)->Unit(benchmark::kMillisecond);

void BM_ChaosEfpgaProgramming(benchmark::State& state) {
  const std::vector<std::uint8_t> image = bench_bitstream(8, 64);
  std::uint64_t plans = 0, survived = 0, rewrites = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(
        fault::make_random_plan(seed++, kEfpgaPoints));
    boot::Soc soc;
    soc.attach_injector(&injector);
    const Status status = soc.program_efpga(image);
    ++plans;
    survived += status.ok() ? 1 : 0;
    rewrites += soc.efpga_stats().frame_rewrites +
                soc.efpga_stats().header_rewrites;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(soc.efpga_config_digest());
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["rewrites"] = static_cast<double>(rewrites);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosEfpgaProgramming)->Unit(benchmark::kMillisecond);

void BM_ChaosDataflowRetry(benchmark::State& state) {
  std::uint64_t plans = 0, survived = 0, retries = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(
        fault::make_random_plan(seed++, kDataflowPoints));
    df::TaskGraph graph;
    const std::size_t src = graph.add_task({"src", 2, 0, 2, 10});
    const std::size_t sink = graph.add_task({"sink", 3, 0, 3, 10});
    for (unsigned w = 0; w < 3; ++w) {
      const std::size_t worker =
          graph.add_task({"w" + std::to_string(w), 5 + w, 0, 4, 50});
      graph.connect(src, worker);
      graph.connect(worker, sink);
    }
    graph.sources = {src};
    graph.sinks = {sink};
    df::DataflowOptions options;
    options.injector = &injector;
    df::DataflowStats stats;
    options.stats_out = &stats;
    auto run = df::simulate_dataflow(graph, 8, options);
    ++plans;
    survived += run.ok() ? 1 : 0;
    retries += stats.node_retries;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(stats.makespan);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["retries"] = static_cast<double>(retries);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosDataflowRetry)->Unit(benchmark::kMillisecond);

// Readback-scrub throughput: how many configuration frames per second the
// scrub pass sustains under a steady static-upset drizzle.
void BM_EfpgaScrubThroughput(benchmark::State& state) {
  const auto frames_count = static_cast<unsigned>(state.range(0));
  const std::vector<std::uint8_t> image = bench_bitstream(frames_count, 64);
  fault::FaultSchedule rot;
  rot.probability = 0.05;  // ~1 upset per 20 frame scrubs
  fault::FaultPlan plan;
  plan.seed = 17;
  plan.points.push_back({"efpga.config.rot", rot});
  fault::FaultInjector injector(plan);
  boot::Soc soc;
  soc.attach_injector(&injector);
  if (const Status status = soc.program_efpga(image); !status.ok()) {
    state.SkipWithError(status.to_string().c_str());
    return;
  }

  std::uint64_t frames_scrubbed = 0, healed = 0;
  for (auto _ : state) {
    healed += soc.scrub_efpga();
    frames_scrubbed += frames_count;
  }
  state.counters["frames_per_sec"] = benchmark::Counter(
      static_cast<double>(frames_scrubbed), benchmark::Counter::kIsRate);
  state.counters["healed_words"] = static_cast<double>(healed);
  state.counters["silent"] =
      static_cast<double>(soc.efpga_stats().scrub_silent);
}
BENCHMARK(BM_EfpgaScrubThroughput)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Boots a full chain whose load list carries a bitstream, so the resulting
/// SoC has DDR payloads, a boot report and a programmed eFPGA — the state a
/// chaos scrub campaign wants to start from.
boot::BootResult boot_with_bitstream(boot::BootEnvironment& env,
                                     const std::vector<std::uint8_t>& image) {
  std::vector<std::uint8_t> bl1(1024, 0x11);
  boot::LoadList list;
  boot::LoadEntry bs;
  bs.kind = boot::LoadKind::kBitstream;
  bs.name = "accel";
  boot::LoadEntry bl2;
  bl2.kind = boot::LoadKind::kBl2;
  bl2.name = "app";
  bl2.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries = {bs, bl2};
  boot::stage_boot_media(env, bl1, list,
                         {image, std::vector<std::uint8_t>(2048, 0x22)});
  return boot::run_boot_chain(env);
}

// Fork-vs-reboot: a chaos scrub campaign needs one booted SoC per plan.
// Arg(0) pays the full boot chain per plan (the pre-fork baseline); Arg(1)
// boots once, snapshots, and Soc::fork()s the booted state per plan —
// copy-on-write pages make the fork O(page-table), not O(megabytes).
void BM_ChaosBootScrubCampaign(benchmark::State& state) {
  const bool forked = state.range(0) != 0;
  const std::vector<std::uint8_t> image = bench_bitstream(8, 64);
  fault::FaultSchedule rot;
  rot.probability = 0.5;
  fault::FaultPlan shape;
  shape.points.push_back({"efpga.config.rot", rot});

  boot::BootEnvironment booted;
  boot::SocSnapshot snapshot;
  if (forked) {
    if (!boot_with_bitstream(booted, image).status.ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    snapshot = booted.soc.snapshot();
  }

  std::uint64_t plans = 0, healed = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector;
    boot::Soc soc;
    if (forked) {
      // Fork-and-arm in one call: reseeded plan loaded, injector attached.
      soc = boot::Soc::fork(snapshot, injector, shape, seed++);
    } else {
      injector.load_plan(fault::reseeded(shape, seed++));
      boot::BootEnvironment env;
      if (!boot_with_bitstream(env, image).status.ok()) {
        state.SkipWithError("boot failed");
        return;
      }
      soc = std::move(env.soc);
      soc.attach_injector(&injector);
    }
    for (int pass = 0; pass < 4; ++pass) healed += soc.scrub_efpga();
    ++plans;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(soc.efpga_config_digest());
  }
  state.SetLabel(forked ? "forked" : "reboot");
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["healed_words"] = static_cast<double>(healed);
  state.counters["fires"] = static_cast<double>(fires);
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(plans), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ChaosBootScrubCampaign)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
