// Chaos-soak benchmark: throughput of the cross-layer fault-injection bus.
//
// Measures how fast the stack survives seeded random fault plans in each of
// the three mission scenarios (boot chain, AXI-backed accelerator transfer,
// hypervisor cyclic plan), and reports the campaign outcome as counters:
// plans run, missions survived, faults fired. The robustness PR's acceptance
// envelope — never hang, always a clean Status — is exercised here at scale.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "axi/hls_axi.hpp"
#include "axi/slave_memory.hpp"
#include "boot/bl.hpp"
#include "boot/loadlist.hpp"
#include "fault/injector.hpp"
#include "hls/flow.hpp"
#include "hv/hypervisor.hpp"

namespace {

using namespace hermes;

constexpr std::string_view kBootPoints[] = {
    "flash.rot.replica", "flash.rot.voted", "spw.frame.corrupt",
    "spw.frame.drop"};
constexpr std::string_view kAxiPoints[] = {
    "axi.ar.stall", "axi.aw.stall", "axi.r.stall",
    "axi.r.corrupt", "axi.r.slverr", "axi.b.slverr"};
constexpr std::string_view kHvPoints[] = {"hv.job.overrun",
                                          "hv.partition.crash"};

void BM_ChaosBoot(benchmark::State& state) {
  std::uint64_t plans = 0, survived = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(fault::make_random_plan(seed++, kBootPoints));
    boot::BootEnvironment env;
    env.attach_injector(&injector);
    std::vector<std::uint8_t> bl1(1024, 0x11);
    boot::LoadList list;
    boot::LoadEntry app;
    app.kind = boot::LoadKind::kBl2;
    app.name = "app";
    app.dest_addr = boot::MemoryMap::kDdrBase;
    list.entries.push_back(app);
    std::vector<std::vector<std::uint8_t>> images = {
        std::vector<std::uint8_t>(2048, 0x22)};
    boot::stage_boot_media(env, bl1, list, images);
    const boot::BootResult result = boot::run_boot_chain(env);
    ++plans;
    survived += result.status.ok() ? 1 : 0;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(result.report.total_cycles);
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosBoot)->Unit(benchmark::kMillisecond);

void BM_ChaosAxi(benchmark::State& state) {
  const char* source = R"(
    void scale(int32_t data[32], int factor) {
      for (int i = 0; i < 32; i = i + 1) {
        data[i] = data[i] * factor + 1;
      }
    }
  )";
  hls::FlowOptions options;
  options.top = "scale";
  auto flow = hls::run_flow(source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }
  const axi::AxiMap map = axi::default_axi_map(flow.value().function);

  std::uint64_t plans = 0, survived = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    fault::FaultInjector injector(fault::make_random_plan(seed++, kAxiPoints));
    axi::AxiSlaveMemory ddr(1 << 16, axi::MemoryTiming{});
    ddr.attach_injector(&injector);
    for (std::size_t i = 0; i < 32; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i * 5 + 2, 4);
    }
    axi::MasterConfig config;
    config.watchdog_cycles = 10'000;
    auto run = axi::run_with_axi(flow.value(), {3}, ddr, map,
                                 axi::AxiMode::kDmaBurst, {}, 2'000'000,
                                 config);
    ++plans;
    survived += run.ok() ? 1 : 0;
    fires += injector.total_fires();
    benchmark::DoNotOptimize(run.ok());
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["survived"] = static_cast<double>(survived);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosAxi)->Unit(benchmark::kMillisecond);

void BM_ChaosHypervisor(benchmark::State& state) {
  std::uint64_t plans = 0, restarts = 0, fires = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    hv::HvConfig config;
    config.plan.major_frame = 1000;
    config.plan.per_core.assign(hv::kNumCores, {});
    config.plan.per_core[0] = {{0, 450, 0, 0}, {500, 450, 1, 0}};
    hv::PartitionConfig p0;
    p0.name = "aocs";
    p0.region = {0x0000, 0x1000};
    p0.profile = {1000, 0, 200};
    hv::PartitionConfig p1;
    p1.name = "vbn";
    p1.region = {0x1000, 0x1000};
    p1.profile = {1000, 0, 300};
    config.partitions = {p0, p1};
    config.hm_table[hv::HmEvent::kBudgetOverrun] =
        hv::HmAction::kRestartPartition;

    fault::FaultInjector injector(fault::make_random_plan(seed++, kHvPoints));
    hv::Hypervisor hv(config);
    hv.attach_injector(&injector);
    auto stats = hv.run(30'000);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().to_string().c_str());
      return;
    }
    ++plans;
    for (const hv::PartitionStats& partition : stats.value().partitions) {
      restarts += partition.restarts;
    }
    fires += injector.total_fires();
  }
  state.counters["plans"] = static_cast<double>(plans);
  state.counters["restarts"] = static_cast<double>(restarts);
  state.counters["fires"] = static_cast<double>(fires);
}
BENCHMARK(BM_ChaosHypervisor)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
