// TMR — radiation-hardening effectiveness (paper Sec. I: NG-ULTRA's TMR /
// ECC / memory integrity "completely transparent to the application
// developer"; Sec. IV: BL1 flash redundancy).
//
// SEU injection campaigns across protection schemes and upset rates
// (ablation D4), plus the flash-bank TMR recovery measurement.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "boot/flash.hpp"
#include "common/rng.hpp"
#include "common/threadpool.hpp"
#include "fault/campaign.hpp"
#include "fault/scrub_memory.hpp"
#include "fault/seu.hpp"
#include "hls/flow.hpp"
#include "hw/tmr_transform.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;
using namespace hermes::fault;

/// Ablation D4: none vs EDAC vs TMR under an upset-rate sweep.
void BM_ScrubCampaign(benchmark::State& state) {
  const Protection protection = static_cast<Protection>(state.range(0));
  const double rate = 1e-5 * static_cast<double>(state.range(1));
  state.SetLabel(std::string(to_string(protection)) + " rate=" +
                 std::to_string(state.range(1)) + "e-5");

  ScrubReport total;
  std::size_t intervals = 0;
  for (auto _ : state) {
    ScrubMemory memory(16 * 1024, protection);
    for (std::size_t i = 0; i < memory.size(); ++i) {
      memory.write(i, static_cast<std::uint32_t>(i * 2654435761u));
    }
    Rng rng(1234);
    SeuCampaignConfig config;
    config.upset_probability_per_word = rate;
    for (int interval = 0; interval < 20; ++interval) {
      const ScrubReport report = memory.inject_and_scrub(config, rng);
      total.injected_upsets += report.injected_upsets;
      total.corrected += report.corrected;
      total.detected_uncorrectable += report.detected_uncorrectable;
      total.silent_corruptions += report.silent_corruptions;
      ++intervals;
    }
    benchmark::ClobberMemory();
  }
  state.counters["upsets"] = static_cast<double>(total.injected_upsets);
  state.counters["corrected"] = static_cast<double>(total.corrected);
  state.counters["detected_unc"] =
      static_cast<double>(total.detected_uncorrectable);
  state.counters["silent"] = static_cast<double>(total.silent_corruptions);
  state.counters["silent_per_Mbit_interval"] =
      total.silent_corruptions * 1e6 /
      (static_cast<double>(16 * 1024 * 32) * static_cast<double>(intervals));
}
BENCHMARK(BM_ScrubCampaign)
    ->ArgsProduct({{0, 1, 2},       // Protection
                   {1, 10, 100}});  // rate multiplier

/// Campaign-runner scaling: the same multi-replica scrub campaign on the
/// serial path (0-worker pool) vs the process-wide pool. Results are
/// bit-identical by the per-replica-seed determinism contract; only the
/// wall clock may differ.
void BM_ParallelScrubCampaign(benchmark::State& state) {
  const bool threaded = state.range(0) != 0;
  ScrubCampaignPlan plan;
  plan.replicas = 16;
  plan.memory_words = 4096;
  plan.protection = Protection::kTmr;
  plan.intervals = 8;
  plan.seu.upset_probability_per_word = 1e-3;

  ThreadPool serial(0);
  ThreadPool* pool = threaded ? &ThreadPool::global() : &serial;
  ScrubCampaignResult result;
  for (auto _ : state) {
    result = run_scrub_campaign(plan, pool);
    benchmark::ClobberMemory();
  }
  state.SetLabel(threaded
                     ? "pool x" + std::to_string(ThreadPool::global().size())
                     : "serial");
  state.counters["replicas"] = static_cast<double>(plan.replicas);
  state.counters["upsets"] = static_cast<double>(result.total.injected_upsets);
  state.counters["silent"] =
      static_cast<double>(result.total.silent_corruptions);
}
BENCHMARK(BM_ParallelScrubCampaign)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Shared accelerator + plan for the netlist SEU campaign family, so the
/// serial oracle and the bit-sliced engine are measured on identical work.
const auto& seu_campaign_flow() {
  static const auto flow = [] {
    hls::FlowOptions opts;
    opts.top = "dot";
    return hls::run_flow(R"(
      int dot(int a[16], int b[16]) {
        int acc = 0;
        for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
        return acc;
      }
    )", opts);
  }();
  return flow;
}

NetlistSeuPlan seu_campaign_plan() {
  NetlistSeuPlan plan;
  plan.replicas = 126;  // two full 63-replica slice batches
  plan.cycles_before = 8;
  plan.cycles_after = 64;
  plan.inputs = {{"start", 1}};
  return plan;
}

/// CI smoke gate: the sliced engine must be bit-identical to the serial
/// oracle. A mismatch is a correctness bug, not a perf regression, so the
/// whole bench binary fails hard instead of publishing wrong numbers.
void check_sliced_matches_serial(const hw::Module& module,
                                 const NetlistSeuPlan& plan) {
  static bool checked = false;
  if (checked) return;
  checked = true;
  ThreadPool serial(0);
  const NetlistSeuResult golden = run_netlist_seu_campaign(module, plan, &serial);
  const NetlistSeuResult sliced =
      run_netlist_seu_campaign_sliced(module, plan, &serial);
  if (fingerprint(golden) != fingerprint(sliced)) {
    std::fprintf(stderr,
                 "FATAL: sliced campaign fingerprint %016llx != serial "
                 "oracle %016llx\n",
                 static_cast<unsigned long long>(fingerprint(sliced)),
                 static_cast<unsigned long long>(fingerprint(golden)));
    std::exit(1);
  }
}

/// Netlist SEU campaign over a real HLS accelerator: one golden + one faulty
/// Simulator replica per task, random register-bit flip, divergence watch.
void BM_NetlistSeuCampaign(benchmark::State& state) {
  const bool threaded = state.range(0) != 0;
  const auto& flow = seu_campaign_flow();
  if (!flow.ok()) {
    state.SkipWithError("flow failed");
    return;
  }
  const NetlistSeuPlan plan = seu_campaign_plan();
  check_sliced_matches_serial(flow.value().fsmd.module, plan);

  ThreadPool serial(0);
  ThreadPool* pool = threaded ? &ThreadPool::global() : &serial;
  NetlistSeuResult result;
  for (auto _ : state) {
    result = run_netlist_seu_campaign(flow.value().fsmd.module, plan, pool);
    benchmark::ClobberMemory();
  }
  state.SetLabel(threaded
                     ? "pool x" + std::to_string(ThreadPool::global().size())
                     : "serial");
  state.counters["replicas"] = static_cast<double>(plan.replicas);
  state.counters["diverged"] = static_cast<double>(result.diverged);
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(plan.replicas) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetlistSeuCampaign)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// The same campaign on the bit-sliced engine: 63 fault replicas + 1 golden
/// lane per 64-bit word, one simulator pass per batch instead of one golden
/// + one faulty simulation per replica.
void BM_NetlistSeuCampaignSliced(benchmark::State& state) {
  const bool threaded = state.range(0) != 0;
  const auto& flow = seu_campaign_flow();
  if (!flow.ok()) {
    state.SkipWithError("flow failed");
    return;
  }
  const NetlistSeuPlan plan = seu_campaign_plan();
  check_sliced_matches_serial(flow.value().fsmd.module, plan);

  ThreadPool serial(0);
  ThreadPool* pool = threaded ? &ThreadPool::global() : &serial;
  NetlistSeuResult result;
  for (auto _ : state) {
    result =
        run_netlist_seu_campaign_sliced(flow.value().fsmd.module, plan, pool);
    benchmark::ClobberMemory();
  }
  state.SetLabel(threaded
                     ? "pool x" + std::to_string(ThreadPool::global().size())
                     : "serial");
  state.counters["replicas"] = static_cast<double>(plan.replicas);
  state.counters["batches"] =
      static_cast<double>(batch_count(plan.replicas));
  state.counters["diverged"] = static_cast<double>(result.diverged);
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(plan.replicas) * state.iterations(),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetlistSeuCampaignSliced)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

/// Storage overhead vs protection (the cost column of the D4 table).
void BM_ProtectionOverhead(benchmark::State& state) {
  const Protection protection = static_cast<Protection>(state.range(0));
  ScrubMemory memory(1024, protection);
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
  state.SetLabel(to_string(protection));
  state.counters["raw_bits_per_word"] =
      static_cast<double>(memory.raw_bits()) / 1024.0;
  state.counters["overhead_pct"] =
      100.0 * (static_cast<double>(memory.raw_bits()) / (1024.0 * 32.0) - 1.0);
}
BENCHMARK(BM_ProtectionOverhead)->Arg(0)->Arg(1)->Arg(2);

/// Flash TMR recovery rate vs accumulated flips in a single replica.
void BM_FlashTmrRecovery(benchmark::State& state) {
  const std::size_t flips = static_cast<std::size_t>(state.range(0));
  std::uint64_t corrected = 0;
  bool intact = true;
  for (auto _ : state) {
    boot::FlashBank bank(256 * 1024, 3);
    std::vector<std::uint8_t> image(64 * 1024);
    for (std::size_t i = 0; i < image.size(); ++i) {
      image[i] = static_cast<std::uint8_t>(i);
    }
    bank.program(0, image);
    Rng rng(7);
    bank.device(0).inject_bitflips(flips, rng);
    std::vector<std::uint8_t> readback(image.size());
    const auto result = bank.read(0, readback);
    corrected = result.corrected_bytes;
    intact = readback == image;
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(flips) + " flips in 1 replica");
  state.counters["corrected_bytes"] = static_cast<double>(corrected);
  state.counters["image_intact"] = intact ? 1 : 0;
}
BENCHMARK(BM_FlashTmrRecovery)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

/// Netlist FF-TMR cost: the same HLS accelerator plain, TMR'd, and
/// self-healing-TMR'd through the full NXmap backend — the area/Fmax price
/// of the "transparent" hardening.
void BM_NetlistTmrCost(benchmark::State& state) {
  const int variant = static_cast<int>(state.range(0));
  static const char* kLabels[] = {"plain", "ff_tmr", "self_healing_tmr"};
  state.SetLabel(kLabels[variant]);

  hls::FlowOptions options;
  options.top = "dot";
  auto flow = hls::run_flow(R"(
    int dot(int a[16], int b[16]) {
      int acc = 0;
      for (int i = 0; i < 16; i = i + 1) { acc = acc + a[i] * b[i]; }
      return acc;
    }
  )", options);
  if (!flow.ok()) {
    state.SkipWithError("flow failed");
    return;
  }
  hw::TmrOptions tmr;
  tmr.self_healing = variant == 2;
  hw::TmrStats tmr_stats;
  const hw::Module module =
      variant == 0 ? flow.value().fsmd.module
                   : hw::tmr_transform(flow.value().fsmd.module, &tmr_stats, tmr);

  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  nx::BackendResult result;
  for (auto _ : state) {
    auto backend = nx::run_backend(module, device);
    if (backend.ok()) result = backend.take();
    benchmark::ClobberMemory();
  }
  state.counters["luts"] = static_cast<double>(result.mapped.utilization.luts);
  state.counters["ffs"] = static_cast<double>(result.mapped.utilization.ffs);
  state.counters["fmax_mhz"] = result.timing.fmax_mhz;
  state.counters["voters"] = static_cast<double>(tmr_stats.voter_cells);
}
BENCHMARK(BM_NetlistTmrCost)->Arg(0)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
