// UC-HV — hypervisor use-case evaluation (paper Sec. V: "a use case
// inherited from the SELENE H2020 project ... includes representative
// elements of space mission control such as an Attitude and Orbit Control
// system (AOCS), Visual Based Navigation image processing, Electrical Orbit
// Raising algorithms").
//
// Runs the three workloads as XtratuM partitions on the quad-core plan with
// real functional payloads communicating over sampling ports, and reports
// deadline behaviour, jitter and WCET headroom.
#include <benchmark/benchmark.h>

#include <memory>

#include "apps/aocs.hpp"
#include "apps/compress.hpp"
#include "apps/eor.hpp"
#include "apps/vbn.hpp"
#include "common/rng.hpp"
#include "hv/hypervisor.hpp"

namespace {

using namespace hermes;
using namespace hermes::hv;

struct MissionState {
  apps::AocsState aocs;
  apps::AocsConfig aocs_config;
  apps::EorState eor;
  apps::EorConfig eor_config;
  Rng rng{77};
  std::uint64_t vbn_frames = 0;
  std::uint64_t vbn_valid = 0;
  std::uint64_t aocs_steps = 0;
  std::uint64_t eor_arcs = 0;
};

/// The SELENE-style configuration: AOCS @ 10 Hz (hard), VBN @ 5 Hz
/// (compute-heavy), EOR @ 1 Hz (planning), on 4 cores.
HvConfig mission_config(const std::shared_ptr<MissionState>& mission) {
  HvConfig config;
  config.plan.major_frame = 100'000;  // 100 ms
  config.plan.per_core.assign(kNumCores, {});
  // Core 0: AOCS every 100 ms slot of 20 ms at the frame start (low jitter).
  config.plan.per_core[0] = {{0, 20'000, 0, 0}, {20'000, 70'000, 1, 0}};
  // Core 1: VBN gets a long slot.
  config.plan.per_core[1] = {{0, 90'000, 1, 1}};
  // Core 2: EOR planning.
  config.plan.per_core[2] = {{0, 50'000, 2, 0}};
  // Core 3: spare/system.
  config.plan.per_core[3] = {{0, 10'000, 2, 1}};

  PartitionConfig aocs;
  aocs.name = "AOCS";
  aocs.region = {0x00000, 0x10000};
  aocs.profile = {100'000, 20'000, 5'000};  // 5 ms job, 20 ms deadline
  aocs.on_job = [mission](PartitionApi& api) {
    apps::aocs_step(mission->aocs, mission->aocs_config);
    ++mission->aocs_steps;
    // Publish attitude over the sampling port.
    Message message(12);
    for (int axis = 0; axis < 3; ++axis) {
      const auto v = static_cast<std::uint32_t>(
          mission->aocs.attitude_error[axis] & 0xFFFFFFFF);
      for (int b = 0; b < 4; ++b) {
        message[axis * 4 + b] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
    (void)api.write_port("att_src", message);
  };

  PartitionConfig vbn;
  vbn.name = "VBN";
  vbn.region = {0x10000, 0x20000};
  vbn.profile = {200'000, 0, 60'000};  // heavy image processing
  vbn.on_job = [mission](PartitionApi& api) {
    const apps::VbnFrame frame = apps::render_frame(
        32, 32, 14.0 + mission->rng.next_double() * 4, 16.0, 2.0, 15,
        mission->rng);
    const apps::VbnMeasurement m = apps::measure_centroid(frame, 60);
    ++mission->vbn_frames;
    if (m.valid) ++mission->vbn_valid;
    (void)api.read_sample("att_dst");  // consume the attitude estimate
  };

  PartitionConfig eor;
  eor.name = "EOR";
  eor.region = {0x30000, 0x10000};
  eor.profile = {1'000'000, 0, 30'000};
  eor.on_job = [mission](PartitionApi&) {
    apps::eor_step(mission->eor, mission->eor_config);
    ++mission->eor_arcs;
  };

  config.partitions = {aocs, vbn, eor};
  config.ports = {
      {"att_src", PortKind::kSampling, PortDir::kSource, 0, 16, 8, 0},
      {"att_dst", PortKind::kSampling, PortDir::kDestination, 1, 16, 8, 300'000},
  };
  config.channels = {{"att_src", {"att_dst"}}};
  return config;
}

void BM_MissionPlan(benchmark::State& state) {
  RunStats stats;
  std::shared_ptr<MissionState> mission;
  for (auto _ : state) {
    mission = std::make_shared<MissionState>();
    mission->aocs.attitude_error = {apps::fx_from_milli(150),
                                    apps::fx_from_milli(-80),
                                    apps::fx_from_milli(40)};
    Hypervisor hv(mission_config(mission));
    auto run = hv.run(10'000'000);  // 10 s of mission time
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  state.counters["aocs_jobs"] = static_cast<double>(stats.partitions[0].jobs_completed);
  state.counters["aocs_misses"] = static_cast<double>(stats.partitions[0].deadline_misses);
  state.counters["aocs_jitter_us"] = static_cast<double>(stats.partitions[0].max_jitter);
  state.counters["vbn_jobs"] = static_cast<double>(stats.partitions[1].jobs_completed);
  state.counters["vbn_misses"] = static_cast<double>(stats.partitions[1].deadline_misses);
  state.counters["eor_arcs"] = static_cast<double>(mission->eor_arcs);
  state.counters["port_msgs"] = static_cast<double>(stats.port_messages);
  state.counters["ctx_switches"] = static_cast<double>(stats.context_switches);
  state.counters["aocs_final_err_milli"] =
      apps::fx_to_double(apps::fx_abs(mission->aocs.attitude_error[0])) * 1000;
  state.counters["vbn_valid_pct"] =
      mission->vbn_frames
          ? 100.0 * mission->vbn_valid / mission->vbn_frames
          : 0;
}
BENCHMARK(BM_MissionPlan)->Unit(benchmark::kMillisecond);

/// WCET headroom sweep: inflate the AOCS job demand until the plan breaks —
/// the classic schedulability curve.
void BM_WcetHeadroom(benchmark::State& state) {
  const Time wcet = static_cast<Time>(state.range(0));
  auto mission = std::make_shared<MissionState>();
  HvConfig config = mission_config(mission);
  config.partitions[0].profile.wcet = wcet;
  RunStats stats;
  for (auto _ : state) {
    Hypervisor hv(config);
    auto run = hv.run(5'000'000);
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  state.SetLabel("AOCS wcet " + std::to_string(wcet / 1000) + "ms (slot 20ms)");
  state.counters["aocs_misses"] =
      static_cast<double>(stats.partitions[0].deadline_misses);
  state.counters["aocs_completed"] =
      static_cast<double>(stats.partitions[0].jobs_completed);
  state.counters["vbn_misses"] =
      static_cast<double>(stats.partitions[1].deadline_misses);
}
BENCHMARK(BM_WcetHeadroom)
    ->Arg(5'000)->Arg(10'000)->Arg(19'000)->Arg(25'000)
    ->Unit(benchmark::kMillisecond);

/// Multi-process guest: the AOCS partition hosts an RTOS with three tasks —
/// the 10 Hz control loop (highest priority), a 2 Hz FDIR check, and a 1 Hz
/// telemetry compressor — scheduled priority-preemptively inside the
/// partition's slots.
void BM_MultiProcessAocs(benchmark::State& state) {
  auto mission = std::make_shared<MissionState>();
  HvConfig config = mission_config(mission);

  PartitionConfig& aocs = config.partitions[0];
  ProcessConfig control;
  control.name = "control";
  control.profile = {100'000, 20'000, 5'000};
  control.priority = 3;
  control.on_job = [mission](PartitionApi&) {
    apps::aocs_step(mission->aocs, mission->aocs_config);
  };
  ProcessConfig fdir;
  fdir.name = "fdir";
  fdir.profile = {500'000, 0, 8'000};
  fdir.priority = 2;
  ProcessConfig telemetry;
  telemetry.name = "telemetry";
  telemetry.profile = {1'000'000, 0, 10'000};
  telemetry.priority = 1;
  telemetry.on_job = [mission](PartitionApi&) {
    std::vector<std::uint16_t> samples(128);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      samples[i] = static_cast<std::uint16_t>(1000 + i);
    }
    apps::CompressStats stats;
    (void)apps::rice_encode(samples, {}, &stats);
  };
  aocs.processes = {control, fdir, telemetry};

  RunStats stats;
  for (auto _ : state) {
    mission->aocs = {};
    mission->aocs.attitude_error = {apps::fx_from_milli(150), 0, 0};
    Hypervisor hv(config);
    auto run = hv.run(10'000'000);
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  const PartitionStats& p = stats.partitions[0];
  state.counters["control_jobs"] =
      static_cast<double>(p.processes[0].jobs_completed);
  state.counters["control_misses"] =
      static_cast<double>(p.processes[0].deadline_misses);
  state.counters["fdir_jobs"] =
      static_cast<double>(p.processes[1].jobs_completed);
  state.counters["telemetry_jobs"] =
      static_cast<double>(p.processes[2].jobs_completed);
  state.counters["telemetry_preempted"] =
      static_cast<double>(p.processes[2].preemptions);
  state.counters["partition_cpu_ms"] = static_cast<double>(p.cpu_time) / 1000.0;
}
BENCHMARK(BM_MultiProcessAocs)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
