// FIG5 — the NG-ULTRA boot sequence (paper Fig. 5: BL0 -> BL1 -> BL2).
//
// Times each boot stage in SoC cycles for flash and SpaceWire boot sources,
// sweeps payload size, and measures the recovery cost when flash images are
// corrupted (TMR voting + SpaceWire fallback).
#include <benchmark/benchmark.h>

#include "boot/bl.hpp"
#include "common/rng.hpp"

namespace {

using namespace hermes;
using namespace hermes::boot;

std::vector<std::uint8_t> image_of(std::size_t bytes, std::uint8_t seed) {
  std::vector<std::uint8_t> image(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    image[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return image;
}

void stage(BootEnvironment& env, std::size_t payload_bytes) {
  LoadList list;
  LoadEntry sw;
  sw.kind = LoadKind::kSoftware;
  sw.name = "payload";
  sw.dest_addr = MemoryMap::kDdrBase + 0x10000;
  LoadEntry bl2;
  bl2.kind = LoadKind::kBl2;
  bl2.name = "bl2";
  bl2.dest_addr = MemoryMap::kDdrBase;
  list.entries = {sw, bl2};
  stage_boot_media(env, image_of(16 * 1024, 0x11), list,
                   {image_of(payload_bytes, 0x22), image_of(8 * 1024, 0x33)});
}

void BM_BootFromFlash(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0)) * 1024;
  BootResult result;
  for (auto _ : state) {
    BootEnvironment env;
    stage(env, payload);
    result = run_boot_chain(env);
    benchmark::ClobberMemory();
  }
  state.SetLabel("payload " + std::to_string(state.range(0)) + " KiB");
  state.counters["ok"] = result.status.ok() ? 1 : 0;
  state.counters["bl0_cycles"] = static_cast<double>(result.bl0_cycles);
  state.counters["bl1_cycles"] = static_cast<double>(result.bl1_cycles);
  state.counters["bl2_cycles"] = static_cast<double>(result.bl2_cycles);
  state.counters["total_cycles"] = static_cast<double>(result.report.total_cycles);
}
BENCHMARK(BM_BootFromFlash)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_BootFromSpaceWire(benchmark::State& state) {
  const std::size_t payload = static_cast<std::size_t>(state.range(0)) * 1024;
  BootOptions options;
  options.bl1_source = BootSource::kSpaceWire;
  options.loadlist_source = BootSource::kSpaceWire;
  BootResult result;
  for (auto _ : state) {
    BootEnvironment env;
    stage(env, payload);
    result = run_boot_chain(env, options);
    benchmark::ClobberMemory();
  }
  state.SetLabel("payload " + std::to_string(state.range(0)) + " KiB");
  state.counters["ok"] = result.status.ok() ? 1 : 0;
  state.counters["total_cycles"] = static_cast<double>(result.report.total_cycles);
}
BENCHMARK(BM_BootFromSpaceWire)->Arg(16)->Arg(64)->Arg(256);

/// Recovery: one flash replica destroyed — TMR voting absorbs it; BL1
/// corrupted in all replicas — SpaceWire fallback kicks in. Reports the
/// cycle cost of each recovery path against the clean boot.
void BM_BootRecovery(benchmark::State& state) {
  const int scenario = static_cast<int>(state.range(0));
  BootResult result;
  std::uint64_t corrected = 0;
  for (auto _ : state) {
    BootEnvironment env;
    stage(env, 64 * 1024);
    Rng rng(42);
    switch (scenario) {
      case 0:  // clean
        break;
      case 1:  // one replica heavily damaged: TMR absorbs
        env.flash.device(1).inject_bitflips(2000, rng);
        break;
      case 2: {  // BL1 destroyed everywhere: SpaceWire fallback
        std::vector<std::uint8_t> junk(16 * 1024, 0);
        for (unsigned r = 0; r < 3; ++r) {
          env.flash.device(r).program(FlashLayout::kBl1Image, junk);
        }
        break;
      }
      default:
        break;
    }
    result = run_boot_chain(env);
    corrected = result.report.flash_corrected_bytes;
    benchmark::ClobberMemory();
  }
  static const char* kLabels[] = {"clean", "tmr_recovery", "spw_fallback"};
  state.SetLabel(kLabels[scenario]);
  state.counters["ok"] = result.status.ok() ? 1 : 0;
  state.counters["reached_app"] =
      result.reached == BootStage::kApplication ? 1 : 0;
  state.counters["total_cycles"] = static_cast<double>(result.report.total_cycles);
  state.counters["tmr_corrected_bytes"] = static_cast<double>(corrected);
}
BENCHMARK(BM_BootRecovery)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
