// FIG3 — the NXmap design flow (paper Fig. 3: logic synthesis -> place ->
// route -> STA -> bitstream).
//
// Pushes HLS-generated netlists of the use-case kernels through the full
// backend and reports the per-stage products: mapped resources, placement
// wirelength, routing congestion, Fmax, bitstream size.
#include <benchmark/benchmark.h>

#include "apps/kernels.hpp"
#include "hls/flow.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;

void BM_NxmapBackend(benchmark::State& state) {
  static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
  const apps::KernelSpec& spec = kernels[state.range(0) % kernels.size()];
  state.SetLabel(spec.name);

  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  nx::BackendOptions backend_options;
  backend_options.target_period_ns = options.constraints.clock_period_ns;

  nx::BackendResult result;
  for (auto _ : state) {
    auto backend = nx::run_backend(flow.value().fsmd.module, device,
                                   backend_options);
    if (backend.ok()) result = backend.take();
    benchmark::ClobberMemory();
  }
  state.counters["luts"] = static_cast<double>(result.mapped.utilization.luts);
  state.counters["dsps"] = static_cast<double>(result.mapped.utilization.dsps);
  state.counters["brams"] = static_cast<double>(result.mapped.utilization.brams);
  state.counters["hpwl"] = result.placement.hpwl;
  state.counters["wirelength"] = result.routing.total_wirelength;
  state.counters["congestion"] = result.routing.max_congestion;
  state.counters["fmax_mhz"] = result.timing.fmax_mhz;
  state.counters["timing_met"] = result.timing.meets_target ? 1 : 0;
  state.counters["bitstream_kb"] =
      static_cast<double>(result.bitstream.size()) / 1024.0;
}
BENCHMARK(BM_NxmapBackend)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Placement effort sweep: annealing rounds vs achieved wirelength (the
/// quality/runtime trade of the "place" stage).
void BM_PlacementEffort(benchmark::State& state) {
  const unsigned effort = static_cast<unsigned>(state.range(0));
  const apps::KernelSpec spec = apps::fir_kernel();
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError("flow failed");
    return;
  }
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto mapped = nx::techmap(flow.value().fsmd.module, device);
  if (!mapped.ok()) {
    state.SkipWithError("techmap failed");
    return;
  }
  nx::PlaceOptions place_options;
  place_options.iterations_per_instance = effort;
  nx::Placement placement;
  for (auto _ : state) {
    placement = nx::place(flow.value().fsmd.module, mapped.value(), device,
                          place_options);
    benchmark::ClobberMemory();
  }
  state.counters["hpwl"] = placement.hpwl;
  state.counters["overflow"] = placement.overflow;
}
BENCHMARK(BM_PlacementEffort)->Arg(0)->Arg(8)->Arg(32)->Arg(128)
    ->Unit(benchmark::kMillisecond);

/// Router comparison: bounding-box estimator vs PathFinder negotiated
/// routing — quality (wirelength/congestion truth) vs runtime.
void BM_RouterComparison(benchmark::State& state) {
  const bool detailed = state.range(0) != 0;
  state.SetLabel(detailed ? "pathfinder" : "estimator");
  const apps::KernelSpec spec = apps::matmul_kernel(8);
  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError("flow failed");
    return;
  }
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  nx::BackendOptions backend_options;
  backend_options.detailed_router = detailed;
  backend_options.detailed.max_iterations = 64;
  nx::BackendResult result;
  for (auto _ : state) {
    auto backend = nx::run_backend(flow.value().fsmd.module, device,
                                   backend_options);
    if (backend.ok()) result = backend.take();
    benchmark::ClobberMemory();
  }
  state.counters["wirelength"] = result.routing.total_wirelength;
  state.counters["congestion"] = result.routing.max_congestion;
  state.counters["fmax_mhz"] = result.timing.fmax_mhz;
  if (detailed) {
    state.counters["route_iterations"] = result.route_iterations;
    state.counters["converged"] = result.route_converged ? 1 : 0;
  }
}
BENCHMARK(BM_RouterComparison)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
