// NoC crossbar benchmark: throughput and containment cost of the fault-
// contained multi-accelerator interconnect (src/noc/).
//
// The headline rows, recorded in BENCH_noc.json:
//   * aggregate throughput of the canonical contention scenario (4 ports in
//     2 QoS classes over 6 endpoints in 3 containment domains, saturated);
//   * completion latency under load split by QoS class — the deterministic
//     priority arbiter must keep the high class decisively ahead;
//   * quarantine vs drain — after an endpoint wedge, FDIR quarantine parks
//     the faulted domain in bounded time, versus riding the run deadline
//     with the wedge unfenced.
//
// Every arm doubles as a CI gate: any silent corruption, and any chaos run
// that does not replay bit-identically, exits nonzero instead of timing a
// broken fabric.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fault/injector.hpp"
#include "noc/noc.hpp"
#include "noc/workload.hpp"

namespace {

using namespace hermes;

/// Hard gate shared by every arm: the robustness contract is detected-or-
/// clean, so a single silent corruption fails the bench run outright.
void gate_silent(const noc::FabricResult& result, const char* arm) {
  if (result.silent == 0) return;
  std::fprintf(stderr, "NoC gate (%s): %llu silent corruptions\n", arm,
               static_cast<unsigned long long>(result.silent));
  std::exit(1);
}

void BM_NocAggregateThroughput(benchmark::State& state) {
  std::uint64_t beats = 0;
  std::uint64_t cycles = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    noc::ContentionScenario scenario = noc::make_contention_scenario(7);
    noc::Crossbar fabric(scenario.fabric, scenario.ports, scenario.endpoints);
    for (noc::PortTraffic& t : scenario.traffic) {
      fabric.bind_workload(t.port, t.beats);
    }
    const noc::FabricResult result = fabric.run();
    if (!result.status.ok()) {
      state.SkipWithError("fault-free contention run failed");
      return;
    }
    gate_silent(result, "throughput");
    for (const noc::PortStats& port : result.ports) beats += port.completed;
    cycles += result.cycles;
    ++runs;
  }
  state.counters["beats_per_sec"] = benchmark::Counter(
      static_cast<double>(beats), benchmark::Counter::kIsRate);
  state.counters["cycles_per_run"] =
      runs ? static_cast<double>(cycles) / static_cast<double>(runs) : 0.0;
}
BENCHMARK(BM_NocAggregateThroughput)->Unit(benchmark::kMicrosecond);

/// arg 0: high-priority class; arg 1: low class. Four ports — two per QoS
/// class — drive IDENTICAL packet streams into the same two endpoints, so
/// the only difference between the classes is the arbiter's priority rule;
/// the per-class mean completion latency isolates what QoS buys under load.
void BM_NocLatencyUnderLoad(benchmark::State& state) {
  const bool low_class = state.range(0) != 0;
  std::uint64_t latency = 0;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    noc::FabricConfig config;
    config.beat_timeout_cycles = 256;
    config.run_deadline_cycles = 100'000;
    const std::vector<noc::PortConfig> ports = {
        {"high-a", 0, 1, 8, hv::kNoPartition},
        {"high-b", 0, 1, 8, hv::kNoPartition},
        {"low-a", 1, 1, 8, hv::kNoPartition},
        {"low-b", 1, 1, 8, hv::kNoPartition},
    };
    const std::vector<noc::EndpointConfig> endpoints = {
        {"efpga-a", 0, 4, 4, 4},
        {"efpga-b", 0, 4, 4, 4},
    };
    noc::Crossbar fabric(config, ports, endpoints);
    for (std::uint32_t port = 0; port < 4; ++port) {
      for (std::uint32_t endpoint = 0; endpoint < 2; ++endpoint) {
        noc::WorkloadSpec spec;
        spec.pattern = noc::TrafficPattern::kPacketStream;
        spec.endpoint = endpoint;
        spec.items = 16;
        spec.seed = 31 + endpoint;  // same shape for every port in a class
        fabric.bind_workload(port, noc::generate_workload(spec));
      }
    }
    const noc::FabricResult result = fabric.run();
    if (!result.status.ok()) {
      state.SkipWithError("fault-free latency run failed");
      return;
    }
    gate_silent(result, "latency");
    for (std::size_t p = 0; p < result.ports.size(); ++p) {
      if ((ports[p].priority != 0) != low_class) continue;
      latency += result.ports[p].latency_sum;
      completed += result.ports[p].completed;
    }
  }
  state.counters["avg_latency_cycles"] =
      completed ? static_cast<double>(latency) / static_cast<double>(completed)
                : 0.0;
  state.SetLabel(low_class ? "low QoS class" : "high QoS class");
}
BENCHMARK(BM_NocLatencyUnderLoad)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// arg 1: FDIR containment — the progress watchdog quarantines the wedged
/// endpoint's domain and the healthy domains run on; arg 0: no containment —
/// the wedge is left unfenced and the run grinds to its deadline.
void BM_NocQuarantineVsDrain(benchmark::State& state) {
  const bool quarantine = state.range(0) != 0;
  std::uint64_t cycles = 0;
  std::uint64_t healthy_completed = 0;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    noc::ContentionScenario scenario = noc::make_contention_scenario(23);
    scenario.fabric.quarantine_on_watchdog = quarantine;
    scenario.fabric.fault_domain_filter = 0;  // wedge only domain 0
    scenario.fabric.run_deadline_cycles = 30'000;
    noc::Crossbar fabric(scenario.fabric, scenario.ports, scenario.endpoints);
    fault::FaultPlan plan;
    plan.seed = 23;
    plan.points.push_back(
        {"noc.endpoint.wedge", {.probability = 1.0, .max_fires = 1}});
    fault::FaultInjector injector(plan);
    fabric.attach_injector(&injector);
    for (noc::PortTraffic& t : scenario.traffic) {
      fabric.bind_workload(t.port, t.beats);
    }
    const noc::FabricResult result = fabric.run();
    // The unfenced arm is expected to hit the run deadline; the quarantine
    // arm must not.
    if (quarantine && !result.status.ok()) {
      state.SkipWithError("quarantine arm hit the run deadline");
      return;
    }
    gate_silent(result, "quarantine-vs-drain");
    cycles += result.cycles;
    for (std::size_t d = 1; d < result.domains.size(); ++d) {
      healthy_completed += result.domains[d].completed;
    }
    ++runs;
  }
  state.counters["cycles_to_quiesce"] =
      runs ? static_cast<double>(cycles) / static_cast<double>(runs) : 0.0;
  state.counters["healthy_beats_per_run"] =
      runs ? static_cast<double>(healthy_completed) / static_cast<double>(runs)
           : 0.0;
  state.SetLabel(quarantine ? "FDIR quarantine" : "unfenced (ride deadline)");
}
BENCHMARK(BM_NocQuarantineVsDrain)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Times one full-catalog chaos run per iteration AND replays every one: a
/// chaos run that does not reproduce bit-identically exits nonzero, so a
/// determinism regression fails CI here rather than only in the soak suite.
void BM_NocChaosFingerprintGate(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::uint64_t silent = ~0ULL;
    const std::uint64_t once =
        noc::run_noc_chaos_once(seed, noc::noc_point_catalog(), &silent);
    state.PauseTiming();
    const std::uint64_t again =
        noc::run_noc_chaos_once(seed, noc::noc_point_catalog(), nullptr);
    if (once != again || silent != 0) {
      std::fprintf(stderr,
                   "NoC gate: seed %llu fingerprints %016llx vs %016llx, "
                   "silent %llu\n",
                   static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(once),
                   static_cast<unsigned long long>(again),
                   static_cast<unsigned long long>(silent));
      std::exit(1);
    }
    ++seed;
    state.ResumeTiming();
    benchmark::DoNotOptimize(once);
  }
}
BENCHMARK(BM_NocChaosFingerprintGate)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
