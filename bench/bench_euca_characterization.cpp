// EUCA — Eucalyptus component pre-characterization (paper Sec. II).
//
// Sweeps operator templates over bit width x pipeline stages x clock period
// (the exact configuration space the paper describes), reports the
// latency/area annotations, and emits the Bambu-library XML. Includes
// ablation D2: chaining-aware scheduling vs one-op-per-state.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"

namespace {

using namespace hermes;
using namespace hermes::hls;

void BM_CharacterizeOp(benchmark::State& state) {
  const TechLibrary lib(ng_ultra());
  static const ir::Op kOps[] = {ir::Op::kAdd, ir::Op::kMul, ir::Op::kDiv,
                                ir::Op::kShl, ir::Op::kLt};
  const ir::Op op = kOps[state.range(0) % 5];
  const unsigned width = static_cast<unsigned>(state.range(1));
  state.SetLabel(std::string(ir::to_string(op)) + " w" + std::to_string(width));

  CharacterizationPoint point;
  for (auto _ : state) {
    point = characterize_point(lib, op, width, /*stages=*/0, /*period=*/10.0);
    benchmark::ClobberMemory();
  }
  state.counters["delay_ns"] = point.delay_ns;
  state.counters["latency"] = point.latency;
  state.counters["luts"] = static_cast<double>(point.cost.luts);
  state.counters["dsps"] = static_cast<double>(point.cost.dsps);
  state.counters["fmax_mhz"] = point.fmax_mhz;
}
BENCHMARK(BM_CharacterizeOp)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {8, 16, 32, 64}});

/// Pipelining sweep for the multiplier: more stages -> higher Fmax, more FFs.
void BM_PipelineStages(benchmark::State& state) {
  const TechLibrary lib(ng_ultra());
  const unsigned stages = static_cast<unsigned>(state.range(0));
  CharacterizationPoint point;
  for (auto _ : state) {
    point = characterize_point(lib, ir::Op::kMul, 64, stages, 4.0);
    benchmark::ClobberMemory();
  }
  state.SetLabel("mul64 s" + std::to_string(stages));
  state.counters["stage_delay_ns"] = point.delay_ns;
  state.counters["fmax_mhz"] = point.fmax_mhz;
  state.counters["meets_4ns"] = point.meets_timing ? 1 : 0;
  state.counters["ffs"] = static_cast<double>(point.cost.ffs);
}
BENCHMARK(BM_PipelineStages)->DenseRange(0, 4);

/// Full sweep -> XML artifact (what Eucalyptus stores in the Bambu library).
/// Arg 0 = serial (0-worker pool), arg 1 = the process-wide pool; the sweep
/// result is bit-identical either way.
void BM_FullSweepToXml(benchmark::State& state) {
  const bool threaded = state.range(0) != 0;
  const TechLibrary lib(ng_ultra());
  const SweepConfig config;
  ThreadPool serial(0);
  ThreadPool* pool = threaded ? &ThreadPool::global() : &serial;
  std::string xml;
  std::size_t points = 0;
  for (auto _ : state) {
    const auto sweep = run_sweep(lib, config, pool);
    points = sweep.size();
    xml = to_xml(lib.target(), sweep);
    benchmark::ClobberMemory();
  }
  state.SetLabel(threaded
                     ? "pool x" + std::to_string(ThreadPool::global().size())
                     : "serial");
  state.counters["configurations"] = static_cast<double>(points);
  state.counters["xml_kb"] = static_cast<double>(xml.size()) / 1024.0;
}
BENCHMARK(BM_FullSweepToXml)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Ablation D2: operation chaining on/off across clock periods — chaining
/// packs more work per state at relaxed clocks.
void BM_AblationChaining(benchmark::State& state) {
  const bool chaining = state.range(0) != 0;
  const double period = static_cast<double>(state.range(1));
  state.SetLabel(std::string(chaining ? "chaining" : "no-chaining") + " @" +
                 std::to_string(state.range(1)) + "ns");
  const char* source = R"(
    int chain4(int a, int b, int c, int d) {
      return (((a ^ b) | c) & d) + ((a & b) ^ (c | d));
    }
  )";
  FlowOptions options;
  options.top = "chain4";
  options.constraints.allow_chaining = chaining;
  options.constraints.clock_period_ns = period;
  FlowResult result;
  for (auto _ : state) {
    auto flow = run_flow(source, options);
    if (flow.ok()) result = flow.take();
    benchmark::ClobberMemory();
  }
  state.counters["fsm_states"] = static_cast<double>(result.fsm_states);
  state.counters["datapath_states"] = static_cast<double>(result.schedule.num_states);
}
BENCHMARK(BM_AblationChaining)
    ->ArgsProduct({{0, 1}, {4, 10, 20}});

}  // namespace

BENCHMARK_MAIN();
