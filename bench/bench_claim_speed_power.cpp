// CLAIM-SPEED — "550k LUTs running twice as fast as current rad-hard FPGAs
// with a power consumption four times smaller" (paper Sec. I).
//
// Runs identical HLS-generated designs through the full NXmap backend on the
// NG-ULTRA model and the legacy rad-hard model and reports the measured
// Fmax and iso-frequency dynamic-power ratios.
#include <benchmark/benchmark.h>

#include "apps/kernels.hpp"
#include "hls/flow.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;

void BM_SpeedPowerRatio(benchmark::State& state) {
  static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
  const apps::KernelSpec& spec = kernels[state.range(0) % kernels.size()];
  state.SetLabel(spec.name);

  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }
  const nx::NxDevice ng = nx::make_device(hls::ng_ultra());
  const nx::NxDevice legacy = nx::make_device(hls::legacy_radhard());

  double speed_ratio = 0, power_ratio = 0, ng_fmax = 0, legacy_fmax = 0;
  for (auto _ : state) {
    auto ng_result = nx::run_backend(flow.value().fsmd.module, ng);
    auto legacy_result = nx::run_backend(flow.value().fsmd.module, legacy);
    if (ng_result.ok() && legacy_result.ok()) {
      ng_fmax = ng_result.value().timing.fmax_mhz;
      legacy_fmax = legacy_result.value().timing.fmax_mhz;
      speed_ratio = ng_fmax / legacy_fmax;
      // Iso-frequency dynamic power comparison at the legacy Fmax.
      const auto ng_power =
          nx::estimate_power(ng_result.value().mapped, ng, legacy_fmax);
      const auto legacy_power = nx::estimate_power(
          legacy_result.value().mapped, legacy, legacy_fmax);
      power_ratio = legacy_power.dynamic_mw / ng_power.dynamic_mw;
    }
    benchmark::ClobberMemory();
  }
  state.counters["ng_fmax_mhz"] = ng_fmax;
  state.counters["legacy_fmax_mhz"] = legacy_fmax;
  state.counters["speed_ratio"] = speed_ratio;       // paper claims ~2x
  state.counters["power_ratio"] = power_ratio;       // paper claims ~4x
}
BENCHMARK(BM_SpeedPowerRatio)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
