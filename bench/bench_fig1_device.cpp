// FIG1 — NG-ULTRA architecture (paper Fig. 1).
//
// Regenerates the device inventory (quad-core R52 + 550k-LUT fabric + DSP +
// TDP-RAM blocks) and sweeps fabric utilization with synthetic designs of
// growing size to exercise the capacity model.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hls/flow.hpp"
#include "nxmap/device.hpp"
#include "nxmap/techmap.hpp"

namespace {

using namespace hermes;

void BM_DeviceInventory(benchmark::State& state) {
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  for (auto _ : state) {
    benchmark::ClobberMemory();
  }
  state.counters["luts"] = static_cast<double>(device.total_luts());
  state.counters["dsps"] = static_cast<double>(device.total_dsps());
  state.counters["tdp_rams"] = static_cast<double>(device.total_brams());
  state.counters["cores"] = 4;  // quad ARM R52
}
BENCHMARK(BM_DeviceInventory);

/// Utilization sweep: replicated MAC datapaths until a sizable fraction of
/// the fabric is used.
void BM_FabricUtilization(benchmark::State& state) {
  const unsigned copies = static_cast<unsigned>(state.range(0));
  hw::Module m("grid");
  const hw::WireId a = m.add_wire(32, "a");
  const hw::WireId b = m.add_wire(32, "b");
  m.add_input(a, "a");
  m.add_input(b, "b");
  const hw::WireId en = m.make_const(1, 1);
  for (unsigned i = 0; i < copies; ++i) {
    const hw::WireId p = m.make_binop(hw::CellKind::kMul, a, b, 32);
    const hw::WireId s = m.make_binop(hw::CellKind::kAdd, p, a, 32);
    m.make_register(s, en, 0);
  }
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  nx::Utilization util{};
  for (auto _ : state) {
    auto mapped = nx::techmap(m, device);
    if (mapped.ok()) util = mapped.value().utilization;
    benchmark::ClobberMemory();
  }
  state.counters["lut_pct"] = util.lut_pct;
  state.counters["dsp_pct"] = util.dsp_pct;
  state.counters["luts"] = static_cast<double>(util.luts);
}
BENCHMARK(BM_FabricUtilization)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void print_header() {
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  std::printf("%s\n", nx::device_inventory(device).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  print_header();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
