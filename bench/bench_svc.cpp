// Compile-service flow-cache benchmark (ISSUE 10).
//
// Arms: cold single-job compile (fresh service every iteration), warm
// single-job compile (every stage a cache hit), and mixed-corpus throughput
// through the weighted-fair queue, serial and pooled.
//
// `bench_svc --smoke` runs the CI gate instead of the gbench harness:
// >= 1000 mixed-tenant jobs drained cold, then the identical corpus drained
// warm through the same service, then cold again on a pooled fresh service.
// Exit 1 if any job's artifact fingerprint differs between passes (a digest
// mismatch — the cache served a wrong artifact) or the pooled run diverges
// from the serial one; exit 2 if the warm pass is not at least 5x faster
// than the cold pass.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "svc/service.hpp"
#include "svc_corpus.hpp"

namespace {

using namespace hermes;
using namespace hermes::svc;

hls::SweepConfig bench_sweep() {
  hls::SweepConfig sweep;
  sweep.ops = {ir::Op::kAdd, ir::Op::kMul};
  sweep.widths = {8, 32};
  sweep.pipeline_stages = {0, 1};
  sweep.clock_periods_ns = {4.0, 8.0};
  return sweep;
}

ServiceOptions bench_options(unsigned workers) {
  ServiceOptions options;
  options.workers = workers;
  options.sweep = bench_sweep();
  return options;
}

void BM_SvcColdFlow(benchmark::State& state) {
  const CompileRequest request = corpus::source_request(0);
  for (auto _ : state) {
    CompileService service(bench_options(0));
    const CompileOutcome outcome = service.run({request}).front();
    if (!outcome.status.ok()) state.SkipWithError("cold compile failed");
    benchmark::DoNotOptimize(outcome.fingerprint());
  }
}
BENCHMARK(BM_SvcColdFlow)->Unit(benchmark::kMillisecond);

void BM_SvcWarmFlow(benchmark::State& state) {
  const CompileRequest request = corpus::source_request(0);
  CompileService service(bench_options(0));
  (void)service.run({request});  // populate every stage
  for (auto _ : state) {
    const CompileOutcome outcome = service.run({request}).front();
    if (!outcome.status.ok()) state.SkipWithError("warm compile failed");
    benchmark::DoNotOptimize(outcome.fingerprint());
  }
}
BENCHMARK(BM_SvcWarmFlow)->Unit(benchmark::kMicrosecond);

void BM_SvcThroughput(benchmark::State& state) {
  const auto workers = static_cast<unsigned>(state.range(0));
  const std::vector<CompileRequest> corpus =
      corpus::mixed_corpus(96, 0xBE7C4, {"alpha", "beta", "gamma"});
  for (auto _ : state) {
    CompileService service(bench_options(workers));
    const auto outcomes = service.run(corpus);
    benchmark::DoNotOptimize(outcomes.size());
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * 96), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SvcThroughput)->Arg(0)->Arg(4)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// CI smoke gate
// ---------------------------------------------------------------------------

std::uint64_t outcome_fp(const CompileOutcome& outcome) {
  // Artifact fingerprint + status; excludes cycles/hits/dispatch by design.
  return outcome.fingerprint();
}

int run_smoke() {
  constexpr int kJobs = 1000;
  const std::vector<CompileRequest> corpus =
      corpus::mixed_corpus(kJobs, 0x57A7E, {"alpha", "beta", "gamma"});

  using Clock = std::chrono::steady_clock;
  CompileService service(bench_options(0));
  service.set_tenant_weight("alpha", 2);

  const auto t0 = Clock::now();
  const std::vector<CompileOutcome> cold = service.run(corpus);
  const auto t1 = Clock::now();
  const std::vector<CompileOutcome> warm = service.run(corpus);
  const auto t2 = Clock::now();

  CompileService pooled(bench_options(4));
  pooled.set_tenant_weight("alpha", 2);
  const std::vector<CompileOutcome> parallel = pooled.run(corpus);

  int mismatches = 0;
  for (int i = 0; i < kJobs; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (outcome_fp(warm[idx]) != outcome_fp(cold[idx]) ||
        warm[idx].bitstream != cold[idx].bitstream) {
      std::fprintf(stderr, "bench_svc --smoke: warm digest mismatch job %d\n",
                   i);
      ++mismatches;
    }
    if (outcome_fp(parallel[idx]) != outcome_fp(cold[idx]) ||
        parallel[idx].dispatch_index != cold[idx].dispatch_index) {
      std::fprintf(stderr,
                   "bench_svc --smoke: pooled run diverged at job %d\n", i);
      ++mismatches;
    }
  }
  const FlowCacheStats stats = service.cache().stats();
  if (stats.rot_served != 0) {
    std::fprintf(stderr, "bench_svc --smoke: rot_served = %llu\n",
                 static_cast<unsigned long long>(stats.rot_served));
    ++mismatches;
  }
  if (mismatches != 0) return 1;

  const double cold_s = std::chrono::duration<double>(t1 - t0).count();
  const double warm_s = std::chrono::duration<double>(t2 - t1).count();
  const double speedup = warm_s > 0 ? cold_s / warm_s : 0.0;
  std::printf(
      "bench_svc --smoke: %d jobs cold %.3fs warm %.3fs speedup %.2fx, "
      "0 digest mismatches, serial==pooled (hits %llu misses %llu "
      "computes %llu)\n",
      kJobs, cold_s, warm_s, speedup,
      static_cast<unsigned long long>(stats.hits),
      static_cast<unsigned long long>(stats.misses),
      static_cast<unsigned long long>(stats.computes));
  if (speedup < 5.0) {
    std::fprintf(stderr,
                 "bench_svc --smoke: warm/cold speedup %.2fx below 5x gate\n",
                 speedup);
    return 2;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
