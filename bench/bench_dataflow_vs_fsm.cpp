// DATAFLOW — dynamically controlled accelerators vs monolithic FSM
// synthesis (paper Sec. II / ref [14]: "the complexity of the finite state
// machine controllers for such applications grows exponentially").
//
// N parallel execution flows (an ML-style fork/join): compares the
// centralized controller's product-state blow-up against the linear
// controller cost and pipelined throughput of the dataflow style.
#include <benchmark/benchmark.h>

#include "dataflow/taskgraph.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"

namespace {

using namespace hermes;
using namespace hermes::df;

TaskGraph parallel_flows(unsigned flows, unsigned states_per_flow) {
  TaskGraph graph;
  Task src{"scatter", 2, 0, 2, 20};
  const std::size_t s = graph.add_task(src);
  Task join{"gather", 2, 0, 2, 20};
  const std::size_t j = graph.add_task(join);
  for (unsigned i = 0; i < flows; ++i) {
    Task worker{"flow" + std::to_string(i), states_per_flow, 0,
                states_per_flow, 150};
    const std::size_t w = graph.add_task(worker);
    graph.connect(s, w);
    graph.connect(w, j);
  }
  graph.sources = {s};
  graph.sinks = {j};
  return graph;
}

void BM_ControllerComplexity(benchmark::State& state) {
  const unsigned flows = static_cast<unsigned>(state.range(0));
  const TaskGraph graph = parallel_flows(flows, 16);
  DataflowStats dynamic;
  MonolithicStats mono;
  for (auto _ : state) {
    auto sim = simulate_dataflow(graph, 8);
    if (sim.ok()) dynamic = sim.take();
    mono = estimate_monolithic(graph);
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(flows) + " parallel flows");
  state.counters["dataflow_states"] =
      static_cast<double>(dynamic.controller_states);
  state.counters["monolithic_serial_states"] =
      static_cast<double>(mono.serialized_states);
  state.counters["monolithic_product_states"] = mono.product_states;
  state.counters["dataflow_makespan"] = static_cast<double>(dynamic.makespan);
  state.counters["monolithic_serial_latency"] =
      static_cast<double>(mono.serialized_latency * 8);  // 8 tokens
}
BENCHMARK(BM_ControllerComplexity)->DenseRange(1, 8);

/// Throughput: pipelined dataflow vs serialized monolithic execution as the
/// token stream grows (the ML inference batch).
void BM_Throughput(benchmark::State& state) {
  const std::uint64_t tokens = static_cast<std::uint64_t>(state.range(0));
  const TaskGraph graph = parallel_flows(4, 24);
  DataflowStats dynamic;
  MonolithicStats mono = estimate_monolithic(graph);
  for (auto _ : state) {
    auto sim = simulate_dataflow(graph, tokens);
    if (sim.ok()) dynamic = sim.take();
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(tokens) + " tokens");
  state.counters["dataflow_cycles"] = static_cast<double>(dynamic.makespan);
  state.counters["monolithic_cycles"] =
      static_cast<double>(mono.serialized_latency * tokens);
  state.counters["speedup"] =
      static_cast<double>(mono.serialized_latency * tokens) /
      static_cast<double>(dynamic.makespan ? dynamic.makespan : 1);
  state.counters["utilization"] = dynamic.avg_utilization;
}
BENCHMARK(BM_Throughput)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

/// End-to-end: real HLS tasks (synthesized kernels) composed as a two-stage
/// ML pipeline (dense layer -> activation histogram), profiled with
/// latencies measured by co-simulation.
void BM_HlsTaskPipeline(benchmark::State& state) {
  hls::FlowOptions options;
  options.top = "dense_relu";
  auto dense = hls::run_flow(R"(
void dense_relu(const int8_t w[64], const int32_t b[8], int8_t x[8], int8_t y[8]) {
  for (int o = 0; o < 8; o = o + 1) {
    int32_t acc = b[o];
    for (int i = 0; i < 8; i = i + 1) {
      acc = acc + (int32_t)w[o * 8 + i] * (int32_t)x[i];
    }
    acc = acc >> 7;
    if (acc < 0) acc = 0;
    if (acc > 127) acc = 127;
    y[o] = (int8_t)acc;
  }
}
)", options);
  if (!dense.ok()) {
    state.SkipWithError(dense.status().to_string().c_str());
    return;
  }
  // Measure its latency on the netlist simulator.
  std::map<std::size_t, std::vector<std::uint64_t>> images;
  for (std::size_t m = 0; m < dense.value().function.memories().size(); ++m) {
    images[m] = std::vector<std::uint64_t>(
        dense.value().function.memories()[m].depth, 1);
  }
  auto cosim = hls::cosimulate(dense.value(), {}, images);
  if (!cosim.ok() || !cosim.value().match) {
    state.SkipWithError("cosim failed");
    return;
  }

  TaskGraph graph;
  const Task layer = task_from_flow(dense.value(), cosim.value().hw_cycles);
  const std::size_t l1 = graph.add_task(layer);
  Task layer2 = layer;
  layer2.name = "dense2";
  const std::size_t l2 = graph.add_task(layer2);
  graph.connect(l1, l2);
  graph.sources = {l1};
  graph.sinks = {l2};

  DataflowStats stats;
  for (auto _ : state) {
    auto sim = simulate_dataflow(graph, 16);
    if (sim.ok()) stats = sim.take();
    benchmark::ClobberMemory();
  }
  state.counters["task_latency"] = static_cast<double>(layer.latency);
  state.counters["pipeline_makespan_16"] = static_cast<double>(stats.makespan);
  state.counters["controller_states"] =
      static_cast<double>(stats.controller_states);
}
BENCHMARK(BM_HlsTaskPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
