// SIM — event-driven vs full-sweep simulator engines (ISSUE 1 perf work).
//
// A synthetic fabric of independent per-channel comb chains behind input
// ports, plus one free-running counter, lets the activity factor be dialed:
//  * sparse: only the counter toggles — the event-driven engine touches a
//    handful of cells per cycle while the sweep engine re-evaluates all of
//    them (this is the AXI-wrapper / fault-campaign steady state, where most
//    of an accelerator is idle most cycles);
//  * dense: every channel input changes every cycle — worst case for the
//    event engine, which must pay scheduling overhead on top of the evals.
// Reported as cycles/sec (items = simulated clock cycles).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"

namespace {

using namespace hermes;
using namespace hermes::hw;

constexpr int kChannels = 32;
constexpr int kDepth = 24;

Module make_fabric() {
  Module m("fabric");
  Rng rng(42);

  // Free-running 16-bit counter with a small private output cone.
  const WireId one = m.make_const(1, 1);
  const WireId cnt_d = m.add_wire(16, "cnt_d");
  const WireId cnt_q = m.make_register(cnt_d, one, 0, "cnt_q");
  const WireId inc = m.make_const(1, 16);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {cnt_q, inc};
  add.outputs = {cnt_d};
  m.add_cell(std::move(add));
  m.add_output(cnt_q, "count");

  // Per-channel comb chain: in_c -> kDepth alternating ops -> register.
  static const CellKind kChainOps[] = {CellKind::kAdd, CellKind::kXor,
                                       CellKind::kMul, CellKind::kOr,
                                       CellKind::kSub};
  std::vector<WireId> channel_regs;
  for (int c = 0; c < kChannels; ++c) {
    const std::string port = "in" + std::to_string(c);
    const WireId in = m.add_wire(32, port);
    m.add_input(in, port);
    WireId x = in;
    for (int d = 0; d < kDepth; ++d) {
      const WireId k = m.make_const(rng.next_u64() | 1, 32);
      x = m.make_binop(kChainOps[(c + d) % std::size(kChainOps)], x, k, 32);
    }
    channel_regs.push_back(m.make_register(x, one, 0));
  }

  // Fold the channel registers into one observable output.
  WireId folded = channel_regs[0];
  for (std::size_t c = 1; c < channel_regs.size(); ++c) {
    folded = m.make_binop(CellKind::kXor, folded, channel_regs[c], 32);
  }
  m.add_output(folded, "sig");
  return m;
}

void run_engine_bench(benchmark::State& state, SimBackend backend, bool dense) {
  const Module fabric = make_fabric();
  Simulator sim(fabric, SimOptions{.backend = backend});
  if (!sim.status().ok()) {
    state.SkipWithError("simulator construction failed");
    return;
  }
  Rng rng(7);
  std::uint64_t cycles = 0;
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    for (int i = 0; i < 200; ++i) {
      if (dense) {
        for (int c = 0; c < kChannels; ++c) {
          sim.set_input("in" + std::to_string(c), rng.next_u64());
        }
      }
      sim.step();
      ++cycles;
    }
    checksum ^= sim.get_output("sig") ^ sim.get_output("count");
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(std::string(to_string(sim.active_backend())) +
                 (dense ? " dense" : " sparse"));
  state.counters["cells"] = static_cast<double>(fabric.cells().size());
}

void BM_SparseToggle_Event(benchmark::State& state) {
  run_engine_bench(state, SimBackend::kEvent, /*dense=*/false);
}
void BM_SparseToggle_Sweep(benchmark::State& state) {
  run_engine_bench(state, SimBackend::kSweep, /*dense=*/false);
}
void BM_DenseToggle_Event(benchmark::State& state) {
  run_engine_bench(state, SimBackend::kEvent, /*dense=*/true);
}
void BM_DenseToggle_Sweep(benchmark::State& state) {
  run_engine_bench(state, SimBackend::kSweep, /*dense=*/true);
}
BENCHMARK(BM_SparseToggle_Event);
BENCHMARK(BM_SparseToggle_Sweep);
BENCHMARK(BM_DenseToggle_Event);
BENCHMARK(BM_DenseToggle_Sweep);

}  // namespace

BENCHMARK_MAIN();
