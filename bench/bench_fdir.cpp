// FDIR supervisor benchmark: the cost of the recovery ladder's rungs.
//
// The headline comparison is recovery latency after an unrecoverable
// configuration fault: a cold reboot (re-run the boot chain and re-program
// the eFPGA) versus an FDIR rollback (restore the checkpointed SoC via the
// copy-on-write fork and re-verify the digest). The rollback rung only earns
// its place in the ladder if it is decisively cheaper than rebooting — the
// number recorded in BENCH_fdir.json. Supporting rows measure checkpoint
// cost and supervisor event throughput, the steady-state overhead a mission
// pays for having FDIR armed at all.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "boot/bl.hpp"
#include "boot/loadlist.hpp"
#include "fdir/supervisor.hpp"
#include "nxmap/bitstream.hpp"

namespace {

using namespace hermes;

std::vector<std::uint8_t> bench_bitstream(unsigned frames_count,
                                          std::size_t words_per_frame) {
  std::vector<nx::BitstreamFrame> frames(frames_count);
  for (std::size_t f = 0; f < frames.size(); ++f) {
    frames[f].column = static_cast<std::uint32_t>(f);
    for (std::size_t w = 0; w < words_per_frame; ++w) {
      frames[f].words.push_back(
          static_cast<std::uint32_t>((f << 20) ^ (w * 0x9E3779B9u)));
    }
  }
  return nx::pack_raw_bitstream(/*device_id=*/0xBEC5, frames);
}

void stage_bench_boot(boot::BootEnvironment& env) {
  std::vector<std::uint8_t> bl1(1024, 0x11);
  boot::LoadList list;
  boot::LoadEntry fpga;
  fpga.kind = boot::LoadKind::kBitstream;
  fpga.name = "accel";
  fpga.dest_addr = boot::MemoryMap::kDdrBase + 0x10000;
  list.entries.push_back(fpga);
  boot::LoadEntry app;
  app.kind = boot::LoadKind::kBl2;
  app.name = "app";
  app.dest_addr = boot::MemoryMap::kDdrBase;
  list.entries.push_back(app);
  std::vector<std::vector<std::uint8_t>> images = {
      bench_bitstream(8, 64), std::vector<std::uint8_t>(2048, 0x22)};
  boot::stage_boot_media(env, bl1, list, images);
}

/// arg 0: cold reboot — recover by re-running the whole boot chain;
/// arg 1: FDIR rollback — the supervisor restores the checkpointed SoC.
void BM_FdirRecoveryLatency(benchmark::State& state) {
  const bool rollback = state.range(0) != 0;
  std::uint64_t recoveries = 0;

  if (rollback) {
    boot::BootEnvironment env;
    stage_bench_boot(env);
    if (!boot::run_boot_chain(env).status.ok()) {
      state.SkipWithError("boot failed");
      return;
    }
    fdir::FdirBus bus(1024);
    fdir::FdirConfig config;
    config.max_restart_attempts = 0;  // isolate the rollback rung's cost
    config.max_rollbacks = ~0u;
    fdir::FdirSupervisor supervisor(config, bus);
    supervisor.attach_soc(&env.soc, nullptr, {});
    if (!supervisor.checkpoint().ok()) {
      state.SkipWithError("checkpoint refused");
      return;
    }
    for (auto _ : state) {
      // One unrecoverable-fault episode: the policy crosses its
      // repeated-uncorrectable threshold and the ladder restores the ring's
      // checkpoint (fork + digest re-verification).
      bus.publish({fdir::Layer::kEfpga, fdir::Severity::kUncorrectable,
                   ErrorCode::kIntegrityError, 0, recoveries});
      bus.publish({fdir::Layer::kEfpga, fdir::Severity::kUncorrectable,
                   ErrorCode::kIntegrityError, 1, recoveries});
      supervisor.poll();
      ++recoveries;
      benchmark::DoNotOptimize(env.soc.efpga_programmed);
    }
    if (supervisor.report().rollbacks != recoveries) {
      // Gate: a broken recovery ladder must fail CI with a nonzero exit,
      // not silently time an empty loop.
      std::fprintf(stderr,
                   "FDIR gate: %llu episodes but %llu rollbacks ran\n",
                   static_cast<unsigned long long>(recoveries),
                   static_cast<unsigned long long>(
                       supervisor.report().rollbacks));
      std::exit(1);
    }
  } else {
    for (auto _ : state) {
      boot::BootEnvironment env;
      stage_bench_boot(env);
      const boot::BootResult result = boot::run_boot_chain(env);
      if (!result.status.ok()) {
        state.SkipWithError("boot failed");
        return;
      }
      ++recoveries;
      benchmark::DoNotOptimize(env.soc.efpga_programmed);
    }
  }
  state.counters["recoveries"] = static_cast<double>(recoveries);
  state.counters["recoveries_per_sec"] =
      benchmark::Counter(static_cast<double>(recoveries),
                         benchmark::Counter::kIsRate);
  state.SetLabel(rollback ? "FDIR rollback" : "cold reboot");
}
BENCHMARK(BM_FdirRecoveryLatency)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_FdirCheckpointTake(benchmark::State& state) {
  boot::BootEnvironment env;
  stage_bench_boot(env);
  if (!boot::run_boot_chain(env).status.ok()) {
    state.SkipWithError("boot failed");
    return;
  }
  fdir::FdirBus bus;
  fdir::FdirConfig config;
  config.checkpoint_ring = 4;
  fdir::FdirSupervisor supervisor(config, bus);
  supervisor.attach_soc(&env.soc, nullptr, {});
  std::uint64_t taken = 0;
  for (auto _ : state) {
    // Steady state: the ring is full, every take digests the configuration,
    // snapshots the SoC and evicts the oldest entry.
    if (supervisor.checkpoint().ok()) ++taken;
  }
  state.counters["taken"] = static_cast<double>(taken);
  state.counters["checkpoints_per_sec"] =
      benchmark::Counter(static_cast<double>(taken),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdirCheckpointTake)->Unit(benchmark::kMicrosecond);

void BM_FdirSupervisorPoll(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  fdir::FdirBus bus(batch);
  fdir::FdirConfig config;
  // Thresholds above the batch keep the policy windows churning without
  // triggering actions: this measures pure detect-and-classify throughput.
  config.policy.window = batch * 2;
  config.policy.rate_threshold = batch + 1;
  config.policy.uncorrectable_threshold = batch + 1;
  fdir::FdirSupervisor supervisor(config, bus);
  std::uint64_t events = 0;
  for (auto _ : state) {
    for (std::size_t i = 0; i < batch; ++i) {
      bus.publish({static_cast<fdir::Layer>(i % fdir::kNumLayers),
                   fdir::Severity::kCorrected, ErrorCode::kOk,
                   static_cast<std::uint32_t>(i), events + i});
    }
    events += supervisor.poll();
  }
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FdirSupervisorPoll)->Arg(64)->Arg(256)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
