// AXI — memory-delay sensitivity of AXI-attached accelerators (paper
// Sec. II: "Memory delay estimates can also be configured to assess the
// performance of the application considering also data transfers", and the
// remark that prefetching/caching "might drastically reduce the average
// access time").
//
// Sweeps the external memory latency for both generated-wrapper styles
// (burst DMA vs per-access single-beat masters) over a data-heavy kernel.
#include <benchmark/benchmark.h>

#include "axi/hls_axi.hpp"
#include "hls/flow.hpp"

namespace {

using namespace hermes;
using namespace hermes::axi;

const hls::FlowResult& vector_scale_flow() {
  static const hls::FlowResult flow = [] {
    const char* source = R"(
      void vscale(int32_t data[256], int k) {
        for (int i = 0; i < 256; i = i + 1) {
          data[i] = data[i] * k + (data[i] >> 2);
        }
      }
    )";
    hls::FlowOptions options;
    options.top = "vscale";
    auto result = hls::run_flow(source, options);
    return result.take();
  }();
  return flow;
}

void run_case(benchmark::State& state, AxiMode mode,
              const CacheConfig& cache_config = {}) {
  const unsigned latency = static_cast<unsigned>(state.range(0));
  const hls::FlowResult& flow = vector_scale_flow();
  const AxiMap map = default_axi_map(flow.function);

  AxiRunResult result;
  for (auto _ : state) {
    MemoryTiming timing;
    timing.read_latency = latency;
    timing.write_latency = latency;
    AxiSlaveMemory ddr(1 << 16, timing);
    for (std::size_t i = 0; i < 256; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i, 4);
    }
    auto run = run_with_axi(flow, {3}, ddr, map, mode, cache_config);
    if (run.ok()) result = run.take();
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::string(to_string(mode)) + " lat=" +
                 std::to_string(latency));
  state.counters["match"] = result.match ? 1 : 0;
  state.counters["compute_cycles"] = static_cast<double>(result.compute_cycles);
  state.counters["transfer_cycles"] = static_cast<double>(result.transfer_cycles);
  state.counters["total_cycles"] = static_cast<double>(result.total_cycles);
  state.counters["bus_beats"] = static_cast<double>(result.bus.beats);
  if (mode == AxiMode::kPerAccessCached) {
    state.counters["hit_rate"] = result.cache.hit_rate();
    state.counters["prefetch_hits"] =
        static_cast<double>(result.cache.prefetch_hits);
  }
}

void BM_DmaBurst(benchmark::State& state) {
  run_case(state, AxiMode::kDmaBurst);
}
void BM_PerAccess(benchmark::State& state) {
  run_case(state, AxiMode::kPerAccess);
}
void BM_PerAccessCached(benchmark::State& state) {
  CacheConfig config;
  config.size_bytes = 1024;
  config.prefetch_lines = 1;
  run_case(state, AxiMode::kPerAccessCached, config);
}
BENCHMARK(BM_DmaBurst)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PerAccess)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PerAccessCached)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

/// Cache-customization sweep (the paper: "support the customization of
/// cache sizes, associativity, and other features"): hit rate / cycles vs
/// size x associativity x prefetch at a fixed 16-cycle memory.
void BM_CacheCustomization(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  const unsigned ways = static_cast<unsigned>(state.range(1));
  const unsigned prefetch = static_cast<unsigned>(state.range(2));
  const hls::FlowResult& flow = vector_scale_flow();
  const AxiMap map = default_axi_map(flow.function);

  CacheConfig config;
  config.size_bytes = size;
  config.associativity = ways;
  config.prefetch_lines = prefetch;

  AxiRunResult result;
  for (auto _ : state) {
    MemoryTiming timing;
    timing.read_latency = 16;
    timing.write_latency = 16;
    AxiSlaveMemory ddr(1 << 16, timing);
    for (std::size_t i = 0; i < 256; ++i) {
      ddr.poke_word(map.base_addr.at(0) + i * 4, i, 4);
    }
    auto run = run_with_axi(flow, {3}, ddr, map, AxiMode::kPerAccessCached,
                            config);
    if (run.ok()) result = run.take();
    benchmark::ClobberMemory();
  }
  state.SetLabel(std::to_string(size) + "B/" + std::to_string(ways) + "way/pf" +
                 std::to_string(prefetch));
  state.counters["hit_rate"] = result.cache.hit_rate();
  state.counters["transfer_cycles"] = static_cast<double>(result.transfer_cycles);
  state.counters["match"] = result.match ? 1 : 0;
}
BENCHMARK(BM_CacheCustomization)
    ->ArgsProduct({{128, 512, 2048}, {1, 2, 4}, {0, 2}})
    ->Unit(benchmark::kMillisecond);

/// Unaligned transfers through the master: correctness is covered by tests;
/// here the cost of misalignment (extra edge beats) is measured.
void BM_UnalignedTransfer(benchmark::State& state) {
  const std::uint64_t offset = static_cast<std::uint64_t>(state.range(0));
  MasterStats stats;
  for (auto _ : state) {
    AxiSlaveMemory ddr(1 << 16, {});
    AxiMaster master(ddr);
    std::vector<std::uint8_t> buffer(1021);  // odd size
    master.read(4096 + offset, buffer);
    stats = master.stats();
    benchmark::ClobberMemory();
  }
  state.SetLabel("offset " + std::to_string(offset));
  state.counters["bus_cycles"] = static_cast<double>(stats.cycles);
  state.counters["beats"] = static_cast<double>(stats.beats);
  state.counters["bursts"] = static_cast<double>(stats.bursts);
}
BENCHMARK(BM_UnalignedTransfer)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
