// JIT backend vs fast-pathed event interpreter (ISSUE 9 perf work).
//
// The workload is the bench_sim_engines fabric — 32 channels of 24-deep
// comb chains behind input ports plus a free-running counter — driven at
// full dense toggle (every input changes every cycle, the interpreter's
// worst case and the JIT's home turf) and at sparse toggle (only the counter
// runs; the event engine's dirty-level tracking and the JIT's level-resume
// both matter here). Inputs are set through pre-resolved WireIds so port
// lookup never pollutes the engine comparison. Two more arms measure the
// kernel cache: cold compile (cache cleared every iteration) and warm-hit
// simulator construction.
//
// `bench_jit --smoke` runs the CI gate instead of the gbench harness: a
// fixed-cycle dense-toggle run on both engines, exiting nonzero when the
// checksums differ or the JIT speedup drops below 3x (skips cleanly, exit 0,
// when the host cannot JIT at all).
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "hw/jit/cache.hpp"
#include "hw/jit/exec_memory.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"

namespace {

using namespace hermes;
using namespace hermes::hw;

constexpr int kChannels = 32;
constexpr int kDepth = 24;

Module make_fabric() {
  Module m("jit_fabric");
  Rng rng(42);

  const WireId one = m.make_const(1, 1);
  const WireId cnt_d = m.add_wire(16, "cnt_d");
  const WireId cnt_q = m.make_register(cnt_d, one, 0, "cnt_q");
  const WireId inc = m.make_const(1, 16);
  Cell add;
  add.kind = CellKind::kAdd;
  add.inputs = {cnt_q, inc};
  add.outputs = {cnt_d};
  m.add_cell(std::move(add));
  m.add_output(cnt_q, "count");

  static const CellKind kChainOps[] = {CellKind::kAdd, CellKind::kXor,
                                       CellKind::kMul, CellKind::kOr,
                                       CellKind::kSub};
  std::vector<WireId> channel_regs;
  for (int c = 0; c < kChannels; ++c) {
    const std::string port = "in" + std::to_string(c);
    const WireId in = m.add_wire(32, port);
    m.add_input(in, port);
    WireId x = in;
    for (int d = 0; d < kDepth; ++d) {
      const WireId k = m.make_const(rng.next_u64() | 1, 32);
      x = m.make_binop(kChainOps[(c + d) % std::size(kChainOps)], x, k, 32);
    }
    channel_regs.push_back(m.make_register(x, one, 0));
  }

  WireId folded = channel_regs[0];
  for (std::size_t c = 1; c < channel_regs.size(); ++c) {
    folded = m.make_binop(CellKind::kXor, folded, channel_regs[c], 32);
  }
  m.add_output(folded, "sig");
  return m;
}

std::vector<WireId> input_wires(const Module& fabric) {
  std::vector<WireId> wires;
  for (int c = 0; c < kChannels; ++c) {
    wires.push_back(fabric.port_wire("in" + std::to_string(c)));
  }
  return wires;
}

void run_toggle_bench(benchmark::State& state, SimBackend backend,
                      bool dense) {
  const Module fabric = make_fabric();
  Simulator sim(fabric, SimOptions{.backend = backend});
  if (!sim.status().ok()) {
    state.SkipWithError("simulator construction failed");
    return;
  }
  const std::vector<WireId> inputs = input_wires(fabric);
  Rng rng(7);
  std::uint64_t cycles = 0;
  std::uint64_t checksum = 0;
  for (auto _ : state) {
    for (int i = 0; i < 200; ++i) {
      if (dense) {
        for (const WireId wire : inputs) sim.set_input(wire, rng.next_u64());
      }
      sim.step();
      ++cycles;
    }
    checksum ^= sim.get_output("sig") ^ sim.get_output("count");
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cycles));
  state.SetLabel(std::string(to_string(sim.active_backend())) +
                 (dense ? " dense" : " sparse"));
}

void BM_DenseToggle_Interp(benchmark::State& state) {
  run_toggle_bench(state, SimBackend::kEvent, /*dense=*/true);
}
void BM_DenseToggle_Jit(benchmark::State& state) {
  run_toggle_bench(state, SimBackend::kJit, /*dense=*/true);
}
void BM_SparseToggle_Interp(benchmark::State& state) {
  run_toggle_bench(state, SimBackend::kEvent, /*dense=*/false);
}
void BM_SparseToggle_Jit(benchmark::State& state) {
  run_toggle_bench(state, SimBackend::kJit, /*dense=*/false);
}

/// Cold compile: the cache is cleared every iteration, so each simulator
/// construction lowers, encodes and maps a fresh kernel.
void BM_Compile_Cold(benchmark::State& state) {
  const Module fabric = make_fabric();
  for (auto _ : state) {
    jit::KernelCache::global().clear();
    Simulator sim(fabric, SimOptions{.backend = SimBackend::kJit});
    benchmark::DoNotOptimize(sim.active_backend());
  }
  jit::KernelCache::global().clear();
}

/// Warm hit: after the first construction every iteration only pays the
/// digest + cache lookup, never the compile.
void BM_Construct_WarmHit(benchmark::State& state) {
  const Module fabric = make_fabric();
  Simulator prime(fabric, SimOptions{.backend = SimBackend::kJit});
  jit::KernelCache::global().reset_stats();
  for (auto _ : state) {
    Simulator sim(fabric, SimOptions{.backend = SimBackend::kJit});
    benchmark::DoNotOptimize(sim.active_backend());
  }
  const auto stats = jit::KernelCache::global().stats();
  state.counters["cache_hits"] = static_cast<double>(stats.hits);
  state.counters["cache_compiles"] = static_cast<double>(stats.compiles);
}

BENCHMARK(BM_DenseToggle_Interp);
BENCHMARK(BM_DenseToggle_Jit);
BENCHMARK(BM_SparseToggle_Interp);
BENCHMARK(BM_SparseToggle_Jit);
BENCHMARK(BM_Compile_Cold);
BENCHMARK(BM_Construct_WarmHit);

/// CI smoke gate: dense toggle, both engines, identical stimulus. Exit 0 on
/// matching checksums and >= 3x JIT speedup (or when the host cannot JIT);
/// nonzero otherwise so the CI job fails loudly.
int run_smoke() {
  constexpr int kWarmupCycles = 2000;
  constexpr int kMeasuredCycles = 30000;
  const Module fabric = make_fabric();
  const std::vector<WireId> inputs = input_wires(fabric);

  SimBackend active = SimBackend::kEvent;
  const auto run = [&](SimBackend backend, std::uint64_t* checksum) {
    Simulator sim(fabric, SimOptions{.backend = backend});
    active = sim.active_backend();
    Rng rng(7);
    std::uint64_t sum = 0;
    for (int i = 0; i < kWarmupCycles; ++i) {
      for (const WireId wire : inputs) sim.set_input(wire, rng.next_u64());
      sim.step();
    }
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kMeasuredCycles; ++i) {
      for (const WireId wire : inputs) sim.set_input(wire, rng.next_u64());
      sim.step();
      sum ^= sim.get_output("sig") + i;
    }
    const auto stop = std::chrono::steady_clock::now();
    *checksum = sum ^ sim.get_output("count");
    return std::chrono::duration<double>(stop - start).count();
  };

  if (!hw::jit::jit_available()) {
    std::printf("bench_jit --smoke: JIT unavailable on this host, gate "
                "skipped\n");
    return 0;
  }
  std::uint64_t interp_sum = 0;
  std::uint64_t jit_sum = 0;
  const double interp_s = run(SimBackend::kEvent, &interp_sum);
  const double jit_s = run(SimBackend::kJit, &jit_sum);
  if (active != SimBackend::kJit) {
    std::fprintf(stderr, "bench_jit --smoke: JIT backend did not engage\n");
    return 1;
  }
  if (interp_sum != jit_sum) {
    std::fprintf(stderr,
                 "bench_jit --smoke: checksum mismatch interp=%llx jit=%llx\n",
                 static_cast<unsigned long long>(interp_sum),
                 static_cast<unsigned long long>(jit_sum));
    return 1;
  }
  const double speedup = interp_s / jit_s;
  std::printf("bench_jit --smoke: interp %.3fs jit %.3fs speedup %.2fx "
              "(gate: >= 3x), checksums match\n",
              interp_s, jit_s, speedup);
  return speedup >= 3.0 ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
