// UC-HLS — HLS use-case evaluation (paper Sec. V: "generating IP cores from
// the source code of the applications through Bambu, and ... execution on a
// representative NG-ULTRA platform. Metrics regarding both the functionality
// and usability of the HLS tool and the performance of the generated IP core
// will be collected").
//
// For each use-case kernel: functional verification (hardware == golden),
// accelerator latency, the software baseline (one IR op per cycle on the
// embedded core), resources and Fmax after the backend.
#include <benchmark/benchmark.h>

#include "apps/kernels.hpp"
#include "common/rng.hpp"
#include "hls/flow.hpp"
#include "hls/testbench.hpp"
#include "nxmap/flow.hpp"

namespace {

using namespace hermes;

void BM_UseCaseKernel(benchmark::State& state) {
  static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
  const apps::KernelSpec& spec = kernels[state.range(0) % kernels.size()];
  state.SetLabel(spec.name + " [" + spec.category + "]");

  hls::FlowOptions options;
  options.top = spec.name;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }

  // Random input images.
  Rng rng(2718);
  std::map<std::size_t, std::vector<std::uint64_t>> images;
  for (std::size_t m = 0; m < flow.value().function.memories().size(); ++m) {
    const ir::MemDecl& mem = flow.value().function.memories()[m];
    if (!mem.is_interface) continue;
    std::vector<std::uint64_t> image(mem.depth);
    for (auto& word : image) word = rng.next_u64();
    images[m] = std::move(image);
  }

  hls::CosimResult cosim;
  for (auto _ : state) {
    auto result = hls::cosimulate(flow.value(), {}, images, 10'000'000);
    if (result.ok()) cosim = result.take();
    benchmark::ClobberMemory();
  }

  // Backend for resources/Fmax.
  const nx::NxDevice device = nx::make_device(hls::ng_ultra());
  auto backend = nx::run_backend(flow.value().fsmd.module, device);

  state.counters["functional"] = cosim.match ? 1 : 0;
  state.counters["accel_cycles"] = static_cast<double>(cosim.hw_cycles);
  state.counters["sw_ops"] = static_cast<double>(cosim.sw_instructions);
  state.counters["speedup_vs_1op_cycle"] =
      cosim.hw_cycles ? static_cast<double>(cosim.sw_instructions) /
                            static_cast<double>(cosim.hw_cycles)
                      : 0;
  if (backend.ok()) {
    state.counters["luts"] =
        static_cast<double>(backend.value().mapped.utilization.luts);
    state.counters["dsps"] =
        static_cast<double>(backend.value().mapped.utilization.dsps);
    state.counters["fmax_mhz"] = backend.value().timing.fmax_mhz;
    // Wall-clock speedup vs the 600 MHz R52 running 1 op/cycle.
    const double accel_time_us =
        cosim.hw_cycles / backend.value().timing.fmax_mhz;
    const double sw_time_us = cosim.sw_instructions / 600.0;
    state.counters["wallclock_speedup_vs_r52"] =
        accel_time_us > 0 ? sw_time_us / accel_time_us : 0;
  }
}
BENCHMARK(BM_UseCaseKernel)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

/// Unrolling as the usability knob: latency/resource trade per unroll bound
/// on the FIR kernel.
void BM_UnrollTradeoff(benchmark::State& state) {
  const unsigned unroll = static_cast<unsigned>(state.range(0));
  const apps::KernelSpec spec = apps::fir_kernel(8, 32);
  hls::FlowOptions options;
  options.top = spec.name;
  options.unroll_limit = unroll;
  auto flow = hls::run_flow(spec.source, options);
  if (!flow.ok()) {
    state.SkipWithError(flow.status().to_string().c_str());
    return;
  }
  Rng rng(33);
  std::map<std::size_t, std::vector<std::uint64_t>> images;
  for (std::size_t m = 0; m < flow.value().function.memories().size(); ++m) {
    const ir::MemDecl& mem = flow.value().function.memories()[m];
    if (!mem.is_interface) continue;
    std::vector<std::uint64_t> image(mem.depth);
    for (auto& word : image) word = rng.next_u64() & 0xFFFF;
    images[m] = std::move(image);
  }
  hls::CosimResult cosim;
  for (auto _ : state) {
    auto result = hls::cosimulate(flow.value(), {}, images, 10'000'000);
    if (result.ok()) cosim = result.take();
    benchmark::ClobberMemory();
  }
  state.SetLabel("unroll<=" + std::to_string(unroll));
  state.counters["functional"] = cosim.match ? 1 : 0;
  state.counters["accel_cycles"] = static_cast<double>(cosim.hw_cycles);
  state.counters["fsm_states"] = static_cast<double>(flow.value().fsm_states);
  state.counters["netlist_cells"] =
      static_cast<double>(flow.value().fsmd.module.stats().cells);
}
BENCHMARK(BM_UnrollTradeoff)->Arg(0)->Arg(8)->Arg(40)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
