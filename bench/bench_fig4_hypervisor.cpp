// FIG4 — XtratuM time-and-space partitioning (paper Fig. 4 partition
// diagram).
//
// Runs mixed-criticality cyclic plans on the 4-core machine and reports the
// TSP metrics: partition-switch overhead vs slot granularity (ablation D5),
// jitter, core utilization, and isolation under a misbehaving partition.
#include <benchmark/benchmark.h>

#include "hv/hypervisor.hpp"

namespace {

using namespace hermes;
using namespace hermes::hv;

HvConfig plan_with_slots(unsigned slots_per_frame) {
  HvConfig config;
  config.plan.major_frame = 10'000;  // 10 ms
  config.plan.per_core.assign(kNumCores, {});
  const Time slot = config.plan.major_frame / slots_per_frame;
  for (unsigned core = 0; core < kNumCores; ++core) {
    for (unsigned i = 0; i < slots_per_frame; ++i) {
      config.plan.per_core[core].push_back(
          {i * slot, slot, static_cast<PartitionId>((i + core) % 2), 0});
    }
  }
  PartitionConfig p0;
  p0.name = "appA";
  p0.region = {0x0000, 0x4000};
  p0.profile = {10'000, 0, 3'000};
  PartitionConfig p1 = p0;
  p1.name = "appB";
  p1.region = {0x4000, 0x4000};
  config.partitions = {p0, p1};
  return config;
}

/// Ablation D5: finer slots react faster but pay more partition switches.
void BM_SlotGranularity(benchmark::State& state) {
  const unsigned slots = static_cast<unsigned>(state.range(0));
  HvConfig config = plan_with_slots(slots);
  RunStats stats;
  for (auto _ : state) {
    Hypervisor hv(config);
    auto run = hv.run(1'000'000);  // 1 s
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  state.counters["ctx_switches"] = static_cast<double>(stats.context_switches);
  const double overhead_us =
      static_cast<double>(stats.context_switches) * 20.0;
  state.counters["switch_overhead_pct"] = 100.0 * overhead_us / 1'000'000.0 / kNumCores;
  state.counters["p0_jitter_us"] =
      static_cast<double>(stats.partitions[0].max_jitter);
  state.counters["deadline_misses"] =
      static_cast<double>(stats.partitions[0].deadline_misses +
                          stats.partitions[1].deadline_misses);
}
BENCHMARK(BM_SlotGranularity)->Arg(1)->Arg(2)->Arg(5)->Arg(10)->Arg(25)
    ->Unit(benchmark::kMillisecond);

/// Partition count sweep: hypervisor overhead as the plan hosts more
/// partitions in the same frame.
void BM_PartitionCount(benchmark::State& state) {
  const unsigned partitions = static_cast<unsigned>(state.range(0));
  HvConfig config;
  config.plan.major_frame = 10'000;
  config.plan.per_core.assign(kNumCores, {});
  const Time slot = config.plan.major_frame / partitions;
  for (unsigned i = 0; i < partitions; ++i) {
    config.plan.per_core[0].push_back(
        {i * slot, slot, static_cast<PartitionId>(i), 0});
    PartitionConfig p;
    p.name = "p" + std::to_string(i);
    p.region = {static_cast<std::uint64_t>(i) * 0x1000, 0x1000};
    p.profile = {10'000, 0, slot / 2};
    config.partitions.push_back(p);
  }
  RunStats stats;
  for (auto _ : state) {
    Hypervisor hv(config);
    auto run = hv.run(500'000);
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  std::uint64_t misses = 0, completed = 0;
  for (const auto& p : stats.partitions) {
    misses += p.deadline_misses;
    completed += p.jobs_completed;
  }
  state.counters["ctx_switches"] = static_cast<double>(stats.context_switches);
  state.counters["jobs_completed"] = static_cast<double>(completed);
  state.counters["deadline_misses"] = static_cast<double>(misses);
  state.counters["core0_util"] = stats.core_utilization[0];
}
BENCHMARK(BM_PartitionCount)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

/// Isolation: a partition that violates its MPU region every job — the
/// victim partition's deadline record must stay clean.
void BM_IsolationUnderFaultyNeighbor(benchmark::State& state) {
  HvConfig config = plan_with_slots(5);
  config.hm_table[HmEvent::kMemoryViolation] = HmAction::kRestartPartition;
  config.partitions[0].on_job = [](PartitionApi& api) {
    std::uint8_t byte = 0;
    (void)api.read_mem(0x4000, &byte, 1);  // appB's memory
  };
  RunStats stats;
  for (auto _ : state) {
    Hypervisor hv(config);
    auto run = hv.run(1'000'000);
    if (run.ok()) stats = run.take();
    benchmark::ClobberMemory();
  }
  state.counters["hm_events"] = static_cast<double>(stats.hm_log.size());
  state.counters["victim_misses"] =
      static_cast<double>(stats.partitions[1].deadline_misses);
  state.counters["victim_jobs"] =
      static_cast<double>(stats.partitions[1].jobs_completed);
}
BENCHMARK(BM_IsolationUnderFaultyNeighbor)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
