// FIG2 — the Bambu HLS flow (paper Fig. 2: front-end / middle-end /
// back-end).
//
// For every use-case kernel: runs the complete flow and reports the
// per-stage artifacts the figure depicts — IR size after the front-end,
// rewrites applied by the middle-end, CDFG size, and the back-end's
// allocation/scheduling/binding products (FSM states, FUs, registers).
// Includes ablations D1 (unconstrained resources) and middle-end-off.
#include <benchmark/benchmark.h>

#include "apps/kernels.hpp"
#include "hls/flow.hpp"

namespace {

using namespace hermes;

const apps::KernelSpec& kernel_by_index(std::size_t index) {
  static const std::vector<apps::KernelSpec> kernels = apps::all_kernels();
  return kernels[index % kernels.size()];
}

void BM_HlsFlow(benchmark::State& state) {
  const apps::KernelSpec& spec = kernel_by_index(state.range(0));
  state.SetLabel(spec.name + " [" + spec.category + "]");
  hls::FlowOptions options;
  options.top = spec.name;
  hls::FlowResult result;
  for (auto _ : state) {
    auto flow = hls::run_flow(spec.source, options);
    if (flow.ok()) result = flow.take();
    benchmark::ClobberMemory();
  }
  state.counters["ir_frontend"] = static_cast<double>(result.ir_instrs_before);
  state.counters["ir_optimized"] = static_cast<double>(result.ir_instrs_after);
  std::size_t rewrites = 0;
  for (const auto& pass : result.passes) rewrites += pass.changed;
  state.counters["middle_rewrites"] = static_cast<double>(rewrites);
  state.counters["cdfg_nodes"] = static_cast<double>(result.cdfg.nodes);
  state.counters["cdfg_edges"] = static_cast<double>(result.cdfg.data_edges);
  state.counters["fsm_states"] = static_cast<double>(result.fsm_states);
  state.counters["registers"] =
      static_cast<double>(result.binding.stats.datapath_registers);
  state.counters["mul_fus"] =
      static_cast<double>(result.binding.stats.multiplier_instances);
  state.counters["shared_ops"] =
      static_cast<double>(result.binding.stats.shared_ops);
}
BENCHMARK(BM_HlsFlow)->DenseRange(0, 4);

/// Ablation D1: list scheduling under FU constraints vs unconstrained ASAP.
void BM_AblationResourceConstraints(benchmark::State& state) {
  const bool constrained = state.range(0) != 0;
  state.SetLabel(constrained ? "list+constraints(1 mul)" : "unconstrained");
  const apps::KernelSpec spec = apps::matmul_kernel(6);
  hls::FlowOptions options;
  options.top = spec.name;
  options.constraints.enforce_resources = constrained;
  options.constraints.multipliers = 1;
  hls::FlowResult result;
  for (auto _ : state) {
    auto flow = hls::run_flow(spec.source, options);
    if (flow.ok()) result = flow.take();
    benchmark::ClobberMemory();
  }
  state.counters["fsm_states"] = static_cast<double>(result.fsm_states);
  state.counters["mul_fus"] =
      static_cast<double>(result.binding.stats.multiplier_instances);
}
BENCHMARK(BM_AblationResourceConstraints)->Arg(0)->Arg(1);

/// Ablation: middle-end on/off — how much the optimization passes buy.
void BM_AblationMiddleEnd(benchmark::State& state) {
  const bool optimize = state.range(0) != 0;
  state.SetLabel(optimize ? "middle-end on" : "middle-end off");
  const apps::KernelSpec spec = apps::fir_kernel();
  hls::FlowOptions options;
  options.top = spec.name;
  options.run_middle_end = optimize;
  hls::FlowResult result;
  for (auto _ : state) {
    auto flow = hls::run_flow(spec.source, options);
    if (flow.ok()) result = flow.take();
    benchmark::ClobberMemory();
  }
  state.counters["ir_instrs"] = static_cast<double>(result.ir_instrs_after);
  state.counters["fsm_states"] = static_cast<double>(result.fsm_states);
  state.counters["netlist_cells"] =
      static_cast<double>(result.fsmd.module.stats().cells);
}
BENCHMARK(BM_AblationMiddleEnd)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
