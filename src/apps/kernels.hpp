// HLS use-case kernels (paper Sec. V: "image and vision processing
// algorithms, software-defined algorithms, and artificial intelligence
// applications").
//
// Each kernel is a C source string accepted by the HLS frontend, plus its
// interface geometry, so tests, examples and benchmarks can synthesize and
// co-simulate them uniformly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace hermes::apps {

struct KernelSpec {
  std::string name;        ///< top function name
  std::string source;      ///< C source
  std::string category;    ///< vision / sdr / ai / generic
  std::size_t input_mems;  ///< number of interface arrays read
};

/// 2D Sobel edge detector on a WxH 8-bit image (vision use case).
KernelSpec sobel_kernel(unsigned width = 16, unsigned height = 16);

/// FIR filter, TAPS taps over N samples (software-defined radio use case).
KernelSpec fir_kernel(unsigned taps = 8, unsigned samples = 64);

/// Dense layer with ReLU: y = relu(W x + b), NxM (AI use case).
KernelSpec dense_relu_kernel(unsigned inputs = 8, unsigned outputs = 8);

/// Integer matrix multiply C = A * B, NxN (generic compute).
KernelSpec matmul_kernel(unsigned n = 8);

/// 256-bin histogram of an N-sample 8-bit stream (statistics / compression
/// front-end).
KernelSpec histogram_kernel(unsigned samples = 128);

/// All kernels, for sweep-style benchmarks.
std::vector<KernelSpec> all_kernels();

}  // namespace hermes::apps
