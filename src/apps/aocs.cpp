#include "apps/aocs.hpp"

namespace hermes::apps {

Fx aocs_step(AocsState& state, const AocsConfig& config) {
  Fx worst = 0;
  for (int axis = 0; axis < 3; ++axis) {
    // PD law with saturation.
    Fx torque = -fx_mul(config.kp, state.attitude_error[axis]) -
                fx_mul(config.kd, state.rate[axis]);
    torque = fx_clamp(torque, -config.max_torque, config.max_torque);
    state.torque_cmd[axis] = torque;

    // Rigid-body plant: rate += (torque + disturbance) / I * dt.
    const Fx accel = fx_div(torque + config.disturbance, config.inertia);
    state.rate[axis] += fx_mul(accel, config.dt);
    state.attitude_error[axis] += fx_mul(state.rate[axis], config.dt);

    const Fx err = fx_abs(state.attitude_error[axis]);
    if (err > worst) worst = err;
  }
  ++state.steps;
  return worst;
}

Fx aocs_run(AocsState& state, const AocsConfig& config, unsigned steps) {
  Fx err = 0;
  for (unsigned i = 0; i < steps; ++i) err = aocs_step(state, config);
  return err;
}

}  // namespace hermes::apps
