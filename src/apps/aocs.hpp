// Attitude and Orbit Control System (AOCS) workload.
//
// One of the "representative elements of space mission control" used to
// evaluate XtratuM in HERMES (Sec. V, inherited from SELENE). A three-axis
// PD attitude controller with a rigid-body plant in Q16.16: each control
// step reads the latest rate-gyro sample, computes a torque command, and
// integrates the plant. Deterministic, so isolation tests can detect any
// cross-partition interference as a trajectory change.
#pragma once

#include <array>

#include "apps/fixmath.hpp"

namespace hermes::apps {

struct AocsConfig {
  Fx inertia = fx_from_int(50);        ///< kg m^2 per axis (diagonal)
  Fx kp = fx_from_milli(2500);         ///< proportional gain
  Fx kd = fx_from_milli(9000);         ///< derivative gain
  Fx dt = fx_from_milli(100);          ///< control period, seconds
  Fx max_torque = fx_from_int(2);      ///< actuator saturation, N m
  Fx disturbance = fx_from_milli(5);   ///< constant environmental torque
};

struct AocsState {
  std::array<Fx, 3> attitude_error{};  ///< rad (small-angle)
  std::array<Fx, 3> rate{};            ///< rad/s
  std::array<Fx, 3> torque_cmd{};      ///< last commanded torque
  std::uint64_t steps = 0;
};

/// One control step; returns the infinity-norm of the attitude error after
/// the step (the controller's convergence measure).
Fx aocs_step(AocsState& state, const AocsConfig& config);

/// Convergence check used by tests: run `steps` iterations from a given
/// initial error and report the final error norm.
Fx aocs_run(AocsState& state, const AocsConfig& config, unsigned steps);

}  // namespace hermes::apps
