// Q16.16 fixed-point math for the on-board control workloads.
//
// Space-grade control software avoids floating point on small cores (and
// keeps results bit-reproducible across the hypervisor simulation and any
// HLS-synthesized variant), so the AOCS/VBN/EOR use cases compute in Q16.16.
#pragma once

#include <cstdint>

namespace hermes::apps {

using Fx = std::int64_t;  ///< Q16.16 carried in 64 bits (headroom for products)

inline constexpr Fx kFxOne = 1 << 16;
inline constexpr Fx kFxPi = 205887;  ///< pi * 2^16

constexpr Fx fx_from_int(std::int64_t v) { return v << 16; }
constexpr std::int64_t fx_to_int(Fx v) { return v >> 16; }
constexpr Fx fx_from_milli(std::int64_t thousandths) {
  return (thousandths << 16) / 1000;
}
constexpr double fx_to_double(Fx v) { return static_cast<double>(v) / 65536.0; }

constexpr Fx fx_mul(Fx a, Fx b) { return (a * b) >> 16; }
constexpr Fx fx_div(Fx a, Fx b) { return b == 0 ? 0 : (a << 16) / b; }

/// Integer Newton square root of a Q16.16 value (non-negative input).
constexpr Fx fx_sqrt(Fx v) {
  if (v <= 0) return 0;
  // sqrt in Q16.16: sqrt(v * 2^16) in integer domain.
  std::uint64_t x = static_cast<std::uint64_t>(v) << 16;
  std::uint64_t r = x;
  std::uint64_t last = 0;
  // Newton iterations converge fast from x; bound them for constexpr use.
  for (int i = 0; i < 48 && r != last; ++i) {
    last = r;
    r = (r + x / r) / 2;
  }
  return static_cast<Fx>(r);
}

/// Bhaskara I approximation of sin on [0, pi], odd-extended to [-pi, pi].
/// Max error ~0.0016; plenty for control-loop modelling.
constexpr Fx fx_sin(Fx angle) {
  // Wrap to [-pi, pi].
  while (angle > kFxPi) angle -= 2 * kFxPi;
  while (angle < -kFxPi) angle += 2 * kFxPi;
  const bool negative = angle < 0;
  const Fx x = negative ? -angle : angle;
  // sin(x) ~= 16x(pi-x) / (5pi^2 - 4x(pi-x))
  const Fx t = fx_mul(x, kFxPi - x);
  const Fx num = 16 * t;
  const Fx den = fx_mul(fx_from_int(5), fx_mul(kFxPi, kFxPi)) - 4 * t;
  const Fx s = fx_div(num, den);
  return negative ? -s : s;
}

constexpr Fx fx_cos(Fx angle) { return fx_sin(angle + kFxPi / 2); }

constexpr Fx fx_abs(Fx v) { return v < 0 ? -v : v; }
constexpr Fx fx_clamp(Fx v, Fx lo, Fx hi) {
  return v < lo ? lo : (v > hi ? hi : v);
}

}  // namespace hermes::apps
