// Sensor-data compression (paper Sec. I motivation: "low bandwidth
// communication links between spacecraft and Earth require sensor data to be
// pre-processed and compressed before transmission").
//
// CCSDS-121-style lossless pipeline: unit-delay predictor, residual zigzag
// mapping, Rice/Golomb coding with per-block adaptive k. Encoder and decoder
// round-trip bit-exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hermes::apps {

struct RiceConfig {
  unsigned block_samples = 16;   ///< samples per adaptive block
  unsigned max_k = 14;           ///< Rice parameter search bound
};

struct CompressStats {
  std::size_t input_bits = 0;
  std::size_t output_bits = 0;
  double ratio = 0.0;           ///< input/output
};

/// Encodes 16-bit samples; output is byte-packed (MSB-first bitstream).
std::vector<std::uint8_t> rice_encode(std::span<const std::uint16_t> samples,
                                      const RiceConfig& config,
                                      CompressStats* stats = nullptr);

/// Decodes exactly `count` samples.
Result<std::vector<std::uint16_t>> rice_decode(
    std::span<const std::uint8_t> data, std::size_t count,
    const RiceConfig& config);

}  // namespace hermes::apps
