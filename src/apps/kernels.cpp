#include "apps/kernels.hpp"

#include "common/strings.hpp"

namespace hermes::apps {

KernelSpec sobel_kernel(unsigned width, unsigned height) {
  KernelSpec spec;
  spec.name = "sobel";
  spec.category = "vision";
  spec.input_mems = 1;
  spec.source = format(R"(
void sobel(uint8_t img[%u][%u], uint8_t out[%u][%u]) {
  for (int y = 1; y < %u; y = y + 1) {
    for (int x = 1; x < %u; x = x + 1) {
      int gx = (int)img[y - 1][x - 1] + 2 * (int)img[y][x - 1] + (int)img[y + 1][x - 1]
             - (int)img[y - 1][x + 1] - 2 * (int)img[y][x + 1] - (int)img[y + 1][x + 1];
      int gy = (int)img[y - 1][x - 1] + 2 * (int)img[y - 1][x] + (int)img[y - 1][x + 1]
             - (int)img[y + 1][x - 1] - 2 * (int)img[y + 1][x] - (int)img[y + 1][x + 1];
      if (gx < 0) gx = -gx;
      if (gy < 0) gy = -gy;
      int mag = gx + gy;
      if (mag > 255) mag = 255;
      out[y][x] = (uint8_t)mag;
    }
  }
}
)",
                       height, width, height, width, height - 1, width - 1);
  return spec;
}

KernelSpec fir_kernel(unsigned taps, unsigned samples) {
  KernelSpec spec;
  spec.name = "fir";
  spec.category = "sdr";
  spec.input_mems = 2;
  spec.source = format(R"(
void fir(int16_t x[%u], const int16_t h[%u], int32_t y[%u]) {
  for (int n = 0; n < %u; n = n + 1) {
    int32_t acc = 0;
    for (int k = 0; k < %u; k = k + 1) {
      if (n - k >= 0) {
        acc = acc + (int32_t)x[n - k] * (int32_t)h[k];
      }
    }
    y[n] = acc;
  }
}
)",
                       samples, taps, samples, samples, taps);
  return spec;
}

KernelSpec dense_relu_kernel(unsigned inputs, unsigned outputs) {
  KernelSpec spec;
  spec.name = "dense_relu";
  spec.category = "ai";
  spec.input_mems = 3;
  spec.source = format(R"(
void dense_relu(const int8_t w[%u], const int32_t b[%u], int8_t x[%u], int8_t y[%u]) {
  for (int o = 0; o < %u; o = o + 1) {
    int32_t acc = b[o];
    for (int i = 0; i < %u; i = i + 1) {
      acc = acc + (int32_t)w[o * %u + i] * (int32_t)x[i];
    }
    acc = acc >> 7;
    if (acc < 0) acc = 0;
    if (acc > 127) acc = 127;
    y[o] = (int8_t)acc;
  }
}
)",
                       inputs * outputs, outputs, inputs, outputs, outputs,
                       inputs, inputs);
  return spec;
}

KernelSpec matmul_kernel(unsigned n) {
  KernelSpec spec;
  spec.name = "matmul";
  spec.category = "generic";
  spec.input_mems = 2;
  spec.source = format(R"(
void matmul(const int32_t a[%u][%u], const int32_t b[%u][%u], int32_t c[%u][%u]) {
  for (int i = 0; i < %u; i = i + 1) {
    for (int j = 0; j < %u; j = j + 1) {
      int32_t acc = 0;
      for (int k = 0; k < %u; k = k + 1) {
        acc = acc + a[i][k] * b[k][j];
      }
      c[i][j] = acc;
    }
  }
}
)",
                       n, n, n, n, n, n, n, n, n);
  return spec;
}

KernelSpec histogram_kernel(unsigned samples) {
  KernelSpec spec;
  spec.name = "histogram";
  spec.category = "generic";
  spec.input_mems = 1;
  spec.source = format(R"(
void histogram(uint8_t data[%u], uint32_t bins[256]) {
  for (int i = 0; i < 256; i = i + 1) {
    bins[i] = 0;
  }
  for (int i = 0; i < %u; i = i + 1) {
    int b = (int)data[i];
    bins[b] = bins[b] + 1;
  }
}
)",
                       samples, samples);
  return spec;
}

std::vector<KernelSpec> all_kernels() {
  return {sobel_kernel(), fir_kernel(), dense_relu_kernel(), matmul_kernel(),
          histogram_kernel()};
}

}  // namespace hermes::apps
