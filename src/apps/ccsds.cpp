#include "apps/ccsds.hpp"

#include "common/crc.hpp"
#include "common/strings.hpp"

namespace hermes::apps {
namespace {

constexpr std::uint8_t kIdlePattern = 0x55;

}  // namespace

std::vector<std::vector<std::uint8_t>> tm_frame_stream(
    std::span<const std::uint8_t> payload, const TmFrameConfig& config,
    std::uint8_t& master_count, std::uint8_t& vc_count) {
  std::vector<std::vector<std::uint8_t>> frames;
  const std::size_t data_bytes =
      config.frame_length - kTmPrimaryHeaderBytes - kTmFecfBytes;
  std::size_t offset = 0;
  do {
    std::vector<std::uint8_t> frame;
    frame.reserve(config.frame_length);
    // Primary header: version(2)=00 | SCID(10) | VCID(3) | OCF flag(1) = 16 bits.
    const std::uint16_t word0 =
        static_cast<std::uint16_t>((config.spacecraft_id & 0x3FF) << 4 |
                                   (config.virtual_channel & 0x7) << 1);
    frame.push_back(static_cast<std::uint8_t>(word0 >> 8));
    frame.push_back(static_cast<std::uint8_t>(word0));
    frame.push_back(master_count);
    frame.push_back(vc_count);
    // Data field status: sync flag 0, first-header-pointer unused here.
    frame.push_back(0x00);
    frame.push_back(0x00);
    ++master_count;  // natural 8-bit wraparound
    ++vc_count;

    for (std::size_t i = 0; i < data_bytes; ++i) {
      frame.push_back(offset + i < payload.size() ? payload[offset + i]
                                                  : kIdlePattern);
    }
    offset += data_bytes;

    const std::uint16_t fecf = crc16_ccitt(frame);
    frame.push_back(static_cast<std::uint8_t>(fecf >> 8));
    frame.push_back(static_cast<std::uint8_t>(fecf));
    frames.push_back(std::move(frame));
  } while (offset < payload.size());
  return frames;
}

Result<TmFrameInfo> tm_decode_frame(std::span<const std::uint8_t> frame,
                                    const TmFrameConfig& config) {
  if (frame.size() != config.frame_length) {
    return Status::Error(ErrorCode::kIntegrityError,
                         format("frame length %zu, expected %zu", frame.size(),
                                config.frame_length));
  }
  const std::uint16_t fecf =
      static_cast<std::uint16_t>(frame[frame.size() - 2] << 8 |
                                 frame[frame.size() - 1]);
  if (crc16_ccitt(frame.subspan(0, frame.size() - 2)) != fecf) {
    return Status::Error(ErrorCode::kIntegrityError, "FECF mismatch");
  }
  TmFrameInfo info;
  const std::uint16_t word0 =
      static_cast<std::uint16_t>(frame[0] << 8 | frame[1]);
  if ((word0 >> 14) != 0) {
    return Status::Error(ErrorCode::kIntegrityError, "bad TM version");
  }
  info.spacecraft_id = (word0 >> 4) & 0x3FF;
  info.virtual_channel = (word0 >> 1) & 0x7;
  info.master_count = frame[2];
  info.vc_count = frame[3];
  info.data.assign(frame.begin() + kTmPrimaryHeaderBytes,
                   frame.end() - kTmFecfBytes);
  return info;
}

Result<std::vector<std::uint8_t>> tm_decode_stream(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const TmFrameConfig& config) {
  std::vector<std::uint8_t> payload;
  bool have_previous = false;
  std::uint8_t expected_vc = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    auto info = tm_decode_frame(frames[i], config);
    if (!info.ok()) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("frame %zu: %s", i,
                                  info.status().message().c_str()));
    }
    if (info.value().spacecraft_id != config.spacecraft_id ||
        info.value().virtual_channel != config.virtual_channel) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("frame %zu: foreign SCID/VCID", i));
    }
    if (have_previous &&
        info.value().vc_count != static_cast<std::uint8_t>(expected_vc)) {
      return Status::Error(
          ErrorCode::kIntegrityError,
          format("frame %zu: VC counter gap (got %u, expected %u) — frame "
                 "loss detected", i, info.value().vc_count, expected_vc));
    }
    expected_vc = static_cast<std::uint8_t>(info.value().vc_count + 1);
    have_previous = true;
    payload.insert(payload.end(), info.value().data.begin(),
                   info.value().data.end());
  }
  return payload;
}

}  // namespace hermes::apps
