// Visual-Based Navigation (VBN) image-processing workload (paper Sec. V).
//
// A lander/rendezvous-style navigation step: a synthetic camera frame with a
// bright target blob is thresholded and the blob's weighted centroid is the
// position measurement. Integer-only, deterministic per (frame, truth).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace hermes::apps {

struct VbnFrame {
  unsigned width = 32, height = 32;
  std::vector<std::uint8_t> pixels;  ///< row-major grayscale
};

/// Renders a frame: dark noisy background plus a Gaussian-ish blob centered
/// at (cx, cy) in pixel coordinates.
VbnFrame render_frame(unsigned width, unsigned height, double cx, double cy,
                      double blob_sigma, unsigned noise_amplitude, Rng& rng);

struct VbnMeasurement {
  bool valid = false;       ///< enough bright pixels found
  double x = 0, y = 0;      ///< centroid estimate (pixels)
  unsigned bright_pixels = 0;
};

/// Threshold + weighted centroid (the processing step run in the VBN
/// partition; its inner loops are also what the Sobel HLS kernel
/// accelerates in the hybrid configuration).
VbnMeasurement measure_centroid(const VbnFrame& frame, std::uint8_t threshold);

}  // namespace hermes::apps
