// CCSDS TM transfer framing (CCSDS 132.0-B / packet telemetry style).
//
// The paper's opening motivation: "low bandwidth communication links between
// spacecraft and Earth require sensor data to be preprocessed and compressed
// before transmission". The compression half lives in compress.hpp; this is
// the transmission half: fixed-length TM transfer frames with a primary
// header (spacecraft id, virtual channel, master/VC frame counters), a data
// field fed from a byte stream, and a Frame Error Control Field (CRC-16).
// A decoder validates FECF + counter continuity and reassembles the stream.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"

namespace hermes::apps {

struct TmFrameConfig {
  std::uint16_t spacecraft_id = 0x1AB;  ///< 10 bits
  std::uint8_t virtual_channel = 0;     ///< 3 bits
  std::size_t frame_length = 256;       ///< total octets incl. header + FECF
};

inline constexpr std::size_t kTmPrimaryHeaderBytes = 6;
inline constexpr std::size_t kTmFecfBytes = 2;

/// Splits `payload` into consecutive TM frames (the last frame is padded
/// with the CCSDS idle pattern 0x55). Frame counters continue across calls
/// through `master_count` / `vc_count` (wrap at 256 like the 8-bit fields).
std::vector<std::vector<std::uint8_t>> tm_frame_stream(
    std::span<const std::uint8_t> payload, const TmFrameConfig& config,
    std::uint8_t& master_count, std::uint8_t& vc_count);

struct TmFrameInfo {
  std::uint16_t spacecraft_id = 0;
  std::uint8_t virtual_channel = 0;
  std::uint8_t master_count = 0;
  std::uint8_t vc_count = 0;
  std::vector<std::uint8_t> data;  ///< data field (padding included)
};

/// Validates one frame (length, FECF) and extracts header + data field.
Result<TmFrameInfo> tm_decode_frame(std::span<const std::uint8_t> frame,
                                    const TmFrameConfig& config);

/// Decodes a frame sequence: checks per-frame FECF and VC counter
/// continuity; returns the concatenated data fields (padding NOT stripped —
/// the application layer above owns the payload length).
Result<std::vector<std::uint8_t>> tm_decode_stream(
    const std::vector<std::vector<std::uint8_t>>& frames,
    const TmFrameConfig& config);

}  // namespace hermes::apps
