#include "apps/vbn.hpp"

#include <cmath>

namespace hermes::apps {

VbnFrame render_frame(unsigned width, unsigned height, double cx, double cy,
                      double blob_sigma, unsigned noise_amplitude, Rng& rng) {
  VbnFrame frame;
  frame.width = width;
  frame.height = height;
  frame.pixels.resize(static_cast<std::size_t>(width) * height);
  for (unsigned y = 0; y < height; ++y) {
    for (unsigned x = 0; x < width; ++x) {
      const double dx = x - cx;
      const double dy = y - cy;
      const double blob =
          220.0 * std::exp(-(dx * dx + dy * dy) / (2 * blob_sigma * blob_sigma));
      const double noise =
          noise_amplitude ? static_cast<double>(rng.next_below(noise_amplitude))
                          : 0.0;
      const double value = blob + noise;
      frame.pixels[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::uint8_t>(value > 255 ? 255 : value);
    }
  }
  return frame;
}

VbnMeasurement measure_centroid(const VbnFrame& frame, std::uint8_t threshold) {
  VbnMeasurement result;
  std::uint64_t sum_w = 0, sum_x = 0, sum_y = 0;
  for (unsigned y = 0; y < frame.height; ++y) {
    for (unsigned x = 0; x < frame.width; ++x) {
      const std::uint8_t pixel =
          frame.pixels[static_cast<std::size_t>(y) * frame.width + x];
      if (pixel < threshold) continue;
      const std::uint64_t weight = pixel - threshold;
      sum_w += weight;
      sum_x += weight * x;
      sum_y += weight * y;
      ++result.bright_pixels;
    }
  }
  if (sum_w == 0 || result.bright_pixels < 3) return result;
  result.valid = true;
  result.x = static_cast<double>(sum_x) / static_cast<double>(sum_w);
  result.y = static_cast<double>(sum_y) / static_cast<double>(sum_w);
  return result;
}

}  // namespace hermes::apps
