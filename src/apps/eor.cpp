#include "apps/eor.hpp"

#include <cmath>

namespace hermes::apps {

double eor_remaining_dv(const EorState& state, const EorConfig& config) {
  const double v_now = std::sqrt(config.mu / state.sma_km);
  const double v_target = std::sqrt(config.mu / config.target_sma_km);
  return std::fabs(v_now - v_target);
}

double eor_step(EorState& state, const EorConfig& config) {
  if (state.on_station) return 0.0;
  // Arc delta-v from thrust/mass (mass treated constant over one arc).
  const double dv_arc =
      config.thrust_n / config.mass_kg * config.arc_seconds / 1000.0;  // km/s
  const double remaining = eor_remaining_dv(state, config);
  const double dv = dv_arc < remaining ? dv_arc : remaining;

  // Invert the Edelbaum relation to get the new semi-major axis: spiral-out
  // reduces circular velocity by dv.
  const double v_now = std::sqrt(config.mu / state.sma_km);
  const double v_new = v_now - dv;
  state.sma_km = config.mu / (v_new * v_new);
  state.delta_v_used += dv;
  ++state.arcs;
  if (eor_remaining_dv(state, config) < 1e-6) {
    state.on_station = true;
    state.sma_km = config.target_sma_km;
  }
  return eor_remaining_dv(state, config);
}

}  // namespace hermes::apps
