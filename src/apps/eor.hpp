// Electrical Orbit Raising (EOR) planning workload (paper Sec. V).
//
// Low-thrust transfer from an injection orbit toward GEO: each planning step
// updates the semi-major axis from the accumulated delta-v of a thrust arc
// (Edelbaum-style circular-to-circular approximation) and decides the next
// arc. Q16.16-free: the orbit numbers exceed fixed-point range, so this
// workload uses doubles (it runs on the application cores, not the FPGA).
#pragma once

#include <cstdint>

namespace hermes::apps {

struct EorConfig {
  double mu = 398600.4418;        ///< km^3/s^2 (Earth)
  double target_sma_km = 42164.0; ///< GEO
  double thrust_n = 0.3;          ///< electric thruster
  double mass_kg = 2000.0;
  double arc_seconds = 6000.0;    ///< thrust arc per planning step
};

struct EorState {
  double sma_km = 24500.0;        ///< injection orbit semi-major axis
  double delta_v_used = 0.0;      ///< km/s
  std::uint64_t arcs = 0;
  bool on_station = false;
};

/// Remaining delta-v to circular target (Edelbaum, coplanar):
/// |v_now - v_target| with v = sqrt(mu/a).
double eor_remaining_dv(const EorState& state, const EorConfig& config);

/// One planning step: apply one thrust arc, update the orbit; returns the
/// remaining delta-v after the arc.
double eor_step(EorState& state, const EorConfig& config);

}  // namespace hermes::apps
