#include "apps/compress.hpp"

namespace hermes::apps {
namespace {

class BitWriter {
 public:
  void put(std::uint32_t value, unsigned bits) {
    for (unsigned i = bits; i-- > 0;) {
      put_bit((value >> i) & 1u);
    }
  }
  void put_unary(std::uint32_t q) {
    for (std::uint32_t i = 0; i < q; ++i) put_bit(0);
    put_bit(1);
  }
  void put_bit(unsigned bit) {
    if (used_ % 8 == 0) bytes_.push_back(0);
    if (bit) bytes_.back() |= static_cast<std::uint8_t>(0x80u >> (used_ % 8));
    ++used_;
  }
  [[nodiscard]] std::size_t bits() const { return used_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t used_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}
  bool get_bit(unsigned& bit) {
    if (pos_ >= data_.size() * 8) return false;
    bit = (data_[pos_ / 8] >> (7 - pos_ % 8)) & 1u;
    ++pos_;
    return true;
  }
  bool get(unsigned bits, std::uint32_t& value) {
    value = 0;
    for (unsigned i = 0; i < bits; ++i) {
      unsigned bit = 0;
      if (!get_bit(bit)) return false;
      value = (value << 1) | bit;
    }
    return true;
  }
  bool get_unary(std::uint32_t& q) {
    q = 0;
    unsigned bit = 0;
    while (get_bit(bit)) {
      if (bit) return true;
      if (++q > 1u << 20) return false;  // corrupt stream guard
    }
    return false;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Zigzag: signed residual -> unsigned code.
std::uint32_t zigzag(std::int32_t v) {
  return (static_cast<std::uint32_t>(v) << 1) ^
         static_cast<std::uint32_t>(v >> 31);
}
std::int32_t unzigzag(std::uint32_t v) {
  return static_cast<std::int32_t>(v >> 1) ^ -static_cast<std::int32_t>(v & 1);
}

/// Bits Rice(k) needs for one value.
std::size_t rice_bits(std::uint32_t value, unsigned k) {
  return (value >> k) + 1 + k;
}

}  // namespace

std::vector<std::uint8_t> rice_encode(std::span<const std::uint16_t> samples,
                                      const RiceConfig& config,
                                      CompressStats* stats) {
  BitWriter out;
  std::uint16_t previous = 0;
  for (std::size_t start = 0; start < samples.size();
       start += config.block_samples) {
    const std::size_t n =
        std::min<std::size_t>(config.block_samples, samples.size() - start);
    // Residuals of this block (unit-delay predictor).
    std::vector<std::uint32_t> mapped(n);
    std::uint16_t prev = previous;
    for (std::size_t i = 0; i < n; ++i) {
      const std::int32_t residual =
          static_cast<std::int32_t>(samples[start + i]) -
          static_cast<std::int32_t>(prev);
      mapped[i] = zigzag(residual);
      prev = samples[start + i];
    }
    // Pick k minimizing the block cost.
    unsigned best_k = 0;
    std::size_t best_bits = SIZE_MAX;
    for (unsigned k = 0; k <= config.max_k; ++k) {
      std::size_t bits = 0;
      for (std::uint32_t value : mapped) bits += rice_bits(value, k);
      if (bits < best_bits) {
        best_bits = bits;
        best_k = k;
      }
    }
    // Block header: 4-bit k.
    out.put(best_k, 4);
    for (std::uint32_t value : mapped) {
      out.put_unary(value >> best_k);
      if (best_k) out.put(value & ((1u << best_k) - 1), best_k);
    }
    previous = prev;
  }
  if (stats) {
    stats->input_bits = samples.size() * 16;
    stats->output_bits = out.bits();
    stats->ratio = stats->output_bits
                       ? static_cast<double>(stats->input_bits) /
                             static_cast<double>(stats->output_bits)
                       : 0.0;
  }
  return out.take();
}

Result<std::vector<std::uint16_t>> rice_decode(
    std::span<const std::uint8_t> data, std::size_t count,
    const RiceConfig& config) {
  BitReader in(data);
  std::vector<std::uint16_t> samples;
  samples.reserve(count);
  std::uint16_t previous = 0;
  while (samples.size() < count) {
    std::uint32_t k = 0;
    if (!in.get(4, k)) {
      return Status::Error(ErrorCode::kIntegrityError, "truncated Rice stream");
    }
    const std::size_t n =
        std::min<std::size_t>(config.block_samples, count - samples.size());
    for (std::size_t i = 0; i < n; ++i) {
      std::uint32_t q = 0, r = 0;
      if (!in.get_unary(q)) {
        return Status::Error(ErrorCode::kIntegrityError, "truncated unary code");
      }
      if (k && !in.get(k, r)) {
        return Status::Error(ErrorCode::kIntegrityError, "truncated remainder");
      }
      const std::uint32_t mapped = (q << k) | r;
      const std::int32_t residual = unzigzag(mapped);
      previous = static_cast<std::uint16_t>(previous + residual);
      samples.push_back(previous);
    }
  }
  return samples;
}

}  // namespace hermes::apps
