// Abstract syntax tree for the HLS C subset.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "frontend/lexer.hpp"

namespace hermes::fe {

/// Scalar integer/bool type. Widths: bool=1; iN/uN for N in {8,16,32,64}.
struct Type {
  enum class Kind : std::uint8_t { kVoid, kBool, kInt };
  Kind kind = Kind::kInt;
  unsigned bits = 32;
  bool is_signed = true;

  static Type Void() { return {Kind::kVoid, 0, false}; }
  static Type Bool() { return {Kind::kBool, 1, false}; }
  static Type Int(unsigned bits, bool is_signed) {
    return {Kind::kInt, bits, is_signed};
  }
  bool operator==(const Type&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// Parses a type name: void, bool, int, unsigned, char, short, long,
/// int8_t..int64_t, uint8_t..uint64_t. Returns false if `name` is not a type.
bool parse_type_name(std::string_view name, Type& out);

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class UnaryOp : std::uint8_t { kNeg, kNot, kBitNot };
enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

const char* to_string(UnaryOp op);
const char* to_string(BinaryOp op);

struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit, kBoolLit, kVarRef, kArrayIndex, kUnary, kBinary,
    kTernary, kCall, kCast, kAssign,
  };
  explicit Expr(Kind kind) : kind(kind) {}
  virtual ~Expr() = default;

  Kind kind;
  SrcLoc loc;
  Type type;  ///< filled in by the type checker
};

using ExprPtr = std::unique_ptr<Expr>;

struct IntLitExpr : Expr {
  IntLitExpr() : Expr(Kind::kIntLit) {}
  std::uint64_t value = 0;
};

struct BoolLitExpr : Expr {
  BoolLitExpr() : Expr(Kind::kBoolLit) {}
  bool value = false;
};

struct VarRefExpr : Expr {
  VarRefExpr() : Expr(Kind::kVarRef) {}
  std::string name;
};

struct ArrayIndexExpr : Expr {
  ArrayIndexExpr() : Expr(Kind::kArrayIndex) {}
  std::string array;
  /// One expression per dimension (a[i][j] has two); the type checker
  /// requires exactly as many as the array declares.
  std::vector<ExprPtr> indices;
};

struct UnaryExpr : Expr {
  UnaryExpr() : Expr(Kind::kUnary) {}
  UnaryOp op = UnaryOp::kNeg;
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr() : Expr(Kind::kBinary) {}
  BinaryOp op = BinaryOp::kAdd;
  ExprPtr lhs, rhs;
};

struct TernaryExpr : Expr {
  TernaryExpr() : Expr(Kind::kTernary) {}
  ExprPtr condition, if_true, if_false;
};

struct CallExpr : Expr {
  CallExpr() : Expr(Kind::kCall) {}
  std::string callee;
  std::vector<ExprPtr> args;  ///< scalar args; array args are VarRefs to arrays
};

struct CastExpr : Expr {
  CastExpr() : Expr(Kind::kCast) {}
  Type target;
  ExprPtr operand;
};

/// Assignment used as an expression (value = stored value). Targets are
/// variables or array elements.
struct AssignExpr : Expr {
  AssignExpr() : Expr(Kind::kAssign) {}
  ExprPtr target;  ///< VarRefExpr or ArrayIndexExpr
  ExprPtr value;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct Stmt {
  enum class Kind : std::uint8_t {
    kExpr, kVarDecl, kBlock, kIf, kWhile, kDoWhile, kFor,
    kReturn, kBreak, kContinue,
  };
  explicit Stmt(Kind kind) : kind(kind) {}
  virtual ~Stmt() = default;

  Kind kind;
  SrcLoc loc;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct ExprStmt : Stmt {
  ExprStmt() : Stmt(Kind::kExpr) {}
  ExprPtr expr;
};

/// Declares a scalar (array_size == 0) or a fixed-size local array
/// (possibly multi-dimensional; array_size is the flattened element count).
struct VarDeclStmt : Stmt {
  VarDeclStmt() : Stmt(Kind::kVarDecl) {}
  Type type;
  std::string name;
  std::size_t array_size = 0;
  std::vector<std::size_t> dims;     ///< per-dimension extents (empty = scalar)
  ExprPtr init;                      ///< scalar initializer (optional)
  std::vector<std::uint64_t> array_init;  ///< flattened initializer (optional)
};

struct BlockStmt : Stmt {
  BlockStmt() : Stmt(Kind::kBlock) {}
  std::vector<StmtPtr> body;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(Kind::kIf) {}
  ExprPtr condition;
  StmtPtr then_branch;
  StmtPtr else_branch;  ///< may be null
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(Kind::kWhile) {}
  ExprPtr condition;
  StmtPtr body;
};

struct DoWhileStmt : Stmt {
  DoWhileStmt() : Stmt(Kind::kDoWhile) {}
  StmtPtr body;
  ExprPtr condition;
};

struct ForStmt : Stmt {
  ForStmt() : Stmt(Kind::kFor) {}
  StmtPtr init;       ///< VarDeclStmt or ExprStmt; may be null
  ExprPtr condition;  ///< may be null (infinite)
  ExprPtr update;     ///< may be null
  StmtPtr body;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(Kind::kReturn) {}
  ExprPtr value;  ///< null for void return
};

struct BreakStmt : Stmt {
  BreakStmt() : Stmt(Kind::kBreak) {}
};

struct ContinueStmt : Stmt {
  ContinueStmt() : Stmt(Kind::kContinue) {}
};

// ---------------------------------------------------------------------------
// Functions and programs
// ---------------------------------------------------------------------------

/// Function parameter: scalar, or array of fixed size (becomes an accelerator
/// memory interface in the HLS flow).
struct Param {
  Type type;
  std::string name;
  std::size_t array_size = 0;  ///< flattened element count; 0 = scalar
  std::vector<std::size_t> dims;  ///< per-dimension extents (empty = scalar)
  bool is_const = false;       ///< const arrays are read-only (ROM candidates)
};

struct FuncDecl {
  Type return_type;
  std::string name;
  std::vector<Param> params;
  std::unique_ptr<BlockStmt> body;
  SrcLoc loc;
};

struct Program {
  std::vector<FuncDecl> functions;
  [[nodiscard]] const FuncDecl* find(std::string_view name) const {
    for (const FuncDecl& fn : functions) {
      if (fn.name == name) return &fn;
    }
    return nullptr;
  }
};

}  // namespace hermes::fe
