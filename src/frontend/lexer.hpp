// Lexer for the C subset accepted by the HLS frontend.
//
// Bambu consumes "a program written in a well-known software language such as
// C/C++"; our reproduction accepts a C subset rich enough for the HERMES use
// cases (fixed-size arrays, integer arithmetic of explicit widths, loops,
// function calls).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hermes::fe {

/// 1-based source position for diagnostics.
struct SrcLoc {
  unsigned line = 1;
  unsigned column = 1;
};

enum class TokKind : std::uint8_t {
  kEof,
  kIdentifier,
  kIntLiteral,
  // Keywords.
  kKwVoid, kKwBool, kKwIf, kKwElse, kKwFor, kKwWhile, kKwDo,
  kKwReturn, kKwBreak, kKwContinue, kKwTrue, kKwFalse, kKwConst,
  // Punctuation / operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kComma, kSemicolon, kQuestion, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kLt, kGt, kLe, kGe, kEqEq, kNe,
  kAmpAmp, kPipePipe,
  kAssign, kPlusAssign, kMinusAssign, kStarAssign,
  kPlusPlus, kMinusMinus,
};

const char* to_string(TokKind kind);

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;          ///< identifier spelling or literal text
  std::uint64_t int_value = 0;  ///< for kIntLiteral
  SrcLoc loc;
};

/// Tokenizes `source`; on success the stream ends with a kEof token.
Result<std::vector<Token>> lex(std::string_view source);

}  // namespace hermes::fe
