#include "frontend/typecheck.hpp"

#include <map>
#include <set>
#include <vector>

#include "common/strings.hpp"

namespace hermes::fe {

Type arithmetic_result(const Type& a, const Type& b) {
  // Integer promotion: everything below 32 bits promotes to int32.
  auto promote = [](const Type& t) {
    if (t.kind == Type::Kind::kBool) return Type::Int(32, true);
    if (t.bits < 32) return Type::Int(32, true);
    return t;
  };
  const Type pa = promote(a);
  const Type pb = promote(b);
  if (pa.bits != pb.bits) return pa.bits > pb.bits ? pa : pb;
  if (pa.is_signed == pb.is_signed) return pa;
  return Type::Int(pa.bits, false);  // mixed signedness at equal width: unsigned
}

namespace {

struct VarInfo {
  Type type;
  std::size_t array_size = 0;  ///< flattened element count; 0 = scalar
  std::vector<std::size_t> dims;  ///< per-dimension extents
  bool is_const = false;
};

class Checker {
 public:
  explicit Checker(Program& program) : program_(program) {}

  Status run() {
    for (FuncDecl& fn : program_.functions) {
      if (!check_function(fn)) return error_;
    }
    if (!check_no_recursion()) return error_;
    return Status::Ok();
  }

 private:
  void fail(SrcLoc loc, std::string message) {
    if (error_.ok()) {
      error_ = Status::Error(ErrorCode::kTypeError,
                             format("line %u: %s", loc.line, message.c_str()));
    }
  }
  [[nodiscard]] bool failed() const { return !error_.ok(); }

  // ---- scope handling ----
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  bool declare(SrcLoc loc, const std::string& name, VarInfo info) {
    if (scopes_.back().count(name)) {
      fail(loc, format("redeclaration of '%s'", name.c_str()));
      return false;
    }
    scopes_.back()[name] = std::move(info);
    return true;
  }
  const VarInfo* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // ---- functions ----
  bool check_function(FuncDecl& fn) {
    current_ = &fn;
    scopes_.clear();
    push_scope();
    for (const Param& param : fn.params) {
      if (param.type.kind == Type::Kind::kVoid) {
        fail(fn.loc, format("parameter '%s' cannot be void", param.name.c_str()));
        return false;
      }
      declare(fn.loc, param.name,
              {param.type, param.array_size, param.dims, param.is_const});
      if (failed()) return false;
    }
    loop_depth_ = 0;
    check_stmt(*fn.body);
    pop_scope();
    return !failed();
  }

  bool check_no_recursion() {
    // DFS over the call graph; functions are inlined, so cycles are fatal.
    enum class Mark { kWhite, kGray, kBlack };
    std::map<std::string, Mark> marks;
    for (const FuncDecl& fn : program_.functions) marks[fn.name] = Mark::kWhite;

    std::vector<const FuncDecl*> stack;
    auto visit = [&](auto&& self, const FuncDecl& fn) -> bool {
      marks[fn.name] = Mark::kGray;
      bool ok = true;
      collect_calls(*fn.body, [&](const CallExpr& call) {
        const FuncDecl* callee = program_.find(call.callee);
        if (!callee) return;  // reported during expression checking
        if (marks[callee->name] == Mark::kGray) {
          fail(call.loc, format("recursive call to '%s' (recursion is not "
                                "synthesizable)", call.callee.c_str()));
          ok = false;
        } else if (marks[callee->name] == Mark::kWhite) {
          if (!self(self, *callee)) ok = false;
        }
      });
      marks[fn.name] = Mark::kBlack;
      return ok;
    };
    for (const FuncDecl& fn : program_.functions) {
      if (marks[fn.name] == Mark::kWhite && !visit(visit, fn)) return false;
    }
    return !failed();
  }

  template <typename Fn>
  void collect_calls(const Stmt& stmt, const Fn& fn) {
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        collect_calls_expr(*static_cast<const ExprStmt&>(stmt).expr, fn);
        break;
      case Stmt::Kind::kVarDecl: {
        const auto& decl = static_cast<const VarDeclStmt&>(stmt);
        if (decl.init) collect_calls_expr(*decl.init, fn);
        break;
      }
      case Stmt::Kind::kBlock:
        for (const StmtPtr& child : static_cast<const BlockStmt&>(stmt).body) {
          collect_calls(*child, fn);
        }
        break;
      case Stmt::Kind::kIf: {
        const auto& branch = static_cast<const IfStmt&>(stmt);
        collect_calls_expr(*branch.condition, fn);
        collect_calls(*branch.then_branch, fn);
        if (branch.else_branch) collect_calls(*branch.else_branch, fn);
        break;
      }
      case Stmt::Kind::kWhile: {
        const auto& loop = static_cast<const WhileStmt&>(stmt);
        collect_calls_expr(*loop.condition, fn);
        collect_calls(*loop.body, fn);
        break;
      }
      case Stmt::Kind::kDoWhile: {
        const auto& loop = static_cast<const DoWhileStmt&>(stmt);
        collect_calls(*loop.body, fn);
        collect_calls_expr(*loop.condition, fn);
        break;
      }
      case Stmt::Kind::kFor: {
        const auto& loop = static_cast<const ForStmt&>(stmt);
        if (loop.init) collect_calls(*loop.init, fn);
        if (loop.condition) collect_calls_expr(*loop.condition, fn);
        if (loop.update) collect_calls_expr(*loop.update, fn);
        collect_calls(*loop.body, fn);
        break;
      }
      case Stmt::Kind::kReturn: {
        const auto& ret = static_cast<const ReturnStmt&>(stmt);
        if (ret.value) collect_calls_expr(*ret.value, fn);
        break;
      }
      default:
        break;
    }
  }

  template <typename Fn>
  void collect_calls_expr(const Expr& expr, const Fn& fn) {
    switch (expr.kind) {
      case Expr::Kind::kCall: {
        const auto& call = static_cast<const CallExpr&>(expr);
        fn(call);
        for (const ExprPtr& arg : call.args) collect_calls_expr(*arg, fn);
        break;
      }
      case Expr::Kind::kArrayIndex:
        for (const ExprPtr& index :
             static_cast<const ArrayIndexExpr&>(expr).indices) {
          collect_calls_expr(*index, fn);
        }
        break;
      case Expr::Kind::kUnary:
        collect_calls_expr(*static_cast<const UnaryExpr&>(expr).operand, fn);
        break;
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const BinaryExpr&>(expr);
        collect_calls_expr(*bin.lhs, fn);
        collect_calls_expr(*bin.rhs, fn);
        break;
      }
      case Expr::Kind::kTernary: {
        const auto& sel = static_cast<const TernaryExpr&>(expr);
        collect_calls_expr(*sel.condition, fn);
        collect_calls_expr(*sel.if_true, fn);
        collect_calls_expr(*sel.if_false, fn);
        break;
      }
      case Expr::Kind::kCast:
        collect_calls_expr(*static_cast<const CastExpr&>(expr).operand, fn);
        break;
      case Expr::Kind::kAssign: {
        const auto& assign = static_cast<const AssignExpr&>(expr);
        collect_calls_expr(*assign.target, fn);
        collect_calls_expr(*assign.value, fn);
        break;
      }
      default:
        break;
    }
  }

  // ---- statements ----
  void check_stmt(Stmt& stmt) {
    if (failed()) return;
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        check_expr(*static_cast<ExprStmt&>(stmt).expr);
        break;
      case Stmt::Kind::kVarDecl: {
        auto& decl = static_cast<VarDeclStmt&>(stmt);
        if (decl.type.kind == Type::Kind::kVoid) {
          fail(decl.loc, format("variable '%s' cannot be void", decl.name.c_str()));
          return;
        }
        if (decl.array_size == 0 && !decl.array_init.empty()) {
          fail(decl.loc, "scalar cannot have an array initializer");
          return;
        }
        if (decl.array_init.size() > decl.array_size) {
          fail(decl.loc, format("too many initializers for '%s'", decl.name.c_str()));
          return;
        }
        if (decl.init) {
          check_expr(*decl.init);
          require_scalar(*decl.init, "initializer");
        }
        declare(decl.loc, decl.name,
                {decl.type, decl.array_size, decl.dims, false});
        break;
      }
      case Stmt::Kind::kBlock: {
        push_scope();
        for (StmtPtr& child : static_cast<BlockStmt&>(stmt).body) {
          check_stmt(*child);
        }
        pop_scope();
        break;
      }
      case Stmt::Kind::kIf: {
        auto& branch = static_cast<IfStmt&>(stmt);
        check_condition(*branch.condition);
        check_stmt(*branch.then_branch);
        if (branch.else_branch) check_stmt(*branch.else_branch);
        break;
      }
      case Stmt::Kind::kWhile: {
        auto& loop = static_cast<WhileStmt&>(stmt);
        check_condition(*loop.condition);
        ++loop_depth_;
        check_stmt(*loop.body);
        --loop_depth_;
        break;
      }
      case Stmt::Kind::kDoWhile: {
        auto& loop = static_cast<DoWhileStmt&>(stmt);
        ++loop_depth_;
        check_stmt(*loop.body);
        --loop_depth_;
        check_condition(*loop.condition);
        break;
      }
      case Stmt::Kind::kFor: {
        auto& loop = static_cast<ForStmt&>(stmt);
        push_scope();
        if (loop.init) check_stmt(*loop.init);
        if (loop.condition) check_condition(*loop.condition);
        if (loop.update) check_expr(*loop.update);
        ++loop_depth_;
        check_stmt(*loop.body);
        --loop_depth_;
        pop_scope();
        break;
      }
      case Stmt::Kind::kReturn: {
        auto& ret = static_cast<ReturnStmt&>(stmt);
        if (current_->return_type.kind == Type::Kind::kVoid) {
          if (ret.value) fail(ret.loc, "void function cannot return a value");
        } else {
          if (!ret.value) {
            fail(ret.loc, "non-void function must return a value");
          } else {
            check_expr(*ret.value);
            require_scalar(*ret.value, "return value");
          }
        }
        break;
      }
      case Stmt::Kind::kBreak:
        if (loop_depth_ == 0) fail(stmt.loc, "break outside a loop");
        break;
      case Stmt::Kind::kContinue:
        if (loop_depth_ == 0) fail(stmt.loc, "continue outside a loop");
        break;
    }
  }

  void check_condition(Expr& expr) {
    check_expr(expr);
    require_scalar(expr, "condition");
  }

  void require_scalar(const Expr& expr, const char* what) {
    if (failed()) return;
    if (expr.type.kind == Type::Kind::kVoid) {
      fail(expr.loc, format("%s must have a value", what));
    }
  }

  // ---- expressions ----
  void check_expr(Expr& expr) {
    if (failed()) return;
    switch (expr.kind) {
      case Expr::Kind::kIntLit: {
        auto& lit = static_cast<IntLitExpr&>(expr);
        // Literal type: int32 unless the value needs 64 bits.
        expr.type = lit.value > 0x7FFFFFFFull ? Type::Int(64, lit.value <= 0x7FFFFFFFFFFFFFFFull)
                                              : Type::Int(32, true);
        break;
      }
      case Expr::Kind::kBoolLit:
        expr.type = Type::Bool();
        break;
      case Expr::Kind::kVarRef: {
        auto& ref = static_cast<VarRefExpr&>(expr);
        const VarInfo* info = lookup(ref.name);
        if (!info) {
          fail(ref.loc, format("use of undeclared identifier '%s'", ref.name.c_str()));
          return;
        }
        if (info->array_size != 0) {
          fail(ref.loc, format("array '%s' used as a scalar (only indexing and "
                               "passing to array parameters is allowed)",
                               ref.name.c_str()));
          return;
        }
        expr.type = info->type;
        break;
      }
      case Expr::Kind::kArrayIndex: {
        auto& index = static_cast<ArrayIndexExpr&>(expr);
        const VarInfo* info = lookup(index.array);
        if (!info) {
          fail(index.loc, format("use of undeclared array '%s'", index.array.c_str()));
          return;
        }
        if (info->array_size == 0) {
          fail(index.loc, format("'%s' is not an array", index.array.c_str()));
          return;
        }
        if (index.indices.size() != info->dims.size()) {
          fail(index.loc,
               format("'%s' has %zu dimension(s) but %zu index(es) given",
                      index.array.c_str(), info->dims.size(),
                      index.indices.size()));
          return;
        }
        for (const ExprPtr& idx : index.indices) {
          check_expr(*idx);
          require_scalar(*idx, "array index");
        }
        expr.type = info->type;
        break;
      }
      case Expr::Kind::kUnary: {
        auto& unary = static_cast<UnaryExpr&>(expr);
        check_expr(*unary.operand);
        require_scalar(*unary.operand, "operand");
        if (failed()) return;
        switch (unary.op) {
          case UnaryOp::kNot:
            expr.type = Type::Bool();
            break;
          case UnaryOp::kNeg:
          case UnaryOp::kBitNot:
            expr.type = arithmetic_result(unary.operand->type, unary.operand->type);
            break;
        }
        break;
      }
      case Expr::Kind::kBinary: {
        auto& bin = static_cast<BinaryExpr&>(expr);
        check_expr(*bin.lhs);
        check_expr(*bin.rhs);
        require_scalar(*bin.lhs, "operand");
        require_scalar(*bin.rhs, "operand");
        if (failed()) return;
        switch (bin.op) {
          case BinaryOp::kEq: case BinaryOp::kNe:
          case BinaryOp::kLt: case BinaryOp::kLe:
          case BinaryOp::kGt: case BinaryOp::kGe:
          case BinaryOp::kLogicalAnd: case BinaryOp::kLogicalOr:
            expr.type = Type::Bool();
            break;
          case BinaryOp::kShl: case BinaryOp::kShr:
            // Shift result has the (promoted) type of the left operand.
            expr.type = arithmetic_result(bin.lhs->type, bin.lhs->type);
            break;
          default:
            expr.type = arithmetic_result(bin.lhs->type, bin.rhs->type);
            break;
        }
        break;
      }
      case Expr::Kind::kTernary: {
        auto& sel = static_cast<TernaryExpr&>(expr);
        check_expr(*sel.condition);
        check_expr(*sel.if_true);
        check_expr(*sel.if_false);
        require_scalar(*sel.condition, "condition");
        require_scalar(*sel.if_true, "ternary arm");
        require_scalar(*sel.if_false, "ternary arm");
        if (failed()) return;
        expr.type = arithmetic_result(sel.if_true->type, sel.if_false->type);
        break;
      }
      case Expr::Kind::kCall: {
        auto& call = static_cast<CallExpr&>(expr);
        const FuncDecl* callee = program_.find(call.callee);
        if (!callee) {
          fail(call.loc, format("call to undefined function '%s'", call.callee.c_str()));
          return;
        }
        if (call.args.size() != callee->params.size()) {
          fail(call.loc, format("'%s' expects %zu arguments, got %zu",
                                call.callee.c_str(), callee->params.size(),
                                call.args.size()));
          return;
        }
        for (std::size_t i = 0; i < call.args.size(); ++i) {
          const Param& param = callee->params[i];
          Expr& arg = *call.args[i];
          if (param.array_size != 0) {
            // Array parameters accept exactly an array variable of the same
            // element type and size (no slicing in the subset).
            if (arg.kind != Expr::Kind::kVarRef) {
              fail(arg.loc, format("argument %zu of '%s' must be an array "
                                   "variable", i + 1, call.callee.c_str()));
              return;
            }
            const auto& ref = static_cast<const VarRefExpr&>(arg);
            const VarInfo* info = lookup(ref.name);
            if (!info || info->array_size == 0) {
              fail(arg.loc, format("argument %zu of '%s' must be an array",
                                   i + 1, call.callee.c_str()));
              return;
            }
            if (info->dims != param.dims || !(info->type == param.type)) {
              fail(arg.loc, format("array argument %zu of '%s' has mismatched "
                                   "element type or dimensions",
                                   i + 1, call.callee.c_str()));
              return;
            }
            arg.type = param.type;  // element type, by convention
          } else {
            check_expr(arg);
            require_scalar(arg, "argument");
            if (failed()) return;
          }
        }
        expr.type = callee->return_type;
        break;
      }
      case Expr::Kind::kCast: {
        auto& cast = static_cast<CastExpr&>(expr);
        check_expr(*cast.operand);
        require_scalar(*cast.operand, "cast operand");
        if (cast.target.kind == Type::Kind::kVoid) {
          fail(cast.loc, "cannot cast to void");
          return;
        }
        expr.type = cast.target;
        break;
      }
      case Expr::Kind::kAssign: {
        auto& assign = static_cast<AssignExpr&>(expr);
        if (assign.target->kind != Expr::Kind::kVarRef &&
            assign.target->kind != Expr::Kind::kArrayIndex) {
          fail(assign.loc, "assignment target must be a variable or array element");
          return;
        }
        // For VarRef targets, bypass the scalar-use restriction check in
        // check_expr by validating directly.
        if (assign.target->kind == Expr::Kind::kVarRef) {
          auto& ref = static_cast<VarRefExpr&>(*assign.target);
          const VarInfo* info = lookup(ref.name);
          if (!info) {
            fail(ref.loc, format("use of undeclared identifier '%s'", ref.name.c_str()));
            return;
          }
          if (info->array_size != 0) {
            fail(ref.loc, format("cannot assign to array '%s'", ref.name.c_str()));
            return;
          }
          ref.type = info->type;
        } else {
          check_expr(*assign.target);
          auto& index = static_cast<ArrayIndexExpr&>(*assign.target);
          const VarInfo* info = lookup(index.array);
          if (info && info->is_const) {
            fail(index.loc, format("cannot write to const array '%s'",
                                   index.array.c_str()));
            return;
          }
        }
        check_expr(*assign.value);
        require_scalar(*assign.value, "assigned value");
        expr.type = assign.target->type;
        break;
      }
    }
  }

  Program& program_;
  FuncDecl* current_ = nullptr;
  std::vector<std::map<std::string, VarInfo>> scopes_;
  int loop_depth_ = 0;
  Status error_;
};

}  // namespace

Status typecheck(Program& program) { return Checker(program).run(); }

}  // namespace hermes::fe
