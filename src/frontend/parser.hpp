// Recursive-descent parser for the HLS C subset.
//
// Notes on the accepted subset (see docs/LANGUAGE.md for the full reference):
//  * pointers are not supported; arrays are passed by reference with an
//    explicit size (they become accelerator memory interfaces);
//  * ++/-- are desugared to `x = x +/- 1` and return the *new* value, so they
//    should be used in statement or for-update position only;
//  * all functions called from the top-level kernel must be defined in the
//    same translation unit (they are inlined during IR lowering).
#pragma once

#include "common/status.hpp"
#include "frontend/ast.hpp"

namespace hermes::fe {

/// Parses a full translation unit.
Result<Program> parse(std::string_view source);

}  // namespace hermes::fe
