#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "common/strings.hpp"

namespace hermes::fe {

const char* to_string(TokKind kind) {
  switch (kind) {
    case TokKind::kEof: return "<eof>";
    case TokKind::kIdentifier: return "identifier";
    case TokKind::kIntLiteral: return "integer literal";
    case TokKind::kKwVoid: return "void";
    case TokKind::kKwBool: return "bool";
    case TokKind::kKwIf: return "if";
    case TokKind::kKwElse: return "else";
    case TokKind::kKwFor: return "for";
    case TokKind::kKwWhile: return "while";
    case TokKind::kKwDo: return "do";
    case TokKind::kKwReturn: return "return";
    case TokKind::kKwBreak: return "break";
    case TokKind::kKwContinue: return "continue";
    case TokKind::kKwTrue: return "true";
    case TokKind::kKwFalse: return "false";
    case TokKind::kKwConst: return "const";
    case TokKind::kLParen: return "(";
    case TokKind::kRParen: return ")";
    case TokKind::kLBrace: return "{";
    case TokKind::kRBrace: return "}";
    case TokKind::kLBracket: return "[";
    case TokKind::kRBracket: return "]";
    case TokKind::kComma: return ",";
    case TokKind::kSemicolon: return ";";
    case TokKind::kQuestion: return "?";
    case TokKind::kColon: return ":";
    case TokKind::kPlus: return "+";
    case TokKind::kMinus: return "-";
    case TokKind::kStar: return "*";
    case TokKind::kSlash: return "/";
    case TokKind::kPercent: return "%";
    case TokKind::kAmp: return "&";
    case TokKind::kPipe: return "|";
    case TokKind::kCaret: return "^";
    case TokKind::kTilde: return "~";
    case TokKind::kBang: return "!";
    case TokKind::kShl: return "<<";
    case TokKind::kShr: return ">>";
    case TokKind::kLt: return "<";
    case TokKind::kGt: return ">";
    case TokKind::kLe: return "<=";
    case TokKind::kGe: return ">=";
    case TokKind::kEqEq: return "==";
    case TokKind::kNe: return "!=";
    case TokKind::kAmpAmp: return "&&";
    case TokKind::kPipePipe: return "||";
    case TokKind::kAssign: return "=";
    case TokKind::kPlusAssign: return "+=";
    case TokKind::kMinusAssign: return "-=";
    case TokKind::kStarAssign: return "*=";
    case TokKind::kPlusPlus: return "++";
    case TokKind::kMinusMinus: return "--";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokKind> table = {
      {"void", TokKind::kKwVoid},     {"bool", TokKind::kKwBool},
      {"if", TokKind::kKwIf},         {"else", TokKind::kKwElse},
      {"for", TokKind::kKwFor},       {"while", TokKind::kKwWhile},
      {"do", TokKind::kKwDo},         {"return", TokKind::kKwReturn},
      {"break", TokKind::kKwBreak},   {"continue", TokKind::kKwContinue},
      {"true", TokKind::kKwTrue},     {"false", TokKind::kKwFalse},
      {"const", TokKind::kKwConst},
  };
  return table;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      if (!error_.ok()) return error_;
      if (at_end()) {
        tokens.push_back({TokKind::kEof, "", 0, loc_});
        return tokens;
      }
      Token token;
      token.loc = loc_;
      const char c = peek();
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        lex_identifier(token);
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        lex_number(token);
        if (!error_.ok()) return error_;
      } else {
        lex_punct(token);
        if (!error_.ok()) return error_;
      }
      tokens.push_back(std::move(token));
    }
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  bool match(char expected) {
    if (at_end() || peek() != expected) return false;
    advance();
    return true;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (!at_end() && !(peek() == '*' && peek(1) == '/')) advance();
        if (at_end()) {
          error_ = Status::Error(ErrorCode::kParseError,
                                 format("line %u: unterminated block comment", loc_.line));
          return;
        }
        advance();
        advance();
      } else {
        return;
      }
    }
  }

  void lex_identifier(Token& token) {
    std::string text;
    while (!at_end() && (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
      text.push_back(advance());
    }
    const auto& keywords = keyword_table();
    const auto it = keywords.find(text);
    token.kind = it != keywords.end() ? it->second : TokKind::kIdentifier;
    token.text = std::move(text);
  }

  void lex_number(Token& token) {
    token.kind = TokKind::kIntLiteral;
    std::uint64_t value = 0;
    if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
      advance();
      advance();
      bool any = false;
      while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) {
        const char c = advance();
        const unsigned digit = std::isdigit(static_cast<unsigned char>(c))
                                   ? static_cast<unsigned>(c - '0')
                                   : static_cast<unsigned>(std::tolower(c) - 'a' + 10);
        value = value * 16 + digit;
        any = true;
      }
      if (!any) {
        error_ = Status::Error(ErrorCode::kParseError,
                               format("line %u: malformed hex literal", token.loc.line));
        return;
      }
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        value = value * 10 + static_cast<unsigned>(advance() - '0');
      }
    }
    // Optional integer suffixes (u, l, ul, ll, ull) are accepted and ignored.
    while (!at_end() && (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L')) {
      advance();
    }
    token.int_value = value;
    token.text = std::to_string(value);
  }

  void lex_punct(Token& token) {
    const char c = advance();
    switch (c) {
      case '(': token.kind = TokKind::kLParen; return;
      case ')': token.kind = TokKind::kRParen; return;
      case '{': token.kind = TokKind::kLBrace; return;
      case '}': token.kind = TokKind::kRBrace; return;
      case '[': token.kind = TokKind::kLBracket; return;
      case ']': token.kind = TokKind::kRBracket; return;
      case ',': token.kind = TokKind::kComma; return;
      case ';': token.kind = TokKind::kSemicolon; return;
      case '?': token.kind = TokKind::kQuestion; return;
      case ':': token.kind = TokKind::kColon; return;
      case '+':
        token.kind = match('=') ? TokKind::kPlusAssign
                    : match('+') ? TokKind::kPlusPlus
                                 : TokKind::kPlus;
        return;
      case '-':
        token.kind = match('=') ? TokKind::kMinusAssign
                    : match('-') ? TokKind::kMinusMinus
                                 : TokKind::kMinus;
        return;
      case '*':
        token.kind = match('=') ? TokKind::kStarAssign : TokKind::kStar;
        return;
      case '/': token.kind = TokKind::kSlash; return;
      case '%': token.kind = TokKind::kPercent; return;
      case '^': token.kind = TokKind::kCaret; return;
      case '~': token.kind = TokKind::kTilde; return;
      case '&':
        token.kind = match('&') ? TokKind::kAmpAmp : TokKind::kAmp;
        return;
      case '|':
        token.kind = match('|') ? TokKind::kPipePipe : TokKind::kPipe;
        return;
      case '!':
        token.kind = match('=') ? TokKind::kNe : TokKind::kBang;
        return;
      case '=':
        token.kind = match('=') ? TokKind::kEqEq : TokKind::kAssign;
        return;
      case '<':
        token.kind = match('<') ? TokKind::kShl
                    : match('=') ? TokKind::kLe
                                 : TokKind::kLt;
        return;
      case '>':
        token.kind = match('>') ? TokKind::kShr
                    : match('=') ? TokKind::kGe
                                 : TokKind::kGt;
        return;
      default:
        error_ = Status::Error(
            ErrorCode::kParseError,
            format("line %u: unexpected character '%c'", token.loc.line, c));
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  SrcLoc loc_;
  Status error_;
};

}  // namespace

Result<std::vector<Token>> lex(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace hermes::fe
