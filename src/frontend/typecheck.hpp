// Semantic analysis for the HLS C subset.
//
// Annotates every expression with its type, enforces the subset's rules
// (declared-before-use, constant array sizes, no recursion — functions are
// inlined by the IR lowering), and applies C's usual arithmetic conversions.
#pragma once

#include "common/status.hpp"
#include "frontend/ast.hpp"

namespace hermes::fe {

/// Type-checks the whole program in place. On success every Expr::type is
/// valid and the call graph is known to be acyclic.
Status typecheck(Program& program);

/// C usual-arithmetic-conversion result for two scalar operand types
/// (both promoted to at least 32 bits; wider operand wins; on equal width
/// unsigned wins).
Type arithmetic_result(const Type& a, const Type& b);

}  // namespace hermes::fe
