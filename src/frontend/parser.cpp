#include "frontend/parser.hpp"

#include <cassert>

#include "common/strings.hpp"

namespace hermes::fe {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Program> run() {
    Program program;
    while (!check(TokKind::kEof)) {
      FuncDecl fn;
      if (!parse_function(fn)) return error_;
      program.functions.push_back(std::move(fn));
    }
    return program;
  }

 private:
  // ---- token plumbing ----
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
    const std::size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : tokens_.back();
  }
  [[nodiscard]] bool check(TokKind kind) const { return peek().kind == kind; }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool match(TokKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  bool expect(TokKind kind, const char* context) {
    if (match(kind)) return true;
    fail(format("line %u: expected '%s' %s, got '%s'", peek().loc.line,
                to_string(kind), context,
                peek().kind == TokKind::kIdentifier ? peek().text.c_str()
                                                    : to_string(peek().kind)));
    return false;
  }
  void fail(std::string message) {
    if (error_.ok()) error_ = Status::Error(ErrorCode::kParseError, std::move(message));
  }
  [[nodiscard]] bool failed() const { return !error_.ok(); }

  /// True if the current token begins a type name (keyword or typedef name).
  bool at_type(Type* out = nullptr) {
    Type type;
    if (check(TokKind::kKwVoid)) { type = Type::Void(); }
    else if (check(TokKind::kKwBool)) { type = Type::Bool(); }
    else if (check(TokKind::kIdentifier) && parse_type_name(peek().text, type)) {}
    else return false;
    if (out) *out = type;
    return true;
  }

  // ---- declarations ----
  bool parse_function(FuncDecl& fn) {
    match(TokKind::kKwConst);  // `const` on return type: accepted, ignored
    Type ret;
    if (!at_type(&ret)) {
      fail(format("line %u: expected function return type", peek().loc.line));
      return false;
    }
    fn.loc = peek().loc;
    advance();
    fn.return_type = ret;
    if (!check(TokKind::kIdentifier)) {
      fail(format("line %u: expected function name", peek().loc.line));
      return false;
    }
    fn.name = advance().text;
    if (!expect(TokKind::kLParen, "after function name")) return false;
    if (!check(TokKind::kRParen)) {
      do {
        if (check(TokKind::kKwVoid) && peek(1).kind == TokKind::kRParen) {
          advance();  // f(void)
          break;
        }
        Param param;
        param.is_const = match(TokKind::kKwConst);
        if (!at_type(&param.type)) {
          fail(format("line %u: expected parameter type", peek().loc.line));
          return false;
        }
        advance();
        if (!check(TokKind::kIdentifier)) {
          fail(format("line %u: expected parameter name", peek().loc.line));
          return false;
        }
        param.name = advance().text;
        while (match(TokKind::kLBracket)) {
          if (!check(TokKind::kIntLiteral)) {
            fail(format("line %u: array parameter needs a constant size",
                        peek().loc.line));
            return false;
          }
          param.dims.push_back(static_cast<std::size_t>(advance().int_value));
          if (!expect(TokKind::kRBracket, "after array size")) return false;
        }
        param.array_size = 1;
        for (std::size_t dim : param.dims) param.array_size *= dim;
        if (param.dims.empty()) param.array_size = 0;
        fn.params.push_back(std::move(param));
      } while (match(TokKind::kComma));
    }
    if (!expect(TokKind::kRParen, "after parameter list")) return false;
    StmtPtr body = parse_block();
    if (failed()) return false;
    fn.body.reset(static_cast<BlockStmt*>(body.release()));
    return true;
  }

  // ---- statements ----
  StmtPtr parse_block() {
    auto block = std::make_unique<BlockStmt>();
    block->loc = peek().loc;
    if (!expect(TokKind::kLBrace, "to open block")) return block;
    while (!check(TokKind::kRBrace) && !check(TokKind::kEof) && !failed()) {
      block->body.push_back(parse_statement());
    }
    expect(TokKind::kRBrace, "to close block");
    return block;
  }

  StmtPtr parse_statement() {
    if (check(TokKind::kLBrace)) return parse_block();
    if (check(TokKind::kKwIf)) return parse_if();
    if (check(TokKind::kKwWhile)) return parse_while();
    if (check(TokKind::kKwDo)) return parse_do_while();
    if (check(TokKind::kKwFor)) return parse_for();
    if (check(TokKind::kKwReturn)) return parse_return();
    if (match(TokKind::kKwBreak)) {
      auto stmt = std::make_unique<BreakStmt>();
      expect(TokKind::kSemicolon, "after break");
      return stmt;
    }
    if (match(TokKind::kKwContinue)) {
      auto stmt = std::make_unique<ContinueStmt>();
      expect(TokKind::kSemicolon, "after continue");
      return stmt;
    }
    if (check(TokKind::kKwConst) || at_type()) {
      StmtPtr decl = parse_var_decl();
      expect(TokKind::kSemicolon, "after declaration");
      return decl;
    }
    auto stmt = std::make_unique<ExprStmt>();
    stmt->loc = peek().loc;
    stmt->expr = parse_expression();
    expect(TokKind::kSemicolon, "after expression");
    return stmt;
  }

  StmtPtr parse_var_decl() {
    auto decl = std::make_unique<VarDeclStmt>();
    decl->loc = peek().loc;
    match(TokKind::kKwConst);  // locals: const accepted, not enforced
    if (!at_type(&decl->type)) {
      fail(format("line %u: expected type in declaration", peek().loc.line));
      return decl;
    }
    advance();
    if (!check(TokKind::kIdentifier)) {
      fail(format("line %u: expected variable name", peek().loc.line));
      return decl;
    }
    decl->name = advance().text;
    if (check(TokKind::kLBracket)) {
      while (match(TokKind::kLBracket)) {
        if (!check(TokKind::kIntLiteral)) {
          fail(format("line %u: local array needs a constant size",
                      peek().loc.line));
          return decl;
        }
        decl->dims.push_back(static_cast<std::size_t>(advance().int_value));
        expect(TokKind::kRBracket, "after array size");
      }
      decl->array_size = 1;
      for (std::size_t dim : decl->dims) decl->array_size *= dim;
      if (match(TokKind::kAssign)) {
        expect(TokKind::kLBrace, "to open array initializer");
        if (!check(TokKind::kRBrace)) {
          do {
            bool negate = match(TokKind::kMinus);
            if (!check(TokKind::kIntLiteral)) {
              fail(format("line %u: array initializers must be integer literals",
                          peek().loc.line));
              return decl;
            }
            std::uint64_t v = advance().int_value;
            decl->array_init.push_back(negate ? ~v + 1 : v);
          } while (match(TokKind::kComma));
        }
        expect(TokKind::kRBrace, "to close array initializer");
      }
    } else if (match(TokKind::kAssign)) {
      decl->init = parse_assignment();
    }
    return decl;
  }

  StmtPtr parse_if() {
    auto stmt = std::make_unique<IfStmt>();
    stmt->loc = peek().loc;
    advance();  // if
    expect(TokKind::kLParen, "after if");
    stmt->condition = parse_expression();
    expect(TokKind::kRParen, "after if condition");
    stmt->then_branch = parse_statement();
    if (match(TokKind::kKwElse)) stmt->else_branch = parse_statement();
    return stmt;
  }

  StmtPtr parse_while() {
    auto stmt = std::make_unique<WhileStmt>();
    stmt->loc = peek().loc;
    advance();  // while
    expect(TokKind::kLParen, "after while");
    stmt->condition = parse_expression();
    expect(TokKind::kRParen, "after while condition");
    stmt->body = parse_statement();
    return stmt;
  }

  StmtPtr parse_do_while() {
    auto stmt = std::make_unique<DoWhileStmt>();
    stmt->loc = peek().loc;
    advance();  // do
    stmt->body = parse_statement();
    expect(TokKind::kKwWhile, "after do body");
    expect(TokKind::kLParen, "after while");
    stmt->condition = parse_expression();
    expect(TokKind::kRParen, "after do-while condition");
    expect(TokKind::kSemicolon, "after do-while");
    return stmt;
  }

  StmtPtr parse_for() {
    auto stmt = std::make_unique<ForStmt>();
    stmt->loc = peek().loc;
    advance();  // for
    expect(TokKind::kLParen, "after for");
    if (!match(TokKind::kSemicolon)) {
      if (check(TokKind::kKwConst) || at_type()) {
        stmt->init = parse_var_decl();
      } else {
        auto init = std::make_unique<ExprStmt>();
        init->expr = parse_expression();
        stmt->init = std::move(init);
      }
      expect(TokKind::kSemicolon, "after for initializer");
    }
    if (!check(TokKind::kSemicolon)) stmt->condition = parse_expression();
    expect(TokKind::kSemicolon, "after for condition");
    if (!check(TokKind::kRParen)) stmt->update = parse_expression();
    expect(TokKind::kRParen, "after for clauses");
    stmt->body = parse_statement();
    return stmt;
  }

  StmtPtr parse_return() {
    auto stmt = std::make_unique<ReturnStmt>();
    stmt->loc = peek().loc;
    advance();  // return
    if (!check(TokKind::kSemicolon)) stmt->value = parse_expression();
    expect(TokKind::kSemicolon, "after return");
    return stmt;
  }

  // ---- expressions (precedence climbing) ----
  ExprPtr parse_expression() { return parse_assignment(); }

  ExprPtr parse_assignment() {
    ExprPtr lhs = parse_ternary();
    if (check(TokKind::kAssign) || check(TokKind::kPlusAssign) ||
        check(TokKind::kMinusAssign) || check(TokKind::kStarAssign)) {
      const TokKind op = advance().kind;
      ExprPtr rhs = parse_assignment();
      if (op != TokKind::kAssign) {
        // x op= y  ==>  x = x op y (target cloned structurally below)
        auto bin = std::make_unique<BinaryExpr>();
        bin->loc = lhs->loc;
        bin->op = op == TokKind::kPlusAssign ? BinaryOp::kAdd
                 : op == TokKind::kMinusAssign ? BinaryOp::kSub
                                               : BinaryOp::kMul;
        bin->lhs = clone_lvalue(*lhs);
        bin->rhs = std::move(rhs);
        rhs = std::move(bin);
      }
      auto assign = std::make_unique<AssignExpr>();
      assign->loc = lhs->loc;
      assign->target = std::move(lhs);
      assign->value = std::move(rhs);
      return assign;
    }
    return lhs;
  }

  /// Structural copy of a VarRef / ArrayIndex lvalue for compound-assignment
  /// desugaring. Array index expressions are re-parsed sub-trees, so the
  /// index is cloned recursively.
  ExprPtr clone_lvalue(const Expr& expr) {
    if (expr.kind == Expr::Kind::kVarRef) {
      auto copy = std::make_unique<VarRefExpr>();
      copy->loc = expr.loc;
      copy->name = static_cast<const VarRefExpr&>(expr).name;
      return copy;
    }
    if (expr.kind == Expr::Kind::kArrayIndex) {
      const auto& from = static_cast<const ArrayIndexExpr&>(expr);
      auto copy = std::make_unique<ArrayIndexExpr>();
      copy->loc = expr.loc;
      copy->array = from.array;
      for (const ExprPtr& index : from.indices) {
        copy->indices.push_back(clone_expr(*index));
      }
      return copy;
    }
    fail(format("line %u: invalid assignment target", expr.loc.line));
    return std::make_unique<IntLitExpr>();
  }

  ExprPtr clone_expr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit: {
        auto copy = std::make_unique<IntLitExpr>();
        copy->value = static_cast<const IntLitExpr&>(expr).value;
        copy->loc = expr.loc;
        return copy;
      }
      case Expr::Kind::kBoolLit: {
        auto copy = std::make_unique<BoolLitExpr>();
        copy->value = static_cast<const BoolLitExpr&>(expr).value;
        copy->loc = expr.loc;
        return copy;
      }
      case Expr::Kind::kVarRef:
      case Expr::Kind::kArrayIndex:
        return clone_lvalue(expr);
      case Expr::Kind::kUnary: {
        const auto& from = static_cast<const UnaryExpr&>(expr);
        auto copy = std::make_unique<UnaryExpr>();
        copy->op = from.op;
        copy->operand = clone_expr(*from.operand);
        copy->loc = expr.loc;
        return copy;
      }
      case Expr::Kind::kBinary: {
        const auto& from = static_cast<const BinaryExpr&>(expr);
        auto copy = std::make_unique<BinaryExpr>();
        copy->op = from.op;
        copy->lhs = clone_expr(*from.lhs);
        copy->rhs = clone_expr(*from.rhs);
        copy->loc = expr.loc;
        return copy;
      }
      case Expr::Kind::kCast: {
        const auto& from = static_cast<const CastExpr&>(expr);
        auto copy = std::make_unique<CastExpr>();
        copy->target = from.target;
        copy->operand = clone_expr(*from.operand);
        copy->loc = expr.loc;
        return copy;
      }
      default:
        fail(format("line %u: expression too complex in compound assignment",
                    expr.loc.line));
        return std::make_unique<IntLitExpr>();
    }
  }

  ExprPtr parse_ternary() {
    ExprPtr cond = parse_logical_or();
    if (!match(TokKind::kQuestion)) return cond;
    auto expr = std::make_unique<TernaryExpr>();
    expr->loc = cond->loc;
    expr->condition = std::move(cond);
    expr->if_true = parse_expression();
    expect(TokKind::kColon, "in ternary expression");
    expr->if_false = parse_ternary();
    return expr;
  }

  ExprPtr parse_binary_level(int level) {
    // Levels from loosest to tightest.
    struct Level {
      TokKind tokens[4];
      BinaryOp ops[4];
      int count;
    };
    static const Level kLevels[] = {
        {{TokKind::kPipePipe}, {BinaryOp::kLogicalOr}, 1},
        {{TokKind::kAmpAmp}, {BinaryOp::kLogicalAnd}, 1},
        {{TokKind::kPipe}, {BinaryOp::kOr}, 1},
        {{TokKind::kCaret}, {BinaryOp::kXor}, 1},
        {{TokKind::kAmp}, {BinaryOp::kAnd}, 1},
        {{TokKind::kEqEq, TokKind::kNe}, {BinaryOp::kEq, BinaryOp::kNe}, 2},
        {{TokKind::kLt, TokKind::kLe, TokKind::kGt, TokKind::kGe},
         {BinaryOp::kLt, BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe}, 4},
        {{TokKind::kShl, TokKind::kShr}, {BinaryOp::kShl, BinaryOp::kShr}, 2},
        {{TokKind::kPlus, TokKind::kMinus}, {BinaryOp::kAdd, BinaryOp::kSub}, 2},
        {{TokKind::kStar, TokKind::kSlash, TokKind::kPercent},
         {BinaryOp::kMul, BinaryOp::kDiv, BinaryOp::kRem}, 3},
    };
    constexpr int kNumLevels = static_cast<int>(std::size(kLevels));
    if (level >= kNumLevels) return parse_unary();

    ExprPtr lhs = parse_binary_level(level + 1);
    while (true) {
      const Level& spec = kLevels[level];
      int matched = -1;
      for (int i = 0; i < spec.count; ++i) {
        if (check(spec.tokens[i])) {
          matched = i;
          break;
        }
      }
      if (matched < 0) return lhs;
      advance();
      auto expr = std::make_unique<BinaryExpr>();
      expr->loc = lhs->loc;
      expr->op = spec.ops[matched];
      expr->lhs = std::move(lhs);
      expr->rhs = parse_binary_level(level + 1);
      lhs = std::move(expr);
    }
  }

  ExprPtr parse_logical_or() { return parse_binary_level(0); }

  ExprPtr parse_unary() {
    const SrcLoc loc = peek().loc;
    if (match(TokKind::kMinus)) {
      auto expr = std::make_unique<UnaryExpr>();
      expr->loc = loc;
      expr->op = UnaryOp::kNeg;
      expr->operand = parse_unary();
      return expr;
    }
    if (match(TokKind::kBang)) {
      auto expr = std::make_unique<UnaryExpr>();
      expr->loc = loc;
      expr->op = UnaryOp::kNot;
      expr->operand = parse_unary();
      return expr;
    }
    if (match(TokKind::kTilde)) {
      auto expr = std::make_unique<UnaryExpr>();
      expr->loc = loc;
      expr->op = UnaryOp::kBitNot;
      expr->operand = parse_unary();
      return expr;
    }
    // Pre-increment/decrement: ++x / --x  =>  x = x +/- 1
    if (check(TokKind::kPlusPlus) || check(TokKind::kMinusMinus)) {
      const bool inc = advance().kind == TokKind::kPlusPlus;
      ExprPtr target = parse_unary();
      return make_incdec(std::move(target), inc, loc);
    }
    // Cast: '(' typename ')' unary
    if (check(TokKind::kLParen)) {
      Type type;
      if ((peek(1).kind == TokKind::kIdentifier &&
           parse_type_name(peek(1).text, type) &&
           peek(2).kind == TokKind::kRParen) ||
          (peek(1).kind == TokKind::kKwBool && peek(2).kind == TokKind::kRParen)) {
        if (peek(1).kind == TokKind::kKwBool) type = Type::Bool();
        advance();  // (
        advance();  // type
        advance();  // )
        auto expr = std::make_unique<CastExpr>();
        expr->loc = loc;
        expr->target = type;
        expr->operand = parse_unary();
        return expr;
      }
    }
    return parse_postfix();
  }

  ExprPtr make_incdec(ExprPtr target, bool inc, SrcLoc loc) {
    auto one = std::make_unique<IntLitExpr>();
    one->value = 1;
    one->loc = loc;
    auto bin = std::make_unique<BinaryExpr>();
    bin->loc = loc;
    bin->op = inc ? BinaryOp::kAdd : BinaryOp::kSub;
    bin->lhs = clone_lvalue(*target);
    bin->rhs = std::move(one);
    auto assign = std::make_unique<AssignExpr>();
    assign->loc = loc;
    assign->target = std::move(target);
    assign->value = std::move(bin);
    return assign;
  }

  ExprPtr parse_postfix() {
    ExprPtr expr = parse_primary();
    while (true) {
      if (check(TokKind::kPlusPlus) || check(TokKind::kMinusMinus)) {
        const SrcLoc loc = peek().loc;
        const bool inc = advance().kind == TokKind::kPlusPlus;
        expr = make_incdec(std::move(expr), inc, loc);
        continue;
      }
      break;
    }
    return expr;
  }

  ExprPtr parse_primary() {
    const SrcLoc loc = peek().loc;
    if (check(TokKind::kIntLiteral)) {
      auto expr = std::make_unique<IntLitExpr>();
      expr->loc = loc;
      expr->value = advance().int_value;
      return expr;
    }
    if (check(TokKind::kKwTrue) || check(TokKind::kKwFalse)) {
      auto expr = std::make_unique<BoolLitExpr>();
      expr->loc = loc;
      expr->value = advance().kind == TokKind::kKwTrue;
      return expr;
    }
    if (match(TokKind::kLParen)) {
      ExprPtr inner = parse_expression();
      expect(TokKind::kRParen, "after parenthesized expression");
      return inner;
    }
    if (check(TokKind::kIdentifier)) {
      const std::string name = advance().text;
      if (match(TokKind::kLParen)) {
        auto call = std::make_unique<CallExpr>();
        call->loc = loc;
        call->callee = name;
        if (!check(TokKind::kRParen)) {
          do {
            call->args.push_back(parse_assignment());
          } while (match(TokKind::kComma));
        }
        expect(TokKind::kRParen, "after call arguments");
        return call;
      }
      if (check(TokKind::kLBracket)) {
        auto index = std::make_unique<ArrayIndexExpr>();
        index->loc = loc;
        index->array = name;
        while (match(TokKind::kLBracket)) {
          index->indices.push_back(parse_expression());
          expect(TokKind::kRBracket, "after array index");
        }
        return index;
      }
      auto ref = std::make_unique<VarRefExpr>();
      ref->loc = loc;
      ref->name = name;
      return ref;
    }
    fail(format("line %u: unexpected token '%s' in expression", loc.line,
                peek().kind == TokKind::kIdentifier ? peek().text.c_str()
                                                    : to_string(peek().kind)));
    advance();
    return std::make_unique<IntLitExpr>();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  Status error_;
};

}  // namespace

Result<Program> parse(std::string_view source) {
  auto tokens = lex(source);
  if (!tokens.ok()) return tokens.status();
  return Parser(tokens.take()).run();
}

}  // namespace hermes::fe
