#include "frontend/ast.hpp"

#include "common/strings.hpp"

namespace hermes::fe {

std::string Type::to_string() const {
  switch (kind) {
    case Kind::kVoid: return "void";
    case Kind::kBool: return "bool";
    case Kind::kInt:
      return format("%sint%u_t", is_signed ? "" : "u", bits);
  }
  return "?";
}

bool parse_type_name(std::string_view name, Type& out) {
  if (name == "void") { out = Type::Void(); return true; }
  if (name == "bool") { out = Type::Bool(); return true; }
  if (name == "int") { out = Type::Int(32, true); return true; }
  if (name == "unsigned") { out = Type::Int(32, false); return true; }
  if (name == "char") { out = Type::Int(8, true); return true; }
  if (name == "short") { out = Type::Int(16, true); return true; }
  if (name == "long") { out = Type::Int(64, true); return true; }
  if (name == "size_t") { out = Type::Int(64, false); return true; }
  if (name == "int8_t") { out = Type::Int(8, true); return true; }
  if (name == "int16_t") { out = Type::Int(16, true); return true; }
  if (name == "int32_t") { out = Type::Int(32, true); return true; }
  if (name == "int64_t") { out = Type::Int(64, true); return true; }
  if (name == "uint8_t") { out = Type::Int(8, false); return true; }
  if (name == "uint16_t") { out = Type::Int(16, false); return true; }
  if (name == "uint32_t") { out = Type::Int(32, false); return true; }
  if (name == "uint64_t") { out = Type::Int(64, false); return true; }
  return false;
}

const char* to_string(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNeg: return "-";
    case UnaryOp::kNot: return "!";
    case UnaryOp::kBitNot: return "~";
  }
  return "?";
}

const char* to_string(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kRem: return "%";
    case BinaryOp::kAnd: return "&";
    case BinaryOp::kOr: return "|";
    case BinaryOp::kXor: return "^";
    case BinaryOp::kShl: return "<<";
    case BinaryOp::kShr: return ">>";
    case BinaryOp::kEq: return "==";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLogicalAnd: return "&&";
    case BinaryOp::kLogicalOr: return "||";
  }
  return "?";
}

}  // namespace hermes::fe
