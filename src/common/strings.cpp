#include "common/strings.hpp"

#include <cstdarg>
#include <cstdio>

namespace hermes {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!text.empty() && is_space(text.front())) text.remove_prefix(1);
  while (!text.empty() && is_space(text.back())) text.remove_suffix(1);
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace hermes
