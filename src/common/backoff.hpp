// The one bounded-exponential-backoff ladder of the repo.
//
// Every retry path idles `base << attempt` cycles before re-attempting: the
// AXI master between SLVERR retries, the eFPGA programming path between frame
// re-writes, the dataflow engine between node re-executions, and the NoC
// source ports between beat re-injections. The ladders were historically
// reimplemented at each site; this helper is the single definition, with the
// shift saturated so a runaway attempt counter degrades to "wait forever
// minus one" instead of shifting into undefined behavior.
#pragma once

#include <cstdint>

namespace hermes {

/// Idle cycles before retry `attempt` (0-based): base << attempt, saturating
/// at the 64-bit limit instead of overflowing. base == 0 disables the wait.
constexpr std::uint64_t backoff_cycles(std::uint64_t base, unsigned attempt) {
  if (base == 0) return 0;
  if (attempt >= 64) return ~0ULL;
  const std::uint64_t idle = base << attempt;
  return (idle >> attempt) == base ? idle : ~0ULL;
}

}  // namespace hermes
