// Small string helpers used by the frontend lexer, report generators and the
// Verilog emitter.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace hermes {

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view text, char delimiter);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// True if `text` starts with / ends with the given prefix or suffix.
bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace hermes
