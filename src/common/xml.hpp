// Minimal XML writer. Eucalyptus (the Bambu component characterization tool)
// stores latency/area characterization results "as XML files in the Bambu
// library"; this writer produces that artifact.
#pragma once

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace hermes {

/// Streaming XML writer with automatic indentation and escaping.
class XmlWriter {
 public:
  XmlWriter() { out_ << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"; }

  /// Opens <name>; close with end_element(). Attributes may be added with
  /// attribute() before any child or text is written.
  void begin_element(std::string_view name);
  void attribute(std::string_view name, std::string_view value);
  void attribute(std::string_view name, std::int64_t value);
  void attribute(std::string_view name, double value);
  void text(std::string_view content);
  void end_element();

  /// Convenience: <name attr.../> with no children.
  void empty_element(std::string_view name,
                     const std::vector<std::pair<std::string, std::string>>& attrs);

  /// Final document; all elements must be closed.
  [[nodiscard]] std::string str() const;

 private:
  void close_open_tag();
  void indent();
  static std::string escape(std::string_view raw);

  std::ostringstream out_;
  std::vector<std::string> stack_;
  bool tag_open_ = false;
  bool had_children_ = true;
};

}  // namespace hermes
