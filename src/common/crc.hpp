// CRC-32 (IEEE 802.3, reflected) and CRC-16-CCITT used for image integrity in
// the boot loader and for bitstream framing in the NXmap backend.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace hermes {

/// Incremental CRC-32 (polynomial 0xEDB88320, init 0xFFFFFFFF, final xor).
class Crc32 {
 public:
  Crc32();
  void update(std::span<const std::uint8_t> data);
  void update(const void* data, std::size_t size);
  [[nodiscard]] std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_;
};

/// One-shot CRC-32 of a byte range.
std::uint32_t crc32(std::span<const std::uint8_t> data);
std::uint32_t crc32(const void* data, std::size_t size);

/// One-shot CRC-16-CCITT (poly 0x1021, init 0xFFFF), used by the SpaceWire
/// load protocol packet framing.
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data);

}  // namespace hermes
