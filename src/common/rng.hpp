// Deterministic pseudo-random number generator (xoshiro256**) used everywhere
// randomness is needed: SEU injection campaigns, testbench stimulus, placer
// annealing. Determinism for a fixed seed keeps experiments reproducible, as
// required of a qualification test suite.
#pragma once

#include <cstdint>

namespace hermes {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound); bound must be nonzero.
  std::uint64_t next_below(std::uint64_t bound) {
    // Rejection-free bounded draw with negligible bias for our bounds.
    return next_u64() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double probability) { return next_double() < probability; }

  /// Uniform in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace hermes
