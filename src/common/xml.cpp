#include "common/xml.hpp"

#include <cassert>

namespace hermes {

std::string XmlWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void XmlWriter::indent() {
  for (std::size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void XmlWriter::close_open_tag() {
  if (tag_open_) {
    out_ << ">\n";
    tag_open_ = false;
  }
}

void XmlWriter::begin_element(std::string_view name) {
  close_open_tag();
  indent();
  out_ << '<' << name;
  stack_.emplace_back(name);
  tag_open_ = true;
  had_children_ = false;
}

void XmlWriter::attribute(std::string_view name, std::string_view value) {
  assert(tag_open_ && "attribute() must directly follow begin_element()");
  out_ << ' ' << name << "=\"" << escape(value) << '"';
}

void XmlWriter::attribute(std::string_view name, std::int64_t value) {
  attribute(name, std::to_string(value));
}

void XmlWriter::attribute(std::string_view name, double value) {
  std::ostringstream tmp;
  tmp << value;
  attribute(name, tmp.str());
}

void XmlWriter::text(std::string_view content) {
  close_open_tag();
  indent();
  out_ << escape(content) << '\n';
  had_children_ = true;
}

void XmlWriter::end_element() {
  assert(!stack_.empty());
  const std::string name = stack_.back();
  stack_.pop_back();
  if (tag_open_) {
    out_ << "/>\n";
    tag_open_ = false;
  } else {
    indent();
    out_ << "</" << name << ">\n";
  }
  had_children_ = true;
}

void XmlWriter::empty_element(
    std::string_view name,
    const std::vector<std::pair<std::string, std::string>>& attrs) {
  begin_element(name);
  for (const auto& [key, value] : attrs) attribute(key, value);
  end_element();
}

std::string XmlWriter::str() const {
  assert(stack_.empty() && "unclosed XML elements");
  return out_.str();
}

}  // namespace hermes
