// Copy-on-write paged byte memory.
//
// The SoC model carries ~9 MB of byte-accurate memory (TCM + SRAM + DDR).
// Chaos campaigns want hundreds of SoC replicas forked from one booted
// system; copying the vectors per replica would dominate the campaign.
// CowMemory stores the bytes in 4 KB pages behind shared_ptrs: copying a
// CowMemory copies the page table (one pointer per page), and a page is
// cloned only when a write lands on a page some other copy still shares.
// A null page table entry stands for a page full of the background fill
// byte, so fresh construction is O(pages) pointer writes — no memset of
// megabytes — and untouched pages cost no storage at all.
//
// Thread-safety: the refcount operations are atomic, so distinct forks may
// be read and written from distinct threads concurrently (the campaign
// pattern: fork on one thread, hand each fork to a worker). One CowMemory
// object must not be mutated from two threads at once.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace hermes {

class CowMemory {
 public:
  static constexpr std::size_t kPageSize = 4096;

  CowMemory() = default;
  explicit CowMemory(std::size_t bytes, std::uint8_t fill = 0);

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Copies bytes out of / into [offset, offset + span size). The caller is
  /// responsible for bounds (the SoC memory map resolves ranges first);
  /// out-of-range access asserts in debug builds.
  void read(std::size_t offset, std::span<std::uint8_t> out) const;
  void write(std::size_t offset, std::span<const std::uint8_t> data);

  /// Number of materialized (non-fill) pages — the storage actually owned
  /// or shared by this copy.
  [[nodiscard]] std::size_t resident_pages() const;

  /// Number of materialized pages this copy still shares with `other`
  /// (same page object, not merely equal bytes). Observability hook for the
  /// fork tests and docs/CAMPAIGNS.md examples.
  [[nodiscard]] std::size_t pages_shared_with(const CowMemory& other) const;

 private:
  using Page = std::array<std::uint8_t, kPageSize>;

  /// Materializes page `index` for writing: allocates a fill page when
  /// absent, clones when shared with another copy.
  Page& writable_page(std::size_t index);

  std::size_t size_ = 0;
  std::uint8_t fill_ = 0;
  std::vector<std::shared_ptr<Page>> pages_;
};

}  // namespace hermes
