#include "common/threadpool.hpp"

#include <algorithm>

namespace hermes {

ThreadPool::ThreadPool(unsigned workers) {
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = current_job_;
      if (job == nullptr) continue;  // woke after the job already retired
      ++job->registered;
    }
    if (job->pull != nullptr) {
      // Queue mode: keep pulling until the queue reports itself drained.
      while ((*job->pull)()) {
      }
    } else {
      std::size_t index;
      while ((index = job->next.fetch_add(1, std::memory_order_relaxed)) <
             job->count) {
        (*job->body)(index);
        job->done.fetch_add(1, std::memory_order_acq_rel);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --job->registered;
    }
    done_cv_.notify_all();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty() || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.body = &body;
  job.count = count;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  // The submitting thread pulls indices alongside the workers.
  std::size_t index;
  while ((index = job.next.fetch_add(1, std::memory_order_relaxed)) < count) {
    body(index);
    job.done.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == count &&
             job.registered == 0;
    });
    current_job_ = nullptr;
  }
}

void ThreadPool::run_queue(const std::function<bool()>& pull) {
  if (workers_.empty()) {
    while (pull()) {
    }
    return;
  }
  std::lock_guard<std::mutex> submit(submit_mutex_);
  Job job;
  job.pull = &pull;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    current_job_ = &job;
    ++generation_;
  }
  work_cv_.notify_all();

  // The submitting thread drains alongside the workers.
  while (pull()) {
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return job.registered == 0; });
    current_job_ = nullptr;
  }
}

unsigned ThreadPool::default_workers() {
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw <= 1) return 0;
  return std::min(hw - 1, 15u);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(default_workers());
  return pool;
}

void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body) {
  ThreadPool::global().parallel_for(count, body);
}

}  // namespace hermes
