#include "common/xml_parse.hpp"

#include <cctype>
#include <cstring>

#include "common/strings.hpp"

namespace hermes {

const XmlNode* XmlNode::child(std::string_view child_name) const {
  for (const auto& node : children) {
    if (node->name == child_name) return node.get();
  }
  return nullptr;
}

std::string XmlNode::attr(std::string_view key, std::string_view fallback) const {
  const auto it = attributes.find(std::string(key));
  return it == attributes.end() ? std::string(fallback) : it->second;
}

double XmlNode::attr_double(std::string_view key, double fallback) const {
  const auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (...) {
    return fallback;
  }
}

std::int64_t XmlNode::attr_int(std::string_view key, std::int64_t fallback) const {
  const auto it = attributes.find(std::string(key));
  if (it == attributes.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (...) {
    return fallback;
  }
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view document) : text_(document) {}

  Result<std::unique_ptr<XmlNode>> run() {
    skip_prolog();
    auto root = parse_element();
    if (!root.ok()) return root.status();
    if (!root.value()) {
      return Status::Error(ErrorCode::kParseError, "no root element");
    }
    return root.take();
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool starts(std::string_view prefix) const {
    return text_.substr(pos_, prefix.size()) == prefix;
  }

  void skip_prolog() {
    skip_ws();
    while (starts("<?") || starts("<!--")) {
      const char* terminator = starts("<?") ? "?>" : "-->";
      const std::size_t end = text_.find(terminator, pos_);
      pos_ = end == std::string_view::npos ? text_.size()
                                           : end + std::strlen(terminator);
      skip_ws();
    }
  }

  static std::string unescape(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out.push_back(raw[i]);
        continue;
      }
      const std::string_view rest = raw.substr(i);
      if (rest.rfind("&amp;", 0) == 0) { out.push_back('&'); i += 4; }
      else if (rest.rfind("&lt;", 0) == 0) { out.push_back('<'); i += 3; }
      else if (rest.rfind("&gt;", 0) == 0) { out.push_back('>'); i += 3; }
      else if (rest.rfind("&quot;", 0) == 0) { out.push_back('"'); i += 5; }
      else if (rest.rfind("&apos;", 0) == 0) { out.push_back('\''); i += 5; }
      else out.push_back(raw[i]);
    }
    return out;
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == ':' ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// Parses one element starting at '<'. Returns nullptr at a closing tag.
  Result<std::unique_ptr<XmlNode>> parse_element() {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return Status::Error(ErrorCode::kParseError, "expected '<'");
    }
    if (starts("</")) return std::unique_ptr<XmlNode>();  // caller's close tag
    if (starts("<!--")) {
      const std::size_t end = text_.find("-->", pos_);
      pos_ = end == std::string_view::npos ? text_.size() : end + 3;
      return parse_element();
    }
    ++pos_;  // consume '<'
    auto node = std::make_unique<XmlNode>();
    node->name = parse_name();
    if (node->name.empty()) {
      return Status::Error(ErrorCode::kParseError, "empty element name");
    }

    // Attributes.
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) {
        return Status::Error(ErrorCode::kParseError, "unterminated tag");
      }
      if (starts("/>")) {
        pos_ += 2;
        return node;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      const std::string key = parse_name();
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return Status::Error(ErrorCode::kParseError,
                             format("attribute '%s' missing '='", key.c_str()));
      }
      ++pos_;
      skip_ws();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return Status::Error(ErrorCode::kParseError, "attribute value not quoted");
      }
      const char quote = text_[pos_++];
      const std::size_t end = text_.find(quote, pos_);
      if (end == std::string_view::npos) {
        return Status::Error(ErrorCode::kParseError, "unterminated attribute");
      }
      node->attributes[key] = unescape(text_.substr(pos_, end - pos_));
      pos_ = end + 1;
    }

    // Children and text until the matching close tag.
    while (true) {
      const std::size_t text_start = pos_;
      const std::size_t next = text_.find('<', pos_);
      if (next == std::string_view::npos) {
        return Status::Error(ErrorCode::kParseError,
                             format("unclosed element <%s>", node->name.c_str()));
      }
      const std::string_view chunk =
          trim(text_.substr(text_start, next - text_start));
      if (!chunk.empty()) {
        if (!node->text.empty()) node->text.push_back(' ');
        node->text += unescape(chunk);
      }
      pos_ = next;
      if (starts("</")) {
        pos_ += 2;
        const std::string close = parse_name();
        if (close != node->name) {
          return Status::Error(
              ErrorCode::kParseError,
              format("mismatched close tag </%s> for <%s>", close.c_str(),
                     node->name.c_str()));
        }
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != '>') {
          return Status::Error(ErrorCode::kParseError, "malformed close tag");
        }
        ++pos_;
        return node;
      }
      auto child = parse_element();
      if (!child.ok()) return child.status();
      if (child.value()) node->children.push_back(child.take());
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<XmlNode>> parse_xml(std::string_view document) {
  return Parser(document).run();
}

}  // namespace hermes
