#include "common/status.hpp"

namespace hermes {

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kTypeError: return "type_error";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kResourceExhausted: return "resource_exhausted";
    case ErrorCode::kTimingViolation: return "timing_violation";
    case ErrorCode::kIntegrityError: return "integrity_error";
    case ErrorCode::kIsolationFault: return "isolation_fault";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kCount: break;
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = hermes::to_string(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace hermes
