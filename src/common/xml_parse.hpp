// Minimal XML reader matching the subset XmlWriter produces: nested elements
// with attributes, text nodes, comments ignored. Enough for the Bambu
// library round-trip (Eucalyptus writes the characterization XML; the tech
// library reads it back at flow start).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hermes {

struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::string text;  ///< concatenated text content (trimmed)
  std::vector<std::unique_ptr<XmlNode>> children;

  /// First child with the given element name; nullptr if absent.
  [[nodiscard]] const XmlNode* child(std::string_view child_name) const;
  /// Attribute value or the fallback.
  [[nodiscard]] std::string attr(std::string_view key,
                                 std::string_view fallback = "") const;
  [[nodiscard]] double attr_double(std::string_view key,
                                   double fallback = 0.0) const;
  [[nodiscard]] std::int64_t attr_int(std::string_view key,
                                      std::int64_t fallback = 0) const;
};

/// Parses one document; returns the root element.
Result<std::unique_ptr<XmlNode>> parse_xml(std::string_view document);

}  // namespace hermes
