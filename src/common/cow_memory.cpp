#include "common/cow_memory.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace hermes {

CowMemory::CowMemory(std::size_t bytes, std::uint8_t fill)
    : size_(bytes),
      fill_(fill),
      pages_((bytes + kPageSize - 1) / kPageSize) {}

void CowMemory::read(std::size_t offset, std::span<std::uint8_t> out) const {
  assert(offset + out.size() <= size_);
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t pos = offset + done;
    const std::size_t page = pos / kPageSize;
    const std::size_t in_page = pos % kPageSize;
    const std::size_t chunk =
        std::min(out.size() - done, kPageSize - in_page);
    if (pages_[page]) {
      std::memcpy(out.data() + done, pages_[page]->data() + in_page, chunk);
    } else {
      std::memset(out.data() + done, fill_, chunk);
    }
    done += chunk;
  }
}

void CowMemory::write(std::size_t offset, std::span<const std::uint8_t> data) {
  assert(offset + data.size() <= size_);
  std::size_t done = 0;
  while (done < data.size()) {
    const std::size_t pos = offset + done;
    const std::size_t page = pos / kPageSize;
    const std::size_t in_page = pos % kPageSize;
    const std::size_t chunk =
        std::min(data.size() - done, kPageSize - in_page);
    std::memcpy(writable_page(page).data() + in_page, data.data() + done,
                chunk);
    done += chunk;
  }
}

CowMemory::Page& CowMemory::writable_page(std::size_t index) {
  std::shared_ptr<Page>& slot = pages_[index];
  if (!slot) {
    slot = std::make_shared<Page>();
    slot->fill(fill_);
  } else if (slot.use_count() > 1) {
    slot = std::make_shared<Page>(*slot);
  }
  return *slot;
}

std::size_t CowMemory::resident_pages() const {
  return static_cast<std::size_t>(
      std::count_if(pages_.begin(), pages_.end(),
                    [](const std::shared_ptr<Page>& p) { return p != nullptr; }));
}

std::size_t CowMemory::pages_shared_with(const CowMemory& other) const {
  std::size_t shared = 0;
  const std::size_t common = std::min(pages_.size(), other.pages_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (pages_[i] && pages_[i] == other.pages_[i]) ++shared;
  }
  return shared;
}

}  // namespace hermes
