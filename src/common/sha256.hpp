// SHA-256 used by BL1 to authenticate load-list entries (strong integrity,
// complementing the fast CRC-32 check on the transport framing).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace hermes {

using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();
  void update(std::span<const std::uint8_t> data);
  void update(const void* data, std::size_t size);
  /// Finalizes and returns the digest. The object must not be reused after.
  [[nodiscard]] Sha256Digest digest();

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_;
  std::size_t buffered_;
};

/// One-shot SHA-256.
Sha256Digest sha256(std::span<const std::uint8_t> data);

/// Lowercase hex rendering of a digest.
std::string to_hex(const Sha256Digest& digest);

}  // namespace hermes
