#include "common/crc.hpp"

#include <array>

namespace hermes {
namespace {

std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& crc32_table() {
  static const auto table = make_crc32_table();
  return table;
}

}  // namespace

Crc32::Crc32() : state_(0xFFFFFFFFu) {}

void Crc32::update(std::span<const std::uint8_t> data) {
  const auto& table = crc32_table();
  for (std::uint8_t byte : data) {
    state_ = table[(state_ ^ byte) & 0xFFu] ^ (state_ >> 8);
  }
}

void Crc32::update(const void* data, std::size_t size) {
  update(std::span(static_cast<const std::uint8_t*>(data), size));
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

std::uint32_t crc32(const void* data, std::size_t size) {
  return crc32(std::span(static_cast<const std::uint8_t*>(data), size));
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFFu;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000u) ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021u)
                            : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

}  // namespace hermes
