// Bit-manipulation helpers shared by the HLS datapath evaluator, the netlist
// simulator, and the EDAC codecs. All datapath values are carried as
// std::uint64_t truncated to an explicit bit width.
#pragma once

#include <cassert>
#include <cstdint>

namespace hermes {

/// Mask with the low `width` bits set; width must be in [0, 64].
constexpr std::uint64_t bit_mask(unsigned width) {
  assert(width <= 64);
  return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
}

/// Truncates `value` to `width` bits.
constexpr std::uint64_t truncate(std::uint64_t value, unsigned width) {
  return value & bit_mask(width);
}

/// Sign-extends the low `width` bits of `value` to a signed 64-bit integer.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) {
  assert(width >= 1 && width <= 64);
  if (width == 64) return static_cast<std::int64_t>(value);
  const std::uint64_t sign_bit = 1ULL << (width - 1);
  const std::uint64_t truncated = truncate(value, width);
  return static_cast<std::int64_t>((truncated ^ sign_bit) - sign_bit);
}

/// Extracts bit `index` of `value`.
constexpr bool get_bit(std::uint64_t value, unsigned index) {
  assert(index < 64);
  return (value >> index) & 1u;
}

/// Returns `value` with bit `index` set to `bit`.
constexpr std::uint64_t set_bit(std::uint64_t value, unsigned index, bool bit) {
  assert(index < 64);
  const std::uint64_t mask = 1ULL << index;
  return bit ? (value | mask) : (value & ~mask);
}

/// Number of bits needed to represent `value` (at least 1).
constexpr unsigned bit_width_of(std::uint64_t value) {
  unsigned width = 1;
  while (value > 1) {
    value >>= 1;
    ++width;
  }
  return width;
}

/// ceil(a / b) for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  assert(b != 0);
  return (a + b - 1) / b;
}

/// Parity (XOR reduction) of a word.
constexpr bool parity(std::uint64_t value) {
  value ^= value >> 32;
  value ^= value >> 16;
  value ^= value >> 8;
  value ^= value >> 4;
  value ^= value >> 2;
  value ^= value >> 1;
  return value & 1u;
}

}  // namespace hermes
