// Lightweight status / expected types used across the HERMES libraries.
//
// Most of the toolchain reports recoverable errors (bad input program, malformed
// load list, timing violation, ...) through Status / Result<T> rather than
// exceptions, so that callers such as the benchmark harness can enumerate
// failures without unwinding.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace hermes {

/// Broad error categories shared by all HERMES tools.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,   ///< caller passed something malformed
  kParseError,        ///< frontend could not parse the input program
  kTypeError,         ///< frontend type checking failed
  kUnsupported,       ///< construct outside the supported C subset / feature set
  kResourceExhausted, ///< device capacity exceeded (LUTs, DSPs, RAMs, slots)
  kTimingViolation,   ///< STA or scheduler could not meet the clock constraint
  kIntegrityError,    ///< checksum / signature mismatch (boot, bitstream)
  kIsolationFault,    ///< hypervisor space/time isolation violation
  kDeadlineExceeded,  ///< bounded wait / watchdog expired (hang converted to error)
  kNotFound,
  kInternal,
  kCancelled,         ///< caller withdrew the request (compile-service jobs)
  // Add new codes above and name them in to_string(); the enum-string
  // exhaustiveness test walks [0, kCount) and fails on a missing name.
  kCount,
};

/// Human-readable name of an ErrorCode ("ok", "parse_error", ...).
const char* to_string(ErrorCode code);

/// True for transient failures a bounded retry ladder may re-attempt:
/// kInternal (subsystem hiccup, e.g. SLVERR or an injected node fault) and
/// kDeadlineExceeded (a bounded wait expired). Every other code is permanent
/// for the caller that observed it and must propagate unchanged. The dataflow
/// node re-execution policy retries exactly this set; the AXI master retries
/// the kInternal subset (a watchdog-abandoned transaction is not re-issued).
constexpr bool is_retriable(ErrorCode code) {
  return code == ErrorCode::kInternal || code == ErrorCode::kDeadlineExceeded;
}

/// A success-or-error value. Cheap to copy on the success path.
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status Error(ErrorCode code, std::string message) {
    return {code, std::move(message)};
  }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  [[nodiscard]] std::string to_string() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Either a value or a Status explaining why there is none.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() && "Result error must carry a non-ok Status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  [[nodiscard]] const Status& status() const {
    static const Status kOkStatus;
    return ok() ? kOkStatus : std::get<Status>(data_);
  }

  [[nodiscard]] T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& take() {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> data_;
};

}  // namespace hermes
