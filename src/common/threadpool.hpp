// Fixed-size thread pool with a parallel_for helper.
//
// Built for the embarrassingly-parallel outer loops of this codebase — SEU
// campaign replicas, Eucalyptus characterization grids, placement seeds —
// where every iteration is independent and writes only its own result slot.
// Determinism contract: parallel_for(count, body) calls body(i) exactly once
// for each i in [0, count); callers derive any randomness from the index
// (e.g. per-replica RNG seeds), so results are bit-identical for any worker
// count, including zero (fully inline execution).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hermes {

class ThreadPool {
 public:
  /// Spawns exactly `workers` worker threads. The submitting thread also
  /// participates in every parallel_for, so a pool with 0 workers runs
  /// everything inline (the serial reference).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute work: workers + the submitting thread.
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs body(0) .. body(count - 1), each exactly once, distributed over the
  /// workers and the calling thread; returns when all are done. Not
  /// reentrant: body must not itself call parallel_for on the same pool.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Dynamic-queue variant for work whose extent is not known up front (the
  /// compile service's weighted-fair job queue): every worker plus the
  /// calling thread repeatedly invokes `pull` until it returns false, then
  /// returns once no participant is still inside a pull. `pull` must be
  /// thread-safe (pop-under-your-own-mutex-then-run); with zero workers it
  /// runs fully inline, the serial reference. Not reentrant, and `pull` must
  /// not re-enter this pool.
  void run_queue(const std::function<bool()>& pull);

  /// Process-wide pool sized to the hardware (hardware_concurrency - 1
  /// workers, capped at 15).
  static ThreadPool& global();

  /// Worker count global() would use on this machine.
  static unsigned default_workers();

 private:
  /// Per-submission state, stack-allocated by parallel_for. Workers register
  /// (under the pool mutex) before pulling indices and deregister after, so
  /// parallel_for never returns — and the Job never dies — while any worker
  /// still holds a pointer to it.
  struct Job {
    const std::function<void(std::size_t)>* body = nullptr;
    /// run_queue submissions set `pull` instead of body/count: participants
    /// loop on it until it reports the queue drained.
    const std::function<bool()>* pull = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};  ///< next index to claim
    std::atomic<std::size_t> done{0};  ///< completed bodies
    unsigned registered = 0;           ///< workers inside the pull loop (mutex)
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex submit_mutex_;  ///< serializes concurrent parallel_for calls

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  bool shutdown_ = false;
  Job* current_job_ = nullptr;
};

/// parallel_for on the process-wide pool.
void parallel_for(std::size_t count,
                  const std::function<void(std::size_t)>& body);

}  // namespace hermes
