// The cross-layer FDIR supervisor.
//
// Sits above every per-layer mitigation ladder in the repo and closes the
// qualification loop HERMES argues for: detections flow in as FdirEvents
// (see event.hpp), the policy engine maps patterns to isolation actions
// (policy.hpp), and recovery walks a restart → rollback → safe-mode ladder
// over the checkpoint ring (checkpoint.hpp):
//
//   restart   — re-run the configuration scrub in place and re-verify the
//               digest: cheapest, fixes correctable rot the layer missed;
//   rollback  — Soc::fork() the newest checkpoint whose restored digest
//               verifies (torn targets are discarded, older ones tried),
//               with the injector re-armed via reseeded() so the fault
//               environment stays deterministic after the restore;
//   safe mode — park: accelerator quarantined, non-critical work shed,
//               no further recovery attempted.
//
// Every decision and its outcome lands in the FdirReport audit trail; the
// report fingerprints byte-stably so the chaos soak can prove run-twice
// determinism of the entire detect→isolate→recover pipeline.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "boot/soc.hpp"
#include "common/status.hpp"
#include "fault/injector.hpp"
#include "fdir/checkpoint.hpp"
#include "fdir/event.hpp"
#include "fdir/policy.hpp"
#include "hv/hypervisor.hpp"

namespace hermes::noc {
class Crossbar;
}

namespace hermes::fdir {

/// Mission posture, monotone for a given run: kNominal → kDegraded → kSafe.
/// A successful rollback keeps the system degraded (the fault environment
/// that forced it is still there); only safe mode is terminal.
enum class FdirMode : std::uint8_t {
  kNominal = 0,
  kDegraded = 1,
  kSafe = 2,
  kCount,  ///< sentinel for exhaustiveness tests — keep last
};

const char* to_string(FdirMode mode);

struct FdirConfig {
  PolicyConfig policy;
  std::size_t checkpoint_ring = 4;
  /// In-place restart rungs (scrub + digest re-verify) before rolling back.
  unsigned max_restart_attempts = 1;
  /// Rollbacks before the ladder escalates to safe mode.
  unsigned max_rollbacks = 2;
  /// Seed base for re-arming the injector after rollback `n` (seed base + n):
  /// deterministic, but each restore gets fresh per-point RNG streams.
  std::uint64_t rollback_seed_base = 0x9E3779B97F4A7C15ULL;
};

/// One isolation/recovery action in the audit trail.
struct FdirActionRecord {
  std::uint64_t stamp = 0;        ///< triggering event's stamp
  const char* rule = "";          ///< policy rule that fired
  IsolationAction action = IsolationAction::kNone;
  Layer layer = Layer::kSupervisor;
  std::uint32_t detail = 0;
  std::uint64_t checkpoint_id = ~0ULL;  ///< rollback target, ~0 otherwise
  bool ok = false;                ///< the action took effect
};

/// The auditable trail of one supervised run.
struct FdirReport {
  std::uint64_t events_consumed = 0;
  std::uint64_t events_dropped = 0;  ///< bus overflow (detection loss)
  std::uint64_t per_layer[kNumLayers] = {};
  std::vector<FdirActionRecord> actions;
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoints_refused = 0;
  std::uint64_t restarts = 0;
  std::uint64_t rollbacks = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t suspensions = 0;
  std::uint64_t fences = 0;
  std::uint64_t sheds = 0;
  std::uint64_t noc_quarantines = 0;   ///< NoC containment domains parked
  std::uint64_t noc_readmissions = 0;  ///< domains re-admitted post-recovery
  std::uint64_t safe_mode_entries = 0;
  std::uint64_t suppressed = 0;  ///< decisions that were already in effect
  FdirMode final_mode = FdirMode::kNominal;

  /// FNV-1a over every counter, action record and rule string — byte-stable
  /// across runs, the soak's run-twice equality witness.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Human-readable audit trail.
  [[nodiscard]] std::string render() const;
};

class FdirSupervisor {
 public:
  FdirSupervisor(FdirConfig config, FdirBus& bus);

  /// Wires the supervised SoC: attaches the bus for detection, records the
  /// current configuration digest as the known-good reference, and keeps
  /// the injector + plan shape for deterministic re-arming after rollback.
  /// The plan is the *shape* replayed on restore; pass the plan the mission
  /// runs under. `injector` may be null (no re-arming on rollback).
  void attach_soc(boot::Soc* soc, fault::FaultInjector* injector,
                  fault::FaultPlan base_plan);

  /// Wires the hypervisor: attaches the bus, and remembers which partition
  /// carries system privilege — isolation suspends target partitions via a
  /// PartitionApi issued on its behalf (the XtratuM way: the supervisor is
  /// a system partition's payload, not a backdoor).
  void attach_hypervisor(hv::Hypervisor* hv, hv::PartitionId system_partition);

  /// Wires the interconnect: attaches the bus so fabric detections (Layer::
  /// kNoc, containment domain in `detail`) reach the policy engine, and lets
  /// the supervisor quarantine/drain/re-admit domains, park the fabric in
  /// safe mode, and mask a suspended partition's ports.
  void attach_noc(noc::Crossbar* fabric);

  /// Takes a checkpoint now (refuses cleanly when not quiescent/clean —
  /// see CheckpointManager::take).
  Status checkpoint();

  /// Drains the bus, feeds the policy engine in arrival order, executes
  /// every triggered decision. Returns the number of events consumed.
  std::size_t poll();

  [[nodiscard]] FdirMode mode() const { return mode_; }
  [[nodiscard]] bool efpga_quarantined() const { return efpga_quarantined_; }
  [[nodiscard]] bool memory_fenced() const { return fenced_; }
  [[nodiscard]] const FdirReport& report() const { return report_; }
  [[nodiscard]] CheckpointManager& checkpoints() { return checkpoints_; }
  [[nodiscard]] const FdirConfig& config() const { return config_; }

 private:
  void execute(const Decision& decision);
  void record(const Decision& decision, std::uint64_t checkpoint_id, bool ok);
  /// Restart rung: scrub in place, succeed if the state re-verifies.
  bool try_restart();
  /// Rollback rung: fork the newest checkpoint that restores digest-clean.
  /// Returns the checkpoint id via `restored_id` on success.
  bool try_rollback(std::uint64_t* restored_id);
  void enter_degraded();
  void enter_safe_mode();

  FdirConfig config_;
  FdirBus& bus_;
  PolicyEngine policy_;
  CheckpointManager checkpoints_;
  FdirReport report_;
  FdirMode mode_ = FdirMode::kNominal;

  boot::Soc* soc_ = nullptr;
  fault::FaultInjector* injector_ = nullptr;
  fault::FaultPlan base_plan_;
  std::uint64_t reference_digest_ = 0;
  bool have_reference_ = false;

  hv::Hypervisor* hv_ = nullptr;
  hv::PartitionId system_partition_ = hv::kNoPartition;
  noc::Crossbar* noc_ = nullptr;

  bool efpga_quarantined_ = false;
  bool fenced_ = false;
  bool recovering_ = false;
  std::set<std::uint32_t> suspended_partitions_;
};

}  // namespace hermes::fdir
