#include "fdir/event.hpp"

namespace hermes::fdir {

const char* to_string(Layer layer) {
  switch (layer) {
    case Layer::kAxi: return "axi";
    case Layer::kBoot: return "boot";
    case Layer::kEfpga: return "efpga";
    case Layer::kMemory: return "memory";
    case Layer::kHypervisor: return "hypervisor";
    case Layer::kDataflow: return "dataflow";
    case Layer::kSupervisor: return "supervisor";
    case Layer::kNoc: return "noc";
    case Layer::kCount: break;
  }
  return "?";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kCorrected: return "corrected";
    case Severity::kRetried: return "retried";
    case Severity::kUncorrectable: return "uncorrectable";
    case Severity::kExhausted: return "exhausted";
    case Severity::kCount: break;
  }
  return "?";
}

FdirBus::FdirBus(std::size_t capacity) : capacity_(capacity ? capacity : 1) {
  queue_.reserve(capacity_);
}

void FdirBus::publish(const FdirEvent& event) {
  if (queue_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  queue_.push_back(event);
  ++published_;
}

std::vector<FdirEvent> FdirBus::drain() {
  std::vector<FdirEvent> out;
  out.swap(queue_);
  queue_.reserve(capacity_);
  return out;
}

}  // namespace hermes::fdir
