#include "fdir/checkpoint.hpp"

#include "common/strings.hpp"

namespace hermes::fdir {

CheckpointManager::CheckpointManager(std::size_t capacity)
    : capacity_(capacity ? capacity : 1) {
  ring_.reserve(capacity_);
}

Status CheckpointManager::take(const boot::Soc& soc) {
  if (recovering_) {
    ++stats_.refused;
    return Status::Error(ErrorCode::kInvalidArgument,
                         "checkpoint refused: recovery in progress");
  }
  if (soc.efpga_stats().scrub_silent != 0) {
    ++stats_.refused;
    return Status::Error(ErrorCode::kIntegrityError,
                         "checkpoint refused: silent configuration rot on "
                         "record — state cannot be proven clean");
  }
  const std::uint64_t digest = soc.efpga_config_digest();
  if (have_reference_ && digest != reference_digest_) {
    ++stats_.refused;
    return Status::Error(
        ErrorCode::kIntegrityError,
        format("checkpoint refused: configuration digest %016llx does not "
               "match the reference %016llx",
               static_cast<unsigned long long>(digest),
               static_cast<unsigned long long>(reference_digest_)));
  }
  if (ring_.size() >= capacity_) {
    ring_.erase(ring_.begin());
    ++stats_.evicted;
  }
  Checkpoint checkpoint;
  checkpoint.snapshot = soc.snapshot();
  checkpoint.digest = digest;
  checkpoint.cycles = soc.cycles;
  checkpoint.id = next_id_++;
  ring_.push_back(std::move(checkpoint));
  ++stats_.taken;
  return Status::Ok();
}

void CheckpointManager::drop_newest() {
  if (ring_.empty()) return;
  ring_.pop_back();
  ++stats_.dropped;
}

}  // namespace hermes::fdir
