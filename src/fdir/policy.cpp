#include "fdir/policy.hpp"

namespace hermes::fdir {

const char* to_string(IsolationAction action) {
  switch (action) {
    case IsolationAction::kNone: return "none";
    case IsolationAction::kQuarantineAccelerator: return "quarantine_accelerator";
    case IsolationAction::kSuspendPartition: return "suspend_partition";
    case IsolationAction::kFenceMemory: return "fence_memory";
    case IsolationAction::kShedDataflow: return "shed_dataflow";
    case IsolationAction::kRollback: return "rollback";
    case IsolationAction::kQuarantineNocDomain: return "quarantine_noc_domain";
    case IsolationAction::kCount: break;
  }
  return "?";
}

PolicyEngine::PolicyEngine(PolicyConfig config) : config_(config) {
  if (config_.window == 0) config_.window = 1;
}

IsolationAction PolicyEngine::isolation_for(Layer layer) {
  switch (layer) {
    case Layer::kEfpga:
    case Layer::kBoot:
      return IsolationAction::kQuarantineAccelerator;
    case Layer::kHypervisor:
      return IsolationAction::kSuspendPartition;
    case Layer::kAxi:
    case Layer::kMemory:
      return IsolationAction::kFenceMemory;
    case Layer::kDataflow:
      return IsolationAction::kShedDataflow;
    case Layer::kNoc:
      // The event's `detail` carries the containment domain by contract.
      return IsolationAction::kQuarantineNocDomain;
    case Layer::kSupervisor:
    case Layer::kCount:
      return IsolationAction::kNone;
  }
  return IsolationAction::kNone;
}

std::vector<Decision> PolicyEngine::observe(const FdirEvent& event) {
  const std::uint64_t index = arrival_++;
  LayerWindow& window = windows_[static_cast<std::size_t>(event.layer)];
  window.events.push_back(index);
  if (event.severity >= Severity::kUncorrectable) {
    window.uncorrectable.push_back(index);
  }
  const auto expire = [&](std::deque<std::uint64_t>& entries) {
    while (!entries.empty() && entries.front() + config_.window <= index) {
      entries.pop_front();
    }
  };
  expire(window.events);
  expire(window.uncorrectable);

  std::vector<Decision> decisions;
  const auto decide = [&](IsolationAction action, const char* rule) {
    if (action == IsolationAction::kNone) return;
    decisions.push_back({action, rule, event.layer, event.detail, event.stamp});
  };

  // escalation-exhausted: the layer's own ladder gave up — isolate now.
  if (event.severity == Severity::kExhausted) {
    decide(isolation_for(event.layer), "escalation-exhausted");
  }
  // repeated-uncorrectable: the layer keeps detecting what it cannot fix —
  // its state is no longer trustworthy, restore from a checkpoint.
  if (window.uncorrectable.size() >= config_.uncorrectable_threshold) {
    decide(IsolationAction::kRollback, "repeated-uncorrectable");
    window.uncorrectable.clear();
  }
  // rate-over-window: an event storm from one layer — isolate it before the
  // storm drowns everyone else's detections.
  if (window.events.size() >= config_.rate_threshold) {
    decide(isolation_for(event.layer), "rate-over-window");
    window.events.clear();
  }
  return decisions;
}

}  // namespace hermes::fdir
