// Isolation policy: from event patterns to isolation/recovery decisions.
//
// Detection alone is not FDIR — the supervisor must decide *what to take
// offline* and *when to stop trusting a layer's own ladder*. This engine
// encodes the three patterns the repo's per-layer ladders cannot judge from
// the inside:
//   * escalation-exhausted — a layer reports its own budget ran out
//     (kExhausted): isolate immediately, the layer has already tried;
//   * repeated-uncorrectable — the same layer keeps detecting faults beyond
//     its means (kUncorrectable) within a sliding window: its state can no
//     longer be trusted, roll back to a checkpoint;
//   * rate-over-window — an event storm from one layer, even of low
//     severity, within the window: isolate before the storm saturates the
//     bus and drowns other layers' detections.
// Decisions are produced in event-arrival order from per-layer sliding
// windows over arrival indices — fully deterministic, no wall clock.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "fdir/event.hpp"

namespace hermes::fdir {

/// What the supervisor should do about a pattern.
enum class IsolationAction : std::uint8_t {
  kNone = 0,
  kQuarantineAccelerator,  ///< stop dispatching to the eFPGA accelerator
  kSuspendPartition,       ///< suspend via the hypervisor PartitionApi
  kFenceMemory,            ///< write-fence the suspect memory region (MPU)
  kShedDataflow,           ///< degrade: shed non-critical dataflow work
  kRollback,               ///< restore the last known-good checkpoint
  kQuarantineNocDomain,    ///< quarantine + drain one NoC containment domain
  kCount,                  ///< sentinel for exhaustiveness tests — keep last
};

const char* to_string(IsolationAction action);

struct PolicyConfig {
  /// Sliding-window length in bus-arrival indices (events, all layers).
  std::uint64_t window = 64;
  /// rate-over-window: events from one layer within the window.
  std::uint64_t rate_threshold = 16;
  /// repeated-uncorrectable: kUncorrectable+ events from one layer within
  /// the window before the layer's state is declared untrustworthy.
  std::uint64_t uncorrectable_threshold = 2;
};

/// One triggered rule. `rule` is a static string naming the pattern — it
/// lands verbatim in the FdirReport audit trail.
struct Decision {
  IsolationAction action = IsolationAction::kNone;
  const char* rule = "";
  Layer layer = Layer::kSupervisor;
  std::uint32_t detail = 0;      ///< from the triggering event
  std::uint64_t stamp = 0;       ///< from the triggering event
};

class PolicyEngine {
 public:
  explicit PolicyEngine(PolicyConfig config = {});

  /// Feeds one event in bus-arrival order; returns the decisions it
  /// triggered (possibly none, rarely more than one). Windows that trigger
  /// are cleared so a sustained pattern re-triggers only after re-filling.
  std::vector<Decision> observe(const FdirEvent& event);

  [[nodiscard]] const PolicyConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t observed() const { return arrival_; }

 private:
  /// The isolation a layer's failure maps to (what to take offline when
  /// this layer is the problem).
  static IsolationAction isolation_for(Layer layer);

  PolicyConfig config_;
  std::uint64_t arrival_ = 0;  ///< events observed (the window clock)
  struct LayerWindow {
    std::deque<std::uint64_t> events;         ///< arrival indices, any severity
    std::deque<std::uint64_t> uncorrectable;  ///< kUncorrectable and worse
  };
  std::array<LayerWindow, kNumLayers> windows_;
};

}  // namespace hermes::fdir
