// Checkpoint ring for rollback recovery.
//
// The FDIR recovery rung below a full reboot is "restore the last known-good
// state": the CoW SocSnapshot machinery (11.5x cheaper than a cold boot per
// BENCH_chaos.json) makes periodic checkpoints affordable, and this manager
// adds the discipline that makes them *trustworthy* — a checkpoint is only
// taken when the system is quiescent and digest-clean, so the ring never
// holds a torn or latently corrupt restore target.
#pragma once

#include <cstdint>
#include <vector>

#include "boot/soc.hpp"
#include "common/status.hpp"

namespace hermes::fdir {

/// One restore target: the frozen state plus the evidence it was clean.
struct Checkpoint {
  boot::SocSnapshot snapshot;
  std::uint64_t digest = 0;  ///< eFPGA config digest at take time
  std::uint64_t cycles = 0;  ///< SoC cycle stamp at take time
  std::uint64_t id = 0;      ///< monotonic take ordinal (never reused)
};

struct CheckpointStats {
  std::uint64_t taken = 0;
  std::uint64_t refused = 0;  ///< take() declined: recovering or dirty
  std::uint64_t evicted = 0;  ///< ring-full evictions of the oldest entry
  std::uint64_t dropped = 0;  ///< discarded after failing restore validation
};

/// Bounded ring of SocSnapshots, newest first on lookup. Not thread-safe —
/// the supervisor owns it and runs on one thread, like everything else in
/// the deterministic harness.
class CheckpointManager {
 public:
  explicit CheckpointManager(std::size_t capacity = 4);

  /// Takes a checkpoint of `soc` if it is safe to restore from later:
  ///   * not mid-recovery (set_recovering guards the supervisor's ladder —
  ///     a snapshot taken while a rollback is rewriting state would be torn);
  ///   * no silent configuration rot on record (scrub_silent != 0 means the
  ///     state can no longer be proven clean);
  ///   * when a reference digest is set, the live eFPGA configuration still
  ///     matches it (a latent upset must not be frozen into the ring).
  /// Refusal is clean: kUnavailable-style kInvalidArgument status, counters
  /// bumped, ring untouched.
  Status take(const boot::Soc& soc);

  /// Digest every future take() must match. Typically the digest right after
  /// a verified boot; updated by the supervisor when a reconfiguration is
  /// committed on purpose.
  void set_reference_digest(std::uint64_t digest) {
    reference_digest_ = digest;
    have_reference_ = true;
  }
  void clear_reference_digest() { have_reference_ = false; }

  /// Recovery guard, toggled by the supervisor around its ladder.
  void set_recovering(bool recovering) { recovering_ = recovering; }
  [[nodiscard]] bool recovering() const { return recovering_; }

  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool empty() const { return ring_.empty(); }

  /// Newest entry, or nullptr when the ring is empty.
  [[nodiscard]] const Checkpoint* newest() const {
    return ring_.empty() ? nullptr : &ring_.back();
  }

  /// Discards the newest entry (it failed restore validation); the next
  /// newest becomes the rollback candidate.
  void drop_newest();

  [[nodiscard]] const CheckpointStats& stats() const { return stats_; }

 private:
  std::size_t capacity_;
  std::vector<Checkpoint> ring_;  ///< oldest at front, newest at back
  CheckpointStats stats_;
  std::uint64_t next_id_ = 0;
  std::uint64_t reference_digest_ = 0;
  bool have_reference_ = false;
  bool recovering_ = false;
};

}  // namespace hermes::fdir
