#include "fdir/supervisor.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "noc/noc.hpp"

namespace hermes::fdir {

const char* to_string(FdirMode mode) {
  switch (mode) {
    case FdirMode::kNominal: return "nominal";
    case FdirMode::kDegraded: return "degraded";
    case FdirMode::kSafe: return "safe";
    case FdirMode::kCount: break;
  }
  return "?";
}

std::uint64_t FdirReport::fingerprint() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  mix(events_consumed);
  mix(events_dropped);
  for (const std::uint64_t count : per_layer) mix(count);
  mix(actions.size());
  for (const FdirActionRecord& action : actions) {
    mix(action.stamp);
    for (const char* c = action.rule; *c; ++c) {
      mix(static_cast<std::uint64_t>(*c));
    }
    mix(static_cast<std::uint64_t>(action.action));
    mix(static_cast<std::uint64_t>(action.layer));
    mix(action.detail);
    mix(action.checkpoint_id);
    mix(action.ok ? 1 : 0);
  }
  mix(checkpoints_taken);
  mix(checkpoints_refused);
  mix(restarts);
  mix(rollbacks);
  mix(quarantines);
  mix(suspensions);
  mix(fences);
  mix(sheds);
  mix(noc_quarantines);
  mix(noc_readmissions);
  mix(safe_mode_entries);
  mix(suppressed);
  mix(static_cast<std::uint64_t>(final_mode));
  return hash;
}

std::string FdirReport::render() const {
  std::ostringstream out;
  out << "=== FDIR report ===\n";
  out << format("  events %llu consumed, %llu dropped\n",
                static_cast<unsigned long long>(events_consumed),
                static_cast<unsigned long long>(events_dropped));
  for (std::size_t layer = 0; layer < kNumLayers; ++layer) {
    if (per_layer[layer] == 0) continue;
    out << format("    %-10s %llu\n", to_string(static_cast<Layer>(layer)),
                  static_cast<unsigned long long>(per_layer[layer]));
  }
  for (const FdirActionRecord& action : actions) {
    out << format("  [%s] %s (%s layer, detail %u, stamp %llu",
                  action.ok ? "OK" : "FAIL", to_string(action.action),
                  to_string(action.layer), action.detail,
                  static_cast<unsigned long long>(action.stamp));
    if (action.checkpoint_id != ~0ULL) {
      out << format(", checkpoint %llu",
                    static_cast<unsigned long long>(action.checkpoint_id));
    }
    out << format(") via %s\n", action.rule);
  }
  out << format(
      "  checkpoints %llu taken / %llu refused; restarts %llu; rollbacks "
      "%llu; quarantines %llu; suspensions %llu; fences %llu; sheds %llu; "
      "noc quarantines %llu / readmissions %llu; "
      "safe-mode entries %llu; suppressed %llu; final mode %s\n",
      static_cast<unsigned long long>(checkpoints_taken),
      static_cast<unsigned long long>(checkpoints_refused),
      static_cast<unsigned long long>(restarts),
      static_cast<unsigned long long>(rollbacks),
      static_cast<unsigned long long>(quarantines),
      static_cast<unsigned long long>(suspensions),
      static_cast<unsigned long long>(fences),
      static_cast<unsigned long long>(sheds),
      static_cast<unsigned long long>(noc_quarantines),
      static_cast<unsigned long long>(noc_readmissions),
      static_cast<unsigned long long>(safe_mode_entries),
      static_cast<unsigned long long>(suppressed), to_string(final_mode));
  return out.str();
}

FdirSupervisor::FdirSupervisor(FdirConfig config, FdirBus& bus)
    : config_(config),
      bus_(bus),
      policy_(config.policy),
      checkpoints_(config.checkpoint_ring) {}

void FdirSupervisor::attach_soc(boot::Soc* soc, fault::FaultInjector* injector,
                                fault::FaultPlan base_plan) {
  soc_ = soc;
  injector_ = injector;
  base_plan_ = std::move(base_plan);
  if (soc_) {
    soc_->attach_fdir(&bus_);
    reference_digest_ = soc_->efpga_config_digest();
    have_reference_ = true;
    checkpoints_.set_reference_digest(reference_digest_);
  }
}

void FdirSupervisor::attach_hypervisor(hv::Hypervisor* hv,
                                       hv::PartitionId system_partition) {
  hv_ = hv;
  system_partition_ = system_partition;
  if (hv_) hv_->attach_fdir(&bus_);
}

void FdirSupervisor::attach_noc(noc::Crossbar* fabric) {
  noc_ = fabric;
  if (noc_) noc_->attach_fdir(&bus_);
}

Status FdirSupervisor::checkpoint() {
  if (!soc_) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "no SoC attached to checkpoint");
  }
  const Status status = checkpoints_.take(*soc_);
  if (status.ok()) {
    ++report_.checkpoints_taken;
  } else {
    ++report_.checkpoints_refused;
  }
  return status;
}

std::size_t FdirSupervisor::poll() {
  const std::vector<FdirEvent> events = bus_.drain();
  for (const FdirEvent& event : events) {
    ++report_.events_consumed;
    ++report_.per_layer[static_cast<std::size_t>(event.layer)];
    for (const Decision& decision : policy_.observe(event)) {
      execute(decision);
    }
  }
  report_.events_dropped = bus_.dropped();
  report_.final_mode = mode_;
  return events.size();
}

void FdirSupervisor::record(const Decision& decision,
                            std::uint64_t checkpoint_id, bool ok) {
  report_.actions.push_back({decision.stamp, decision.rule, decision.action,
                             decision.layer, decision.detail, checkpoint_id,
                             ok});
}

void FdirSupervisor::enter_degraded() {
  if (mode_ == FdirMode::kNominal) mode_ = FdirMode::kDegraded;
}

void FdirSupervisor::enter_safe_mode() {
  if (mode_ == FdirMode::kSafe) return;
  mode_ = FdirMode::kSafe;
  efpga_quarantined_ = true;  // safe mode parks the accelerator too
  if (noc_) noc_->quarantine_all();  // ...and the whole fabric
  ++report_.safe_mode_entries;
}

bool FdirSupervisor::try_restart() {
  if (!soc_) return false;
  // In-place restart: one scrub pass heals correctable rot and re-programs
  // uncorrectable frames from the retained source; the state is good again
  // iff the digest re-verifies and nothing slipped through silently.
  (void)soc_->scrub_efpga();
  if (soc_->efpga_stats().scrub_silent != 0) return false;
  return !have_reference_ ||
         soc_->efpga_config_digest() == reference_digest_;
}

bool FdirSupervisor::try_rollback(std::uint64_t* restored_id) {
  if (!soc_) return false;
  while (const Checkpoint* candidate = checkpoints_.newest()) {
    boot::Soc restored =
        injector_ ? boot::Soc::fork(candidate->snapshot, *injector_,
                                    base_plan_,
                                    config_.rollback_seed_base +
                                        report_.rollbacks)
                  : boot::Soc::fork(candidate->snapshot);
    // Trust but verify: the restore target must decode to exactly the
    // digest recorded at take time. A torn or rotten checkpoint is dropped
    // and the next older one tried.
    if (restored.efpga_stats().scrub_silent == 0 &&
        restored.efpga_config_digest() == candidate->digest) {
      *restored_id = candidate->id;
      *soc_ = std::move(restored);
      soc_->attach_fdir(&bus_);  // snapshots never carry the wiring
      ++report_.rollbacks;
      return true;
    }
    checkpoints_.drop_newest();
  }
  return false;
}

void FdirSupervisor::execute(const Decision& decision) {
  // Safe mode is terminal: the system is parked, nothing left to isolate.
  if (mode_ == FdirMode::kSafe) {
    ++report_.suppressed;
    return;
  }
  switch (decision.action) {
    case IsolationAction::kNone:
      break;
    case IsolationAction::kQuarantineAccelerator: {
      if (efpga_quarantined_) {
        ++report_.suppressed;
        break;
      }
      efpga_quarantined_ = true;
      ++report_.quarantines;
      enter_degraded();
      record(decision, ~0ULL, true);
      break;
    }
    case IsolationAction::kSuspendPartition: {
      if (!hv_ || system_partition_ == hv::kNoPartition ||
          decision.detail == system_partition_ ||
          suspended_partitions_.count(decision.detail) != 0) {
        ++report_.suppressed;
        break;
      }
      // Isolation goes through the front door: a hypercall issued with the
      // system partition's privilege, subject to the same checks any guest
      // faces.
      hv::PartitionApi api(*hv_, system_partition_,
                           static_cast<hv::Time>(decision.stamp));
      const Status status =
          api.suspend_partition(static_cast<hv::PartitionId>(decision.detail));
      if (status.ok()) {
        suspended_partitions_.insert(decision.detail);
        ++report_.suspensions;
        // A suspended partition's NoC ports reject cleanly from now on.
        if (noc_) {
          noc_->mask_partition(static_cast<hv::PartitionId>(decision.detail));
        }
        enter_degraded();
      }
      record(decision, ~0ULL, status.ok());
      break;
    }
    case IsolationAction::kFenceMemory: {
      if (fenced_ || !soc_) {
        ++report_.suppressed;
        break;
      }
      // Write-fence the DDR: the MPU scans regions in order and takes the
      // first hit, so a read-only region prepended ahead of the boot-time
      // map fences writes without disturbing reads. With the MPU off, a
      // permit-all region is appended first so only the fence changes
      // behavior.
      if (!soc_->mpu_enabled) {
        soc_->mpu.push_back({0, ~0ULL, true});
        soc_->mpu_enabled = true;
      }
      soc_->mpu.insert(soc_->mpu.begin(),
                       {boot::MemoryMap::kDdrBase, soc_->ddr_size(), false});
      fenced_ = true;
      ++report_.fences;
      enter_degraded();
      record(decision, ~0ULL, true);
      break;
    }
    case IsolationAction::kShedDataflow: {
      if (mode_ != FdirMode::kNominal) {
        ++report_.suppressed;
        break;
      }
      ++report_.sheds;
      enter_degraded();
      record(decision, ~0ULL, true);
      break;
    }
    case IsolationAction::kRollback: {
      if (recovering_) {
        ++report_.suppressed;
        break;
      }
      recovering_ = true;
      checkpoints_.set_recovering(true);
      bool recovered = false;
      std::uint64_t checkpoint_id = ~0ULL;
      // Rung 1: restart in place (scrub + re-verify) — cheapest.
      for (unsigned attempt = 0;
           attempt < config_.max_restart_attempts && !recovered; ++attempt) {
        ++report_.restarts;
        recovered = try_restart();
      }
      // Rung 2: rollback to the newest verifiable checkpoint.
      if (!recovered && report_.rollbacks <
                            static_cast<std::uint64_t>(config_.max_rollbacks)) {
        recovered = try_rollback(&checkpoint_id);
      }
      // Rung 3: safe mode — recovery is out of moves.
      if (recovered) {
        // The restored state predates the fault: quarantined containment
        // domains are re-admitted with reset endpoints and credits.
        if (noc_) report_.noc_readmissions += noc_->readmit_all();
        enter_degraded();
      } else {
        enter_safe_mode();
      }
      record(decision, checkpoint_id, recovered);
      checkpoints_.set_recovering(false);
      recovering_ = false;
      break;
    }
    case IsolationAction::kQuarantineNocDomain: {
      const unsigned domain = decision.detail;
      if (!noc_ || domain >= noc_->num_domains() ||
          noc_->domain_quarantined(domain)) {
        ++report_.suppressed;
        break;
      }
      noc_->quarantine_domain(domain);
      ++report_.noc_quarantines;
      enter_degraded();
      record(decision, ~0ULL, true);
      break;
    }
    case IsolationAction::kCount:
      break;
  }
  report_.final_mode = mode_;
}

}  // namespace hermes::fdir
