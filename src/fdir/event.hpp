// Typed cross-layer fault-detection events and the bounded bus that carries
// them to the FDIR supervisor.
//
// HERMES qualifies the NG-ULTRA for space, where the system answer to
// radiation faults is FDIR: detections from every mitigation layer are
// correlated by a supervisor that isolates the failing subsystem and drives
// recovery. The repo's per-layer ladders (AXI retry/watchdog, eFPGA
// readback/scrub, hypervisor health monitoring, dataflow node re-execution,
// EDAC scrub memories) historically only bumped counters; this header is the
// shared vocabulary they use to *report* instead — each recovery rung taken,
// each uncorrectable detection, each exhausted escalation becomes one typed
// event on a bounded, deterministic bus.
//
// Determinism contract: publishers stamp events with their own monotonic
// clock (SoC cycles, hypervisor microseconds, scrub-pass ordinal), publish in
// their own execution order, and the bus preserves arrival order exactly.
// Two runs of the same seeded scenario therefore produce byte-identical
// event streams — the chaos soak fingerprints them.
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace hermes::fdir {

/// Which mitigation layer detected the fault.
enum class Layer : std::uint8_t {
  kAxi = 0,         ///< AXI master retry/watchdog ladder
  kBoot = 1,        ///< boot-chain integrity ladder
  kEfpga = 2,       ///< eFPGA programming path + configuration scrub
  kMemory = 3,      ///< standalone EDAC/TMR scrub memories
  kHypervisor = 4,  ///< XtratuM health monitor
  kDataflow = 5,    ///< dataflow node re-execution ladder
  kSupervisor = 6,  ///< the FDIR supervisor itself
  kNoc = 7,         ///< interconnect crossbar (credits, CRC, watchdogs)
  // Add new layers above and name them in to_string(); the enum-string
  // exhaustiveness test walks [0, kCount) and fails on a missing name.
  kCount,
};
inline constexpr std::size_t kNumLayers =
    static_cast<std::size_t>(Layer::kCount);

const char* to_string(Layer layer);

/// How far up the layer's own ladder the fault got. Ordered: a higher value
/// always means the layer needed (or failed to get) more help.
enum class Severity : std::uint8_t {
  kInfo = 0,           ///< observation only (logged HM event, plan switch)
  kCorrected = 1,      ///< masked in place (EDAC single-bit, TMR vote)
  kRetried = 2,        ///< a bounded retry/re-write/re-execution rung taken
  kUncorrectable = 3,  ///< detected but beyond the layer's own means
  kExhausted = 4,      ///< the layer's escalation budget ran out
  kCount,              ///< sentinel for exhaustiveness tests — keep last
};

const char* to_string(Severity severity);

/// One detection. 24 bytes, trivially copyable — cheap enough that every
/// retry rung in a storm can afford to publish.
struct FdirEvent {
  Layer layer = Layer::kSupervisor;
  Severity severity = Severity::kInfo;
  ErrorCode code = ErrorCode::kOk;  ///< the status the layer saw/returned
  std::uint32_t detail = 0;  ///< layer-specific: frame index, partition id,
                             ///< task id, word count
  std::uint64_t stamp = 0;   ///< publisher's monotonic clock (its own domain)
};

/// Bounded single-consumer event queue. publish() never allocates past the
/// fixed capacity and never blocks: when the bus is full the event is dropped
/// and *counted* — detection loss under an event storm is itself an
/// observable, never a silent hole in the audit trail.
class FdirBus {
 public:
  explicit FdirBus(std::size_t capacity = 256);

  /// Enqueues (or counts a drop when full). Arrival order is preserved.
  void publish(const FdirEvent& event);

  /// Removes and returns every queued event in arrival order.
  [[nodiscard]] std::vector<FdirEvent> drain();

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t published() const { return published_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  std::size_t capacity_;
  std::vector<FdirEvent> queue_;
  std::uint64_t published_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace hermes::fdir
