// XtratuM NextGeneration hypervisor model — core types.
//
// "XtratuM is a bare-metal space-qualified hypervisor aimed at safe and
// efficient execution of embedded real-time systems ... [the] time and space
// partitioning (TSP) concept" (HERMES, Sec. III). The model reproduces the
// mechanisms the qualification argues about: ARINC-653-style cyclic plans on
// the quad-core R52, partition state machines, hypercalls, sampling/queuing
// ports, MPU space isolation and a health monitor — at microsecond
// granularity on a simulated machine (we have no silicon; see DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hermes::hv {

using Time = std::uint64_t;          ///< microseconds since boot
using PartitionId = std::uint32_t;
inline constexpr PartitionId kNoPartition = ~0u;
inline constexpr unsigned kNumCores = 4;  ///< quad-core ARM R52 (paper Fig. 1)

/// Partition operating states (XtratuM partition life cycle).
enum class PartitionState : std::uint8_t {
  kBoot,      ///< loaded, not yet running
  kNormal,    ///< scheduled according to the plan
  kIdle,      ///< voluntarily idle until next slot
  kSuspended, ///< removed from scheduling (HM action or hypercall)
  kHalted,    ///< terminally stopped
};

const char* to_string(PartitionState state);

/// Space partitioning: one contiguous memory region per partition (MPU
/// granularity on the R52 is region-based, not paged).
struct MemRegion {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  [[nodiscard]] bool contains(std::uint64_t addr, std::uint64_t bytes) const {
    return addr >= base && addr + bytes <= base + size && addr + bytes >= addr;
  }
  [[nodiscard]] bool overlaps(const MemRegion& other) const {
    return base < other.base + other.size && other.base < base + size;
  }
};

/// Health-monitor events (subset of the XtratuM HM table).
enum class HmEvent : std::uint8_t {
  kMemoryViolation,   ///< access outside the partition's regions
  kDeadlineMiss,      ///< partition job overran its deadline
  kBudgetOverrun,     ///< job needed more CPU than the slot provided (detected)
  kIllegalHypercall,  ///< hypercall not permitted to this partition
  kPartitionError,    ///< partition raised an error itself
};

const char* to_string(HmEvent event);

/// Health-monitor actions.
enum class HmAction : std::uint8_t {
  kIgnore,
  kLog,
  kSuspendPartition,
  kHaltPartition,
  kRestartPartition,
};

const char* to_string(HmAction action);

/// One scheduling slot of the cyclic plan (per core).
struct Slot {
  Time start = 0;      ///< offset within the major frame
  Time duration = 0;
  PartitionId partition = kNoPartition;  ///< kNoPartition = idle slot
  unsigned vcpu = 0;   ///< which vCPU of the partition runs here
};

/// Cyclic plan: a major time frame replicated forever, one slot table per core.
struct CyclicPlan {
  Time major_frame = 0;
  std::vector<std::vector<Slot>> per_core{kNumCores};
};

/// Periodic real-time workload profile of a partition (used for deadline
/// accounting): a job of `wcet` microseconds is released every `period`.
struct RtProfile {
  Time period = 0;    ///< 0 = not periodic (best-effort)
  Time deadline = 0;  ///< relative; 0 = implicit (== period)
  Time wcet = 0;      ///< per-job execution demand
};

}  // namespace hermes::hv
