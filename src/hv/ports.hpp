// Inter-partition communication: sampling and queuing ports.
//
// XtratuM provides ARINC-653-style ports as the only legal way for
// partitions to exchange data (space partitioning forbids shared memory).
// A sampling port holds the most recent message with a validity period; a
// queuing port is a bounded FIFO. Channels connect one source port to one or
// more destination ports; the hypervisor copies data at write time.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hv/types.hpp"

namespace hermes::hv {

using Message = std::vector<std::uint8_t>;

enum class PortKind : std::uint8_t { kSampling, kQueuing };
enum class PortDir : std::uint8_t { kSource, kDestination };

struct PortConfig {
  std::string name;
  PortKind kind = PortKind::kSampling;
  PortDir dir = PortDir::kSource;
  PartitionId owner = kNoPartition;
  std::size_t max_message = 64;
  std::size_t queue_depth = 8;     ///< queuing only
  Time validity = 0;               ///< sampling only; 0 = always valid
};

struct ChannelConfig {
  std::string source_port;          ///< port name (must be kSource)
  std::vector<std::string> destinations;
};

/// Runtime state of one port.
struct PortState {
  PortConfig config;
  // Sampling.
  Message last_value;
  Time last_write = 0;
  bool ever_written = false;
  // Queuing.
  std::deque<Message> queue;
  std::uint64_t overflows = 0;  ///< messages dropped on full queue
};

/// The hypervisor's port switch: owns all ports and channels.
class PortSwitch {
 public:
  Status add_port(const PortConfig& config);
  Status add_channel(const ChannelConfig& config);

  /// Write from a partition through its source port. Fails if the port does
  /// not belong to `writer` or is not a source.
  Status write(PartitionId writer, std::string_view port, const Message& message,
               Time now);

  /// Sampling read: returns the last value and whether it is still valid.
  struct SampleResult {
    Message message;
    bool valid = false;
    Time age = 0;
  };
  Result<SampleResult> read_sample(PartitionId reader, std::string_view port,
                                   Time now);

  /// Queuing read: pops the oldest message; kNotFound when empty.
  Result<Message> read_queue(PartitionId reader, std::string_view port);

  [[nodiscard]] const PortState* find(std::string_view name) const;
  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }

 private:
  PortState* find_mutable(std::string_view name);

  std::vector<PortState> ports_;
  std::vector<ChannelConfig> channels_;
  std::uint64_t messages_ = 0;
};

}  // namespace hermes::hv
