#include "hv/ports.hpp"

#include "common/strings.hpp"

namespace hermes::hv {

PortState* PortSwitch::find_mutable(std::string_view name) {
  for (PortState& port : ports_) {
    if (port.config.name == name) return &port;
  }
  return nullptr;
}

const PortState* PortSwitch::find(std::string_view name) const {
  for (const PortState& port : ports_) {
    if (port.config.name == name) return &port;
  }
  return nullptr;
}

Status PortSwitch::add_port(const PortConfig& config) {
  if (find(config.name)) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("duplicate port '%s'", config.name.c_str()));
  }
  PortState state;
  state.config = config;
  ports_.push_back(std::move(state));
  return Status::Ok();
}

Status PortSwitch::add_channel(const ChannelConfig& config) {
  const PortState* source = find(config.source_port);
  if (!source || source->config.dir != PortDir::kSource) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("channel source '%s' missing or not a source",
                                config.source_port.c_str()));
  }
  for (const std::string& dest : config.destinations) {
    const PortState* port = find(dest);
    if (!port || port->config.dir != PortDir::kDestination) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           format("channel destination '%s' missing or not a "
                                  "destination", dest.c_str()));
    }
    if (port->config.kind != source->config.kind) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "channel endpoints must have the same port kind");
    }
  }
  channels_.push_back(config);
  return Status::Ok();
}

Status PortSwitch::write(PartitionId writer, std::string_view port_name,
                         const Message& message, Time now) {
  PortState* port = find_mutable(port_name);
  if (!port) {
    return Status::Error(ErrorCode::kNotFound, "no such port");
  }
  if (port->config.owner != writer) {
    return Status::Error(ErrorCode::kIsolationFault,
                         format("partition %u does not own port '%s'", writer,
                                port->config.name.c_str()));
  }
  if (port->config.dir != PortDir::kSource) {
    return Status::Error(ErrorCode::kInvalidArgument, "port is not a source");
  }
  if (message.size() > port->config.max_message) {
    return Status::Error(ErrorCode::kInvalidArgument, "message too large");
  }

  // Deliver through every channel rooted at this port.
  for (const ChannelConfig& channel : channels_) {
    if (channel.source_port != port->config.name) continue;
    for (const std::string& dest_name : channel.destinations) {
      PortState* dest = find_mutable(dest_name);
      if (!dest) continue;
      if (dest->config.kind == PortKind::kSampling) {
        dest->last_value = message;
        dest->last_write = now;
        dest->ever_written = true;
      } else {
        if (dest->queue.size() >= dest->config.queue_depth) {
          ++dest->overflows;
          dest->queue.pop_front();  // drop-oldest policy
        }
        dest->queue.push_back(message);
      }
      ++messages_;
    }
  }
  return Status::Ok();
}

Result<PortSwitch::SampleResult> PortSwitch::read_sample(
    PartitionId reader, std::string_view port_name, Time now) {
  PortState* port = find_mutable(port_name);
  if (!port) return Status::Error(ErrorCode::kNotFound, "no such port");
  if (port->config.owner != reader) {
    return Status::Error(ErrorCode::kIsolationFault,
                         "reader does not own the port");
  }
  if (port->config.kind != PortKind::kSampling ||
      port->config.dir != PortDir::kDestination) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "not a sampling destination port");
  }
  SampleResult result;
  if (!port->ever_written) {
    result.valid = false;
    return result;
  }
  result.message = port->last_value;
  result.age = now - port->last_write;
  result.valid =
      port->config.validity == 0 || result.age <= port->config.validity;
  return result;
}

Result<Message> PortSwitch::read_queue(PartitionId reader,
                                       std::string_view port_name) {
  PortState* port = find_mutable(port_name);
  if (!port) return Status::Error(ErrorCode::kNotFound, "no such port");
  if (port->config.owner != reader) {
    return Status::Error(ErrorCode::kIsolationFault,
                         "reader does not own the port");
  }
  if (port->config.kind != PortKind::kQueuing ||
      port->config.dir != PortDir::kDestination) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "not a queuing destination port");
  }
  if (port->queue.empty()) {
    return Status::Error(ErrorCode::kNotFound, "queue empty");
  }
  Message message = std::move(port->queue.front());
  port->queue.pop_front();
  return message;
}

}  // namespace hermes::hv
