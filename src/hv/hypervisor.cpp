#include "hv/hypervisor.hpp"

#include <algorithm>
#include <cstring>

#include "common/strings.hpp"

namespace hermes::hv {

const char* to_string(PartitionState state) {
  switch (state) {
    case PartitionState::kBoot: return "BOOT";
    case PartitionState::kNormal: return "NORMAL";
    case PartitionState::kIdle: return "IDLE";
    case PartitionState::kSuspended: return "SUSPENDED";
    case PartitionState::kHalted: return "HALTED";
  }
  return "?";
}

const char* to_string(HmEvent event) {
  switch (event) {
    case HmEvent::kMemoryViolation: return "memory_violation";
    case HmEvent::kDeadlineMiss: return "deadline_miss";
    case HmEvent::kBudgetOverrun: return "budget_overrun";
    case HmEvent::kIllegalHypercall: return "illegal_hypercall";
    case HmEvent::kPartitionError: return "partition_error";
  }
  return "?";
}

const char* to_string(HmAction action) {
  switch (action) {
    case HmAction::kIgnore: return "ignore";
    case HmAction::kLog: return "log";
    case HmAction::kSuspendPartition: return "suspend";
    case HmAction::kHaltPartition: return "halt";
    case HmAction::kRestartPartition: return "restart";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// PartitionApi
// ---------------------------------------------------------------------------

Status PartitionApi::write_mem(std::uint64_t addr, const void* data,
                               std::uint64_t bytes) {
  const PartitionConfig& config = hv_.config_.partitions[id_];
  if (!config.region.contains(addr, bytes)) {
    hv_.hm_raise(id_, HmEvent::kMemoryViolation, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         format("partition %u write outside its region", id_));
  }
  if (addr + bytes <= hv_.memory_.size()) {
    std::memcpy(hv_.memory_.data() + addr, data, bytes);
  }
  return Status::Ok();
}

Status PartitionApi::read_mem(std::uint64_t addr, void* data,
                              std::uint64_t bytes) {
  const PartitionConfig& config = hv_.config_.partitions[id_];
  if (!config.region.contains(addr, bytes)) {
    hv_.hm_raise(id_, HmEvent::kMemoryViolation, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         format("partition %u read outside its region", id_));
  }
  if (addr + bytes <= hv_.memory_.size()) {
    std::memcpy(data, hv_.memory_.data() + addr, bytes);
  } else {
    std::memset(data, 0, bytes);
  }
  return Status::Ok();
}

Status PartitionApi::write_port(std::string_view port, const Message& message) {
  return hv_.ports_.write(id_, port, message, now_);
}

Result<PortSwitch::SampleResult> PartitionApi::read_sample(std::string_view port) {
  return hv_.ports_.read_sample(id_, port, now_);
}

Result<Message> PartitionApi::read_queue(std::string_view port) {
  return hv_.ports_.read_queue(id_, port);
}

void PartitionApi::raise_error() {
  hv_.hm_raise(id_, HmEvent::kPartitionError, now_);
}

Status PartitionApi::suspend_partition(PartitionId target) {
  if (!hv_.config_.partitions[id_].system) {
    hv_.hm_raise(id_, HmEvent::kIllegalHypercall, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         "partition-management hypercall from non-system partition");
  }
  if (target >= hv_.state_.size()) {
    return Status::Error(ErrorCode::kNotFound, "no such partition");
  }
  hv_.state_[target].state = PartitionState::kSuspended;
  return Status::Ok();
}

Status PartitionApi::resume_partition(PartitionId target) {
  if (!hv_.config_.partitions[id_].system) {
    hv_.hm_raise(id_, HmEvent::kIllegalHypercall, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         "partition-management hypercall from non-system partition");
  }
  if (target >= hv_.state_.size()) {
    return Status::Error(ErrorCode::kNotFound, "no such partition");
  }
  if (hv_.state_[target].state == PartitionState::kSuspended) {
    hv_.state_[target].state = PartitionState::kNormal;
  }
  return Status::Ok();
}

Status PartitionApi::switch_plan(std::size_t plan_index) {
  if (!hv_.config_.partitions[id_].system) {
    hv_.hm_raise(id_, HmEvent::kIllegalHypercall, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         "plan switch requested by non-system partition");
  }
  if (plan_index >= hv_.plan_count()) {
    return Status::Error(ErrorCode::kNotFound, "no such scheduling plan");
  }
  // XtratuM semantics: the mode change is latched and applied at the next
  // major-frame boundary so the current frame's slots are honoured.
  hv_.pending_plan_ = plan_index;
  return Status::Ok();
}

Status PartitionApi::halt_partition(PartitionId target) {
  if (!hv_.config_.partitions[id_].system && target != id_) {
    hv_.hm_raise(id_, HmEvent::kIllegalHypercall, now_);
    return Status::Error(ErrorCode::kIsolationFault,
                         "partition-management hypercall from non-system partition");
  }
  if (target >= hv_.state_.size()) {
    return Status::Error(ErrorCode::kNotFound, "no such partition");
  }
  hv_.state_[target].state = PartitionState::kHalted;
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Hypervisor
// ---------------------------------------------------------------------------

Hypervisor::Hypervisor(HvConfig config) : config_(std::move(config)) {
  // Materialize the effective process list: explicit guest processes, or the
  // single-process shorthand at priority 0.
  procs_.resize(config_.partitions.size());
  for (std::size_t i = 0; i < config_.partitions.size(); ++i) {
    const PartitionConfig& partition = config_.partitions[i];
    if (!partition.processes.empty()) {
      procs_[i] = partition.processes;
    } else if (partition.profile.period != 0) {
      ProcessConfig process;
      process.name = partition.name;
      process.profile = partition.profile;
      process.on_job = partition.on_job;
      process.priority = 0;
      procs_[i] = {std::move(process)};
    }
  }
  state_.resize(config_.partitions.size());
  stats_.resize(config_.partitions.size());
  memory_.assign(config_.machine_memory_bytes, 0);
  for (const PortConfig& port : config_.ports) {
    (void)ports_.add_port(port);
  }
  for (const ChannelConfig& channel : config_.channels) {
    (void)ports_.add_channel(channel);
  }
}

Status Hypervisor::validate_plan(const CyclicPlan& plan,
                                 std::size_t index) const {
  if (plan.major_frame == 0) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("plan %zu: major frame is zero", index));
  }
  if (plan.per_core.size() > kNumCores) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("plan %zu uses %zu cores, machine has %u",
                                index, plan.per_core.size(), kNumCores));
  }
  for (std::size_t core = 0; core < plan.per_core.size(); ++core) {
    const auto& slots = plan.per_core[core];
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const Slot& slot = slots[i];
      if (slot.start + slot.duration > plan.major_frame) {
        return Status::Error(
            ErrorCode::kInvalidArgument,
            format("plan %zu core %zu slot %zu exceeds the major frame",
                   index, core, i));
      }
      if (slot.partition != kNoPartition &&
          slot.partition >= config_.partitions.size()) {
        return Status::Error(ErrorCode::kInvalidArgument,
                             format("plan %zu core %zu slot %zu: bad partition",
                                    index, core, i));
      }
      for (std::size_t j = i + 1; j < slots.size(); ++j) {
        const Slot& other = slots[j];
        if (slot.start < other.start + other.duration &&
            other.start < slot.start + slot.duration) {
          return Status::Error(
              ErrorCode::kInvalidArgument,
              format("plan %zu core %zu: slots %zu and %zu overlap", index,
                     core, i, j));
        }
      }
    }
  }
  return Status::Ok();
}

Status Hypervisor::validate() const {
  for (std::size_t p = 0; p < plan_count(); ++p) {
    Status status = validate_plan(plan(p), p);
    if (!status.ok()) return status;
  }
  // Space partitioning: no two partitions may share memory.
  for (std::size_t a = 0; a < config_.partitions.size(); ++a) {
    for (std::size_t b = a + 1; b < config_.partitions.size(); ++b) {
      if (config_.partitions[a].region.size != 0 &&
          config_.partitions[b].region.size != 0 &&
          config_.partitions[a].region.overlaps(config_.partitions[b].region)) {
        return Status::Error(
            ErrorCode::kIsolationFault,
            format("partitions '%s' and '%s' have overlapping MPU regions",
                   config_.partitions[a].name.c_str(),
                   config_.partitions[b].name.c_str()));
      }
    }
  }
  return Status::Ok();
}

void Hypervisor::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) {
    pt_overrun_ = fault::kNoFaultPoint;
    pt_crash_ = fault::kNoFaultPoint;
    return;
  }
  pt_overrun_ = injector_->register_point("hv.job.overrun");
  pt_crash_ = injector_->register_point("hv.partition.crash");
}

void Hypervisor::hm_raise(PartitionId id, HmEvent event, Time now) {
  const auto it = config_.hm_table.find(event);
  HmAction action = it == config_.hm_table.end() ? HmAction::kLog
                                                 : it->second;
  if (action == HmAction::kRestartPartition &&
      state_[id].restarts >= config_.restart_budget) {
    // Restart budget spent: escalate. First past the budget the partition is
    // suspended (a system partition may still resume it); past that, halted.
    action = state_[id].escalated ? HmAction::kHaltPartition
                                  : HmAction::kSuspendPartition;
    state_[id].escalated = true;
  }
  hm_log_.push_back({now, id, event, action});
  if (fdir_) {
    fdir::Severity severity;
    switch (action) {
      case HmAction::kRestartPartition:
        severity = fdir::Severity::kRetried;
        break;
      case HmAction::kSuspendPartition:
      case HmAction::kHaltPartition:
        severity = fdir::Severity::kExhausted;
        break;
      default:
        severity = fdir::Severity::kInfo;
        break;
    }
    const ErrorCode code =
        event == HmEvent::kMemoryViolation || event == HmEvent::kIllegalHypercall
            ? ErrorCode::kIsolationFault
        : event == HmEvent::kDeadlineMiss || event == HmEvent::kBudgetOverrun
            ? ErrorCode::kDeadlineExceeded
            : ErrorCode::kInternal;
    fdir_->publish({fdir::Layer::kHypervisor, severity, code,
                    static_cast<std::uint32_t>(id), now});
  }
  switch (action) {
    case HmAction::kIgnore:
    case HmAction::kLog:
      break;
    case HmAction::kSuspendPartition:
      state_[id].state = PartitionState::kSuspended;
      break;
    case HmAction::kHaltPartition:
      state_[id].state = PartitionState::kHalted;
      break;
    case HmAction::kRestartPartition:
      for (ProcessRt& process : state_[id].processes) process.queue.clear();
      state_[id].state = PartitionState::kNormal;
      ++state_[id].restarts;
      ++stats_[id].restarts;
      break;
  }
}

void Hypervisor::release_jobs(Time upto) {
  for (PartitionId id = 0; id < state_.size(); ++id) {
    for (std::size_t p = 0; p < procs_[id].size(); ++p) {
      const RtProfile& profile = procs_[id][p].profile;
      if (profile.period == 0) continue;
      ProcessRt& rt = state_[id].processes[p];
      while (rt.next_release < upto) {
        Job job;
        job.release = rt.next_release;
        const Time rel_deadline =
            profile.deadline ? profile.deadline : profile.period;
        job.deadline = rt.next_release + rel_deadline;
        job.remaining = profile.wcet;
        job.budget = profile.wcet;
        if (injector_ && injector_->should_fire(pt_overrun_)) {
          // Fault: this job will demand 8x its declared WCET. The budget
          // watchdog in service() catches it the moment the budget is spent.
          job.remaining = profile.wcet * 8;
        }
        rt.queue.push_back(job);
        ++stats_[id].jobs_released;
        ++stats_[id].processes[p].jobs_released;
        rt.next_release += profile.period;
      }
    }
  }
}

Time Hypervisor::service(PartitionId id, Time from, Time to) {
  PartitionRt& rt = state_[id];
  PartitionStats& st = stats_[id];
  const auto& processes = procs_[id];
  Time now = from;

  while (now < to && rt.state == PartitionState::kNormal) {
    // Fixed-priority pick among processes with a released job (ties: lower
    // index — declaration order).
    std::size_t pick = SIZE_MAX;
    for (std::size_t p = 0; p < processes.size(); ++p) {
      const ProcessRt& prt = rt.processes[p];
      if (prt.queue.empty() || prt.queue.front().release > now) continue;
      if (pick == SIZE_MAX ||
          processes[p].priority > processes[pick].priority) {
        pick = p;
      }
    }
    if (pick == SIZE_MAX) {
      // Idle until the earliest pending release inside this slot.
      Time next = to;
      for (const ProcessRt& prt : rt.processes) {
        if (!prt.queue.empty()) {
          next = std::min(next, prt.queue.front().release);
        }
      }
      if (next >= to) break;
      now = next;
      continue;
    }

    // Preemption accounting: a different process takes over while the
    // previously running one still holds a started, unfinished job.
    if (rt.last_running != SIZE_MAX && rt.last_running != pick &&
        rt.last_running < rt.processes.size()) {
      const ProcessRt& prev = rt.processes[rt.last_running];
      if (!prev.queue.empty() && prev.queue.front().started &&
          prev.queue.front().remaining > 0) {
        ++st.processes[rt.last_running].preemptions;
      }
    }
    rt.last_running = pick;

    Job& job = rt.processes[pick].queue.front();
    if (!job.started) {
      job.started = true;
      job.first_service = now;
      st.max_jitter = std::max(st.max_jitter, now - job.release);
    }
    // Run until completion, the slot end, or the next release of a
    // strictly-higher-priority process (the preemption point).
    Time horizon = to;
    for (std::size_t q = 0; q < processes.size(); ++q) {
      if (q == pick || rt.processes[q].queue.empty()) continue;
      const Job& other = rt.processes[q].queue.front();
      if (other.release > now &&
          processes[q].priority > processes[pick].priority) {
        horizon = std::min(horizon, other.release);
      }
    }
    Time slice = std::min<Time>(horizon - now, job.remaining);
    if (!job.overrun_raised && job.consumed < job.budget) {
      // The budget timer: a job is never run past its declared WCET without
      // control returning to the monitor first.
      slice = std::min<Time>(slice, job.budget - job.consumed);
    }
    job.remaining -= slice;
    job.consumed += slice;
    now += slice;
    st.cpu_time += slice;
    st.processes[pick].cpu_time += slice;

    if (!job.overrun_raised && job.consumed >= job.budget &&
        job.remaining > 0) {
      // The job spent its whole declared WCET and still wants more — only
      // possible when a fault inflated its demand. Raise kBudgetOverrun;
      // the configured HM action decides what happens to the partition.
      job.overrun_raised = true;
      ++st.budget_overruns;
      hm_raise(id, HmEvent::kBudgetOverrun, now);
      if (rt.state != PartitionState::kNormal ||
          rt.processes[pick].queue.empty()) {
        break;  // HM suspended/halted/restarted the partition
      }
    }

    if (job.remaining == 0) {
      // Completion: run the functional payload, check the deadline.
      st.max_response = std::max(st.max_response, now - job.release);
      st.processes[pick].max_response =
          std::max(st.processes[pick].max_response, now - job.release);
      if (now > job.deadline) {
        ++st.deadline_misses;
        ++st.processes[pick].deadline_misses;
        hm_raise(id, HmEvent::kDeadlineMiss, now);
      }
      ++st.jobs_completed;
      ++st.processes[pick].jobs_completed;
      if (processes[pick].on_job) {
        PartitionApi api(*this, id, now);
        processes[pick].on_job(api);
      }
      if (injector_ && injector_->should_fire(pt_crash_)) {
        // Fault: the partition crashes at this job boundary.
        hm_raise(id, HmEvent::kPartitionError, now);
      }
      // The job callback may have fired an HM action that suspended, halted
      // or restarted this partition (restart clears the queues), so re-check
      // before consuming the completed job.
      if (rt.state == PartitionState::kNormal &&
          !rt.processes[pick].queue.empty()) {
        rt.processes[pick].queue.pop_front();
      } else {
        break;
      }
    }
  }
  return now - from;
}

Result<RunStats> Hypervisor::run(Time duration) {
  Status valid = validate();
  if (!valid.ok()) return valid;

  for (PartitionId id = 0; id < state_.size(); ++id) {
    state_[id].state = PartitionState::kNormal;
    state_[id].processes.assign(procs_[id].size(), {});
    state_[id].last_running = SIZE_MAX;
    state_[id].restarts = 0;
    state_[id].escalated = false;
    stats_[id] = {};
    stats_[id].processes.resize(procs_[id].size());
  }
  hm_log_.clear();
  context_switches_ = 0;
  for (Time& busy : busy_) busy = 0;
  active_plan_ = 0;
  pending_plan_ = 0;
  plan_switches_ = 0;

  // Build the per-core slot timelines and walk major frames.
  PartitionId previous_on_core[kNumCores];
  for (auto& prev : previous_on_core) prev = kNoPartition;

  Time frame_base = 0;
  std::uint64_t frames = 0;
  while (frame_base < duration) {
    // Apply a latched mode change at the frame boundary.
    if (pending_plan_ != active_plan_) {
      active_plan_ = pending_plan_;
      ++plan_switches_;
    }
    const CyclicPlan& active = plan(active_plan_);
    const Time maf = active.major_frame;
    ++frames;
    // Release every job up front for this frame (fine granularity is not
    // needed: releases are aligned to periods which divide typical frames).
    release_jobs(std::min(frame_base + maf, duration));

    // Gather slot segments of this frame across cores, sorted by start.
    struct Segment {
      Time start, end;
      unsigned core;
      PartitionId partition;
    };
    std::vector<Segment> segments;
    for (unsigned core = 0; core < active.per_core.size(); ++core) {
      for (const Slot& slot : active.per_core[core]) {
        if (slot.partition == kNoPartition) continue;
        const Time start = frame_base + slot.start;
        const Time end = std::min<Time>(start + slot.duration, duration);
        if (start >= duration || end <= start) continue;
        segments.push_back({start, end, core, slot.partition});
      }
    }
    std::sort(segments.begin(), segments.end(),
              [](const Segment& a, const Segment& b) {
                return a.start < b.start;
              });

    for (const Segment& segment : segments) {
      Time start = segment.start;
      if (previous_on_core[segment.core] != segment.partition) {
        ++context_switches_;
        start = std::min(segment.end, start + config_.context_switch_cost);
        previous_on_core[segment.core] = segment.partition;
      }
      if (state_[segment.partition].state != PartitionState::kNormal) continue;
      const Time used = service(segment.partition, start, segment.end);
      busy_[segment.core] += used;
    }
    frame_base += maf;
  }

  // Detect jobs that missed their deadline without ever completing.
  for (PartitionId id = 0; id < state_.size(); ++id) {
    for (std::size_t p = 0; p < state_[id].processes.size(); ++p) {
      for (const Job& job : state_[id].processes[p].queue) {
        if (job.deadline <= duration) {
          ++stats_[id].deadline_misses;
          ++stats_[id].processes[p].deadline_misses;
        }
      }
    }
    stats_[id].final_state = state_[id].state;
  }

  RunStats run_stats;
  run_stats.simulated = duration;
  run_stats.context_switches = context_switches_;
  run_stats.major_frames = frames;
  run_stats.plan_switches = plan_switches_;
  run_stats.final_plan = active_plan_;
  run_stats.partitions = stats_;
  run_stats.hm_log = hm_log_;
  run_stats.port_messages = ports_.total_messages();
  for (unsigned core = 0; core < kNumCores; ++core) {
    run_stats.core_utilization[core] =
        duration ? static_cast<double>(busy_[core]) / duration : 0.0;
  }
  return run_stats;
}

}  // namespace hermes::hv
