// The XtratuM-NG hypervisor simulator.
//
// Executes a cyclic plan over the quad-core machine at microsecond
// resolution. Each partition runs one periodic real-time job stream (the
// SELENE-derived use cases: AOCS control loop, VBN image processing, EOR
// planning); jobs consume CPU budget inside the partition's slots and invoke
// their functional payload (a C++ callback with access to the hypercall API)
// on completion. The simulator enforces:
//   * time partitioning  — a partition only advances inside its slots;
//   * space partitioning — every memory access a job performs through the
//     API is checked against the partition's MPU regions;
//   * the health monitor — violations, overruns and deadline misses trigger
//     the configured HM action (log / suspend / halt / restart).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "fdir/event.hpp"
#include "hv/ports.hpp"
#include "hv/types.hpp"

namespace hermes::hv {

class Hypervisor;

/// Hypercall interface handed to partition job callbacks.
class PartitionApi {
 public:
  PartitionApi(Hypervisor& hv, PartitionId id, Time now)
      : hv_(hv), id_(id), now_(now) {}

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] PartitionId id() const { return id_; }

  /// Checked memory access (space partitioning). Byte payloads live in the
  /// machine memory model.
  Status write_mem(std::uint64_t addr, const void* data, std::uint64_t bytes);
  Status read_mem(std::uint64_t addr, void* data, std::uint64_t bytes);

  /// Port hypercalls.
  Status write_port(std::string_view port, const Message& message);
  Result<PortSwitch::SampleResult> read_sample(std::string_view port);
  Result<Message> read_queue(std::string_view port);

  /// Raises an application error (HM kPartitionError).
  void raise_error();

  /// Partition-management hypercalls (system partitions only; others get
  /// HM kIllegalHypercall).
  Status suspend_partition(PartitionId target);
  Status resume_partition(PartitionId target);
  Status halt_partition(PartitionId target);

  /// Requests a scheduling-plan switch (XtratuM mode change). Takes effect
  /// at the next major-frame boundary, never mid-frame. System only.
  Status switch_plan(std::size_t plan_index);

 private:
  Hypervisor& hv_;
  PartitionId id_;
  Time now_;
};

using JobFn = std::function<void(PartitionApi&)>;

/// One guest process inside a partition. Partitions host RTOS guests with
/// several periodic tasks; within the partition's slots they are scheduled
/// priority-preemptively (fixed priorities, higher value wins).
struct ProcessConfig {
  std::string name;
  RtProfile profile;
  unsigned priority = 0;
  JobFn on_job;
};

struct PartitionConfig {
  std::string name;
  MemRegion region;
  bool system = false;   ///< may issue partition-management hypercalls
  RtProfile profile;     ///< single-process shorthand (period 0 = none)
  JobFn on_job;          ///< functional payload, run at job completion
  /// Multi-process guest: when non-empty, supersedes profile/on_job.
  std::vector<ProcessConfig> processes;
};

struct HvConfig {
  CyclicPlan plan;                      ///< plan 0 (boot plan)
  std::vector<CyclicPlan> extra_plans;  ///< plans 1..N for mode changes
  std::vector<PartitionConfig> partitions;
  std::vector<PortConfig> ports;
  std::vector<ChannelConfig> channels;
  Time context_switch_cost = 20;  ///< µs charged at every partition switch
  /// How many HM-driven restarts a partition gets before the monitor
  /// escalates: restart (x budget) -> suspend -> halt. A crash-looping
  /// partition is taken out instead of thrashing the schedule forever.
  unsigned restart_budget = 3;
  std::map<HmEvent, HmAction> hm_table = {
      {HmEvent::kMemoryViolation, HmAction::kSuspendPartition},
      {HmEvent::kDeadlineMiss, HmAction::kLog},
      {HmEvent::kBudgetOverrun, HmAction::kLog},
      {HmEvent::kIllegalHypercall, HmAction::kSuspendPartition},
      {HmEvent::kPartitionError, HmAction::kRestartPartition},
  };
  std::uint64_t machine_memory_bytes = 1 << 20;  ///< simulated DDR
};

struct ProcessStats {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  Time cpu_time = 0;
  Time max_response = 0;
  std::uint64_t preemptions = 0;  ///< times a higher-priority job cut in
};

struct PartitionStats {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  Time cpu_time = 0;
  Time max_jitter = 0;        ///< release -> first service
  Time max_response = 0;      ///< release -> completion
  std::uint64_t restarts = 0;         ///< HM-driven partition restarts
  std::uint64_t budget_overruns = 0;  ///< jobs caught exceeding their WCET
  PartitionState final_state = PartitionState::kNormal;
  std::vector<ProcessStats> processes;  ///< one per guest process
};

struct HmLogEntry {
  Time when = 0;
  PartitionId partition = kNoPartition;
  HmEvent event = HmEvent::kPartitionError;
  HmAction action = HmAction::kLog;
};

struct RunStats {
  Time simulated = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t major_frames = 0;
  std::vector<PartitionStats> partitions;
  std::vector<HmLogEntry> hm_log;
  std::uint64_t port_messages = 0;
  double core_utilization[kNumCores] = {0, 0, 0, 0};
  std::uint64_t plan_switches = 0;
  std::size_t final_plan = 0;
};

class Hypervisor {
 public:
  explicit Hypervisor(HvConfig config);

  /// Static configuration checks: slot overlap, slots within the MAF,
  /// partition ids in range, MPU region overlap between partitions.
  [[nodiscard]] Status validate() const;

  /// Registers this hypervisor's injection points ("hv.job.overrun" inflates
  /// a job's demand past its declared WCET — the budget watchdog raises
  /// kBudgetOverrun; "hv.partition.crash" raises kPartitionError at a job
  /// completion — exercising the restart-budget escalation).
  void attach_injector(fault::FaultInjector* injector);

  /// Publishes every health-monitor verdict as an FDIR event: restarts as
  /// kRetried, suspend/halt escalations as kExhausted, logged observations
  /// as kInfo — stamped in microseconds with the partition id in `detail`.
  void attach_fdir(fdir::FdirBus* bus) { fdir_ = bus; }

  /// Runs `duration` microseconds (rounded down to whole major frames is NOT
  /// applied — the plan wraps mid-frame if needed).
  Result<RunStats> run(Time duration);

  [[nodiscard]] const PortSwitch& ports() const { return ports_; }
  [[nodiscard]] PartitionState partition_state(PartitionId id) const {
    return state_.at(id).state;
  }
  [[nodiscard]] std::size_t current_plan() const { return active_plan_; }

 private:
  friend class PartitionApi;

  struct Job {
    Time release = 0;
    Time deadline = 0;
    Time remaining = 0;
    Time budget = 0;    ///< declared WCET (remaining may exceed it under fault)
    Time consumed = 0;
    bool started = false;
    bool overrun_raised = false;
    Time first_service = 0;
  };

  struct ProcessRt {
    std::deque<Job> queue;
    Time next_release = 0;
  };

  struct PartitionRt {
    PartitionState state = PartitionState::kNormal;
    std::vector<ProcessRt> processes;  ///< parallel to effective processes
    std::size_t last_running = SIZE_MAX;  ///< preemption detection
    unsigned restarts = 0;   ///< HM restarts consumed from the budget
    bool escalated = false;  ///< budget spent; next restart request halts
    [[nodiscard]] bool has_pending() const {
      for (const ProcessRt& rt : processes) {
        if (!rt.queue.empty()) return true;
      }
      return false;
    }
  };


  void hm_raise(PartitionId id, HmEvent event, Time now);
  void release_jobs(Time upto);
  /// Services partition `id` on one core for [from, to); returns CPU time
  /// actually consumed.
  Time service(PartitionId id, Time from, Time to);

  [[nodiscard]] const CyclicPlan& plan(std::size_t index) const {
    return index == 0 ? config_.plan : config_.extra_plans.at(index - 1);
  }
  [[nodiscard]] std::size_t plan_count() const {
    return 1 + config_.extra_plans.size();
  }
  [[nodiscard]] Status validate_plan(const CyclicPlan& plan,
                                     std::size_t index) const;

  HvConfig config_;
  /// Effective guest processes per partition (the single-process shorthand
  /// materialized as one priority-0 process), fixed at construction.
  std::vector<std::vector<ProcessConfig>> procs_;
  PortSwitch ports_;
  std::vector<PartitionRt> state_;
  std::vector<PartitionStats> stats_;
  std::vector<HmLogEntry> hm_log_;
  std::vector<std::uint8_t> memory_;
  std::uint64_t context_switches_ = 0;
  Time busy_[kNumCores] = {0, 0, 0, 0};
  std::size_t active_plan_ = 0;
  std::size_t pending_plan_ = 0;
  std::uint64_t plan_switches_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  fault::PointId pt_overrun_ = fault::kNoFaultPoint;
  fault::PointId pt_crash_ = fault::kNoFaultPoint;
  fdir::FdirBus* fdir_ = nullptr;
};

}  // namespace hermes::hv
