// Binding — the third core HLS step on the CDFG.
//
// Assigns scheduled operations to shared functional-unit instances
// (multipliers, iterative dividers) and memory accesses to physical RAM
// ports. Because the FSM is in exactly one state at a time and block state
// ranges are disjoint, instances are shared across the whole function; the
// left-edge algorithm packs overlapping occupation intervals into the
// fewest instances. Virtual registers are bound 1:1 onto datapath registers
// (register merging is listed as future work in DESIGN.md).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "hls/schedule.hpp"
#include "ir/ir.hpp"

namespace hermes::hls {

struct BindingStats {
  unsigned multiplier_instances = 0;
  unsigned divider_instances = 0;
  unsigned memory_ports = 0;       ///< total RAM ports instantiated
  unsigned datapath_registers = 0; ///< physical registers after merging
  unsigned shared_ops = 0;         ///< ops mapped onto a shared instance
  unsigned merged_registers = 0;   ///< vregs folded into another register
};

/// Result of binding: per block, per instruction, the FU instance / memory
/// port index (only meaningful for ops of a shared class).
struct Binding {
  std::vector<std::vector<unsigned>> fu_instance;  ///< same shape as schedule slots
  std::vector<std::vector<unsigned>> mem_port;     ///< port index per load/store
  std::map<std::uint64_t, unsigned> ports_per_memory;
  /// Register binding: canonical physical register for each vreg (identity
  /// when unmerged). Merged vregs always have equal widths, and their
  /// scheduled write/read windows are disjoint by construction.
  std::vector<ir::RegId> reg_alias;
  BindingStats stats;

  [[nodiscard]] ir::RegId canonical(ir::RegId reg) const {
    return reg < reg_alias.size() ? reg_alias[reg] : reg;
  }
};

Binding bind(const ir::Function& function, const Schedule& schedule);

}  // namespace hermes::hls
