#include "hls/flow.hpp"

#include <sstream>

#include "common/strings.hpp"
#include "frontend/parser.hpp"
#include "frontend/typecheck.hpp"
#include "hw/verilog.hpp"

namespace hermes::hls {

Result<ScheduledDesign> run_flow_schedule(std::string_view source,
                                          const FlowOptions& options) {
  // ---- front-end ----
  auto program = fe::parse(source);
  if (!program.ok()) return program.status();
  Status typed = fe::typecheck(program.value());
  if (!typed.ok()) return typed;

  // ---- middle-end ----
  ir::LowerOptions lower_options;
  lower_options.unroll_limit = options.unroll_limit;
  auto lowered = ir::lower(program.value(), options.top, lower_options);
  if (!lowered.ok()) return lowered.status();

  ScheduledDesign design;
  design.function = lowered.take();
  design.ir_instrs_before = design.function.instr_count();
  if (options.run_middle_end) {
    design.passes = ir::run_pipeline(design.function);
  } else {
    ir::mark_roms(design.function);
  }
  design.ir_instrs_after = design.function.instr_count();
  design.cdfg = ir::summarize_cdfg(design.function);

  // ---- back-end: allocation + scheduling + binding ----
  const TechLibrary lib(options.target);
  auto scheduled = schedule(design.function, lib, options.constraints);
  if (!scheduled.ok()) return scheduled.status();
  design.schedule = scheduled.take();
  design.binding = bind(design.function, design.schedule);
  return design;
}

Result<FlowResult> finish_flow(ScheduledDesign design) {
  auto fsmd = generate_fsmd(design.function, design.schedule, design.binding);
  if (!fsmd.ok()) return fsmd.status();

  FlowResult result;
  result.function = std::move(design.function);
  result.cdfg = design.cdfg;
  result.passes = std::move(design.passes);
  result.schedule = std::move(design.schedule);
  result.binding = std::move(design.binding);
  result.ir_instrs_before = design.ir_instrs_before;
  result.ir_instrs_after = design.ir_instrs_after;
  result.fsmd = fsmd.take();
  result.fsm_states = result.fsmd.num_states;
  result.verilog = hw::emit_verilog(result.fsmd.module);
  return result;
}

Result<FlowResult> run_flow(std::string_view source, const FlowOptions& options) {
  auto scheduled = run_flow_schedule(source, options);
  if (!scheduled.ok()) return scheduled.status();
  return finish_flow(scheduled.take());
}

std::string flow_report(const FlowResult& result) {
  std::ostringstream out;
  out << "=== HLS flow report: " << result.function.name() << " ===\n";
  out << format("front-end : %zu IR instructions after lowering\n",
                result.ir_instrs_before);
  out << "middle-end:";
  std::size_t total_changed = 0;
  for (const ir::PassReport& report : result.passes) total_changed += report.changed;
  out << format(" %zu rewrites across %zu pass runs -> %zu instructions\n",
                total_changed, result.passes.size(), result.ir_instrs_after);
  out << format("CDFG      : %zu blocks, %zu nodes, %zu data edges, %zu control edges\n",
                result.cdfg.blocks, result.cdfg.nodes, result.cdfg.data_edges,
                result.cdfg.control_edges);
  out << format("schedule  : %u datapath states (clock %.1f ns)\n",
                result.schedule.num_states,
                result.schedule.constraints.clock_period_ns);
  const BindingStats& bs = result.binding.stats;
  out << format("binding   : %u mul FUs, %u div FUs, %u RAM ports, %u registers "
                "(%u merged), %u ops shared\n",
                bs.multiplier_instances, bs.divider_instances, bs.memory_ports,
                bs.datapath_registers, bs.merged_registers, bs.shared_ops);
  const hw::NetlistStats ns = result.fsmd.module.stats();
  out << format("netlist   : %zu cells (%zu regs / %zu arith / %zu mux), %zu memories (%zu bits)\n",
                ns.cells, ns.registers, ns.arithmetic, ns.muxes, ns.memories,
                ns.memory_bits);
  out << format("FSM       : %u states (incl. IDLE/DONE)\n", result.fsm_states);
  return out.str();
}

}  // namespace hermes::hls
