#include "hls/techlib.hpp"

#include <algorithm>
#include <cmath>

#include "common/bits.hpp"

namespace hermes::hls {

FuClass fu_class_of(ir::Op op) {
  switch (op) {
    case ir::Op::kMul: return FuClass::kMultiplier;
    case ir::Op::kDiv: case ir::Op::kRem: return FuClass::kDivider;
    case ir::Op::kLoad: case ir::Op::kStore: return FuClass::kMemoryPort;
    default: return FuClass::kNone;
  }
}

double TechLibrary::delay_ns(ir::Op op, unsigned width) const {
  const FpgaTarget& t = target_;
  const double lut = t.lut_delay_ns + t.routing_delay_ns;
  const auto log2w = [&] {
    return static_cast<double>(bit_width_of(width > 1 ? width - 1 : 1));
  };
  switch (op) {
    case ir::Op::kConst:
    case ir::Op::kCopy:
    case ir::Op::kZext:
    case ir::Op::kSext:
    case ir::Op::kTrunc:
      return 0.0;  // wiring only
    case ir::Op::kAdd:
    case ir::Op::kSub:
      return t.carry_base_ns + width * t.carry_per_bit_ns + t.routing_delay_ns;
    case ir::Op::kMul: {
      if (width <= t.dsp_mul_width) return t.dsp_delay_ns + t.routing_delay_ns;
      // Composed multiplier: partial products through DSPs + adder tree.
      const unsigned tiles = static_cast<unsigned>(
          ceil_div(width, t.dsp_mul_width));
      return t.dsp_delay_ns + tiles * (t.carry_base_ns + width * t.carry_per_bit_ns) +
             t.routing_delay_ns;
    }
    case ir::Op::kDiv:
    case ir::Op::kRem:
      // Iterative restoring divider: one subtract per cycle; per-cycle delay.
      return t.carry_base_ns + width * t.carry_per_bit_ns + 2 * lut;
    case ir::Op::kAnd: case ir::Op::kOr: case ir::Op::kXor: case ir::Op::kNot:
      return lut;
    case ir::Op::kShl: case ir::Op::kShr:
      return log2w() * lut;  // barrel shifter: log2(width) mux levels
    case ir::Op::kEq: case ir::Op::kNe:
      // AND-reduce tree of per-bit compares.
      return (1.0 + std::ceil(log2w() / 2.0)) * lut;
    case ir::Op::kLt: case ir::Op::kLe:
      return t.carry_base_ns + width * t.carry_per_bit_ns + t.routing_delay_ns;
    case ir::Op::kSelect:
      return lut;
    case ir::Op::kLoad:
    case ir::Op::kStore:
      return t.bram_access_ns;
    default:
      return lut;
  }
}

OpCost TechLibrary::cost(ir::Op op, unsigned width) const {
  OpCost c;
  switch (op) {
    case ir::Op::kConst: case ir::Op::kCopy: case ir::Op::kZext:
    case ir::Op::kSext: case ir::Op::kTrunc:
      break;  // wiring
    case ir::Op::kAdd: case ir::Op::kSub:
      c.carry_bits = width;
      c.luts = width;
      break;
    case ir::Op::kMul: {
      const unsigned tiles = static_cast<unsigned>(
          ceil_div(width, target_.dsp_mul_width));
      c.dsps = tiles * tiles;
      if (tiles > 1) c.luts = 2u * width;  // partial-product adder tree
      break;
    }
    case ir::Op::kDiv: case ir::Op::kRem:
      // Iterative divider datapath: subtractor + shift registers + control.
      c.luts = 4u * width;
      c.carry_bits = width;
      c.ffs = 3u * width;
      break;
    case ir::Op::kAnd: case ir::Op::kOr: case ir::Op::kXor:
      c.luts = ceil_div(width, 2);  // two bits per LUT4 (a op b, c op d)
      break;
    case ir::Op::kNot:
      break;  // absorbed into downstream LUTs
    case ir::Op::kShl: case ir::Op::kShr: {
      const unsigned levels = bit_width_of(width > 1 ? width - 1 : 1);
      c.luts = static_cast<std::size_t>(levels) * ceil_div(width, 2);
      break;
    }
    case ir::Op::kEq: case ir::Op::kNe:
      c.luts = ceil_div(width, 2) + ceil_div(width, 8);
      break;
    case ir::Op::kLt: case ir::Op::kLe:
      c.carry_bits = width;
      c.luts = width;
      break;
    case ir::Op::kSelect:
      c.luts = ceil_div(width, 2);
      break;
    default:
      break;
  }
  return c;
}

OpCharacterization TechLibrary::characterize(ir::Op op, unsigned width,
                                             double period_ns) const {
  OpCharacterization ch;
  ch.cost = cost(op, width);
  const double usable = usable_period(period_ns);

  switch (op) {
    case ir::Op::kLoad:
      // Synchronous block-RAM read: address this state, data next state.
      ch.delay_ns = 0.0;  // register output, chains with zero entry delay
      ch.latency = 1;
      ch.chain_in = true;   // the address may be a chained value
      ch.chain_out = true;  // consumers in state start+1 read the port output
      return ch;
    case ir::Op::kStore:
      ch.delay_ns = 0.0;
      ch.latency = 1;
      ch.chain_in = true;
      ch.chain_out = false;  // no result
      return ch;
    case ir::Op::kDiv:
    case ir::Op::kRem: {
      // Iterative divider: one quotient bit per cycle plus setup.
      ch.delay_ns = 0.0;
      ch.latency = std::max(2u, width + 1);
      ch.chain_in = false;
      ch.chain_out = false;
      return ch;
    }
    case ir::Op::kMul: {
      // Multipliers are shared FU instances with registered operand and
      // result boundaries (NG-ULTRA DSP blocks register their I/O); the
      // state-selected operand network costs two extra LUT levels.
      const double lut = target_.lut_delay_ns + target_.routing_delay_ns;
      const double d = delay_ns(op, width) + 2.0 * lut;
      ch.delay_ns = d;
      const double usable = usable_period(period_ns);
      ch.latency = d <= usable
                       ? 1u
                       : static_cast<unsigned>(std::ceil(d / usable));
      ch.chain_in = false;
      ch.chain_out = false;
      return ch;
    }
    default:
      break;
  }

  const double d = delay_ns(op, width);
  ch.delay_ns = d;
  if (d <= usable) {
    ch.latency = 1;
    ch.chain_in = true;
    ch.chain_out = true;
  } else {
    // Multi-cycle combinational operator: give the path ceil(d/usable)
    // cycles and forbid chaining across its boundaries.
    ch.latency = static_cast<unsigned>(std::ceil(d / usable));
    ch.chain_in = false;
    ch.chain_out = false;
  }
  return ch;
}

}  // namespace hermes::hls
