#include "hls/testbench.hpp"

#include "common/strings.hpp"
#include "hw/sim.hpp"

namespace hermes::hls {

Result<CosimResult> cosimulate(
    const FlowResult& flow, const std::vector<std::uint64_t>& scalar_args,
    const std::map<std::size_t, std::vector<std::uint64_t>>& memory_images,
    std::uint64_t max_cycles) {
  const ir::Function& function = flow.function;

  // ---- golden run ----
  ir::Interpreter interp(function);
  for (const auto& [mem, image] : memory_images) {
    interp.set_memory(mem, image);
  }
  auto golden = interp.run(scalar_args);
  if (!golden.ok()) return golden.status();

  // ---- hardware run ----
  hw::Simulator sim(flow.fsmd.module);
  if (!sim.status().ok()) return sim.status();
  for (const auto& [mem, image] : memory_images) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      sim.write_memory(mem, i, image[i]);
    }
  }
  std::size_t arg_index = 0;
  for (const ir::ParamDecl& param : function.params) {
    if (param.is_array()) continue;
    sim.set_input("arg_" + param.name, scalar_args.at(arg_index++));
  }
  sim.set_input("start", 1);
  auto cycles = sim.run_until("done", max_cycles);
  if (!cycles.ok()) return cycles.status();

  CosimResult result;
  result.hw_cycles = cycles.value();
  result.sw_instructions = golden.value().instructions;

  // ---- compare ----
  if (function.return_type.bits != 0) {
    result.return_value = sim.get_output("return_value");
    if (result.return_value != golden.value().return_value) {
      result.match = false;
      result.mismatch = format(
          "return value: hw=%llu sw=%llu",
          static_cast<unsigned long long>(result.return_value),
          static_cast<unsigned long long>(golden.value().return_value));
    }
  }
  for (std::size_t mem = 0; mem < function.memories().size() && result.match;
       ++mem) {
    if (!function.memories()[mem].is_interface) continue;
    const auto& sw_mem = interp.memory(mem);
    for (std::size_t addr = 0; addr < sw_mem.size(); ++addr) {
      const std::uint64_t hw_value = sim.read_memory(mem, addr);
      if (hw_value != sw_mem[addr]) {
        result.match = false;
        result.mismatch = format(
            "memory %s[%zu]: hw=%llu sw=%llu",
            function.memories()[mem].name.c_str(), addr,
            static_cast<unsigned long long>(hw_value),
            static_cast<unsigned long long>(sw_mem[addr]));
        break;
      }
    }
  }

  // Handshake epilogue: release start, return to IDLE.
  sim.set_input("start", 0);
  sim.step();
  return result;
}

}  // namespace hermes::hls
