// Eucalyptus — the component pre-characterization tool.
//
// "Bambu integrates a characterization tool called Eucalyptus to synthesize
// different configurations of library components and collect the resulting
// latency and resource consumption metrics as XML files in the Bambu
// library. The configurations are obtained by specializing a generic template
// of the resource component (e.g., a multiplier or an adder) according to the
// bit widths of its input and output arguments, and to the number of pipeline
// stages." (HERMES, Sec. II)
//
// This module runs that sweep against the FpgaTarget delay/area model (our
// substitute for NXmap synthesis runs) and renders the Bambu-library XML.
#pragma once

#include <string>
#include <vector>

#include "common/threadpool.hpp"
#include "hls/techlib.hpp"

namespace hermes::hls {

/// One characterized configuration of a component template.
struct CharacterizationPoint {
  ir::Op op = ir::Op::kAdd;
  unsigned width = 32;
  unsigned pipeline_stages = 0;  ///< registered intermediate cuts
  double clock_period_ns = 10.0;
  double delay_ns = 0.0;         ///< per-stage combinational delay
  unsigned latency = 1;          ///< cycles from operands to result
  bool meets_timing = false;
  OpCost cost;
  double fmax_mhz = 0.0;         ///< 1 / (delay + setup + skew)
};

struct SweepConfig {
  std::vector<ir::Op> ops = {ir::Op::kAdd, ir::Op::kMul, ir::Op::kDiv,
                             ir::Op::kShl, ir::Op::kLt, ir::Op::kAnd};
  std::vector<unsigned> widths = {8, 16, 32, 64};
  std::vector<unsigned> pipeline_stages = {0, 1, 2, 3, 4};
  std::vector<double> clock_periods_ns = {2.0, 4.0, 8.0, 12.0, 20.0};
};

/// Characterizes one configuration. Pipelining cuts the combinational path
/// into (stages+1) balanced segments and adds stage registers to the cost;
/// the configuration meets timing if the longest segment fits the period.
CharacterizationPoint characterize_point(const TechLibrary& lib, ir::Op op,
                                         unsigned width, unsigned stages,
                                         double period_ns);

/// Full sweep over the config space. The (op × width × stages × period)
/// grid points are independent, so they are characterized in parallel on
/// `pool` (nullptr = the process-wide pool); each point writes only its own
/// slot, so the result is identical to the serial sweep in the same order.
std::vector<CharacterizationPoint> run_sweep(const TechLibrary& lib,
                                             const SweepConfig& config,
                                             ThreadPool* pool = nullptr);

/// Renders points in the Bambu-library XML layout.
std::string to_xml(const FpgaTarget& target,
                   const std::vector<CharacterizationPoint>& points);

/// Parses a Bambu-library XML document back into characterization points
/// (the read side of the library: "collect the resulting latency and
/// resource consumption metrics as XML files in the Bambu library").
/// `device_name` (optional out) receives the document's device attribute.
Result<std::vector<CharacterizationPoint>> from_xml(
    std::string_view document, std::string* device_name = nullptr);

}  // namespace hermes::hls
