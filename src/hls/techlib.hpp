// Technology library: per-operator delay/area characterization.
//
// "All library components used during the HLS flow need to be annotated with
// information such as resource occupation and latency under different clock
// period constraints" (HERMES, Sec. II). The TechLibrary answers, for each IR
// operator at each bit width under a given clock period: how many cycles it
// takes, whether its result can be chained, and what it costs on the fabric
// (LUTs / DSPs / carry bits). The numbers come from the FpgaTarget model —
// the role played on real silicon by Eucalyptus synthesis runs (see
// eucalyptus.hpp, which sweeps and exports exactly these annotations).
#pragma once

#include "hls/target.hpp"
#include "ir/ir.hpp"

namespace hermes::hls {

/// Resource cost of one operator instance.
struct OpCost {
  std::size_t luts = 0;
  std::size_t carry_bits = 0;
  std::size_t dsps = 0;
  std::size_t ffs = 0;
};

/// Full characterization of one operator under a clock-period constraint.
struct OpCharacterization {
  double delay_ns = 0.0;    ///< combinational settle time (0 for register-out ops)
  unsigned latency = 1;     ///< states occupied (>=1); ceil(delay/period) for comb
  bool chain_in = true;     ///< may consume a same-state combinational value
  bool chain_out = true;    ///< may feed a same-state consumer
  OpCost cost;
};

/// Shared FU classes (the resource-constrained operator groups).
enum class FuClass { kNone, kMultiplier, kDivider, kMemoryPort };

FuClass fu_class_of(ir::Op op);

class TechLibrary {
 public:
  explicit TechLibrary(FpgaTarget target) : target_(std::move(target)) {}

  [[nodiscard]] const FpgaTarget& target() const { return target_; }

  /// Characterizes `op` at `width` bits under `period_ns`.
  /// Loads/stores use the block-RAM timing; dividers are iterative
  /// (latency ~ width); wide multipliers compose multiple DSPs.
  [[nodiscard]] OpCharacterization characterize(ir::Op op, unsigned width,
                                                double period_ns) const;

  /// Raw combinational delay of `op` at `width` bits (no clock constraint).
  [[nodiscard]] double delay_ns(ir::Op op, unsigned width) const;

  /// Resource cost of one instance of `op` at `width` bits.
  [[nodiscard]] OpCost cost(ir::Op op, unsigned width) const;

  /// Usable cycle time after setup, skew, and a routing margin (Eucalyptus
  /// characterizes cells standalone; post-route nets add delay the scheduler
  /// must budget for — the classic pre-char vs post-route timing gap).
  [[nodiscard]] double usable_period(double period_ns) const {
    const double usable =
        (period_ns - target_.ff_setup_ns - target_.clock_skew_ns) *
        kRoutingMargin;
    return usable > 0.1 ? usable : 0.1;
  }

  static constexpr double kRoutingMargin = 0.85;

 private:
  FpgaTarget target_;
};

}  // namespace hermes::hls
