// FSMD (finite-state machine + datapath) generation — the Bambu back-end.
//
// Consumes the scheduled and bound IR and produces a hw::Module:
//   * an FSM with one IDLE state, the scheduled datapath states, and a DONE
//     state (start/done handshake);
//   * one datapath register per register-backed virtual register, written on
//     the closing edge of its producer's write state;
//   * shared multiplier/divider instances with state-selected operand muxes;
//   * one RAM port instance per bound memory port (address/data muxed by
//     state; dual-port memories get two).
//
// Timing rules match hls/schedule.cpp exactly: a consumer scheduled in its
// RAW producer's write state taps the producer's combinational result wire
// (operation chaining); later consumers read the register.
#pragma once

#include "common/status.hpp"
#include "hls/bind.hpp"
#include "hls/schedule.hpp"
#include "hw/netlist.hpp"
#include "ir/ir.hpp"

namespace hermes::hls {

struct FsmdOptions {
  std::string module_name;  ///< defaults to the function name
};

struct FsmdResult {
  hw::Module module{"<empty>"};
  unsigned num_states = 0;   ///< FSM states including IDLE and DONE
  unsigned idle_state = 0;
  unsigned done_state = 0;
  /// Memory index mapping: IR memory i is module memory i (identity), kept
  /// explicit for testbench code readability.
  std::size_t memory_count = 0;
};

/// Generates the accelerator module. The handshake protocol:
///   - drive scalar argument ports and assert `start`;
///   - arguments are latched while in IDLE with start high;
///   - `done` rises when the kernel finishes; `return_value` (if non-void)
///     is then valid and stable;
///   - deassert `start` to return to IDLE.
Result<FsmdResult> generate_fsmd(const ir::Function& function,
                                 const Schedule& schedule,
                                 const Binding& binding,
                                 const FsmdOptions& options = {});

}  // namespace hermes::hls
