#include "hls/fsmd.hpp"

#include <cassert>
#include <map>

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::hls {
namespace {

hw::CellKind to_cell_kind(const ir::Instr& instr) {
  using ir::Op;
  using hw::CellKind;
  switch (instr.op) {
    case Op::kAdd: return CellKind::kAdd;
    case Op::kSub: return CellKind::kSub;
    case Op::kMul: return CellKind::kMul;
    case Op::kDiv: return instr.type.is_signed ? CellKind::kDivS : CellKind::kDivU;
    case Op::kRem: return instr.type.is_signed ? CellKind::kRemS : CellKind::kRemU;
    case Op::kAnd: return CellKind::kAnd;
    case Op::kOr: return CellKind::kOr;
    case Op::kXor: return CellKind::kXor;
    case Op::kShl: return CellKind::kShl;
    case Op::kShr: return instr.type.is_signed ? CellKind::kShrS : CellKind::kShrU;
    case Op::kEq: return CellKind::kEq;
    case Op::kNe: return CellKind::kNe;
    case Op::kLt: return instr.type.is_signed ? CellKind::kLtS : CellKind::kLtU;
    case Op::kLe: return instr.type.is_signed ? CellKind::kLeS : CellKind::kLeU;
    default: return CellKind::kConst;  // handled separately
  }
}

class FsmdBuilder {
 public:
  FsmdBuilder(const ir::Function& function, const Schedule& schedule,
              const Binding& binding, const FsmdOptions& options)
      : f_(function),
        schedule_(schedule),
        binding_(binding),
        module_(options.module_name.empty() ? function.name()
                                            : options.module_name) {}

  Result<FsmdResult> build() {
    needs_reg_ = regs_needing_registers(f_);

    num_states_ = schedule_.num_states;
    idle_state_ = num_states_;
    done_state_ = num_states_ + 1;
    state_bits_ = bit_width_of(done_state_ > 1 ? done_state_ : 1);

    // State register placeholder: the d input is wired at the end, once all
    // transitions are known. Reset into IDLE.
    state_d_ = module_.add_wire(state_bits_, "state_next");
    const hw::WireId one = module_.make_const(1, 1, "const1");
    always_on_ = one;
    state_q_ = module_.make_register(state_d_, one, idle_state_, "state");

    build_ports();
    build_memories();
    collect_writers();
    make_result_placeholders();
    build_datapath();
    build_memory_ports();
    build_registers();
    build_fsm();

    Status valid = module_.validate();
    if (!valid.ok()) return valid;

    FsmdResult result{std::move(module_), num_states_ + 2, idle_state_,
                      done_state_, f_.memories().size()};
    return result;
  }

 private:
  // ---- small helpers ----
  hw::WireId state_eq(unsigned state) {
    auto it = eq_cache_.find(state);
    if (it != eq_cache_.end()) return it->second;
    const hw::WireId c = module_.make_const(state, state_bits_);
    const hw::WireId eq = module_.make_binop(hw::CellKind::kEq, state_q_, c, 1,
                                             format("st_eq_%u", state));
    eq_cache_[state] = eq;
    return eq;
  }

  /// Balanced OR reduction (log depth), width-generic.
  hw::WireId or_tree(std::vector<hw::WireId> wires, unsigned width) {
    if (wires.empty()) return module_.make_const(0, width);
    while (wires.size() > 1) {
      std::vector<hw::WireId> next;
      for (std::size_t i = 0; i + 1 < wires.size(); i += 2) {
        next.push_back(
            module_.make_binop(hw::CellKind::kOr, wires[i], wires[i + 1], width));
      }
      if (wires.size() % 2) next.push_back(wires.back());
      wires = std::move(next);
    }
    return wires[0];
  }

  /// One-hot multiplexer. All case selects are mutually exclusive by
  /// construction (they compare the FSM state register against distinct
  /// values, or cover disjoint state ranges), so the classic AND-OR one-hot
  /// structure applies: out = OR_i(sel_i ? value_i : 0) | (none ? default : 0).
  /// Log-depth — this is what a synthesis tool builds for one-hot selects,
  /// and it keeps the FSM's next-state logic off the critical path.
  hw::WireId mux_chain(hw::WireId fallback,
                       const std::vector<std::pair<hw::WireId, hw::WireId>>& cases) {
    if (cases.empty()) return fallback;
    const unsigned width = module_.wire_width(fallback);
    const hw::WireId zero = module_.make_const(0, width);
    std::vector<hw::WireId> terms;
    std::vector<hw::WireId> selects;
    terms.reserve(cases.size() + 1);
    for (const auto& [sel, value] : cases) {
      terms.push_back(module_.make_mux(sel, zero, value));
      selects.push_back(sel);
    }
    const hw::WireId any = or_tree(selects, 1);
    terms.push_back(module_.make_mux(any, fallback, zero));
    return or_tree(std::move(terms), width);
  }

  hw::WireId or_all(const std::vector<hw::WireId>& wires) {
    return or_tree(wires, 1);
  }

  // ---- construction stages ----
  void build_ports() {
    const hw::WireId start = module_.add_wire(1, "start");
    module_.add_input(start, "start");
    start_ = start;
    for (const ir::ParamDecl& param : f_.params) {
      if (param.is_array()) continue;
      const hw::WireId wire = module_.add_wire(param.type.bits, "arg_" + param.name);
      module_.add_input(wire, "arg_" + param.name);
      arg_ports_[param.reg] = wire;
    }
  }

  void build_memories() {
    for (const ir::MemDecl& decl : f_.memories()) {
      hw::Memory memory;
      memory.name = decl.name;
      memory.width = decl.element.bits;
      memory.depth = decl.depth;
      memory.dual_port = binding_.ports_per_memory.count(
                             &decl - f_.memories().data())
                             ? binding_.ports_per_memory.at(
                                   &decl - f_.memories().data()) > 1
                             : false;
      memory.init = decl.init;
      module_.add_memory(memory);
    }
  }

  /// result wire of each instruction, filled in during build_datapath.
  struct InstrRef {
    ir::BlockId block;
    std::size_t index;
    bool operator<(const InstrRef& other) const {
      return std::tie(block, index) < std::tie(other.block, other.index);
    }
  };

  void collect_writers() {
    // Writers are grouped by *physical* register: merged vregs share one
    // register, whose d-input mux carries every member's writers (their
    // write states are disjoint by the binder's packing).
    for (ir::BlockId b = 0; b < f_.num_blocks(); ++b) {
      const ir::Block& block = f_.block(b);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        if (block.instrs[i].dest != ir::kNoReg) {
          writers_[binding_.canonical(block.instrs[i].dest)].push_back({b, i});
        }
      }
    }
  }

  /// Physical-register output wire for vreg r (resolved through the register
  /// binding; created on demand; the d-input mux is completed in
  /// build_registers()).
  hw::WireId reg_wire(ir::RegId vreg) {
    const ir::RegId r = binding_.canonical(vreg);
    auto it = reg_q_.find(r);
    if (it != reg_q_.end()) return it->second;
    const unsigned width = f_.reg_type(r).bits;
    // Placeholder d wire; connected later.
    const hw::WireId d = module_.add_wire(width, format("r%u_d", r));
    const hw::WireId en = module_.add_wire(1, format("r%u_en", r));
    const hw::WireId q = module_.make_register(d, en, 0, format("r%u", r));
    reg_q_[r] = q;
    reg_d_[r] = d;
    reg_en_[r] = en;
    return q;
  }

  /// Resolves the wire carrying operand `r` for the instruction at
  /// (block, index) starting in state `start`.
  hw::WireId operand_wire(ir::BlockId block, std::size_t index, ir::RegId r,
                          unsigned start_state) {
    // Last in-block writer before `index`.
    const ir::Block& blk = f_.block(block);
    std::size_t producer = SIZE_MAX;
    for (std::size_t j = 0; j < index; ++j) {
      if (blk.instrs[j].dest == r) producer = j;
    }
    if (producer != SIZE_MAX) {
      const InstrSlot& p = schedule_.blocks[block].slots[producer];
      if (p.is_const_wire) return result_wire_.at({block, producer});
      if (p.write_state == start_state) {
        return result_wire_.at({block, producer});  // chained
      }
      return reg_wire(r);
    }
    // No in-block producer: a const-wire vreg has no register at all.
    if (!needs_reg_[r]) {
      // Its unique writer is a const somewhere else in the function.
      const auto& ws = writers_.at(r);
      assert(ws.size() == 1);
      return result_wire_.at({ws[0].block, ws[0].index});
    }
    return reg_wire(r);
  }

  /// Pre-creates the result wire of every value-producing instruction so any
  /// consumer (chained, earlier in build order, or in another construction
  /// stage) can reference it before the producing hardware exists. Constants
  /// are materialized immediately; everything else gets a placeholder that
  /// the producing stage drives (directly as a cell output, or via tie()).
  void make_result_placeholders() {
    for (ir::BlockId b = 0; b < f_.num_blocks(); ++b) {
      const ir::Block& block = f_.block(b);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr& instr = block.instrs[i];
        if (ir::is_terminator(instr.op)) continue;
        if (instr.op == ir::Op::kConst) {
          result_wire_[{b, i}] = module_.make_const(
              instr.imm, f_.reg_type(instr.dest).bits, format("c_%u_%zu", b, i));
          continue;
        }
        if (instr.dest == ir::kNoReg) continue;  // stores produce no value
        result_wire_[{b, i}] = module_.add_wire(
            f_.reg_type(instr.dest).bits, format("res_%u_%zu", b, i));
      }
    }
  }

  void build_datapath() {
    for (ir::BlockId b = 0; b < f_.num_blocks(); ++b) {
      const ir::Block& block = f_.block(b);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr& instr = block.instrs[i];
        const InstrSlot& slot = schedule_.blocks[b].slots[i];
        if (ir::is_terminator(instr.op) || instr.op == ir::Op::kConst) continue;

        switch (instr.op) {
          case ir::Op::kCopy:
            tie(result_wire_.at({b, i}),
                operand_wire(b, i, instr.src[0], slot.start));
            break;
          case ir::Op::kZext:
          case ir::Op::kTrunc:
            drive({b, i}, hw::CellKind::kZext,
                  {operand_wire(b, i, instr.src[0], slot.start)});
            break;
          case ir::Op::kSext:
            drive({b, i}, hw::CellKind::kSext,
                  {operand_wire(b, i, instr.src[0], slot.start)});
            break;
          case ir::Op::kNot:
            drive({b, i}, hw::CellKind::kNot,
                  {operand_wire(b, i, instr.src[0], slot.start)});
            break;
          case ir::Op::kSelect: {
            const hw::WireId sel = operand_wire(b, i, instr.src[0], slot.start);
            const hw::WireId t = operand_wire(b, i, instr.src[1], slot.start);
            const hw::WireId e = operand_wire(b, i, instr.src[2], slot.start);
            drive({b, i}, hw::CellKind::kMux, {sel, e, t});
            break;
          }
          case ir::Op::kLoad:
          case ir::Op::kStore:
            // Port hardware built in build_memory_ports(); record access.
            mem_port_accesses_[{instr.imm, binding_.mem_port[b][i]}].push_back(
                {b, i});
            break;
          case ir::Op::kMul:
          case ir::Op::kDiv:
          case ir::Op::kRem:
            shared_fu_ops_[{to_cell_kind(instr),
                            f_.reg_type(instr.dest).bits,
                            binding_.fu_instance[b][i]}]
                .push_back({b, i});
            break;
          default: {
            // Plain dedicated binary cell.
            const hw::WireId a = operand_wire(b, i, instr.src[0], slot.start);
            const hw::WireId c = operand_wire(b, i, instr.src[1], slot.start);
            drive({b, i}, to_cell_kind(instr), {a, c});
            break;
          }
        }
      }
    }

    build_shared_fus();
  }

  /// (state >= lo) & (state <= hi) select wire.
  hw::WireId state_in_range(unsigned lo, unsigned hi) {
    if (lo == hi) return state_eq(lo);
    const hw::WireId clo = module_.make_const(lo, state_bits_);
    const hw::WireId chi = module_.make_const(hi, state_bits_);
    const hw::WireId ge = module_.make_binop(hw::CellKind::kLeU, clo, state_q_, 1);
    const hw::WireId le = module_.make_binop(hw::CellKind::kLeU, state_q_, chi, 1);
    return module_.make_binop(hw::CellKind::kAnd, ge, le, 1);
  }

  void build_shared_fus() {
    for (const auto& [key, ops] : shared_fu_ops_) {
      const auto& [kind, width, instance] = key;
      // Operand muxes selected by each op's occupation interval.
      hw::WireId a = module_.make_const(0, width);
      hw::WireId c = module_.make_const(0, width);
      for (const InstrRef& ref : ops) {
        const ir::Instr& instr = f_.block(ref.block).instrs[ref.index];
        const InstrSlot& slot = schedule_.blocks[ref.block].slots[ref.index];
        const hw::WireId sel = state_in_range(slot.start, slot.end);
        const hw::WireId oa =
            operand_wire(ref.block, ref.index, instr.src[0], slot.start);
        const hw::WireId oc =
            operand_wire(ref.block, ref.index, instr.src[1], slot.start);
        // Shared-FU operands are register-sourced for multi-cycle ops by
        // scheduling rule; width-extend to the FU width.
        a = module_.make_mux(sel, a, widen(oa, width, instr.type.is_signed));
        c = module_.make_mux(sel, c, widen(oc, width, instr.type.is_signed));
      }
      const hw::WireId out = module_.make_binop(
          kind, a, c, width,
          format("fu_%s_w%u_i%u", hw::to_string(kind), width, instance));
      for (const InstrRef& ref : ops) {
        tie(result_wire_.at(ref), out);
      }
    }
  }

  hw::WireId widen(hw::WireId wire, unsigned width, bool is_signed) {
    if (module_.wire_width(wire) == width) return wire;
    return is_signed ? module_.make_sext(wire, width)
                     : module_.make_zext(wire, width);
  }

  void build_registers() {
    // Argument latching in IDLE with start asserted.
    const hw::WireId idle_and_start = module_.make_binop(
        hw::CellKind::kAnd, state_eq(idle_state_), start_, 1, "latch_args");

    for (const auto& [r, writer_list] : writers_) {
      if (!needs_reg_[r]) continue;
      build_one_register(r, writer_list, idle_and_start);
    }
    // Parameter registers that are never rewritten by instructions still
    // need the IDLE latch.
    for (const ir::ParamDecl& param : f_.params) {
      if (param.is_array()) continue;
      if (!writers_.count(param.reg)) {
        build_one_register(param.reg, {}, idle_and_start);
      }
    }
  }

  void build_one_register(ir::RegId r, const std::vector<InstrRef>& writer_list,
                          hw::WireId idle_and_start) {
    const hw::WireId q = reg_wire(r);
    (void)q;
    const unsigned width = f_.reg_type(r).bits;

    std::vector<std::pair<hw::WireId, hw::WireId>> cases;
    std::vector<hw::WireId> enables;

    if (arg_ports_.count(r)) {
      cases.emplace_back(idle_and_start, arg_ports_.at(r));
      enables.push_back(idle_and_start);
    }
    for (const InstrRef& ref : writer_list) {
      const InstrSlot& slot = schedule_.blocks[ref.block].slots[ref.index];
      if (slot.is_const_wire) continue;  // excluded by needs_reg_, but be safe
      const hw::WireId sel = state_eq(slot.write_state);
      cases.emplace_back(sel, result_wire_.at(ref));
      enables.push_back(sel);
    }

    const hw::WireId fallback = module_.make_const(0, width);
    const hw::WireId d = mux_chain(fallback, cases);
    const hw::WireId en = or_all(enables);
    // Tie the placeholder d/en wires to the computed logic via copy cells.
    tie(reg_d_.at(r), d);
    tie(reg_en_.at(r), en);
  }

  /// Drives placeholder wire `dst` from `src` with a zext (same width).
  void tie(hw::WireId dst, hw::WireId src) {
    hw::Cell cell;
    cell.kind = hw::CellKind::kZext;
    cell.inputs = {src};
    cell.outputs = {dst};
    module_.add_cell(std::move(cell));
  }

  /// Creates a cell whose output is the pre-made result placeholder.
  void drive(InstrRef ref, hw::CellKind kind, std::vector<hw::WireId> inputs,
             std::uint64_t param = 0) {
    hw::Cell cell;
    cell.kind = kind;
    cell.inputs = std::move(inputs);
    cell.outputs = {result_wire_.at(ref)};
    cell.param = param;
    module_.add_cell(std::move(cell));
  }

  void build_memory_ports() {
    for (const auto& [port_key, accesses] : mem_port_accesses_) {
      const auto& [mem, port] = port_key;
      const ir::MemDecl& decl = f_.memories()[mem];
      const unsigned addr_bits =
          bit_width_of(decl.depth > 1 ? decl.depth - 1 : 1);

      std::vector<std::pair<hw::WireId, hw::WireId>> addr_cases;
      std::vector<std::pair<hw::WireId, hw::WireId>> data_cases;
      std::vector<hw::WireId> read_enables, write_enables;

      for (const InstrRef& ref : accesses) {
        const ir::Instr& instr = f_.block(ref.block).instrs[ref.index];
        const InstrSlot& slot = schedule_.blocks[ref.block].slots[ref.index];
        const hw::WireId sel = state_eq(slot.start);
        hw::WireId addr =
            operand_wire(ref.block, ref.index, instr.src[0], slot.start);
        if (module_.wire_width(addr) != addr_bits) {
          addr = module_.make_zext(addr, addr_bits);
        }
        addr_cases.emplace_back(sel, addr);
        if (instr.op == ir::Op::kLoad) {
          read_enables.push_back(sel);
        } else {
          hw::WireId data =
              operand_wire(ref.block, ref.index, instr.src[1], slot.start);
          if (module_.wire_width(data) != decl.element.bits) {
            data = module_.make_zext(data, decl.element.bits);
          }
          data_cases.emplace_back(sel, data);
          write_enables.push_back(sel);
        }
      }

      const hw::WireId addr0 = module_.make_const(0, addr_bits);
      const hw::WireId addr = mux_chain(addr0, addr_cases);
      const hw::WireId ren = or_all(read_enables);
      const hw::WireId wen = or_all(write_enables);
      const hw::WireId rdata = module_.make_ram_read(
          mem, addr, ren, format("%s_p%u_rdata", decl.name.c_str(), port));
      if (!data_cases.empty()) {
        const hw::WireId data0 = module_.make_const(0, decl.element.bits);
        const hw::WireId wdata = mux_chain(data0, data_cases);
        module_.make_ram_write(mem, addr, wdata, wen,
                               format("%s_p%u_w", decl.name.c_str(), port));
      }
      // Loads on this port deliver the port's registered read data.
      for (const InstrRef& ref : accesses) {
        if (f_.block(ref.block).instrs[ref.index].op == ir::Op::kLoad) {
          tie(result_wire_.at(ref), rdata);
        }
      }
    }
  }

  void build_fsm() {
    // Return value register.
    hw::WireId ret_q = hw::kNoWire;
    std::vector<std::pair<hw::WireId, hw::WireId>> ret_cases;
    std::vector<hw::WireId> ret_enables;

    // Next-state logic: default hold.
    std::vector<std::pair<hw::WireId, hw::WireId>> next_cases;

    // IDLE -> entry on start.
    const hw::WireId entry_const = module_.make_const(
        schedule_.blocks[f_.entry].entry_state, state_bits_);
    const hw::WireId idle_go = module_.make_binop(
        hw::CellKind::kAnd, state_eq(idle_state_), start_, 1);
    next_cases.emplace_back(idle_go, entry_const);

    // DONE -> IDLE when start deasserted.
    const hw::WireId not_start = module_.make_not(start_);
    const hw::WireId done_back = module_.make_binop(
        hw::CellKind::kAnd, state_eq(done_state_), not_start, 1);
    next_cases.emplace_back(done_back,
                            module_.make_const(idle_state_, state_bits_));

    // Per-block: linear advance within the range, terminator at the exit.
    for (ir::BlockId b = 0; b < f_.num_blocks(); ++b) {
      const BlockSchedule& bs = schedule_.blocks[b];
      const ir::Instr& term = f_.block(b).terminator();
      const std::size_t term_index = f_.block(b).instrs.size() - 1;

      for (unsigned s = bs.entry_state; s < bs.exit_state; ++s) {
        next_cases.emplace_back(state_eq(s),
                                module_.make_const(s + 1, state_bits_));
      }
      const hw::WireId at_exit = state_eq(bs.exit_state);
      switch (term.op) {
        case ir::Op::kBr: {
          const hw::WireId target = module_.make_const(
              schedule_.blocks[term.target0].entry_state, state_bits_);
          next_cases.emplace_back(at_exit, target);
          break;
        }
        case ir::Op::kCondBr: {
          const hw::WireId cond =
              operand_wire(b, term_index, term.src[0], bs.exit_state);
          const hw::WireId t0 = module_.make_const(
              schedule_.blocks[term.target0].entry_state, state_bits_);
          const hw::WireId t1 = module_.make_const(
              schedule_.blocks[term.target1].entry_state, state_bits_);
          const hw::WireId target = module_.make_mux(cond, t1, t0);
          next_cases.emplace_back(at_exit, target);
          break;
        }
        case ir::Op::kRet: {
          next_cases.emplace_back(
              at_exit, module_.make_const(done_state_, state_bits_));
          if (term.src[0] != ir::kNoReg) {
            const hw::WireId value =
                operand_wire(b, term_index, term.src[0], bs.exit_state);
            ret_cases.emplace_back(at_exit, value);
            ret_enables.push_back(at_exit);
          }
          break;
        }
        default:
          break;
      }
    }

    const hw::WireId next = mux_chain(state_q_, next_cases);
    tie(state_d_, next);

    // done output.
    const hw::WireId done = state_eq(done_state_);
    module_.add_output(done, "done");

    // return_value output.
    if (f_.return_type.bits != 0) {
      const unsigned width = f_.return_type.bits;
      const hw::WireId fallback = module_.make_const(0, width);
      const hw::WireId d = mux_chain(fallback, ret_cases);
      const hw::WireId en = or_all(ret_enables);
      ret_q = module_.make_register(d, en, 0, "ret_value");
      module_.add_output(ret_q, "return_value");
    }
  }

  const ir::Function& f_;
  const Schedule& schedule_;
  const Binding& binding_;
  hw::Module module_;

  std::vector<bool> needs_reg_;
  unsigned num_states_ = 0, idle_state_ = 0, done_state_ = 0;
  unsigned state_bits_ = 1;
  hw::WireId state_q_ = hw::kNoWire, state_d_ = hw::kNoWire;
  hw::WireId start_ = hw::kNoWire, always_on_ = hw::kNoWire;

  std::map<unsigned, hw::WireId> eq_cache_;
  std::map<ir::RegId, hw::WireId> arg_ports_;
  std::map<ir::RegId, hw::WireId> reg_q_, reg_d_, reg_en_;
  std::map<ir::RegId, std::vector<InstrRef>> writers_;
  std::map<InstrRef, hw::WireId> result_wire_;
  std::map<std::pair<std::uint64_t, unsigned>, std::vector<InstrRef>>
      mem_port_accesses_;
  std::map<std::tuple<hw::CellKind, unsigned, unsigned>, std::vector<InstrRef>>
      shared_fu_ops_;
};

}  // namespace

Result<FsmdResult> generate_fsmd(const ir::Function& function,
                                 const Schedule& schedule,
                                 const Binding& binding,
                                 const FsmdOptions& options) {
  return FsmdBuilder(function, schedule, binding, options).build();
}

}  // namespace hermes::hls
