#include "hls/eucalyptus.hpp"

#include <cmath>

#include "common/strings.hpp"
#include "common/xml.hpp"
#include "common/xml_parse.hpp"

namespace hermes::hls {

CharacterizationPoint characterize_point(const TechLibrary& lib, ir::Op op,
                                         unsigned width, unsigned stages,
                                         double period_ns) {
  CharacterizationPoint point;
  point.op = op;
  point.width = width;
  point.pipeline_stages = stages;
  point.clock_period_ns = period_ns;
  point.cost = lib.cost(op, width);

  const double total_delay = lib.delay_ns(op, width);
  // Balanced pipeline cut: stages registers divide the path into stages+1
  // segments. Cut registers are not free: one FF per datapath bit per cut.
  const double segment = total_delay / (stages + 1);
  point.delay_ns = segment;
  point.latency = stages + 1;
  point.cost.ffs += static_cast<std::size_t>(stages) * width;

  const double usable = lib.usable_period(period_ns);
  point.meets_timing = segment <= usable;
  const double cycle_floor =
      segment + lib.target().ff_setup_ns + lib.target().clock_skew_ns;
  point.fmax_mhz = cycle_floor > 0 ? 1000.0 / cycle_floor : 0.0;
  return point;
}

std::vector<CharacterizationPoint> run_sweep(const TechLibrary& lib,
                                             const SweepConfig& config,
                                             ThreadPool* pool) {
  struct GridPoint {
    ir::Op op;
    unsigned width, stages;
    double period;
  };
  std::vector<GridPoint> grid;
  grid.reserve(config.ops.size() * config.widths.size() *
               config.pipeline_stages.size() * config.clock_periods_ns.size());
  for (ir::Op op : config.ops) {
    for (unsigned width : config.widths) {
      for (unsigned stages : config.pipeline_stages) {
        for (double period : config.clock_periods_ns) {
          grid.push_back({op, width, stages, period});
        }
      }
    }
  }

  std::vector<CharacterizationPoint> points(grid.size());
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(grid.size(), [&](std::size_t i) {
    const GridPoint& p = grid[i];
    points[i] = characterize_point(lib, p.op, p.width, p.stages, p.period);
  });
  return points;
}

std::string to_xml(const FpgaTarget& target,
                   const std::vector<CharacterizationPoint>& points) {
  XmlWriter xml;
  xml.begin_element("technology");
  xml.attribute("device", target.name);
  xml.attribute("generator", "eucalyptus");
  for (const CharacterizationPoint& point : points) {
    xml.begin_element("cell");
    xml.attribute("operation", ir::to_string(point.op));
    xml.attribute("width", static_cast<std::int64_t>(point.width));
    xml.attribute("pipeline_stages",
                  static_cast<std::int64_t>(point.pipeline_stages));
    xml.attribute("clock_period_ns", point.clock_period_ns);
    xml.begin_element("timing");
    xml.attribute("stage_delay_ns", point.delay_ns);
    xml.attribute("latency_cycles", static_cast<std::int64_t>(point.latency));
    xml.attribute("meets_timing", point.meets_timing ? "true" : "false");
    xml.attribute("fmax_mhz", point.fmax_mhz);
    xml.end_element();
    xml.begin_element("area");
    xml.attribute("luts", static_cast<std::int64_t>(point.cost.luts));
    xml.attribute("carry_bits", static_cast<std::int64_t>(point.cost.carry_bits));
    xml.attribute("dsps", static_cast<std::int64_t>(point.cost.dsps));
    xml.attribute("ffs", static_cast<std::int64_t>(point.cost.ffs));
    xml.end_element();
    xml.end_element();
  }
  xml.end_element();
  return xml.str();
}

}  // namespace hermes::hls

namespace hermes::hls {
namespace {

/// Reverse of ir::to_string for the operations Eucalyptus characterizes.
bool op_from_string(std::string_view name, ir::Op& out) {
  static const std::pair<const char*, ir::Op> kOps[] = {
      {"add", ir::Op::kAdd},   {"sub", ir::Op::kSub}, {"mul", ir::Op::kMul},
      {"div", ir::Op::kDiv},   {"rem", ir::Op::kRem}, {"and", ir::Op::kAnd},
      {"or", ir::Op::kOr},     {"xor", ir::Op::kXor}, {"shl", ir::Op::kShl},
      {"shr", ir::Op::kShr},   {"eq", ir::Op::kEq},   {"ne", ir::Op::kNe},
      {"lt", ir::Op::kLt},     {"le", ir::Op::kLe},   {"select", ir::Op::kSelect},
      {"load", ir::Op::kLoad}, {"store", ir::Op::kStore},
  };
  for (const auto& [text, op] : kOps) {
    if (name == text) {
      out = op;
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<CharacterizationPoint>> from_xml(std::string_view document,
                                                    std::string* device_name) {
  auto parsed = parse_xml(document);
  if (!parsed.ok()) return parsed.status();
  const XmlNode& root = *parsed.value();
  if (root.name != "technology") {
    return Status::Error(ErrorCode::kParseError,
                         format("expected <technology> root, got <%s>",
                                root.name.c_str()));
  }
  if (device_name) *device_name = root.attr("device");

  std::vector<CharacterizationPoint> points;
  for (const auto& cell : root.children) {
    if (cell->name != "cell") continue;
    CharacterizationPoint point;
    if (!op_from_string(cell->attr("operation"), point.op)) {
      return Status::Error(ErrorCode::kParseError,
                           format("unknown operation '%s'",
                                  cell->attr("operation").c_str()));
    }
    point.width = static_cast<unsigned>(cell->attr_int("width", 32));
    point.pipeline_stages =
        static_cast<unsigned>(cell->attr_int("pipeline_stages", 0));
    point.clock_period_ns = cell->attr_double("clock_period_ns", 10.0);
    const XmlNode* timing = cell->child("timing");
    if (!timing) {
      return Status::Error(ErrorCode::kParseError, "cell without <timing>");
    }
    point.delay_ns = timing->attr_double("stage_delay_ns");
    point.latency = static_cast<unsigned>(timing->attr_int("latency_cycles", 1));
    point.meets_timing = timing->attr("meets_timing") == "true";
    point.fmax_mhz = timing->attr_double("fmax_mhz");
    const XmlNode* area = cell->child("area");
    if (!area) {
      return Status::Error(ErrorCode::kParseError, "cell without <area>");
    }
    point.cost.luts = static_cast<std::size_t>(area->attr_int("luts"));
    point.cost.carry_bits = static_cast<std::size_t>(area->attr_int("carry_bits"));
    point.cost.dsps = static_cast<std::size_t>(area->attr_int("dsps"));
    point.cost.ffs = static_cast<std::size_t>(area->attr_int("ffs"));
    points.push_back(point);
  }
  return points;
}

}  // namespace hermes::hls
