// Scheduling — the second of the three core HLS steps on the CDFG.
//
// Per-block resource-constrained list scheduling with operation chaining:
// within a state, a chain of single-cycle operators may share the clock
// period as long as their accumulated delay fits (Eucalyptus delays decide).
// Multi-cycle operators (iterative dividers, wide multipliers at tight
// clocks) occupy their functional unit for several states and exchange data
// through registers only.
//
// Timing rules implemented here are mirrored exactly by the FSMD generator
// (fsmd.cpp); see the DepKind table in the .cpp for the per-hazard
// separation requirements.
#pragma once

#include <vector>

#include "common/status.hpp"
#include "hls/techlib.hpp"
#include "ir/cdfg.hpp"
#include "ir/ir.hpp"

namespace hermes::hls {

/// User constraints for allocation + scheduling.
struct Constraints {
  double clock_period_ns = 10.0;
  unsigned multipliers = 2;   ///< shared multiplier FUs
  unsigned dividers = 1;      ///< shared iterative-divider FUs
  bool allow_chaining = true; ///< ablation D2: false = one op level per state
  /// Ablation D1: false disables the resource limits (pure dependence-driven
  /// ASAP — models an unconstrained allocation).
  bool enforce_resources = true;
  /// Register binding: pack block-local single-def temporaries whose
  /// scheduled live intervals do not overlap into shared datapath registers
  /// (left-edge). Ablation D6.
  bool merge_registers = true;
};

/// Placement of one instruction in the state sequence (absolute state ids).
struct InstrSlot {
  unsigned start = 0;        ///< first state the operation occupies
  unsigned end = 0;          ///< last state it occupies (>= start)
  unsigned write_state = 0;  ///< state whose closing edge writes the result
  bool is_const_wire = false;///< materialized as a constant net, no state
  double chain_delay_ns = 0; ///< accumulated comb delay at this op's output
  unsigned fu_instance = 0;  ///< filled by binding for shared-FU classes
};

struct BlockSchedule {
  unsigned entry_state = 0;
  unsigned exit_state = 0;   ///< state in which the terminator fires
  std::vector<InstrSlot> slots;  ///< one per instruction in the block
};

struct Schedule {
  std::vector<BlockSchedule> blocks;
  unsigned num_states = 0;   ///< total datapath states (excluding IDLE/DONE)
  Constraints constraints;
  // Observed peak parallel demand (before constraining), for reports.
  unsigned peak_multipliers = 0;
  unsigned peak_dividers = 0;
  unsigned peak_memory_ports = 0;
};

/// Schedules every block of `function`. Fails only on malformed input (the
/// resource model always admits a serial schedule).
Result<Schedule> schedule(const ir::Function& function, const TechLibrary& lib,
                          const Constraints& constraints);

/// Registers with more than one writing instruction (or any non-const
/// writer); constants targeting such registers cannot be turned into plain
/// wires. Shared helper for the scheduler and the FSMD generator.
std::vector<bool> regs_needing_registers(const ir::Function& function);

}  // namespace hermes::hls
