#include "hls/bind.hpp"

#include <algorithm>
#include <functional>
#include <tuple>

namespace hermes::hls {
namespace {

/// One scheduled occupation interval of a shared resource.
struct Interval {
  unsigned start, end;
  ir::BlockId block;
  std::size_t index;  ///< instruction index within the block
};

/// Left-edge packing: sorts by start and assigns each interval the lowest
/// instance whose last interval ended before it starts.
unsigned left_edge(std::vector<Interval>& intervals,
                   const std::function<void(const Interval&, unsigned)>& assign) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return std::tie(a.start, a.end) < std::tie(b.start, b.end);
            });
  std::vector<unsigned> instance_free_at;  // first state the instance is free
  for (const Interval& interval : intervals) {
    unsigned chosen = static_cast<unsigned>(instance_free_at.size());
    for (unsigned i = 0; i < instance_free_at.size(); ++i) {
      if (instance_free_at[i] <= interval.start) {
        chosen = i;
        break;
      }
    }
    if (chosen == instance_free_at.size()) instance_free_at.push_back(0);
    instance_free_at[chosen] = interval.end + 1;
    assign(interval, chosen);
  }
  return static_cast<unsigned>(instance_free_at.size());
}

}  // namespace

Binding bind(const ir::Function& function, const Schedule& schedule) {
  Binding binding;
  binding.fu_instance.resize(function.num_blocks());
  binding.mem_port.resize(function.num_blocks());
  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    const std::size_t n = function.block(b).instrs.size();
    binding.fu_instance[b].assign(n, 0);
    binding.mem_port[b].assign(n, 0);
  }

  // Group shareable ops by (class, op kind, signedness, width): an instance
  // is a concrete piece of hardware, so only identical operators share it.
  using GroupKey = std::tuple<FuClass, ir::Op, bool, unsigned>;
  std::map<GroupKey, std::vector<Interval>> groups;
  std::map<std::uint64_t, std::vector<Interval>> mem_accesses;

  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    const ir::Block& block = function.block(b);
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const ir::Instr& instr = block.instrs[i];
      const InstrSlot& slot = schedule.blocks[b].slots[i];
      if (slot.is_const_wire) continue;
      if (instr.op == ir::Op::kLoad || instr.op == ir::Op::kStore) {
        // A port is held only during the access state.
        mem_accesses[instr.imm].push_back({slot.start, slot.start, b, i});
        continue;
      }
      const FuClass fu = fu_class_of(instr.op);
      if (fu == FuClass::kMultiplier || fu == FuClass::kDivider) {
        groups[{fu, instr.op, instr.type.is_signed, instr.type.bits}].push_back(
            {slot.start, slot.end, b, i});
      }
    }
  }

  for (auto& [key, intervals] : groups) {
    const unsigned instances = left_edge(
        intervals, [&](const Interval& interval, unsigned instance) {
          binding.fu_instance[interval.block][interval.index] = instance;
        });
    if (intervals.size() > instances) {
      binding.stats.shared_ops +=
          static_cast<unsigned>(intervals.size()) - instances;
    }
    if (std::get<0>(key) == FuClass::kMultiplier) {
      binding.stats.multiplier_instances += instances;
    } else {
      binding.stats.divider_instances += instances;
    }
  }

  for (auto& [mem, intervals] : mem_accesses) {
    const unsigned ports = left_edge(
        intervals, [&](const Interval& interval, unsigned port) {
          binding.mem_port[interval.block][interval.index] = port;
        });
    binding.ports_per_memory[mem] = ports;
    binding.stats.memory_ports += ports;
  }
  // Memories that are never accessed still need one port to exist.
  for (std::size_t m = 0; m < function.memories().size(); ++m) {
    if (!binding.ports_per_memory.count(m)) binding.ports_per_memory[m] = 0;
  }

  // Register binding. Default: one datapath register per register-backed
  // vreg that is actually written. With merging on, block-local single-def
  // temporaries whose scheduled live windows [write_state, last_read) do not
  // overlap are packed into shared physical registers (left-edge), exactly
  // like FU instances above.
  const std::vector<bool> needs_reg = regs_needing_registers(function);
  std::vector<bool> written(function.num_regs(), false);
  for (const ir::ParamDecl& param : function.params) {
    if (!param.is_array()) written[param.reg] = true;
  }
  std::vector<unsigned> defs(function.num_regs(), 0);
  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    for (const ir::Instr& instr : function.block(b).instrs) {
      if (instr.dest != ir::kNoReg) {
        written[instr.dest] = true;
        ++defs[instr.dest];
      }
    }
  }

  binding.reg_alias.resize(function.num_regs());
  for (std::size_t r = 0; r < function.num_regs(); ++r) {
    binding.reg_alias[r] = static_cast<ir::RegId>(r);
  }

  if (schedule.constraints.merge_registers) {
    // Candidate discovery: single-def, register-backed, non-parameter vregs
    // whose def and every use live in the same block.
    std::vector<bool> is_param(function.num_regs(), false);
    for (const ir::ParamDecl& param : function.params) {
      if (!param.is_array()) is_param[param.reg] = true;
    }
    struct Window {
      ir::RegId reg;
      unsigned width;
      unsigned start;  ///< write_state of the def
      unsigned end;    ///< max consumer start (exclusive bound for packing)
      ir::BlockId block;
      bool valid = true;
    };
    std::map<ir::RegId, Window> windows;
    std::vector<ir::BlockId> def_block(function.num_regs(), ir::kNoBlock);
    for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
      const ir::Block& block = function.block(b);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr& instr = block.instrs[i];
        const InstrSlot& slot = schedule.blocks[b].slots[i];
        if (instr.dest != ir::kNoReg && defs[instr.dest] == 1 &&
            needs_reg[instr.dest] && !is_param[instr.dest] &&
            !slot.is_const_wire) {
          def_block[instr.dest] = b;
          Window window;
          window.reg = instr.dest;
          window.width = function.reg_type(instr.dest).bits;
          window.start = slot.write_state;
          window.end = slot.write_state;  // extended by readers below
          window.block = b;
          windows[instr.dest] = window;
        }
      }
    }
    for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
      const ir::Block& block = function.block(b);
      for (std::size_t i = 0; i < block.instrs.size(); ++i) {
        const ir::Instr& instr = block.instrs[i];
        const InstrSlot& slot = schedule.blocks[b].slots[i];
        for (unsigned s = 0; s < instr.num_srcs(); ++s) {
          const ir::RegId reg = instr.src[s];
          if (reg == ir::kNoReg) continue;
          const auto it = windows.find(reg);
          if (it == windows.end()) continue;
          if (def_block[reg] != b) {
            it->second.valid = false;  // escapes its block
          } else {
            // Held until the end of the reader's occupation (operands must
            // stay stable through multi-cycle consumers).
            it->second.end = std::max(it->second.end, slot.end);
          }
        }
      }
    }

    // Left-edge pack per width class.
    std::map<unsigned, std::vector<Window>> by_width;
    for (auto& [reg, window] : windows) {
      if (window.valid) by_width[window.width].push_back(window);
    }
    for (auto& [width, intervals] : by_width) {
      std::sort(intervals.begin(), intervals.end(),
                [](const Window& a, const Window& b) {
                  return std::tie(a.start, a.end, a.reg) <
                         std::tie(b.start, b.end, b.reg);
                });
      // Slot list: representative vreg + first state it is free again.
      std::vector<std::pair<ir::RegId, unsigned>> slots;
      for (const Window& window : intervals) {
        bool placed = false;
        for (auto& [rep, free_at] : slots) {
          // A register may accept a new value on the edge that closes the
          // last state its previous value is read in (read-then-write).
          if (free_at <= window.start) {
            binding.reg_alias[window.reg] = rep;
            free_at = window.end + 1;
            placed = true;
            ++binding.stats.merged_registers;
            break;
          }
        }
        if (!placed) {
          slots.emplace_back(window.reg, window.end + 1);
        }
      }
    }
  }

  for (std::size_t r = 0; r < function.num_regs(); ++r) {
    if (needs_reg[r] && written[r] &&
        binding.reg_alias[r] == static_cast<ir::RegId>(r)) {
      ++binding.stats.datapath_registers;
    }
  }
  return binding;
}

}  // namespace hermes::hls
