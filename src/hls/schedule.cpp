#include "hls/schedule.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "common/strings.hpp"

namespace hermes::hls {
namespace {

// Hazard separation rules (mirrored by fsmd.cpp):
//
//   RAW      consumer.start >= producer.write_state, equality = chaining
//            (allowed only if producer.chain_out && consumer.chain_in and
//            the accumulated combinational delay fits the period);
//            otherwise consumer.start >= producer.write_state + 1.
//   WAR      writer.start >= reader.end            (same state is safe: the
//            reader's result is captured on the same edge that commits the
//            overwrite).
//   WAW      writer2.start >= writer1.write_state + 1 (a register accepts one
//            value per edge).
//   MemRAW   load.start >= store.start             (the simulator commits
//            writes before read sampling — write-first port).
//   MemWAR   store.start >= load.start + 1.
//   MemWAW   store2.start >= store1.start + 1.
//   Control  terminator.start >= dep.end.

struct OpInfo {
  OpCharacterization ch;
  bool is_const_wire = false;
  bool is_terminator = false;
  FuClass fu = FuClass::kNone;
  std::uint64_t mem = 0;  ///< memory index for load/store
};

}  // namespace

std::vector<bool> regs_needing_registers(const ir::Function& function) {
  std::vector<unsigned> writers(function.num_regs(), 0);
  std::vector<bool> nonconst_writer(function.num_regs(), false);
  for (const ir::ParamDecl& param : function.params) {
    if (!param.is_array()) {
      ++writers[param.reg];  // the IDLE-state argument latch counts
      nonconst_writer[param.reg] = true;
    }
  }
  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    for (const ir::Instr& instr : function.block(b).instrs) {
      if (instr.dest == ir::kNoReg) continue;
      ++writers[instr.dest];
      if (instr.op != ir::Op::kConst) nonconst_writer[instr.dest] = true;
    }
  }
  std::vector<bool> needs(function.num_regs(), false);
  for (std::size_t r = 0; r < function.num_regs(); ++r) {
    needs[r] = writers[r] > 1 || nonconst_writer[r];
  }
  return needs;
}

Result<Schedule> schedule(const ir::Function& function, const TechLibrary& lib,
                          const Constraints& constraints) {
  Schedule result;
  result.constraints = constraints;
  result.blocks.resize(function.num_blocks());

  const std::vector<bool> needs_reg = regs_needing_registers(function);
  const double usable = lib.usable_period(constraints.clock_period_ns);

  // Memory port counts: 2 for (paper: True Dual-Port) RAMs, else 1.
  auto mem_ports = [&](std::uint64_t mem) -> unsigned {
    // Interface memories are exposed as TDP blocks (host on one port,
    // accelerator on the other is the physical arrangement; within the
    // accelerator both ports are usable while it owns the memory).
    const ir::MemDecl& decl = function.memories()[mem];
    return decl.is_interface || decl.depth >= 64 ? 2 : 1;
  };

  unsigned next_state = 0;

  for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
    const ir::Block& block = function.block(b);
    const ir::BlockCdfg cdfg = ir::build_block_cdfg(function, b);
    const std::size_t n = block.instrs.size();

    BlockSchedule& sched = result.blocks[b];
    sched.entry_state = next_state;
    sched.slots.resize(n);

    // Characterize.
    std::vector<OpInfo> info(n);
    for (std::size_t i = 0; i < n; ++i) {
      const ir::Instr& instr = block.instrs[i];
      OpInfo& oi = info[i];
      oi.is_terminator = ir::is_terminator(instr.op);
      oi.fu = constraints.enforce_resources ? fu_class_of(instr.op)
                                            : FuClass::kNone;
      // Loads/stores always contend for ports (they are physical).
      if (instr.op == ir::Op::kLoad || instr.op == ir::Op::kStore) {
        oi.fu = FuClass::kMemoryPort;
        oi.mem = instr.imm;
      }
      if (instr.op == ir::Op::kConst && !needs_reg[instr.dest]) {
        oi.is_const_wire = true;
        oi.ch.latency = 0;
        oi.ch.delay_ns = 0.0;
        oi.ch.chain_out = true;
        continue;
      }
      if (oi.is_terminator) {
        oi.ch.latency = 1;
        oi.ch.delay_ns = lib.target().lut_delay_ns;  // next-state mux level
        oi.ch.chain_in = true;
        oi.ch.chain_out = false;
        continue;
      }
      oi.ch = lib.characterize(instr.op, instr.type.bits,
                               constraints.clock_period_ns);
      if (!constraints.allow_chaining) {
        oi.ch.chain_in = false;
        oi.ch.chain_out = false;
      }
      // Multiplier FU sharing only kicks in when the op needs a DSP.
      if (instr.op == ir::Op::kMul && oi.fu == FuClass::kMultiplier &&
          !constraints.enforce_resources) {
        oi.fu = FuClass::kNone;
      }
    }

    // Longest-path priority (in latency states) toward the terminator.
    std::vector<double> priority(n, 0.0);
    for (std::size_t i = n; i-- > 0;) {
      for (const ir::Dep& dep : cdfg.nodes[i].deps) {
        priority[dep.on] = std::max(
            priority[dep.on],
            priority[i] + std::max<unsigned>(info[dep.on].ch.latency, 1));
      }
    }

    // Resource occupancy per local state.
    std::map<unsigned, unsigned> mul_busy, div_busy;     // state -> count
    std::map<std::pair<std::uint64_t, unsigned>, unsigned> port_busy;

    auto fu_available = [&](const OpInfo& oi, unsigned start) {
      if (!constraints.enforce_resources && oi.fu != FuClass::kMemoryPort) {
        return true;
      }
      const unsigned span = std::max<unsigned>(oi.ch.latency, 1);
      for (unsigned s = start; s < start + span; ++s) {
        switch (oi.fu) {
          case FuClass::kMultiplier:
            if (mul_busy[s] >= constraints.multipliers) return false;
            break;
          case FuClass::kDivider:
            if (div_busy[s] >= constraints.dividers) return false;
            break;
          case FuClass::kMemoryPort:
            // Ports are only held in the access state (start).
            if (s == start && port_busy[{oi.mem, s}] >= mem_ports(oi.mem)) {
              return false;
            }
            break;
          case FuClass::kNone:
            break;
        }
      }
      return true;
    };
    auto fu_reserve = [&](const OpInfo& oi, unsigned start) {
      const unsigned span = std::max<unsigned>(oi.ch.latency, 1);
      for (unsigned s = start; s < start + span; ++s) {
        switch (oi.fu) {
          case FuClass::kMultiplier:
            result.peak_multipliers = std::max(result.peak_multipliers, ++mul_busy[s]);
            break;
          case FuClass::kDivider:
            result.peak_dividers = std::max(result.peak_dividers, ++div_busy[s]);
            break;
          case FuClass::kMemoryPort:
            if (s == start) {
              result.peak_memory_ports =
                  std::max(result.peak_memory_ports, ++port_busy[{oi.mem, s}]);
            }
            break;
          case FuClass::kNone:
            break;
        }
      }
    };

    std::vector<bool> placed(n, false);
    std::size_t remaining = n;

    // Constants-as-wires are placed implicitly.
    for (std::size_t i = 0; i < n; ++i) {
      if (info[i].is_const_wire) {
        sched.slots[i] = {0, 0, 0, true, 0.0, 0};
        placed[i] = true;
        --remaining;
      }
    }

    // Cycle-by-cycle list scheduling over local states.
    unsigned cycle = 0;
    const unsigned kCycleCap = 1'000'000;
    while (remaining > 0) {
      if (cycle > kCycleCap) {
        return Status::Error(ErrorCode::kInternal,
                             format("scheduler did not converge in block %u", b));
      }
      // Gather ready ops: all deps placed and start constraints allow `cycle`.
      std::vector<std::size_t> ready;
      for (std::size_t i = 0; i < n; ++i) {
        if (placed[i]) continue;
        if (info[i].is_terminator && remaining > 1) continue;  // always last
        bool deps_ok = true;
        unsigned earliest = 0;
        for (const ir::Dep& dep : cdfg.nodes[i].deps) {
          if (!placed[dep.on]) {
            deps_ok = false;
            break;
          }
          const InstrSlot& p = sched.slots[dep.on];
          const OpInfo& pi = info[dep.on];
          unsigned min_start = 0;
          switch (dep.kind) {
            case ir::DepKind::kRaw:
              if (pi.is_const_wire) {
                min_start = 0;
              } else if (pi.ch.chain_out && info[i].ch.chain_in) {
                min_start = p.write_state;  // chaining candidate
              } else {
                min_start = p.write_state + 1;
              }
              break;
            case ir::DepKind::kWar:
              min_start = pi.is_const_wire ? 0 : p.end;
              break;
            case ir::DepKind::kWaw:
              min_start = pi.is_const_wire ? 0 : p.write_state + 1;
              break;
            case ir::DepKind::kMemRaw:
              min_start = p.start;
              break;
            case ir::DepKind::kMemWar:
            case ir::DepKind::kMemWaw:
              min_start = p.start + 1;
              break;
            case ir::DepKind::kControl:
              min_start = p.end;
              break;
          }
          earliest = std::max(earliest, min_start);
        }
        if (deps_ok && earliest <= cycle) ready.push_back(i);
      }

      std::sort(ready.begin(), ready.end(), [&](std::size_t a, std::size_t c) {
        return priority[a] > priority[c];
      });

      bool any_placed = false;
      for (std::size_t i : ready) {
        // Chaining feasibility at this exact cycle: accumulate comb delay
        // from RAW producers whose write_state == cycle.
        double in_delay = 0.0;
        bool chain_violation = false;
        for (const ir::Dep& dep : cdfg.nodes[i].deps) {
          if (dep.kind != ir::DepKind::kRaw) continue;
          const InstrSlot& p = sched.slots[dep.on];
          const OpInfo& pi = info[dep.on];
          if (pi.is_const_wire) continue;
          if (p.write_state == cycle) {
            if (!(pi.ch.chain_out && info[i].ch.chain_in)) {
              chain_violation = true;  // must wait one more state
              break;
            }
            in_delay = std::max(in_delay, p.chain_delay_ns);
          }
        }
        if (chain_violation) continue;
        const double total_delay = in_delay + info[i].ch.delay_ns;
        if (info[i].ch.latency <= 1 && total_delay > usable && in_delay > 0.0) {
          continue;  // chain too long; retry next cycle reading from registers
        }
        if (!fu_available(info[i], cycle)) continue;

        InstrSlot& slot = sched.slots[i];
        slot.start = cycle;
        const unsigned span = std::max<unsigned>(info[i].ch.latency, 1);
        slot.end = cycle + span - 1;
        slot.chain_delay_ns = info[i].ch.latency <= 1 ? total_delay
                                                      : info[i].ch.delay_ns;
        // write_state: loads deliver one state after the access; everything
        // else writes on the closing edge of its last state.
        const ir::Instr& instr = block.instrs[i];
        slot.write_state = instr.op == ir::Op::kLoad ? slot.start + 1 : slot.end;
        fu_reserve(info[i], cycle);
        placed[i] = true;
        --remaining;
        any_placed = true;
      }
      // Re-gather at the same cycle after successful placements so newly
      // unblocked ops can chain into this state; advance only when stuck.
      if (!any_placed) ++cycle;
    }

    // Block exit: all register writes committed and terminator fired.
    unsigned exit_state = 0;
    std::size_t term_index = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (info[i].is_const_wire) continue;
      exit_state = std::max(exit_state, sched.slots[i].write_state);
      if (info[i].is_terminator) term_index = i;
    }
    exit_state = std::max(exit_state, sched.slots[term_index].start);
    // The terminator conceptually fires in the exit state.
    sched.slots[term_index].start = exit_state;
    sched.slots[term_index].end = exit_state;
    sched.slots[term_index].write_state = exit_state;

    // Lift local states to absolute ids.
    const unsigned local_states = exit_state + 1;
    for (std::size_t i = 0; i < n; ++i) {
      if (info[i].is_const_wire) continue;
      sched.slots[i].start += sched.entry_state;
      sched.slots[i].end += sched.entry_state;
      sched.slots[i].write_state += sched.entry_state;
    }
    sched.exit_state = sched.entry_state + exit_state;
    next_state += local_states;
  }

  result.num_states = next_state;
  return result;
}

}  // namespace hermes::hls
