#include "hls/target.hpp"

namespace hermes::hls {

FpgaTarget ng_ultra() {
  FpgaTarget t;
  t.name = "NG-ULTRA";
  t.lut_delay_ns = 0.30;
  t.routing_delay_ns = 0.25;
  t.carry_per_bit_ns = 0.020;
  t.carry_base_ns = 0.20;
  t.dsp_delay_ns = 2.2;
  t.bram_access_ns = 1.8;
  t.ff_setup_ns = 0.15;
  t.clock_skew_ns = 0.10;
  t.lut_inputs = 4;
  t.dsp_mul_width = 24;
  t.luts = 550'000;   // paper: "logic capacity of 550k LUTs"
  t.dsps = 1'152;
  t.brams = 2'016;
  t.bram_kbits = 48;
  t.static_power_mw = 150.0;
  t.lut_dyn_uw_per_mhz = 0.020;
  t.dsp_dyn_uw_per_mhz = 0.600;
  t.bram_dyn_uw_per_mhz = 0.450;
  t.ff_dyn_uw_per_mhz = 0.004;
  return t;
}

FpgaTarget legacy_radhard() {
  // Derived: one process generation earlier. Delays doubled (paper claims
  // NG-ULTRA runs "twice as fast"), dynamic power quadrupled ("power
  // consumption four times smaller"), much smaller fabric.
  FpgaTarget t = ng_ultra();
  t.name = "legacy-radhard-65nm";
  t.lut_delay_ns *= 2.0;
  t.routing_delay_ns *= 2.0;
  t.carry_per_bit_ns *= 2.0;
  t.carry_base_ns *= 2.0;
  t.dsp_delay_ns *= 2.0;
  t.bram_access_ns *= 2.0;
  t.ff_setup_ns *= 2.0;
  t.clock_skew_ns *= 2.0;
  t.luts = 140'000;
  t.dsps = 288;
  t.brams = 512;
  t.static_power_mw = 300.0;
  t.lut_dyn_uw_per_mhz *= 4.0;
  t.dsp_dyn_uw_per_mhz *= 4.0;
  t.bram_dyn_uw_per_mhz *= 4.0;
  t.ff_dyn_uw_per_mhz *= 4.0;
  return t;
}

}  // namespace hermes::hls
