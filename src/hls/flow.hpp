// End-to-end HLS flow (paper Fig. 2): C source -> front-end (parse, type
// check) -> middle-end (lowering, CDFG, optimization passes) -> back-end
// (allocation, scheduling, binding, FSMD netlist + Verilog).
//
// This is the top-level public API of the Bambu-style tool: one call takes a
// C kernel and produces a synthesizable accelerator plus a per-stage report.
#pragma once

#include <string>

#include "common/status.hpp"
#include "hls/bind.hpp"
#include "hls/fsmd.hpp"
#include "hls/schedule.hpp"
#include "hls/techlib.hpp"
#include "ir/cdfg.hpp"
#include "ir/ir.hpp"
#include "ir/lower.hpp"
#include "ir/passes.hpp"

namespace hermes::hls {

struct FlowOptions {
  std::string top;               ///< kernel function name
  Constraints constraints;       ///< clock + resource constraints
  unsigned unroll_limit = 0;     ///< full-unroll bound for counted loops
  bool run_middle_end = true;    ///< ablation: disable optimization passes
  FpgaTarget target;             ///< defaults to NG-ULTRA

  FlowOptions() : target(ng_ultra()) {}
};

/// Front-end + middle-end + allocation/scheduling/binding — the resumable
/// prefix of the flow, everything up to datapath generation. The compile
/// service (src/svc/) caches this as the "scheduled CDFG" artifact and
/// checks budgets/cancellation between it and finish_flow.
struct ScheduledDesign {
  ir::Function function;                 ///< optimized IR
  ir::CdfgSummary cdfg;
  std::vector<ir::PassReport> passes;
  Schedule schedule;
  Binding binding;
  std::size_t ir_instrs_before = 0;
  std::size_t ir_instrs_after = 0;

  ScheduledDesign() : function("<empty>") {}
};

/// Everything the flow produced, stage by stage.
struct FlowResult {
  ir::Function function;                 ///< optimized IR
  ir::CdfgSummary cdfg;
  std::vector<ir::PassReport> passes;
  Schedule schedule;
  Binding binding;
  FsmdResult fsmd;
  std::string verilog;

  // Headline metrics.
  std::size_t ir_instrs_before = 0;
  std::size_t ir_instrs_after = 0;
  unsigned fsm_states = 0;

  FlowResult() : function("<empty>") {}
};

/// Runs the complete flow on `source`. All stages validate their output;
/// the first failure is returned. Equivalent to run_flow_schedule followed
/// by finish_flow.
Result<FlowResult> run_flow(std::string_view source, const FlowOptions& options);

/// Stage 1: parse, type check, lower, optimize, allocate, schedule, bind.
Result<ScheduledDesign> run_flow_schedule(std::string_view source,
                                          const FlowOptions& options);

/// Stage 2: FSMD datapath generation + Verilog emission from a scheduled
/// design. Consumes `design` (the IR and schedule move into the result).
Result<FlowResult> finish_flow(ScheduledDesign design);

/// Renders a human-readable flow report (used by examples and FIG2).
std::string flow_report(const FlowResult& result);

}  // namespace hermes::hls
