// FPGA target models.
//
// NG-ULTRA is "the world's first rad-hard SoC FPGA in 28nm", with "550k LUTs
// running twice as fast as current rad-hard FPGAs with a power consumption
// four times smaller" (HERMES, Sec. I). We cannot measure silicon, so the
// targets are parametric area/delay/power models calibrated to those headline
// ratios: the legacy rad-hard target is derived from NG-ULTRA by halving
// speed and quadrupling dynamic power. All HLS pre-characterization
// (Eucalyptus), technology mapping, STA and the power model read these
// numbers, so the CLAIM-SPEED benchmark measures the ratio end-to-end rather
// than asserting it.
#pragma once

#include <cstddef>
#include <string>

namespace hermes::hls {

struct FpgaTarget {
  std::string name;

  // --- timing model (ns) ---
  double lut_delay_ns = 0.30;       ///< one LUT4 level, including local routing
  double routing_delay_ns = 0.25;   ///< average inter-cluster hop
  double carry_per_bit_ns = 0.02;   ///< fast-carry chain, per bit
  double carry_base_ns = 0.20;      ///< carry-chain entry/exit
  double dsp_delay_ns = 2.2;        ///< one DSP multiply (registered inputs)
  double bram_access_ns = 1.8;      ///< synchronous block-RAM read clock-to-out
  double ff_setup_ns = 0.15;
  double clock_skew_ns = 0.10;

  // --- resource model ---
  unsigned lut_inputs = 4;          ///< NG-ULTRA fabric uses 4-input LUTs
  unsigned dsp_mul_width = 24;      ///< max operand width of one DSP multiplier
  std::size_t luts = 0;
  std::size_t dsps = 0;
  std::size_t brams = 0;            ///< True Dual-Port RAM blocks
  std::size_t bram_kbits = 48;      ///< capacity of one block

  // --- power model (mW) ---
  double static_power_mw = 150.0;
  double lut_dyn_uw_per_mhz = 0.020;   ///< per active LUT per MHz
  double dsp_dyn_uw_per_mhz = 0.600;
  double bram_dyn_uw_per_mhz = 0.450;
  double ff_dyn_uw_per_mhz = 0.004;
};

/// The HERMES target: NG-ULTRA (28nm FD-SOI, quad ARM R52, 550k LUTs).
FpgaTarget ng_ultra();

/// A previous-generation rad-hard FPGA (65nm class): the comparison point for
/// the paper's 2x-speed / 4x-power claim.
FpgaTarget legacy_radhard();

}  // namespace hermes::hls
