// Testbench harness: co-simulation of the generated accelerator against the
// IR interpreter golden model.
//
// "Bambu supports the creation of a testbench ... so that data exchange can
// be simulated to verify its correctness" (HERMES, Sec. II). This harness is
// that testbench: it drives the start/done handshake on the cycle-accurate
// netlist simulator, loads interface memories before the run, compares the
// return value and final memory contents with the interpreter, and reports
// the accelerator's cycle count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/status.hpp"
#include "hls/flow.hpp"
#include "ir/interp.hpp"

namespace hermes::hls {

struct CosimResult {
  bool match = true;                  ///< hardware == golden on all outputs
  std::uint64_t hw_cycles = 0;        ///< accelerator latency (start -> done)
  std::uint64_t sw_instructions = 0;  ///< golden-model dynamic op count
  std::uint64_t return_value = 0;
  std::string mismatch;               ///< description of the first mismatch
};

/// One co-simulation: `scalar_args` in parameter order (arrays skipped),
/// `memory_images` keyed by IR memory index for interface memories.
Result<CosimResult> cosimulate(
    const FlowResult& flow, const std::vector<std::uint64_t>& scalar_args,
    const std::map<std::size_t, std::vector<std::uint64_t>>& memory_images,
    std::uint64_t max_cycles = 2'000'000);

}  // namespace hermes::hls
