// Content-addressed flow-artifact cache with an LRU byte budget, integrity
// checking, and in-flight compile deduplication.
//
// This scales the hw::jit::KernelCache idiom (Module::digest() ->
// compiled kernel) up to whole flow stages: Eucalyptus characterizations,
// scheduled CDFGs, mapped netlists and packed bitstreams, each keyed by an
// FNV digest of everything that can change it (see svc/job.hpp).
//
// Integrity invariant — never serve rot silently: every entry stores a
// canonical byte image of its artifact plus the FNV check of that image,
// captured at insert. Every lookup re-hashes the image before serving; a
// mismatch (storage rot, modeled by the `svc.cache.entry.rot` injection
// point) counts as rot_detected, evicts the entry, and falls through to a
// recompile. `rot_served` is pinned to zero by construction and asserted in
// the soak suite.
//
// Dedup invariant — one compile per digest: concurrent requesters of the
// same (stage, key) elect one compiler; the rest park on a latch and share
// the result. Unlike KernelCache (compile-under-lock), computes here run
// outside the table mutex, so *distinct* keys compile in parallel — the
// compile-farm case.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "fault/injector.hpp"
#include "svc/job.hpp"

namespace hermes::svc {

struct FlowCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;    ///< lookups that elected this caller to compute
  std::uint64_t computes = 0;  ///< successful computes (== inserts)
  std::uint64_t evictions = 0;         ///< LRU + storm evictions
  std::uint64_t inflight_waits = 0;    ///< requests that parked on a latch
  std::uint64_t rot_detected = 0;      ///< image check failed; entry dropped
  std::uint64_t rot_served = 0;        ///< MUST stay 0 (soak-asserted)
  std::uint64_t evict_storms = 0;      ///< injected mass evictions
  std::uint64_t bytes_in_use = 0;      ///< current image bytes held
  std::uint64_t bytes_evicted = 0;     ///< cumulative image bytes shed
};

class FlowCache {
 public:
  static constexpr std::size_t kDefaultByteBudget = 256ull << 20;

  explicit FlowCache(std::size_t byte_budget = kDefaultByteBudget)
      : byte_budget_(byte_budget == 0 ? 1 : byte_budget) {}

  /// Registers the svc.cache.* points. All injector traffic happens under
  /// the cache mutex, honoring the injector's single-thread contract.
  void attach_injector(fault::FaultInjector* injector);

  /// Returns the cached artifact for (stage, key), computing and inserting
  /// on miss. `compute` may return null (stage failed / job cancelled):
  /// nothing is inserted and null is returned — including to latch waiters,
  /// who should fall back to computing inline (`was_waiter` tells them so).
  /// `image_of` renders the canonical integrity image stored with the entry.
  template <typename T>
  std::shared_ptr<const T> get_or_compute(
      Stage stage, std::uint64_t key,
      const std::function<std::shared_ptr<const T>()>& compute,
      const std::function<std::vector<std::uint8_t>(const T&)>& image_of,
      bool* was_hit = nullptr, bool* was_waiter = nullptr) {
    auto erased = get_or_compute_erased(
        stage, key,
        [&]() -> std::shared_ptr<const void> { return compute(); },
        [&](const void* value) {
          return image_of(*static_cast<const T*>(value));
        },
        was_hit, was_waiter);
    return std::static_pointer_cast<const T>(erased);
  }

  [[nodiscard]] bool contains(Stage stage, std::uint64_t key) const;
  void clear();
  void set_byte_budget(std::size_t byte_budget);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] FlowCacheStats stats() const;
  void reset_stats();

 private:
  struct Entry {
    std::shared_ptr<const void> object;
    std::vector<std::uint8_t> image;  ///< canonical bytes; integrity carrier
    std::uint64_t check = 0;          ///< FNV of image at insert
    std::uint64_t tick = 0;           ///< last-use stamp for LRU
    Stage stage = Stage::kCharacterize;
  };
  /// Latch shared by concurrent requesters of one in-flight compute.
  struct Inflight {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    std::shared_ptr<const void> value;
  };

  std::shared_ptr<const void> get_or_compute_erased(
      Stage stage, std::uint64_t key,
      const std::function<std::shared_ptr<const void>()>& compute,
      const std::function<std::vector<std::uint8_t>(const void*)>& image_of,
      bool* was_hit, bool* was_waiter);

  void evict_lru_locked();                 ///< shed LRU entries over budget
  void erase_locked(std::uint64_t slot);   ///< drop one entry, byte-accounted

  static std::uint64_t slot_of(Stage stage, std::uint64_t key);
  static std::uint64_t image_check(const std::vector<std::uint8_t>& image);

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::uint64_t tick_ = 0;
  std::size_t byte_budget_;
  FlowCacheStats stats_;
  fault::FaultInjector* injector_ = nullptr;
  fault::PointId rot_point_ = fault::kNoFaultPoint;
  fault::PointId storm_point_ = fault::kNoFaultPoint;
};

}  // namespace hermes::svc
