#include "svc/job.hpp"

namespace hermes::svc {

const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kCharacterize: return "characterize";
    case Stage::kSchedule: return "schedule";
    case Stage::kMap: return "map";
    case Stage::kBitstream: return "bitstream";
    case Stage::kCount: break;
  }
  return "unknown";
}

namespace {

// Domain tags keep the four key spaces disjoint even for identical inputs.
constexpr std::uint64_t kTagCharacterize = 0x48455243u;  // "HERC"
constexpr std::uint64_t kTagSchedule = 0x48455253u;      // "HERS"
constexpr std::uint64_t kTagMap = 0x4845524Du;           // "HERM"
constexpr std::uint64_t kTagBitstream = 0x48455242u;     // "HERB"

/// Every FpgaTarget field: the target IS the device model (make_device
/// derives the NxDevice from it), so timing, resource and power knobs all
/// reach mapping, STA and power estimation.
void mix_target(KeyBuilder& key, const hls::FpgaTarget& target) {
  key.str(target.name)
      .f64(target.lut_delay_ns)
      .f64(target.routing_delay_ns)
      .f64(target.carry_per_bit_ns)
      .f64(target.carry_base_ns)
      .f64(target.dsp_delay_ns)
      .f64(target.bram_access_ns)
      .f64(target.ff_setup_ns)
      .f64(target.clock_skew_ns)
      .u64(target.lut_inputs)
      .u64(target.dsp_mul_width)
      .u64(target.luts)
      .u64(target.dsps)
      .u64(target.brams)
      .u64(target.bram_kbits)
      .f64(target.static_power_mw)
      .f64(target.lut_dyn_uw_per_mhz)
      .f64(target.dsp_dyn_uw_per_mhz)
      .f64(target.bram_dyn_uw_per_mhz)
      .f64(target.ff_dyn_uw_per_mhz);
}

void mix_constraints(KeyBuilder& key, const hls::Constraints& constraints) {
  key.f64(constraints.clock_period_ns)
      .u64(constraints.multipliers)
      .u64(constraints.dividers)
      .u64(constraints.allow_chaining ? 1 : 0)
      .u64(constraints.enforce_resources ? 1 : 0)
      .u64(constraints.merge_registers ? 1 : 0);
}

void mix_flow_options(KeyBuilder& key, const hls::FlowOptions& options) {
  key.str(options.top);
  mix_constraints(key, options.constraints);
  key.u64(options.unroll_limit).u64(options.run_middle_end ? 1 : 0);
  mix_target(key, options.target);
}

void mix_backend_options(KeyBuilder& key, const nx::BackendOptions& options) {
  key.f64(options.target_period_ns)
      .u64(options.place.iterations_per_instance)
      .f64(options.place.initial_temp)
      .f64(options.place.cooling)
      .u64(options.place.seed)
      .f64(options.route.channel_capacity)
      .u64(options.detailed_router ? 1 : 0)
      .f64(options.detailed.channel_capacity)
      .u64(options.detailed.max_iterations)
      .f64(options.detailed.present_factor)
      .f64(options.detailed.history_factor);
}

}  // namespace

std::uint64_t characterize_key(const hls::FpgaTarget& target,
                               const hls::SweepConfig& sweep) {
  KeyBuilder key(kTagCharacterize);
  mix_target(key, target);
  key.u64(sweep.ops.size());
  for (const ir::Op op : sweep.ops) key.u64(static_cast<std::uint64_t>(op));
  key.u64(sweep.widths.size());
  for (const unsigned width : sweep.widths) key.u64(width);
  key.u64(sweep.pipeline_stages.size());
  for (const unsigned stages : sweep.pipeline_stages) key.u64(stages);
  key.u64(sweep.clock_periods_ns.size());
  for (const double period : sweep.clock_periods_ns) key.f64(period);
  return key.digest();
}

std::uint64_t schedule_key(std::string_view source,
                           const hls::FlowOptions& options) {
  KeyBuilder key(kTagSchedule);
  key.str(source);
  mix_flow_options(key, options);
  return key.digest();
}

std::uint64_t map_key(std::uint64_t module_digest,
                      const hls::FpgaTarget& target,
                      const nx::BackendOptions& options) {
  KeyBuilder key(kTagMap);
  key.u64(module_digest);
  mix_target(key, target);
  mix_backend_options(key, options);
  return key.digest();
}

std::uint64_t bitstream_key(std::uint64_t map_stage_key) {
  return KeyBuilder(kTagBitstream).u64(map_stage_key).digest();
}

std::uint64_t CompileOutcome::fingerprint() const {
  KeyBuilder key(0x4845524Fu);  // "HERO" — outcome domain
  key.u64(static_cast<std::uint64_t>(status.code()));
  key.u64(characterization_points);
  key.u64(netlist_digest);
  key.u64(fsm_states);
  key.f64(timing.critical_path_ns);
  key.f64(timing.fmax_mhz);
  key.u64(timing.meets_target ? 1 : 0);
  key.f64(timing.slack_ns);
  key.f64(power_total_mw);
  key.str(std::string_view(reinterpret_cast<const char*>(bitstream.data()),
                           bitstream.size()));
  return key.digest();
}

namespace cost {

std::uint64_t characterize(std::size_t grid_points) {
  return 4 * static_cast<std::uint64_t>(grid_points);
}

std::uint64_t schedule(std::size_t source_bytes, const hls::FlowResult& flow) {
  return source_bytes / 4 + 4 * flow.ir_instrs_after +
         2 * flow.schedule.num_states + flow.fsmd.module.cells().size();
}

std::uint64_t map(const nx::MapResult& map) {
  return 8 * map.synthesized.cells().size() + map.mapped.utilization.luts;
}

std::uint64_t bitstream(std::size_t image_bytes) {
  return image_bytes / 16 + 1;
}

}  // namespace cost

}  // namespace hermes::svc
