#include "svc/cache.hpp"

#include <span>
#include <utility>

namespace hermes::svc {

void FlowCache::attach_injector(fault::FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mutex_);
  injector_ = injector;
  if (injector_ != nullptr) {
    rot_point_ = injector_->register_point("svc.cache.entry.rot");
    storm_point_ = injector_->register_point("svc.cache.evict.storm");
  } else {
    rot_point_ = fault::kNoFaultPoint;
    storm_point_ = fault::kNoFaultPoint;
  }
}

std::uint64_t FlowCache::slot_of(Stage stage, std::uint64_t key) {
  // Stage keys are already domain-tagged (job.cpp); folding the stage again
  // is belt-and-braces against a caller reusing one key across stages.
  return KeyBuilder(static_cast<std::uint64_t>(stage) + 1).u64(key).digest();
}

std::uint64_t FlowCache::image_check(const std::vector<std::uint8_t>& image) {
  std::uint64_t hash = 14695981039346656037ULL;
  for (const std::uint8_t byte : image) {
    hash = (hash ^ byte) * 1099511628211ULL;
  }
  return hash;
}

std::shared_ptr<const void> FlowCache::get_or_compute_erased(
    Stage stage, std::uint64_t key,
    const std::function<std::shared_ptr<const void>()>& compute,
    const std::function<std::vector<std::uint8_t>(const void*)>& image_of,
    bool* was_hit, bool* was_waiter) {
  if (was_hit != nullptr) *was_hit = false;
  if (was_waiter != nullptr) *was_waiter = false;
  const std::uint64_t slot = slot_of(stage, key);

  std::shared_ptr<Inflight> flight;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (auto it = entries_.find(slot); it != entries_.end()) {
      Entry& entry = it->second;
      // One rot opportunity per lookup of this entry. The injector flips
      // bits in the stored image — the storage medium, not the object — and
      // the check below must catch it before anything is served.
      if (injector_ != nullptr && rot_point_ != fault::kNoFaultPoint &&
          injector_->should_fire(rot_point_)) {
        injector_->mutate_bytes(rot_point_,
                                std::span<std::uint8_t>(entry.image));
      }
      if (image_check(entry.image) == entry.check) {
        ++stats_.hits;
        entry.tick = ++tick_;
        if (was_hit != nullptr) *was_hit = true;
        return entry.object;
      }
      // Integrity breach: drop the entry and recompile. Never served. Not
      // counted as an eviction — rot drops and capacity sheds are distinct.
      ++stats_.rot_detected;
      stats_.bytes_in_use -= entry.image.size();
      entries_.erase(it);
    }
    if (auto it = inflight_.find(slot); it != inflight_.end()) {
      ++stats_.inflight_waits;
      flight = it->second;
    } else {
      // This caller is the elected compiler for the digest.
      ++stats_.misses;
      inflight_[slot] = std::make_shared<Inflight>();
    }
    if (flight != nullptr) {
      lock.unlock();
      std::unique_lock<std::mutex> parked(flight->mutex);
      flight->cv.wait(parked, [&] { return flight->done; });
      if (flight->value != nullptr) {
        if (was_hit != nullptr) *was_hit = true;
        return flight->value;
      }
      // The compiler failed or was cancelled mid-stage; tell the caller to
      // fall back to an inline compute of its own.
      if (was_waiter != nullptr) *was_waiter = true;
      return nullptr;
    }
  }

  // Elected compiler: run outside the lock so distinct keys overlap.
  std::shared_ptr<const void> value = compute();
  std::vector<std::uint8_t> image;
  if (value != nullptr) image = image_of(value.get());

  std::shared_ptr<Inflight> mine;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(slot);
    mine = it->second;
    inflight_.erase(it);
    if (value != nullptr) {
      ++stats_.computes;
      Entry entry;
      entry.object = value;
      entry.check = image_check(image);
      stats_.bytes_in_use += image.size();
      entry.image = std::move(image);
      entry.tick = ++tick_;
      entry.stage = stage;
      entries_[slot] = std::move(entry);
      // Injected eviction storm: spuriously shed the LRU half. Correctness
      // must not depend on residency — storms only cost recompiles.
      if (injector_ != nullptr && storm_point_ != fault::kNoFaultPoint &&
          injector_->should_fire(storm_point_)) {
        ++stats_.evict_storms;
        const std::size_t survivors = (entries_.size() + 1) / 2;
        while (entries_.size() > survivors) evict_lru_locked();
      }
      while (stats_.bytes_in_use > byte_budget_ && entries_.size() > 1) {
        evict_lru_locked();
      }
    }
  }
  {
    std::lock_guard<std::mutex> parked(mine->mutex);
    mine->value = value;
    mine->done = true;
  }
  mine->cv.notify_all();
  return value;
}

void FlowCache::evict_lru_locked() {
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.tick < victim->second.tick) victim = it;
  }
  erase_locked(victim->first);
}

void FlowCache::erase_locked(std::uint64_t slot) {
  auto it = entries_.find(slot);
  if (it == entries_.end()) return;
  stats_.bytes_in_use -= it->second.image.size();
  stats_.bytes_evicted += it->second.image.size();
  ++stats_.evictions;
  entries_.erase(it);
}

bool FlowCache::contains(Stage stage, std::uint64_t key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.find(slot_of(stage, key)) != entries_.end();
}

void FlowCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  stats_.bytes_in_use = 0;
}

void FlowCache::set_byte_budget(std::size_t byte_budget) {
  std::lock_guard<std::mutex> lock(mutex_);
  byte_budget_ = byte_budget == 0 ? 1 : byte_budget;
  while (stats_.bytes_in_use > byte_budget_ && entries_.size() > 1) {
    evict_lru_locked();
  }
}

std::size_t FlowCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

FlowCacheStats FlowCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void FlowCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t in_use = stats_.bytes_in_use;
  stats_ = FlowCacheStats{};
  stats_.bytes_in_use = in_use;
}

}  // namespace hermes::svc
