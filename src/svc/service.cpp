#include "svc/service.hpp"

#include <cstring>
#include <type_traits>
#include <utility>

#include "hls/eucalyptus.hpp"
#include "nxmap/device.hpp"

namespace hermes::svc {

namespace {

/// The cached product of the characterize stage: the sweep points plus the
/// Bambu-library XML rendering, which doubles as the integrity image.
struct Characterization {
  std::vector<hls::CharacterizationPoint> points;
  std::string xml;
};

void append_u64(std::vector<std::uint8_t>& image, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    image.push_back(static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
  }
}

void append_f64(std::vector<std::uint8_t>& image, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  append_u64(image, bits);
}

void append_str(std::vector<std::uint8_t>& image, std::string_view text) {
  append_u64(image, text.size());
  image.insert(image.end(), text.begin(), text.end());
}

std::vector<std::uint8_t> image_of_characterization(
    const Characterization& artifact) {
  std::vector<std::uint8_t> image;
  append_u64(image, artifact.points.size());
  append_str(image, artifact.xml);
  return image;
}

std::vector<std::uint8_t> image_of_flow(const hls::FlowResult& flow) {
  std::vector<std::uint8_t> image;
  append_u64(image, flow.fsmd.module.digest());
  append_u64(image, flow.fsm_states);
  append_u64(image, flow.ir_instrs_after);
  append_str(image, flow.verilog);
  return image;
}

std::vector<std::uint8_t> image_of_map(const nx::MapResult& map) {
  std::vector<std::uint8_t> image;
  append_u64(image, map.synthesized.digest());
  append_u64(image, map.mapped.utilization.luts);
  append_u64(image, map.mapped.utilization.ffs);
  append_u64(image, map.mapped.utilization.dsps);
  append_u64(image, map.mapped.utilization.brams);
  append_f64(image, map.timing.critical_path_ns);
  append_f64(image, map.timing.fmax_mhz);
  append_f64(image, map.timing.slack_ns);
  append_f64(image, map.power.total_mw);
  append_u64(image, map.route_iterations);
  return image;
}

std::vector<std::uint8_t> image_of_pack(const nx::PackResult& pack) {
  return pack.bitstream;  // the raw image IS the artifact
}

}  // namespace

CompileService::CompileService(ServiceOptions options)
    : options_(std::move(options)),
      cache_(options_.cache_bytes),
      pool_(options_.workers) {
  if (options_.injector != nullptr) cache_.attach_injector(options_.injector);
}

void CompileService::set_tenant_weight(const std::string& tenant,
                                       unsigned weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  tenants_[tenant].weight = weight == 0 ? 1 : weight;
}

std::uint64_t CompileService::submit(CompileRequest request) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = jobs_.size();
  auto record = std::make_unique<JobRecord>();
  record->request = std::move(request);
  record->outcome.tenant = record->request.tenant;
  record->outcome.job_id = id;
  Tenant& tenant = tenants_[record->request.tenant];
  tenant.pending.push_back(id);
  ++tenant.submitted;
  ++stats_.submitted;
  jobs_.push_back(std::move(record));
  return id;
}

bool CompileService::cancel(std::uint64_t job_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (job_id >= jobs_.size()) return false;
  JobRecord& record = *jobs_[job_id];
  if (record.done) return false;
  record.cancelled.store(true, std::memory_order_relaxed);
  return true;
}

std::uint64_t CompileService::pop_wfq_locked() {
  // Pick the tenant minimizing (served + 1) / weight; exact integer
  // cross-multiply, first-in-map-order (lexicographic) on ties.
  Tenant* best = nullptr;
  for (auto& [name, tenant] : tenants_) {
    if (tenant.pending.empty()) continue;
    if (best == nullptr ||
        (tenant.served + 1) * best->weight < (best->served + 1) * tenant.weight) {
      best = &tenant;
    }
  }
  if (best == nullptr) return kNoJob;
  const std::uint64_t id = best->pending.front();
  best->pending.pop_front();
  ++best->served;
  ++best->dispatched;
  return id;
}

bool CompileService::run_next() {
  JobRecord* record = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t id = pop_wfq_locked();
    if (id == kNoJob) return false;
    record = jobs_[id].get();
    record->outcome.dispatch_index = dispatch_counter_++;
  }
  execute(*record);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    record->done = true;
    ++stats_.completed;
    switch (record->outcome.status.code()) {
      case ErrorCode::kOk: ++stats_.succeeded; break;
      case ErrorCode::kCancelled: ++stats_.cancelled; break;
      case ErrorCode::kDeadlineExceeded: ++stats_.deadline_exceeded; break;
      default: ++stats_.failed; break;
    }
  }
  return true;
}

void CompileService::drain() {
  pool_.run_queue([this] { return run_next(); });
}

void CompileService::execute(JobRecord& record) {
  const CompileRequest& req = record.request;
  CompileOutcome& out = record.outcome;

  // Pre-stage gate: cancellation then budget, in that order. Returns false
  // when the job must stop; `out.status` explains why.
  const auto enter_stage = [&](Stage stage) {
    if (record.cancelled.load(std::memory_order_relaxed)) {
      out.status = Status::Error(ErrorCode::kCancelled, "job cancelled");
      return false;
    }
    if (out.cycles_charged >= req.cycle_budget) {
      out.status = Status::Error(
          ErrorCode::kDeadlineExceeded,
          "cycle budget exhausted before " + std::string(to_string(stage)));
      return false;
    }
    if (options_.stage_hook) options_.stage_hook(out.job_id, req, stage);
    return true;
  };
  const auto charge = [&](Stage stage, std::uint64_t key, bool hit,
                          std::uint64_t cycles) {
    out.stages.push_back(StageTrace{stage, key, hit, cycles});
    out.cycles_charged += cycles;
  };
  // Cache fetch with waiter fallback: a requester that parked on another
  // job's compute and got null (the compiler failed or was cancelled) retries
  // and becomes the compiler itself, so one tenant's cancellation can never
  // fail a neighbour's job.
  const auto fetch = [&](Stage stage, std::uint64_t key, auto&& compute,
                         auto&& image_of, bool* hit) {
    using Artifact = std::remove_const_t<
        typename std::decay_t<decltype(compute())>::element_type>;
    std::shared_ptr<const Artifact> value;
    for (;;) {
      bool waiter = false;
      value = cache_.get_or_compute<Artifact>(stage, key, compute, image_of,
                                              hit, &waiter);
      if (value != nullptr || !waiter) break;
    }
    return value;
  };

  // ---- stage 0: characterize ----------------------------------------------
  if (req.characterize) {
    if (!enter_stage(Stage::kCharacterize)) return;
    const std::uint64_t key =
        characterize_key(req.flow.target, options_.sweep);
    bool hit = false;
    auto artifact = fetch(
        Stage::kCharacterize, key,
        [&]() -> std::shared_ptr<const Characterization> {
          auto made = std::make_shared<Characterization>();
          hls::TechLibrary lib(req.flow.target);
          made->points = hls::run_sweep(lib, options_.sweep, &sweep_pool_);
          made->xml = hls::to_xml(req.flow.target, made->points);
          return made;
        },
        image_of_characterization, &hit);
    if (artifact == nullptr) {
      out.status = Status::Error(ErrorCode::kInternal,
                                 "characterization sweep produced nothing");
      charge(Stage::kCharacterize, key, false, 0);
      return;
    }
    out.characterization_points = artifact->points.size();
    charge(Stage::kCharacterize, key, hit,
           hit ? cost::kHitCycles : cost::characterize(artifact->points.size()));
  }

  // ---- stage 1: schedule (source-level jobs only) -------------------------
  std::shared_ptr<const hw::Module> module = req.module;
  std::shared_ptr<const hls::FlowResult> flow;
  if (!req.source.empty()) {
    if (!enter_stage(Stage::kSchedule)) return;
    const std::uint64_t key = schedule_key(req.source, req.flow);
    bool hit = false;
    Status stage_status = Status::Ok();
    flow = fetch(
        Stage::kSchedule, key,
        [&]() -> std::shared_ptr<const hls::FlowResult> {
          auto scheduled = hls::run_flow_schedule(req.source, req.flow);
          if (!scheduled.ok()) {
            stage_status = scheduled.status();
            return nullptr;
          }
          // Mid-stage cancellation point: between scheduling/binding and
          // datapath generation. An aborted compute inserts nothing.
          if (record.cancelled.load(std::memory_order_relaxed)) {
            stage_status = Status::Error(ErrorCode::kCancelled,
                                         "job cancelled mid-schedule");
            return nullptr;
          }
          auto finished = hls::finish_flow(std::move(scheduled.value()));
          if (!finished.ok()) {
            stage_status = finished.status();
            return nullptr;
          }
          return std::make_shared<hls::FlowResult>(
              std::move(finished.value()));
        },
        image_of_flow, &hit);
    if (flow == nullptr) {
      out.status = stage_status.ok()
                       ? Status::Error(ErrorCode::kInternal,
                                       "schedule stage produced nothing")
                       : stage_status;
      charge(Stage::kSchedule, key, false, 0);
      return;
    }
    out.netlist_digest = flow->fsmd.module.digest();
    out.fsm_states = flow->fsm_states;
    charge(Stage::kSchedule, key, hit,
           hit ? cost::kHitCycles : cost::schedule(req.source.size(), *flow));
    // Aliasing share: the module lives inside the cached FlowResult.
    module = std::shared_ptr<const hw::Module>(flow, &flow->fsmd.module);
  }

  if (module == nullptr) {
    out.status = Status::Error(ErrorCode::kInvalidArgument,
                               "request carries neither source nor netlist");
    return;
  }
  if (out.netlist_digest == 0) out.netlist_digest = module->digest();

  // ---- stage 2: map -------------------------------------------------------
  if (!enter_stage(Stage::kMap)) return;
  const nx::NxDevice device = nx::make_device(req.flow.target);
  const std::uint64_t map_stage_key =
      map_key(module->digest(), req.flow.target, req.backend);
  bool map_hit = false;
  Status map_status = Status::Ok();
  auto map = fetch(
      Stage::kMap, map_stage_key,
      [&]() -> std::shared_ptr<const nx::MapResult> {
        auto mapped = nx::run_backend_map(*module, device, req.backend);
        if (!mapped.ok()) {
          map_status = mapped.status();
          return nullptr;
        }
        return std::make_shared<nx::MapResult>(std::move(mapped.value()));
      },
      image_of_map, &map_hit);
  if (map == nullptr) {
    out.status = map_status.ok()
                     ? Status::Error(ErrorCode::kInternal,
                                     "map stage produced nothing")
                     : map_status;
    charge(Stage::kMap, map_stage_key, false, 0);
    return;
  }
  out.timing = map->timing;
  out.power_total_mw = map->power.total_mw;
  charge(Stage::kMap, map_stage_key, map_hit,
         map_hit ? cost::kHitCycles : cost::map(*map));

  // ---- stage 3: bitstream -------------------------------------------------
  if (!enter_stage(Stage::kBitstream)) return;
  const std::uint64_t pack_key = bitstream_key(map_stage_key);
  bool pack_hit = false;
  Status pack_status = Status::Ok();
  auto pack = fetch(
      Stage::kBitstream, pack_key,
      [&]() -> std::shared_ptr<const nx::PackResult> {
        auto packed = nx::pack_backend(*map, device);
        if (!packed.ok()) {
          pack_status = packed.status();
          return nullptr;
        }
        return std::make_shared<nx::PackResult>(std::move(packed.value()));
      },
      image_of_pack, &pack_hit);
  if (pack == nullptr) {
    out.status = pack_status.ok()
                     ? Status::Error(ErrorCode::kInternal,
                                     "bitstream stage produced nothing")
                     : pack_status;
    charge(Stage::kBitstream, pack_key, false, 0);
    return;
  }
  out.bitstream = pack->bitstream;
  charge(Stage::kBitstream, pack_key, pack_hit,
         pack_hit ? cost::kHitCycles : cost::bitstream(pack->bitstream.size()));
  out.status = Status::Ok();
}

const CompileOutcome& CompileService::outcome(std::uint64_t job_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.at(job_id)->outcome;
}

std::vector<CompileOutcome> CompileService::run(
    std::vector<CompileRequest> requests) {
  std::vector<std::uint64_t> ids;
  ids.reserve(requests.size());
  for (auto& request : requests) ids.push_back(submit(std::move(request)));
  drain();
  std::vector<CompileOutcome> outcomes;
  outcomes.reserve(ids.size());
  for (const std::uint64_t id : ids) outcomes.push_back(outcome(id));
  return outcomes;
}

ServiceStats CompileService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<TenantStats> CompileService::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantStats> all;
  all.reserve(tenants_.size());
  for (const auto& [name, tenant] : tenants_) {
    TenantStats stats;
    stats.tenant = name;
    stats.weight = tenant.weight;
    stats.submitted = tenant.submitted;
    stats.dispatched = tenant.dispatched;
    all.push_back(std::move(stats));
  }
  return all;
}

}  // namespace hermes::svc
