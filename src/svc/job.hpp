// Compile-service job vocabulary: requests, outcomes, stage keys and the
// deterministic cycle-cost model.
//
// The HLS+NXmap flow is recast as a four-stage pipeline —
//   characterize -> schedule -> map -> bitstream
// — where every stage's product is content-addressed by an FNV-1a digest of
// everything that can change it (source bytes, constraint fields, target
// model, backend options, upstream netlist digest). Key derivation is
// deliberately field-by-field: adding a knob to FlowOptions/BackendOptions
// without hashing it here would silently serve stale artifacts, which is why
// test_svc_cache mutates every field one at a time and asserts the key moves.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"
#include "hls/eucalyptus.hpp"
#include "hls/flow.hpp"
#include "hw/netlist.hpp"
#include "nxmap/flow.hpp"

namespace hermes::svc {

/// The stage pipeline, in execution order. A warm prefix (every stage up to
/// some point cached) skips straight to the first cold stage.
enum class Stage {
  kCharacterize = 0,  ///< Eucalyptus sweep for the target (shared per target)
  kSchedule,          ///< front-end + middle-end + scheduled/bound CDFG + FSMD
  kMap,               ///< techmap + place + route + STA + power
  kBitstream,         ///< packed, self-verified programming image
  kCount,
};

const char* to_string(Stage stage);

/// FNV-1a accumulator for stage-key derivation. Length-prefixes strings and
/// byte spans so concatenations cannot alias ("ab"+"c" vs "a"+"bc").
class KeyBuilder {
 public:
  explicit KeyBuilder(std::uint64_t domain_tag) { u64(domain_tag); }

  KeyBuilder& u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ ((value >> (8 * i)) & 0xFF)) * 1099511628211ULL;
    }
    return *this;
  }
  KeyBuilder& f64(double value) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return u64(bits);
  }
  KeyBuilder& str(std::string_view text) {
    u64(text.size());
    for (const char c : text) {
      hash_ = (hash_ ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const { return hash_; }

 private:
  std::uint64_t hash_ = 14695981039346656037ULL;
};

/// One compile job. Source-level jobs carry a C kernel through the full
/// flow; netlist-level jobs (source empty, module set) enter at the map
/// stage — the shape DSE drivers and the fuzz oracles use.
struct CompileRequest {
  std::string tenant = "default";
  std::string source;
  std::shared_ptr<const hw::Module> module;  ///< netlist-level entry point
  hls::FlowOptions flow;                     ///< top/constraints/target
  nx::BackendOptions backend;
  bool characterize = true;  ///< run (and cache) the Eucalyptus stage
  /// Deterministic cost budget; the job returns kDeadlineExceeded with
  /// partial stats once the charged cycles reach it.
  std::uint64_t cycle_budget = ~0ULL;
};

/// What one stage of one job did (audit trail; `cycles` is what the stage
/// charged against the budget — kHitCycles when it was served from cache).
struct StageTrace {
  Stage stage = Stage::kCharacterize;
  std::uint64_t key = 0;
  bool hit = false;
  std::uint64_t cycles = 0;
};

struct CompileOutcome {
  Status status;
  std::string tenant;
  std::uint64_t job_id = 0;
  /// Global dispatch slot assigned by the weighted-fair queue. Deterministic
  /// for a fixed submission set regardless of worker count.
  unsigned dispatch_index = 0;
  std::vector<StageTrace> stages;
  std::uint64_t cycles_charged = 0;

  // ---- artifacts (identical warm or cold — the cache-oracle invariant) ----
  std::size_t characterization_points = 0;
  std::uint64_t netlist_digest = 0;  ///< hw::Module::digest() of the design
  unsigned fsm_states = 0;
  nx::TimingReport timing;
  double power_total_mw = 0.0;
  std::vector<std::uint8_t> bitstream;

  /// FNV fingerprint over the semantic artifacts only (status code, netlist
  /// digest, FSM states, timing/power bits, bitstream bytes) — never over
  /// stats, cycles or hit flags, so a warm run fingerprints identically to
  /// its cold oracle and a pooled run to its serial one.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

// ---- stage-key derivation -------------------------------------------------

std::uint64_t characterize_key(const hls::FpgaTarget& target,
                               const hls::SweepConfig& sweep);
std::uint64_t schedule_key(std::string_view source,
                           const hls::FlowOptions& options);
std::uint64_t map_key(std::uint64_t module_digest,
                      const hls::FpgaTarget& target,
                      const nx::BackendOptions& options);
std::uint64_t bitstream_key(std::uint64_t map_stage_key);

// ---- deterministic cycle-cost model ---------------------------------------
//
// Cycle costs are derived from artifact sizes, never wall clock, so budgets
// behave identically serial vs pooled and across machines.

namespace cost {

inline constexpr std::uint64_t kHitCycles = 1;  ///< cache hit, any stage

std::uint64_t characterize(std::size_t grid_points);
std::uint64_t schedule(std::size_t source_bytes, const hls::FlowResult& flow);
std::uint64_t map(const nx::MapResult& map);
std::uint64_t bitstream(std::size_t image_bytes);

}  // namespace cost

}  // namespace hermes::svc
