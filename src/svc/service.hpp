// Multi-tenant compile service: a weighted-fair job queue over the
// threadpool, draining source- and netlist-level compile jobs through the
// content-addressed FlowCache.
//
// Scheduling: classic weighted fair queueing per tenant. Each tenant t with
// weight w_t owns a FIFO of pending jobs; the dispatcher always pops the
// tenant minimizing (served_t + 1) / w_t, compared exactly by integer
// cross-multiplication, ties broken by tenant name. The pop sequence — and
// therefore every job's dispatch_index — depends only on the submitted set,
// never on worker count or timing, so a pooled drain dispatches in the same
// order the serial one does.
//
// Budgets and cancellation: every job charges deterministic cycle costs per
// stage (svc/job.hpp) and stops with kDeadlineExceeded once the budget is
// reached, keeping the partial stage trace. cancel() marks a job; the mark
// is honored between stages and at the mid-points inside the schedule
// stage, and an aborted compute never inserts into the cache.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/threadpool.hpp"
#include "svc/cache.hpp"
#include "svc/job.hpp"

namespace hermes::svc {

struct ServiceOptions {
  /// Worker threads of the service's own pool; 0 drains inline — the serial
  /// reference the soak suite fingerprints pooled runs against.
  unsigned workers = 0;
  std::size_t cache_bytes = FlowCache::kDefaultByteBudget;
  /// Characterization grid cached (and shared) per target.
  hls::SweepConfig sweep;
  /// Arms svc.cache.{entry.rot,evict.storm} on the cache.
  fault::FaultInjector* injector = nullptr;
  /// Test observability: invoked as each stage of a job begins, after the
  /// cancellation/budget check — a hook that cancels its own job therefore
  /// exercises the mid-stage abort path, not the pre-stage check.
  std::function<void(std::uint64_t job, const CompileRequest&, Stage)>
      stage_hook;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_exceeded = 0;
  std::uint64_t failed = 0;  ///< any other non-ok outcome
};

struct TenantStats {
  std::string tenant;
  unsigned weight = 1;
  std::uint64_t submitted = 0;
  std::uint64_t dispatched = 0;
};

class CompileService {
 public:
  explicit CompileService(ServiceOptions options = {});

  /// Weights apply from the next pop; unknown tenants default to weight 1.
  void set_tenant_weight(const std::string& tenant, unsigned weight);

  /// Enqueues a job; returns its id. Jobs run on the next drain().
  std::uint64_t submit(CompileRequest request);

  /// Marks a job cancelled. True if it had not finished yet; the mark takes
  /// effect at the job's next stage boundary (or before it starts).
  bool cancel(std::uint64_t job_id);

  /// Runs every pending job to completion over the service pool (inline
  /// when workers == 0). Deterministic dispatch order; see file comment.
  void drain();

  /// Outcome of a finished job (call after drain()).
  [[nodiscard]] const CompileOutcome& outcome(std::uint64_t job_id) const;

  /// submit() all, drain(), and return outcomes in submission order.
  std::vector<CompileOutcome> run(std::vector<CompileRequest> requests);

  FlowCache& cache() { return cache_; }
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::vector<TenantStats> tenant_stats() const;

 private:
  struct JobRecord {
    CompileRequest request;
    std::atomic<bool> cancelled{false};
    CompileOutcome outcome;
    bool done = false;
  };
  struct Tenant {
    unsigned weight = 1;
    std::uint64_t served = 0;  ///< jobs dispatched (drives the WFQ key)
    std::deque<std::uint64_t> pending;
    std::uint64_t submitted = 0;
    std::uint64_t dispatched = 0;
  };

  bool run_next();  ///< pop + execute one job; false when the queue is empty
  std::uint64_t pop_wfq_locked();  ///< kNoJob when nothing is pending
  void execute(JobRecord& record);

  static constexpr std::uint64_t kNoJob = ~0ULL;

  ServiceOptions options_;
  FlowCache cache_;
  ThreadPool pool_;
  ThreadPool sweep_pool_{0};  ///< characterizations run inline per worker

  mutable std::mutex mutex_;
  std::map<std::string, Tenant> tenants_;  ///< ordered: deterministic ties
  std::vector<std::unique_ptr<JobRecord>> jobs_;
  unsigned dispatch_counter_ = 0;
  ServiceStats stats_;
};

}  // namespace hermes::svc
