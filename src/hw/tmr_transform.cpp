#include "hw/tmr_transform.hpp"

#include "common/strings.hpp"

namespace hermes::hw {

Module tmr_transform(const Module& module, TmrStats* stats,
                     const TmrOptions& options) {
  Module hardened(module.name() + "_tmr");

  // Mirror the wire table so all existing ids remain valid in the copy.
  for (WireId wire = 0; wire < module.wire_count(); ++wire) {
    hardened.add_wire(module.wire_width(wire), module.wire_name(wire));
  }
  for (const Port& port : module.ports()) {
    if (port.is_input) {
      hardened.add_input(port.wire, port.name);
    } else {
      hardened.add_output(port.wire, port.name);
    }
  }
  for (const Memory& memory : module.memories()) {
    hardened.add_memory(memory);
  }

  TmrStats local;
  for (const Cell& cell : module.cells()) {
    if (cell.kind != CellKind::kRegister) {
      hardened.add_cell(cell);
      continue;
    }

    // Triplicate: three replicas share d and en; the original q wire is
    // re-driven by a bitwise 2-of-3 majority of the replicas.
    const WireId q = cell.outputs[0];
    const unsigned width = module.wire_width(q);
    const std::string base =
        cell.name.empty() ? module.wire_name(q) : cell.name;
    WireId replica[3];
    for (int r = 0; r < 3; ++r) {
      Cell ff = cell;
      ff.name = format("%s_tmr%d", base.c_str(), r);
      ff.outputs = {hardened.add_wire(width, ff.name)};
      if (options.self_healing) {
        // d' = en ? d : voted(q); en' = 1 — idle cycles re-register the
        // voted value, flushing any replica upset at the next edge.
        const WireId healed =
            hardened.make_mux(cell.inputs[1], /*if0=*/q, /*if1=*/cell.inputs[0],
                              format("%s_heal%d", base.c_str(), r));
        ff.inputs = {healed,
                     hardened.make_const(1, 1, format("%s_en1_%d", base.c_str(), r))};
      }
      replica[r] = ff.outputs[0];
      hardened.add_cell(std::move(ff));
    }
    const WireId ab = hardened.make_binop(CellKind::kAnd, replica[0],
                                          replica[1], width);
    const WireId ac = hardened.make_binop(CellKind::kAnd, replica[0],
                                          replica[2], width);
    const WireId bc = hardened.make_binop(CellKind::kAnd, replica[1],
                                          replica[2], width);
    const WireId ab_ac = hardened.make_binop(CellKind::kOr, ab, ac, width);
    Cell vote;
    vote.kind = CellKind::kOr;
    vote.inputs = {ab_ac, bc};
    vote.outputs = {q};  // drive the original wire: consumers untouched
    vote.name = format("%s_voter", base.c_str());
    hardened.add_cell(std::move(vote));

    ++local.registers_triplicated;
    local.voter_cells += 5;
    local.added_ffs_bits += 2u * width;
  }

  if (stats) *stats = local;
  return hardened;
}

}  // namespace hermes::hw
