// Verilog-2001 emitter for hw::Module.
//
// Bambu's back-end "generates HDL code ready to be used in a commercial FPGA
// design tool"; this emitter produces the equivalent artifact from our
// netlist so users can inspect the generated accelerator or feed it to an
// external flow. The AXI-generated interface code in the real tool is
// Verilog-only, which this emitter mirrors (no VHDL back-end).
#pragma once

#include <string>

#include "hw/netlist.hpp"

namespace hermes::hw {

/// Renders the module as synthesizable Verilog with an implicit `clk` /
/// synchronous active-high `rst` pair driving all sequential cells.
std::string emit_verilog(const Module& module);

}  // namespace hermes::hw
