// Netlist-level triple modular redundancy.
//
// NG-ULTRA provides "triple modular redundancy ... completely transparent to
// the application developer" (HERMES, Sec. I). This pass is that mechanism
// at the netlist level, the way rad-hard synthesis flows implement it:
// every register is triplicated and its consumers read a bitwise 2-of-3
// majority vote of the three replicas, so any single-event upset in one
// flip-flop is masked within the same cycle and self-corrects at the next
// enable (the voted value is what gets re-registered).
//
// Scope: flip-flop TMR (the dominant SEU target). Combinational logic and
// RAM contents are not triplicated — RAM protection is the EDAC domain
// (fault/edac.hpp), and comb upsets are transients that the next clock edge
// flushes.
#pragma once

#include "hw/netlist.hpp"

namespace hermes::hw {

struct TmrOptions {
  /// Self-healing (feedback) voters: when a register is not being written,
  /// its replicas re-register the *voted* value every cycle, so a replica
  /// upset heals at the next clock edge instead of lingering until the next
  /// functional write. Costs one mux per register d-input; removes the
  /// accumulated-double-upset failure mode of plain FF-TMR.
  bool self_healing = false;
};

struct TmrStats {
  std::size_t registers_triplicated = 0;
  std::size_t voter_cells = 0;   ///< majority gates inserted
  std::size_t added_ffs_bits = 0;///< extra storage bits (2x original)
};

/// Returns a TMR-hardened copy of `module`: identical ports and behaviour,
/// every kRegister triplicated + voted. `stats` (optional) reports the cost.
Module tmr_transform(const Module& module, TmrStats* stats = nullptr,
                     const TmrOptions& options = {});

}  // namespace hermes::hw
