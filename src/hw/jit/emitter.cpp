#include "hw/jit/emitter.hpp"

#include <cstdint>
#include <limits>

#include "common/bits.hpp"

namespace hermes::hw::jit {

namespace {

// Register numbers (x86-64).
constexpr int kRax = 0;
constexpr int kRcx = 1;
constexpr int kRdx = 2;
constexpr int kRdi = 7;  // values base pointer (function argument)
constexpr int kR11 = 11; // accumulator save
constexpr int kR12 = 12; // pinned slot 0 (slots are R12 + slot)

// Condition codes for setcc / cmovcc / jcc.
constexpr std::uint8_t kCcB = 0x2;   // below (unsigned <)
constexpr std::uint8_t kCcAe = 0x3;  // above-or-equal (unsigned >=)
constexpr std::uint8_t kCcE = 0x4;   // equal / zero
constexpr std::uint8_t kCcNe = 0x5;  // not equal / not zero
constexpr std::uint8_t kCcBe = 0x6;  // below-or-equal (unsigned <=)
constexpr std::uint8_t kCcA = 0x7;   // above (unsigned >)
constexpr std::uint8_t kCcL = 0xC;   // less (signed <)
constexpr std::uint8_t kCcLe = 0xE;  // less-or-equal (signed <=)

// ALU opcodes, "reg, r/m" direction, with the /digit for the imm32 form.
struct AluOp { std::uint8_t opcode; std::uint8_t digit; };
constexpr AluOp kAdd{0x03, 0};
constexpr AluOp kOr{0x0B, 1};
constexpr AluOp kAnd{0x23, 4};
constexpr AluOp kSub{0x2B, 5};
constexpr AluOp kXor{0x33, 6};
constexpr AluOp kCmp{0x3B, 7};

// Shift /digit values for the D3 (cl) and C1 (imm8) groups.
constexpr std::uint8_t kShlDigit = 4;
constexpr std::uint8_t kShrDigit = 5;
constexpr std::uint8_t kSarDigit = 7;

bool fits_int32(std::uint64_t value) {
  const auto wide = static_cast<std::int64_t>(value);
  return wide == static_cast<std::int64_t>(static_cast<std::int32_t>(wide));
}

/// Byte-level assembler over a growing code vector. All 64-bit forms; the
/// only 32-bit operations are the deliberate zero-extension idioms.
class Asm {
 public:
  explicit Asm(std::vector<std::uint8_t>& code) : code_(code) {}

  void u8(std::uint8_t byte) { code_.push_back(byte); }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(value >> (8 * i)));
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(value >> (8 * i)));
  }

  void rex(bool w, int reg, int rm) {
    u8(static_cast<std::uint8_t>(0x40 | (w ? 8 : 0) | ((reg >= 8) ? 4 : 0) |
                                 ((rm >= 8) ? 1 : 0)));
  }
  void modrm(int mod, int reg, int rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }

  /// ModRM memory operand [rdi + disp] (RDI never needs a SIB byte).
  void mem_rdi(int reg, std::int32_t disp) {
    if (disp == 0) {
      modrm(0, reg, kRdi);
    } else if (disp >= -128 && disp <= 127) {
      modrm(1, reg, kRdi);
      u8(static_cast<std::uint8_t>(disp));
    } else {
      modrm(2, reg, kRdi);
      u32(static_cast<std::uint32_t>(disp));
    }
  }

  void mov_load(int reg, std::int32_t disp) {  // mov reg, [rdi+disp]
    rex(true, reg, kRdi);
    u8(0x8B);
    mem_rdi(reg, disp);
  }
  void mov_store(int reg, std::int32_t disp) {  // mov [rdi+disp], reg
    rex(true, reg, kRdi);
    u8(0x89);
    mem_rdi(reg, disp);
  }
  void movsxd_load(int reg, std::int32_t disp) {  // movsxd reg, dword[rdi+disp]
    rex(true, reg, kRdi);
    u8(0x63);
    mem_rdi(reg, disp);
  }
  void mov_reg(int dst, int src) {
    rex(true, dst, src);
    u8(0x8B);
    modrm(3, dst, src);
  }
  void mov_imm(int reg, std::uint64_t value) {
    if (value <= 0xFFFFFFFFULL) {
      if (reg >= 8) u8(0x41);
      u8(static_cast<std::uint8_t>(0xB8 | (reg & 7)));  // zero-extends
      u32(static_cast<std::uint32_t>(value));
    } else if (fits_int32(value)) {
      rex(true, 0, reg);
      u8(0xC7);
      modrm(3, 0, reg);
      u32(static_cast<std::uint32_t>(value));
    } else {
      rex(true, 0, reg);
      u8(static_cast<std::uint8_t>(0xB8 | (reg & 7)));
      u64(value);
    }
  }

  void alu_mem(AluOp op, int reg, std::int32_t disp) {  // op reg, [rdi+disp]
    rex(true, reg, kRdi);
    u8(op.opcode);
    mem_rdi(reg, disp);
  }
  void alu_reg(AluOp op, int dst, int src) {
    rex(true, dst, src);
    u8(op.opcode);
    modrm(3, dst, src);
  }
  void alu_imm(AluOp op, int reg, std::int32_t imm) {
    rex(true, 0, reg);
    u8(0x81);
    modrm(3, op.digit, reg);
    u32(static_cast<std::uint32_t>(imm));
  }

  void imul_mem(int reg, std::int32_t disp) {  // imul reg, [rdi+disp]
    rex(true, reg, kRdi);
    u8(0x0F);
    u8(0xAF);
    mem_rdi(reg, disp);
  }
  void imul_reg(int dst, int src) {
    rex(true, dst, src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, dst, src);
  }
  void imul_imm(int dst, int src, std::int32_t imm) {  // imul dst, src, imm32
    rex(true, dst, src);
    u8(0x69);
    modrm(3, dst, src);
    u32(static_cast<std::uint32_t>(imm));
  }

  void unary(std::uint8_t digit, int reg) {  // F7 group: not (/2), neg (/3)
    rex(true, 0, reg);
    u8(0xF7);
    modrm(3, digit, reg);
  }
  void shift_cl(std::uint8_t digit, int reg) {
    rex(true, 0, reg);
    u8(0xD3);
    modrm(3, digit, reg);
  }
  void shift_imm(std::uint8_t digit, int reg, unsigned count) {
    rex(true, 0, reg);
    u8(0xC1);
    modrm(3, digit, reg);
    u8(static_cast<std::uint8_t>(count));
  }

  void test_reg(int a, int b) {  // test r/m(a), r(b)
    rex(true, b, a);
    u8(0x85);
    modrm(3, b, a);
  }
  void setcc_al(std::uint8_t cc) {
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x90 | cc));
    modrm(3, 0, kRax);
  }
  void movzx_eax_al() {
    u8(0x0F);
    u8(0xB6);
    modrm(3, kRax, kRax);
  }
  void cmovcc(std::uint8_t cc, int dst, int src) {
    rex(true, dst, src);
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x40 | cc));
    modrm(3, dst, src);
  }

  void cqo() { u8(0x48); u8(0x99); }
  void zero_edx() { u8(0x31); u8(0xD2); }  // xor edx, edx
  void zero_eax() { u8(0x31); u8(0xC0); }  // xor eax, eax
  void mov_eax_eax() { u8(0x89); u8(0xC0); }  // zero-extend low 32 bits
  void div_rcx() { u8(0x48); u8(0xF7); u8(0xF1); }
  void idiv_rcx() { u8(0x48); u8(0xF7); u8(0xF9); }

  /// Short forward branch; returns the rel8 patch position.
  std::size_t jcc8(std::uint8_t cc) {
    u8(static_cast<std::uint8_t>(0x70 | cc));
    u8(0);
    return code_.size() - 1;
  }
  std::size_t jmp8() {
    u8(0xEB);
    u8(0);
    return code_.size() - 1;
  }
  [[nodiscard]] bool patch(std::size_t pos) {
    const std::ptrdiff_t rel = static_cast<std::ptrdiff_t>(code_.size()) -
                               static_cast<std::ptrdiff_t>(pos) - 1;
    if (rel < -128 || rel > 127) return false;
    code_[pos] = static_cast<std::uint8_t>(rel);
    return true;
  }

  void push(int reg) {
    if (reg >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x50 | (reg & 7)));
  }
  void pop(int reg) {
    if (reg >= 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x58 | (reg & 7)));
  }
  void ret() { u8(0xC3); }

 private:
  std::vector<std::uint8_t>& code_;
};

/// Emits one MirBlock. Stateful wrapper so helpers can share the Asm.
class BlockEmitter {
 public:
  explicit BlockEmitter(const MirBlock& block, std::vector<std::uint8_t>& code)
      : block_(block), a_(code) {}

  [[nodiscard]] bool emit() {
    for (std::size_t i = 0; i < block_.pinned_count; ++i) {
      a_.push(kR12 + static_cast<int>(i));
    }
    for (std::size_t i = 0; i < block_.pinned_count; ++i) {
      std::int32_t disp = 0;
      if (!wire_disp(block_.pinned[i], &disp)) return false;
      a_.mov_load(kR12 + static_cast<int>(i), disp);
    }
    for (const MirInst& inst : block_.insts) {
      if (!emit_inst(inst)) return false;
    }
    for (std::size_t i = block_.pinned_count; i > 0; --i) {
      a_.pop(kR12 + static_cast<int>(i - 1));
    }
    a_.ret();
    return true;
  }

 private:
  static bool wire_disp(WireId wire, std::int32_t* disp) {
    const std::uint64_t offset = static_cast<std::uint64_t>(wire) * 8;
    if (offset > static_cast<std::uint64_t>(std::numeric_limits<std::int32_t>::max())) {
      return false;
    }
    *disp = static_cast<std::int32_t>(offset);
    return true;
  }

  /// Sign-extends the low `width` bits of `reg` in place.
  void sext_reg(int reg, unsigned width) {
    if (width >= 64) return;
    a_.shift_imm(kShlDigit, reg, 64 - width);
    a_.shift_imm(kSarDigit, reg, 64 - width);
  }

  [[nodiscard]] bool load_operand(const MirOperand& op, int target, bool sign) {
    switch (op.kind) {
      case MirOperandKind::kImm: {
        std::uint64_t value = op.imm;
        if (sign) {
          value = static_cast<std::uint64_t>(sign_extend(value, op.width));
        }
        a_.mov_imm(target, value);
        return true;
      }
      case MirOperandKind::kAcc:
        a_.mov_reg(target, kR11);
        if (sign) sext_reg(target, op.width);
        return true;
      case MirOperandKind::kReg:
        a_.mov_reg(target, kR12 + op.reg_slot);
        if (sign) sext_reg(target, op.width);
        return true;
      case MirOperandKind::kWire: {
        std::int32_t disp = 0;
        if (!wire_disp(op.wire, &disp)) return false;
        if (sign && op.width == 32) {
          a_.movsxd_load(target, disp);
        } else {
          a_.mov_load(target, disp);
          if (sign) sext_reg(target, op.width);
        }
        return true;
      }
    }
    return false;
  }

  /// rax = rax OP src2, using the direct memory / immediate forms when the
  /// operand allows it.
  [[nodiscard]] bool alu_src2(AluOp op, const MirOperand& src2) {
    switch (src2.kind) {
      case MirOperandKind::kWire: {
        std::int32_t disp = 0;
        if (!wire_disp(src2.wire, &disp)) return false;
        a_.alu_mem(op, kRax, disp);
        return true;
      }
      case MirOperandKind::kImm:
        if (fits_int32(src2.imm)) {
          a_.alu_imm(op, kRax, static_cast<std::int32_t>(src2.imm));
        } else {
          a_.mov_imm(kRcx, src2.imm);
          a_.alu_reg(op, kRax, kRcx);
        }
        return true;
      case MirOperandKind::kAcc:
        a_.alu_reg(op, kRax, kR11);
        return true;
      case MirOperandKind::kReg:
        a_.alu_reg(op, kRax, kR12 + src2.reg_slot);
        return true;
    }
    return false;
  }

  void mask_rax(unsigned width) {
    if (width >= 64) return;
    if (width == 32) {
      a_.mov_eax_eax();
    } else if (width < 32) {
      a_.alu_imm(kAnd, kRax, static_cast<std::int32_t>(bit_mask(width)));
    } else {
      a_.shift_imm(kShlDigit, kRax, 64 - width);
      a_.shift_imm(kShrDigit, kRax, 64 - width);
    }
  }

  [[nodiscard]] bool emit_compare(const MirInst& inst, std::uint8_t cc,
                                  bool sign) {
    if (!load_operand(inst.in[0], kRax, sign)) return false;
    if (!load_operand(inst.in[1], kRcx, sign)) return false;
    a_.alu_reg(kCmp, kRax, kRcx);
    a_.setcc_al(cc);
    a_.movzx_eax_al();
    return true;
  }

  /// shl/shr with netlist semantics: a shift count >= 64 yields 0 (x86 would
  /// silently use count mod 64).
  [[nodiscard]] bool emit_shift_u(const MirInst& inst, std::uint8_t digit) {
    if (!load_operand(inst.in[0], kRax, false)) return false;
    const MirOperand& count = inst.in[1];
    if (count.kind == MirOperandKind::kImm) {
      if (count.imm >= 64) {
        a_.zero_eax();
      } else if (count.imm > 0) {
        a_.shift_imm(digit, kRax, static_cast<unsigned>(count.imm));
      }
      return true;
    }
    if (!load_operand(count, kRcx, false)) return false;
    a_.shift_cl(digit, kRax);
    if (count.width >= 7) {  // count can reach 64 only with a >= 7-bit wire
      a_.zero_edx();
      a_.alu_imm(kCmp, kRcx, 64);
      a_.cmovcc(kCcAe, kRax, kRdx);
    }
    return true;
  }

  /// Arithmetic right shift: count saturates at 63 (the sign fills the word).
  [[nodiscard]] bool emit_shift_s(const MirInst& inst) {
    if (!load_operand(inst.in[0], kRax, true)) return false;
    const MirOperand& count = inst.in[1];
    if (count.kind == MirOperandKind::kImm) {
      const unsigned c =
          count.imm >= 63 ? 63u : static_cast<unsigned>(count.imm);
      if (c > 0) a_.shift_imm(kSarDigit, kRax, c);
      return true;
    }
    if (!load_operand(count, kRcx, false)) return false;
    if (count.width >= 7) {  // clamp only when the count wire can exceed 63
      a_.mov_imm(kRdx, 63);
      a_.alu_reg(kCmp, kRcx, kRdx);
      a_.cmovcc(kCcA, kRcx, kRdx);
    }
    a_.shift_cl(kSarDigit, kRax);
    return true;
  }

  /// div/rem with the netlist's total semantics: divide-by-zero produces
  /// all-ones (div) / the dividend (rem); signed divide by -1 negates (rem 0),
  /// which also sidesteps the INT64_MIN / -1 #DE fault of idiv.
  [[nodiscard]] bool emit_divrem(const MirInst& inst) {
    const bool sign =
        inst.kind == CellKind::kDivS || inst.kind == CellKind::kRemS;
    const bool rem =
        inst.kind == CellKind::kRemU || inst.kind == CellKind::kRemS;
    if (!load_operand(inst.in[0], kRax, sign)) return false;
    if (!load_operand(inst.in[1], kRcx, sign)) return false;
    a_.test_reg(kRcx, kRcx);
    if (!sign) {
      if (rem) {  // rem by 0 = dividend, already in rax
        const std::size_t skip = a_.jcc8(kCcE);
        a_.zero_edx();
        a_.div_rcx();
        a_.mov_reg(kRax, kRdx);
        return a_.patch(skip);
      }
      const std::size_t zero = a_.jcc8(kCcE);
      a_.zero_edx();
      a_.div_rcx();
      const std::size_t done = a_.jmp8();
      if (!a_.patch(zero)) return false;
      a_.mov_imm(kRax, ~0ULL);
      return a_.patch(done);
    }
    const std::size_t zero = a_.jcc8(kCcE);
    a_.alu_imm(kCmp, kRcx, -1);
    const std::size_t minus_one = a_.jcc8(kCcE);
    a_.cqo();
    a_.idiv_rcx();
    if (rem) a_.mov_reg(kRax, kRdx);
    const std::size_t done1 = a_.jmp8();
    if (!a_.patch(minus_one)) return false;
    if (rem) {
      a_.zero_eax();
    } else {
      a_.unary(3, kRax);  // neg: a / -1 = -a (mod 2^64)
    }
    if (rem) {
      // rem by 0 = sign-extended dividend (masked below), rem by -1 = 0.
      const std::size_t done2 = a_.jmp8();
      if (!a_.patch(zero)) return false;
      return a_.patch(done1) && a_.patch(done2);
    }
    const std::size_t done2 = a_.jmp8();
    if (!a_.patch(zero)) return false;
    a_.mov_imm(kRax, ~0ULL);
    return a_.patch(done1) && a_.patch(done2);
  }

  [[nodiscard]] bool emit_concat(const MirInst& inst) {
    if (inst.concat_count == 0) {
      a_.zero_eax();
      return true;
    }
    const MirOperand* operands = block_.concat_pool.data() + inst.concat_first;
    if (!load_operand(operands[0], kRax, false)) return false;
    unsigned shift = operands[0].width;
    for (std::uint32_t i = 1; i < inst.concat_count; ++i) {
      if (shift >= 64) break;  // further operands fall off the word
      if (!load_operand(operands[i], kRcx, false)) return false;
      if (shift > 0) a_.shift_imm(kShlDigit, kRcx, shift);
      a_.alu_reg(kOr, kRax, kRcx);
      shift += operands[i].width;
    }
    return true;
  }

  [[nodiscard]] bool emit_inst(const MirInst& inst) {
    bool uses_acc = false;
    if (inst.kind == CellKind::kConcat) {
      for (std::uint32_t i = 0; i < inst.concat_count; ++i) {
        uses_acc |= block_.concat_pool[inst.concat_first + i].kind ==
                    MirOperandKind::kAcc;
      }
    } else {
      for (std::uint8_t i = 0; i < inst.input_count; ++i) {
        uses_acc |= inst.in[i].kind == MirOperandKind::kAcc;
      }
    }
    if (uses_acc) a_.mov_reg(kR11, kRax);

    switch (inst.kind) {
      case CellKind::kConst:
        a_.mov_imm(kRax, inst.param & inst.out_mask);
        break;
      case CellKind::kAdd:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (!alu_src2(kAdd, inst.in[1])) return false;
        break;
      case CellKind::kSub:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (!alu_src2(kSub, inst.in[1])) return false;
        break;
      case CellKind::kAnd:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (!alu_src2(kAnd, inst.in[1])) return false;
        break;
      case CellKind::kOr:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (!alu_src2(kOr, inst.in[1])) return false;
        break;
      case CellKind::kXor:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (!alu_src2(kXor, inst.in[1])) return false;
        break;
      case CellKind::kMul: {
        if (!load_operand(inst.in[0], kRax, false)) return false;
        const MirOperand& b = inst.in[1];
        switch (b.kind) {
          case MirOperandKind::kWire: {
            std::int32_t disp = 0;
            if (!wire_disp(b.wire, &disp)) return false;
            a_.imul_mem(kRax, disp);
            break;
          }
          case MirOperandKind::kImm:
            if (fits_int32(b.imm)) {
              a_.imul_imm(kRax, kRax, static_cast<std::int32_t>(b.imm));
            } else {
              a_.mov_imm(kRcx, b.imm);
              a_.imul_reg(kRax, kRcx);
            }
            break;
          case MirOperandKind::kAcc:
            a_.imul_reg(kRax, kR11);
            break;
          case MirOperandKind::kReg:
            a_.imul_reg(kRax, kR12 + b.reg_slot);
            break;
        }
        break;
      }
      case CellKind::kDivU:
      case CellKind::kDivS:
      case CellKind::kRemU:
      case CellKind::kRemS:
        if (!emit_divrem(inst)) return false;
        break;
      case CellKind::kNot:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        a_.unary(2, kRax);  // not
        break;
      case CellKind::kShl:
        if (!emit_shift_u(inst, kShlDigit)) return false;
        break;
      case CellKind::kShrU:
        if (!emit_shift_u(inst, kShrDigit)) return false;
        break;
      case CellKind::kShrS:
        if (!emit_shift_s(inst)) return false;
        break;
      case CellKind::kEq:
        if (!emit_compare(inst, kCcE, false)) return false;
        break;
      case CellKind::kNe:
        if (!emit_compare(inst, kCcNe, false)) return false;
        break;
      case CellKind::kLtU:
        if (!emit_compare(inst, kCcB, false)) return false;
        break;
      case CellKind::kLtS:
        if (!emit_compare(inst, kCcL, true)) return false;
        break;
      case CellKind::kLeU:
        if (!emit_compare(inst, kCcBe, false)) return false;
        break;
      case CellKind::kLeS:
        if (!emit_compare(inst, kCcLe, true)) return false;
        break;
      case CellKind::kMux:
        if (!load_operand(inst.in[0], kRcx, false)) return false;
        if (!load_operand(inst.in[1], kRax, false)) return false;
        if (!load_operand(inst.in[2], kRdx, false)) return false;
        a_.test_reg(kRcx, kRcx);
        a_.cmovcc(kCcNe, kRax, kRdx);
        break;
      case CellKind::kZext:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        break;
      case CellKind::kSext:
        if (!load_operand(inst.in[0], kRax, true)) return false;
        break;
      case CellKind::kSlice:
        if (!load_operand(inst.in[0], kRax, false)) return false;
        if (inst.param >= 64) {
          a_.zero_eax();
        } else if (inst.param > 0) {
          a_.shift_imm(kShrDigit, kRax, static_cast<unsigned>(inst.param));
        }
        break;
      case CellKind::kConcat:
        if (!emit_concat(inst)) return false;
        break;
      case CellKind::kRegister:
      case CellKind::kRamRead:
      case CellKind::kRamWrite:
        return false;  // sequential cells never reach the comb table
    }

    if (inst.mask_result) mask_rax(inst.out_width);

    std::int32_t out_disp = 0;
    if (!wire_disp(inst.out, &out_disp)) return false;
    a_.mov_store(kRax, out_disp);
    if (inst.out_reg_slot >= 0) a_.mov_reg(kR12 + inst.out_reg_slot, kRax);
    return true;
  }

  const MirBlock& block_;
  Asm a_;
};

}  // namespace

bool emit_block(const MirBlock& block, std::vector<std::uint8_t>& code) {
  BlockEmitter emitter(block, code);
  return emitter.emit();
}

}  // namespace hermes::hw::jit
