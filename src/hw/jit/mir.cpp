#include "hw/jit/mir.hpp"

#include <algorithm>
#include <cstddef>

#include "common/bits.hpp"

namespace hermes::hw::jit {

namespace {

/// Per-wire constant-folding table: value of every kConst-driven wire.
struct ConstTable {
  std::vector<std::uint8_t> is_const;
  std::vector<std::uint64_t> value;

  explicit ConstTable(const OpTableView& table)
      : is_const(table.wire_count, 0), value(table.wire_count, 0) {
    for (std::size_t i = 0; i < table.op_count; ++i) {
      const CombOp& op = table.ops[i];
      if (op.kind != CellKind::kConst) continue;
      is_const[op.out] = 1;
      value[op.out] = op.param & op.out_mask;
    }
  }
};

/// True when `kind` cannot produce set bits above the output width given the
/// (already-truncated) operand widths — the truncation mask is then dead.
bool mask_needed(const CombOp& op, const std::uint8_t* widths) {
  if (op.out_width >= 64) return false;
  switch (op.kind) {
    case CellKind::kConst:
      return false;  // the immediate is masked at compile time
    case CellKind::kEq:
    case CellKind::kNe:
    case CellKind::kLtU:
    case CellKind::kLtS:
    case CellKind::kLeU:
    case CellKind::kLeS:
      return false;  // 0/1 always fits (out width >= 1)
    case CellKind::kAnd:
    case CellKind::kOr:
    case CellKind::kXor:
      return op.out_width < std::max(widths[0], widths[1]);
    case CellKind::kMux:
      return op.out_width < std::max(widths[1], widths[2]);
    case CellKind::kZext:
      return op.out_width < widths[0];
    case CellKind::kShrU:
      return op.out_width < widths[0];
    case CellKind::kRemU:
      // b == 0 yields a (< 2^w0); otherwise a % b < b < 2^w1.
      return op.out_width < std::max(widths[0], widths[1]);
    case CellKind::kSlice:
      return op.out_width + op.param < widths[0];
    case CellKind::kConcat: {
      unsigned total = 0;
      for (std::uint16_t i = 0; i < op.input_count; ++i) total += widths[i];
      return op.out_width != total;
    }
    default:
      return true;
  }
}

/// Lowers the ops named by `indices` (which must be in topological order) to
/// one straight-line block. Contiguous level ranges and the sparse
/// sequential-cone subset both go through here.
MirBlock lower_ops(const OpTableView& table, const ConstTable& consts,
                   const std::vector<std::uint32_t>& indices) {
  MirBlock block;
  block.insts.reserve(indices.size());

  // Hot-wire selection: pin the most-read non-const wires of the block into
  // callee-saved registers. Deterministic tie-break on the wire id keeps the
  // digest -> code mapping stable.
  std::vector<std::uint32_t> reads(table.wire_count, 0);
  for (const std::uint32_t i : indices) {
    const CombOp& op = table.ops[i];
    for (std::uint16_t k = 0; k < op.input_count; ++k) {
      const WireId wire = table.inputs[op.first_input + k];
      if (!consts.is_const[wire]) ++reads[wire];
    }
  }
  struct Candidate { WireId wire; std::uint32_t count; };
  std::vector<Candidate> hot;
  for (WireId wire = 0; wire < table.wire_count; ++wire) {
    if (reads[wire] >= 2) hot.push_back({wire, reads[wire]});
  }
  std::sort(hot.begin(), hot.end(), [](const Candidate& a, const Candidate& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.wire < b.wire;
  });
  std::vector<std::int8_t> pin_slot(table.wire_count, -1);
  for (std::size_t i = 0; i < hot.size() && i < kMaxPinned; ++i) {
    block.pinned[i] = hot[i].wire;
    pin_slot[hot[i].wire] = static_cast<std::int8_t>(i);
    ++block.pinned_count;
  }

  WireId prev_out = kNoWire;
  for (const std::uint32_t i : indices) {
    const CombOp& op = table.ops[i];
    MirInst inst;
    inst.kind = op.kind;
    inst.out = op.out;
    inst.out_width = op.out_width;
    inst.out_mask = op.out_mask;
    inst.param = op.param;
    inst.out_reg_slot = pin_slot[op.out];
    const std::uint8_t* widths = table.input_widths + op.first_input;
    inst.mask_result = mask_needed(op, widths);
    if (!inst.mask_result) ++block.elided_masks;

    const auto lower_operand = [&](std::uint16_t k) {
      MirOperand operand;
      const WireId wire = table.inputs[op.first_input + k];
      operand.width = widths[k];
      operand.wire = wire;
      if (consts.is_const[wire]) {
        operand.kind = MirOperandKind::kImm;
        operand.imm = consts.value[wire];
        ++block.folded_consts;
      } else if (wire == prev_out) {
        operand.kind = MirOperandKind::kAcc;
        ++block.fused_forwards;
      } else if (pin_slot[wire] >= 0) {
        operand.kind = MirOperandKind::kReg;
        operand.reg_slot = static_cast<std::uint8_t>(pin_slot[wire]);
      } else {
        operand.kind = MirOperandKind::kWire;
      }
      return operand;
    };

    if (op.kind == CellKind::kConcat) {
      inst.concat_first = static_cast<std::uint32_t>(block.concat_pool.size());
      inst.concat_count = op.input_count;
      for (std::uint16_t k = 0; k < op.input_count; ++k) {
        block.concat_pool.push_back(lower_operand(k));
      }
    } else {
      inst.input_count = static_cast<std::uint8_t>(op.input_count);
      for (std::uint16_t k = 0; k < op.input_count && k < 3; ++k) {
        inst.in[k] = lower_operand(k);
      }
    }

    block.insts.push_back(inst);
    prev_out = op.out;
  }
  return block;
}

MirBlock lower_block(const OpTableView& table, const ConstTable& consts,
                     std::size_t begin, std::size_t end) {
  std::vector<std::uint32_t> indices(end - begin);
  for (std::size_t i = begin; i < end; ++i) {
    indices[i - begin] = static_cast<std::uint32_t>(i);
  }
  return lower_ops(table, consts, indices);
}

/// Op indices transitively reachable from the sequential output wires, in
/// (level-sorted) topological order. One forward pass suffices: every op's
/// inputs come from strictly earlier table positions or non-comb wires.
std::vector<std::uint32_t> sequential_cone(const OpTableView& table) {
  std::vector<std::uint8_t> tainted(table.wire_count, 0);
  for (std::size_t i = 0; i < table.seq_output_count; ++i) {
    tainted[table.seq_outputs[i]] = 1;
  }
  std::vector<std::uint32_t> cone;
  for (std::size_t i = 0; i < table.op_count; ++i) {
    const CombOp& op = table.ops[i];
    bool in_cone = false;
    for (std::uint16_t k = 0; k < op.input_count; ++k) {
      if (tainted[table.inputs[op.first_input + k]]) { in_cone = true; break; }
    }
    if (in_cone) {
      cone.push_back(static_cast<std::uint32_t>(i));
      tainted[op.out] = 1;
    }
  }
  return cone;
}

}  // namespace

MirProgram lower(const OpTableView& table) {
  MirProgram program;
  const ConstTable consts(table);
  program.full = lower_block(table, consts, 0, table.op_count);
  program.levels.reserve(table.level_count);
  for (std::size_t level = 0; level < table.level_count; ++level) {
    program.levels.push_back(lower_block(table, consts, table.level_start[level],
                                         table.level_start[level + 1]));
  }
  const std::vector<std::uint32_t> cone = sequential_cone(table);
  program.seq_op_count = cone.size();
  program.seq = lower_ops(table, consts, cone);
  return program;
}

}  // namespace hermes::hw::jit
