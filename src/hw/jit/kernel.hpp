// Compiled netlist kernel: one native function per topological level plus a
// fused full-sweep function, all sharing one W^X code mapping. A kernel is
// immutable after compile() and holds no pointer into any simulator — every
// entry takes the wire value array as its argument, so one kernel serves all
// simulators of structurally-identical modules (see jit::KernelCache).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/jit/exec_memory.hpp"
#include "hw/sim.hpp"

namespace hermes::hw::jit {

struct JitKernelStats {
  std::size_t code_bytes = 0;
  std::size_t levels = 0;
  std::size_t ops = 0;
  std::size_t seq_ops = 0;         ///< ops in the sequential-cone function
  std::size_t folded_consts = 0;   ///< operands folded to immediates
  std::size_t fused_forwards = 0;  ///< operands read from the accumulator
  std::size_t elided_masks = 0;    ///< truncation masks proven dead
  std::uint64_t compile_ns = 0;    ///< wall-clock lower + emit + map time
};

class JitKernel {
 public:
  /// Lowers and compiles the op table. Returns null when JIT execution is
  /// unavailable (non-x86-64, W^X denied, HERMES_DISABLE_JIT) or the table
  /// cannot be encoded — callers fall back to the interpreter.
  static std::shared_ptr<const JitKernel> compile(const OpTableView& table);

  /// Full sweep: evaluates every comb op in topological order.
  void run_all(std::uint64_t* values) const { full_(values); }

  /// Evaluates every level >= `level` in ascending order. Level 0 uses the
  /// fused full-sweep function. Re-running an op whose inputs did not change
  /// recomputes the same value, so whole-level granularity is exact.
  void run_from_level(std::uint32_t level, std::uint64_t* values) const {
    if (level == 0) {
      full_(values);
      return;
    }
    for (std::size_t i = level; i < levels_.size(); ++i) levels_[i](values);
  }

  /// Evaluates only the sequential cone — the ops transitively fed by
  /// register / RAM-read outputs, in topological order. Exact whenever no
  /// wire outside that set changed since the last settle (the post-clock-edge
  /// steady state), and usually far smaller than a full sweep.
  void run_seq(std::uint64_t* values) const { seq_(values); }

  [[nodiscard]] std::size_t level_count() const { return levels_.size(); }
  [[nodiscard]] const JitKernelStats& stats() const { return stats_; }

  JitKernel(const JitKernel&) = delete;
  JitKernel& operator=(const JitKernel&) = delete;

 private:
  JitKernel() = default;

  using Fn = void (*)(std::uint64_t*);

  ExecMemory memory_;
  Fn full_ = nullptr;
  Fn seq_ = nullptr;
  std::vector<Fn> levels_;
  JitKernelStats stats_;
};

}  // namespace hermes::hw::jit
