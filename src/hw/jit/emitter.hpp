// x86-64 code emitter for the netlist JIT.
//
// Translates one MirBlock into a System V function `void fn(uint64_t* values)`
// (values base in RDI) of straight-line code — the only branches are the
// short forward guards around div/idiv (zero / minus-one divisors would
// fault or diverge from netlist semantics) and shift-count clamps.
//
// Register plan:
//   RDI        values base pointer (never clobbered)
//   RAX        accumulator; every instruction ends with its masked result here
//   RCX, RDX   scratch (shift counts, divisors, mux arms, remainders)
//   R11        saves the accumulator when the current instruction reads it
//   R12-R14    pinned hot wires (callee-saved; pushed/popped in the frame)
#pragma once

#include <cstdint>
#include <vector>

#include "hw/jit/mir.hpp"

namespace hermes::hw::jit {

/// Appends the machine code of `block` to `code`. Returns false if the block
/// cannot be encoded (e.g. a wire offset beyond disp32 range) — the caller
/// then falls back to the interpreter.
[[nodiscard]] bool emit_block(const MirBlock& block,
                              std::vector<std::uint8_t>& code);

}  // namespace hermes::hw::jit
