#include "hw/jit/kernel.hpp"

#include <chrono>
#include <cstring>

#include "hw/jit/emitter.hpp"
#include "hw/jit/mir.hpp"

namespace hermes::hw::jit {

std::shared_ptr<const JitKernel> JitKernel::compile(const OpTableView& table) {
  if (!jit_available()) return nullptr;
  const auto start = std::chrono::steady_clock::now();

  const MirProgram program = lower(table);

  // Emit every block into one buffer, each function start 16-byte aligned.
  std::vector<std::uint8_t> code;
  std::vector<std::size_t> offsets;  // full, seq cone, then one per level
  offsets.reserve(program.levels.size() + 2);
  const auto emit_one = [&code, &offsets](const MirBlock& block) {
    while (code.size() % 16 != 0) code.push_back(0xCC);  // int3 padding
    offsets.push_back(code.size());
    return emit_block(block, code);
  };
  if (!emit_one(program.full)) return nullptr;
  if (!emit_one(program.seq)) return nullptr;
  for (const MirBlock& level : program.levels) {
    if (!emit_one(level)) return nullptr;
  }

  auto kernel = std::shared_ptr<JitKernel>(new JitKernel());
  if (!kernel->memory_.allocate(code.size())) return nullptr;
  std::memcpy(kernel->memory_.data(), code.data(), code.size());
  if (!kernel->memory_.finalize()) return nullptr;

  kernel->full_ =
      reinterpret_cast<Fn>(const_cast<void*>(kernel->memory_.entry(offsets[0])));
  kernel->seq_ =
      reinterpret_cast<Fn>(const_cast<void*>(kernel->memory_.entry(offsets[1])));
  kernel->levels_.reserve(program.levels.size());
  for (std::size_t i = 0; i < program.levels.size(); ++i) {
    kernel->levels_.push_back(reinterpret_cast<Fn>(
        const_cast<void*>(kernel->memory_.entry(offsets[i + 2]))));
  }

  JitKernelStats& stats = kernel->stats_;
  stats.code_bytes = code.size();
  stats.levels = program.levels.size();
  stats.ops = table.op_count;
  stats.seq_ops = program.seq_op_count;
  const auto accumulate = [&stats](const MirBlock& block) {
    stats.folded_consts += block.folded_consts;
    stats.fused_forwards += block.fused_forwards;
    stats.elided_masks += block.elided_masks;
  };
  accumulate(program.full);
  for (const MirBlock& level : program.levels) accumulate(level);
  stats.compile_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  return kernel;
}

}  // namespace hermes::hw::jit
