#include "hw/jit/exec_memory.hpp"

#include <cstdlib>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define HERMES_JIT_HAVE_MMAP 1
#else
#define HERMES_JIT_HAVE_MMAP 0
#endif

namespace hermes::hw::jit {

namespace {

#if HERMES_JIT_HAVE_MMAP

std::size_t page_size() {
  static const std::size_t size = [] {
    const long value = ::sysconf(_SC_PAGESIZE);
    return value > 0 ? static_cast<std::size_t>(value) : 4096u;
  }();
  return size;
}

std::size_t round_up_pages(std::size_t bytes) {
  const std::size_t page = page_size();
  return ((bytes + page - 1) / page) * page;
}

/// One-shot probe: map a page, write `ret`, flip RW->RX, call it. Exercises
/// the exact permission transition the kernel compiler needs; fails under
/// selinux/pax-style policies that veto W->X flips.
bool probe_wx_flip() {
#if !defined(__x86_64__)
  return false;
#else
  const std::size_t page = page_size();
  void* mem = ::mmap(nullptr, page, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return false;
  static_cast<std::uint8_t*>(mem)[0] = 0xC3;  // ret
  if (::mprotect(mem, page, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(mem, page);
    return false;
  }
  reinterpret_cast<void (*)()>(mem)();
  ::munmap(mem, page);
  return true;
#endif
}

#endif  // HERMES_JIT_HAVE_MMAP

}  // namespace

bool jit_available() {
  // Env override first, re-read every call: tests flip HERMES_DISABLE_JIT in
  // process to exercise the silent-fallback path.
  const char* disabled = std::getenv("HERMES_DISABLE_JIT");
  if (disabled != nullptr && disabled[0] != '\0' && disabled[0] != '0') {
    return false;
  }
#if HERMES_JIT_HAVE_MMAP
  static const bool probed = probe_wx_flip();
  return probed;
#else
  return false;
#endif
}

ExecMemory::~ExecMemory() { release(); }

ExecMemory::ExecMemory(ExecMemory&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      executable_(std::exchange(other.executable_, false)) {}

ExecMemory& ExecMemory::operator=(ExecMemory&& other) noexcept {
  if (this != &other) {
    release();
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
    executable_ = std::exchange(other.executable_, false);
  }
  return *this;
}

bool ExecMemory::allocate(std::size_t bytes) {
#if HERMES_JIT_HAVE_MMAP
  release();
  if (bytes == 0) return false;
  const std::size_t size = round_up_pages(bytes);
  void* mem = ::mmap(nullptr, size, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) return false;
  base_ = mem;
  size_ = size;
  executable_ = false;
  return true;
#else
  (void)bytes;
  return false;
#endif
}

bool ExecMemory::finalize() {
#if HERMES_JIT_HAVE_MMAP
  if (base_ == nullptr || executable_) return false;
  if (::mprotect(base_, size_, PROT_READ | PROT_EXEC) != 0) {
    release();
    return false;
  }
  executable_ = true;
  return true;
#else
  return false;
#endif
}

void ExecMemory::release() {
#if HERMES_JIT_HAVE_MMAP
  if (base_ != nullptr) ::munmap(base_, size_);
#endif
  base_ = nullptr;
  size_ = 0;
  executable_ = false;
}

}  // namespace hermes::hw::jit
