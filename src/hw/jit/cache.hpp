// Process-wide content-addressed kernel cache.
//
// Keyed by Module::digest() — a structural hash over widths, connectivity,
// cell kinds/params and memory images — so every simulator of a structurally
// identical netlist (SEU campaign replicas, forked SoC copies, repeated test
// constructions) shares one compiled kernel and pays the compile cost once.
// Bounded LRU: evicted kernels stay alive as long as any simulator still
// holds its shared_ptr.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "hw/jit/kernel.hpp"

namespace hermes::hw::jit {

struct KernelCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t compiles = 0;    ///< successful compiles (== inserts)
  std::uint64_t evictions = 0;
  std::uint64_t compile_ns = 0;  ///< total wall-clock spent compiling
};

class KernelCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  /// The process-wide instance every Simulator consults.
  static KernelCache& global();

  /// Returns the cached kernel for `digest`, compiling and inserting on miss.
  /// Null (and no stats movement) when JIT execution is unavailable; null
  /// after a miss when compilation fails.
  std::shared_ptr<const JitKernel> get_or_compile(std::uint64_t digest,
                                                  const OpTableView& table);

  void clear();
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] KernelCacheStats stats() const;
  void reset_stats();

 private:
  void evict_locked();

  struct Entry {
    std::shared_ptr<const JitKernel> kernel;
    std::uint64_t tick = 0;  ///< last-use stamp for LRU
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t capacity_ = kDefaultCapacity;
  KernelCacheStats stats_;
};

}  // namespace hermes::hw::jit
