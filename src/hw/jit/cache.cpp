#include "hw/jit/cache.hpp"

#include "hw/jit/exec_memory.hpp"

namespace hermes::hw::jit {

KernelCache& KernelCache::global() {
  static KernelCache cache;
  return cache;
}

std::shared_ptr<const JitKernel> KernelCache::get_or_compile(
    std::uint64_t digest, const OpTableView& table) {
  // Availability is checked before any bookkeeping: a disabled JIT is a
  // silent fallback, not a cache miss.
  if (!jit_available()) return nullptr;

  std::lock_guard<std::mutex> lock(mutex_);
  if (auto it = entries_.find(digest); it != entries_.end()) {
    ++stats_.hits;
    it->second.tick = ++tick_;
    return it->second.kernel;
  }
  ++stats_.misses;
  std::shared_ptr<const JitKernel> kernel = JitKernel::compile(table);
  if (kernel == nullptr) return nullptr;  // encode/map failure: not cached
  ++stats_.compiles;
  stats_.compile_ns += kernel->stats().compile_ns;
  entries_[digest] = Entry{kernel, ++tick_};
  evict_locked();
  return kernel;
}

void KernelCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

void KernelCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity == 0 ? 1 : capacity;
  evict_locked();
}

std::size_t KernelCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

KernelCacheStats KernelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void KernelCache::reset_stats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = KernelCacheStats{};
}

void KernelCache::evict_locked() {
  while (entries_.size() > capacity_) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.tick < victim->second.tick) victim = it;
    }
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

}  // namespace hermes::hw::jit
