// W^X executable code buffer for the netlist JIT.
//
// Lifecycle: allocate() maps pages PROT_READ|PROT_WRITE, the emitter fills
// them through data(), finalize() flips the whole mapping to
// PROT_READ|PROT_EXEC. The two permissions are never held simultaneously —
// no RWX page is ever mapped, matching the W^X discipline hardened kernels
// (and the NG-ULTRA hypervisor MPU policy this repo models) enforce.
#pragma once

#include <cstddef>
#include <cstdint>

namespace hermes::hw::jit {

/// True when the host can execute JIT-compiled kernels: x86-64 System V,
/// mmap + mprotect W->X flips permitted, and HERMES_DISABLE_JIT unset. The
/// mmap/mprotect probe (map a `ret`, flip it executable, call it) runs once
/// per process; the environment variable is re-read on every call so forced
/// fallback is testable without re-execing.
bool jit_available();

/// One immutable code mapping. Move-only; unmapped on destruction.
class ExecMemory {
 public:
  ExecMemory() = default;
  ~ExecMemory();
  ExecMemory(const ExecMemory&) = delete;
  ExecMemory& operator=(const ExecMemory&) = delete;
  ExecMemory(ExecMemory&& other) noexcept;
  ExecMemory& operator=(ExecMemory&& other) noexcept;

  /// Maps `bytes` (rounded up to whole pages) read-write. False on failure
  /// or unsupported platform.
  [[nodiscard]] bool allocate(std::size_t bytes);

  /// Writable only between allocate() and finalize().
  [[nodiscard]] std::uint8_t* data() {
    return executable_ ? nullptr : static_cast<std::uint8_t*>(base_);
  }

  /// Flips the mapping read-execute (dropping write). False if the kernel
  /// denies the transition — the caller must then fall back to the
  /// interpreter; the mapping is released.
  [[nodiscard]] bool finalize();

  [[nodiscard]] bool executable() const { return executable_; }
  [[nodiscard]] std::size_t capacity() const { return size_; }

  /// Entry pointer at a byte offset; only valid once executable.
  [[nodiscard]] const void* entry(std::size_t offset) const {
    return executable_ ? static_cast<const std::uint8_t*>(base_) + offset
                       : nullptr;
  }

 private:
  void release();

  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool executable_ = false;
};

}  // namespace hermes::hw::jit
