// Machine-IR for the netlist JIT.
//
// The lowering pass turns one Simulator op-table block (a topological level,
// or the whole table for the full-sweep kernel) into a straight-line list of
// MirInsts the x86-64 emitter translates 1:1. Lowering performs the three
// optimizations the emitter relies on:
//
//  * constant folding — an input driven by a kConst cell becomes a kImm
//    operand (pre-sign-extended where the consumer is signed), so the emitted
//    code never loads constants from the value array;
//  * accumulator forwarding — an input equal to the previous instruction's
//    output is tagged kAcc and read from the accumulator register instead of
//    being reloaded. The store to values_[] is NEVER elided: differential
//    tests (and VCD dumping) compare every wire, so fusion is register
//    forwarding, not store elision;
//  * hot-wire pinning — up to kMaxPinned wires with the highest in-block read
//    counts are kept in callee-saved registers for the block's duration, and
//  * mask elision — the truncation mask is skipped when the operator cannot
//    produce bits above the output width.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/sim.hpp"

namespace hermes::hw::jit {

/// Where an instruction operand comes from.
enum class MirOperandKind : std::uint8_t {
  kWire,  ///< load values[wire]
  kImm,   ///< compile-time constant (already truncated / sign-extended)
  kAcc,   ///< previous instruction's result, still in the accumulator
  kReg,   ///< pinned hot wire, in callee-saved register `slot`
};

struct MirOperand {
  MirOperandKind kind = MirOperandKind::kWire;
  std::uint8_t width = 0;     ///< source wire width (for sign extension)
  std::uint8_t reg_slot = 0;  ///< pinned slot when kind == kReg
  WireId wire = kNoWire;
  std::uint64_t imm = 0;
};

/// Maximum wires pinned in callee-saved registers per block (R12..R14).
inline constexpr std::size_t kMaxPinned = 3;

struct MirInst {
  CellKind kind = CellKind::kConst;
  std::uint8_t input_count = 0;    ///< direct operands in `in` (<= 3)
  std::uint8_t out_width = 0;
  std::int8_t out_reg_slot = -1;   ///< pinned slot also holding `out`, or -1
  bool mask_result = true;         ///< emit the truncation mask?
  MirOperand in[3];
  std::uint32_t concat_first = 0;  ///< kConcat: operand range in concat_pool
  std::uint32_t concat_count = 0;
  WireId out = kNoWire;
  std::uint64_t out_mask = 0;
  std::uint64_t param = 0;
};

/// One straight-line block: the unit the emitter turns into a function.
struct MirBlock {
  std::vector<MirInst> insts;
  std::vector<MirOperand> concat_pool;   ///< kConcat operand storage
  WireId pinned[kMaxPinned] = {kNoWire, kNoWire, kNoWire};
  std::size_t pinned_count = 0;
  // Lowering statistics, aggregated into JitKernelStats.
  std::size_t folded_consts = 0;
  std::size_t fused_forwards = 0;
  std::size_t elided_masks = 0;
};

/// The lowered program: one block per topological level, one fused block
/// covering the whole table (the full-sweep / reset kernel), and one block
/// for the sequential cone — the ops transitively fed by register / RAM-read
/// outputs, in topological order. After a clock edge where only sequential
/// outputs changed, evaluating the cone settles the netlist without touching
/// the (typically much larger) input-fed logic.
struct MirProgram {
  MirBlock full;
  std::vector<MirBlock> levels;
  MirBlock seq;
  std::size_t seq_op_count = 0;  ///< ops in the sequential cone
};

/// Lowers a simulator op table. The view must stay alive for the call only —
/// the result owns all of its storage.
MirProgram lower(const OpTableView& table);

}  // namespace hermes::hw::jit
