// Word-level combinational cell semantics, shared by every engine.
//
// The scalar event-driven / full-sweep engines (hw::Simulator) and the
// per-lane fallback path of the bit-sliced engine (hw::SlicedSimulator) must
// agree bit-for-bit on what each CellKind computes — divergence here would
// silently break the serial-oracle invariant of the fault campaigns. The
// single switch lives in this header as a template over the input accessor,
// so each engine reads its own value storage with zero call overhead.
#pragma once

#include <cstdint>

#include "common/bits.hpp"
#include "hw/netlist.hpp"

namespace hermes::hw {

/// Evaluates one combinational cell. `in(i)` must return the value of input
/// wire `i`, already truncated to its width; `widths[i]` is that width. The
/// result is truncated to `out_mask`. Division/remainder by zero produce
/// all-ones / the dividend, matching the IR interpreter golden model.
template <typename In>
std::uint64_t eval_comb_cell(CellKind kind, std::uint64_t param,
                             std::uint64_t out_mask, In&& in,
                             const std::uint8_t* widths,
                             std::uint16_t input_count) {
  std::uint64_t result = 0;
  switch (kind) {
    case CellKind::kConst: result = param; break;
    case CellKind::kAdd: result = in(0) + in(1); break;
    case CellKind::kSub: result = in(0) - in(1); break;
    case CellKind::kMul: result = in(0) * in(1); break;
    case CellKind::kDivU:
      result = in(1) == 0 ? ~0ULL : in(0) / in(1);
      break;
    case CellKind::kDivS: {
      const std::int64_t a = sign_extend(in(0), widths[0]);
      const std::int64_t b = sign_extend(in(1), widths[1]);
      // b == -1 negates in unsigned arithmetic: INT64_MIN / -1 overflows
      // int64 (UB in C++, #DE on x86) but wraps to INT64_MIN in hardware
      // two's-complement — the semantics the JIT's guarded `neg` emits.
      result = b == 0    ? ~0ULL
               : b == -1 ? 0u - static_cast<std::uint64_t>(a)
                         : static_cast<std::uint64_t>(a / b);
      break;
    }
    case CellKind::kRemU:
      result = in(1) == 0 ? in(0) : in(0) % in(1);
      break;
    case CellKind::kRemS: {
      const std::int64_t a = sign_extend(in(0), widths[0]);
      const std::int64_t b = sign_extend(in(1), widths[1]);
      // b == -1 divides exactly, so the remainder is 0 — guarded explicitly
      // because INT64_MIN % -1 is UB in C++ despite the well-defined result.
      result = b == 0    ? static_cast<std::uint64_t>(a)
               : b == -1 ? 0
                         : static_cast<std::uint64_t>(a % b);
      break;
    }
    case CellKind::kAnd: result = in(0) & in(1); break;
    case CellKind::kOr: result = in(0) | in(1); break;
    case CellKind::kXor: result = in(0) ^ in(1); break;
    case CellKind::kNot: result = ~in(0); break;
    case CellKind::kShl:
      result = in(1) >= 64 ? 0 : in(0) << in(1);
      break;
    case CellKind::kShrU:
      result = in(1) >= 64 ? 0 : in(0) >> in(1);
      break;
    case CellKind::kShrS: {
      const std::int64_t a = sign_extend(in(0), widths[0]);
      const std::uint64_t shift = in(1) >= 63 ? 63 : in(1);
      result = static_cast<std::uint64_t>(a >> shift);
      break;
    }
    case CellKind::kEq: result = in(0) == in(1); break;
    case CellKind::kNe: result = in(0) != in(1); break;
    case CellKind::kLtU: result = in(0) < in(1); break;
    case CellKind::kLtS:
      result = sign_extend(in(0), widths[0]) < sign_extend(in(1), widths[1]);
      break;
    case CellKind::kLeU: result = in(0) <= in(1); break;
    case CellKind::kLeS:
      result = sign_extend(in(0), widths[0]) <= sign_extend(in(1), widths[1]);
      break;
    case CellKind::kMux: result = in(0) ? in(2) : in(1); break;
    case CellKind::kZext: result = in(0); break;
    case CellKind::kSext:
      result = static_cast<std::uint64_t>(sign_extend(in(0), widths[0]));
      break;
    case CellKind::kSlice: result = in(0) >> param; break;
    case CellKind::kConcat: {
      unsigned shift = 0;
      for (std::uint16_t i = 0; i < input_count; ++i) {
        result |= in(i) << shift;
        shift += widths[i];
      }
      break;
    }
    case CellKind::kRegister:
    case CellKind::kRamRead:
    case CellKind::kRamWrite:
      break;  // sequential cells never reach the comb evaluator
  }
  return result & out_mask;
}

}  // namespace hermes::hw
