#include "hw/vcd.hpp"

#include "common/strings.hpp"

namespace hermes::hw {
namespace {

/// Compact printable VCD identifier for wire index i.
std::string vcd_id(std::size_t i) {
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + (i % 94)));
    i /= 94;
  } while (i != 0);
  return id;
}

std::string binary(std::uint64_t value, unsigned width) {
  std::string out(width, '0');
  for (unsigned bit = 0; bit < width; ++bit) {
    if ((value >> bit) & 1u) out[width - 1 - bit] = '1';
  }
  return out;
}

}  // namespace

VcdTrace::VcdTrace(const Module& module, std::vector<WireId> wires)
    : module_(module),
      wires_(std::move(wires)),
      last_(wires_.size(), 0),
      has_last_(wires_.size(), false) {}

void VcdTrace::sample(const Simulator& sim) {
  bool wrote_time = false;
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    const std::uint64_t value = sim.get(wires_[i]);
    if (has_last_[i] && last_[i] == value) continue;
    if (!wrote_time) {
      changes_ << '#' << sim.cycles() << '\n';
      wrote_time = true;
    }
    const unsigned width = module_.wire_width(wires_[i]);
    if (width == 1) {
      changes_ << (value & 1u) << vcd_id(i) << '\n';
    } else {
      changes_ << 'b' << binary(value, width) << ' ' << vcd_id(i) << '\n';
    }
    last_[i] = value;
    has_last_[i] = true;
  }
}

std::string VcdTrace::str() const {
  std::ostringstream out;
  out << "$timescale 1ns $end\n$scope module " << module_.name() << " $end\n";
  for (std::size_t i = 0; i < wires_.size(); ++i) {
    out << "$var wire " << module_.wire_width(wires_[i]) << ' ' << vcd_id(i)
        << ' ' << module_.wire_name(wires_[i]) << " $end\n";
  }
  out << "$upscope $end\n$enddefinitions $end\n";
  out << changes_.str();
  return out.str();
}

}  // namespace hermes::hw
