// RTL netlist model.
//
// The HLS back-end (Bambu-style FSMD generation) emits designs into this
// in-memory netlist of word-level macro cells. The same netlist is (a)
// executed cycle-accurately by hw::Simulator — standing in for the Verilog
// simulation Bambu testbenches drive, (b) printed as synthesizable Verilog by
// hw::emit_verilog, and (c) technology-mapped onto the NG-ULTRA fabric by the
// nxmap backend.
//
// Conventions:
//  * every wire carries an unsigned value of an explicit width in [1, 64];
//    signedness is a property of the operator (kDivS vs kDivU, ...) not the wire;
//  * a single implicit clock and synchronous active-high reset drive all
//    sequential cells (registers and RAM ports);
//  * division/remainder by zero produce all-ones / the dividend respectively
//    (matching the IR interpreter golden model).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hermes::hw {

using WireId = std::uint32_t;
inline constexpr WireId kNoWire = ~static_cast<WireId>(0);

/// Word-level cell kinds. Comb cells compute outputs from inputs within a
/// cycle; kRegister / kRamRead / kRamWrite are sequential.
enum class CellKind : std::uint8_t {
  kConst,   ///< outputs[0] = param (no inputs)
  kAdd, kSub, kMul,
  kDivU, kDivS, kRemU, kRemS,
  kAnd, kOr, kXor, kNot,
  kShl, kShrU, kShrS,
  kEq, kNe, kLtU, kLtS, kLeU, kLeS,
  kMux,     ///< inputs {sel, in0, in1}: out = sel ? in1 : in0
  kZext,    ///< zero-extend / truncate input to the output width
  kSext,    ///< sign-extend input (width from input wire) to the output width
  kSlice,   ///< out = input >> param, truncated to output width
  kConcat,  ///< inputs LSB-first; output width = sum of input widths
  kRegister,///< inputs {d, en}; outputs {q}; param = reset value
  kRamRead, ///< inputs {addr, en}; outputs {data}; param = memory index. Synchronous read.
  kRamWrite,///< inputs {addr, data, en}; no outputs; param = memory index
};

const char* to_string(CellKind kind);

/// True for cells whose outputs change only on the clock edge.
bool is_sequential(CellKind kind);

class Module;

/// Removes cells whose outputs drive nothing (no cell input, no output
/// port), iterating to a fixed point — the dead-logic sweep every synthesis
/// front-end performs before technology mapping. RAM writes are effectful
/// and always kept; registers and combinational cells are swept. Returns the
/// number of cells removed.
std::size_t sweep_dead_cells(Module& module);

struct Cell {
  CellKind kind = CellKind::kConst;
  std::vector<WireId> inputs;
  std::vector<WireId> outputs;
  std::uint64_t param = 0;
  std::string name;  ///< optional instance name (kept for reports/Verilog)
};

struct Port {
  std::string name;
  WireId wire = kNoWire;
  bool is_input = true;
};

/// An embedded memory block. `dual_port` marks it as requiring a True
/// Dual-Port RAM primitive on the NG-ULTRA fabric (two simultaneous
/// read/write ports); nxmap maps it accordingly.
struct Memory {
  std::string name;
  unsigned width = 32;       ///< word width in bits (<= 64)
  std::size_t depth = 0;     ///< number of words
  bool dual_port = false;
  std::vector<std::uint64_t> init;  ///< optional initial contents
};

/// Aggregate cell statistics used by reports and the FIG2 benchmark.
struct NetlistStats {
  std::size_t cells = 0;
  std::size_t registers = 0;
  std::size_t register_bits = 0;
  std::size_t arithmetic = 0;   ///< add/sub/mul/div/rem
  std::size_t multipliers = 0;
  std::size_t dividers = 0;
  std::size_t muxes = 0;
  std::size_t memories = 0;
  std::size_t memory_bits = 0;
};

/// A synthesizable module: wires, ports, cells, memories.
class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Creates a wire of the given width; name optional (auto-named otherwise).
  WireId add_wire(unsigned width, std::string name = {});
  [[nodiscard]] unsigned wire_width(WireId wire) const { return wire_widths_.at(wire); }
  [[nodiscard]] const std::string& wire_name(WireId wire) const { return wire_names_.at(wire); }
  [[nodiscard]] std::size_t wire_count() const { return wire_widths_.size(); }

  /// Declares an existing wire as a module port.
  void add_input(WireId wire, std::string name);
  void add_output(WireId wire, std::string name);
  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
  /// Looks up a port wire by name; kNoWire if absent.
  [[nodiscard]] WireId port_wire(std::string_view name) const;

  std::size_t add_memory(Memory memory);
  [[nodiscard]] const std::vector<Memory>& memories() const { return memories_; }
  [[nodiscard]] Memory& memory(std::size_t index) { return memories_.at(index); }

  /// Raw cell constructor; prefer the typed helpers below.
  std::size_t add_cell(Cell cell);
  [[nodiscard]] const std::vector<Cell>& cells() const { return cells_; }
  /// Wholesale cell-list replacement (used by netlist sweeps).
  void replace_cells(std::vector<Cell> cells) { cells_ = std::move(cells); }

  // ---- typed builder helpers (each returns the output wire) ----
  WireId make_const(std::uint64_t value, unsigned width, std::string name = {});
  WireId make_binop(CellKind kind, WireId a, WireId b, unsigned out_width,
                    std::string name = {});
  WireId make_not(WireId a, std::string name = {});
  WireId make_mux(WireId sel, WireId if0, WireId if1, std::string name = {});
  WireId make_zext(WireId a, unsigned out_width, std::string name = {});
  WireId make_sext(WireId a, unsigned out_width, std::string name = {});
  WireId make_slice(WireId a, unsigned lsb, unsigned out_width, std::string name = {});
  WireId make_concat(const std::vector<WireId>& lsb_first, std::string name = {});
  /// Register with synchronous enable and reset value.
  WireId make_register(WireId d, WireId en, std::uint64_t reset_value = 0,
                       std::string name = {});
  /// Synchronous-read RAM port on memory `mem`.
  WireId make_ram_read(std::size_t mem, WireId addr, WireId en, std::string name = {});
  void make_ram_write(std::size_t mem, WireId addr, WireId data, WireId en,
                      std::string name = {});

  [[nodiscard]] NetlistStats stats() const;

  /// Structural FNV-1a digest over everything that affects behavior: wire
  /// widths, port wires/directions, cells (kind, param, connectivity) and
  /// memory shapes/init images. Names are deliberately excluded — two
  /// netlists that differ only in labels simulate identically and may share
  /// a compiled kernel. This is the content-address of the process-wide
  /// jit::KernelCache and the seed of the compile-service caching layer.
  [[nodiscard]] std::uint64_t digest() const;

  /// Structural sanity check: widths consistent, wire ids valid, memory
  /// indices valid, no multiply-driven wires.
  [[nodiscard]] Status validate() const;

 private:
  std::string name_;
  std::vector<unsigned> wire_widths_;
  std::vector<std::string> wire_names_;
  std::vector<Port> ports_;
  std::vector<Cell> cells_;
  std::vector<Memory> memories_;
};

}  // namespace hermes::hw
