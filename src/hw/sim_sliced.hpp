// Bit-sliced 64-replica netlist simulator.
//
// Fault campaigns run the same netlist many times, where replicas differ only
// in a handful of flipped bits. This engine evaluates 64 replicas at once by
// transposing the data layout: instead of one 64-bit value per wire, a wire
// of width W holds W "slice words", where bit k of slice word b is bit b of
// replica k's value. One machine word op then advances all 64 replicas:
//
//   wire value (scalar engine):   v[b]       = bit b of the one replica
//   wire slices (this engine):    s[b] bit k = bit b of replica k
//
// Bitwise cells (and/or/xor/not/mux/eq/compare/add/sub/extend/slice/concat,
// and shifts by a lane-uniform amount) are evaluated directly in sliced form.
// The remaining cells (mul/div/rem, lane-divergent shifts) fall back to a
// lane-sparse path: evaluate lane 0 once, broadcast, then patch only the
// lanes whose inputs diverge from lane 0 — after a fault injection that is a
// handful of lanes, not 64.
//
// By convention the fault campaigns keep lane 0 fault-free (the golden
// replica); lane_divergence() XORs every lane against lane 0 in one pass, so
// divergence detection and first-divergence extraction are bit scans.
//
// The engine reuses hw::Simulator's compiled representation (op table, fanout
// CSR, levels) and mirrors its event-driven settle; the scalar engine remains
// the differential oracle — per-lane values must match it bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/netlist.hpp"
#include "hw/sim.hpp"

namespace hermes::hw {

class SlicedSimulator {
 public:
  /// Number of replica lanes evaluated per word op.
  static constexpr unsigned kLanes = 64;

  /// Compiles the module (fails on the same conditions as hw::Simulator).
  explicit SlicedSimulator(const Module& module);

  [[nodiscard]] const Status& status() const { return base_.status(); }
  [[nodiscard]] const Module& module() const { return base_.module(); }
  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Synchronous reset of every lane: registers to reset values, memories to
  /// their init images, cycle counter to 0.
  void reset();

  /// Drives an input port with the same value on all 64 lanes.
  void set_input(std::string_view port_name, std::uint64_t value);

  /// Settles combinational logic (lazy, event-driven over slice words).
  void eval_comb();

  /// One clock cycle for all 64 lanes: settle, commit sequential state,
  /// settle again. Identical two-phase semantics to hw::Simulator::step().
  void step();

  /// Value of `wire` on one lane, reassembled from the slice words.
  [[nodiscard]] std::uint64_t get_lane(WireId wire, unsigned lane) const;
  [[nodiscard]] std::uint64_t get_output_lane(std::string_view port_name,
                                              unsigned lane) const;

  /// Lane mask of replicas whose value of `wire` differs from lane 0 (the
  /// golden lane) — the campaign divergence detector. Bit 0 is always 0.
  [[nodiscard]] std::uint64_t lane_divergence(WireId wire) const;

  /// Raw slice words of `wire` (wire_width(wire) of them).
  [[nodiscard]] const std::uint64_t* slices(WireId wire) const {
    return slices_.data() + slice_off_[wire];
  }

  /// Radiation backdoor for one lane: flips bit `bit` of `wire` on exactly
  /// the lanes set in `lane_mask`. Same contract as Simulator::corrupt_wire —
  /// meaningful for sequential outputs, between step()s.
  void corrupt_wire(WireId wire, unsigned bit, std::uint64_t lane_mask);

  /// Backdoor read of one memory word on one lane.
  [[nodiscard]] std::uint64_t read_memory_lane(std::size_t mem,
                                               std::size_t addr,
                                               unsigned lane) const;

  /// Testbench backdoor: writes one memory word on all 64 lanes (matches
  /// Simulator::write_memory applied to every replica).
  void write_memory(std::size_t mem, std::size_t addr, std::uint64_t value);

  /// Output wires of every register cell (same order as hw::Simulator).
  [[nodiscard]] std::vector<WireId> register_outputs() const {
    return base_.register_outputs();
  }

 private:
  // Sequential ops re-compiled with the cached widths the sliced commit
  // needs (the scalar engine reads widths from wire lookups instead).
  struct SlicedReg {
    WireId d = kNoWire, en = kNoWire, q = kNoWire;
    std::uint8_t d_width = 0, en_width = 0, q_width = 0;
    std::uint32_t scratch = 0;  ///< offset of the sampled q' slice words
    std::uint64_t reset_value = 0;
  };
  struct SlicedRamRead {
    WireId addr = kNoWire, en = kNoWire, data = kNoWire;
    std::uint32_t mem = 0;
    std::uint8_t addr_width = 0, en_width = 0, data_width = 0;
    std::uint32_t scratch = 0;  ///< sampled addr words + 1 en_nz word
  };
  struct SlicedRamWrite {
    WireId addr = kNoWire, data = kNoWire, en = kNoWire;
    std::uint32_t mem = 0;
    std::uint8_t addr_width = 0, mem_width = 0;
    std::uint32_t scratch = 0;  ///< sampled addr + data words + 1 en_nz word
  };

  void build_lanes();
  void eval_op_sliced(const CombOp& op, std::uint64_t* out) const;
  void eval_op_fallback(const CombOp& op, std::uint64_t* out) const;
  /// Evaluates `op` and commits its output slices; returns true if any slice
  /// word changed.
  bool apply_op(const CombOp& op);
  void mark_wire_changed(WireId wire);
  void schedule_op(std::uint32_t op_index);
  void schedule_fanout(WireId wire);

  [[nodiscard]] std::uint64_t input_word(const CombOp& op,
                                         std::size_t index, unsigned b) const;
  [[nodiscard]] std::uint64_t extract_lane_raw(const std::uint64_t* words,
                                               unsigned width,
                                               unsigned lane) const;

  Simulator base_;  ///< compiled tables + oracle-compatible schedule

  // Slice storage: wire -> offset of wire_width words in slices_.
  std::vector<std::uint32_t> slice_off_;
  std::vector<std::uint64_t> slices_;

  // Memory slice storage: memory -> offset; word (mem, addr) occupies
  // mem_width consecutive slice words at mem_off_[mem] + addr * mem_width.
  std::vector<std::uint32_t> mem_off_;
  std::vector<std::uint64_t> mem_slices_;

  std::vector<SlicedReg> regs_;
  std::vector<SlicedRamRead> ram_reads_;
  std::vector<SlicedRamWrite> ram_writes_;

  // Event machinery private to this engine (the compiled CSR/levels are
  // borrowed from base_).
  std::vector<std::uint32_t> level_fill_;
  std::vector<std::uint32_t> level_arena_;
  std::vector<std::uint8_t> op_scheduled_;
  bool comb_dirty_ = false;

  // Step scratch (hoisted): sampled sequential inputs, two-phase commit.
  std::vector<std::uint64_t> seq_scratch_;
  std::uint64_t cycles_ = 0;
};

}  // namespace hermes::hw
