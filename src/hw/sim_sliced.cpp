#include "hw/sim_sliced.hpp"

#include <algorithm>
#include <cassert>

#include "common/bits.hpp"
#include "hw/sim_eval.hpp"

namespace hermes::hw {

namespace {

/// Broadcasts one bit across all 64 lanes: 1 -> all-ones, 0 -> all-zeros.
constexpr std::uint64_t spread(std::uint64_t bit) {
  return static_cast<std::uint64_t>(0) - (bit & 1);
}

/// Broadcast of lane 0's bit of a slice word — the golden reference word.
constexpr std::uint64_t golden_of(std::uint64_t word) { return spread(word); }

}  // namespace

SlicedSimulator::SlicedSimulator(const Module& module)
    : base_(module, SimOptions{}) {
  if (!status().ok()) return;
  build_lanes();
  reset();
}

void SlicedSimulator::build_lanes() {
  const Module& m = module();

  // Wire slice arena: wire_width words per wire.
  slice_off_.assign(m.wire_count() + 1, 0);
  for (std::size_t w = 0; w < m.wire_count(); ++w) {
    slice_off_[w + 1] =
        slice_off_[w] + m.wire_width(static_cast<WireId>(w));
  }
  slices_.assign(slice_off_.back(), 0);

  // Memory slice arena: depth * width words per memory.
  mem_off_.assign(m.memories().size() + 1, 0);
  for (std::size_t i = 0; i < m.memories().size(); ++i) {
    const Memory& mem = m.memories()[i];
    mem_off_[i + 1] = mem_off_[i] +
                      static_cast<std::uint32_t>(mem.depth * mem.width);
  }
  mem_slices_.assign(mem_off_.back(), 0);

  // Sequential ops with cached widths and scratch offsets. Scratch layout:
  // regs sample q' (q_width words each); RAM reads sample addr + en_nz;
  // RAM writes sample addr + data (already truncated to mem width) + en_nz.
  std::uint32_t scratch = 0;
  regs_.reserve(base_.reg_ops_.size());
  for (const RegOp& op : base_.reg_ops_) {
    SlicedReg reg;
    reg.d = op.d;
    reg.en = op.en;
    reg.q = op.q;
    reg.d_width = static_cast<std::uint8_t>(m.wire_width(op.d));
    reg.en_width = static_cast<std::uint8_t>(m.wire_width(op.en));
    reg.q_width = static_cast<std::uint8_t>(op.q_width);
    reg.reset_value = truncate(op.reset_value, op.q_width);
    reg.scratch = scratch;
    scratch += reg.q_width;
    regs_.push_back(reg);
  }
  ram_reads_.reserve(base_.ram_read_ops_.size());
  for (const RamReadOp& op : base_.ram_read_ops_) {
    SlicedRamRead rd;
    rd.addr = op.addr;
    rd.en = op.en;
    rd.data = op.data;
    rd.mem = op.mem;
    rd.addr_width = static_cast<std::uint8_t>(m.wire_width(op.addr));
    rd.en_width = static_cast<std::uint8_t>(m.wire_width(op.en));
    rd.data_width = static_cast<std::uint8_t>(m.wire_width(op.data));
    rd.scratch = scratch;
    scratch += rd.addr_width + 1;
    ram_reads_.push_back(rd);
  }
  ram_writes_.reserve(base_.ram_write_ops_.size());
  for (const RamWriteOp& op : base_.ram_write_ops_) {
    SlicedRamWrite wr;
    wr.addr = op.addr;
    wr.data = op.data;
    wr.en = op.en;
    wr.mem = op.mem;
    wr.addr_width = static_cast<std::uint8_t>(m.wire_width(op.addr));
    wr.mem_width = static_cast<std::uint8_t>(op.width);
    wr.scratch = scratch;
    scratch += wr.addr_width + wr.mem_width + 1;
    ram_writes_.push_back(wr);
  }
  seq_scratch_.assign(scratch, 0);

  level_fill_.assign(base_.level_fill_.size(), 0);
  level_arena_.assign(base_.level_arena_.size(), 0);
  op_scheduled_.assign(base_.comb_ops_.size(), 0);
}

void SlicedSimulator::reset() {
  cycles_ = 0;
  std::fill(slices_.begin(), slices_.end(), 0);
  for (const SlicedReg& reg : regs_) {
    std::uint64_t* q = slices_.data() + slice_off_[reg.q];
    for (unsigned b = 0; b < reg.q_width; ++b) {
      q[b] = spread(reg.reset_value >> b);
    }
  }
  std::fill(mem_slices_.begin(), mem_slices_.end(), 0);
  const auto& memories = module().memories();
  for (std::size_t i = 0; i < memories.size(); ++i) {
    const Memory& mem = memories[i];
    std::uint64_t* words = mem_slices_.data() + mem_off_[i];
    for (std::size_t a = 0; a < mem.init.size() && a < mem.depth; ++a) {
      const std::uint64_t value = truncate(mem.init[a], mem.width);
      for (unsigned b = 0; b < mem.width; ++b) {
        words[a * mem.width + b] = spread(value >> b);
      }
    }
  }
  // Full settle from scratch, in topological order.
  std::fill(level_fill_.begin(), level_fill_.end(), 0);
  std::fill(op_scheduled_.begin(), op_scheduled_.end(), 0);
  for (const CombOp& op : base_.comb_ops_) {
    eval_op_sliced(op, slices_.data() + slice_off_[op.out]);
  }
  comb_dirty_ = false;
}

std::uint64_t SlicedSimulator::input_word(const CombOp& op,
                                          std::size_t index,
                                          unsigned b) const {
  const WireId wire = base_.op_inputs_[op.first_input + index];
  const std::uint8_t width = base_.op_input_widths_[op.first_input + index];
  return b < width ? slices_[slice_off_[wire] + b] : 0;
}

std::uint64_t SlicedSimulator::extract_lane_raw(const std::uint64_t* words,
                                                unsigned width,
                                                unsigned lane) const {
  std::uint64_t value = 0;
  for (unsigned b = 0; b < width; ++b) {
    value |= ((words[b] >> lane) & 1) << b;
  }
  return value;
}

std::uint64_t SlicedSimulator::get_lane(WireId wire, unsigned lane) const {
  return extract_lane_raw(slices_.data() + slice_off_[wire],
                          module().wire_width(wire), lane);
}

std::uint64_t SlicedSimulator::get_output_lane(std::string_view port_name,
                                               unsigned lane) const {
  const WireId wire = module().port_wire(port_name);
  assert(wire != kNoWire && "unknown output port");
  return get_lane(wire, lane);
}

std::uint64_t SlicedSimulator::lane_divergence(WireId wire) const {
  const std::uint64_t* s = slices_.data() + slice_off_[wire];
  const unsigned width = module().wire_width(wire);
  std::uint64_t diff = 0;
  for (unsigned b = 0; b < width; ++b) diff |= s[b] ^ golden_of(s[b]);
  return diff;
}

std::uint64_t SlicedSimulator::read_memory_lane(std::size_t mem,
                                                std::size_t addr,
                                                unsigned lane) const {
  const Memory& memory = module().memories().at(mem);
  if (addr >= memory.depth) return 0;
  return extract_lane_raw(
      mem_slices_.data() + mem_off_[mem] + addr * memory.width, memory.width,
      lane);
}

void SlicedSimulator::write_memory(std::size_t mem, std::size_t addr,
                                   std::uint64_t value) {
  const Memory& memory = module().memories().at(mem);
  if (addr >= memory.depth) return;
  const std::uint64_t truncated = truncate(value, memory.width);
  std::uint64_t* word = mem_slices_.data() + mem_off_[mem] + addr * memory.width;
  for (unsigned b = 0; b < memory.width; ++b) {
    word[b] = spread(truncated >> b);
  }
}

// ---------------------------------------------------------------------------
// Combinational evaluation
// ---------------------------------------------------------------------------

/// Lane-sparse fallback for cells without a word-parallel form (mul/div/rem,
/// lane-divergent shifts): evaluate lane 0 through the shared scalar cell
/// semantics, broadcast, then patch only the diverging lanes.
void SlicedSimulator::eval_op_fallback(const CombOp& op,
                                       std::uint64_t* out) const {
  const std::uint8_t* widths = base_.op_input_widths_.data() + op.first_input;
  const unsigned W = op.out_width;

  // Lanes whose inputs differ from lane 0.
  std::uint64_t diverged = 0;
  for (std::size_t i = 0; i < op.input_count; ++i) {
    const unsigned wi = widths[i];
    for (unsigned b = 0; b < wi; ++b) {
      const std::uint64_t w = input_word(op, i, b);
      diverged |= w ^ golden_of(w);
    }
  }

  std::uint64_t lane_in[4] = {0, 0, 0, 0};
  assert(op.input_count <= 4);
  const auto eval_lane = [&](unsigned lane) {
    for (std::size_t i = 0; i < op.input_count; ++i) {
      const WireId wire = base_.op_inputs_[op.first_input + i];
      lane_in[i] = extract_lane_raw(slices_.data() + slice_off_[wire],
                                    widths[i], lane);
    }
    return eval_comb_cell(
        op.kind, op.param, op.out_mask,
        [&](std::size_t i) { return lane_in[i]; }, widths, op.input_count);
  };

  const std::uint64_t golden = eval_lane(0);
  for (unsigned b = 0; b < W; ++b) out[b] = spread(golden >> b);
  while (diverged != 0) {
    const unsigned lane =
        static_cast<unsigned>(__builtin_ctzll(diverged));
    diverged &= diverged - 1;
    if (lane == 0) continue;
    const std::uint64_t value = eval_lane(lane);
    const std::uint64_t lane_bit = 1ULL << lane;
    for (unsigned b = 0; b < W; ++b) {
      out[b] = (out[b] & ~lane_bit) | (((value >> b) & 1) << lane);
    }
  }
}

void SlicedSimulator::eval_op_sliced(const CombOp& op,
                                     std::uint64_t* out) const {
  const std::uint8_t* widths = base_.op_input_widths_.data() + op.first_input;
  const unsigned W = op.out_width;
  const auto in = [&](std::size_t i, unsigned b) {
    return input_word(op, i, b);
  };

  switch (op.kind) {
    case CellKind::kConst:
      for (unsigned b = 0; b < W; ++b) out[b] = spread(op.param >> b);
      break;

    case CellKind::kAnd:
      for (unsigned b = 0; b < W; ++b) out[b] = in(0, b) & in(1, b);
      break;
    case CellKind::kOr:
      for (unsigned b = 0; b < W; ++b) out[b] = in(0, b) | in(1, b);
      break;
    case CellKind::kXor:
      for (unsigned b = 0; b < W; ++b) out[b] = in(0, b) ^ in(1, b);
      break;
    case CellKind::kNot:
      // Bits at and above the input width read ~0 (the scalar engine
      // computes ~value and masks to the output width).
      for (unsigned b = 0; b < W; ++b) out[b] = ~in(0, b);
      break;

    case CellKind::kAdd: {
      std::uint64_t carry = 0;
      for (unsigned b = 0; b < W; ++b) {
        const std::uint64_t a = in(0, b), c = in(1, b);
        out[b] = a ^ c ^ carry;
        carry = (a & c) | (carry & (a ^ c));
      }
      break;
    }
    case CellKind::kSub: {
      // a - b == a + ~b + 1: seed the carry chain with all-ones.
      std::uint64_t carry = ~0ULL;
      for (unsigned b = 0; b < W; ++b) {
        const std::uint64_t a = in(0, b), c = ~in(1, b);
        out[b] = a ^ c ^ carry;
        carry = (a & c) | (carry & (a ^ c));
      }
      break;
    }

    case CellKind::kEq:
    case CellKind::kNe: {
      const unsigned wm = std::max(widths[0], widths[1]);
      std::uint64_t eq = ~0ULL;
      for (unsigned b = 0; b < wm; ++b) eq &= ~(in(0, b) ^ in(1, b));
      out[0] = op.kind == CellKind::kEq ? eq : ~eq;
      for (unsigned b = 1; b < W; ++b) out[b] = 0;
      break;
    }
    case CellKind::kLtU:
    case CellKind::kLeU: {
      // MSB-down comparator: a < b once the first differing bit favors b.
      const unsigned wm = std::max(widths[0], widths[1]);
      std::uint64_t eq = ~0ULL, lt = 0;
      for (unsigned b = wm; b-- > 0;) {
        const std::uint64_t a = in(0, b), c = in(1, b);
        lt |= eq & ~a & c;
        eq &= ~(a ^ c);
      }
      out[0] = op.kind == CellKind::kLtU ? lt : (lt | eq);
      for (unsigned b = 1; b < W; ++b) out[b] = 0;
      break;
    }
    case CellKind::kLtS:
    case CellKind::kLeS: {
      // Sign-extend both to the common width, then compare unsigned with the
      // sign bits inverted (bias trick).
      const unsigned wm = std::max(widths[0], widths[1]);
      const auto sext_in = [&](std::size_t i, unsigned b) {
        return b < widths[i] ? in(i, b) : in(i, widths[i] - 1);
      };
      std::uint64_t eq = ~0ULL, lt = 0;
      for (unsigned b = wm; b-- > 0;) {
        std::uint64_t a = sext_in(0, b), c = sext_in(1, b);
        if (b == wm - 1) {
          a = ~a;
          c = ~c;
        }
        lt |= eq & ~a & c;
        eq &= ~(a ^ c);
      }
      out[0] = op.kind == CellKind::kLtS ? lt : (lt | eq);
      for (unsigned b = 1; b < W; ++b) out[b] = 0;
      break;
    }

    case CellKind::kMux: {
      // Scalar semantics: in(0) ? in(2) : in(1), with a nonzero test on the
      // full select value.
      std::uint64_t nz = 0;
      for (unsigned b = 0; b < widths[0]; ++b) nz |= in(0, b);
      for (unsigned b = 0; b < W; ++b) {
        out[b] = (nz & in(2, b)) | (~nz & in(1, b));
      }
      break;
    }

    case CellKind::kZext:
      for (unsigned b = 0; b < W; ++b) out[b] = in(0, b);
      break;
    case CellKind::kSext: {
      const unsigned w0 = widths[0];
      for (unsigned b = 0; b < W; ++b) {
        out[b] = b < w0 ? in(0, b) : in(0, w0 - 1);
      }
      break;
    }
    case CellKind::kSlice: {
      const unsigned lsb = static_cast<unsigned>(op.param);
      for (unsigned b = 0; b < W; ++b) {
        out[b] = b + lsb < widths[0] ? in(0, b + lsb) : 0;
      }
      break;
    }
    case CellKind::kConcat: {
      unsigned pos = 0;
      for (std::size_t i = 0; i < op.input_count && pos < W; ++i) {
        for (unsigned b = 0; b < widths[i] && pos < W; ++b) {
          out[pos++] = in(i, b);
        }
      }
      while (pos < W) out[pos++] = 0;
      break;
    }

    case CellKind::kShl:
    case CellKind::kShrU:
    case CellKind::kShrS: {
      // Word-parallel only when the shift amount agrees across lanes (the
      // common case: constant shift operands).
      std::uint64_t uniform = 0, amount = 0;
      for (unsigned b = 0; b < widths[1]; ++b) {
        const std::uint64_t w = in(1, b);
        uniform |= w ^ golden_of(w);
        amount |= (w & 1) << b;
      }
      if (uniform != 0) {
        eval_op_fallback(op, out);
        break;
      }
      const unsigned w0 = widths[0];
      if (op.kind == CellKind::kShl) {
        for (unsigned b = 0; b < W; ++b) {
          out[b] = (amount < 64 && b >= amount && b - amount < w0)
                       ? in(0, static_cast<unsigned>(b - amount))
                       : 0;
        }
      } else if (op.kind == CellKind::kShrU) {
        for (unsigned b = 0; b < W; ++b) {
          out[b] = (amount < 64 && b + amount < w0)
                       ? in(0, static_cast<unsigned>(b + amount))
                       : 0;
        }
      } else {  // kShrS: arithmetic shift of the sign-extended value
        const std::uint64_t shift = amount >= 63 ? 63 : amount;
        for (unsigned b = 0; b < W; ++b) {
          const std::uint64_t src = b + shift;
          out[b] = src < w0 ? in(0, static_cast<unsigned>(src))
                            : in(0, w0 - 1);
        }
      }
      break;
    }

    case CellKind::kMul:
    case CellKind::kDivU:
    case CellKind::kDivS:
    case CellKind::kRemU:
    case CellKind::kRemS:
      eval_op_fallback(op, out);
      break;

    case CellKind::kRegister:
    case CellKind::kRamRead:
    case CellKind::kRamWrite:
      assert(false && "sequential cell in comb op table");
      break;
  }
}

bool SlicedSimulator::apply_op(const CombOp& op) {
  std::uint64_t buf[64];
  eval_op_sliced(op, buf);
  std::uint64_t* cur = slices_.data() + slice_off_[op.out];
  bool changed = false;
  for (unsigned b = 0; b < op.out_width; ++b) {
    if (cur[b] != buf[b]) {
      cur[b] = buf[b];
      changed = true;
    }
  }
  return changed;
}

void SlicedSimulator::schedule_op(std::uint32_t op_index) {
  if (op_scheduled_[op_index]) return;
  op_scheduled_[op_index] = 1;
  const std::uint32_t level = base_.comb_ops_[op_index].level;
  level_arena_[base_.level_start_[level] + level_fill_[level]++] = op_index;
}

void SlicedSimulator::schedule_fanout(WireId wire) {
  const std::uint32_t begin = base_.fanout_offsets_[wire];
  const std::uint32_t end = base_.fanout_offsets_[wire + 1];
  for (std::uint32_t i = begin; i < end; ++i) {
    schedule_op(base_.fanout_ops_[i]);
  }
}

void SlicedSimulator::mark_wire_changed(WireId wire) {
  comb_dirty_ = true;
  schedule_fanout(wire);
}

void SlicedSimulator::eval_comb() {
  if (!comb_dirty_) return;
  comb_dirty_ = false;
  for (std::size_t level = 0; level < level_fill_.size(); ++level) {
    const std::uint32_t base = base_.level_start_[level];
    for (std::uint32_t i = 0; i < level_fill_[level]; ++i) {
      const std::uint32_t index = level_arena_[base + i];
      op_scheduled_[index] = 0;
      const CombOp& op = base_.comb_ops_[index];
      if (apply_op(op)) schedule_fanout(op.out);
    }
    level_fill_[level] = 0;
  }
}

void SlicedSimulator::set_input(std::string_view port_name,
                                std::uint64_t value) {
  const WireId wire = module().port_wire(port_name);
  assert(wire != kNoWire && "unknown input port");
  const unsigned width = module().wire_width(wire);
  const std::uint64_t truncated = truncate(value, width);
  std::uint64_t* s = slices_.data() + slice_off_[wire];
  bool changed = false;
  for (unsigned b = 0; b < width; ++b) {
    const std::uint64_t word = spread(truncated >> b);
    if (s[b] != word) {
      s[b] = word;
      changed = true;
    }
  }
  if (changed) mark_wire_changed(wire);
}

void SlicedSimulator::corrupt_wire(WireId wire, unsigned bit,
                                   std::uint64_t lane_mask) {
  if (wire >= slice_off_.size() - 1 || lane_mask == 0) return;
  if (bit >= module().wire_width(wire)) return;
  slices_[slice_off_[wire] + bit] ^= lane_mask;
  comb_dirty_ = true;
  // Mirror Simulator::corrupt_wire: a comb-driven wire is recomputed at the
  // next settle (erasing the flip); dependents see the settled value.
  if (base_.comb_driver_[wire] != kNoCombOp) {
    schedule_op(base_.comb_driver_[wire]);
  }
  schedule_fanout(wire);
}

// ---------------------------------------------------------------------------
// Sequential step
// ---------------------------------------------------------------------------

void SlicedSimulator::step() {
  eval_comb();

  // Phase 1 — sample every sequential input before any commit, mirroring the
  // scalar engine's scratch buffers (a register's q may feed another's d, or
  // be a RAM port's address, directly).
  for (const SlicedReg& reg : regs_) {
    // Per-lane enable: lanes with en != 0 load d, the rest hold q.
    std::uint64_t en = 0;
    const std::uint64_t* en_s = slices_.data() + slice_off_[reg.en];
    for (unsigned b = 0; b < reg.en_width; ++b) en |= en_s[b];
    const std::uint64_t* d = slices_.data() + slice_off_[reg.d];
    const std::uint64_t* q = slices_.data() + slice_off_[reg.q];
    std::uint64_t* sample = seq_scratch_.data() + reg.scratch;
    for (unsigned b = 0; b < reg.q_width; ++b) {
      const std::uint64_t db = b < reg.d_width ? d[b] : 0;
      sample[b] = (en & db) | (~en & q[b]);
    }
  }
  for (const SlicedRamWrite& wr : ram_writes_) {
    std::uint64_t* sample = seq_scratch_.data() + wr.scratch;
    const std::uint64_t* addr = slices_.data() + slice_off_[wr.addr];
    for (unsigned b = 0; b < wr.addr_width; ++b) sample[b] = addr[b];
    const std::uint64_t* data = slices_.data() + slice_off_[wr.data];
    const unsigned data_width = module().wire_width(wr.data);
    for (unsigned b = 0; b < wr.mem_width; ++b) {
      sample[wr.addr_width + b] = b < data_width ? data[b] : 0;
    }
    std::uint64_t en = 0;
    const std::uint64_t* en_s = slices_.data() + slice_off_[wr.en];
    for (unsigned b = 0; b < module().wire_width(wr.en); ++b) en |= en_s[b];
    sample[wr.addr_width + wr.mem_width] = en;
  }
  for (const SlicedRamRead& rd : ram_reads_) {
    std::uint64_t* sample = seq_scratch_.data() + rd.scratch;
    const std::uint64_t* addr = slices_.data() + slice_off_[rd.addr];
    for (unsigned b = 0; b < rd.addr_width; ++b) sample[b] = addr[b];
    std::uint64_t en = 0;
    const std::uint64_t* en_s = slices_.data() + slice_off_[rd.en];
    for (unsigned b = 0; b < rd.en_width; ++b) en |= en_s[b];
    sample[rd.addr_width] = en;
  }

  // Phase 2 — commit registers.
  for (const SlicedReg& reg : regs_) {
    const std::uint64_t* sample = seq_scratch_.data() + reg.scratch;
    std::uint64_t* q = slices_.data() + slice_off_[reg.q];
    bool changed = false;
    for (unsigned b = 0; b < reg.q_width; ++b) {
      if (q[b] != sample[b]) {
        q[b] = sample[b];
        changed = true;
      }
    }
    if (changed) mark_wire_changed(reg.q);
  }

  // Phase 3 — commit RAM writes (write-first: reads below see new data).
  for (const SlicedRamWrite& wr : ram_writes_) {
    const std::uint64_t* sample = seq_scratch_.data() + wr.scratch;
    const std::uint64_t en = sample[wr.addr_width + wr.mem_width];
    if (en == 0) continue;
    const Memory& memory = module().memories()[wr.mem];
    const std::uint64_t* data = sample + wr.addr_width;

    // Lane-uniform address (every slice word all-zeros or all-ones): one
    // masked merge updates the word for all enabled lanes.
    std::uint64_t nonuniform = 0, addr0 = 0;
    for (unsigned b = 0; b < wr.addr_width; ++b) {
      nonuniform |= sample[b] ^ golden_of(sample[b]);
      addr0 |= (sample[b] & 1) << b;
    }
    if (nonuniform == 0) {
      if (addr0 >= memory.depth) continue;  // OOB writes are dropped
      std::uint64_t* word =
          mem_slices_.data() + mem_off_[wr.mem] + addr0 * memory.width;
      for (unsigned b = 0; b < wr.mem_width; ++b) {
        word[b] = (en & data[b]) | (~en & word[b]);
      }
    } else {
      // Post-fault divergence: scatter lane by lane.
      std::uint64_t lanes = en;
      while (lanes != 0) {
        const unsigned lane =
            static_cast<unsigned>(__builtin_ctzll(lanes));
        lanes &= lanes - 1;
        const std::uint64_t addr =
            extract_lane_raw(sample, wr.addr_width, lane);
        if (addr >= memory.depth) continue;
        std::uint64_t* word =
            mem_slices_.data() + mem_off_[wr.mem] + addr * memory.width;
        const std::uint64_t lane_bit = 1ULL << lane;
        for (unsigned b = 0; b < wr.mem_width; ++b) {
          word[b] = (word[b] & ~lane_bit) | (((data[b] >> lane) & 1) << lane);
        }
      }
    }
  }

  // Phase 4 — RAM read ports sample the (post-write) array.
  for (const SlicedRamRead& rd : ram_reads_) {
    const std::uint64_t* sample = seq_scratch_.data() + rd.scratch;
    const std::uint64_t en = sample[rd.addr_width];
    if (en == 0) continue;  // disabled lanes hold their data wire
    const Memory& memory = module().memories()[rd.mem];
    std::uint64_t* data = slices_.data() + slice_off_[rd.data];

    std::uint64_t nonuniform = 0, addr0 = 0;
    for (unsigned b = 0; b < rd.addr_width; ++b) {
      nonuniform |= sample[b] ^ golden_of(sample[b]);
      addr0 |= (sample[b] & 1) << b;
    }
    bool changed = false;
    if (nonuniform == 0) {
      const bool in_range = addr0 < memory.depth;
      const std::uint64_t* word =
          in_range
              ? mem_slices_.data() + mem_off_[rd.mem] + addr0 * memory.width
              : nullptr;
      for (unsigned b = 0; b < rd.data_width; ++b) {
        const std::uint64_t mem_b =
            (in_range && b < memory.width) ? word[b] : 0;  // OOB reads 0
        const std::uint64_t merged = (en & mem_b) | (~en & data[b]);
        if (data[b] != merged) {
          data[b] = merged;
          changed = true;
        }
      }
    } else {
      std::uint64_t lanes = en;
      while (lanes != 0) {
        const unsigned lane =
            static_cast<unsigned>(__builtin_ctzll(lanes));
        lanes &= lanes - 1;
        const std::uint64_t addr =
            extract_lane_raw(sample, rd.addr_width, lane);
        const std::uint64_t value =
            addr < memory.depth
                ? extract_lane_raw(mem_slices_.data() + mem_off_[rd.mem] +
                                       addr * memory.width,
                                   memory.width, lane)
                : 0;
        const std::uint64_t lane_bit = 1ULL << lane;
        for (unsigned b = 0; b < rd.data_width; ++b) {
          const std::uint64_t merged =
              (data[b] & ~lane_bit) | (((value >> b) & 1) << lane);
          if (data[b] != merged) {
            data[b] = merged;
            changed = true;
          }
        }
      }
    }
    if (changed) mark_wire_changed(rd.data);
  }

  ++cycles_;
  eval_comb();
}

}  // namespace hermes::hw
