// Cycle-accurate netlist simulator.
//
// Plays the role Verilog simulation plays in the real Bambu flow: every
// HLS-generated accelerator is executed here against the golden IR
// interpreter. Two-phase semantics per clock cycle: combinational cells
// settle in topological order, then sequential cells (registers, RAM ports)
// commit on the clock edge.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/netlist.hpp"

namespace hermes::hw {

class Simulator {
 public:
  /// Builds the evaluation schedule. Fails on combinational loops.
  explicit Simulator(const Module& module);

  /// True if construction succeeded (no comb loop, valid netlist).
  [[nodiscard]] const Status& status() const { return status_; }

  /// Synchronous reset: registers to their reset values, cycle counter to 0.
  /// Memory contents are reloaded from their init images.
  void reset();

  /// Drives an input port (persists until changed).
  void set_input(std::string_view port_name, std::uint64_t value);

  /// Settles combinational logic without advancing the clock.
  void eval_comb();

  /// One full clock cycle: settle, commit sequential state, settle again.
  void step();

  /// Runs until `port_name` (1-bit output, e.g. "done") reads 1, at most
  /// `max_cycles` cycles. Returns the number of cycles consumed, or
  /// kTimingViolation if the bound was hit.
  Result<std::uint64_t> run_until(std::string_view port_name,
                                  std::uint64_t max_cycles);

  [[nodiscard]] std::uint64_t get(WireId wire) const { return values_.at(wire); }
  [[nodiscard]] std::uint64_t get_output(std::string_view port_name) const;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Testbench backdoor access to embedded memories.
  [[nodiscard]] std::uint64_t read_memory(std::size_t mem, std::size_t addr) const;
  void write_memory(std::size_t mem, std::size_t addr, std::uint64_t value);

  /// Radiation backdoor: flips one bit of a wire's current value. Only
  /// meaningful for sequential outputs (register / RAM-port state) — a
  /// combinational wire is recomputed at the next settle. Call between
  /// step()s; do not call eval_comb() first if downstream effects should be
  /// observed on the next cycle.
  void corrupt_wire(WireId wire, unsigned bit);

  /// Output wires of every register cell — the SEU target list for fault
  /// campaigns on the running netlist.
  [[nodiscard]] std::vector<WireId> register_outputs() const;

  [[nodiscard]] const Module& module() const { return module_; }

 private:
  void eval_cell(const Cell& cell);

  const Module& module_;
  Status status_;
  std::vector<std::size_t> comb_order_;   ///< comb cell indices, topo-sorted
  std::vector<std::size_t> seq_cells_;    ///< register/RAM cell indices
  std::vector<std::uint64_t> values_;     ///< current wire values
  std::vector<std::vector<std::uint64_t>> mem_state_;
  std::uint64_t cycles_ = 0;
};

}  // namespace hermes::hw
