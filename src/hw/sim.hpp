// Cycle-accurate netlist simulator.
//
// Plays the role Verilog simulation plays in the real Bambu flow: every
// HLS-generated accelerator is executed here against the golden IR
// interpreter. Two-phase semantics per clock cycle: combinational cells
// settle in topological order, then sequential cells (registers, RAM ports)
// commit on the clock edge.
//
// Three engines share one compiled representation (see docs/SIMULATOR.md):
//  * event-driven (default): at construction the cells are flattened into a
//    contiguous op table with pre-resolved wire ids, cached widths and
//    truncation masks, each comb op is assigned a topological level (the
//    table is sorted so a level's ops are contiguous), and per-wire fanout
//    lists are built. A settle then only re-evaluates the cells reachable
//    from wires that actually changed (inputs, corrupted wires, committed
//    registers / RAM samples), drained level by level so every cell runs at
//    most once per delta. A level whose scheduled count reaches its op count
//    is swept directly — dense toggling pays no worklist bookkeeping.
//  * full-sweep oracle (SimBackend::kSweep): re-evaluates the whole op table
//    in topological order per settle. Kept as the differential-testing
//    reference; all engines are bit-identical.
//  * JIT (SimBackend::kJit): each topological level — plus the full-sweep
//    step — is lowered through a small machine-IR to straight-line native
//    x86-64 code operating directly on this simulator's wire value array
//    (src/hw/jit/). Compiled kernels are shared process-wide through a
//    content-addressed jit::KernelCache keyed by Module::digest(). On
//    non-x86-64 hosts, W^X-denied environments, or HERMES_DISABLE_JIT=1 the
//    constructor silently falls back to the event-driven interpreter;
//    results are bit-identical either way.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/netlist.hpp"

namespace hermes::hw {

class SlicedSimulator;

namespace jit {
class JitKernel;
}

/// Engine selection. The event-driven engine is the default; the full-sweep
/// path is retained as the oracle for differential testing; the JIT backend
/// degrades to kEvent when native execution is unavailable.
enum class SimBackend : std::uint8_t { kEvent, kSweep, kJit };

const char* to_string(SimBackend backend);

struct SimOptions {
  SimBackend backend = SimBackend::kEvent;
};

/// Sentinel "no combinational op" index (undriven / sequential wires).
inline constexpr std::uint32_t kNoCombOp = ~static_cast<std::uint32_t>(0);

/// One combinational cell, compiled: pre-resolved wires, cached widths and
/// output mask, topological level. Stored sorted by (level, topo order), so
/// each level occupies a contiguous index range of the op table.
struct CombOp {
  CellKind kind = CellKind::kConst;
  std::uint8_t out_width = 0;
  std::uint16_t input_count = 0;
  std::uint32_t first_input = 0;  ///< index into op_inputs_ / op_input_widths_
  std::uint32_t level = 0;
  WireId out = kNoWire;
  std::uint64_t out_mask = 0;
  std::uint64_t param = 0;
};
struct RegOp {
  WireId d = kNoWire, en = kNoWire, q = kNoWire;
  unsigned q_width = 0;
  std::uint64_t reset_value = 0;
};
struct RamReadOp {
  WireId addr = kNoWire, en = kNoWire, data = kNoWire;
  std::uint32_t mem = 0;
};
struct RamWriteOp {
  WireId addr = kNoWire, data = kNoWire, en = kNoWire;
  std::uint32_t mem = 0;
  unsigned width = 0;
};

/// Borrowed view of a simulator's compiled level-sorted op table — the input
/// of the JIT lowering pass (src/hw/jit/mir.hpp). Level l's ops occupy
/// indices [level_start[l], level_start[l + 1]).
struct OpTableView {
  const CombOp* ops = nullptr;
  std::size_t op_count = 0;
  const WireId* inputs = nullptr;             ///< flat op input wires
  const std::uint8_t* input_widths = nullptr; ///< cached input widths
  const std::uint32_t* level_start = nullptr; ///< level_count + 1 offsets
  std::size_t level_count = 0;
  std::size_t wire_count = 0;
  /// Sequential output wires (register q, RAM read data): the roots of the
  /// compiled sequential-cone function the JIT settles with after a clock
  /// edge when no other wire changed.
  const WireId* seq_outputs = nullptr;
  std::size_t seq_output_count = 0;
};

class Simulator {
 public:
  /// Builds the evaluation schedule. Fails on combinational loops.
  explicit Simulator(const Module& module, SimOptions options = {});

  /// True if construction succeeded (no comb loop, valid netlist).
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] const SimOptions& options() const { return options_; }

  /// The engine actually executing settles: options().backend, except that a
  /// requested kJit degrades to kEvent when native execution is unavailable.
  [[nodiscard]] SimBackend active_backend() const { return active_backend_; }

  /// Synchronous reset: registers to their reset values, cycle counter to 0.
  /// Memory contents are reloaded from their init images.
  void reset();

  /// Drives an input port (persists until changed).
  void set_input(std::string_view port_name, std::uint64_t value);
  /// Same, with the port wire pre-resolved via Module::port_wire — the hot
  /// path for benchmarks and campaign drivers that set ports every cycle.
  void set_input(WireId wire, std::uint64_t value);

  /// Settles combinational logic without advancing the clock. Lazily clean:
  /// a no-op unless an event source touched a wire since the last settle.
  void eval_comb();

  /// One full clock cycle: settle, commit sequential state, settle again.
  void step();

  /// Runs until `port_name` (1-bit output, e.g. "done") reads 1, at most
  /// `max_cycles` cycles. Returns the number of cycles consumed, or
  /// kDeadlineExceeded if the bound was hit (a stuck circuit ends in an
  /// error, never a hang).
  Result<std::uint64_t> run_until(std::string_view port_name,
                                  std::uint64_t max_cycles);

  [[nodiscard]] std::uint64_t get(WireId wire) const { return values_.at(wire); }
  [[nodiscard]] std::uint64_t get_output(std::string_view port_name) const;

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }

  /// Testbench backdoor access to embedded memories.
  [[nodiscard]] std::uint64_t read_memory(std::size_t mem, std::size_t addr) const;
  void write_memory(std::size_t mem, std::size_t addr, std::uint64_t value);

  /// Radiation backdoor: flips one bit of a wire's current value. Only
  /// meaningful for sequential outputs (register / RAM-port state) — a
  /// combinational wire is recomputed at the next settle. Call between
  /// step()s; do not call eval_comb() first if downstream effects should be
  /// observed on the next cycle.
  void corrupt_wire(WireId wire, unsigned bit);

  /// Output wires of every register cell — the SEU target list for fault
  /// campaigns on the running netlist.
  [[nodiscard]] std::vector<WireId> register_outputs() const;

  [[nodiscard]] const Module& module() const { return module_; }

 private:
  /// The bit-sliced 64-replica engine reuses this engine's compiled op table,
  /// fanout CSR and level schedule instead of rebuilding them.
  friend class SlicedSimulator;

  void build_tables();
  [[nodiscard]] std::uint64_t eval_op(const CombOp& op) const;
  /// Marks a changed wire: dirty flag (sweep), fanout scheduling (event) or
  /// dirty-level lowering (JIT). `sequential` is true only for clock-edge
  /// commits — when every change since the last settle is sequential, the
  /// JIT backend settles with the compiled sequential-cone function instead
  /// of a full level resume.
  void mark_wire_changed(WireId wire, bool sequential = false);
  void schedule_op(std::uint32_t op_index);
  void schedule_fanout(WireId wire);
  /// Writes a sequential value; propagates only if it actually changed.
  void commit_wire(WireId wire, unsigned width, std::uint64_t value);

  [[nodiscard]] OpTableView op_table_view() const;
  [[nodiscard]] std::size_t level_count() const { return level_fill_.size(); }

  const Module& module_;
  SimOptions options_;
  SimBackend active_backend_ = SimBackend::kEvent;
  Status status_;

  // Compiled op table (SoA), sorted by (level, topological order).
  std::vector<CombOp> comb_ops_;
  std::vector<WireId> op_inputs_;             ///< flat input wires
  std::vector<std::uint8_t> op_input_widths_; ///< cached input widths
  std::vector<RegOp> reg_ops_;
  std::vector<RamReadOp> ram_read_ops_;
  std::vector<RamWriteOp> ram_write_ops_;
  std::vector<WireId> seq_output_wires_;  ///< register q / RAM read data wires

  // Event machinery: wire -> consuming comb ops (CSR), wire -> driving comb
  // op, per-level worklists. The worklists live in one flat CSR-style scratch
  // arena (each level owns the slot range [level_start_[l], level_start_[l+1])
  // and fills level_fill_[l] of it), so the hot settle path never touches the
  // heap: an op is scheduled by one store + one cursor bump, and draining a
  // level resets its cursor instead of clearing a vector. Because the op
  // table is level-sorted, the same offsets delimit each level's ops.
  std::vector<std::uint32_t> fanout_offsets_;
  std::vector<std::uint32_t> fanout_ops_;
  std::vector<std::uint32_t> comb_driver_;
  std::vector<std::uint32_t> level_start_;  ///< per-level arena offsets (CSR)
  std::vector<std::uint32_t> level_fill_;   ///< per-level scheduled count
  std::vector<std::uint32_t> level_arena_;  ///< scheduled op ids, by level
  std::vector<std::uint8_t> op_scheduled_;
  bool comb_dirty_ = false;

  // JIT backend state: the cached kernel plus the lowest level any changed
  // wire feeds — a settle executes straight-line code for every level at or
  // above it (evaluating an op whose inputs did not change is idempotent,
  // so whole-level granularity preserves event semantics exactly).
  std::shared_ptr<const jit::JitKernel> jit_kernel_;
  std::vector<std::uint32_t> wire_min_level_;  ///< min consumer level per wire
  std::uint32_t jit_dirty_level_ = 0;          ///< level_count() = clean
  bool jit_dirty_seq_only_ = true;  ///< all dirt since settle is clock-edge

  std::vector<std::uint64_t> values_;     ///< current wire values
  std::vector<std::vector<std::uint64_t>> mem_state_;
  std::uint64_t cycles_ = 0;

  // Per-step scratch entries (member buffers, reused across steps).
  struct RegUpdate { WireId q; unsigned width; std::uint64_t value; };
  struct RamUpdate { std::uint32_t mem; unsigned width; std::uint64_t addr, value; };
  struct RamSample { WireId data; std::uint32_t mem; std::uint64_t addr; bool enabled; };
  std::vector<RegUpdate> reg_scratch_;
  std::vector<RamUpdate> ram_write_scratch_;
  std::vector<RamSample> ram_sample_scratch_;
};

}  // namespace hermes::hw
