#include "hw/sim.hpp"

#include <cassert>
#include <queue>

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::hw {

Simulator::Simulator(const Module& module) : module_(module) {
  status_ = module.validate();
  if (!status_.ok()) return;

  values_.assign(module.wire_count(), 0);

  // Topological sort of combinational cells. A comb cell is ready once all
  // of its inputs are either sequential outputs, port inputs, const outputs,
  // or outputs of already-scheduled comb cells.
  const auto& cells = module.cells();
  std::vector<std::size_t> driver_of(module.wire_count(), static_cast<std::size_t>(-1));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (WireId wire : cells[i].outputs) driver_of[wire] = i;
  }

  std::vector<unsigned> pending(cells.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(cells.size());
  std::queue<std::size_t> ready;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (is_sequential(cell.kind)) {
      seq_cells_.push_back(i);
      continue;
    }
    unsigned deps = 0;
    for (WireId wire : cell.inputs) {
      const std::size_t driver = driver_of[wire];
      if (driver == static_cast<std::size_t>(-1)) continue;  // port input
      if (is_sequential(cells[driver].kind)) continue;
      ++deps;
      dependents[driver].push_back(i);
    }
    pending[i] = deps;
    if (deps == 0) ready.push(i);
  }

  while (!ready.empty()) {
    const std::size_t index = ready.front();
    ready.pop();
    comb_order_.push_back(index);
    for (std::size_t dep : dependents[index]) {
      if (--pending[dep] == 0) ready.push(dep);
    }
  }

  std::size_t comb_count = 0;
  for (const Cell& cell : cells) {
    if (!is_sequential(cell.kind)) ++comb_count;
  }
  if (comb_order_.size() != comb_count) {
    status_ = Status::Error(ErrorCode::kInternal,
                            format("combinational loop in module %s",
                                   module.name().c_str()));
    return;
  }

  reset();
}

void Simulator::reset() {
  cycles_ = 0;
  for (auto& value : values_) value = 0;
  for (std::size_t index : seq_cells_) {
    const Cell& cell = module_.cells()[index];
    if (cell.kind == CellKind::kRegister) {
      values_[cell.outputs[0]] =
          truncate(cell.param, module_.wire_width(cell.outputs[0]));
    }
  }
  mem_state_.clear();
  for (const Memory& memory : module_.memories()) {
    std::vector<std::uint64_t> contents(memory.depth, 0);
    for (std::size_t i = 0; i < memory.init.size() && i < memory.depth; ++i) {
      contents[i] = truncate(memory.init[i], memory.width);
    }
    mem_state_.push_back(std::move(contents));
  }
  eval_comb();
}

void Simulator::set_input(std::string_view port_name, std::uint64_t value) {
  const WireId wire = module_.port_wire(port_name);
  assert(wire != kNoWire && "unknown input port");
  values_[wire] = truncate(value, module_.wire_width(wire));
}

std::uint64_t Simulator::get_output(std::string_view port_name) const {
  const WireId wire = module_.port_wire(port_name);
  assert(wire != kNoWire && "unknown output port");
  return values_[wire];
}

void Simulator::eval_cell(const Cell& cell) {
  const auto in = [&](std::size_t index) { return values_[cell.inputs[index]]; };
  const auto in_width = [&](std::size_t index) {
    return module_.wire_width(cell.inputs[index]);
  };
  const unsigned out_width =
      cell.outputs.empty() ? 0 : module_.wire_width(cell.outputs[0]);
  std::uint64_t result = 0;

  switch (cell.kind) {
    case CellKind::kConst: result = cell.param; break;
    case CellKind::kAdd: result = in(0) + in(1); break;
    case CellKind::kSub: result = in(0) - in(1); break;
    case CellKind::kMul: result = in(0) * in(1); break;
    case CellKind::kDivU:
      result = in(1) == 0 ? ~0ULL : in(0) / in(1);
      break;
    case CellKind::kDivS: {
      const std::int64_t a = sign_extend(in(0), in_width(0));
      const std::int64_t b = sign_extend(in(1), in_width(1));
      result = b == 0 ? ~0ULL : static_cast<std::uint64_t>(a / b);
      break;
    }
    case CellKind::kRemU:
      result = in(1) == 0 ? in(0) : in(0) % in(1);
      break;
    case CellKind::kRemS: {
      const std::int64_t a = sign_extend(in(0), in_width(0));
      const std::int64_t b = sign_extend(in(1), in_width(1));
      result = b == 0 ? static_cast<std::uint64_t>(a)
                      : static_cast<std::uint64_t>(a % b);
      break;
    }
    case CellKind::kAnd: result = in(0) & in(1); break;
    case CellKind::kOr: result = in(0) | in(1); break;
    case CellKind::kXor: result = in(0) ^ in(1); break;
    case CellKind::kNot: result = ~in(0); break;
    case CellKind::kShl:
      result = in(1) >= 64 ? 0 : in(0) << in(1);
      break;
    case CellKind::kShrU:
      result = in(1) >= 64 ? 0 : in(0) >> in(1);
      break;
    case CellKind::kShrS: {
      const std::int64_t a = sign_extend(in(0), in_width(0));
      const std::uint64_t shift = in(1) >= 63 ? 63 : in(1);
      result = static_cast<std::uint64_t>(a >> shift);
      break;
    }
    case CellKind::kEq: result = in(0) == in(1); break;
    case CellKind::kNe: result = in(0) != in(1); break;
    case CellKind::kLtU: result = in(0) < in(1); break;
    case CellKind::kLtS:
      result = sign_extend(in(0), in_width(0)) < sign_extend(in(1), in_width(1));
      break;
    case CellKind::kLeU: result = in(0) <= in(1); break;
    case CellKind::kLeS:
      result = sign_extend(in(0), in_width(0)) <= sign_extend(in(1), in_width(1));
      break;
    case CellKind::kMux: result = in(0) ? in(2) : in(1); break;
    case CellKind::kZext: result = in(0); break;
    case CellKind::kSext:
      result = static_cast<std::uint64_t>(sign_extend(in(0), in_width(0)));
      break;
    case CellKind::kSlice: result = in(0) >> cell.param; break;
    case CellKind::kConcat: {
      unsigned shift = 0;
      for (std::size_t i = 0; i < cell.inputs.size(); ++i) {
        result |= in(i) << shift;
        shift += in_width(i);
      }
      break;
    }
    case CellKind::kRegister:
    case CellKind::kRamRead:
    case CellKind::kRamWrite:
      assert(false && "sequential cell in comb schedule");
      return;
  }
  values_[cell.outputs[0]] = truncate(result, out_width);
}

void Simulator::eval_comb() {
  for (std::size_t index : comb_order_) {
    eval_cell(module_.cells()[index]);
  }
}

void Simulator::step() {
  eval_comb();

  // Sample all sequential inputs at the edge, then commit. Writes are
  // committed before reads sample, modelling write-first RAM ports (a read
  // and write to the same address in the same cycle returns the new data,
  // matching the behavioral templates used for NG-ULTRA TDP RAM inference).
  struct RegUpdate { WireId q; std::uint64_t value; };
  struct RamUpdate { std::size_t mem; std::uint64_t addr, value; };
  struct RamSample { WireId data; std::size_t mem; std::uint64_t addr; bool enabled; };
  std::vector<RegUpdate> reg_updates;
  std::vector<RamUpdate> ram_updates;
  std::vector<RamSample> ram_samples;

  for (std::size_t index : seq_cells_) {
    const Cell& cell = module_.cells()[index];
    switch (cell.kind) {
      case CellKind::kRegister: {
        const bool enabled = values_[cell.inputs[1]] != 0;
        if (enabled) {
          reg_updates.push_back({cell.outputs[0], values_[cell.inputs[0]]});
        }
        break;
      }
      case CellKind::kRamWrite: {
        const bool enabled = values_[cell.inputs[2]] != 0;
        if (enabled) {
          ram_updates.push_back(
              {static_cast<std::size_t>(cell.param), values_[cell.inputs[0]],
               values_[cell.inputs[1]]});
        }
        break;
      }
      case CellKind::kRamRead: {
        const bool enabled = values_[cell.inputs[1]] != 0;
        ram_samples.push_back({cell.outputs[0],
                               static_cast<std::size_t>(cell.param),
                               values_[cell.inputs[0]], enabled});
        break;
      }
      default:
        break;
    }
  }

  for (const RegUpdate& update : reg_updates) {
    values_[update.q] = truncate(update.value, module_.wire_width(update.q));
  }
  for (const RamUpdate& update : ram_updates) {
    auto& contents = mem_state_[update.mem];
    if (update.addr < contents.size()) {
      contents[update.addr] =
          truncate(update.value, module_.memories()[update.mem].width);
    }
  }
  for (const RamSample& sample : ram_samples) {
    if (!sample.enabled) continue;
    const auto& contents = mem_state_[sample.mem];
    values_[sample.data] =
        sample.addr < contents.size() ? contents[sample.addr] : 0;
  }

  ++cycles_;
  eval_comb();
}

Result<std::uint64_t> Simulator::run_until(std::string_view port_name,
                                           std::uint64_t max_cycles) {
  const std::uint64_t start = cycles_;
  eval_comb();
  while (get_output(port_name) == 0) {
    if (cycles_ - start >= max_cycles) {
      return Status::Error(
          ErrorCode::kTimingViolation,
          format("signal %.*s not asserted within %llu cycles",
                 static_cast<int>(port_name.size()), port_name.data(),
                 static_cast<unsigned long long>(max_cycles)));
    }
    step();
  }
  return cycles_ - start;
}

void Simulator::corrupt_wire(WireId wire, unsigned bit) {
  if (wire >= values_.size()) return;
  const unsigned width = module_.wire_width(wire);
  if (bit >= width) return;
  values_[wire] ^= 1ULL << bit;
}

std::vector<WireId> Simulator::register_outputs() const {
  std::vector<WireId> outputs;
  for (std::size_t index : seq_cells_) {
    const Cell& cell = module_.cells()[index];
    if (cell.kind == CellKind::kRegister) outputs.push_back(cell.outputs[0]);
  }
  return outputs;
}

std::uint64_t Simulator::read_memory(std::size_t mem, std::size_t addr) const {
  const auto& contents = mem_state_.at(mem);
  return addr < contents.size() ? contents[addr] : 0;
}

void Simulator::write_memory(std::size_t mem, std::size_t addr,
                             std::uint64_t value) {
  auto& contents = mem_state_.at(mem);
  if (addr < contents.size()) {
    contents[addr] = truncate(value, module_.memories()[mem].width);
  }
}

}  // namespace hermes::hw
