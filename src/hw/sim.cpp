#include "hw/sim.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "common/bits.hpp"
#include "common/strings.hpp"
#include "hw/jit/cache.hpp"
#include "hw/jit/kernel.hpp"
#include "hw/sim_eval.hpp"

namespace hermes::hw {

const char* to_string(SimBackend backend) {
  switch (backend) {
    case SimBackend::kEvent: return "event";
    case SimBackend::kSweep: return "sweep";
    case SimBackend::kJit: return "jit";
  }
  return "?";
}

Simulator::Simulator(const Module& module, SimOptions options)
    : module_(module), options_(options) {
  status_ = module.validate();
  if (!status_.ok()) return;

  values_.assign(module.wire_count(), 0);
  build_tables();
  if (!status_.ok()) return;

  active_backend_ = options_.backend;
  if (options_.backend == SimBackend::kJit) {
    // Content-addressed process-wide cache: identical netlists share one
    // compiled kernel. A null kernel (non-x86-64, W^X denied,
    // HERMES_DISABLE_JIT) degrades silently to the interpreter.
    jit_kernel_ = jit::KernelCache::global().get_or_compile(
        module_.digest(), op_table_view());
    if (jit_kernel_ == nullptr) active_backend_ = SimBackend::kEvent;
  }
  reset();
}

OpTableView Simulator::op_table_view() const {
  OpTableView view;
  view.ops = comb_ops_.data();
  view.op_count = comb_ops_.size();
  view.inputs = op_inputs_.data();
  view.input_widths = op_input_widths_.data();
  view.level_start = level_start_.data();
  view.level_count = level_count();
  view.wire_count = module_.wire_count();
  view.seq_outputs = seq_output_wires_.data();
  view.seq_output_count = seq_output_wires_.size();
  return view;
}

void Simulator::build_tables() {
  const auto& cells = module_.cells();
  const std::size_t wire_count = module_.wire_count();
  constexpr std::size_t kNoCell = static_cast<std::size_t>(-1);

  std::vector<std::size_t> driver_of(wire_count, kNoCell);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (WireId wire : cells[i].outputs) driver_of[wire] = i;
  }

  // Topological sort of combinational cells, computing levels on the way.
  // A comb cell is ready once all of its inputs are either sequential
  // outputs, port inputs, const outputs, or outputs of already-scheduled
  // comb cells; its level is 1 + max level over its comb drivers.
  std::vector<unsigned> pending(cells.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(cells.size());
  std::vector<std::uint32_t> cell_level(cells.size(), 0);
  std::queue<std::size_t> ready;
  std::size_t comb_count = 0;

  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    if (is_sequential(cell.kind)) {
      switch (cell.kind) {
        case CellKind::kRegister:
          reg_ops_.push_back({cell.inputs[0], cell.inputs[1], cell.outputs[0],
                              module_.wire_width(cell.outputs[0]), cell.param});
          seq_output_wires_.push_back(cell.outputs[0]);
          break;
        case CellKind::kRamRead:
          ram_read_ops_.push_back({cell.inputs[0], cell.inputs[1],
                                   cell.outputs[0],
                                   static_cast<std::uint32_t>(cell.param)});
          seq_output_wires_.push_back(cell.outputs[0]);
          break;
        case CellKind::kRamWrite:
          ram_write_ops_.push_back(
              {cell.inputs[0], cell.inputs[1], cell.inputs[2],
               static_cast<std::uint32_t>(cell.param),
               module_.memories()[cell.param].width});
          break;
        default:
          break;
      }
      continue;
    }
    ++comb_count;
    unsigned deps = 0;
    for (WireId wire : cell.inputs) {
      const std::size_t driver = driver_of[wire];
      if (driver == kNoCell) continue;  // port input / undriven
      if (is_sequential(cells[driver].kind)) continue;
      ++deps;
      dependents[driver].push_back(i);
    }
    pending[i] = deps;
    if (deps == 0) ready.push(i);
  }

  std::vector<std::size_t> comb_topo;
  comb_topo.reserve(comb_count);
  while (!ready.empty()) {
    const std::size_t index = ready.front();
    ready.pop();
    comb_topo.push_back(index);
    for (std::size_t dep : dependents[index]) {
      cell_level[dep] = std::max(cell_level[dep], cell_level[index] + 1);
      if (--pending[dep] == 0) ready.push(dep);
    }
  }
  if (comb_topo.size() != comb_count) {
    status_ = Status::Error(ErrorCode::kInternal,
                            format("combinational loop in module %s",
                                   module_.name().c_str()));
    return;
  }

  // Group ops of a level contiguously. A cell's inputs come from strictly
  // lower levels, so a stable sort by level is still a topological order —
  // and it lets the level CSR double as op index ranges, which both the
  // dense fast path and the JIT's per-level straight-line code rely on.
  std::stable_sort(comb_topo.begin(), comb_topo.end(),
                   [&](std::size_t a, std::size_t b) {
                     return cell_level[a] < cell_level[b];
                   });

  // Flatten into the SoA op table, in level-sorted topological order.
  comb_ops_.reserve(comb_count);
  std::uint32_t max_level = 0;
  for (std::size_t cell_index : comb_topo) {
    const Cell& cell = cells[cell_index];
    CombOp op;
    op.kind = cell.kind;
    op.level = cell_level[cell_index];
    op.first_input = static_cast<std::uint32_t>(op_inputs_.size());
    op.input_count = static_cast<std::uint16_t>(cell.inputs.size());
    for (WireId wire : cell.inputs) {
      op_inputs_.push_back(wire);
      op_input_widths_.push_back(
          static_cast<std::uint8_t>(module_.wire_width(wire)));
    }
    op.out = cell.outputs[0];
    op.out_width = static_cast<std::uint8_t>(module_.wire_width(op.out));
    op.out_mask = bit_mask(op.out_width);
    op.param = cell.param;
    comb_ops_.push_back(op);
    max_level = std::max(max_level, op.level);
  }
  // CSR scratch arena for the per-level worklists: level l owns exactly as
  // many slots as it has ops (the worst case a delta can schedule). With the
  // level-sorted table the same offsets delimit the level's op indices.
  const std::size_t levels = comb_ops_.empty() ? 0 : max_level + 1;
  std::vector<std::uint32_t> level_counts(levels, 0);
  for (const CombOp& op : comb_ops_) ++level_counts[op.level];
  level_start_.assign(levels + 1, 0);
  for (std::size_t l = 0; l < levels; ++l) {
    level_start_[l + 1] = level_start_[l] + level_counts[l];
  }
  level_fill_.assign(levels, 0);
  level_arena_.assign(comb_ops_.size(), 0);
  op_scheduled_.assign(comb_ops_.size(), 0);

  comb_driver_.assign(wire_count, kNoCombOp);
  for (std::size_t i = 0; i < comb_ops_.size(); ++i) {
    comb_driver_[comb_ops_[i].out] = static_cast<std::uint32_t>(i);
  }

  // Per-wire fanout lists (CSR), deduplicated per op so a cell consuming the
  // same wire twice appears once.
  const auto for_each_unique_input = [&](const CombOp& op, auto&& fn) {
    const WireId* in = op_inputs_.data() + op.first_input;
    for (std::uint16_t i = 0; i < op.input_count; ++i) {
      bool seen = false;
      for (std::uint16_t j = 0; j < i; ++j) {
        if (in[j] == in[i]) { seen = true; break; }
      }
      if (!seen) fn(in[i]);
    }
  };
  std::vector<std::uint32_t> counts(wire_count, 0);
  for (const CombOp& op : comb_ops_) {
    for_each_unique_input(op, [&](WireId wire) { ++counts[wire]; });
  }
  fanout_offsets_.assign(wire_count + 1, 0);
  for (std::size_t w = 0; w < wire_count; ++w) {
    fanout_offsets_[w + 1] = fanout_offsets_[w] + counts[w];
  }
  fanout_ops_.resize(fanout_offsets_[wire_count]);
  std::vector<std::uint32_t> cursor(fanout_offsets_.begin(),
                                    fanout_offsets_.end() - 1);
  for (std::size_t i = 0; i < comb_ops_.size(); ++i) {
    for_each_unique_input(comb_ops_[i], [&](WireId wire) {
      fanout_ops_[cursor[wire]++] = static_cast<std::uint32_t>(i);
    });
  }

  // Lowest consumer level per wire — the JIT backend's dirty-level tracker.
  wire_min_level_.assign(wire_count,
                         static_cast<std::uint32_t>(levels));
  for (const CombOp& op : comb_ops_) {
    for_each_unique_input(op, [&](WireId wire) {
      wire_min_level_[wire] = std::min(wire_min_level_[wire], op.level);
    });
  }
}

void Simulator::reset() {
  cycles_ = 0;
  std::fill(values_.begin(), values_.end(), 0);
  for (const RegOp& op : reg_ops_) {
    values_[op.q] = truncate(op.reset_value, op.q_width);
  }
  mem_state_.clear();
  for (const Memory& memory : module_.memories()) {
    std::vector<std::uint64_t> contents(memory.depth, 0);
    for (std::size_t i = 0; i < memory.init.size() && i < memory.depth; ++i) {
      contents[i] = truncate(memory.init[i], memory.width);
    }
    mem_state_.push_back(std::move(contents));
  }
  // Full settle from scratch; every engine starts from a fully clean state.
  std::fill(level_fill_.begin(), level_fill_.end(), 0);
  std::fill(op_scheduled_.begin(), op_scheduled_.end(), 0);
  if (active_backend_ == SimBackend::kJit) {
    jit_kernel_->run_all(values_.data());
  } else {
    for (const CombOp& op : comb_ops_) values_[op.out] = eval_op(op);
  }
  jit_dirty_level_ = static_cast<std::uint32_t>(level_count());
  jit_dirty_seq_only_ = true;
  comb_dirty_ = false;
}

void Simulator::schedule_op(std::uint32_t op_index) {
  if (op_scheduled_[op_index]) return;
  op_scheduled_[op_index] = 1;
  const std::uint32_t level = comb_ops_[op_index].level;
  level_arena_[level_start_[level] + level_fill_[level]++] = op_index;
}

void Simulator::schedule_fanout(WireId wire) {
  const std::uint32_t begin = fanout_offsets_[wire];
  const std::uint32_t end = fanout_offsets_[wire + 1];
  for (std::uint32_t i = begin; i < end; ++i) schedule_op(fanout_ops_[i]);
}

void Simulator::mark_wire_changed(WireId wire, bool sequential) {
  comb_dirty_ = true;
  switch (active_backend_) {
    case SimBackend::kSweep:
      break;
    case SimBackend::kJit:
      jit_dirty_level_ = std::min(jit_dirty_level_, wire_min_level_[wire]);
      if (!sequential) jit_dirty_seq_only_ = false;
      break;
    case SimBackend::kEvent:
      schedule_fanout(wire);
      break;
  }
}

void Simulator::set_input(std::string_view port_name, std::uint64_t value) {
  const WireId wire = module_.port_wire(port_name);
  assert(wire != kNoWire && "unknown input port");
  set_input(wire, value);
}

void Simulator::set_input(WireId wire, std::uint64_t value) {
  const std::uint64_t truncated = truncate(value, module_.wire_width(wire));
  if (values_[wire] == truncated) return;
  values_[wire] = truncated;
  mark_wire_changed(wire);
}

std::uint64_t Simulator::get_output(std::string_view port_name) const {
  const WireId wire = module_.port_wire(port_name);
  assert(wire != kNoWire && "unknown output port");
  return values_[wire];
}

std::uint64_t Simulator::eval_op(const CombOp& op) const {
  const WireId* inputs = op_inputs_.data() + op.first_input;
  const std::uint8_t* widths = op_input_widths_.data() + op.first_input;
  return eval_comb_cell(
      op.kind, op.param, op.out_mask,
      [&](std::size_t index) { return values_[inputs[index]]; }, widths,
      op.input_count);
}

void Simulator::eval_comb() {
  if (!comb_dirty_) return;
  comb_dirty_ = false;

  if (active_backend_ == SimBackend::kSweep) {
    for (const CombOp& op : comb_ops_) values_[op.out] = eval_op(op);
    return;
  }

  if (active_backend_ == SimBackend::kJit) {
    // When every change since the last settle came from the clock edge
    // (register commits / RAM samples), only their transitive fanout can be
    // stale — run the compiled sequential-cone function. Otherwise fall back
    // to straight-line code for every level at or above the lowest level a
    // changed wire feeds. Re-evaluating an op whose inputs are unchanged
    // recomputes the same value, so both granularities are bit-identical to
    // the event-driven drain.
    const bool seq_only = jit_dirty_seq_only_;
    jit_dirty_seq_only_ = true;
    const std::uint32_t from = jit_dirty_level_;
    jit_dirty_level_ = static_cast<std::uint32_t>(level_count());
    if (seq_only) {
      jit_kernel_->run_seq(values_.data());
    } else {
      jit_kernel_->run_from_level(from, values_.data());
    }
    return;
  }

  // Drain levels in ascending order. A re-evaluated op only ever schedules
  // ops at strictly higher levels (its fanout), so each level's arena span is
  // complete by the time it is reached and every op runs at most once per
  // delta. Re-reading level_fill_ each iteration keeps same-level growth
  // (impossible by construction, but cheap) safe.
  for (std::size_t level = 0; level < level_fill_.size(); ++level) {
    const std::uint32_t base = level_start_[level];
    const std::uint32_t count = level_start_[level + 1] - base;
    if (level_fill_[level] == count) {
      // Dense fast path: every op in the level is scheduled, so the arena
      // holds a permutation of the level's own (contiguous) index range.
      // Sweep the range directly — sequential op-table traversal, wholesale
      // flag reset, no per-slot worklist bookkeeping.
      std::fill_n(op_scheduled_.begin() + base, count, std::uint8_t{0});
      for (std::uint32_t index = base; index < base + count; ++index) {
        const CombOp& op = comb_ops_[index];
        const std::uint64_t value = eval_op(op);
        if (value == values_[op.out]) continue;
        values_[op.out] = value;
        schedule_fanout(op.out);
      }
    } else {
      for (std::uint32_t i = 0; i < level_fill_[level]; ++i) {
        const std::uint32_t index = level_arena_[base + i];
        op_scheduled_[index] = 0;
        const CombOp& op = comb_ops_[index];
        const std::uint64_t value = eval_op(op);
        if (value == values_[op.out]) continue;
        values_[op.out] = value;
        schedule_fanout(op.out);
      }
    }
    level_fill_[level] = 0;
  }
}

void Simulator::commit_wire(WireId wire, unsigned width, std::uint64_t value) {
  const std::uint64_t truncated = truncate(value, width);
  if (values_[wire] == truncated) return;
  values_[wire] = truncated;
  mark_wire_changed(wire, /*sequential=*/true);
}

void Simulator::step() {
  eval_comb();

  // Sample all sequential inputs at the edge, then commit. Writes are
  // committed before reads sample, modelling write-first RAM ports (a read
  // and write to the same address in the same cycle returns the new data,
  // matching the behavioral templates used for NG-ULTRA TDP RAM inference).
  reg_scratch_.clear();
  ram_write_scratch_.clear();
  ram_sample_scratch_.clear();

  for (const RegOp& op : reg_ops_) {
    if (values_[op.en] != 0) {
      reg_scratch_.push_back({op.q, op.q_width, values_[op.d]});
    }
  }
  for (const RamWriteOp& op : ram_write_ops_) {
    if (values_[op.en] != 0) {
      ram_write_scratch_.push_back(
          {op.mem, op.width, values_[op.addr], values_[op.data]});
    }
  }
  for (const RamReadOp& op : ram_read_ops_) {
    ram_sample_scratch_.push_back(
        {op.data, op.mem, values_[op.addr], values_[op.en] != 0});
  }

  for (const RegUpdate& update : reg_scratch_) {
    commit_wire(update.q, update.width, update.value);
  }
  for (const RamUpdate& update : ram_write_scratch_) {
    auto& contents = mem_state_[update.mem];
    if (update.addr < contents.size()) {
      contents[update.addr] = truncate(update.value, update.width);
    }
  }
  for (const RamSample& sample : ram_sample_scratch_) {
    if (!sample.enabled) continue;
    const auto& contents = mem_state_[sample.mem];
    commit_wire(sample.data, 64,
                sample.addr < contents.size() ? contents[sample.addr] : 0);
  }

  ++cycles_;
  eval_comb();
}

Result<std::uint64_t> Simulator::run_until(std::string_view port_name,
                                           std::uint64_t max_cycles) {
  const std::uint64_t start = cycles_;
  eval_comb();  // lazy: settles only if an input changed since the last settle
  while (get_output(port_name) == 0) {
    if (cycles_ - start >= max_cycles) {
      return Status::Error(
          ErrorCode::kDeadlineExceeded,
          format("signal %.*s not asserted within %llu cycles",
                 static_cast<int>(port_name.size()), port_name.data(),
                 static_cast<unsigned long long>(max_cycles)));
    }
    step();
  }
  return cycles_ - start;
}

void Simulator::corrupt_wire(WireId wire, unsigned bit) {
  if (wire >= values_.size()) return;
  const unsigned width = module_.wire_width(wire);
  if (bit >= width) return;
  values_[wire] ^= 1ULL << bit;
  comb_dirty_ = true;
  if (active_backend_ == SimBackend::kEvent) {
    // If a comb cell drives this wire the next settle recomputes it (erasing
    // the flip, as the full sweep does); the driver sits at a lower level
    // than the fanout, so dependents observe the recomputed value.
    if (comb_driver_[wire] != kNoCombOp) schedule_op(comb_driver_[wire]);
    schedule_fanout(wire);
  } else if (active_backend_ == SimBackend::kJit) {
    std::uint32_t level = wire_min_level_[wire];
    if (comb_driver_[wire] != kNoCombOp) {
      level = std::min(level, comb_ops_[comb_driver_[wire]].level);
    }
    jit_dirty_level_ = std::min(jit_dirty_level_, level);
    // A flipped wire may sit outside the sequential cone (a comb-driven wire
    // awaiting recomputation): force the general level resume.
    jit_dirty_seq_only_ = false;
  }
}

std::vector<WireId> Simulator::register_outputs() const {
  std::vector<WireId> outputs;
  outputs.reserve(reg_ops_.size());
  for (const RegOp& op : reg_ops_) outputs.push_back(op.q);
  return outputs;
}

std::uint64_t Simulator::read_memory(std::size_t mem, std::size_t addr) const {
  const auto& contents = mem_state_.at(mem);
  return addr < contents.size() ? contents[addr] : 0;
}

void Simulator::write_memory(std::size_t mem, std::size_t addr,
                             std::uint64_t value) {
  auto& contents = mem_state_.at(mem);
  if (addr < contents.size()) {
    contents[addr] = truncate(value, module_.memories()[mem].width);
  }
}

}  // namespace hermes::hw
