#include "hw/netlist.hpp"

#include <cassert>
#include <unordered_set>

#include "common/strings.hpp"

namespace hermes::hw {

const char* to_string(CellKind kind) {
  switch (kind) {
    case CellKind::kConst: return "const";
    case CellKind::kAdd: return "add";
    case CellKind::kSub: return "sub";
    case CellKind::kMul: return "mul";
    case CellKind::kDivU: return "divu";
    case CellKind::kDivS: return "divs";
    case CellKind::kRemU: return "remu";
    case CellKind::kRemS: return "rems";
    case CellKind::kAnd: return "and";
    case CellKind::kOr: return "or";
    case CellKind::kXor: return "xor";
    case CellKind::kNot: return "not";
    case CellKind::kShl: return "shl";
    case CellKind::kShrU: return "shru";
    case CellKind::kShrS: return "shrs";
    case CellKind::kEq: return "eq";
    case CellKind::kNe: return "ne";
    case CellKind::kLtU: return "ltu";
    case CellKind::kLtS: return "lts";
    case CellKind::kLeU: return "leu";
    case CellKind::kLeS: return "les";
    case CellKind::kMux: return "mux";
    case CellKind::kZext: return "zext";
    case CellKind::kSext: return "sext";
    case CellKind::kSlice: return "slice";
    case CellKind::kConcat: return "concat";
    case CellKind::kRegister: return "register";
    case CellKind::kRamRead: return "ram_read";
    case CellKind::kRamWrite: return "ram_write";
  }
  return "?";
}

bool is_sequential(CellKind kind) {
  return kind == CellKind::kRegister || kind == CellKind::kRamRead ||
         kind == CellKind::kRamWrite;
}

WireId Module::add_wire(unsigned width, std::string name) {
  assert(width >= 1 && width <= 64);
  const WireId id = static_cast<WireId>(wire_widths_.size());
  wire_widths_.push_back(width);
  if (name.empty()) name = format("w%u", id);
  wire_names_.push_back(std::move(name));
  return id;
}

void Module::add_input(WireId wire, std::string name) {
  ports_.push_back({std::move(name), wire, /*is_input=*/true});
}

void Module::add_output(WireId wire, std::string name) {
  ports_.push_back({std::move(name), wire, /*is_input=*/false});
}

WireId Module::port_wire(std::string_view name) const {
  for (const Port& port : ports_) {
    if (port.name == name) return port.wire;
  }
  return kNoWire;
}

std::size_t Module::add_memory(Memory memory) {
  memories_.push_back(std::move(memory));
  return memories_.size() - 1;
}

std::size_t Module::add_cell(Cell cell) {
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

WireId Module::make_const(std::uint64_t value, unsigned width, std::string name) {
  const WireId out = add_wire(width, std::move(name));
  Cell cell;
  cell.kind = CellKind::kConst;
  cell.param = value & (width >= 64 ? ~0ULL : ((1ULL << width) - 1));
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_binop(CellKind kind, WireId a, WireId b, unsigned out_width,
                          std::string name) {
  const WireId out = add_wire(out_width, std::move(name));
  Cell cell;
  cell.kind = kind;
  cell.inputs = {a, b};
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_not(WireId a, std::string name) {
  const WireId out = add_wire(wire_width(a), std::move(name));
  Cell cell;
  cell.kind = CellKind::kNot;
  cell.inputs = {a};
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_mux(WireId sel, WireId if0, WireId if1, std::string name) {
  assert(wire_width(sel) == 1);
  assert(wire_width(if0) == wire_width(if1));
  const WireId out = add_wire(wire_width(if0), std::move(name));
  Cell cell;
  cell.kind = CellKind::kMux;
  cell.inputs = {sel, if0, if1};
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_zext(WireId a, unsigned out_width, std::string name) {
  const WireId out = add_wire(out_width, std::move(name));
  Cell cell;
  cell.kind = CellKind::kZext;
  cell.inputs = {a};
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_sext(WireId a, unsigned out_width, std::string name) {
  const WireId out = add_wire(out_width, std::move(name));
  Cell cell;
  cell.kind = CellKind::kSext;
  cell.inputs = {a};
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_slice(WireId a, unsigned lsb, unsigned out_width,
                          std::string name) {
  const WireId out = add_wire(out_width, std::move(name));
  Cell cell;
  cell.kind = CellKind::kSlice;
  cell.inputs = {a};
  cell.outputs = {out};
  cell.param = lsb;
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_concat(const std::vector<WireId>& lsb_first, std::string name) {
  unsigned total = 0;
  for (WireId wire : lsb_first) total += wire_width(wire);
  const WireId out = add_wire(total, std::move(name));
  Cell cell;
  cell.kind = CellKind::kConcat;
  cell.inputs = lsb_first;
  cell.outputs = {out};
  add_cell(std::move(cell));
  return out;
}

WireId Module::make_register(WireId d, WireId en, std::uint64_t reset_value,
                             std::string name) {
  const WireId q = add_wire(wire_width(d), std::move(name));
  Cell cell;
  cell.kind = CellKind::kRegister;
  cell.inputs = {d, en};
  cell.outputs = {q};
  cell.param = reset_value;
  add_cell(std::move(cell));
  return q;
}

WireId Module::make_ram_read(std::size_t mem, WireId addr, WireId en,
                             std::string name) {
  const WireId data = add_wire(memories_.at(mem).width, std::move(name));
  Cell cell;
  cell.kind = CellKind::kRamRead;
  cell.inputs = {addr, en};
  cell.outputs = {data};
  cell.param = mem;
  add_cell(std::move(cell));
  return data;
}

void Module::make_ram_write(std::size_t mem, WireId addr, WireId data, WireId en,
                            std::string name) {
  Cell cell;
  cell.kind = CellKind::kRamWrite;
  cell.inputs = {addr, data, en};
  cell.param = mem;
  cell.name = std::move(name);
  add_cell(std::move(cell));
}

NetlistStats Module::stats() const {
  NetlistStats stats;
  stats.cells = cells_.size();
  stats.memories = memories_.size();
  for (const Memory& memory : memories_) {
    stats.memory_bits += memory.width * memory.depth;
  }
  for (const Cell& cell : cells_) {
    switch (cell.kind) {
      case CellKind::kRegister:
        ++stats.registers;
        stats.register_bits += wire_width(cell.outputs[0]);
        break;
      case CellKind::kAdd: case CellKind::kSub:
        ++stats.arithmetic;
        break;
      case CellKind::kMul:
        ++stats.arithmetic;
        ++stats.multipliers;
        break;
      case CellKind::kDivU: case CellKind::kDivS:
      case CellKind::kRemU: case CellKind::kRemS:
        ++stats.arithmetic;
        ++stats.dividers;
        break;
      case CellKind::kMux:
        ++stats.muxes;
        break;
      default:
        break;
    }
  }
  return stats;
}

std::uint64_t Module::digest() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  };
  mix(wire_widths_.size());
  for (unsigned width : wire_widths_) mix(width);
  mix(ports_.size());
  for (const Port& port : ports_) {
    mix(port.wire);
    mix(port.is_input ? 1 : 0);
  }
  mix(cells_.size());
  for (const Cell& cell : cells_) {
    mix(static_cast<std::uint64_t>(cell.kind));
    mix(cell.param);
    mix(cell.inputs.size());
    for (WireId wire : cell.inputs) mix(wire);
    mix(cell.outputs.size());
    for (WireId wire : cell.outputs) mix(wire);
  }
  mix(memories_.size());
  for (const Memory& memory : memories_) {
    mix(memory.width);
    mix(memory.depth);
    mix(memory.dual_port ? 1 : 0);
    mix(memory.init.size());
    for (std::uint64_t word : memory.init) mix(word);
  }
  return hash;
}

Status Module::validate() const {
  std::unordered_set<WireId> driven;
  auto check_wire = [&](WireId wire) {
    return wire < wire_widths_.size();
  };
  for (const Port& port : ports_) {
    if (!check_wire(port.wire)) {
      return Status::Error(ErrorCode::kInternal,
                           format("port %s references invalid wire", port.name.c_str()));
    }
    if (port.is_input) driven.insert(port.wire);
  }
  for (const Cell& cell : cells_) {
    for (WireId wire : cell.inputs) {
      if (!check_wire(wire)) {
        return Status::Error(ErrorCode::kInternal,
                             format("cell %s has invalid input wire", to_string(cell.kind)));
      }
    }
    for (WireId wire : cell.outputs) {
      if (!check_wire(wire)) {
        return Status::Error(ErrorCode::kInternal,
                             format("cell %s has invalid output wire", to_string(cell.kind)));
      }
      if (!driven.insert(wire).second) {
        return Status::Error(
            ErrorCode::kInternal,
            format("wire %s is multiply driven", wire_names_.at(wire).c_str()));
      }
    }
    if ((cell.kind == CellKind::kRamRead || cell.kind == CellKind::kRamWrite) &&
        cell.param >= memories_.size()) {
      return Status::Error(ErrorCode::kInternal, "RAM cell references invalid memory");
    }
    if (cell.kind == CellKind::kMux && wire_width(cell.inputs[0]) != 1) {
      return Status::Error(ErrorCode::kInternal, "mux select must be 1 bit");
    }
    if (cell.kind == CellKind::kRegister &&
        wire_width(cell.inputs[0]) != wire_width(cell.outputs[0])) {
      return Status::Error(ErrorCode::kInternal, "register d/q width mismatch");
    }
  }
  return Status::Ok();
}

}  // namespace hermes::hw

namespace hermes::hw {

std::size_t sweep_dead_cells(Module& module) {
  // The Module API is append-only, so the sweep rebuilds the cell list.
  // Wires are left in place (unused wires cost nothing downstream).
  std::size_t removed_total = 0;
  while (true) {
    std::vector<bool> used(module.wire_count(), false);
    for (const Port& port : module.ports()) {
      if (!port.is_input) used[port.wire] = true;
    }
    for (const Cell& cell : module.cells()) {
      for (WireId wire : cell.inputs) used[wire] = true;
    }
    std::vector<Cell> kept;
    kept.reserve(module.cells().size());
    std::size_t removed = 0;
    for (const Cell& cell : module.cells()) {
      const bool effectful = cell.kind == CellKind::kRamWrite;
      bool drives_something = effectful;
      for (WireId wire : cell.outputs) {
        if (used[wire]) drives_something = true;
      }
      if (drives_something) {
        kept.push_back(cell);
      } else {
        ++removed;
      }
    }
    if (removed == 0) break;
    removed_total += removed;
    module.replace_cells(std::move(kept));
  }
  return removed_total;
}

}  // namespace hermes::hw
