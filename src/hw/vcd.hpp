// Minimal VCD (value change dump) writer so simulation runs can be inspected
// in a waveform viewer — the debugging loop the real flow gets from a Verilog
// simulator.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "hw/netlist.hpp"
#include "hw/sim.hpp"

namespace hermes::hw {

/// Records selected wires of a running Simulator and renders a VCD document.
class VcdTrace {
 public:
  VcdTrace(const Module& module, std::vector<WireId> wires);

  /// Samples the current values at the simulator's cycle counter.
  void sample(const Simulator& sim);

  /// Full VCD document (header + change records).
  [[nodiscard]] std::string str() const;

 private:
  const Module& module_;
  std::vector<WireId> wires_;
  std::vector<std::uint64_t> last_;
  std::vector<bool> has_last_;
  std::ostringstream changes_;
};

}  // namespace hermes::hw
