#include "ir/passes.hpp"

#include <map>
#include <optional>
#include <set>
#include <tuple>

#include "common/bits.hpp"

namespace hermes::ir {
namespace {

/// Replaces an instruction with `dest = copy src` preserving type.
void rewrite_to_copy(Instr& instr, RegId src) {
  instr.op = Op::kCopy;
  instr.src[0] = src;
  instr.src[1] = kNoReg;
  instr.src[2] = kNoReg;
  instr.imm = 0;
}

void rewrite_to_const(Instr& instr, std::uint64_t value) {
  instr.op = Op::kConst;
  instr.imm = truncate(value, instr.type.bits);
  instr.src[0] = instr.src[1] = instr.src[2] = kNoReg;
}

}  // namespace

std::size_t simplify_cfg(Function& function) {
  std::size_t changed = 0;

  // 1. Thread branches through empty forwarding blocks (blocks whose only
  //    instruction is an unconditional br).
  auto forward_target = [&](BlockId id) {
    // Follow chains of single-br blocks, guarding against cycles.
    std::set<BlockId> seen;
    while (seen.insert(id).second) {
      const Block& block = function.block(id);
      if (block.instrs.size() == 1 && block.instrs[0].op == Op::kBr &&
          block.instrs[0].target0 != id) {
        id = block.instrs[0].target0;
      } else {
        break;
      }
    }
    return id;
  };
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    Instr& term = function.block(b).instrs.back();
    if (term.op == Op::kBr) {
      const BlockId target = forward_target(term.target0);
      if (target != term.target0) {
        term.target0 = target;
        ++changed;
      }
    } else if (term.op == Op::kCondBr) {
      const BlockId t0 = forward_target(term.target0);
      const BlockId t1 = forward_target(term.target1);
      if (t0 != term.target0 || t1 != term.target1) {
        term.target0 = t0;
        term.target1 = t1;
        ++changed;
      }
      if (term.target0 == term.target1) {
        term.op = Op::kBr;
        term.src[0] = kNoReg;
        ++changed;
      }
    }
  }
  const BlockId entry_fwd = forward_target(function.entry);
  if (entry_fwd != function.entry) {
    function.entry = entry_fwd;
    ++changed;
  }

  // 2. Drop unreachable blocks by rewriting them to trivial self-loops (the
  //    block table is not compacted — ids stay stable — but dead bodies are
  //    emptied so they cost nothing downstream).
  std::vector<bool> reachable(function.num_blocks(), false);
  std::vector<BlockId> worklist = {function.entry};
  reachable[function.entry] = true;
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    const Instr& term = function.block(b).instrs.back();
    for (BlockId target : {term.target0, term.target1}) {
      if (target != kNoBlock && !reachable[target]) {
        reachable[target] = true;
        worklist.push_back(target);
      }
    }
  }
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    if (reachable[b]) continue;
    Block& block = function.block(b);
    if (block.instrs.size() == 1 && block.instrs[0].op == Op::kBr &&
        block.instrs[0].target0 == b) {
      continue;  // already a tombstone
    }
    changed += block.instrs.size();
    Instr self;
    self.op = Op::kBr;
    self.target0 = b;
    block.instrs.assign(1, self);
  }

  // 3. Merge a block into its unique successor when that successor has this
  //    block as its unique predecessor.
  std::vector<unsigned> pred_count(function.num_blocks(), 0);
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    if (!reachable[b]) continue;
    const Instr& term = function.block(b).instrs.back();
    if (term.op == Op::kBr) {
      ++pred_count[term.target0];
    } else if (term.op == Op::kCondBr) {
      ++pred_count[term.target0];
      ++pred_count[term.target1];
    }
  }
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    if (!reachable[b]) continue;
    while (true) {
      Block& block = function.block(b);
      const Instr term = block.instrs.back();
      if (term.op != Op::kBr) break;
      const BlockId succ = term.target0;
      if (succ == b || pred_count[succ] != 1 || succ == function.entry) break;
      // Splice successor body into this block.
      Block& next = function.block(succ);
      block.instrs.pop_back();
      for (Instr& instr : next.instrs) block.instrs.push_back(instr);
      Instr self;
      self.op = Op::kBr;
      self.target0 = succ;
      next.instrs.assign(1, self);
      pred_count[succ] = 0;
      ++changed;
    }
  }

  // 4. Physically remove everything unreachable (tombstones included) so
  //    downstream stages never see or schedule dead blocks.
  changed += function.compact_blocks();
  return changed;
}

std::size_t constant_fold(Function& function) {
  std::size_t changed = 0;
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    std::map<RegId, std::uint64_t> constants;  // reg -> known value (this block)
    for (Instr& instr : function.block(b).instrs) {
      const auto known = [&](int i) -> std::optional<std::uint64_t> {
        const auto it = constants.find(instr.src[i]);
        return it == constants.end() ? std::nullopt
                                     : std::optional(it->second);
      };
      const unsigned bits = instr.type.bits;

      // Fully-constant operands: evaluate.
      bool folded = false;
      switch (instr.op) {
        case Op::kAdd: case Op::kSub: case Op::kMul: case Op::kDiv:
        case Op::kRem: case Op::kAnd: case Op::kOr: case Op::kXor:
        case Op::kShl: case Op::kShr: case Op::kEq: case Op::kNe:
        case Op::kLt: case Op::kLe: {
          const auto a = known(0);
          const auto c = known(1);
          if (a && c) {
            std::uint64_t value = 0;
            const std::int64_t sa = sign_extend(*a, bits);
            const std::int64_t sc = sign_extend(*c, bits);
            switch (instr.op) {
              case Op::kAdd: value = *a + *c; break;
              case Op::kSub: value = *a - *c; break;
              case Op::kMul: value = *a * *c; break;
              case Op::kDiv:
                value = instr.type.is_signed
                            ? (sc == 0 ? ~0ULL : static_cast<std::uint64_t>(sa / sc))
                            : (*c == 0 ? ~0ULL : *a / *c);
                break;
              case Op::kRem:
                value = instr.type.is_signed
                            ? (sc == 0 ? static_cast<std::uint64_t>(sa)
                                       : static_cast<std::uint64_t>(sa % sc))
                            : (*c == 0 ? *a : *a % *c);
                break;
              case Op::kAnd: value = *a & *c; break;
              case Op::kOr: value = *a | *c; break;
              case Op::kXor: value = *a ^ *c; break;
              case Op::kShl: value = *c >= 64 ? 0 : *a << *c; break;
              case Op::kShr:
                value = instr.type.is_signed
                            ? static_cast<std::uint64_t>(sa >> (*c >= 63 ? 63 : *c))
                            : (*c >= 64 ? 0 : *a >> *c);
                break;
              case Op::kEq: value = *a == *c; break;
              case Op::kNe: value = *a != *c; break;
              case Op::kLt: value = instr.type.is_signed ? sa < sc : *a < *c; break;
              case Op::kLe: value = instr.type.is_signed ? sa <= sc : *a <= *c; break;
              default: break;
            }
            const unsigned dest_bits = function.reg_type(instr.dest).bits;
            rewrite_to_const(instr, truncate(value, dest_bits));
            instr.type = function.reg_type(instr.dest);
            folded = true;
            ++changed;
          }
          break;
        }
        case Op::kNot: case Op::kCopy: case Op::kZext: case Op::kSext:
        case Op::kTrunc: {
          const auto a = known(0);
          if (a) {
            std::uint64_t value = *a;
            if (instr.op == Op::kNot) value = ~value;
            if (instr.op == Op::kSext) {
              value = static_cast<std::uint64_t>(
                  sign_extend(*a, function.reg_type(instr.src[0]).bits));
            }
            const unsigned dest_bits = function.reg_type(instr.dest).bits;
            rewrite_to_const(instr, truncate(value, dest_bits));
            instr.type = function.reg_type(instr.dest);
            folded = true;
            ++changed;
          }
          break;
        }
        case Op::kSelect: {
          const auto cond = known(0);
          if (cond) {
            rewrite_to_copy(instr, *cond ? instr.src[1] : instr.src[2]);
            folded = true;
            ++changed;
          }
          break;
        }
        case Op::kCondBr: {
          const auto cond = known(0);
          if (cond) {
            instr.op = Op::kBr;
            instr.target0 = *cond ? instr.target0 : instr.target1;
            instr.src[0] = kNoReg;
            ++changed;
          }
          break;
        }
        default:
          break;
      }

      // Algebraic identities with one constant operand. (Values are copied
      // into plain bool/uint64 locals; older GCCs emit a spurious
      // maybe-uninitialized through std::optional here otherwise.)
      if (!folded && instr.dest != kNoReg) {
        const auto a_opt = known(0);
        const auto c_opt =
            instr.num_srcs() >= 2 ? known(1) : std::optional<std::uint64_t>();
        const bool has_a = a_opt.has_value();
        const bool has_c = c_opt.has_value();
        const std::uint64_t a_val = has_a ? *a_opt : 0;
        const std::uint64_t c_val = has_c ? *c_opt : 0;
        switch (instr.op) {
          case Op::kAdd:
            if (has_c && c_val == 0) { rewrite_to_copy(instr, instr.src[0]); ++changed; }
            else if (has_a && a_val == 0) { rewrite_to_copy(instr, instr.src[1]); ++changed; }
            break;
          case Op::kSub:
            if (has_c && c_val == 0) { rewrite_to_copy(instr, instr.src[0]); ++changed; }
            break;
          case Op::kMul:
            if ((has_c && c_val == 0) || (has_a && a_val == 0)) {
              rewrite_to_const(instr, 0);
              ++changed;
            } else if (has_c && c_val == 1) {
              rewrite_to_copy(instr, instr.src[0]);
              ++changed;
            } else if (has_a && a_val == 1) {
              rewrite_to_copy(instr, instr.src[1]);
              ++changed;
            }
            break;
          case Op::kAnd:
            if ((has_c && c_val == 0) || (has_a && a_val == 0)) { rewrite_to_const(instr, 0); ++changed; }
            else if (has_c && c_val == bit_mask(bits)) { rewrite_to_copy(instr, instr.src[0]); ++changed; }
            break;
          case Op::kOr:
          case Op::kXor:
            if (has_c && c_val == 0) { rewrite_to_copy(instr, instr.src[0]); ++changed; }
            else if (has_a && a_val == 0) { rewrite_to_copy(instr, instr.src[1]); ++changed; }
            break;
          case Op::kShl:
          case Op::kShr:
            if (has_c && c_val == 0) { rewrite_to_copy(instr, instr.src[0]); ++changed; }
            break;
          default:
            break;
        }
      }

      // Update the constant map: record kConst results, kill other writes.
      if (instr.dest != kNoReg) {
        if (instr.op == Op::kConst) {
          constants[instr.dest] = instr.imm;
        } else if (instr.op == Op::kCopy) {
          const auto it = constants.find(instr.src[0]);
          if (it != constants.end() && instr.src[0] != instr.dest) {
            constants[instr.dest] =
                truncate(it->second, function.reg_type(instr.dest).bits);
          } else {
            constants.erase(instr.dest);
          }
        } else {
          constants.erase(instr.dest);
        }
      }
    }
  }
  return changed;
}

std::size_t copy_propagate(Function& function) {
  std::size_t changed = 0;
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    // copy_of[r] = s means r currently holds the same value as s.
    std::map<RegId, RegId> copy_of;
    auto resolve = [&](RegId reg) {
      const auto it = copy_of.find(reg);
      return it == copy_of.end() ? reg : it->second;
    };
    for (Instr& instr : function.block(b).instrs) {
      for (unsigned s = 0; s < instr.num_srcs(); ++s) {
        if (instr.src[s] == kNoReg) continue;
        const RegId resolved = resolve(instr.src[s]);
        // Only propagate when the types agree bit-for-bit (copies can narrow
        // through coercion; reg types must match to substitute).
        if (resolved != instr.src[s] &&
            function.reg_type(resolved) == function.reg_type(instr.src[s])) {
          instr.src[s] = resolved;
          ++changed;
        }
      }
      if (instr.dest != kNoReg) {
        // This write invalidates any fact about dest, and any fact that
        // says some other register is a copy of dest.
        copy_of.erase(instr.dest);
        for (auto it = copy_of.begin(); it != copy_of.end();) {
          it = it->second == instr.dest ? copy_of.erase(it) : std::next(it);
        }
        if (instr.op == Op::kCopy && instr.src[0] != instr.dest &&
            function.reg_type(instr.src[0]) == function.reg_type(instr.dest)) {
          copy_of[instr.dest] = resolve(instr.src[0]);
        }
      }
    }
  }
  return changed;
}

std::size_t cse(Function& function) {
  std::size_t changed = 0;
  using Key = std::tuple<Op, unsigned, bool, RegId, RegId, RegId, std::uint64_t>;
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    std::map<Key, RegId> available;
    for (Instr& instr : function.block(b).instrs) {
      const bool pure =
          instr.dest != kNoReg && !has_side_effects(instr.op) &&
          instr.op != Op::kLoad && instr.op != Op::kConst && instr.op != Op::kCopy;
      const bool load = instr.op == Op::kLoad;
      if (pure || load) {
        Key key{instr.op, instr.type.bits, instr.type.is_signed,
                instr.src[0], instr.src[1], instr.src[2], instr.imm};
        const auto it = available.find(key);
        if (it != available.end() &&
            function.reg_type(it->second) == function.reg_type(instr.dest)) {
          rewrite_to_copy(instr, it->second);
          ++changed;
        } else {
          available[key] = instr.dest;
        }
      }
      if (instr.op == Op::kStore) {
        // Kill loads from the stored memory.
        for (auto it = available.begin(); it != available.end();) {
          const bool is_load = std::get<0>(it->first) == Op::kLoad;
          const bool same_mem = std::get<6>(it->first) == instr.imm;
          it = (is_load && same_mem) ? available.erase(it) : std::next(it);
        }
      }
      if (instr.dest != kNoReg) {
        // Kill expressions using or producing the overwritten register.
        for (auto it = available.begin(); it != available.end();) {
          const auto& [op, bits, sgn, s0, s1, s2, imm] = it->first;
          const bool uses = s0 == instr.dest || s1 == instr.dest || s2 == instr.dest;
          const bool produces = it->second == instr.dest;
          it = (uses || produces) ? available.erase(it) : std::next(it);
        }
        // Re-insert the instruction's own fact if still valid (operands not
        // clobbered by itself).
        const bool self_clobber = instr.src[0] == instr.dest ||
                                  instr.src[1] == instr.dest ||
                                  instr.src[2] == instr.dest;
        if ((pure || load) && instr.op != Op::kCopy && !self_clobber) {
          Key key{instr.op, instr.type.bits, instr.type.is_signed,
                  instr.src[0], instr.src[1], instr.src[2], instr.imm};
          available[key] = instr.dest;
        }
      }
    }
  }
  return changed;
}

std::size_t strength_reduce(Function& function) {
  std::size_t changed = 0;
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    std::map<RegId, std::uint64_t> constants;
    auto& instrs = function.block(b).instrs;
    std::vector<Instr> rewritten;
    rewritten.reserve(instrs.size());
    for (Instr instr : instrs) {
      const auto const_src1 = [&]() -> std::optional<std::uint64_t> {
        if (instr.num_srcs() < 2) return std::nullopt;
        const auto it = constants.find(instr.src[1]);
        return it == constants.end() ? std::nullopt : std::optional(it->second);
      }();
      if (const_src1 && *const_src1 != 0 &&
          (*const_src1 & (*const_src1 - 1)) == 0) {
        const unsigned log2 = bit_width_of(*const_src1) - 1;
        if (instr.op == Op::kMul) {
          // x * 2^k  ->  x << k
          const RegId shamt = function.new_reg({instr.type.bits, false});
          Instr c;
          c.op = Op::kConst;
          c.type = {instr.type.bits, false};
          c.dest = shamt;
          c.imm = log2;
          rewritten.push_back(c);
          instr.op = Op::kShl;
          instr.src[1] = shamt;
          ++changed;
        } else if (instr.op == Op::kDiv && !instr.type.is_signed) {
          const RegId shamt = function.new_reg({instr.type.bits, false});
          Instr c;
          c.op = Op::kConst;
          c.type = {instr.type.bits, false};
          c.dest = shamt;
          c.imm = log2;
          rewritten.push_back(c);
          instr.op = Op::kShr;
          instr.src[1] = shamt;
          ++changed;
        } else if (instr.op == Op::kRem && !instr.type.is_signed) {
          const RegId mask = function.new_reg(instr.type);
          Instr c;
          c.op = Op::kConst;
          c.type = instr.type;
          c.dest = mask;
          c.imm = *const_src1 - 1;
          rewritten.push_back(c);
          instr.op = Op::kAnd;
          instr.src[1] = mask;
          ++changed;
        }
      }
      if (instr.dest != kNoReg) {
        if (instr.op == Op::kConst) {
          constants[instr.dest] = instr.imm;
        } else {
          constants.erase(instr.dest);
        }
      }
      rewritten.push_back(std::move(instr));
    }
    instrs = std::move(rewritten);
  }
  return changed;
}

std::size_t dce(Function& function) {
  std::size_t removed = 0;
  while (true) {
    std::vector<bool> read(function.num_regs(), false);
    for (const ParamDecl& param : function.params) {
      if (!param.is_array()) read[param.reg] = false;  // params start unread
    }
    for (BlockId b = 0; b < function.num_blocks(); ++b) {
      for (const Instr& instr : function.block(b).instrs) {
        for (unsigned s = 0; s < instr.num_srcs(); ++s) {
          if (instr.src[s] != kNoReg) read[instr.src[s]] = true;
        }
      }
    }
    std::size_t round = 0;
    for (BlockId b = 0; b < function.num_blocks(); ++b) {
      auto& instrs = function.block(b).instrs;
      std::vector<Instr> kept;
      kept.reserve(instrs.size());
      for (Instr& instr : instrs) {
        const bool removable = instr.dest != kNoReg &&
                               !has_side_effects(instr.op) &&
                               !read[instr.dest];
        if (removable) {
          ++round;
        } else {
          kept.push_back(std::move(instr));
        }
      }
      instrs = std::move(kept);
    }
    removed += round;
    if (round == 0) break;
  }
  return removed;
}

std::size_t mark_roms(Function& function) {
  std::vector<bool> stored(function.memories().size(), false);
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    for (const Instr& instr : function.block(b).instrs) {
      if (instr.op == Op::kStore) stored[instr.imm] = true;
    }
  }
  std::size_t changed = 0;
  for (std::size_t i = 0; i < function.memories().size(); ++i) {
    MemDecl& mem = function.memories()[i];
    if (!mem.is_interface && !mem.is_rom && !stored[i]) {
      mem.is_rom = true;
      ++changed;
    }
  }
  return changed;
}

std::size_t if_convert(Function& function, unsigned max_instrs) {
  // Predecessor counts over reachable blocks.
  std::vector<unsigned> preds(function.num_blocks(), 0);
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    const Instr& term = function.block(b).terminator();
    if (term.op == Op::kBr) {
      ++preds[term.target0];
    } else if (term.op == Op::kCondBr) {
      ++preds[term.target0];
      ++preds[term.target1];
    }
  }

  // A branch arm is convertible when it is a straight-line block with a
  // single predecessor, only pure value-producing instructions, and an
  // unconditional branch out.
  auto arm_ok = [&](BlockId arm, BlockId from) {
    if (preds[arm] != 1) return false;
    const Block& block = function.block(arm);
    if (block.instrs.size() > max_instrs + 1) return false;
    if (block.terminator().op != Op::kBr) return false;
    if (block.terminator().target0 == arm || arm == from) return false;
    for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      if (has_side_effects(instr.op) || instr.dest == kNoReg) return false;
    }
    return true;
  };

  std::size_t converted = 0;
  for (BlockId a = 0; a < function.num_blocks(); ++a) {
    Instr term = function.block(a).terminator();
    if (term.op != Op::kCondBr) continue;
    const RegId cond = term.src[0];
    const BlockId t = term.target0;
    const BlockId f = term.target1;
    if (t == f) continue;

    // Recognize a diamond (A->T->J, A->F->J) or triangles (A->T->J, A->J).
    BlockId join = kNoBlock;
    bool convert_t = false, convert_f = false;
    if (arm_ok(t, a) && arm_ok(f, a) &&
        function.block(t).terminator().target0 ==
            function.block(f).terminator().target0) {
      join = function.block(t).terminator().target0;
      convert_t = convert_f = true;
    } else if (arm_ok(t, a) && function.block(t).terminator().target0 == f) {
      join = f;
      convert_t = true;
    } else if (arm_ok(f, a) && function.block(f).terminator().target0 == t) {
      join = t;
      convert_f = true;
    } else {
      continue;
    }
    if (join == a) continue;

    // Copy the condition: a converted arm may overwrite the condition
    // register, and the merge selects must all read the original value.
    Block& head = function.block(a);
    head.instrs.pop_back();  // drop the condbr; re-terminated below
    const RegId cond_copy = function.new_reg(function.reg_type(cond));
    {
      Instr copy;
      copy.op = Op::kCopy;
      copy.type = function.reg_type(cond);
      copy.dest = cond_copy;
      copy.src[0] = cond;
      function.block(a).instrs.push_back(copy);
    }

    // Speculate one arm into A, renaming destinations to fresh registers.
    auto speculate = [&](BlockId arm) {
      std::map<RegId, RegId> renamed;
      const Block& block = function.block(arm);
      for (std::size_t i = 0; i + 1 < block.instrs.size(); ++i) {
        Instr instr = block.instrs[i];
        for (unsigned s = 0; s < instr.num_srcs(); ++s) {
          const auto it = renamed.find(instr.src[s]);
          if (it != renamed.end()) instr.src[s] = it->second;
        }
        const RegId fresh = function.new_reg(function.reg_type(instr.dest));
        renamed[instr.dest] = fresh;
        instr.dest = fresh;
        function.block(a).instrs.push_back(instr);
      }
      return renamed;
    };
    std::map<RegId, RegId> renamed_t, renamed_f;
    if (convert_t) renamed_t = speculate(t);
    if (convert_f) renamed_f = speculate(f);

    // Merge every written register with a select on the condition.
    std::map<RegId, bool> written;
    for (const auto& [reg, tmp] : renamed_t) written[reg] = true;
    for (const auto& [reg, tmp] : renamed_f) written[reg] = true;
    for (const auto& [reg, unused] : written) {
      const auto in_t = renamed_t.find(reg);
      const auto in_f = renamed_f.find(reg);
      Instr select;
      select.op = Op::kSelect;
      select.type = function.reg_type(reg);
      select.dest = reg;
      select.src[0] = cond_copy;
      select.src[1] = in_t != renamed_t.end() ? in_t->second : reg;
      select.src[2] = in_f != renamed_f.end() ? in_f->second : reg;
      function.block(a).instrs.push_back(select);
    }

    Instr br;
    br.op = Op::kBr;
    br.target0 = join;
    function.block(a).instrs.push_back(br);
    // The arm blocks become unreachable; simplify_cfg tombstones them.
    ++converted;
    // Predecessor bookkeeping is now stale for this round; rebuilding is
    // cheap but converting one diamond per block per pass round is enough.
  }
  return converted;
}

std::vector<PassReport> run_pipeline(Function& function) {
  std::vector<PassReport> reports;
  auto record = [&](const char* name, std::size_t changed) {
    reports.push_back({name, changed, function.instr_count()});
  };
  for (int round = 0; round < 4; ++round) {
    std::size_t total = 0;
    std::size_t n;
    n = simplify_cfg(function); total += n; record("simplify_cfg", n);
    n = if_convert(function); total += n; record("if_convert", n);
    n = constant_fold(function); total += n; record("constant_fold", n);
    n = copy_propagate(function); total += n; record("copy_propagate", n);
    n = cse(function); total += n; record("cse", n);
    n = strength_reduce(function); total += n; record("strength_reduce", n);
    n = dce(function); total += n; record("dce", n);
    if (total == 0) break;
  }
  mark_roms(function);
  return reports;
}

}  // namespace hermes::ir
