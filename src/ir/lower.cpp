#include "ir/lower.hpp"

#include <cassert>
#include <map>
#include <optional>
#include <vector>

#include "common/bits.hpp"
#include "common/strings.hpp"
#include "frontend/typecheck.hpp"

namespace hermes::ir {

IrType to_ir_type(const fe::Type& type) {
  switch (type.kind) {
    case fe::Type::Kind::kVoid: return {0, false};
    case fe::Type::Kind::kBool: return {1, false};
    case fe::Type::Kind::kInt: return {type.bits, type.is_signed};
  }
  return {32, true};
}

namespace {

using fe::Expr;
using fe::Stmt;

/// A named entity in scope: a scalar register or an array memory.
struct Binding {
  RegId reg = kNoReg;
  std::size_t mem = SIZE_MAX;
  std::vector<std::size_t> dims;  ///< per-dimension extents for arrays
  [[nodiscard]] bool is_array() const { return mem != SIZE_MAX; }
};

class Lowerer {
 public:
  Lowerer(const fe::Program& program, const LowerOptions& options)
      : program_(program), options_(options) {}

  Result<Function> run(std::string_view top) {
    const fe::FuncDecl* fn = program_.find(std::string(top));
    if (!fn) {
      return Status::Error(ErrorCode::kNotFound,
                           format("top function '%.*s' not found",
                                  static_cast<int>(top.size()), top.data()));
    }
    func_ = std::make_unique<Function>(fn->name);
    func_->return_type = to_ir_type(fn->return_type);
    current_ = func_->new_block();
    func_->entry = current_;

    push_scope();
    for (const fe::Param& param : fn->params) {
      ParamDecl decl;
      decl.name = param.name;
      decl.type = to_ir_type(param.type);
      if (param.array_size != 0) {
        MemDecl mem;
        mem.name = param.name;
        mem.element = decl.type;
        mem.depth = param.array_size;
        mem.is_interface = true;
        mem.is_rom = param.is_const;
        decl.mem = func_->add_memory(std::move(mem));
        bind(param.name, Binding{kNoReg, decl.mem, param.dims});
      } else {
        decl.reg = func_->new_reg(decl.type);
        bind(param.name, Binding{decl.reg, SIZE_MAX, {}});
      }
      func_->params.push_back(std::move(decl));
    }

    lower_block(*fn->body);
    pop_scope();
    if (!error_.ok()) return error_;

    // Implicit return for void functions / missing trailing return.
    if (!block_terminated()) {
      Instr ret;
      ret.op = Op::kRet;
      ret.src[0] = kNoReg;
      if (func_->return_type.bits != 0) {
        // Missing return in a value-returning function: return 0 (C UB; we
        // pick a deterministic value so hardware and interpreter agree).
        const RegId zero = emit_const(0, func_->return_type);
        ret.src[0] = zero;
      }
      emit(std::move(ret));
    }

    // Remove unreachable empty blocks created by lowering (e.g. after
    // return): give them a self-loop terminator so validation passes, the
    // dead-block cleanup in the pass pipeline will drop them.
    for (BlockId b = 0; b < func_->num_blocks(); ++b) {
      Block& block = func_->block(b);
      if (block.instrs.empty() || !is_terminator(block.instrs.back().op)) {
        Instr br;
        br.op = Op::kBr;
        br.target0 = b;
        block.instrs.push_back(br);
      }
    }

    Status valid = func_->validate();
    if (!valid.ok()) return valid;
    return std::move(*func_);
  }

 private:
  // ---- diagnostics ----
  void fail(fe::SrcLoc loc, std::string message) {
    if (error_.ok()) {
      error_ = Status::Error(ErrorCode::kUnsupported,
                             format("line %u: %s", loc.line, message.c_str()));
    }
  }
  [[nodiscard]] bool failed() const { return !error_.ok(); }

  // ---- scope ----
  void push_scope() { scopes_.emplace_back(); }
  void pop_scope() { scopes_.pop_back(); }
  void bind(const std::string& name, Binding binding) {
    scopes_.back()[name] = binding;
  }
  [[nodiscard]] const Binding* lookup(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // ---- emission ----
  [[nodiscard]] bool block_terminated() const {
    const Block& block = func_->block(current_);
    return !block.instrs.empty() && is_terminator(block.instrs.back().op);
  }
  void emit(Instr instr) {
    if (block_terminated()) return;  // unreachable code is dropped
    func_->block(current_).instrs.push_back(std::move(instr));
  }
  void switch_to(BlockId block) { current_ = block; }
  void branch_to(BlockId target) {
    Instr br;
    br.op = Op::kBr;
    br.target0 = target;
    emit(std::move(br));
  }
  void cond_branch(RegId cond, BlockId if_true, BlockId if_false) {
    Instr br;
    br.op = Op::kCondBr;
    br.src[0] = cond;
    br.target0 = if_true;
    br.target1 = if_false;
    emit(std::move(br));
  }

  RegId emit_const(std::uint64_t value, IrType type) {
    const RegId reg = func_->new_reg(type);
    Instr instr;
    instr.op = Op::kConst;
    instr.type = type;
    instr.dest = reg;
    instr.imm = truncate(value, type.bits);
    emit(std::move(instr));
    return reg;
  }

  RegId emit_unop(Op op, RegId a, IrType type) {
    const RegId reg = func_->new_reg(type);
    Instr instr;
    instr.op = op;
    instr.type = type;
    instr.dest = reg;
    instr.src[0] = a;
    emit(std::move(instr));
    return reg;
  }

  RegId emit_binop(Op op, RegId a, RegId b, IrType type) {
    const RegId reg = func_->new_reg(type);
    Instr instr;
    instr.op = op;
    instr.type = type;
    instr.dest = reg;
    instr.src[0] = a;
    instr.src[1] = b;
    emit(std::move(instr));
    return reg;
  }

  /// Converts `value` (of register type) to `target`.
  RegId coerce(RegId value, IrType target) {
    const IrType from = func_->reg_type(value);
    if (from == target) return value;
    if (target.bits == 1) {
      // int -> bool: != 0
      const RegId zero = emit_const(0, from);
      return emit_binop(Op::kNe, value, zero, {1, false});
    }
    if (from.bits == target.bits) {
      // Same width, signedness differs: bit pattern unchanged.
      return emit_unop(Op::kCopy, value, target);
    }
    if (from.bits > target.bits) {
      return emit_unop(Op::kTrunc, value, target);
    }
    return emit_unop(from.is_signed ? Op::kSext : Op::kZext, value, target);
  }

  // ---- statements ----
  void lower_block(const fe::BlockStmt& block) {
    push_scope();
    for (const fe::StmtPtr& stmt : block.body) {
      if (failed()) break;
      lower_stmt(*stmt);
    }
    pop_scope();
  }

  void lower_stmt(const Stmt& stmt) {
    if (failed()) return;
    switch (stmt.kind) {
      case Stmt::Kind::kExpr:
        lower_expr(*static_cast<const fe::ExprStmt&>(stmt).expr);
        break;
      case Stmt::Kind::kVarDecl:
        lower_var_decl(static_cast<const fe::VarDeclStmt&>(stmt));
        break;
      case Stmt::Kind::kBlock:
        lower_block(static_cast<const fe::BlockStmt&>(stmt));
        break;
      case Stmt::Kind::kIf: {
        const auto& branch = static_cast<const fe::IfStmt&>(stmt);
        const RegId cond = lower_condition(*branch.condition);
        const BlockId then_block = func_->new_block();
        const BlockId join = func_->new_block();
        const BlockId else_block =
            branch.else_branch ? func_->new_block() : join;
        cond_branch(cond, then_block, else_block);
        switch_to(then_block);
        lower_stmt(*branch.then_branch);
        branch_to(join);
        if (branch.else_branch) {
          switch_to(else_block);
          lower_stmt(*branch.else_branch);
          branch_to(join);
        }
        switch_to(join);
        break;
      }
      case Stmt::Kind::kWhile: {
        const auto& loop = static_cast<const fe::WhileStmt&>(stmt);
        const BlockId header = func_->new_block();
        const BlockId body = func_->new_block();
        const BlockId exit = func_->new_block();
        branch_to(header);
        switch_to(header);
        const RegId cond = lower_condition(*loop.condition);
        cond_branch(cond, body, exit);
        loop_stack_.push_back({exit, header});
        switch_to(body);
        lower_stmt(*loop.body);
        branch_to(header);
        loop_stack_.pop_back();
        switch_to(exit);
        break;
      }
      case Stmt::Kind::kDoWhile: {
        const auto& loop = static_cast<const fe::DoWhileStmt&>(stmt);
        const BlockId body = func_->new_block();
        const BlockId latch = func_->new_block();
        const BlockId exit = func_->new_block();
        branch_to(body);
        loop_stack_.push_back({exit, latch});
        switch_to(body);
        lower_stmt(*loop.body);
        branch_to(latch);
        loop_stack_.pop_back();
        switch_to(latch);
        const RegId cond = lower_condition(*loop.condition);
        cond_branch(cond, body, exit);
        switch_to(exit);
        break;
      }
      case Stmt::Kind::kFor:
        lower_for(static_cast<const fe::ForStmt&>(stmt));
        break;
      case Stmt::Kind::kReturn: {
        const auto& ret = static_cast<const fe::ReturnStmt&>(stmt);
        RegId value = kNoReg;
        if (ret.value) {
          value = lower_expr(*ret.value);
          if (failed()) return;
        }
        if (!inline_stack_.empty()) {
          // Return inside an inlined callee: assign + jump to continuation.
          InlineContext& ctx = inline_stack_.back();
          if (ctx.result_reg != kNoReg && value != kNoReg) {
            const IrType result_type = func_->reg_type(ctx.result_reg);
            emit_copy_into(ctx.result_reg, coerce(value, result_type));
          }
          branch_to(ctx.continuation);
        } else {
          Instr instr;
          instr.op = Op::kRet;
          instr.src[0] = value == kNoReg
                             ? kNoReg
                             : coerce(value, func_->return_type);
          emit(std::move(instr));
        }
        // Subsequent statements in this block are unreachable; move to a
        // fresh block so lowering can continue harmlessly.
        switch_to(func_->new_block());
        break;
      }
      case Stmt::Kind::kBreak:
        if (!loop_stack_.empty()) {
          branch_to(loop_stack_.back().break_target);
          switch_to(func_->new_block());
        }
        break;
      case Stmt::Kind::kContinue:
        if (!loop_stack_.empty()) {
          branch_to(loop_stack_.back().continue_target);
          switch_to(func_->new_block());
        }
        break;
    }
  }

  void lower_var_decl(const fe::VarDeclStmt& decl) {
    const IrType type = to_ir_type(decl.type);
    if (decl.array_size != 0) {
      MemDecl mem;
      mem.name = unique_mem_name(decl.name);
      mem.element = type;
      mem.depth = decl.array_size;
      mem.is_interface = false;
      for (std::uint64_t v : decl.array_init) {
        mem.init.push_back(truncate(v, type.bits));
      }
      // C semantics: partially initialized arrays are zero-filled; fully
      // uninitialized local arrays are undefined, we zero them for
      // hardware/software agreement.
      mem.init.resize(decl.array_size, 0);
      const std::size_t index = func_->add_memory(std::move(mem));
      bind(decl.name, Binding{kNoReg, index, decl.dims});
      return;
    }
    const RegId reg = func_->new_reg(type);
    bind(decl.name, Binding{reg, SIZE_MAX, {}});
    RegId init;
    if (decl.init) {
      init = coerce(lower_expr(*decl.init), type);
    } else {
      init = emit_const(0, type);  // deterministic init (see array note)
    }
    emit_copy_into(reg, init);
  }

  void emit_copy_into(RegId dest, RegId src) {
    if (dest == src) return;
    Instr instr;
    instr.op = Op::kCopy;
    instr.type = func_->reg_type(dest);
    instr.dest = dest;
    instr.src[0] = src;
    emit(std::move(instr));
  }

  // ---- for loops (with optional full unrolling) ----
  struct CountedLoop {
    const fe::VarDeclStmt* decl;  ///< loop variable declaration
    std::int64_t start, bound, step;
    fe::BinaryOp cmp;
  };

  /// Recognizes `for (T i = C0; i <cmp> C1; i = i + C2)` with a loop-local
  /// declaration, constant bounds and a body free of break/continue and of
  /// writes to i.
  std::optional<CountedLoop> match_counted(const fe::ForStmt& loop) {
    if (!loop.init || !loop.condition || !loop.update) return std::nullopt;
    if (loop.init->kind != Stmt::Kind::kVarDecl) return std::nullopt;
    const auto& decl = static_cast<const fe::VarDeclStmt&>(*loop.init);
    if (decl.array_size != 0 || !decl.init) return std::nullopt;
    if (decl.init->kind != Expr::Kind::kIntLit) return std::nullopt;
    const auto start = static_cast<std::int64_t>(
        static_cast<const fe::IntLitExpr&>(*decl.init).value);

    if (loop.condition->kind != Expr::Kind::kBinary) return std::nullopt;
    const auto& cond = static_cast<const fe::BinaryExpr&>(*loop.condition);
    if (cond.op != fe::BinaryOp::kLt && cond.op != fe::BinaryOp::kLe)
      return std::nullopt;
    if (cond.lhs->kind != Expr::Kind::kVarRef ||
        static_cast<const fe::VarRefExpr&>(*cond.lhs).name != decl.name)
      return std::nullopt;
    if (cond.rhs->kind != Expr::Kind::kIntLit) return std::nullopt;
    const auto bound = static_cast<std::int64_t>(
        static_cast<const fe::IntLitExpr&>(*cond.rhs).value);

    if (loop.update->kind != Expr::Kind::kAssign) return std::nullopt;
    const auto& update = static_cast<const fe::AssignExpr&>(*loop.update);
    if (update.target->kind != Expr::Kind::kVarRef ||
        static_cast<const fe::VarRefExpr&>(*update.target).name != decl.name)
      return std::nullopt;
    if (update.value->kind != Expr::Kind::kBinary) return std::nullopt;
    const auto& add = static_cast<const fe::BinaryExpr&>(*update.value);
    if (add.op != fe::BinaryOp::kAdd) return std::nullopt;
    if (add.lhs->kind != Expr::Kind::kVarRef ||
        static_cast<const fe::VarRefExpr&>(*add.lhs).name != decl.name)
      return std::nullopt;
    if (add.rhs->kind != Expr::Kind::kIntLit) return std::nullopt;
    const auto step = static_cast<std::int64_t>(
        static_cast<const fe::IntLitExpr&>(*add.rhs).value);
    if (step <= 0) return std::nullopt;

    if (body_blocks_control(*loop.body, decl.name)) return std::nullopt;
    return CountedLoop{&decl, start, bound, step, cond.op};
  }

  /// True if the body contains break/continue/return or writes the loop var.
  bool body_blocks_control(const Stmt& stmt, const std::string& var) {
    switch (stmt.kind) {
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
      case Stmt::Kind::kReturn:
        return true;
      case Stmt::Kind::kBlock: {
        for (const fe::StmtPtr& child :
             static_cast<const fe::BlockStmt&>(stmt).body) {
          if (body_blocks_control(*child, var)) return true;
        }
        return false;
      }
      case Stmt::Kind::kIf: {
        const auto& branch = static_cast<const fe::IfStmt&>(stmt);
        if (expr_writes(*branch.condition, var)) return true;
        if (body_blocks_control(*branch.then_branch, var)) return true;
        return branch.else_branch && body_blocks_control(*branch.else_branch, var);
      }
      case Stmt::Kind::kWhile: {
        const auto& loop = static_cast<const fe::WhileStmt&>(stmt);
        return expr_writes(*loop.condition, var) ||
               body_blocks_control(*loop.body, var);
      }
      case Stmt::Kind::kDoWhile: {
        const auto& loop = static_cast<const fe::DoWhileStmt&>(stmt);
        return expr_writes(*loop.condition, var) ||
               body_blocks_control(*loop.body, var);
      }
      case Stmt::Kind::kFor: {
        // Nested for: conservatively scan all parts for writes of `var`, and
        // its body for control statements that would escape the outer body.
        const auto& loop = static_cast<const fe::ForStmt&>(stmt);
        if (loop.init && body_blocks_control_decl_safe(*loop.init, var)) return true;
        if (loop.condition && expr_writes(*loop.condition, var)) return true;
        if (loop.update && expr_writes(*loop.update, var)) return true;
        // break/continue inside the nested loop bind to it, so only `return`
        // and writes matter below; keep it conservative and reuse the scan.
        return body_blocks_control(*loop.body, var);
      }
      case Stmt::Kind::kExpr:
        return expr_writes(*static_cast<const fe::ExprStmt&>(stmt).expr, var);
      case Stmt::Kind::kVarDecl: {
        const auto& decl = static_cast<const fe::VarDeclStmt&>(stmt);
        return decl.init && expr_writes(*decl.init, var);
      }
    }
    return false;
  }

  bool body_blocks_control_decl_safe(const Stmt& stmt, const std::string& var) {
    if (stmt.kind == Stmt::Kind::kVarDecl) {
      const auto& decl = static_cast<const fe::VarDeclStmt&>(stmt);
      return decl.init && expr_writes(*decl.init, var);
    }
    return body_blocks_control(stmt, var);
  }

  bool expr_writes(const Expr& expr, const std::string& var) {
    switch (expr.kind) {
      case Expr::Kind::kAssign: {
        const auto& assign = static_cast<const fe::AssignExpr&>(expr);
        if (assign.target->kind == Expr::Kind::kVarRef &&
            static_cast<const fe::VarRefExpr&>(*assign.target).name == var) {
          return true;
        }
        return expr_writes(*assign.target, var) || expr_writes(*assign.value, var);
      }
      case Expr::Kind::kUnary:
        return expr_writes(*static_cast<const fe::UnaryExpr&>(expr).operand, var);
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const fe::BinaryExpr&>(expr);
        return expr_writes(*bin.lhs, var) || expr_writes(*bin.rhs, var);
      }
      case Expr::Kind::kTernary: {
        const auto& sel = static_cast<const fe::TernaryExpr&>(expr);
        return expr_writes(*sel.condition, var) ||
               expr_writes(*sel.if_true, var) || expr_writes(*sel.if_false, var);
      }
      case Expr::Kind::kCall: {
        const auto& call = static_cast<const fe::CallExpr&>(expr);
        for (const fe::ExprPtr& arg : call.args) {
          if (expr_writes(*arg, var)) return true;
        }
        return false;
      }
      case Expr::Kind::kCast:
        return expr_writes(*static_cast<const fe::CastExpr&>(expr).operand, var);
      case Expr::Kind::kArrayIndex: {
        for (const fe::ExprPtr& index :
             static_cast<const fe::ArrayIndexExpr&>(expr).indices) {
          if (expr_writes(*index, var)) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  void lower_for(const fe::ForStmt& loop) {
    if (options_.unroll_limit > 0) {
      if (auto counted = match_counted(loop)) {
        std::uint64_t trips = 0;
        for (std::int64_t i = counted->start;
             counted->cmp == fe::BinaryOp::kLt ? i < counted->bound
                                               : i <= counted->bound;
             i += counted->step) {
          ++trips;
          if (trips > options_.unroll_limit) break;
        }
        if (trips <= options_.unroll_limit) {
          lower_unrolled(loop, *counted);
          return;
        }
      }
    }
    // Generic rolled lowering.
    push_scope();
    if (loop.init) lower_stmt(*loop.init);
    const BlockId header = func_->new_block();
    const BlockId body = func_->new_block();
    const BlockId latch = func_->new_block();
    const BlockId exit = func_->new_block();
    branch_to(header);
    switch_to(header);
    if (loop.condition) {
      const RegId cond = lower_condition(*loop.condition);
      cond_branch(cond, body, exit);
    } else {
      branch_to(body);
    }
    loop_stack_.push_back({exit, latch});
    switch_to(body);
    lower_stmt(*loop.body);
    branch_to(latch);
    loop_stack_.pop_back();
    switch_to(latch);
    if (loop.update) lower_expr(*loop.update);
    branch_to(header);
    switch_to(exit);
    pop_scope();
  }

  void lower_unrolled(const fe::ForStmt& loop, const CountedLoop& counted) {
    push_scope();
    const IrType type = to_ir_type(counted.decl->type);
    const RegId ivar = func_->new_reg(type);
    bind(counted.decl->name, Binding{ivar, SIZE_MAX, {}});
    for (std::int64_t i = counted.start;
         counted.cmp == fe::BinaryOp::kLt ? i < counted.bound : i <= counted.bound;
         i += counted.step) {
      const RegId value = emit_const(static_cast<std::uint64_t>(i), type);
      emit_copy_into(ivar, value);
      lower_stmt(*loop.body);
      if (failed()) break;
    }
    pop_scope();
  }

  // ---- expressions ----
  RegId lower_condition(const Expr& expr) {
    const RegId value = lower_expr(expr);
    if (failed()) return value;
    return coerce(value, {1, false});
  }

  static Op binary_op_to_ir(fe::BinaryOp op) {
    switch (op) {
      case fe::BinaryOp::kAdd: return Op::kAdd;
      case fe::BinaryOp::kSub: return Op::kSub;
      case fe::BinaryOp::kMul: return Op::kMul;
      case fe::BinaryOp::kDiv: return Op::kDiv;
      case fe::BinaryOp::kRem: return Op::kRem;
      case fe::BinaryOp::kAnd: return Op::kAnd;
      case fe::BinaryOp::kOr: return Op::kOr;
      case fe::BinaryOp::kXor: return Op::kXor;
      case fe::BinaryOp::kShl: return Op::kShl;
      case fe::BinaryOp::kShr: return Op::kShr;
      case fe::BinaryOp::kEq: return Op::kEq;
      case fe::BinaryOp::kNe: return Op::kNe;
      case fe::BinaryOp::kLt: return Op::kLt;
      case fe::BinaryOp::kLe: return Op::kLe;
      default: return Op::kAdd;  // kGt/kGe/logical handled separately
    }
  }

  static bool expr_has_side_effects(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAssign:
      case Expr::Kind::kCall:  // calls are inlined and may contain stores
        return true;
      case Expr::Kind::kUnary:
        return expr_has_side_effects(
            *static_cast<const fe::UnaryExpr&>(expr).operand);
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const fe::BinaryExpr&>(expr);
        return expr_has_side_effects(*bin.lhs) || expr_has_side_effects(*bin.rhs);
      }
      case Expr::Kind::kTernary: {
        const auto& sel = static_cast<const fe::TernaryExpr&>(expr);
        return expr_has_side_effects(*sel.condition) ||
               expr_has_side_effects(*sel.if_true) ||
               expr_has_side_effects(*sel.if_false);
      }
      case Expr::Kind::kCast:
        return expr_has_side_effects(
            *static_cast<const fe::CastExpr&>(expr).operand);
      case Expr::Kind::kArrayIndex: {
        for (const fe::ExprPtr& index :
             static_cast<const fe::ArrayIndexExpr&>(expr).indices) {
          if (expr_has_side_effects(*index)) return true;
        }
        return false;
      }
      default:
        return false;
    }
  }

  RegId lower_expr(const Expr& expr) {
    if (failed()) return func_->new_reg({1, false});
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        return emit_const(static_cast<const fe::IntLitExpr&>(expr).value,
                          to_ir_type(expr.type));
      case Expr::Kind::kBoolLit:
        return emit_const(static_cast<const fe::BoolLitExpr&>(expr).value ? 1 : 0,
                          {1, false});
      case Expr::Kind::kVarRef: {
        const auto& ref = static_cast<const fe::VarRefExpr&>(expr);
        const Binding* binding = lookup(ref.name);
        assert(binding && !binding->is_array());
        return binding->reg;
      }
      case Expr::Kind::kArrayIndex: {
        const auto& index = static_cast<const fe::ArrayIndexExpr&>(expr);
        const Binding* binding = lookup(index.array);
        assert(binding && binding->is_array());
        const std::size_t mem = binding->mem;
        const std::vector<std::size_t> dims = binding->dims;
        const unsigned addr_bits =
            bit_width_of(func_->memories()[mem].depth > 1
                             ? func_->memories()[mem].depth - 1
                             : 1);
        const RegId addr = coerce(lower_linear_index(index, dims),
                                  {addr_bits, false});
        const RegId dest = func_->new_reg(to_ir_type(expr.type));
        Instr instr;
        instr.op = Op::kLoad;
        instr.type = to_ir_type(expr.type);
        instr.dest = dest;
        instr.src[0] = addr;
        instr.imm = mem;
        emit(std::move(instr));
        return dest;
      }
      case Expr::Kind::kUnary: {
        const auto& unary = static_cast<const fe::UnaryExpr&>(expr);
        const IrType type = to_ir_type(expr.type);
        switch (unary.op) {
          case fe::UnaryOp::kNeg: {
            const RegId operand = coerce(lower_expr(*unary.operand), type);
            const RegId zero = emit_const(0, type);
            return emit_binop(Op::kSub, zero, operand, type);
          }
          case fe::UnaryOp::kNot: {
            const RegId operand = lower_condition(*unary.operand);
            const RegId zero = emit_const(0, {1, false});
            return emit_binop(Op::kEq, operand, zero, {1, false});
          }
          case fe::UnaryOp::kBitNot: {
            const RegId operand = coerce(lower_expr(*unary.operand), type);
            return emit_unop(Op::kNot, operand, type);
          }
        }
        return kNoReg;
      }
      case Expr::Kind::kBinary: {
        const auto& bin = static_cast<const fe::BinaryExpr&>(expr);
        if (bin.op == fe::BinaryOp::kLogicalAnd ||
            bin.op == fe::BinaryOp::kLogicalOr) {
          return lower_logical(bin);
        }
        const IrType result = to_ir_type(expr.type);
        if (bin.op == fe::BinaryOp::kEq || bin.op == fe::BinaryOp::kNe ||
            bin.op == fe::BinaryOp::kLt || bin.op == fe::BinaryOp::kLe ||
            bin.op == fe::BinaryOp::kGt || bin.op == fe::BinaryOp::kGe) {
          // Comparisons are done in the common arithmetic type of the
          // operands; kGt/kGe lower to kLt/kLe with swapped operands.
          const fe::Type common =
              fe::arithmetic_result(bin.lhs->type, bin.rhs->type);
          const IrType cmp_type = to_ir_type(common);
          RegId lhs = coerce(lower_expr(*bin.lhs), cmp_type);
          RegId rhs = coerce(lower_expr(*bin.rhs), cmp_type);
          fe::BinaryOp op = bin.op;
          if (op == fe::BinaryOp::kGt) { std::swap(lhs, rhs); op = fe::BinaryOp::kLt; }
          if (op == fe::BinaryOp::kGe) { std::swap(lhs, rhs); op = fe::BinaryOp::kLe; }
          const RegId dest = func_->new_reg({1, false});
          Instr instr;
          instr.op = binary_op_to_ir(op);
          instr.type = cmp_type;  // comparison width/signedness
          instr.dest = dest;
          instr.src[0] = lhs;
          instr.src[1] = rhs;
          emit(std::move(instr));
          return dest;
        }
        if (bin.op == fe::BinaryOp::kShl || bin.op == fe::BinaryOp::kShr) {
          const RegId lhs = coerce(lower_expr(*bin.lhs), result);
          // Shift amounts are taken as unsigned of the result width.
          const RegId rhs =
              coerce(lower_expr(*bin.rhs), {result.bits, false});
          return emit_binop(binary_op_to_ir(bin.op), lhs, rhs, result);
        }
        const RegId lhs = coerce(lower_expr(*bin.lhs), result);
        const RegId rhs = coerce(lower_expr(*bin.rhs), result);
        return emit_binop(binary_op_to_ir(bin.op), lhs, rhs, result);
      }
      case Expr::Kind::kTernary: {
        const auto& sel = static_cast<const fe::TernaryExpr&>(expr);
        const IrType type = to_ir_type(expr.type);
        if (!expr_has_side_effects(*sel.if_true) &&
            !expr_has_side_effects(*sel.if_false)) {
          // Pure arms: speculate both and select (cheap in hardware).
          const RegId cond = lower_condition(*sel.condition);
          const RegId if_true = coerce(lower_expr(*sel.if_true), type);
          const RegId if_false = coerce(lower_expr(*sel.if_false), type);
          const RegId dest = func_->new_reg(type);
          Instr instr;
          instr.op = Op::kSelect;
          instr.type = type;
          instr.dest = dest;
          instr.src[0] = cond;
          instr.src[1] = if_true;
          instr.src[2] = if_false;
          emit(std::move(instr));
          return dest;
        }
        // Effectful arms need control flow.
        const RegId result = func_->new_reg(type);
        const RegId cond = lower_condition(*sel.condition);
        const BlockId then_block = func_->new_block();
        const BlockId else_block = func_->new_block();
        const BlockId join = func_->new_block();
        cond_branch(cond, then_block, else_block);
        switch_to(then_block);
        emit_copy_into(result, coerce(lower_expr(*sel.if_true), type));
        branch_to(join);
        switch_to(else_block);
        emit_copy_into(result, coerce(lower_expr(*sel.if_false), type));
        branch_to(join);
        switch_to(join);
        return result;
      }
      case Expr::Kind::kCall:
        return lower_call(static_cast<const fe::CallExpr&>(expr));
      case Expr::Kind::kCast: {
        const auto& cast = static_cast<const fe::CastExpr&>(expr);
        return coerce(lower_expr(*cast.operand), to_ir_type(cast.target));
      }
      case Expr::Kind::kAssign: {
        const auto& assign = static_cast<const fe::AssignExpr&>(expr);
        if (assign.target->kind == Expr::Kind::kVarRef) {
          const auto& ref = static_cast<const fe::VarRefExpr&>(*assign.target);
          const Binding* binding = lookup(ref.name);
          assert(binding && !binding->is_array());
          // Copy the type BEFORE lowering the value: reg_type() returns a
          // reference into a vector that lower_expr may reallocate, and the
          // compiler is free to interleave argument evaluations.
          const RegId target_reg = binding->reg;
          const IrType target_type = func_->reg_type(target_reg);
          const RegId value = coerce(lower_expr(*assign.value), target_type);
          emit_copy_into(target_reg, value);
          return target_reg;
        }
        const auto& index = static_cast<const fe::ArrayIndexExpr&>(*assign.target);
        const Binding* binding = lookup(index.array);
        assert(binding && binding->is_array());
        const std::size_t mem = binding->mem;
        const std::vector<std::size_t> dims = binding->dims;
        const unsigned addr_bits =
            bit_width_of(func_->memories()[mem].depth > 1
                             ? func_->memories()[mem].depth - 1
                             : 1);
        const RegId addr = coerce(lower_linear_index(index, dims),
                                  {addr_bits, false});
        const IrType element = func_->memories()[mem].element;
        const RegId value = coerce(lower_expr(*assign.value), element);
        Instr instr;
        instr.op = Op::kStore;
        instr.type = element;
        instr.src[0] = addr;
        instr.src[1] = value;
        instr.imm = mem;
        emit(std::move(instr));
        return value;
      }
    }
    return kNoReg;
  }

  /// Row-major linearization of a (possibly multi-dimensional) index
  /// expression: ((i0 * d1 + i1) * d2 + i2)..., computed in u32.
  RegId lower_linear_index(const fe::ArrayIndexExpr& index,
                           const std::vector<std::size_t>& dims) {
    const IrType u32{32, false};
    RegId linear = coerce(lower_expr(*index.indices[0]), u32);
    for (std::size_t d = 1; d < index.indices.size(); ++d) {
      const RegId extent = emit_const(dims[d], u32);
      const RegId scaled = emit_binop(Op::kMul, linear, extent, u32);
      const RegId next = coerce(lower_expr(*index.indices[d]), u32);
      linear = emit_binop(Op::kAdd, scaled, next, u32);
    }
    return linear;
  }

  RegId lower_logical(const fe::BinaryExpr& bin) {
    // Short-circuit via control flow, matching C semantics even when the
    // right operand has side effects (an inlined call with stores).
    const bool is_and = bin.op == fe::BinaryOp::kLogicalAnd;
    const RegId result = func_->new_reg({1, false});
    const RegId lhs = lower_condition(*bin.lhs);
    emit_copy_into(result, lhs);
    const BlockId rhs_block = func_->new_block();
    const BlockId join = func_->new_block();
    if (is_and) {
      cond_branch(lhs, rhs_block, join);
    } else {
      cond_branch(lhs, join, rhs_block);
    }
    switch_to(rhs_block);
    const RegId rhs = lower_condition(*bin.rhs);
    emit_copy_into(result, rhs);
    branch_to(join);
    switch_to(join);
    return result;
  }

  RegId lower_call(const fe::CallExpr& call) {
    const fe::FuncDecl* callee = program_.find(call.callee);
    assert(callee && "typechecker guarantees callee exists");

    // Evaluate scalar arguments in the caller's scope first.
    std::vector<Binding> arg_bindings;
    for (std::size_t i = 0; i < call.args.size(); ++i) {
      const fe::Param& param = callee->params[i];
      if (param.array_size != 0) {
        const auto& ref = static_cast<const fe::VarRefExpr&>(*call.args[i]);
        const Binding* binding = lookup(ref.name);
        assert(binding && binding->is_array());
        arg_bindings.push_back(*binding);
      } else {
        const IrType type = to_ir_type(param.type);
        // Copy into a fresh register so callee-local mutation of the
        // parameter cannot affect the caller (C pass-by-value).
        const RegId value = coerce(lower_expr(*call.args[i]), type);
        const RegId local = func_->new_reg(type);
        emit_copy_into(local, value);
        arg_bindings.push_back(Binding{local, SIZE_MAX, {}});
      }
    }

    const IrType ret_type = to_ir_type(callee->return_type);
    InlineContext ctx;
    ctx.result_reg = ret_type.bits == 0 ? kNoReg : func_->new_reg(ret_type);
    ctx.continuation = func_->new_block();
    if (ctx.result_reg != kNoReg) {
      // Deterministic default if the callee falls off the end.
      emit_copy_into(ctx.result_reg, emit_const(0, ret_type));
    }

    inline_stack_.push_back(ctx);
    push_scope();
    for (std::size_t i = 0; i < callee->params.size(); ++i) {
      bind(callee->params[i].name, arg_bindings[i]);
    }
    lower_block(*callee->body);
    pop_scope();
    inline_stack_.pop_back();

    branch_to(ctx.continuation);
    switch_to(ctx.continuation);
    return ctx.result_reg;
  }

  std::string unique_mem_name(const std::string& base) {
    return format("%s_m%zu", base.c_str(), func_->memories().size());
  }

  struct LoopTargets {
    BlockId break_target;
    BlockId continue_target;
  };
  struct InlineContext {
    RegId result_reg = kNoReg;
    BlockId continuation = kNoBlock;
  };

  const fe::Program& program_;
  const LowerOptions& options_;
  std::unique_ptr<Function> func_;
  BlockId current_ = 0;
  std::vector<std::map<std::string, Binding>> scopes_;
  std::vector<LoopTargets> loop_stack_;
  std::vector<InlineContext> inline_stack_;
  Status error_;
};

}  // namespace

Result<Function> lower(const fe::Program& program, std::string_view top,
                       const LowerOptions& options) {
  return Lowerer(program, options).run(top);
}

}  // namespace hermes::ir
