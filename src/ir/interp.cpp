#include "ir/interp.hpp"

#include <cassert>

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::ir {

Interpreter::Interpreter(const Function& function) : function_(function) {
  memories_.resize(function.memories().size());
  for (std::size_t i = 0; i < memories_.size(); ++i) {
    const MemDecl& decl = function.memories()[i];
    memories_[i].assign(decl.depth, 0);
    for (std::size_t j = 0; j < decl.init.size() && j < decl.depth; ++j) {
      memories_[i][j] = truncate(decl.init[j], decl.element.bits);
    }
  }
}

void Interpreter::set_memory(std::size_t mem, std::vector<std::uint64_t> contents) {
  const MemDecl& decl = function_.memories().at(mem);
  contents.resize(decl.depth, 0);
  for (auto& word : contents) word = truncate(word, decl.element.bits);
  memories_.at(mem) = std::move(contents);
}

Result<ExecStats> Interpreter::run(std::span<const std::uint64_t> scalar_args,
                                   std::uint64_t max_steps) {
  if (trace_) trace_->clear();
  // Re-seed local / ROM memories so repeated runs are independent.
  for (std::size_t i = 0; i < memories_.size(); ++i) {
    const MemDecl& decl = function_.memories()[i];
    if (decl.is_interface) continue;
    memories_[i].assign(decl.depth, 0);
    for (std::size_t j = 0; j < decl.init.size() && j < decl.depth; ++j) {
      memories_[i][j] = truncate(decl.init[j], decl.element.bits);
    }
  }

  std::vector<std::uint64_t> regs(function_.num_regs(), 0);
  std::size_t arg_index = 0;
  for (const ParamDecl& param : function_.params) {
    if (param.is_array()) continue;
    if (arg_index >= scalar_args.size()) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "not enough scalar arguments");
    }
    regs[param.reg] = truncate(scalar_args[arg_index++], param.type.bits);
  }

  ExecStats stats;
  BlockId block = function_.entry;
  std::size_t pc = 0;

  while (stats.instructions < max_steps) {
    const Instr& instr = function_.block(block).instrs[pc];
    ++stats.instructions;
    const unsigned bits = instr.type.bits;
    const auto src = [&](int i) { return regs[instr.src[i]]; };
    const auto s_src = [&](int i) { return sign_extend(regs[instr.src[i]], bits); };
    std::uint64_t value = 0;

    switch (instr.op) {
      case Op::kConst: value = instr.imm; break;
      case Op::kCopy: value = src(0); break;
      case Op::kAdd: value = src(0) + src(1); break;
      case Op::kSub: value = src(0) - src(1); break;
      case Op::kMul: value = src(0) * src(1); ++stats.multiplies; break;
      case Op::kDiv:
        ++stats.divides;
        if (instr.type.is_signed) {
          value = s_src(1) == 0 ? ~0ULL
                                : static_cast<std::uint64_t>(s_src(0) / s_src(1));
        } else {
          value = src(1) == 0 ? ~0ULL : src(0) / src(1);
        }
        break;
      case Op::kRem:
        ++stats.divides;
        if (instr.type.is_signed) {
          value = s_src(1) == 0 ? static_cast<std::uint64_t>(s_src(0))
                                : static_cast<std::uint64_t>(s_src(0) % s_src(1));
        } else {
          value = src(1) == 0 ? src(0) : src(0) % src(1);
        }
        break;
      case Op::kAnd: value = src(0) & src(1); break;
      case Op::kOr: value = src(0) | src(1); break;
      case Op::kXor: value = src(0) ^ src(1); break;
      case Op::kNot: value = ~src(0); break;
      case Op::kShl: value = src(1) >= 64 ? 0 : src(0) << src(1); break;
      case Op::kShr:
        if (instr.type.is_signed) {
          const std::uint64_t amount = src(1) >= 63 ? 63 : src(1);
          value = static_cast<std::uint64_t>(s_src(0) >> amount);
        } else {
          value = src(1) >= 64 ? 0 : src(0) >> src(1);
        }
        break;
      case Op::kEq: value = src(0) == src(1); break;
      case Op::kNe: value = src(0) != src(1); break;
      case Op::kLt:
        value = instr.type.is_signed
                    ? (sign_extend(src(0), bits) < sign_extend(src(1), bits))
                    : (src(0) < src(1));
        break;
      case Op::kLe:
        value = instr.type.is_signed
                    ? (sign_extend(src(0), bits) <= sign_extend(src(1), bits))
                    : (src(0) <= src(1));
        break;
      case Op::kSelect: value = src(0) ? src(1) : src(2); break;
      case Op::kZext: value = src(0); break;
      case Op::kSext: {
        const unsigned from_bits = function_.reg_type(instr.src[0]).bits;
        value = static_cast<std::uint64_t>(sign_extend(src(0), from_bits));
        break;
      }
      case Op::kTrunc: value = src(0); break;
      case Op::kLoad: {
        ++stats.mem_reads;
        const auto& mem = memories_[instr.imm];
        const std::uint64_t addr = src(0);
        if (trace_) trace_->push_back({instr.imm, addr, false});
        value = addr < mem.size() ? mem[addr] : 0;
        break;
      }
      case Op::kStore: {
        ++stats.mem_writes;
        auto& mem = memories_[instr.imm];
        const std::uint64_t addr = src(0);
        if (trace_) {
          trace_->push_back(
              {instr.imm, addr, true,
               truncate(src(1), function_.memories()[instr.imm].element.bits)});
        }
        if (addr < mem.size()) {
          mem[addr] = truncate(src(1), function_.memories()[instr.imm].element.bits);
        }
        ++pc;
        continue;
      }
      case Op::kBr:
        block = instr.target0;
        pc = 0;
        continue;
      case Op::kCondBr:
        block = src(0) ? instr.target0 : instr.target1;
        pc = 0;
        continue;
      case Op::kRet:
        if (instr.src[0] != kNoReg) {
          stats.return_value = regs[instr.src[0]];
          stats.returned_value = true;
        }
        return stats;
    }

    if (instr.dest != kNoReg) {
      // Comparison results are 1-bit regardless of the comparison width.
      const unsigned dest_bits = function_.reg_type(instr.dest).bits;
      regs[instr.dest] = truncate(value, dest_bits);
    }
    ++pc;
  }
  return Status::Error(ErrorCode::kDeadlineExceeded,
                       format("interpreter exceeded %llu steps",
                              static_cast<unsigned long long>(max_steps)));
}

}  // namespace hermes::ir
