// AST -> IR lowering (the compilation step at the start of the HLS flow that
// "analyzes data dependencies and loops in the input C/C++ program").
//
// All function calls are inlined (the type checker guarantees an acyclic call
// graph), so the resulting ir::Function is self-contained: one FSMD per
// top-level kernel. Counted for-loops with small constant trip counts can be
// fully unrolled here, which is the loop transformation the middle-end passes
// subsequently clean up.
#pragma once

#include "common/status.hpp"
#include "frontend/ast.hpp"
#include "ir/ir.hpp"

namespace hermes::ir {

struct LowerOptions {
  /// Fully unroll counted loops with at most this many iterations (0 = never).
  unsigned unroll_limit = 0;
};

/// Lowers `top` (and everything it calls) from a type-checked program.
Result<Function> lower(const fe::Program& program, std::string_view top,
                       const LowerOptions& options = {});

/// fe::Type -> IrType (void maps to bits == 0).
IrType to_ir_type(const fe::Type& type);

}  // namespace hermes::ir
