// IR interpreter — the golden software model.
//
// Every HLS-generated accelerator is validated against this interpreter over
// randomized inputs (the role of Bambu's generated testbenches). Its
// semantics match hw::Simulator exactly: values truncated to declared widths,
// division by zero yields all-ones, remainder by zero yields the dividend,
// out-of-bounds loads read 0 and out-of-bounds stores are dropped.
//
// It also counts executed operations, which the use-case benchmarks use as
// the "software on the rad-hard CPU" baseline (one op per cycle).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "ir/ir.hpp"

namespace hermes::ir {

struct ExecStats {
  std::uint64_t return_value = 0;
  bool returned_value = false;
  std::uint64_t instructions = 0;  ///< dynamic instruction count
  std::uint64_t mem_reads = 0;
  std::uint64_t mem_writes = 0;
  std::uint64_t multiplies = 0;
  std::uint64_t divides = 0;
};

/// One dynamic memory access, for cache/bus replay (the AXI wrappers feed
/// the recorded trace through the cache model to price data movement and to
/// reproduce the final external-memory contents).
struct MemAccess {
  std::size_t mem = 0;        ///< IR memory index
  std::uint64_t address = 0;  ///< element index within the memory
  bool is_write = false;
  std::uint64_t value = 0;    ///< stored value (writes only)
};

class Interpreter {
 public:
  explicit Interpreter(const Function& function);

  /// Replaces the contents of an interface memory (pads/truncates to depth).
  void set_memory(std::size_t mem, std::vector<std::uint64_t> contents);
  [[nodiscard]] const std::vector<std::uint64_t>& memory(std::size_t mem) const {
    return memories_.at(mem);
  }

  /// Runs the function with the given scalar arguments (in parameter order,
  /// arrays skipped). Local and ROM memories are re-initialized each run;
  /// interface memories keep whatever set_memory installed (and are mutated
  /// by stores, observable afterwards through memory()).
  Result<ExecStats> run(std::span<const std::uint64_t> scalar_args,
                        std::uint64_t max_steps = 100'000'000);

  /// Records every load/store of the next run() into `trace` (cleared
  /// first). Pass nullptr to stop tracing.
  void set_trace(std::vector<MemAccess>* trace) { trace_ = trace; }

 private:
  const Function& function_;
  std::vector<std::vector<std::uint64_t>> memories_;
  std::vector<MemAccess>* trace_ = nullptr;
};

}  // namespace hermes::ir
