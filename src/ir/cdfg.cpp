#include "ir/cdfg.hpp"

#include <map>

namespace hermes::ir {

const char* to_string(DepKind kind) {
  switch (kind) {
    case DepKind::kRaw: return "raw";
    case DepKind::kWar: return "war";
    case DepKind::kWaw: return "waw";
    case DepKind::kMemRaw: return "mem_raw";
    case DepKind::kMemWar: return "mem_war";
    case DepKind::kMemWaw: return "mem_waw";
    case DepKind::kControl: return "control";
  }
  return "?";
}

BlockCdfg build_block_cdfg(const Function& function, BlockId block_id) {
  const Block& block = function.block(block_id);
  BlockCdfg cdfg;
  cdfg.nodes.resize(block.instrs.size());

  std::map<RegId, std::size_t> last_writer;
  std::map<RegId, std::vector<std::size_t>> readers_since_write;
  std::map<std::uint64_t, std::size_t> last_store;            // per memory
  std::map<std::uint64_t, std::vector<std::size_t>> loads_since_store;

  auto add_dep = [&](std::size_t from, std::size_t on, DepKind kind) {
    if (from == on) return;
    auto& deps = cdfg.nodes[from].deps;
    for (const Dep& existing : deps) {
      if (existing.on == on && existing.kind == kind) return;
    }
    deps.push_back({on, kind});
  };

  for (std::size_t i = 0; i < block.instrs.size(); ++i) {
    const Instr& instr = block.instrs[i];

    // RAW: depend on the in-block producer of each operand.
    for (unsigned s = 0; s < instr.num_srcs(); ++s) {
      const RegId reg = instr.src[s];
      if (reg == kNoReg) continue;
      const auto writer = last_writer.find(reg);
      if (writer != last_writer.end()) add_dep(i, writer->second, DepKind::kRaw);
      readers_since_write[reg].push_back(i);
    }

    // Memory ordering.
    if (instr.op == Op::kLoad) {
      const auto store = last_store.find(instr.imm);
      if (store != last_store.end()) add_dep(i, store->second, DepKind::kMemRaw);
      loads_since_store[instr.imm].push_back(i);
    } else if (instr.op == Op::kStore) {
      const auto store = last_store.find(instr.imm);
      if (store != last_store.end()) add_dep(i, store->second, DepKind::kMemWaw);
      for (std::size_t load : loads_since_store[instr.imm]) {
        add_dep(i, load, DepKind::kMemWar);
      }
      loads_since_store[instr.imm].clear();
      last_store[instr.imm] = i;
    }

    // WAW / WAR on the destination register.
    if (instr.dest != kNoReg) {
      const auto writer = last_writer.find(instr.dest);
      if (writer != last_writer.end()) add_dep(i, writer->second, DepKind::kWaw);
      for (std::size_t reader : readers_since_write[instr.dest]) {
        add_dep(i, reader, DepKind::kWar);
      }
      readers_since_write[instr.dest].clear();
      last_writer[instr.dest] = i;
    }

    // The terminator is ordered after every memory access: the FSM must not
    // leave the block before outstanding loads/stores complete.
    if (is_terminator(instr.op)) {
      for (std::size_t j = 0; j < i; ++j) {
        const Instr& other = block.instrs[j];
        if (other.op == Op::kStore || other.op == Op::kLoad) {
          add_dep(i, j, DepKind::kControl);
        }
      }
    }
  }
  return cdfg;
}

CdfgSummary summarize_cdfg(const Function& function) {
  CdfgSummary summary;
  summary.blocks = function.num_blocks();
  for (BlockId b = 0; b < function.num_blocks(); ++b) {
    const BlockCdfg cdfg = build_block_cdfg(function, b);
    summary.nodes += cdfg.nodes.size();
    summary.data_edges += cdfg.edge_count();
    const Instr& term = function.block(b).terminator();
    if (term.op == Op::kBr) summary.control_edges += 1;
    if (term.op == Op::kCondBr) summary.control_edges += 2;
  }
  return summary;
}

}  // namespace hermes::ir
