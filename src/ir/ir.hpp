// Intermediate representation of the HLS middle-end.
//
// A function is a control-flow graph of basic blocks holding typed
// three-address instructions over an unbounded set of virtual registers
// (non-SSA: registers may be written multiple times; this maps directly onto
// the FSMD model where every virtual register becomes a datapath register).
// Arrays live in named memories accessed by explicit load/store instructions.
//
// This is the representation on which the "front-end, middle-end and
// back-end" optimization passes of the Bambu flow (paper Fig. 2) operate, and
// from which the Control and Data Flow Graph (CDFG) is derived.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace hermes::ir {

using RegId = std::uint32_t;
using BlockId = std::uint32_t;
inline constexpr RegId kNoReg = ~static_cast<RegId>(0);
inline constexpr BlockId kNoBlock = ~static_cast<BlockId>(0);

/// Scalar value type: width in bits plus signedness (bool = u1).
struct IrType {
  unsigned bits = 32;
  bool is_signed = true;
  bool operator==(const IrType&) const = default;
  [[nodiscard]] std::string to_string() const;
};

enum class Op : std::uint8_t {
  kConst,   ///< dest = imm
  kCopy,    ///< dest = src0
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kNot,
  kShl, kShr,
  kEq, kNe, kLt, kLe,
  kSelect,  ///< dest = src0 ? src1 : src2
  kZext, kSext, kTrunc,
  kLoad,    ///< dest = mem[imm][src0]
  kStore,   ///< mem[imm][src0] = src1
  // Terminators.
  kBr,      ///< goto target0
  kCondBr,  ///< src0 ? target0 : target1
  kRet,     ///< return src0 (or void if src0 == kNoReg)
};

const char* to_string(Op op);
[[nodiscard]] bool is_terminator(Op op);
/// True for instructions with effects beyond their destination register.
[[nodiscard]] bool has_side_effects(Op op);

struct Instr {
  Op op = Op::kConst;
  IrType type;                 ///< operation/result type
  RegId dest = kNoReg;
  RegId src[3] = {kNoReg, kNoReg, kNoReg};
  std::uint64_t imm = 0;       ///< constant value, or memory index for load/store
  BlockId target0 = kNoBlock;  ///< branch targets
  BlockId target1 = kNoBlock;

  [[nodiscard]] unsigned num_srcs() const;
};

struct Block {
  std::vector<Instr> instrs;  ///< last instruction is the terminator
  [[nodiscard]] const Instr& terminator() const { return instrs.back(); }
};

/// An array: either an interface memory (accelerator port, contents owned by
/// the caller/testbench) or a local RAM/ROM with optional initial contents.
struct MemDecl {
  std::string name;
  IrType element;
  std::size_t depth = 0;
  bool is_interface = false;
  bool is_rom = false;  ///< read-only (no stores); maps to a ROM/initialized RAM
  std::vector<std::uint64_t> init;
};

struct ParamDecl {
  std::string name;
  IrType type;
  RegId reg = kNoReg;        ///< scalar params: register holding the value
  std::size_t mem = SIZE_MAX;///< array params: memory index
  [[nodiscard]] bool is_array() const { return mem != SIZE_MAX; }
};

class Function {
 public:
  explicit Function(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const { return name_; }

  RegId new_reg(IrType type) {
    reg_types_.push_back(type);
    return static_cast<RegId>(reg_types_.size() - 1);
  }
  [[nodiscard]] const IrType& reg_type(RegId reg) const { return reg_types_.at(reg); }
  [[nodiscard]] std::size_t num_regs() const { return reg_types_.size(); }

  BlockId new_block() {
    blocks_.emplace_back();
    return static_cast<BlockId>(blocks_.size() - 1);
  }
  [[nodiscard]] Block& block(BlockId id) { return blocks_.at(id); }
  [[nodiscard]] const Block& block(BlockId id) const { return blocks_.at(id); }
  [[nodiscard]] std::size_t num_blocks() const { return blocks_.size(); }

  std::size_t add_memory(MemDecl mem) {
    memories_.push_back(std::move(mem));
    return memories_.size() - 1;
  }
  [[nodiscard]] const std::vector<MemDecl>& memories() const { return memories_; }
  [[nodiscard]] std::vector<MemDecl>& memories() { return memories_; }

  std::vector<ParamDecl> params;
  IrType return_type{0, false};  ///< bits==0 means void
  BlockId entry = 0;

  /// Structural invariants: every block non-empty and terminator-ended,
  /// no terminators mid-block, operands/targets in range.
  [[nodiscard]] Status validate() const;

  /// Human-readable listing (for tests and reports).
  [[nodiscard]] std::string dump() const;

  /// Total instruction count (including terminators).
  [[nodiscard]] std::size_t instr_count() const;

  /// Removes unreachable blocks and renumbers the survivors (branch targets
  /// and entry are remapped). Returns the number of blocks removed.
  std::size_t compact_blocks();

 private:
  std::string name_;
  std::vector<IrType> reg_types_;
  std::vector<Block> blocks_;
  std::vector<MemDecl> memories_;
};

}  // namespace hermes::ir
