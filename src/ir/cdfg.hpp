// Control and Data Flow Graph extraction.
//
// "The High-Level Synthesis flow begins with a compilation step to ... generate
// a Control and Data Flow Graph (CDFG). Then three core steps are performed on
// the CDFG (resource allocation, scheduling, binding)" — HERMES, Sec. II.
//
// Control flow is the IR's block graph; this module derives the *data* flow:
// per-block dependence DAGs the scheduler honours. Edges are annotated with
// their hazard kind because the FSMD timing rules differ per kind (e.g. a RAW
// edge may be chained within a state; a WAW edge needs a full register-write
// separation).
#pragma once

#include <cstddef>
#include <vector>

#include "ir/ir.hpp"

namespace hermes::ir {

enum class DepKind : std::uint8_t {
  kRaw,           ///< register read-after-write
  kWar,           ///< register write-after-read
  kWaw,           ///< register write-after-write
  kMemRaw,        ///< load after store, same memory
  kMemWar,        ///< store after load, same memory
  kMemWaw,        ///< store after store, same memory
  kControl,       ///< terminator ordering
};

const char* to_string(DepKind kind);

struct Dep {
  std::size_t on = 0;  ///< index of the earlier instruction
  DepKind kind = DepKind::kRaw;
};

/// Dependence edges for one instruction (indices into the same block).
struct CdfgNode {
  std::vector<Dep> deps;
};

struct BlockCdfg {
  std::vector<CdfgNode> nodes;  ///< one per instruction, terminator included
  [[nodiscard]] std::size_t edge_count() const {
    std::size_t count = 0;
    for (const CdfgNode& node : nodes) count += node.deps.size();
    return count;
  }
};

/// Builds the dependence DAG of one block. All edges point from a later
/// instruction to an earlier one (program order is a valid topological
/// order). The terminator is ordered after every memory access.
BlockCdfg build_block_cdfg(const Function& function, BlockId block);

/// Whole-function summary used by the FIG2 flow report.
struct CdfgSummary {
  std::size_t blocks = 0;
  std::size_t nodes = 0;
  std::size_t data_edges = 0;
  std::size_t control_edges = 0;  ///< CFG edges between blocks
};

CdfgSummary summarize_cdfg(const Function& function);

}  // namespace hermes::ir
