// Middle-end optimization passes (the "typical code optimizations" applied
// before HLS in the Bambu flow, paper Fig. 2).
//
// The IR is non-SSA, so dataflow facts are tracked block-locally with
// kill-on-write; DCE and CFG simplification are global. Each pass returns the
// number of instructions it changed/removed so the FIG2 benchmark can report
// per-pass effect.
#pragma once

#include <string>
#include <vector>

#include "ir/ir.hpp"

namespace hermes::ir {

/// Removes unreachable blocks and merges trivial br-only chains.
std::size_t simplify_cfg(Function& function);

/// Block-local constant folding plus algebraic identities
/// (x+0, x*1, x*0, x&0, x|0, x^0, x<<0, select with const cond, ...).
std::size_t constant_fold(Function& function);

/// Block-local copy propagation (rewrites operands through kCopy chains).
std::size_t copy_propagate(Function& function);

/// Block-local common-subexpression elimination. Loads participate until an
/// intervening store to the same memory kills them.
std::size_t cse(Function& function);

/// mul/div/rem by power-of-two constants become shifts/masks (unsigned
/// div/rem only; signed division semantics differ around zero).
std::size_t strength_reduce(Function& function);

/// Global dead-code elimination of pure instructions whose destination is
/// never read (iterates to a fixed point).
std::size_t dce(Function& function);

/// Marks non-interface memories that are never stored to as ROMs.
std::size_t mark_roms(Function& function);

/// If-conversion: rewrites small, side-effect-free branch diamonds and
/// triangles into speculated straight-line code with kSelect merges. In the
/// FSMD model each eliminated block removes control states, and speculation
/// is free in hardware (both arms become parallel datapath). Branches with
/// stores, or with more than `max_instrs` instructions, are left alone.
std::size_t if_convert(Function& function, unsigned max_instrs = 8);

/// One pipeline entry for reporting.
struct PassReport {
  std::string pass;
  std::size_t changed = 0;
  std::size_t instrs_after = 0;
};

/// Runs the standard middle-end pipeline to a fixed point (at most 4
/// rounds) and reports per-pass effect.
std::vector<PassReport> run_pipeline(Function& function);

}  // namespace hermes::ir
