#include "ir/ir.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace hermes::ir {

std::string IrType::to_string() const {
  if (bits == 0) return "void";
  return format("%c%u", is_signed ? 'i' : 'u', bits);
}

const char* to_string(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kCopy: return "copy";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kRem: return "rem";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kSelect: return "select";
    case Op::kZext: return "zext";
    case Op::kSext: return "sext";
    case Op::kTrunc: return "trunc";
    case Op::kLoad: return "load";
    case Op::kStore: return "store";
    case Op::kBr: return "br";
    case Op::kCondBr: return "condbr";
    case Op::kRet: return "ret";
  }
  return "?";
}

bool is_terminator(Op op) {
  return op == Op::kBr || op == Op::kCondBr || op == Op::kRet;
}

bool has_side_effects(Op op) {
  return op == Op::kStore || is_terminator(op);
}

unsigned Instr::num_srcs() const {
  switch (op) {
    case Op::kConst: return 0;
    case Op::kCopy: case Op::kNot: case Op::kZext: case Op::kSext:
    case Op::kTrunc: case Op::kLoad: case Op::kCondBr:
      return 1;
    case Op::kSelect: return 3;
    case Op::kBr: return 0;
    case Op::kRet: return src[0] == kNoReg ? 0 : 1;
    default: return 2;  // binary ops, store
  }
}

Status Function::validate() const {
  if (blocks_.empty()) {
    return Status::Error(ErrorCode::kInternal, "function has no blocks");
  }
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    const Block& block = blocks_[b];
    if (block.instrs.empty()) {
      return Status::Error(ErrorCode::kInternal,
                           format("block %u is empty", b));
    }
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      const bool last = i + 1 == block.instrs.size();
      if (is_terminator(instr.op) != last) {
        return Status::Error(
            ErrorCode::kInternal,
            format("block %u: terminator placement at instr %zu", b, i));
      }
      for (unsigned s = 0; s < instr.num_srcs(); ++s) {
        if (instr.op == Op::kRet && instr.src[0] == kNoReg) break;
        if (instr.src[s] != kNoReg && instr.src[s] >= reg_types_.size()) {
          return Status::Error(ErrorCode::kInternal,
                               format("block %u instr %zu: bad operand", b, i));
        }
      }
      if ((instr.op == Op::kLoad || instr.op == Op::kStore) &&
          instr.imm >= memories_.size()) {
        return Status::Error(ErrorCode::kInternal,
                             format("block %u instr %zu: bad memory index", b, i));
      }
      if (instr.op == Op::kBr && instr.target0 >= blocks_.size()) {
        return Status::Error(ErrorCode::kInternal, "br target out of range");
      }
      if (instr.op == Op::kCondBr &&
          (instr.target0 >= blocks_.size() || instr.target1 >= blocks_.size())) {
        return Status::Error(ErrorCode::kInternal, "condbr target out of range");
      }
    }
  }
  return Status::Ok();
}

std::size_t Function::instr_count() const {
  std::size_t count = 0;
  for (const Block& block : blocks_) count += block.instrs.size();
  return count;
}

std::size_t Function::compact_blocks() {
  std::vector<bool> reachable(blocks_.size(), false);
  std::vector<BlockId> worklist = {entry};
  reachable[entry] = true;
  while (!worklist.empty()) {
    const BlockId b = worklist.back();
    worklist.pop_back();
    const Instr& term = blocks_[b].instrs.back();
    for (BlockId target : {term.target0, term.target1}) {
      if (target != kNoBlock && target < blocks_.size() && !reachable[target]) {
        reachable[target] = true;
        worklist.push_back(target);
      }
    }
  }

  std::vector<BlockId> remap(blocks_.size(), kNoBlock);
  std::vector<Block> kept;
  kept.reserve(blocks_.size());
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    if (!reachable[b]) continue;
    remap[b] = static_cast<BlockId>(kept.size());
    kept.push_back(std::move(blocks_[b]));
  }
  const std::size_t removed = blocks_.size() - kept.size();
  blocks_ = std::move(kept);
  for (Block& block : blocks_) {
    Instr& term = block.instrs.back();
    if (term.target0 != kNoBlock) term.target0 = remap[term.target0];
    if (term.target1 != kNoBlock) term.target1 = remap[term.target1];
  }
  entry = remap[entry];
  return removed;
}

std::string Function::dump() const {
  std::ostringstream out;
  out << "function " << name_ << "(";
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (i) out << ", ";
    const ParamDecl& param = params[i];
    if (param.is_array()) {
      out << memories_[param.mem].element.to_string() << ' ' << param.name
          << '[' << memories_[param.mem].depth << ']';
    } else {
      out << param.type.to_string() << " %r" << param.reg << ":" << param.name;
    }
  }
  out << ") -> " << return_type.to_string() << " {\n";
  for (BlockId b = 0; b < blocks_.size(); ++b) {
    out << "bb" << b << ":\n";
    for (const Instr& instr : blocks_[b].instrs) {
      out << "  ";
      if (instr.dest != kNoReg) {
        out << "%r" << instr.dest << ":" << instr.type.to_string() << " = ";
      }
      out << to_string(instr.op);
      if (instr.op == Op::kConst) {
        out << ' ' << instr.imm;
      } else if (instr.op == Op::kLoad) {
        out << ' ' << memories_[instr.imm].name << "[%r" << instr.src[0] << ']';
      } else if (instr.op == Op::kStore) {
        out << ' ' << memories_[instr.imm].name << "[%r" << instr.src[0]
            << "] = %r" << instr.src[1];
      } else if (instr.op == Op::kBr) {
        out << " bb" << instr.target0;
      } else if (instr.op == Op::kCondBr) {
        out << " %r" << instr.src[0] << ", bb" << instr.target0 << ", bb"
            << instr.target1;
      } else if (instr.op == Op::kRet) {
        if (instr.src[0] != kNoReg) out << " %r" << instr.src[0];
      } else {
        for (unsigned s = 0; s < instr.num_srcs(); ++s) {
          out << (s ? ", " : " ") << "%r" << instr.src[s];
        }
      }
      out << '\n';
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace hermes::ir
