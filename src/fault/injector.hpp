// Unified, deterministic cross-layer fault-injection bus.
//
// HERMES (Secs. I, IV) argues the NG-ULTRA stack survives radiation because
// every layer carries a protection mechanism: TMR-voted flash, EDAC memories,
// integrity-checked boot objects, SpaceWire CRC framing, hypervisor health
// monitoring. The seed reproduction could only upset raw memories and netlist
// wires; this module is the missing half of the qualification argument — a
// single injector that subsystems plug *named injection points* into, so one
// FaultPlan can corrupt an AXI beat, force a SLVERR, stall a handshake, rot a
// flash page on one TMR copy, drop a SpaceWire frame, or make a hypervisor
// job overrun its budget, all from one seed, reproducibly.
//
// Determinism contract: every point owns a private Rng seeded from
// (plan seed, point name). Firing decisions depend only on the sequence of
// opportunities presented *at that point*, never on what other points or
// subsystems do, so a fixed seed replays bit-identically regardless of which
// subsystems are instantiated or in what order they register.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace hermes::fault {

/// Per-point injection schedule. An "opportunity" is one query of the point
/// (one AXI beat delivered, one SpaceWire frame sent, one job released, ...);
/// the opportunity index is the point's private clock.
struct FaultSchedule {
  double probability = 0.0;        ///< chance to fire per in-window opportunity
  std::uint64_t window_begin = 0;  ///< first opportunity index eligible to fire
  std::uint64_t window_end = ~0ULL;  ///< one past the last eligible opportunity
  unsigned burst_len = 1;          ///< consecutive opportunities hit per firing
  std::uint64_t max_fires = ~0ULL; ///< total budget (bursts count each hit)
};

/// One armed point of a plan.
struct PointPlan {
  std::string point;
  FaultSchedule schedule;
};

/// A complete experiment: seed + the set of points to arm. Points not named
/// by the plan never fire (and draw no randomness), so a plan is also a
/// precise statement of which layers are under attack.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<PointPlan> points;

  [[nodiscard]] const FaultSchedule* find(std::string_view name) const;
};

using PointId = std::size_t;
inline constexpr PointId kNoFaultPoint = static_cast<PointId>(-1);

struct PointStats {
  std::uint64_t opportunities = 0;
  std::uint64_t fires = 0;
};

class FaultInjector {
 public:
  FaultInjector() = default;
  explicit FaultInjector(FaultPlan plan) { load_plan(std::move(plan)); }

  /// Installs a plan: re-arms every registered point against it and resets
  /// all counters/RNG state, so the same injector can replay many plans.
  void load_plan(FaultPlan plan);

  /// Subsystems call this at construction (or attach time). Registering an
  /// existing name returns the same id with state preserved — a torn-down
  /// and rebuilt subsystem continues the point's deterministic stream.
  PointId register_point(std::string_view name);

  /// kNoFaultPoint when the name was never registered.
  [[nodiscard]] PointId find_point(std::string_view name) const;

  /// One injection opportunity. Never fires for kNoFaultPoint or unarmed
  /// points (and consumes no randomness there).
  bool should_fire(PointId point);

  /// XORs a random non-zero mask of `bits` width into `value` using the
  /// point's private RNG (call after should_fire said yes).
  std::uint64_t mutate_word(PointId point, std::uint64_t value,
                            unsigned bits = 64);

  /// Flips 1..8 random bits across `bytes` (page/frame rot).
  void mutate_bytes(PointId point, std::span<std::uint8_t> bytes);

  /// Uniform draw in [0, bound) from the point's private RNG — for fired
  /// points that need to pick *where* to strike (a frame word, a flip count)
  /// without breaking the per-point determinism contract.
  std::uint64_t rand_below(PointId point, std::uint64_t bound);

  [[nodiscard]] const PointStats& stats(PointId point) const {
    return points_[point].stats;
  }
  [[nodiscard]] const std::string& name(PointId point) const {
    return points_[point].name;
  }
  [[nodiscard]] std::size_t num_points() const { return points_.size(); }
  [[nodiscard]] std::uint64_t total_fires() const;
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  struct Point {
    std::string name;
    FaultSchedule schedule;   ///< all-zero probability when unarmed
    bool armed = false;
    Rng rng{0};
    PointStats stats;
    unsigned burst_remaining = 0;
  };

  void arm(Point& point);

  FaultPlan plan_;
  std::vector<Point> points_;
};

/// Every injection point the subsystems of this repo register, for plan
/// generators that want full coverage. Kept in one place so the chaos soak
/// and the docs cannot drift from the implementation.
std::span<const std::string_view> default_point_catalog();

/// Deterministic chaos plan: arms a random subset of `points` (default: the
/// full catalog) with random schedules. Same seed -> identical plan.
FaultPlan make_random_plan(std::uint64_t seed,
                           std::span<const std::string_view> points = {});

/// Copy of `plan` with a different seed: the same points stay armed with the
/// same schedules, but every point's private RNG stream changes. Forked-SoC
/// campaigns use this to replay one scenario shape across replicas.
[[nodiscard]] inline FaultPlan reseeded(FaultPlan plan, std::uint64_t seed) {
  plan.seed = seed;
  return plan;
}

}  // namespace hermes::fault
