// Triple modular redundancy primitives.
//
// Used in two places mirroring the paper: (1) the NG-ULTRA fabric hardening
// model, and (2) BL1's "basic redundancy for software components stored in
// Flash (either through TMR or through sequential accesses to multiple
// hardware Flash components)" (HERMES, Sec. IV).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace hermes::fault {

/// Result of a majority vote over three replicas.
struct VoteResult {
  std::uint64_t value = 0;
  bool corrected = false;     ///< replicas disagreed but majority existed
  bool unrecoverable = false; ///< all three replicas disagree (word-level vote)
};

/// Bitwise 2-of-3 majority vote. Always produces a value; `corrected` is set
/// if any replica disagreed with the majority on any bit. Bitwise voting
/// never fails: each bit independently has a majority.
VoteResult vote_bitwise(std::uint64_t a, std::uint64_t b, std::uint64_t c);

/// Word-level vote: the value held by at least two replicas wins; if all
/// three differ the result is flagged unrecoverable (value = replica a).
VoteResult vote_word(std::uint64_t a, std::uint64_t b, std::uint64_t c);

/// Statistics of voting across a whole memory image.
struct TmrScrubStats {
  std::size_t words = 0;
  std::size_t corrected_words = 0;
  std::size_t unrecoverable_words = 0;
};

/// Votes three equally-sized byte images (e.g. three flash copies of a boot
/// image) into `out`, using bitwise voting per 8-bit word.
TmrScrubStats vote_images(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b,
                          std::span<const std::uint8_t> c,
                          std::vector<std::uint8_t>& out);

}  // namespace hermes::fault
