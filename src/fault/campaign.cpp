#include "fault/campaign.hpp"

#include "hw/sim.hpp"

namespace hermes::fault {

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica) {
  // SplitMix64 over (base, index): decorrelates consecutive replicas far
  // better than base + index, and never depends on thread assignment.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                                    (static_cast<std::uint64_t>(replica) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ScrubCampaignResult run_scrub_campaign(const ScrubCampaignPlan& plan,
                                       ThreadPool* pool) {
  ScrubCampaignResult result;
  result.per_replica.assign(plan.replicas, ScrubReport{});

  const auto run_replica = [&](std::size_t replica) {
    ScrubMemory memory(plan.memory_words, plan.protection);
    for (std::size_t i = 0; i < memory.size(); ++i) {
      memory.write(i, static_cast<std::uint32_t>(i * 2654435761u));
    }
    Rng rng(replica_seed(plan.base_seed, replica));
    ScrubReport sum;
    for (unsigned interval = 0; interval < plan.intervals; ++interval) {
      const ScrubReport report = memory.inject_and_scrub(plan.seu, rng);
      sum.injected_upsets += report.injected_upsets;
      sum.corrected += report.corrected;
      sum.detected_uncorrectable += report.detected_uncorrectable;
      sum.silent_corruptions += report.silent_corruptions;
    }
    result.per_replica[replica] = sum;
  };
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(plan.replicas, run_replica);

  for (const ScrubReport& report : result.per_replica) {
    result.total.injected_upsets += report.injected_upsets;
    result.total.corrected += report.corrected;
    result.total.detected_uncorrectable += report.detected_uncorrectable;
    result.total.silent_corruptions += report.silent_corruptions;
  }
  return result;
}

NetlistSeuResult run_netlist_seu_campaign(const hw::Module& module,
                                          const NetlistSeuPlan& plan,
                                          ThreadPool* pool) {
  NetlistSeuResult result;
  result.per_replica.assign(plan.replicas, NetlistSeuOutcome{});

  const auto run_replica = [&](std::size_t replica) {
    hw::Simulator golden(module);
    hw::Simulator faulty(module);
    if (!golden.status().ok() || !faulty.status().ok()) return;
    for (const auto& [port, value] : plan.inputs) {
      golden.set_input(port, value);
      faulty.set_input(port, value);
    }
    for (std::uint64_t c = 0; c < plan.cycles_before; ++c) {
      golden.step();
      faulty.step();
    }

    const std::vector<hw::WireId> targets = golden.register_outputs();
    NetlistSeuOutcome outcome;
    if (targets.empty()) {
      result.per_replica[replica] = outcome;
      return;
    }
    Rng rng(replica_seed(plan.base_seed, replica));
    outcome.target = targets[rng.next_below(targets.size())];
    outcome.bit = static_cast<unsigned>(
        rng.next_below(module.wire_width(outcome.target)));
    faulty.corrupt_wire(outcome.target, outcome.bit);

    const std::vector<hw::Port>& ports = module.ports();
    for (std::uint64_t c = 0; c < plan.cycles_after; ++c) {
      golden.step();
      faulty.step();
      bool mismatch = false;
      for (hw::WireId reg : targets) {
        if (golden.get(reg) != faulty.get(reg)) { mismatch = true; break; }
      }
      if (!mismatch) {
        for (const hw::Port& port : ports) {
          if (!port.is_input &&
              golden.get(port.wire) != faulty.get(port.wire)) {
            mismatch = true;
            break;
          }
        }
      }
      if (mismatch && !outcome.diverged) {
        outcome.diverged = true;
        outcome.first_divergence_cycle = c;
      }
    }
    result.per_replica[replica] = outcome;
  };
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(plan.replicas, run_replica);

  for (const NetlistSeuOutcome& outcome : result.per_replica) {
    if (outcome.diverged) ++result.diverged;
  }
  return result;
}

}  // namespace hermes::fault
