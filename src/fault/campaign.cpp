#include "fault/campaign.hpp"

#include <algorithm>

#include "fault/seu.hpp"
#include "hw/sim.hpp"
#include "hw/sim_sliced.hpp"

namespace hermes::fault {

namespace {

struct RegisterUpset {
  hw::WireId target = hw::kNoWire;
  unsigned bit = 0;
};

/// The one place the campaign Rng is consumed: target register, then bit.
/// Shared by the serial and sliced runners so the draw sequence cannot
/// drift between them.
RegisterUpset draw_register_upset(const hw::Module& module,
                                  const std::vector<hw::WireId>& targets,
                                  Rng& rng) {
  RegisterUpset upset;
  upset.target = targets[rng.next_below(targets.size())];
  upset.bit = static_cast<unsigned>(
      rng.next_below(module.wire_width(upset.target)));
  return upset;
}

}  // namespace

std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica) {
  // SplitMix64 over (base, index): decorrelates consecutive replicas far
  // better than base + index, and never depends on thread assignment.
  std::uint64_t z = base_seed + 0x9E3779B97F4A7C15ULL *
                                    (static_cast<std::uint64_t>(replica) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ScrubCampaignResult run_scrub_campaign(const ScrubCampaignPlan& plan,
                                       ThreadPool* pool) {
  ScrubCampaignResult result;
  result.per_replica.assign(plan.replicas, ScrubReport{});

  const auto run_replica = [&](std::size_t replica) {
    ScrubMemory memory(plan.memory_words, plan.protection);
    for (std::size_t i = 0; i < memory.size(); ++i) {
      memory.write(i, static_cast<std::uint32_t>(i * 2654435761u));
    }
    Rng rng(replica_seed(plan.base_seed, replica));
    ScrubReport sum;
    for (unsigned interval = 0; interval < plan.intervals; ++interval) {
      const ScrubReport report = memory.inject_and_scrub(plan.seu, rng);
      sum.injected_upsets += report.injected_upsets;
      sum.corrected += report.corrected;
      sum.detected_uncorrectable += report.detected_uncorrectable;
      sum.silent_corruptions += report.silent_corruptions;
    }
    result.per_replica[replica] = sum;
  };
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(plan.replicas, run_replica);

  for (const ScrubReport& report : result.per_replica) {
    result.total.injected_upsets += report.injected_upsets;
    result.total.corrected += report.corrected;
    result.total.detected_uncorrectable += report.detected_uncorrectable;
    result.total.silent_corruptions += report.silent_corruptions;
  }
  return result;
}

namespace {

/// Shared body of the serial and JIT-backed per-replica runners: the engine
/// differs, the replica loop and draw sequence do not.
NetlistSeuResult run_netlist_seu_campaign_scalar(const hw::Module& module,
                                                 const NetlistSeuPlan& plan,
                                                 ThreadPool* pool,
                                                 hw::SimOptions options) {
  NetlistSeuResult result;
  result.per_replica.assign(plan.replicas, NetlistSeuOutcome{});

  const auto run_replica = [&](std::size_t replica) {
    hw::Simulator golden(module, options);
    hw::Simulator faulty(module, options);
    if (!golden.status().ok() || !faulty.status().ok()) return;
    for (const auto& [port, value] : plan.inputs) {
      golden.set_input(port, value);
      faulty.set_input(port, value);
    }
    for (std::uint64_t c = 0; c < plan.cycles_before; ++c) {
      golden.step();
      faulty.step();
    }

    const std::vector<hw::WireId> targets = golden.register_outputs();
    NetlistSeuOutcome outcome;
    if (targets.empty()) {
      result.per_replica[replica] = outcome;
      return;
    }
    Rng rng(replica_seed(plan.base_seed, replica));
    const RegisterUpset upset = draw_register_upset(module, targets, rng);
    outcome.target = upset.target;
    outcome.bit = upset.bit;
    faulty.corrupt_wire(outcome.target, outcome.bit);

    const std::vector<hw::Port>& ports = module.ports();
    for (std::uint64_t c = 0; c < plan.cycles_after; ++c) {
      golden.step();
      faulty.step();
      bool mismatch = false;
      for (hw::WireId reg : targets) {
        if (golden.get(reg) != faulty.get(reg)) { mismatch = true; break; }
      }
      if (!mismatch) {
        for (const hw::Port& port : ports) {
          if (!port.is_input &&
              golden.get(port.wire) != faulty.get(port.wire)) {
            mismatch = true;
            break;
          }
        }
      }
      if (mismatch && !outcome.diverged) {
        outcome.diverged = true;
        outcome.first_divergence_cycle = c;
      }
    }
    result.per_replica[replica] = outcome;
  };
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(plan.replicas, run_replica);

  for (const NetlistSeuOutcome& outcome : result.per_replica) {
    if (outcome.diverged) ++result.diverged;
  }
  return result;
}

}  // namespace

NetlistSeuResult run_netlist_seu_campaign(const hw::Module& module,
                                          const NetlistSeuPlan& plan,
                                          ThreadPool* pool) {
  return run_netlist_seu_campaign_scalar(module, plan, pool, hw::SimOptions{});
}

NetlistSeuResult run_netlist_seu_campaign_jit(const hw::Module& module,
                                              const NetlistSeuPlan& plan,
                                              ThreadPool* pool) {
  // All replicas share one cached kernel (the module digest is identical),
  // so the per-replica compile cost is paid exactly once per process.
  return run_netlist_seu_campaign_scalar(
      module, plan, pool, hw::SimOptions{.backend = hw::SimBackend::kJit});
}

NetlistSeuResult run_netlist_seu_campaign_sliced(const hw::Module& module,
                                                 const NetlistSeuPlan& plan,
                                                 ThreadPool* pool) {
  NetlistSeuResult result;
  result.per_replica.assign(plan.replicas, NetlistSeuOutcome{});

  const auto run_batch = [&](std::size_t batch) {
    hw::SlicedSimulator sim(module);
    if (!sim.status().ok()) return;
    for (const auto& [port, value] : plan.inputs) {
      sim.set_input(port, value);
    }
    for (std::uint64_t c = 0; c < plan.cycles_before; ++c) sim.step();

    const std::vector<hw::WireId> targets = sim.register_outputs();
    if (targets.empty()) return;  // default outcomes, same as the serial path

    // Lanes 1..63 carry consecutive plan replicas; the final batch may be
    // partial. Lane 0 stays fault-free — it is the golden replica every
    // lane_divergence() call compares against.
    const std::size_t first = batch * kReplicasPerBatch;
    const std::size_t last =
        std::min(first + kReplicasPerBatch, plan.replicas);
    std::uint64_t batch_lanes = 0;
    for (std::size_t replica = first; replica < last; ++replica) {
      Rng rng(replica_seed(plan.base_seed, replica));
      const RegisterUpset upset = draw_register_upset(module, targets, rng);
      NetlistSeuOutcome& outcome = result.per_replica[replica];
      outcome.target = upset.target;
      outcome.bit = upset.bit;
      sim.corrupt_wire(upset.target, upset.bit, 1ULL << lane_of(replica));
      batch_lanes |= 1ULL << lane_of(replica);
    }

    const std::vector<hw::Port>& ports = module.ports();
    std::uint64_t diverged = 0;
    for (std::uint64_t c = 0; c < plan.cycles_after; ++c) {
      sim.step();
      // A replica mismatches when any watched register or output port
      // differs from golden — the OR over lane_divergence is exactly the
      // serial runner's short-circuit scan, evaluated for 63 replicas at
      // once.
      std::uint64_t mask = 0;
      for (hw::WireId reg : targets) mask |= sim.lane_divergence(reg);
      for (const hw::Port& port : ports) {
        if (!port.is_input) mask |= sim.lane_divergence(port.wire);
      }
      mask &= batch_lanes;
      std::uint64_t newly = mask & ~diverged;
      while (newly != 0) {
        const unsigned lane =
            static_cast<unsigned>(__builtin_ctzll(newly));
        newly &= newly - 1;
        NetlistSeuOutcome& outcome =
            result.per_replica[replica_at(batch, lane)];
        outcome.diverged = true;
        outcome.first_divergence_cycle = c;
      }
      diverged |= mask;
      // Once every replica in the batch has diverged nothing can change the
      // outcome vector; the remaining cycles are unobservable.
      if (diverged == batch_lanes) break;
    }
  };
  if (pool == nullptr) pool = &ThreadPool::global();
  pool->parallel_for(batch_count(plan.replicas), run_batch);

  for (const NetlistSeuOutcome& outcome : result.per_replica) {
    if (outcome.diverged) ++result.diverged;
  }
  return result;
}

std::uint64_t fingerprint(const NetlistSeuResult& result) {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 1099511628211ULL;
    }
  };
  mix(result.per_replica.size());
  for (const NetlistSeuOutcome& outcome : result.per_replica) {
    mix(outcome.target);
    mix(outcome.bit);
    mix(outcome.diverged ? 1 : 0);
    mix(outcome.first_divergence_cycle);
  }
  mix(result.diverged);
  return hash;
}

}  // namespace hermes::fault
