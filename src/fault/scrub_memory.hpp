// A memory model with selectable protection scheme, used by the fault
// campaign benchmarks (DESIGN.md experiment TMR) to compare unprotected,
// EDAC-protected, and TMR-protected storage under SEU injection — the design
// space NG-ULTRA's hardening occupies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/edac.hpp"
#include "fault/seu.hpp"
#include "fault/tmr.hpp"

namespace hermes::fault {

enum class Protection { kNone, kEdac, kTmr };

const char* to_string(Protection protection);

/// Outcome counters of one injection + scrub + readback round.
struct ScrubReport {
  std::size_t injected_upsets = 0;
  std::size_t corrected = 0;        ///< errors masked/corrected by the scheme
  std::size_t detected_uncorrectable = 0;  ///< flagged but not fixed (EDAC double)
  std::size_t silent_corruptions = 0;      ///< readback differs from golden, unflagged
};

/// A word-addressable 32-bit memory with transparent protection: writes encode
/// (or replicate), reads decode (or vote). inject_and_scrub() runs one
/// radiation interval followed by a scrub pass, returning what the scheme saw.
class ScrubMemory {
 public:
  ScrubMemory(std::size_t words, Protection protection);

  void write(std::size_t index, std::uint32_t value);
  /// Reads through the protection scheme (vote/decode), performing correction.
  [[nodiscard]] std::uint32_t read(std::size_t index) const;

  [[nodiscard]] std::size_t size() const { return golden_.size(); }
  [[nodiscard]] Protection protection() const { return protection_; }

  /// Applies one SEU interval to the raw storage and scrubs every word,
  /// rewriting corrected values. Counters compare against the golden copy.
  ScrubReport inject_and_scrub(const SeuCampaignConfig& config, Rng& rng);

  /// Raw storage bit count (for per-bit upset-rate normalization).
  [[nodiscard]] std::size_t raw_bits() const;

 private:
  Protection protection_;
  std::vector<std::uint32_t> golden_;  ///< what software believes is stored
  // Raw storage; layout depends on the scheme.
  std::vector<std::uint64_t> raw_;      // kNone: 1 word; kEdac: 1 codeword
  std::vector<std::uint64_t> raw_b_;    // kTmr replica B
  std::vector<std::uint64_t> raw_c_;    // kTmr replica C
};

}  // namespace hermes::fault
