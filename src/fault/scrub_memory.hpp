// A memory model with selectable protection scheme, used by the fault
// campaign benchmarks (DESIGN.md experiment TMR) to compare unprotected,
// EDAC-protected, and TMR-protected storage under SEU injection — the design
// space NG-ULTRA's hardening occupies.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "fault/edac.hpp"
#include "fault/seu.hpp"
#include "fault/tmr.hpp"
#include "fdir/event.hpp"

namespace hermes::fault {

enum class Protection { kNone, kEdac, kTmr };

const char* to_string(Protection protection);

/// Outcome counters of one injection + scrub + readback round.
struct ScrubReport {
  std::size_t injected_upsets = 0;
  std::size_t corrected = 0;        ///< errors masked/corrected by the scheme
  std::size_t detected_uncorrectable = 0;  ///< flagged but not fixed (EDAC double)
  std::size_t silent_corruptions = 0;      ///< readback differs from golden, unflagged
  std::size_t repaired = 0;  ///< uncorrectable words re-written from golden
                             ///< (scrub_range with repair_uncorrectable)

  void accumulate(const ScrubReport& other) {
    injected_upsets += other.injected_upsets;
    corrected += other.corrected;
    detected_uncorrectable += other.detected_uncorrectable;
    silent_corruptions += other.silent_corruptions;
    repaired += other.repaired;
  }
};

/// A word-addressable 32-bit memory with transparent protection: writes encode
/// (or replicate), reads decode (or vote). inject_and_scrub() runs one
/// radiation interval followed by a scrub pass, returning what the scheme saw.
class ScrubMemory {
 public:
  ScrubMemory(std::size_t words, Protection protection);

  void write(std::size_t index, std::uint32_t value);
  /// Reads through the protection scheme (vote/decode), performing correction.
  [[nodiscard]] std::uint32_t read(std::size_t index) const;

  [[nodiscard]] std::size_t size() const { return golden_.size(); }
  [[nodiscard]] Protection protection() const { return protection_; }

  /// Applies one SEU interval to the raw storage and scrubs every word,
  /// rewriting corrected values. Counters compare against the golden copy.
  ScrubReport inject_and_scrub(const SeuCampaignConfig& config, Rng& rng);

  /// Scrub-only pass over [begin, end): read through the protection scheme,
  /// rewrite clean words, count what the scheme saw. With
  /// `repair_uncorrectable` set, a detected-uncorrectable word is re-written
  /// from the golden copy (modeling re-configuration from a retained source
  /// image) and counted in ScrubReport::repaired instead of being left rotten.
  ScrubReport scrub_range(std::size_t begin, std::size_t end,
                          bool repair_uncorrectable = false);

  /// Whole-memory scrub pass.
  ScrubReport scrub(bool repair_uncorrectable = false) {
    return scrub_range(0, golden_.size(), repair_uncorrectable);
  }

  /// Flips one bit of word `index`'s raw storage (replica A for TMR) —
  /// targeted, injector-driven damage. One flip is correctable under EDAC;
  /// two distinct flips in the same word are detected-uncorrectable.
  void flip_raw_bit(std::size_t index, unsigned bit);

  /// Raw storage bit count (for per-bit upset-rate normalization).
  [[nodiscard]] std::size_t raw_bits() const;

  /// Bits per raw codeword under the active scheme.
  [[nodiscard]] unsigned codeword_bits() const;

  /// Wires this memory's scrub outcomes onto an FDIR event bus: every
  /// scrub_range() call publishes what it saw (corrections, detected-
  /// uncorrectable words, golden repairs, silent corruptions) under `layer`,
  /// stamped with a per-memory scrub-pass ordinal. Pass nullptr to detach.
  /// Note the Soc does NOT wire its internal configuration memory — it
  /// publishes at frame granularity itself; this hook serves standalone
  /// scrub memories (campaign targets, mission data stores).
  void attach_event_bus(fdir::FdirBus* bus,
                        fdir::Layer layer = fdir::Layer::kMemory) {
    fdir_ = bus;
    fdir_layer_ = layer;
  }

 private:
  void publish_scrub(const ScrubReport& report);

  Protection protection_;
  std::vector<std::uint32_t> golden_;  ///< what software believes is stored
  // Raw storage; layout depends on the scheme.
  std::vector<std::uint64_t> raw_;      // kNone: 1 word; kEdac: 1 codeword
  std::vector<std::uint64_t> raw_b_;    // kTmr replica B
  std::vector<std::uint64_t> raw_c_;    // kTmr replica C
  fdir::FdirBus* fdir_ = nullptr;       // not state: copies share the wiring
  fdir::Layer fdir_layer_ = fdir::Layer::kMemory;
  std::uint64_t scrub_ordinal_ = 0;     // monotonic stamp for published events
};

}  // namespace hermes::fault
