// Parallel SEU campaign runner.
//
// Fault campaigns (DESIGN.md experiment TMR, paper Secs. I/IV) repeat the
// same inject-scrub-readback experiment over many independent replicas and
// many netlist fault sites. Every replica is independent, so the runner fans
// them out over a ThreadPool with one ScrubMemory / hw::Simulator replica per
// task and a deterministic per-replica RNG seed: results are bit-identical to
// the serial run regardless of worker count.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"
#include "fault/scrub_memory.hpp"
#include "hw/netlist.hpp"

namespace hermes::fault {

/// Deterministic per-replica seed: a SplitMix64 mix of the campaign base
/// seed and the replica index, independent of worker assignment.
std::uint64_t replica_seed(std::uint64_t base_seed, std::size_t replica);

/// One scrub-memory campaign: `replicas` independent memories, each written
/// with a fixed pattern and put through `intervals` inject+scrub rounds.
struct ScrubCampaignPlan {
  std::size_t replicas = 8;
  std::size_t memory_words = 4096;
  Protection protection = Protection::kTmr;
  SeuCampaignConfig seu;       ///< per-interval upset model (seed field unused)
  unsigned intervals = 16;
  std::uint64_t base_seed = 1;
};

struct ScrubCampaignResult {
  std::vector<ScrubReport> per_replica;  ///< summed over that replica's intervals
  ScrubReport total;                     ///< summed over all replicas
};

/// Runs the plan on `pool` (nullptr = the process-wide pool). Bit-identical
/// for any worker count, including a ThreadPool with 0 workers (serial).
ScrubCampaignResult run_scrub_campaign(const ScrubCampaignPlan& plan,
                                       ThreadPool* pool = nullptr);

/// One netlist SEU campaign: per replica, a golden and a faulty Simulator
/// run side by side; after `cycles_before` cycles a random register bit is
/// flipped in the faulty copy, and both run `cycles_after` more cycles while
/// register state and outputs are compared each cycle.
struct NetlistSeuPlan {
  std::size_t replicas = 32;
  std::uint64_t cycles_before = 4;
  std::uint64_t cycles_after = 32;
  std::uint64_t base_seed = 1;
  /// Input port values applied before running (e.g. {{"start", 1}}).
  std::vector<std::pair<std::string, std::uint64_t>> inputs;
};

struct NetlistSeuOutcome {
  hw::WireId target = hw::kNoWire;  ///< corrupted register output
  unsigned bit = 0;
  bool diverged = false;            ///< any register/output mismatch observed
  std::uint64_t first_divergence_cycle = 0;  ///< cycle index of first mismatch
};

struct NetlistSeuResult {
  std::vector<NetlistSeuOutcome> per_replica;
  std::size_t diverged = 0;  ///< replicas whose upset propagated to state
};

/// Runs the plan against `module` on `pool` (nullptr = process-wide pool).
/// Each task owns its two Simulator replicas; deterministic per-replica
/// seeds keep the result independent of the worker count.
NetlistSeuResult run_netlist_seu_campaign(const hw::Module& module,
                                          const NetlistSeuPlan& plan,
                                          ThreadPool* pool = nullptr);

/// JIT-backed variant of run_netlist_seu_campaign: every replica pair runs on
/// hw::SimBackend::kJit simulators. Because all replicas share one module
/// digest, the process-wide jit::KernelCache compiles once and every replica
/// reuses the kernel. Results are bit-identical to the serial runner for any
/// worker count — and on hosts without JIT support the backend degrades to
/// the interpreter, so this is always safe to call.
NetlistSeuResult run_netlist_seu_campaign_jit(const hw::Module& module,
                                              const NetlistSeuPlan& plan,
                                              ThreadPool* pool = nullptr);

/// Bit-sliced variant of run_netlist_seu_campaign: replicas are grouped into
/// batches of 63 (seu.hpp batch math), each batch runs on one
/// hw::SlicedSimulator with lane 0 as the shared golden replica and one fault
/// lane per plan replica. The outcome vector is bit-identical to the serial
/// runner's — same per-replica seeds, same target/bit draws, same divergence
/// flags and first-divergence cycles — for any worker count. The serial path
/// remains the differential oracle; see docs/CAMPAIGNS.md.
NetlistSeuResult run_netlist_seu_campaign_sliced(const hw::Module& module,
                                                 const NetlistSeuPlan& plan,
                                                 ThreadPool* pool = nullptr);

/// Order-sensitive FNV-1a fingerprint of a campaign result — the equality
/// token the tests, chaos soak and CI bench-smoke gate compare between the
/// serial oracle and the sliced engine (and between repeated runs).
std::uint64_t fingerprint(const NetlistSeuResult& result);

}  // namespace hermes::fault
