// SECDED (single-error-correct, double-error-detect) Hamming code over 32-bit
// data words — the "error correction mechanisms and memory integrity checks"
// that NG-ULTRA applies transparently to embedded memories (HERMES, Sec. I).
//
// Layout: 32 data bits + 6 Hamming parity bits + 1 overall parity bit = 39-bit
// codeword, stored in the low bits of a std::uint64_t.
#pragma once

#include <cstdint>

namespace hermes::fault {

inline constexpr unsigned kEdacDataBits = 32;
inline constexpr unsigned kEdacParityBits = 7;  // 6 Hamming + overall parity
inline constexpr unsigned kEdacCodewordBits = kEdacDataBits + kEdacParityBits;

/// Outcome of decoding a (possibly corrupted) codeword.
enum class EdacStatus {
  kClean,          ///< no error detected
  kCorrected,      ///< single-bit error corrected
  kDoubleError,    ///< double error detected, not correctable
};

/// Encodes a 32-bit data word into a 39-bit SECDED codeword.
std::uint64_t edac_encode(std::uint32_t data);

/// Decodes a codeword; on kClean/kCorrected, `data_out` holds the recovered
/// word; on kDoubleError its content is unspecified.
EdacStatus edac_decode(std::uint64_t codeword, std::uint32_t& data_out);

}  // namespace hermes::fault
