#include "fault/seu.hpp"

namespace hermes::fault {

std::vector<Upset> draw_upsets(const SeuCampaignConfig& config,
                               std::size_t word_count, Rng& rng) {
  std::vector<Upset> upsets;
  for (std::size_t word = 0; word < word_count; ++word) {
    if (!rng.next_bool(config.upset_probability_per_word)) continue;
    const unsigned bit =
        static_cast<unsigned>(rng.next_below(config.bits_per_word));
    upsets.push_back({word, bit});
    if (config.mbu_probability > 0 && rng.next_bool(config.mbu_probability)) {
      const unsigned neighbor =
          bit + 1 < config.bits_per_word ? bit + 1 : bit - 1;
      upsets.push_back({word, neighbor});
    }
  }
  return upsets;
}

void apply_upsets(std::span<std::uint64_t> words,
                  const std::vector<Upset>& upsets) {
  for (const Upset& upset : upsets) {
    if (upset.word_index < words.size()) {
      words[upset.word_index] ^= (1ULL << upset.bit_index);
    }
  }
}

}  // namespace hermes::fault
