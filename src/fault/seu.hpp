// Single-event-upset (SEU) modelling.
//
// NG-ULTRA's rad-hard design provides "triple modular redundancy, error
// correction mechanisms, and memory integrity checks which are completely
// transparent to the application developer" (HERMES, Sec. I). We cannot fly
// the silicon, so this module provides the radiation environment as a fault
// injector that the protection schemes in tmr.hpp / edac.hpp are tested
// against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace hermes::fault {

/// One injected upset: bit `bit_index` of word `word_index` flipped.
struct Upset {
  std::size_t word_index = 0;
  unsigned bit_index = 0;
};

/// Configuration of an injection campaign over a memory of N words.
struct SeuCampaignConfig {
  double upset_probability_per_word = 1e-4;  ///< chance each word is hit per pass
  unsigned bits_per_word = 32;
  /// Probability that a hit is a multi-bit upset flipping an adjacent bit too
  /// (MBUs defeat single-error-correcting codes; TMR still masks them).
  double mbu_probability = 0.0;
  std::uint64_t seed = 1;
};

/// Draws the set of upsets one scrub interval would accumulate over a memory
/// of `word_count` words.
std::vector<Upset> draw_upsets(const SeuCampaignConfig& config,
                               std::size_t word_count, Rng& rng);

/// Applies upsets in place to a word array (each word truncated to
/// bits_per_word bits by construction of the draw).
void apply_upsets(std::span<std::uint64_t> words,
                  const std::vector<Upset>& upsets);

// --- Replica batching for the bit-sliced campaign engine -------------------
//
// The bit-sliced netlist simulator (hw::SlicedSimulator) advances 64 replica
// lanes per word op. Campaign plans are grouped into batches of 63 replicas:
// lane 0 of every batch is reserved for the fault-free golden replica, lanes
// 1..63 carry consecutive plan replicas. The mapping is pure index math so
// the serial and sliced runners agree on which replica gets which seed.

/// Replica lanes per slice word (the machine word width).
inline constexpr std::size_t kSliceLanes = 64;
/// Campaign replicas per batch: lanes minus the golden lane.
inline constexpr std::size_t kReplicasPerBatch = kSliceLanes - 1;

/// Number of 63-replica batches needed to cover `replicas` plans.
constexpr std::size_t batch_count(std::size_t replicas) {
  return (replicas + kReplicasPerBatch - 1) / kReplicasPerBatch;
}
/// Batch that carries plan replica `replica`.
constexpr std::size_t batch_of(std::size_t replica) {
  return replica / kReplicasPerBatch;
}
/// Lane (1..63) that carries plan replica `replica` inside its batch.
constexpr unsigned lane_of(std::size_t replica) {
  return static_cast<unsigned>(replica % kReplicasPerBatch) + 1;
}
/// Plan replica carried by `lane` (1..63) of `batch`.
constexpr std::size_t replica_at(std::size_t batch, unsigned lane) {
  return batch * kReplicasPerBatch + (lane - 1);
}

}  // namespace hermes::fault
