// Single-event-upset (SEU) modelling.
//
// NG-ULTRA's rad-hard design provides "triple modular redundancy, error
// correction mechanisms, and memory integrity checks which are completely
// transparent to the application developer" (HERMES, Sec. I). We cannot fly
// the silicon, so this module provides the radiation environment as a fault
// injector that the protection schemes in tmr.hpp / edac.hpp are tested
// against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace hermes::fault {

/// One injected upset: bit `bit_index` of word `word_index` flipped.
struct Upset {
  std::size_t word_index = 0;
  unsigned bit_index = 0;
};

/// Configuration of an injection campaign over a memory of N words.
struct SeuCampaignConfig {
  double upset_probability_per_word = 1e-4;  ///< chance each word is hit per pass
  unsigned bits_per_word = 32;
  /// Probability that a hit is a multi-bit upset flipping an adjacent bit too
  /// (MBUs defeat single-error-correcting codes; TMR still masks them).
  double mbu_probability = 0.0;
  std::uint64_t seed = 1;
};

/// Draws the set of upsets one scrub interval would accumulate over a memory
/// of `word_count` words.
std::vector<Upset> draw_upsets(const SeuCampaignConfig& config,
                               std::size_t word_count, Rng& rng);

/// Applies upsets in place to a word array (each word truncated to
/// bits_per_word bits by construction of the draw).
void apply_upsets(std::span<std::uint64_t> words,
                  const std::vector<Upset>& upsets);

}  // namespace hermes::fault
