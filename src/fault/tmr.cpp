#include "fault/tmr.hpp"

#include <cassert>

namespace hermes::fault {

VoteResult vote_bitwise(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  VoteResult result;
  result.value = (a & b) | (a & c) | (b & c);
  result.corrected = (a != result.value) || (b != result.value) || (c != result.value);
  return result;
}

VoteResult vote_word(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  VoteResult result;
  if (a == b || a == c) {
    result.value = a;
    result.corrected = !(a == b && a == c);
  } else if (b == c) {
    result.value = b;
    result.corrected = true;
  } else {
    result.value = a;
    result.unrecoverable = true;
  }
  return result;
}

TmrScrubStats vote_images(std::span<const std::uint8_t> a,
                          std::span<const std::uint8_t> b,
                          std::span<const std::uint8_t> c,
                          std::vector<std::uint8_t>& out) {
  assert(a.size() == b.size() && b.size() == c.size());
  TmrScrubStats stats;
  stats.words = a.size();
  out.resize(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const VoteResult vote = vote_bitwise(a[i], b[i], c[i]);
    out[i] = static_cast<std::uint8_t>(vote.value);
    if (vote.corrected) ++stats.corrected_words;
  }
  return stats;
}

}  // namespace hermes::fault
