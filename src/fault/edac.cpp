#include "fault/edac.hpp"

#include <array>

#include "common/bits.hpp"

namespace hermes::fault {
namespace {

// Classic extended-Hamming layout: codeword positions are numbered 1..38;
// positions that are powers of two (1,2,4,8,16,32) hold parity bits, the rest
// hold data bits in order. Position 0 of the stored word holds the overall
// parity bit. All bit gymnastics are precomputed into masks so the codec is
// a handful of AND/popcount operations per word (the scrub benchmarks hash
// megabytes through it).

constexpr bool is_power_of_two(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }
constexpr unsigned kPositions = 38;

struct Tables {
  std::array<unsigned, kEdacDataBits> data_position{};
  std::array<std::uint64_t, 6> parity_mask{};  // coverage of parity bits 1,2,4,8,16,32
  std::uint64_t all_positions = 0;             // positions 1..38
};

constexpr Tables make_tables() {
  Tables t{};
  unsigned index = 0;
  for (unsigned pos = 1; pos <= kPositions; ++pos) {
    t.all_positions |= 1ULL << pos;
    if (!is_power_of_two(pos)) {
      t.data_position[index++] = pos;
    }
  }
  for (unsigned p = 0; p < 6; ++p) {
    const unsigned bit = 1u << p;
    for (unsigned pos = 1; pos <= kPositions; ++pos) {
      if (pos & bit) t.parity_mask[p] |= 1ULL << pos;
    }
  }
  return t;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint64_t edac_encode(std::uint32_t data) {
  std::uint64_t word = 0;
  for (unsigned i = 0; i < kEdacDataBits; ++i) {
    word |= static_cast<std::uint64_t>((data >> i) & 1u) << kTables.data_position[i];
  }
  for (unsigned p = 0; p < 6; ++p) {
    if (parity(word & kTables.parity_mask[p])) {
      word |= 1ULL << (1u << p);
    }
  }
  if (parity(word & kTables.all_positions)) {
    word |= 1ULL;  // overall parity at position 0
  }
  return word;
}

EdacStatus edac_decode(std::uint64_t codeword, std::uint32_t& data_out) {
  unsigned syndrome = 0;
  for (unsigned p = 0; p < 6; ++p) {
    if (parity(codeword & kTables.parity_mask[p])) syndrome |= 1u << p;
  }
  const bool overall = parity(codeword & (kTables.all_positions | 1ULL));

  EdacStatus status = EdacStatus::kClean;
  if (syndrome != 0 && overall) {
    codeword ^= 1ULL << syndrome;  // correct the single-bit error
    status = EdacStatus::kCorrected;
  } else if (syndrome != 0 && !overall) {
    return EdacStatus::kDoubleError;
  } else if (syndrome == 0 && overall) {
    status = EdacStatus::kCorrected;  // the overall parity bit itself flipped
  }

  std::uint32_t data = 0;
  for (unsigned i = 0; i < kEdacDataBits; ++i) {
    data |= static_cast<std::uint32_t>((codeword >> kTables.data_position[i]) & 1u)
            << i;
  }
  data_out = data;
  return status;
}

}  // namespace hermes::fault
