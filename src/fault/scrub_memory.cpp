#include "fault/scrub_memory.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace hermes::fault {

const char* to_string(Protection protection) {
  switch (protection) {
    case Protection::kNone: return "none";
    case Protection::kEdac: return "edac";
    case Protection::kTmr: return "tmr";
  }
  return "?";
}

ScrubMemory::ScrubMemory(std::size_t words, Protection protection)
    : protection_(protection), golden_(words, 0), raw_(words, 0) {
  if (protection_ == Protection::kTmr) {
    raw_b_.assign(words, 0);
    raw_c_.assign(words, 0);
  }
  if (protection_ == Protection::kEdac) {
    for (std::size_t i = 0; i < words; ++i) raw_[i] = edac_encode(0);
  }
}

void ScrubMemory::write(std::size_t index, std::uint32_t value) {
  assert(index < golden_.size());
  golden_[index] = value;
  switch (protection_) {
    case Protection::kNone:
      raw_[index] = value;
      break;
    case Protection::kEdac:
      raw_[index] = edac_encode(value);
      break;
    case Protection::kTmr:
      raw_[index] = raw_b_[index] = raw_c_[index] = value;
      break;
  }
}

std::uint32_t ScrubMemory::read(std::size_t index) const {
  assert(index < golden_.size());
  switch (protection_) {
    case Protection::kNone:
      return static_cast<std::uint32_t>(raw_[index]);
    case Protection::kEdac: {
      std::uint32_t data = 0;
      edac_decode(raw_[index], data);
      return data;
    }
    case Protection::kTmr:
      return static_cast<std::uint32_t>(
          vote_bitwise(raw_[index], raw_b_[index], raw_c_[index]).value);
  }
  return 0;
}

std::size_t ScrubMemory::raw_bits() const {
  switch (protection_) {
    case Protection::kNone: return golden_.size() * 32;
    case Protection::kEdac: return golden_.size() * kEdacCodewordBits;
    case Protection::kTmr: return golden_.size() * 32 * 3;
  }
  return 0;
}

unsigned ScrubMemory::codeword_bits() const {
  switch (protection_) {
    case Protection::kNone: return 32;
    case Protection::kEdac: return kEdacCodewordBits;
    case Protection::kTmr: return 32;
  }
  return 32;
}

void ScrubMemory::flip_raw_bit(std::size_t index, unsigned bit) {
  assert(index < golden_.size() && bit < codeword_bits());
  raw_[index] ^= 1ULL << bit;
}

ScrubReport ScrubMemory::scrub_range(std::size_t begin, std::size_t end,
                                     bool repair_uncorrectable) {
  assert(begin <= end && end <= golden_.size());
  ScrubReport report;
  // Read through the scheme, rewrite, and compare with golden.
  for (std::size_t i = begin; i < end; ++i) {
    switch (protection_) {
      case Protection::kNone: {
        const auto seen = static_cast<std::uint32_t>(raw_[i]);
        if (seen != golden_[i]) ++report.silent_corruptions;
        break;
      }
      case Protection::kEdac: {
        std::uint32_t data = 0;
        const EdacStatus status = edac_decode(raw_[i], data);
        if (status == EdacStatus::kDoubleError) {
          ++report.detected_uncorrectable;
          if (repair_uncorrectable) {
            raw_[i] = edac_encode(golden_[i]);
            ++report.repaired;
          }
          // Otherwise: leave word as-is; upper layer must re-fetch.
        } else {
          if (status == EdacStatus::kCorrected) ++report.corrected;
          if (data != golden_[i]) {
            ++report.silent_corruptions;  // mis-correction (e.g. 3-bit upset)
          } else {
            raw_[i] = edac_encode(data);  // scrub: rewrite clean codeword
          }
        }
        break;
      }
      case Protection::kTmr: {
        const VoteResult vote = vote_bitwise(raw_[i], raw_b_[i], raw_c_[i]);
        if (vote.corrected) ++report.corrected;
        const auto voted = static_cast<std::uint32_t>(vote.value);
        if (voted != golden_[i]) {
          ++report.silent_corruptions;  // two replicas hit in the same bit
        } else {
          raw_[i] = raw_b_[i] = raw_c_[i] = voted;  // scrub replicas
        }
        break;
      }
    }
  }
  publish_scrub(report);
  return report;
}

void ScrubMemory::publish_scrub(const ScrubReport& report) {
  if (!fdir_) return;
  const std::uint64_t stamp = scrub_ordinal_++;
  const auto emit = [&](fdir::Severity severity, ErrorCode code,
                        std::size_t count) {
    if (count == 0) return;
    fdir_->publish({fdir_layer_, severity, code,
                    static_cast<std::uint32_t>(count), stamp});
  };
  emit(fdir::Severity::kCorrected, ErrorCode::kOk, report.corrected);
  emit(fdir::Severity::kRetried, ErrorCode::kIntegrityError, report.repaired);
  emit(fdir::Severity::kUncorrectable, ErrorCode::kIntegrityError,
       report.detected_uncorrectable - report.repaired);
  // A silent corruption escaped the scheme entirely — the strongest possible
  // detection this layer can make (and only via the golden comparison).
  emit(fdir::Severity::kExhausted, ErrorCode::kIntegrityError,
       report.silent_corruptions);
}

ScrubReport ScrubMemory::inject_and_scrub(const SeuCampaignConfig& config,
                                          Rng& rng) {
  ScrubReport report;
  SeuCampaignConfig cfg = config;
  switch (protection_) {
    case Protection::kNone: cfg.bits_per_word = 32; break;
    case Protection::kEdac: cfg.bits_per_word = kEdacCodewordBits; break;
    case Protection::kTmr: cfg.bits_per_word = 32; break;
  }

  auto inject = [&](std::vector<std::uint64_t>& bank) {
    const auto upsets = draw_upsets(cfg, bank.size(), rng);
    apply_upsets(bank, upsets);
    report.injected_upsets += upsets.size();
  };
  inject(raw_);
  if (protection_ == Protection::kTmr) {
    inject(raw_b_);
    inject(raw_c_);
  }

  report.accumulate(scrub_range(0, golden_.size()));
  return report;
}

}  // namespace hermes::fault
