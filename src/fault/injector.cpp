#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace hermes::fault {
namespace {

/// FNV-1a, so a point's RNG stream depends on its name but not on the order
/// subsystems registered in.
std::uint64_t hash_name(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

const FaultSchedule* FaultPlan::find(std::string_view name) const {
  for (const PointPlan& pp : points) {
    if (pp.point == name) return &pp.schedule;
  }
  return nullptr;
}

void FaultInjector::arm(Point& point) {
  const FaultSchedule* schedule = plan_.find(point.name);
  point.armed = schedule != nullptr;
  point.schedule = schedule ? *schedule : FaultSchedule{};
  point.rng.reseed(plan_.seed ^ hash_name(point.name));
  point.stats = {};
  point.burst_remaining = 0;
}

void FaultInjector::load_plan(FaultPlan plan) {
  plan_ = std::move(plan);
  for (Point& point : points_) arm(point);
}

PointId FaultInjector::register_point(std::string_view name) {
  const PointId existing = find_point(name);
  if (existing != kNoFaultPoint) return existing;
  Point point;
  point.name = std::string(name);
  points_.push_back(std::move(point));
  arm(points_.back());
  return points_.size() - 1;
}

PointId FaultInjector::find_point(std::string_view name) const {
  for (PointId id = 0; id < points_.size(); ++id) {
    if (points_[id].name == name) return id;
  }
  return kNoFaultPoint;
}

bool FaultInjector::should_fire(PointId point) {
  if (point == kNoFaultPoint || point >= points_.size()) return false;
  Point& p = points_[point];
  const std::uint64_t op = p.stats.opportunities++;
  if (!p.armed) return false;
  if (p.burst_remaining > 0) {
    --p.burst_remaining;
    ++p.stats.fires;
    return true;
  }
  if (p.stats.fires >= p.schedule.max_fires) return false;
  if (op < p.schedule.window_begin || op >= p.schedule.window_end) return false;
  if (!p.rng.next_bool(p.schedule.probability)) return false;
  ++p.stats.fires;
  p.burst_remaining = p.schedule.burst_len > 0 ? p.schedule.burst_len - 1 : 0;
  return true;
}

std::uint64_t FaultInjector::mutate_word(PointId point, std::uint64_t value,
                                         unsigned bits) {
  Point& p = points_[point];
  const std::uint64_t width_mask =
      bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
  std::uint64_t mask = 0;
  while (mask == 0) mask = p.rng.next_u64() & width_mask;
  return value ^ mask;
}

void FaultInjector::mutate_bytes(PointId point, std::span<std::uint8_t> bytes) {
  if (bytes.empty()) return;
  Point& p = points_[point];
  const unsigned flips = 1 + static_cast<unsigned>(p.rng.next_below(8));
  for (unsigned i = 0; i < flips; ++i) {
    const std::size_t byte = p.rng.next_below(bytes.size());
    const unsigned bit = static_cast<unsigned>(p.rng.next_below(8));
    bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

std::uint64_t FaultInjector::rand_below(PointId point, std::uint64_t bound) {
  return points_[point].rng.next_below(bound);
}

std::uint64_t FaultInjector::total_fires() const {
  std::uint64_t total = 0;
  for (const Point& point : points_) total += point.stats.fires;
  return total;
}

namespace {

/// One entry per injection hook in the tree; the docs table in
/// docs/ROBUSTNESS.md mirrors this list.
constexpr std::string_view kCatalog[] = {
    "axi.ar.stall",       // slave refuses the read address handshake
    "axi.aw.stall",       // slave refuses the write burst handshake
    "axi.r.stall",        // a ready read beat is withheld this cycle
    "axi.r.corrupt",      // read beat data XORed with a random mask
    "axi.r.slverr",       // read beat answered with SLVERR
    "axi.b.slverr",       // write response SLVERR, burst not committed
    "flash.rot.replica",  // one TMR flash copy's read data rotted
    "flash.rot.voted",    // post-vote flash data rotted (beats TMR)
    "spw.frame.corrupt",  // SpaceWire frame bits flipped (CRC detects)
    "spw.frame.drop",     // SpaceWire frame lost on the wire
    "hv.job.overrun",     // released job demands 8x its declared WCET
    "hv.partition.crash", // completing job raises a partition error
    "efpga.prog.header.corrupt",  // header word mangled while being written
    "efpga.prog.frame.corrupt",   // in-flight frame word flipped during write
    "efpga.prog.frame.drop",      // frame write lost before reaching the array
    "efpga.config.rot",   // static config-memory upset after programming
    "df.node.transient",  // dataflow node firing fails with kInternal
    "df.node.overrun",    // dataflow node firing blows its deadline
    "df.node.permanent",  // dataflow node firing fails permanently
    "noc.arb.stall",      // crossbar arbiter withholds grants to one endpoint
    "noc.beat.drop",      // granted beat lost between port and endpoint
    "noc.beat.corrupt",   // granted beat's payload flipped in flight
    "noc.credit.leak",    // returning flow-control credit lost on the fabric
    "noc.endpoint.wedge", // endpoint stops consuming until re-admitted
    "svc.cache.entry.rot",   // compile-cache artifact image rotted in storage
    "svc.cache.evict.storm", // compile-cache spuriously sheds half its entries
};

}  // namespace

std::span<const std::string_view> default_point_catalog() {
  return kCatalog;
}

FaultPlan make_random_plan(std::uint64_t seed,
                           std::span<const std::string_view> points) {
  if (points.empty()) points = default_point_catalog();
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  FaultPlan plan;
  plan.seed = seed;
  for (const std::string_view point : points) {
    if (!rng.next_bool(0.45)) continue;
    FaultSchedule schedule;
    // Log-uniform-ish probability in [1e-3, 0.5]: chaos needs both drizzle
    // and storms.
    const double exponent = 0.3 + 2.7 * rng.next_double();
    schedule.probability = std::min(0.5, 1.0 / std::pow(10.0, exponent));
    // Half the windows open immediately: points with only a handful of
    // opportunities (one per boot flash read, say) still see faults.
    schedule.window_begin = rng.next_bool(0.5) ? 0 : rng.next_below(64);
    schedule.window_end =
        schedule.window_begin + 1 + rng.next_below(4096);
    schedule.burst_len = 1 + static_cast<unsigned>(rng.next_below(12));
    schedule.max_fires = 1 + rng.next_below(48);
    plan.points.push_back({std::string(point), schedule});
  }
  // Never return an empty plan: chaos with zero armed points is a control
  // run, which the soak covers separately.
  if (plan.points.empty()) {
    FaultSchedule schedule;
    schedule.probability = 0.02;
    schedule.max_fires = 4;
    plan.points.push_back(
        {std::string(points[rng.next_below(points.size())]), schedule});
  }
  return plan;
}

}  // namespace hermes::fault
