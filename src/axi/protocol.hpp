// AXI4 protocol model (AMBA AXI, ARM IHI 0022).
//
// "The integrated ARM processor on the NG-ULTRA board uses the AXI4 protocol
// interfaces to communicate with the rest of the system; therefore, support
// for AXI4 interfaces has been added to Bambu" (HERMES, Sec. II). This module
// models the five AXI4 channels at transaction/beat granularity: enough to
// generate master adapters for HLS accelerators, simulate the slave
// counterpart with configurable memory delays, and check protocol rules
// (burst length, 4KB boundary, alignment, WLAST placement).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"

namespace hermes::axi {

enum class Burst : std::uint8_t { kFixed = 0, kIncr = 1, kWrap = 2 };
enum class Resp : std::uint8_t { kOkay = 0, kExOkay = 1, kSlvErr = 2, kDecErr = 3 };

const char* to_string(Burst burst);
const char* to_string(Resp resp);

inline constexpr unsigned kMaxBurstLen = 256;   ///< AXI4 INCR bursts
inline constexpr std::uint64_t k4KBoundary = 4096;

/// Read/write address channel payload (AR / AW).
struct AddrBeat {
  std::uint64_t addr = 0;
  unsigned len = 0;        ///< beats - 1 (AxLEN)
  unsigned size_log2 = 2;  ///< bytes per beat = 1 << size_log2 (AxSIZE)
  Burst burst = Burst::kIncr;
  unsigned id = 0;
};

/// Write data channel payload (W).
struct WriteBeat {
  std::uint64_t data = 0;
  std::uint8_t strb = 0xF;  ///< byte strobes for the active lanes
  bool last = false;
};

/// Read data channel payload (R).
struct ReadBeat {
  std::uint64_t data = 0;
  Resp resp = Resp::kOkay;
  bool last = false;
  unsigned id = 0;
};

/// Address of beat `n` of a burst (AXI4 address-calculation rules; WRAP
/// bursts wrap at the container boundary).
std::uint64_t beat_address(const AddrBeat& ab, unsigned beat);

/// Validates a burst against AXI4 rules: legal length for the burst type,
/// no 4KB boundary crossing for INCR, power-of-two length for WRAP.
Status validate_burst(const AddrBeat& ab);

/// Splits an arbitrary (possibly unaligned) byte range into legal INCR
/// bursts of `size_log2`-byte beats, none crossing a 4KB boundary. The first
/// and last beats may be partial (narrow strobes) — this implements the
/// "fully functional ... supports unaligned memory accesses" behaviour of
/// the generated interface code.
std::vector<AddrBeat> split_transfer(std::uint64_t addr, std::uint64_t bytes,
                                     unsigned size_log2,
                                     unsigned max_len = kMaxBurstLen);

}  // namespace hermes::axi
