#include "axi/master.hpp"

#include <cassert>

namespace hermes::axi {

void AxiMaster::read(std::uint64_t addr, std::span<std::uint8_t> out) {
  if (out.empty()) return;
  const unsigned size_log2 = 2;  // 32-bit data bus
  const std::uint64_t beat_bytes = 1ULL << size_log2;
  const auto bursts = split_transfer(addr, out.size(), size_log2);
  for (const AddrBeat& ar : bursts) {
    ++stats_.bursts;
    while (!slave_.push_read(ar)) {
      tick();
      ++stats_.stall_cycles;
    }
    if (checker_) checker_->on_ar(ar);
    tick();  // AR handshake cycle
    unsigned beat = 0;
    while (beat <= ar.len) {
      ReadBeat rb;
      if (slave_.pop_read_beat(rb)) {
        ++stats_.beats;
        if (checker_) checker_->on_r(rb);
        const std::uint64_t beat_addr = beat_address(ar, beat);
        for (unsigned lane = 0; lane < beat_bytes; ++lane) {
          const std::uint64_t byte_addr = beat_addr + lane;
          if (byte_addr >= addr && byte_addr < addr + out.size()) {
            out[byte_addr - addr] = static_cast<std::uint8_t>(rb.data >> (8 * lane));
            ++stats_.bytes_read;
          }
        }
        ++beat;
      } else {
        ++stats_.stall_cycles;
      }
      tick();
    }
  }
}

void AxiMaster::write(std::uint64_t addr, std::span<const std::uint8_t> data) {
  if (data.empty()) return;
  const unsigned size_log2 = 2;
  const std::uint64_t beat_bytes = 1ULL << size_log2;
  const auto bursts = split_transfer(addr, data.size(), size_log2);
  for (const AddrBeat& aw : bursts) {
    ++stats_.bursts;
    if (checker_) checker_->on_aw(aw);
    std::vector<WriteBeat> beats;
    for (unsigned beat = 0; beat <= aw.len; ++beat) {
      const std::uint64_t beat_addr = beat_address(aw, beat);
      WriteBeat wb;
      wb.strb = 0;
      for (unsigned lane = 0; lane < beat_bytes; ++lane) {
        const std::uint64_t byte_addr = beat_addr + lane;
        if (byte_addr >= addr && byte_addr < addr + data.size()) {
          wb.strb |= static_cast<std::uint8_t>(1u << lane);
          wb.data |= static_cast<std::uint64_t>(data[byte_addr - addr])
                     << (8 * lane);
          ++stats_.bytes_written;
        }
      }
      wb.last = beat == aw.len;
      if (checker_) checker_->on_w(wb);
      beats.push_back(wb);
      tick();  // one W beat per cycle
      ++stats_.beats;
    }
    while (!slave_.push_write(aw, beats)) {
      tick();
      ++stats_.stall_cycles;
    }
    Resp resp = Resp::kOkay;
    unsigned id = 0;
    while (!slave_.pop_write_resp(resp, id)) {
      tick();
      ++stats_.stall_cycles;
    }
    if (checker_) checker_->on_b(resp, id);
    tick();  // B handshake
    assert(resp == Resp::kOkay || resp == Resp::kDecErr);
  }
}

std::uint64_t AxiMaster::read_word(std::uint64_t addr, unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  std::uint8_t buffer[8] = {0};
  read(addr, std::span(buffer, bytes));
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
  }
  return value;
}

void AxiMaster::write_word(std::uint64_t addr, std::uint64_t value,
                           unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  std::uint8_t buffer[8];
  for (unsigned i = 0; i < bytes; ++i) {
    buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  write(addr, std::span<const std::uint8_t>(buffer, bytes));
}

}  // namespace hermes::axi
