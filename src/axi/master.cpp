#include "axi/master.hpp"

#include <cassert>

#include "common/backoff.hpp"
#include "common/strings.hpp"

namespace hermes::axi {
namespace {

/// DECERR outranks SLVERR when both appear in one burst: the decode error is
/// permanent and must not be masked by a retriable failure.
Resp worse(Resp a, Resp b) {
  auto rank = [](Resp r) {
    switch (r) {
      case Resp::kDecErr: return 2;
      case Resp::kSlvErr: return 1;
      default: return 0;
    }
  };
  return rank(a) >= rank(b) ? a : b;
}

}  // namespace

Status AxiMaster::trip_watchdog(const char* channel, const AddrBeat& burst) {
  ++stats_.watchdog_trips;
  slave_.abort_pending();  // bus reset: no stale beats may leak out
  return Status::Error(
      ErrorCode::kDeadlineExceeded,
      format("AXI %s starved beyond %llu cycles (burst at 0x%llx)", channel,
             static_cast<unsigned long long>(config_.watchdog_cycles),
             static_cast<unsigned long long>(burst.addr)));
}

Status AxiMaster::decode_resp(Resp resp, const AddrBeat& burst) const {
  switch (resp) {
    case Resp::kOkay:
    case Resp::kExOkay:
      return Status::Ok();
    case Resp::kDecErr:
      return Status::Error(
          ErrorCode::kInvalidArgument,
          format("AXI DECERR: no slave decodes address 0x%llx",
                 static_cast<unsigned long long>(burst.addr)));
    case Resp::kSlvErr:
      return Status::Error(
          ErrorCode::kInternal,
          format("AXI SLVERR at 0x%llx",
                 static_cast<unsigned long long>(burst.addr)));
  }
  return Status::Error(ErrorCode::kInternal, "unknown AXI response");
}

void AxiMaster::backoff(unsigned attempt) {
  const std::uint64_t idle =
      backoff_cycles(config_.retry_backoff_cycles, attempt);
  for (std::uint64_t i = 0; i < idle; ++i) tick();
}

void AxiMaster::note_burst_failure(const Status& status, bool will_retry) {
  if (!fdir_) return;
  fdir::Severity severity;
  if (will_retry) {
    severity = fdir::Severity::kRetried;
  } else if (status.code() == ErrorCode::kInternal) {
    severity = fdir::Severity::kExhausted;  // SLVERR survived the retry budget
  } else {
    severity = fdir::Severity::kUncorrectable;  // watchdog trip or DECERR
  }
  fdir_->publish({fdir::Layer::kAxi, severity, status.code(), 0, stats_.cycles});
}

Status AxiMaster::read_burst_once(const AddrBeat& ar, std::uint64_t addr,
                                  std::span<std::uint8_t> out) {
  const std::uint64_t beat_bytes = 1ULL << ar.size_log2;
  const std::uint64_t deadline = stats_.cycles + config_.watchdog_cycles;
  while (!slave_.push_read(ar)) {
    if (stats_.cycles >= deadline) return trip_watchdog("AR", ar);
    tick();
    ++stats_.stall_cycles;
  }
  if (checker_) checker_->on_ar(ar);
  tick();  // AR handshake cycle
  unsigned beat = 0;
  Resp burst_resp = Resp::kOkay;
  while (beat <= ar.len) {
    ReadBeat rb;
    if (slave_.pop_read_beat(rb)) {
      ++stats_.beats;
      if (checker_) checker_->on_r(rb);
      if (rb.resp != Resp::kOkay && rb.resp != Resp::kExOkay) {
        ++stats_.errors;
        burst_resp = worse(burst_resp, rb.resp);
      }
      // Data lands even for a failing burst; a retry simply overwrites it,
      // and the caller never sees the buffer unless the final Status is ok.
      const std::uint64_t beat_addr = beat_address(ar, beat);
      for (unsigned lane = 0; lane < beat_bytes; ++lane) {
        const std::uint64_t byte_addr = beat_addr + lane;
        if (byte_addr >= addr && byte_addr < addr + out.size()) {
          out[byte_addr - addr] = static_cast<std::uint8_t>(rb.data >> (8 * lane));
          ++stats_.bytes_read;
        }
      }
      ++beat;
    } else {
      if (stats_.cycles >= deadline) return trip_watchdog("R", ar);
      ++stats_.stall_cycles;
    }
    tick();
  }
  return decode_resp(burst_resp, ar);
}

Status AxiMaster::read(std::uint64_t addr, std::span<std::uint8_t> out) {
  if (out.empty()) return Status::Ok();
  const unsigned size_log2 = 2;  // 32-bit data bus
  const auto bursts = split_transfer(addr, out.size(), size_log2);
  for (const AddrBeat& ar : bursts) {
    for (unsigned attempt = 0;; ++attempt) {
      ++stats_.bursts;
      const std::uint64_t bytes_before = stats_.bytes_read;
      Status status = read_burst_once(ar, addr, out);
      if (status.ok()) break;
      // Only SLVERR (mapped to kInternal) is transient; DECERR and watchdog
      // trips end the transfer immediately.
      if (status.code() != ErrorCode::kInternal ||
          attempt >= config_.max_retries) {
        note_burst_failure(status, /*will_retry=*/false);
        return status;
      }
      note_burst_failure(status, /*will_retry=*/true);
      stats_.bytes_read = bytes_before;  // retried beats are not new payload
      ++stats_.retries;
      backoff(attempt);
    }
  }
  return Status::Ok();
}

Status AxiMaster::write_burst_once(const AddrBeat& aw,
                                   const std::vector<WriteBeat>& beats) {
  const std::uint64_t deadline = stats_.cycles + config_.watchdog_cycles;
  if (checker_) checker_->on_aw(aw);
  for (const WriteBeat& wb : beats) {
    if (checker_) checker_->on_w(wb);
    tick();  // one W beat per cycle
    ++stats_.beats;
  }
  while (!slave_.push_write(aw, beats)) {
    if (stats_.cycles >= deadline) return trip_watchdog("AW", aw);
    tick();
    ++stats_.stall_cycles;
  }
  Resp resp = Resp::kOkay;
  unsigned id = 0;
  while (!slave_.pop_write_resp(resp, id)) {
    if (stats_.cycles >= deadline) return trip_watchdog("B", aw);
    tick();
    ++stats_.stall_cycles;
  }
  if (checker_) checker_->on_b(resp, id);
  tick();  // B handshake
  if (resp != Resp::kOkay && resp != Resp::kExOkay) ++stats_.errors;
  return decode_resp(resp, aw);
}

Status AxiMaster::write(std::uint64_t addr, std::span<const std::uint8_t> data) {
  if (data.empty()) return Status::Ok();
  const unsigned size_log2 = 2;
  const std::uint64_t beat_bytes = 1ULL << size_log2;
  const auto bursts = split_transfer(addr, data.size(), size_log2);
  for (const AddrBeat& aw : bursts) {
    // Assemble the burst's beats once; retries re-present the identical
    // data, which is what makes the retry idempotent.
    std::vector<WriteBeat> beats;
    beats.reserve(aw.len + 1u);
    for (unsigned beat = 0; beat <= aw.len; ++beat) {
      const std::uint64_t beat_addr = beat_address(aw, beat);
      WriteBeat wb;
      wb.strb = 0;
      for (unsigned lane = 0; lane < beat_bytes; ++lane) {
        const std::uint64_t byte_addr = beat_addr + lane;
        if (byte_addr >= addr && byte_addr < addr + data.size()) {
          wb.strb |= static_cast<std::uint8_t>(1u << lane);
          wb.data |= static_cast<std::uint64_t>(data[byte_addr - addr])
                     << (8 * lane);
        }
      }
      wb.last = beat == aw.len;
      beats.push_back(wb);
    }
    for (unsigned attempt = 0;; ++attempt) {
      ++stats_.bursts;
      Status status = write_burst_once(aw, beats);
      if (status.ok()) break;
      if (status.code() != ErrorCode::kInternal ||
          attempt >= config_.max_retries) {
        note_burst_failure(status, /*will_retry=*/false);
        return status;
      }
      note_burst_failure(status, /*will_retry=*/true);
      ++stats_.retries;
      backoff(attempt);
    }
    for (const WriteBeat& wb : beats) {
      for (unsigned lane = 0; lane < beat_bytes; ++lane) {
        if (wb.strb & (1u << lane)) ++stats_.bytes_written;
      }
    }
  }
  return Status::Ok();
}

Result<std::uint64_t> AxiMaster::read_word(std::uint64_t addr, unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  std::uint8_t buffer[8] = {0};
  Status status = read(addr, std::span(buffer, bytes));
  if (!status.ok()) return status;
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(buffer[i]) << (8 * i);
  }
  return value;
}

Status AxiMaster::write_word(std::uint64_t addr, std::uint64_t value,
                             unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  std::uint8_t buffer[8];
  for (unsigned i = 0; i < bytes; ++i) {
    buffer[i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  return write(addr, std::span<const std::uint8_t>(buffer, bytes));
}

}  // namespace hermes::axi
