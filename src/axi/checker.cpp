#include "axi/checker.hpp"

#include "common/strings.hpp"

namespace hermes::axi {

void AxiChecker::on_ar(const AddrBeat& ar) {
  const Status legal = validate_burst(ar);
  if (!legal.ok()) {
    violation(format("AR: %s", legal.message().c_str()));
  }
  reads_[ar.id].push_back({ar, 0});
}

void AxiChecker::on_r(const ReadBeat& beat) {
  auto it = reads_.find(beat.id);
  if (it == reads_.end() || it->second.empty()) {
    violation(format("R beat with no outstanding AR (id %u)", beat.id));
    return;
  }
  // AXI4: data for a given ID returns in AR order.
  ReadTxn& txn = it->second.front();
  ++txn.beats_seen;
  const unsigned expected = txn.ar.len + 1;
  if (txn.beats_seen > expected) {
    violation(format("R: more beats than ARLEN+1 (id %u)", beat.id));
  }
  const bool should_be_last = txn.beats_seen == expected;
  if (beat.last != should_be_last) {
    violation(format("R: RLAST %s on beat %u of %u (id %u)",
                     beat.last ? "asserted" : "missing", txn.beats_seen,
                     expected, beat.id));
  }
  if (beat.last || txn.beats_seen >= expected) {
    it->second.erase(it->second.begin());
  }
}

void AxiChecker::on_aw(const AddrBeat& aw) {
  const Status legal = validate_burst(aw);
  if (!legal.ok()) {
    violation(format("AW: %s", legal.message().c_str()));
  }
  writes_.push_back({aw, 0, false});
}

void AxiChecker::on_w(const WriteBeat& beat) {
  // W data follows AW order (AXI4 has no WID).
  WriteTxn* txn = nullptr;
  for (WriteTxn& candidate : writes_) {
    if (!candidate.last_seen) {
      txn = &candidate;
      break;
    }
  }
  if (!txn) {
    violation("W beat with no open write burst");
    return;
  }
  ++txn->beats_seen;
  const unsigned expected = txn->aw.len + 1;
  if (txn->beats_seen > expected) {
    violation("W: more beats than AWLEN+1");
  }
  const bool should_be_last = txn->beats_seen == expected;
  if (beat.last != should_be_last) {
    violation(format("W: WLAST %s on beat %u of %u",
                     beat.last ? "asserted" : "missing", txn->beats_seen,
                     expected));
  }
  if (beat.last) txn->last_seen = true;
}

void AxiChecker::on_b(Resp resp, unsigned id) {
  (void)resp;
  for (std::size_t i = 0; i < writes_.size(); ++i) {
    if (writes_[i].aw.id == id) {
      if (!writes_[i].last_seen) {
        violation(format("B before WLAST (id %u)", id));
      }
      writes_.erase(writes_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
  violation(format("B with no outstanding AW (id %u)", id));
}

std::size_t AxiChecker::dangling() const {
  std::size_t count = writes_.size();
  for (const auto& [id, queue] : reads_) count += queue.size();
  return count;
}

}  // namespace hermes::axi
