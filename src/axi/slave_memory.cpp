#include "axi/slave_memory.hpp"

#include <cassert>

namespace hermes::axi {

AxiSlaveMemory::AxiSlaveMemory(std::size_t bytes, MemoryTiming timing)
    : store_(bytes, 0), timing_(timing) {}

void AxiSlaveMemory::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (!injector_) {
    pt_ar_stall_ = pt_aw_stall_ = pt_r_stall_ = fault::kNoFaultPoint;
    pt_r_corrupt_ = pt_r_slverr_ = pt_b_slverr_ = fault::kNoFaultPoint;
    return;
  }
  pt_ar_stall_ = injector_->register_point("axi.ar.stall");
  pt_aw_stall_ = injector_->register_point("axi.aw.stall");
  pt_r_stall_ = injector_->register_point("axi.r.stall");
  pt_r_corrupt_ = injector_->register_point("axi.r.corrupt");
  pt_r_slverr_ = injector_->register_point("axi.r.slverr");
  pt_b_slverr_ = injector_->register_point("axi.b.slverr");
}

std::uint8_t AxiSlaveMemory::peek(std::uint64_t addr) const {
  return addr < store_.size() ? store_[addr] : 0;
}

void AxiSlaveMemory::poke(std::uint64_t addr, std::uint8_t value) {
  if (addr < store_.size()) store_[addr] = value;
}

std::uint64_t AxiSlaveMemory::peek_word(std::uint64_t addr, unsigned bytes) const {
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes; ++i) {
    value |= static_cast<std::uint64_t>(peek(addr + i)) << (8 * i);
  }
  return value;
}

void AxiSlaveMemory::poke_word(std::uint64_t addr, std::uint64_t value,
                               unsigned bytes) {
  for (unsigned i = 0; i < bytes; ++i) {
    poke(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
  }
}

bool AxiSlaveMemory::push_read(const AddrBeat& ar) {
  if (injector_ && injector_->should_fire(pt_ar_stall_)) return false;
  if (reads_.size() >= timing_.max_outstanding) return false;
  assert(validate_burst(ar).ok());
  PendingRead pending;
  pending.ar = ar;
  pending.ready_at = now_ + timing_.read_latency;
  pending.next_beat_at = pending.ready_at;
  reads_.push_back(pending);
  return true;
}

bool AxiSlaveMemory::push_write(const AddrBeat& aw,
                                const std::vector<WriteBeat>& beats) {
  if (injector_ && injector_->should_fire(pt_aw_stall_)) return false;
  if (writes_.size() >= timing_.max_outstanding) return false;
  assert(validate_burst(aw).ok());
  assert(beats.size() == aw.len + 1u);
  PendingWrite pending;
  pending.aw = aw;
  pending.beats = beats;
  pending.resp_at = now_ + timing_.write_latency +
                    static_cast<std::uint64_t>(beats.size()) * timing_.cycles_per_beat;
  writes_.push_back(pending);
  return true;
}

bool AxiSlaveMemory::pop_read_beat(ReadBeat& out) {
  if (reads_.empty()) return false;
  PendingRead& pending = reads_.front();
  if (now_ < pending.next_beat_at) return false;
  if (injector_ && injector_->should_fire(pt_r_stall_)) return false;

  const std::uint64_t addr = beat_address(pending.ar, pending.next_beat);
  const unsigned bytes = 1u << pending.ar.size_log2;
  const bool in_range = addr + bytes <= store_.size();
  out.data = peek_word(addr, bytes);
  out.resp = in_range || !timing_.oob_decerr ? Resp::kOkay : Resp::kDecErr;
  out.id = pending.ar.id;
  out.last = pending.next_beat == pending.ar.len;
  if (injector_) {
    if (injector_->should_fire(pt_r_corrupt_)) {
      out.data = injector_->mutate_word(pt_r_corrupt_, out.data, 8 * bytes);
    }
    if (out.resp == Resp::kOkay && injector_->should_fire(pt_r_slverr_)) {
      out.resp = Resp::kSlvErr;
    }
  }
  ++read_beats_;

  ++pending.next_beat;
  pending.next_beat_at = now_ + timing_.cycles_per_beat;
  if (out.last) reads_.pop_front();
  return true;
}

bool AxiSlaveMemory::pop_write_resp(Resp& out, unsigned& id) {
  if (writes_.empty()) return false;
  PendingWrite& pending = writes_.front();
  if (now_ < pending.resp_at) return false;

  id = pending.aw.id;
  if (injector_ && injector_->should_fire(pt_b_slverr_)) {
    // Slave-side failure: the burst is NOT committed, so a retry of the same
    // (idempotent) burst observes a clean slate.
    out = Resp::kSlvErr;
    writes_.pop_front();
    return true;
  }

  // Commit all beats with strobes.
  bool error = false;
  for (unsigned beat = 0; beat <= pending.aw.len; ++beat) {
    const std::uint64_t addr = beat_address(pending.aw, beat);
    const unsigned bytes = 1u << pending.aw.size_log2;
    if (addr + bytes > store_.size()) {
      error = true;
      continue;
    }
    const WriteBeat& wb = pending.beats[beat];
    for (unsigned lane = 0; lane < bytes; ++lane) {
      if (wb.strb & (1u << lane)) {
        poke(addr + lane, static_cast<std::uint8_t>(wb.data >> (8 * lane)));
      }
    }
    ++write_beats_;
  }
  out = error && timing_.oob_decerr ? Resp::kDecErr : Resp::kOkay;
  writes_.pop_front();
  return true;
}

void AxiSlaveMemory::abort_pending() {
  reads_.clear();
  writes_.clear();
}

void AxiSlaveMemory::tick() { ++now_; }

}  // namespace hermes::axi
