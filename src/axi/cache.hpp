// Configurable AXI cache with optional next-line prefetching.
//
// Implements the extension the paper names as future work: "adding support
// for prefetching and caching mechanisms might drastically reduce the
// average access time. Furthermore, Bambu will be extended to support the
// customization of cache sizes, associativity, and other features" (HERMES,
// Sec. II). The cache sits between a per-access accelerator master and the
// AXI slave memory: hits cost one cycle; misses fetch a whole line with one
// INCR burst (amortizing the transaction latency); an optional sequential
// prefetcher fetches the next line(s) on a miss.
//
// Set-associative, true-LRU replacement, write-back/write-allocate or
// write-through/no-allocate.
#pragma once

#include <cstdint>
#include <vector>

#include "axi/master.hpp"

namespace hermes::axi {

struct CacheConfig {
  std::size_t size_bytes = 1024;
  unsigned associativity = 2;
  unsigned line_bytes = 32;
  bool write_back = true;      ///< false = write-through, no write-allocate
  unsigned prefetch_lines = 0; ///< sequential next-line prefetch depth
};

struct CacheStats {
  std::uint64_t reads = 0, writes = 0;
  std::uint64_t hits = 0, misses = 0;
  std::uint64_t evictions = 0, writebacks = 0;
  std::uint64_t prefetches = 0, prefetch_hits = 0;
  std::uint64_t cycles = 0;      ///< total access cycles incl. bus traffic
  std::uint64_t bus_errors = 0;  ///< fills/writebacks the master failed
  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class AxiCache {
 public:
  /// `config.size_bytes` must be a multiple of associativity * line_bytes.
  AxiCache(AxiMaster& master, const CacheConfig& config);

  /// Cached read/write of up to 8 bytes (little-endian), like the per-access
  /// master interface it replaces.
  std::uint64_t read_word(std::uint64_t addr, unsigned bytes);
  void write_word(std::uint64_t addr, std::uint64_t value, unsigned bytes);

  /// Writes back all dirty lines (required before handing the memory to
  /// another master — the DMA-out step of the wrapper).
  void flush();

  /// Drops all lines without writing back (test helper).
  void invalidate();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    bool prefetched = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;
    std::vector<std::uint8_t> data;
  };

  [[nodiscard]] std::size_t set_index(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const;
  /// Returns the line holding `addr`, filling on miss; `for_write` decides
  /// allocation policy under write-through.
  Line* lookup_fill(std::uint64_t addr, bool for_write);
  Line& victim(std::size_t set);
  void fill_line(Line& line, std::uint64_t addr, bool prefetched);
  void write_back_line(Line& line, std::size_t set);

  AxiMaster& master_;
  CacheConfig config_;
  std::size_t num_sets_;
  std::vector<Line> lines_;  ///< num_sets_ x associativity, row-major
  std::uint64_t clock_ = 0;  ///< LRU timestamp source
  CacheStats stats_;
};

}  // namespace hermes::axi
