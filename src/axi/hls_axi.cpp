#include "axi/hls_axi.hpp"

#include "common/bits.hpp"
#include "common/strings.hpp"
#include "hw/sim.hpp"
#include "ir/interp.hpp"

namespace hermes::axi {

const char* to_string(AxiMode mode) {
  switch (mode) {
    case AxiMode::kDmaBurst: return "dma_burst";
    case AxiMode::kPerAccess: return "per_access";
    case AxiMode::kPerAccessCached: return "per_access_cached";
  }
  return "?";
}

AxiMap default_axi_map(const ir::Function& function, std::uint64_t base) {
  AxiMap map;
  std::uint64_t addr = base;
  for (std::size_t m = 0; m < function.memories().size(); ++m) {
    const ir::MemDecl& decl = function.memories()[m];
    if (!decl.is_interface) continue;
    const unsigned word = ceil_div(decl.element.bits, 8);
    map.base_addr[m] = addr;
    addr += decl.depth * word;
    addr = (addr + 63) & ~63ULL;  // 64-byte align the next array
  }
  return map;
}

Result<AxiRunResult> run_with_axi(const hls::FlowResult& flow,
                                  const std::vector<std::uint64_t>& scalar_args,
                                  AxiSlaveMemory& ddr, const AxiMap& map,
                                  AxiMode mode, const CacheConfig& cache_config,
                                  std::uint64_t max_cycles,
                                  const MasterConfig& master_config) {
  const ir::Function& function = flow.function;
  const bool per_access = mode != AxiMode::kDmaBurst;
  AxiMaster master(ddr, master_config);
  AxiRunResult result;

  auto word_bytes = [&](std::size_t mem) {
    return ceil_div(function.memories()[mem].element.bits, 8);
  };

  // ---- golden model over the same external contents (traced if needed) ----
  ir::Interpreter interp(function);
  std::vector<ir::MemAccess> trace;
  if (per_access) interp.set_trace(&trace);
  for (const auto& [mem, base] : map.base_addr) {
    const ir::MemDecl& decl = function.memories()[mem];
    const unsigned word = word_bytes(mem);
    std::vector<std::uint64_t> image(decl.depth);
    for (std::size_t i = 0; i < decl.depth; ++i) {
      image[i] = ddr.peek_word(base + i * word, word);
    }
    interp.set_memory(mem, image);
  }
  auto golden = interp.run(scalar_args);
  if (!golden.ok()) return golden.status();

  // ---- hardware compute out of local BRAM ----
  hw::Simulator sim(flow.fsmd.module);
  if (!sim.status().ok()) return sim.status();

  // Load interface arrays into the accelerator-local memories. In DMA mode
  // this is the timed burst transfer; in per-access modes the accelerator
  // fetches on demand (priced by the trace replay below), so the preload is
  // an untimed functional shortcut.
  for (const auto& [mem, base] : map.base_addr) {
    const ir::MemDecl& decl = function.memories()[mem];
    const unsigned word = word_bytes(mem);
    if (mode == AxiMode::kDmaBurst) {
      std::vector<std::uint8_t> buffer(decl.depth * word);
      Status dma_in = master.read(base, buffer);
      if (!dma_in.ok()) return dma_in;
      for (std::size_t i = 0; i < decl.depth; ++i) {
        std::uint64_t value = 0;
        for (unsigned b = 0; b < word; ++b) {
          value |= static_cast<std::uint64_t>(buffer[i * word + b]) << (8 * b);
        }
        sim.write_memory(mem, i, value);
      }
    } else {
      for (std::size_t i = 0; i < decl.depth; ++i) {
        sim.write_memory(mem, i, ddr.peek_word(base + i * word, word));
      }
    }
  }

  std::size_t arg_index = 0;
  for (const ir::ParamDecl& param : function.params) {
    if (param.is_array()) continue;
    sim.set_input("arg_" + param.name, scalar_args.at(arg_index++));
  }
  sim.set_input("start", 1);
  auto cycles = sim.run_until("done", max_cycles);
  if (!cycles.ok()) return cycles.status();
  result.compute_cycles = cycles.value();

  if (mode == AxiMode::kDmaBurst) {
    // DMA out: only interface arrays the kernel may have written.
    std::vector<bool> stored(function.memories().size(), false);
    for (ir::BlockId b = 0; b < function.num_blocks(); ++b) {
      for (const ir::Instr& instr : function.block(b).instrs) {
        if (instr.op == ir::Op::kStore) stored[instr.imm] = true;
      }
    }
    for (const auto& [mem, base] : map.base_addr) {
      if (!stored[mem]) continue;
      const ir::MemDecl& decl = function.memories()[mem];
      const unsigned word = word_bytes(mem);
      std::vector<std::uint8_t> buffer(decl.depth * word);
      for (std::size_t i = 0; i < decl.depth; ++i) {
        const std::uint64_t value = sim.read_memory(mem, i);
        for (unsigned b = 0; b < word; ++b) {
          buffer[i * word + b] = static_cast<std::uint8_t>(value >> (8 * b));
        }
      }
      Status dma_out = master.write(base, buffer);
      if (!dma_out.ok()) return dma_out;
    }
    result.bus = master.stats();
    result.transfer_cycles = result.bus.cycles;
  } else {
    // Per-access replay: run the golden model's dynamic access sequence on
    // the live bus (optionally through the cache). Writes carry the real
    // stored values, so the final DDR contents come out right.
    AxiCache cache(master, cache_config);
    const bool cached = mode == AxiMode::kPerAccessCached;
    for (const ir::MemAccess& access : trace) {
      const auto it = map.base_addr.find(access.mem);
      if (it == map.base_addr.end()) continue;  // accelerator-local memory
      const ir::MemDecl& decl = function.memories()[access.mem];
      if (access.address >= decl.depth) continue;  // OOB dropped (IR policy)
      const unsigned word = word_bytes(access.mem);
      const std::uint64_t ext = it->second + access.address * word;
      if (cached) {
        if (access.is_write) {
          cache.write_word(ext, access.value, word);
        } else {
          cache.read_word(ext, word);
        }
      } else {
        if (access.is_write) {
          Status st = master.write_word(ext, access.value, word);
          if (!st.ok()) return st;
        } else {
          auto value = master.read_word(ext, word);
          if (!value.ok()) return value.status();
        }
      }
    }
    if (cached) {
      cache.flush();
      result.cache = cache.stats();
      if (result.cache.bus_errors > 0) {
        return Status::Error(
            ErrorCode::kInternal,
            format("%llu AXI bus errors during cached replay",
                   static_cast<unsigned long long>(result.cache.bus_errors)));
      }
      result.transfer_cycles = result.cache.cycles;
    } else {
      result.transfer_cycles = master.stats().cycles;
    }
    result.bus = master.stats();

    // The DDR contents above came from the golden trace; validate the
    // *hardware* against the golden model through its local memories.
    for (const auto& [mem, base] : map.base_addr) {
      if (!result.match) break;
      const ir::MemDecl& decl = function.memories()[mem];
      const auto& sw_mem = interp.memory(mem);
      for (std::size_t i = 0; i < decl.depth; ++i) {
        if (sim.read_memory(mem, i) != sw_mem[i]) {
          result.match = false;
          result.mismatch = format("accelerator %s[%zu] diverged from golden",
                                   decl.name.c_str(), i);
          break;
        }
      }
    }
  }
  result.total_cycles = result.compute_cycles + result.transfer_cycles;

  // ---- compare against golden ----
  if (function.return_type.bits != 0) {
    result.return_value = sim.get_output("return_value");
    if (result.return_value != golden.value().return_value) {
      result.match = false;
      result.mismatch = format(
          "return value: hw=%llu sw=%llu",
          static_cast<unsigned long long>(result.return_value),
          static_cast<unsigned long long>(golden.value().return_value));
    }
  }
  for (const auto& [mem, base] : map.base_addr) {
    if (!result.match) break;
    const ir::MemDecl& decl = function.memories()[mem];
    const unsigned word = word_bytes(mem);
    const auto& sw_mem = interp.memory(mem);
    for (std::size_t i = 0; i < decl.depth; ++i) {
      const std::uint64_t hw_value = ddr.peek_word(base + i * word, word);
      if (truncate(hw_value, decl.element.bits) != sw_mem[i]) {
        result.match = false;
        result.mismatch =
            format("ddr %s[%zu]: hw=%llu sw=%llu", decl.name.c_str(), i,
                   static_cast<unsigned long long>(hw_value),
                   static_cast<unsigned long long>(sw_mem[i]));
        break;
      }
    }
  }
  return result;
}

}  // namespace hermes::axi
