#include "axi/cache.hpp"

#include <cassert>

namespace hermes::axi {

AxiCache::AxiCache(AxiMaster& master, const CacheConfig& config)
    : master_(master), config_(config) {
  assert(config_.line_bytes >= 8 && (config_.line_bytes & (config_.line_bytes - 1)) == 0);
  assert(config_.associativity >= 1);
  num_sets_ = config_.size_bytes /
              (static_cast<std::size_t>(config_.associativity) * config_.line_bytes);
  if (num_sets_ == 0) num_sets_ = 1;
  lines_.resize(num_sets_ * config_.associativity);
  for (Line& line : lines_) line.data.assign(config_.line_bytes, 0);
}

std::size_t AxiCache::set_index(std::uint64_t addr) const {
  return (addr / config_.line_bytes) % num_sets_;
}

std::uint64_t AxiCache::tag_of(std::uint64_t addr) const {
  return addr / config_.line_bytes / num_sets_;
}

AxiCache::Line& AxiCache::victim(std::size_t set) {
  Line* best = nullptr;
  for (unsigned way = 0; way < config_.associativity; ++way) {
    Line& line = lines_[set * config_.associativity + way];
    if (!line.valid) return line;
    if (!best || line.lru < best->lru) best = &line;
  }
  return *best;
}

void AxiCache::write_back_line(Line& line, std::size_t set) {
  if (!line.valid || !line.dirty) return;
  const std::uint64_t base =
      (line.tag * num_sets_ + set) * config_.line_bytes;
  const std::uint64_t before = master_.stats().cycles;
  if (!master_.write(base, line.data).ok()) ++stats_.bus_errors;
  stats_.cycles += master_.stats().cycles - before;
  ++stats_.writebacks;
  line.dirty = false;
}

void AxiCache::fill_line(Line& line, std::uint64_t addr, bool prefetched) {
  const std::uint64_t base = (addr / config_.line_bytes) * config_.line_bytes;
  const std::uint64_t before = master_.stats().cycles;
  if (!master_.read(base, line.data).ok()) ++stats_.bus_errors;
  stats_.cycles += master_.stats().cycles - before;
  line.valid = true;
  line.dirty = false;
  line.prefetched = prefetched;
  line.tag = tag_of(addr);
  line.lru = clock_;
  if (prefetched) ++stats_.prefetches;
}

AxiCache::Line* AxiCache::lookup_fill(std::uint64_t addr, bool for_write) {
  ++clock_;
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  for (unsigned way = 0; way < config_.associativity; ++way) {
    Line& line = lines_[set * config_.associativity + way];
    if (line.valid && line.tag == tag) {
      ++stats_.hits;
      ++stats_.cycles;  // hit: one cycle
      if (line.prefetched) {
        ++stats_.prefetch_hits;
        line.prefetched = false;  // count the first demand hit only
      }
      line.lru = clock_;
      return &line;
    }
  }
  ++stats_.misses;
  if (for_write && !config_.write_back) {
    return nullptr;  // write-through + no-allocate: go straight to memory
  }
  Line& line = victim(set);
  if (line.valid) {
    ++stats_.evictions;
    write_back_line(line, set);
  }
  fill_line(line, addr, /*prefetched=*/false);

  // Sequential prefetch: pull the next line(s) into their own sets if absent.
  for (unsigned p = 1; p <= config_.prefetch_lines; ++p) {
    const std::uint64_t next = addr + static_cast<std::uint64_t>(p) * config_.line_bytes;
    const std::size_t next_set = set_index(next);
    const std::uint64_t next_tag = tag_of(next);
    bool present = false;
    for (unsigned way = 0; way < config_.associativity; ++way) {
      Line& cand = lines_[next_set * config_.associativity + way];
      if (cand.valid && cand.tag == next_tag) {
        present = true;
        break;
      }
    }
    if (present) continue;
    Line& pline = victim(next_set);
    if (pline.valid) {
      ++stats_.evictions;
      write_back_line(pline, next_set);
    }
    fill_line(pline, next, /*prefetched=*/true);
  }
  return &line;
}

std::uint64_t AxiCache::read_word(std::uint64_t addr, unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  ++stats_.reads;
  Line* line = lookup_fill(addr, /*for_write=*/false);
  assert(line != nullptr);
  const std::size_t offset = addr % config_.line_bytes;
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bytes && offset + i < config_.line_bytes; ++i) {
    value |= static_cast<std::uint64_t>(line->data[offset + i]) << (8 * i);
  }
  return value;
}

void AxiCache::write_word(std::uint64_t addr, std::uint64_t value,
                          unsigned bytes) {
  assert(bytes >= 1 && bytes <= 8);
  ++stats_.writes;
  Line* line = lookup_fill(addr, /*for_write=*/true);
  if (!line) {
    // Write-through miss without allocation.
    const std::uint64_t before = master_.stats().cycles;
    if (!master_.write_word(addr, value, bytes).ok()) ++stats_.bus_errors;
    stats_.cycles += master_.stats().cycles - before;
    return;
  }
  const std::size_t offset = addr % config_.line_bytes;
  for (unsigned i = 0; i < bytes && offset + i < config_.line_bytes; ++i) {
    line->data[offset + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  if (config_.write_back) {
    line->dirty = true;
  } else {
    const std::uint64_t before = master_.stats().cycles;
    if (!master_.write_word(addr, value, bytes).ok()) ++stats_.bus_errors;
    stats_.cycles += master_.stats().cycles - before;
  }
}

void AxiCache::flush() {
  for (std::size_t set = 0; set < num_sets_; ++set) {
    for (unsigned way = 0; way < config_.associativity; ++way) {
      write_back_line(lines_[set * config_.associativity + way], set);
    }
  }
}

void AxiCache::invalidate() {
  for (Line& line : lines_) {
    line.valid = false;
    line.dirty = false;
  }
}

}  // namespace hermes::axi
