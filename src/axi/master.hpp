// AXI4 master engine.
//
// Executes byte-range transfers against an AxiSlaveMemory by issuing legal
// bursts (via split_transfer), driving them beat-by-beat, and accounting for
// every stall cycle — the master half of the interface pair Bambu generates
// for HLS accelerators ("the user [can] automatically generate the necessary
// AXI4 master interfaces and modules controlling the AXI signals, with no
// protocol knowledge required").
//
// Every transfer is Status-returning and hang-proof: a transaction watchdog
// bounds all handshake waits (starvation becomes kDeadlineExceeded and the
// bus is reset), SLVERR responses are retried with backoff — legal because
// this master's bursts are idempotent (reads, and writes that restate the
// same data) — and DECERR is surfaced immediately as a decode error.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "axi/checker.hpp"
#include "axi/slave_memory.hpp"
#include "common/status.hpp"
#include "fdir/event.hpp"

namespace hermes::axi {

struct MasterConfig {
  /// Per-burst cycle budget covering every handshake wait. A trip resets the
  /// bus (slave aborts in-flight transactions) and fails the transfer with
  /// kDeadlineExceeded.
  std::uint64_t watchdog_cycles = 100'000;
  /// Retries per burst on SLVERR (transient slave failures). DECERR — a
  /// decode error, permanent by construction — is never retried.
  unsigned max_retries = 3;
  /// Idle cycles before retry `n` (doubles each attempt).
  std::uint64_t retry_backoff_cycles = 8;
};

struct MasterStats {
  std::uint64_t cycles = 0;         ///< bus cycles consumed by this master
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bursts = 0;
  std::uint64_t beats = 0;
  std::uint64_t stall_cycles = 0;   ///< cycles waiting on AR/AW ready or R/B valid
  std::uint64_t errors = 0;         ///< non-OKAY responses observed
  std::uint64_t retries = 0;        ///< bursts re-issued after SLVERR
  std::uint64_t watchdog_trips = 0; ///< transactions abandoned by the watchdog
};

class AxiMaster {
 public:
  explicit AxiMaster(AxiSlaveMemory& slave, MasterConfig config = {})
      : slave_(slave), config_(config) {}

  /// Burst read of [addr, addr+out.size()): issues INCR bursts and ticks the
  /// bus until all data arrived, an error response survives the retry
  /// budget, or the watchdog trips. Handles unaligned start/end.
  Status read(std::uint64_t addr, std::span<std::uint8_t> out);

  /// Burst write (unaligned edges use narrow strobes).
  Status write(std::uint64_t addr, std::span<const std::uint8_t> data);

  /// Single-beat read/write of up to 8 bytes (models per-access master mode
  /// without caching/prefetching; one transaction per access).
  Result<std::uint64_t> read_word(std::uint64_t addr, unsigned bytes);
  Status write_word(std::uint64_t addr, std::uint64_t value, unsigned bytes);

  [[nodiscard]] const MasterStats& stats() const { return stats_; }
  [[nodiscard]] const MasterConfig& config() const { return config_; }
  void reset_stats() { stats_ = {}; }

  /// Attaches a passive protocol monitor; every channel event this master
  /// produces is mirrored into it (retried bursts appear once per attempt).
  void attach_checker(AxiChecker* checker) { checker_ = checker; }

  /// Publishes this master's recovery-ladder outcomes as FDIR events
  /// (kRetried per SLVERR re-issue, kUncorrectable for watchdog trips and
  /// DECERR, kExhausted when the retry budget runs out), stamped with the
  /// master's cycle counter. Pass nullptr to detach.
  void attach_fdir(fdir::FdirBus* bus) { fdir_ = bus; }

 private:
  void tick() {
    slave_.tick();
    ++stats_.cycles;
  }

  /// Watchdog trip: count it, reset the bus, report the starved channel.
  Status trip_watchdog(const char* channel, const AddrBeat& burst);
  /// Maps the worst response of a finished burst to a Status.
  Status decode_resp(Resp resp, const AddrBeat& burst) const;
  /// Idle backoff before retry attempt `attempt` (0-based).
  void backoff(unsigned attempt);

  /// One failed burst attempt: publish the FDIR event matching where the
  /// ladder goes next (retry, or give up and with what verdict).
  void note_burst_failure(const Status& status, bool will_retry);

  Status read_burst_once(const AddrBeat& ar, std::uint64_t addr,
                         std::span<std::uint8_t> out);
  Status write_burst_once(const AddrBeat& aw,
                          const std::vector<WriteBeat>& beats);

  AxiSlaveMemory& slave_;
  MasterConfig config_;
  MasterStats stats_;
  AxiChecker* checker_ = nullptr;
  fdir::FdirBus* fdir_ = nullptr;
};

}  // namespace hermes::axi
