// AXI4 master engine.
//
// Executes byte-range transfers against an AxiSlaveMemory by issuing legal
// bursts (via split_transfer), driving them beat-by-beat, and accounting for
// every stall cycle — the master half of the interface pair Bambu generates
// for HLS accelerators ("the user [can] automatically generate the necessary
// AXI4 master interfaces and modules controlling the AXI signals, with no
// protocol knowledge required").
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "axi/checker.hpp"
#include "axi/slave_memory.hpp"

namespace hermes::axi {

struct MasterStats {
  std::uint64_t cycles = 0;         ///< bus cycles consumed by this master
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bursts = 0;
  std::uint64_t beats = 0;
  std::uint64_t stall_cycles = 0;   ///< cycles waiting on AR/AW ready or R/B valid
};

class AxiMaster {
 public:
  explicit AxiMaster(AxiSlaveMemory& slave) : slave_(slave) {}

  /// Blocking burst read of [addr, addr+out.size()): issues INCR bursts and
  /// ticks the bus until all data arrived. Handles unaligned start/end.
  void read(std::uint64_t addr, std::span<std::uint8_t> out);

  /// Blocking burst write (unaligned edges use narrow strobes).
  void write(std::uint64_t addr, std::span<const std::uint8_t> data);

  /// Single-beat read/write of up to 8 bytes (models per-access master mode
  /// without caching/prefetching; one transaction per access).
  std::uint64_t read_word(std::uint64_t addr, unsigned bytes);
  void write_word(std::uint64_t addr, std::uint64_t value, unsigned bytes);

  [[nodiscard]] const MasterStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Attaches a passive protocol monitor; every channel event this master
  /// produces is mirrored into it.
  void attach_checker(AxiChecker* checker) { checker_ = checker; }

 private:
  void tick() {
    slave_.tick();
    ++stats_.cycles;
  }

  AxiSlaveMemory& slave_;
  MasterStats stats_;
  AxiChecker* checker_ = nullptr;
};

}  // namespace hermes::axi
