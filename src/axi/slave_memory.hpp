// AXI4 slave memory model with configurable delay.
//
// "Memory delay estimates can also be configured to assess the performance of
// the application considering also data transfers" (HERMES, Sec. II). The
// model charges a base latency per transaction (row activation / arbitration)
// plus one cycle per beat (or more, for slow memories), which is what makes
// burst transfers win over repeated single-beat accesses in the AXI
// benchmark.
//
// The slave is also the producer half of the error-response path: accesses
// outside the backing store answer DECERR (configurable for legacy traffic),
// and an attached fault::FaultInjector can stall handshakes, corrupt read
// data, or force SLVERR responses to exercise the master's recovery code.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "axi/protocol.hpp"
#include "fault/injector.hpp"

namespace hermes::axi {

struct MemoryTiming {
  unsigned read_latency = 8;   ///< cycles from AR accept to first R beat
  unsigned write_latency = 6;  ///< cycles from last W beat to B response
  unsigned cycles_per_beat = 1;
  unsigned max_outstanding = 4;
  /// Out-of-range beats answer DECERR (AXI default-slave behaviour). Set to
  /// false for the legacy model: reads return 0, writes are dropped, OKAY.
  bool oob_decerr = true;
};

/// Cycle-driven AXI4 slave backed by a byte array. Requests are enqueued via
/// the channel methods; tick() advances one bus clock; responses pop out of
/// the R / B queues when ready.
class AxiSlaveMemory {
 public:
  AxiSlaveMemory(std::size_t bytes, MemoryTiming timing);

  /// Registers this slave's injection points ("axi.*") on `injector`.
  /// Pass nullptr to detach.
  void attach_injector(fault::FaultInjector* injector);

  // ---- backing-store backdoor (testbench / DMA preload) ----
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] std::uint8_t peek(std::uint64_t addr) const;
  void poke(std::uint64_t addr, std::uint8_t value);
  std::uint64_t peek_word(std::uint64_t addr, unsigned bytes) const;
  void poke_word(std::uint64_t addr, std::uint64_t value, unsigned bytes);

  // ---- AXI channels ----
  /// AR channel: returns false (not ready) when too many reads in flight.
  bool push_read(const AddrBeat& ar);
  /// AW+W channels: the full write burst is presented at once; returns false
  /// when the write queue is full.
  bool push_write(const AddrBeat& aw, const std::vector<WriteBeat>& beats);

  /// R channel: pops the next ready read beat, if any.
  bool pop_read_beat(ReadBeat& out);
  /// B channel: pops a ready write response, if any.
  bool pop_write_resp(Resp& out, unsigned& id);

  /// Drops every in-flight transaction (the bus-reset a master performs
  /// after its transaction watchdog trips, so stale beats from an abandoned
  /// burst can never leak into the next transfer).
  void abort_pending();

  /// One bus clock.
  void tick();

  [[nodiscard]] std::uint64_t cycles() const { return now_; }
  [[nodiscard]] std::uint64_t total_read_beats() const { return read_beats_; }
  [[nodiscard]] std::uint64_t total_write_beats() const { return write_beats_; }

 private:
  struct PendingRead {
    AddrBeat ar;
    std::uint64_t ready_at;  ///< cycle of first beat availability
    unsigned next_beat = 0;
    std::uint64_t next_beat_at = 0;
  };
  struct PendingWrite {
    AddrBeat aw;
    std::vector<WriteBeat> beats;
    std::uint64_t resp_at;
  };

  std::vector<std::uint8_t> store_;
  MemoryTiming timing_;
  std::uint64_t now_ = 0;
  std::deque<PendingRead> reads_;
  std::deque<PendingWrite> writes_;
  std::uint64_t read_beats_ = 0, write_beats_ = 0;

  fault::FaultInjector* injector_ = nullptr;
  fault::PointId pt_ar_stall_ = fault::kNoFaultPoint;
  fault::PointId pt_aw_stall_ = fault::kNoFaultPoint;
  fault::PointId pt_r_stall_ = fault::kNoFaultPoint;
  fault::PointId pt_r_corrupt_ = fault::kNoFaultPoint;
  fault::PointId pt_r_slverr_ = fault::kNoFaultPoint;
  fault::PointId pt_b_slverr_ = fault::kNoFaultPoint;
};

}  // namespace hermes::axi
