#include "axi/protocol.hpp"

#include <algorithm>

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::axi {

const char* to_string(Burst burst) {
  switch (burst) {
    case Burst::kFixed: return "FIXED";
    case Burst::kIncr: return "INCR";
    case Burst::kWrap: return "WRAP";
  }
  return "?";
}

const char* to_string(Resp resp) {
  switch (resp) {
    case Resp::kOkay: return "OKAY";
    case Resp::kExOkay: return "EXOKAY";
    case Resp::kSlvErr: return "SLVERR";
    case Resp::kDecErr: return "DECERR";
  }
  return "?";
}

std::uint64_t beat_address(const AddrBeat& ab, unsigned beat) {
  const std::uint64_t bytes = 1ULL << ab.size_log2;
  switch (ab.burst) {
    case Burst::kFixed:
      return ab.addr;
    case Burst::kIncr:
      return (ab.addr & ~(bytes - 1)) + static_cast<std::uint64_t>(beat) * bytes;
    case Burst::kWrap: {
      const std::uint64_t container = bytes * (ab.len + 1);
      const std::uint64_t base = ab.addr & ~(container - 1);
      const std::uint64_t offset =
          ((ab.addr & ~(bytes - 1)) - base + static_cast<std::uint64_t>(beat) * bytes) %
          container;
      return base + offset;
    }
  }
  return ab.addr;
}

Status validate_burst(const AddrBeat& ab) {
  const unsigned beats = ab.len + 1;
  if (ab.size_log2 > 3) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "AxSIZE above 8 bytes not supported by this bus");
  }
  switch (ab.burst) {
    case Burst::kFixed:
      if (beats > 16) {
        return Status::Error(ErrorCode::kInvalidArgument,
                             "FIXED bursts are limited to 16 beats");
      }
      break;
    case Burst::kIncr: {
      if (beats > kMaxBurstLen) {
        return Status::Error(ErrorCode::kInvalidArgument,
                             "INCR bursts are limited to 256 beats");
      }
      const std::uint64_t bytes = 1ULL << ab.size_log2;
      const std::uint64_t first = ab.addr & ~(bytes - 1);
      const std::uint64_t last = first + (beats - 1ULL) * bytes;
      if (first / k4KBoundary != last / k4KBoundary) {
        return Status::Error(
            ErrorCode::kInvalidArgument,
            format("INCR burst crosses a 4KB boundary (0x%llx + %u beats)",
                   static_cast<unsigned long long>(ab.addr), beats));
      }
      break;
    }
    case Burst::kWrap:
      if (beats != 2 && beats != 4 && beats != 8 && beats != 16) {
        return Status::Error(ErrorCode::kInvalidArgument,
                             "WRAP bursts must be 2/4/8/16 beats");
      }
      if (ab.addr & ((1ULL << ab.size_log2) - 1)) {
        return Status::Error(ErrorCode::kInvalidArgument,
                             "WRAP bursts must be aligned to the beat size");
      }
      break;
  }
  return Status::Ok();
}

std::vector<AddrBeat> split_transfer(std::uint64_t addr, std::uint64_t bytes,
                                     unsigned size_log2, unsigned max_len) {
  std::vector<AddrBeat> bursts;
  if (bytes == 0) return bursts;
  const std::uint64_t beat_bytes = 1ULL << size_log2;
  // Work in aligned beat space: cover [addr, addr+bytes) with whole beats.
  std::uint64_t first_beat = addr / beat_bytes;
  const std::uint64_t last_beat = (addr + bytes - 1) / beat_bytes;

  while (first_beat <= last_beat) {
    const std::uint64_t start_addr = first_beat * beat_bytes;
    // Beats available before the next 4KB boundary.
    const std::uint64_t boundary =
        (start_addr / k4KBoundary + 1) * k4KBoundary;
    const std::uint64_t beats_to_boundary = (boundary - start_addr) / beat_bytes;
    std::uint64_t beats = std::min<std::uint64_t>(
        {last_beat - first_beat + 1, beats_to_boundary, max_len});
    AddrBeat ab;
    ab.addr = start_addr;
    ab.len = static_cast<unsigned>(beats - 1);
    ab.size_log2 = size_log2;
    ab.burst = Burst::kIncr;
    bursts.push_back(ab);
    first_beat += beats;
  }
  return bursts;
}

}  // namespace hermes::axi
