// AXI4 protocol checker.
//
// A passive monitor over the five channels that enforces the AMBA rules a
// bus assertion IP would: burst legality at the address channels, WLAST
// placement, beat counts, responses only for outstanding transactions, and
// in-order data per ID. The generated-interface story of the paper ("data
// exchange can be simulated to verify its correctness") includes exactly
// this kind of checking on the simulated bus.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "axi/protocol.hpp"

namespace hermes::axi {

class AxiChecker {
 public:
  // ---- channel events (call in bus order) ----
  void on_ar(const AddrBeat& ar);
  void on_r(const ReadBeat& beat);
  void on_aw(const AddrBeat& aw);
  void on_w(const WriteBeat& beat);
  void on_b(Resp resp, unsigned id);

  [[nodiscard]] const std::vector<std::string>& violations() const {
    return violations_;
  }
  [[nodiscard]] bool clean() const { return violations_.empty(); }
  /// Outstanding transactions that never completed (call at end of test).
  [[nodiscard]] std::size_t dangling() const;

 private:
  void violation(std::string message) {
    violations_.push_back(std::move(message));
  }

  struct ReadTxn {
    AddrBeat ar;
    unsigned beats_seen = 0;
  };
  struct WriteTxn {
    AddrBeat aw;
    unsigned beats_seen = 0;
    bool last_seen = false;
  };

  std::map<unsigned, std::vector<ReadTxn>> reads_;  ///< per ID, in order
  std::vector<WriteTxn> writes_;                    ///< single write stream
  std::vector<std::string> violations_;
};

}  // namespace hermes::axi
