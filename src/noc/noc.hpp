// Fault-contained multi-accelerator interconnect.
//
// HERMES qualifies the NG-ULTRA as an SoC where hypervisor partitions and
// many concurrently-programmed eFPGA accelerators share one fabric. This
// module models that fabric as a deterministic cycle-stepped crossbar:
// source ports (one per partition-facing initiator) carry batched command
// beats to accelerator endpoints, responses flow back, and the transport
// itself is a mitigation layer in the FDIR sense — faults on the fabric are
// detected, attributed to a containment domain, isolated, and recovered
// without disturbing other domains' traffic.
//
// Transport mechanics:
//   * bounded per-port virtual-channel queues, one VC per destination
//     endpoint, so one congested/broken endpoint cannot head-of-line-block a
//     port's traffic to healthy endpoints at the arbitration stage;
//   * credit-based flow control, source-authoritative: a beat may only be
//     granted while the source holds a credit for the (port, endpoint) pair;
//     credits return with the response (or are reclaimed on timeout), and a
//     per-cycle credit audit restores leaked credits — a leak is detected
//     and counted, never a silent livelock;
//   * deterministic QoS arbitration: strict priority classes, weighted
//     round-robin inside a class, and a starvation watchdog that promotes a
//     head beat stuck beyond the threshold so low-priority ports always make
//     progress;
//   * every bounded wait is a deadline: outstanding beats carry a timeout
//     (kDeadlineExceeded), retried up to a budget with the shared
//     exponential-backoff ladder (common/backoff.hpp), mirroring the AXI
//     master's ladder one layer down.
//
// Containment domains: every endpoint belongs to a domain. An endpoint fault
// (wedge, dropped or corrupted beat, credit leak) is detected by CRC checks,
// timeouts, the credit audit, or the per-endpoint progress watchdog, and
// published as a typed FdirEvent on Layer::kNoc with the domain in `detail`.
// Quarantining a domain drains its queues (every affected beat fails with a
// clean Status and its credit returns), rejects new traffic, and leaves all
// other domains' per-pair result digests untouched — the containment
// property the tests enforce. Re-admission (after FDIR rollback) resets the
// domain's endpoints and credits.
//
// Determinism contract: a run is a pure function of (fabric config, bound
// workloads, fault plan + seed). All per-cycle iteration is in fixed index
// order and injector opportunities are presented at fixed points, so a
// replayed seed is bit-identical — the chaos soak fingerprints whole runs.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "fault/injector.hpp"
#include "fdir/event.hpp"
#include "hv/types.hpp"

namespace hermes::noc {

/// Fabric-wide knobs. Every wait is bounded; every bound is observable.
struct FabricConfig {
  /// Source-side deadline for an outstanding beat (grant -> response).
  std::uint64_t beat_timeout_cycles = 512;
  /// Re-injections allowed per beat after a timeout or NAK.
  unsigned max_retries = 3;
  /// Base of the shared exponential backoff ladder between re-injections.
  std::uint64_t retry_backoff_cycles = 8;
  /// Head-beat age at which the arbiter promotes a starved candidate past
  /// the priority classes (starvation watchdog).
  std::uint64_t starvation_watchdog_cycles = 128;
  /// Endpoint no-progress bound (input pending, nothing consumed) before the
  /// deadlock watchdog declares the endpoint wedged.
  std::uint64_t progress_watchdog_cycles = 192;
  /// Whole-run deadline: run() returns kDeadlineExceeded instead of hanging.
  std::uint64_t run_deadline_cycles = 4'000'000;
  /// Quarantine the domain locally when the progress watchdog trips. Turn
  /// off to let the FDIR policy engine drive quarantine from the events.
  bool quarantine_on_watchdog = true;
  /// When >= 0, injector opportunities are only presented for endpoints (and
  /// beats to endpoints) of this domain — the knob the containment property
  /// test uses to confine a fault to one domain.
  int fault_domain_filter = -1;
};

/// One partition-facing initiator port.
struct PortConfig {
  std::string name;
  unsigned priority = 1;  ///< arbitration class; lower value wins
  unsigned weight = 1;    ///< weighted-round-robin share within the class
  std::size_t vc_depth = 8;  ///< bounded per-endpoint VC queue depth
  /// Partition this port belongs to; a suspended partition's ports are
  /// masked by the FDIR supervisor (hv/ partition-mapped ports).
  hv::PartitionId owner = hv::kNoPartition;
};

/// One accelerator endpoint.
struct EndpointConfig {
  std::string name;
  unsigned domain = 0;             ///< containment domain
  std::uint64_t service_cycles = 4;  ///< per command beat (min 1)
  std::size_t input_depth = 4;     ///< bounded input queue
  unsigned credits = 4;            ///< per-port credits toward this endpoint
};

/// One command beat a workload wants carried. Port binding is implicit in
/// bind_workload(); seq numbers are assigned per (port, endpoint) stream.
struct BeatRequest {
  std::uint64_t release_cycle = 0;
  std::uint32_t endpoint = 0;
  std::uint64_t payload = 0;
};

struct PortStats {
  std::uint64_t injected = 0;    ///< requests accepted into a VC queue
  std::uint64_t granted = 0;     ///< beats the arbiter moved onto the fabric
  std::uint64_t completed = 0;   ///< responses verified end-to-end
  std::uint64_t retries = 0;     ///< re-injections (timeout or NAK)
  std::uint64_t failed = 0;      ///< retry budget exhausted or drained
  std::uint64_t timeouts = 0;    ///< outstanding-beat deadline expiries
  std::uint64_t naks = 0;        ///< endpoint CRC rejections received
  std::uint64_t stale_responses = 0;  ///< responses for abandoned beats
  std::uint64_t starvation_promotions = 0;
  std::uint64_t rejected_masked = 0;       ///< port masked (partition suspended)
  std::uint64_t rejected_quarantined = 0;  ///< target domain quarantined
  std::uint64_t latency_sum = 0;  ///< release -> completion, completed beats
};

struct EndpointStats {
  std::uint64_t consumed = 0;      ///< beats popped from the input queue
  std::uint64_t responses = 0;
  std::uint64_t crc_rejected = 0;  ///< corrupt beats caught at the endpoint
  std::uint64_t wedges = 0;
  std::uint64_t watchdog_trips = 0;
};

struct DomainStats {
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeouts = 0;            ///< dropped/withheld beats detected
  std::uint64_t corrupt_detected = 0;    ///< CRC catches (never silent)
  std::uint64_t credit_leaks_recovered = 0;
  std::uint64_t arb_stalls = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t readmissions = 0;
  std::uint64_t drained = 0;  ///< beats failed by a quarantine drain
};

/// Outcome of one run: the status, the canonical per-domain digests (value
/// content in per-stream seq order — independent of completion timing, so
/// cross-domain contention shifts never move them), and the full counters.
struct FabricResult {
  Status status;  ///< kDeadlineExceeded when the run bound was hit
  std::uint64_t cycles = 0;
  /// Responses whose payload did not match the expected endpoint transform
  /// yet carried a valid CRC. Must stay zero: the robustness contract is
  /// detected-or-clean, never silent corruption.
  std::uint64_t silent = 0;
  std::vector<std::uint64_t> domain_digest;
  std::vector<DomainStats> domains;
  std::vector<PortStats> ports;
  std::vector<EndpointStats> endpoints;

  /// FNV-1a over status, digests and every counter — the run-twice witness.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// The deterministic accelerator transform commands are verified against:
/// the source computes the expected response at request time, so any silent
/// payload corruption surfaces as a mismatch at completion.
constexpr std::uint64_t respond(std::uint32_t endpoint, std::uint64_t payload) {
  std::uint64_t z = payload ^ (0x9E3779B97F4A7C15ULL * (endpoint + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The noc.* injection points this fabric registers (subset of
/// fault::default_point_catalog()).
std::span<const std::string_view> noc_point_catalog();

class Crossbar {
 public:
  Crossbar(FabricConfig config, std::vector<PortConfig> ports,
           std::vector<EndpointConfig> endpoints);

  /// Registers the noc.* points ("noc.arb.stall", "noc.beat.drop",
  /// "noc.beat.corrupt", "noc.credit.leak", "noc.endpoint.wedge").
  void attach_injector(fault::FaultInjector* injector);

  /// Publishes detections on Layer::kNoc: retries as kRetried, recovered
  /// credit leaks as kCorrected, starvation promotions as kInfo, exhausted
  /// beat budgets as kExhausted, progress-watchdog trips as kUncorrectable —
  /// all stamped with the fabric cycle and carrying the containment domain
  /// in `detail`, so the policy engine can quarantine by domain.
  void attach_fdir(fdir::FdirBus* bus) { fdir_ = bus; }

  /// Appends a command stream to `port`. Requests must be sorted by
  /// release_cycle (workload generators emit them that way).
  void bind_workload(std::uint32_t port, std::vector<BeatRequest> beats);

  /// Drives the fabric until every bound request resolved (completed or
  /// cleanly failed) or the run deadline expired. Consumes the bound
  /// workloads; quarantine/wedge/mask state persists across runs (it is
  /// hardware lifecycle state, managed by the FDIR layer).
  FabricResult run();

  // ---- containment controls (driven locally by the progress watchdog or
  // ---- externally by the FDIR supervisor) ----
  void quarantine_domain(unsigned domain);
  void quarantine_all();
  /// Resets the domain's endpoints (wedge cleared, queues empty, credits
  /// restored) and re-admits its traffic. Returns true if it was quarantined.
  bool readmit_domain(unsigned domain);
  /// Re-admits every quarantined domain; returns how many were re-admitted.
  unsigned readmit_all();
  [[nodiscard]] bool domain_quarantined(unsigned domain) const;

  /// Masks every port owned by `partition`: pending and future requests on
  /// those ports fail cleanly (the FDIR supervisor calls this when it
  /// suspends a partition). unmask_partition reverses it.
  void mask_partition(hv::PartitionId partition);
  void unmask_partition(hv::PartitionId partition);

  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }
  [[nodiscard]] std::size_t num_endpoints() const { return endpoints_.size(); }
  [[nodiscard]] unsigned num_domains() const { return num_domains_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

 private:
  struct VcEntry {
    std::uint32_t seq = 0;
    unsigned attempt = 0;
    std::uint64_t payload = 0;
    std::uint32_t crc = 0;
    std::uint64_t release_cycle = 0;  ///< workload release (latency base)
    std::uint64_t enqueued_at = 0;    ///< VC arrival (starvation base)
    std::uint64_t eligible_at = 0;    ///< backoff gate for retries
  };
  struct Outstanding {
    std::uint32_t seq = 0;
    unsigned attempt = 0;
    std::uint64_t payload = 0;
    std::uint64_t release_cycle = 0;
    std::uint64_t sent_at = 0;
  };
  struct DeliveredBeat {
    std::uint32_t port = 0;
    std::uint32_t seq = 0;
    unsigned attempt = 0;
    std::uint64_t payload = 0;
    std::uint32_t crc = 0;
  };
  struct PortState {
    PortConfig config;
    bool masked = false;
    std::vector<BeatRequest> work;
    std::size_t next_request = 0;
    std::vector<std::deque<VcEntry>> vc;           ///< one VC per endpoint
    std::vector<std::deque<Outstanding>> outstanding;  ///< per endpoint
    std::vector<std::uint32_t> next_seq;           ///< per endpoint stream
    std::vector<std::uint64_t> pair_digest;        ///< per endpoint stream
    PortStats stats;
  };
  struct EndpointState {
    EndpointConfig config;
    bool quarantined = false;
    bool wedged = false;
    bool watchdog_tripped = false;
    std::deque<DeliveredBeat> input;
    bool busy = false;
    DeliveredBeat current;
    std::uint64_t busy_until = 0;
    std::uint64_t last_progress = 0;
    std::size_t wrr_pos = 0;       ///< round-robin pointer (port index)
    unsigned wrr_left = 0;         ///< grants left for wrr_pos in this turn
    EndpointStats stats;
  };

  [[nodiscard]] bool domain_faultable(unsigned domain) const {
    return config_.fault_domain_filter < 0 ||
           static_cast<unsigned>(config_.fault_domain_filter) == domain;
  }
  void publish(fdir::Severity severity, ErrorCode code, unsigned domain);
  /// Fails one source-side beat record (clean Status, counters, resolve).
  void fail_beat(PortState& port, std::size_t endpoint, unsigned attempt);
  /// Timeout/NAK ladder: re-enqueue with backoff or fail on budget.
  void retry_or_fail(PortState& port, std::size_t endpoint, Outstanding beat,
                     ErrorCode code);
  void return_credit(std::size_t port, std::size_t endpoint);
  void step_inject();
  void step_credit_audit();
  void step_timeouts();
  void step_arbitrate();
  void step_endpoints();
  void step_watchdogs();
  void deliver_response(std::size_t endpoint, const DeliveredBeat& beat,
                        bool nak);

  FabricConfig config_;
  std::vector<PortState> ports_;
  std::vector<EndpointState> endpoints_;
  std::vector<unsigned> credits_;  ///< [port * num_endpoints + endpoint]
  unsigned num_domains_ = 1;
  std::vector<DomainStats> domains_;
  std::uint64_t now_ = 0;
  std::uint64_t silent_ = 0;
  std::uint64_t resolved_ = 0;
  std::uint64_t total_requests_ = 0;

  fault::FaultInjector* injector_ = nullptr;
  fdir::FdirBus* fdir_ = nullptr;
  fault::PointId pt_arb_stall_ = fault::kNoFaultPoint;
  fault::PointId pt_beat_drop_ = fault::kNoFaultPoint;
  fault::PointId pt_beat_corrupt_ = fault::kNoFaultPoint;
  fault::PointId pt_credit_leak_ = fault::kNoFaultPoint;
  fault::PointId pt_endpoint_wedge_ = fault::kNoFaultPoint;
};

}  // namespace hermes::noc
