#include "noc/noc.hpp"

#include <algorithm>
#include <cassert>

#include "common/backoff.hpp"
#include "common/strings.hpp"

namespace hermes::noc {
namespace {

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ULL;
}
constexpr std::uint64_t kFnvBasis = 14695981039346656037ULL;

/// Per-beat CRC carried across the fabric: covers the routing tuple and the
/// payload, so an in-flight payload flip is always detected at the endpoint.
std::uint32_t beat_crc(std::uint32_t port, std::uint32_t endpoint,
                       std::uint32_t seq, std::uint64_t payload) {
  std::uint64_t hash = kFnvBasis;
  hash = fnv_mix(hash, port);
  hash = fnv_mix(hash, endpoint);
  hash = fnv_mix(hash, seq);
  hash = fnv_mix(hash, payload);
  return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

constexpr std::string_view kNocPoints[] = {
    "noc.arb.stall",       // arbiter withholds every grant to one endpoint
    "noc.beat.drop",       // granted beat vanishes between port and endpoint
    "noc.beat.corrupt",    // granted beat's payload flipped in flight
    "noc.credit.leak",     // a returning credit is lost on the fabric
    "noc.endpoint.wedge",  // endpoint stops consuming until re-admitted
};

}  // namespace

std::span<const std::string_view> noc_point_catalog() { return kNocPoints; }

std::uint64_t FabricResult::fingerprint() const {
  std::uint64_t hash = kFnvBasis;
  hash = fnv_mix(hash, static_cast<std::uint64_t>(status.code()));
  hash = fnv_mix(hash, cycles);
  hash = fnv_mix(hash, silent);
  for (const std::uint64_t digest : domain_digest) hash = fnv_mix(hash, digest);
  for (const DomainStats& d : domains) {
    hash = fnv_mix(hash, d.completed);
    hash = fnv_mix(hash, d.failed);
    hash = fnv_mix(hash, d.retries);
    hash = fnv_mix(hash, d.timeouts);
    hash = fnv_mix(hash, d.corrupt_detected);
    hash = fnv_mix(hash, d.credit_leaks_recovered);
    hash = fnv_mix(hash, d.arb_stalls);
    hash = fnv_mix(hash, d.quarantines);
    hash = fnv_mix(hash, d.readmissions);
    hash = fnv_mix(hash, d.drained);
  }
  for (const PortStats& p : ports) {
    hash = fnv_mix(hash, p.injected);
    hash = fnv_mix(hash, p.granted);
    hash = fnv_mix(hash, p.completed);
    hash = fnv_mix(hash, p.retries);
    hash = fnv_mix(hash, p.failed);
    hash = fnv_mix(hash, p.timeouts);
    hash = fnv_mix(hash, p.naks);
    hash = fnv_mix(hash, p.stale_responses);
    hash = fnv_mix(hash, p.starvation_promotions);
    hash = fnv_mix(hash, p.rejected_masked);
    hash = fnv_mix(hash, p.rejected_quarantined);
    hash = fnv_mix(hash, p.latency_sum);
  }
  for (const EndpointStats& e : endpoints) {
    hash = fnv_mix(hash, e.consumed);
    hash = fnv_mix(hash, e.responses);
    hash = fnv_mix(hash, e.crc_rejected);
    hash = fnv_mix(hash, e.wedges);
    hash = fnv_mix(hash, e.watchdog_trips);
  }
  return hash;
}

Crossbar::Crossbar(FabricConfig config, std::vector<PortConfig> ports,
                   std::vector<EndpointConfig> endpoints)
    : config_(config) {
  assert(!ports.empty() && !endpoints.empty());
  endpoints_.reserve(endpoints.size());
  for (EndpointConfig& endpoint : endpoints) {
    if (endpoint.service_cycles == 0) endpoint.service_cycles = 1;
    if (endpoint.credits == 0) endpoint.credits = 1;
    if (endpoint.input_depth == 0) endpoint.input_depth = 1;
    num_domains_ = std::max(num_domains_, endpoint.domain + 1);
    EndpointState state;
    state.config = std::move(endpoint);
    endpoints_.push_back(std::move(state));
  }
  ports_.reserve(ports.size());
  for (PortConfig& port : ports) {
    if (port.weight == 0) port.weight = 1;
    if (port.vc_depth == 0) port.vc_depth = 1;
    PortState state;
    state.config = std::move(port);
    state.vc.resize(endpoints_.size());
    state.outstanding.resize(endpoints_.size());
    state.next_seq.assign(endpoints_.size(), 0);
    state.pair_digest.assign(endpoints_.size(), kFnvBasis);
    ports_.push_back(std::move(state));
  }
  credits_.resize(ports_.size() * endpoints_.size());
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      credits_[p * endpoints_.size() + e] = endpoints_[e].config.credits;
    }
  }
  domains_.resize(num_domains_);
}

void Crossbar::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (!injector_) return;
  pt_arb_stall_ = injector_->register_point("noc.arb.stall");
  pt_beat_drop_ = injector_->register_point("noc.beat.drop");
  pt_beat_corrupt_ = injector_->register_point("noc.beat.corrupt");
  pt_credit_leak_ = injector_->register_point("noc.credit.leak");
  pt_endpoint_wedge_ = injector_->register_point("noc.endpoint.wedge");
}

void Crossbar::bind_workload(std::uint32_t port,
                             std::vector<BeatRequest> beats) {
  assert(port < ports_.size());
  PortState& state = ports_[port];
  total_requests_ += beats.size();
  if (state.work.empty()) {
    state.work = std::move(beats);
  } else {
    state.work.insert(state.work.end(), beats.begin(), beats.end());
    std::stable_sort(state.work.begin() + static_cast<std::ptrdiff_t>(
                                              state.next_request),
                     state.work.end(),
                     [](const BeatRequest& a, const BeatRequest& b) {
                       return a.release_cycle < b.release_cycle;
                     });
  }
}

void Crossbar::publish(fdir::Severity severity, ErrorCode code,
                       unsigned domain) {
  if (fdir_) {
    fdir_->publish({fdir::Layer::kNoc, severity, code, domain, now_});
  }
}

void Crossbar::fail_beat(PortState& port, std::size_t endpoint,
                         unsigned attempt) {
  (void)attempt;
  ++port.stats.failed;
  ++domains_[endpoints_[endpoint].config.domain].failed;
  ++resolved_;
}

void Crossbar::return_credit(std::size_t port, std::size_t endpoint) {
  const unsigned domain = endpoints_[endpoint].config.domain;
  // The returning credit is itself fabric traffic: the leak point gets one
  // opportunity to lose it. The per-cycle credit audit detects and restores
  // the loss (kCorrected) — a leak is a counted detection, never a livelock.
  if (injector_ && domain_faultable(domain) &&
      injector_->should_fire(pt_credit_leak_)) {
    return;
  }
  unsigned& credits = credits_[port * endpoints_.size() + endpoint];
  if (credits < endpoints_[endpoint].config.credits) ++credits;
}

void Crossbar::retry_or_fail(PortState& port, std::size_t endpoint,
                             Outstanding beat, ErrorCode code) {
  const unsigned domain = endpoints_[endpoint].config.domain;
  if (beat.attempt < config_.max_retries) {
    ++port.stats.retries;
    ++domains_[domain].retries;
    publish(fdir::Severity::kRetried, code, domain);
    // Re-injection goes to the *front* of the pair's VC so per-stream seq
    // order is preserved end to end (the canonical-digest argument relies on
    // it); the backoff gate keeps the head ineligible until the ladder says
    // retry, mirroring the AXI master one layer down.
    VcEntry entry;
    entry.seq = beat.seq;
    entry.attempt = beat.attempt + 1;
    entry.payload = beat.payload;
    entry.crc = beat_crc(static_cast<std::uint32_t>(&port - ports_.data()),
                         static_cast<std::uint32_t>(endpoint), beat.seq,
                         beat.payload);
    entry.release_cycle = beat.release_cycle;
    entry.enqueued_at = now_;
    entry.eligible_at =
        now_ + backoff_cycles(config_.retry_backoff_cycles, beat.attempt);
    port.vc[endpoint].push_front(std::move(entry));
    return;
  }
  publish(fdir::Severity::kExhausted, code, domain);
  fail_beat(port, endpoint, beat.attempt);
}

void Crossbar::step_inject() {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    PortState& port = ports_[p];
    while (port.next_request < port.work.size() &&
           port.work[port.next_request].release_cycle <= now_) {
      const BeatRequest& request = port.work[port.next_request];
      if (request.endpoint >= endpoints_.size()) {
        ++port.stats.failed;
        ++resolved_;
        ++port.next_request;
        continue;
      }
      const std::size_t e = request.endpoint;
      if (port.masked) {
        ++port.stats.rejected_masked;
        fail_beat(port, e, 0);
        ++port.next_request;
        continue;
      }
      if (endpoints_[e].quarantined) {
        ++port.stats.rejected_quarantined;
        fail_beat(port, e, 0);
        ++port.next_request;
        continue;
      }
      if (port.vc[e].size() >= port.config.vc_depth) {
        // Ingress stall: the bounded VC is full. Later releases on this port
        // wait too (ingress is in order), but *arbitration* head-of-line
        // blocking across endpoints cannot happen — each endpoint has its
        // own VC.
        break;
      }
      VcEntry entry;
      entry.seq = port.next_seq[e]++;
      entry.attempt = 0;
      entry.payload = request.payload;
      entry.crc = beat_crc(static_cast<std::uint32_t>(p),
                           static_cast<std::uint32_t>(e), entry.seq,
                           request.payload);
      entry.release_cycle = request.release_cycle;
      entry.enqueued_at = now_;
      entry.eligible_at = now_;
      port.vc[e].push_back(std::move(entry));
      ++port.stats.injected;
      ++port.next_request;
    }
  }
}

void Crossbar::step_credit_audit() {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      if (endpoints_[e].quarantined) continue;
      const unsigned expected = endpoints_[e].config.credits;
      unsigned& credits = credits_[p * endpoints_.size() + e];
      const unsigned held =
          credits + static_cast<unsigned>(ports_[p].outstanding[e].size());
      if (held < expected) {
        const unsigned missing = expected - held;
        credits += missing;
        const unsigned domain = endpoints_[e].config.domain;
        domains_[domain].credit_leaks_recovered += missing;
        publish(fdir::Severity::kCorrected, ErrorCode::kInternal, domain);
      }
    }
  }
}

void Crossbar::step_timeouts() {
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    PortState& port = ports_[p];
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      std::deque<Outstanding>& outstanding = port.outstanding[e];
      std::vector<Outstanding> expired;
      while (!outstanding.empty() &&
             outstanding.front().sent_at + config_.beat_timeout_cycles <=
                 now_) {
        expired.push_back(outstanding.front());
        outstanding.pop_front();
      }
      if (expired.empty()) continue;
      const unsigned domain = endpoints_[e].config.domain;
      for (const Outstanding& beat : expired) {
        (void)beat;
        // Source-side reclaim: the beat is abandoned, its credit comes home.
        unsigned& credits = credits_[p * endpoints_.size() + e];
        if (credits < endpoints_[e].config.credits) ++credits;
        ++port.stats.timeouts;
        ++domains_[domain].timeouts;
      }
      // Walk newest-first so the front-insertions leave the oldest beat at
      // the head — per-pair order stays seq order.
      for (auto it = expired.rbegin(); it != expired.rend(); ++it) {
        retry_or_fail(port, e, *it, ErrorCode::kDeadlineExceeded);
      }
    }
  }
}

void Crossbar::step_arbitrate() {
  const std::size_t num_ports = ports_.size();
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointState& endpoint = endpoints_[e];
    if (endpoint.quarantined) continue;
    if (endpoint.input.size() >= endpoint.config.input_depth) continue;

    // Candidate ports: head beat for this endpoint, past its backoff gate,
    // with a credit in hand.
    std::vector<std::size_t> candidates;
    for (std::size_t p = 0; p < num_ports; ++p) {
      const std::deque<VcEntry>& vc = ports_[p].vc[e];
      if (vc.empty() || vc.front().eligible_at > now_) continue;
      if (credits_[p * endpoints_.size() + e] == 0) continue;
      candidates.push_back(p);
    }
    if (candidates.empty()) continue;

    const unsigned domain = endpoint.config.domain;
    if (injector_ && domain_faultable(domain) &&
        injector_->should_fire(pt_arb_stall_)) {
      ++domains_[domain].arb_stalls;
      continue;
    }

    // Starvation watchdog: a head beat older than the threshold outranks
    // every priority class — bounded starvation by construction.
    std::size_t pick = SIZE_MAX;
    std::uint64_t oldest_age = 0;
    for (const std::size_t p : candidates) {
      const std::uint64_t age = now_ - ports_[p].vc[e].front().enqueued_at;
      if (age >= config_.starvation_watchdog_cycles && age > oldest_age) {
        oldest_age = age;
        pick = p;
      }
    }
    if (pick != SIZE_MAX) {
      ++ports_[pick].stats.starvation_promotions;
      publish(fdir::Severity::kInfo, ErrorCode::kDeadlineExceeded, domain);
    } else {
      unsigned best = ~0u;
      for (const std::size_t p : candidates) {
        best = std::min(best, ports_[p].config.priority);
      }
      // Weighted round-robin within the winning class: the current WRR
      // holder keeps the grant while it has weight tokens left, then the
      // pointer advances circularly to the next candidate of the class.
      const auto is_pick = [&](std::size_t p) {
        return std::find(candidates.begin(), candidates.end(), p) !=
                   candidates.end() &&
               ports_[p].config.priority == best;
      };
      if (endpoint.wrr_left > 0 && is_pick(endpoint.wrr_pos)) {
        pick = endpoint.wrr_pos;
        --endpoint.wrr_left;
      } else {
        for (std::size_t i = 1; i <= num_ports; ++i) {
          const std::size_t p = (endpoint.wrr_pos + i) % num_ports;
          if (is_pick(p)) {
            pick = p;
            endpoint.wrr_pos = p;
            endpoint.wrr_left = ports_[p].config.weight - 1;
            break;
          }
        }
      }
      if (pick == SIZE_MAX) continue;
    }

    PortState& port = ports_[pick];
    VcEntry entry = port.vc[e].front();
    port.vc[e].pop_front();
    --credits_[pick * endpoints_.size() + e];
    ++port.stats.granted;
    Outstanding outstanding;
    outstanding.seq = entry.seq;
    outstanding.attempt = entry.attempt;
    outstanding.payload = entry.payload;
    outstanding.release_cycle = entry.release_cycle;
    outstanding.sent_at = now_;
    port.outstanding[e].push_back(outstanding);

    // In-flight fault opportunities, in fixed order: drop, then corrupt.
    if (injector_ && domain_faultable(domain) &&
        injector_->should_fire(pt_beat_drop_)) {
      continue;  // the beat vanishes; the source timeout will notice
    }
    DeliveredBeat beat;
    beat.port = static_cast<std::uint32_t>(pick);
    beat.seq = entry.seq;
    beat.attempt = entry.attempt;
    beat.payload = entry.payload;
    beat.crc = entry.crc;
    if (injector_ && domain_faultable(domain) &&
        injector_->should_fire(pt_beat_corrupt_)) {
      beat.payload = injector_->mutate_word(pt_beat_corrupt_, beat.payload);
    }
    endpoint.input.push_back(std::move(beat));
  }
}

void Crossbar::deliver_response(std::size_t endpoint,
                                const DeliveredBeat& beat, bool nak) {
  PortState& port = ports_[beat.port];
  std::deque<Outstanding>& outstanding = port.outstanding[endpoint];
  auto it = std::find_if(outstanding.begin(), outstanding.end(),
                         [&](const Outstanding& o) {
                           return o.seq == beat.seq;
                         });
  if (it == outstanding.end() || it->attempt != beat.attempt) {
    // The source abandoned this beat (timeout) — the response is stale and
    // its credit already came home with the reclaim.
    ++port.stats.stale_responses;
    return;
  }
  const Outstanding record = *it;
  outstanding.erase(it);
  return_credit(beat.port, endpoint);
  const unsigned domain = endpoints_[endpoint].config.domain;
  if (nak) {
    ++port.stats.naks;
    ++domains_[domain].corrupt_detected;
    retry_or_fail(port, endpoint, record, ErrorCode::kIntegrityError);
    return;
  }
  const std::uint64_t expected =
      respond(static_cast<std::uint32_t>(endpoint), record.payload);
  if (beat.payload != expected) {
    // A response that passed every check yet carries the wrong value would
    // be silent corruption — the contract is that this never happens.
    ++silent_;
    fail_beat(port, endpoint, record.attempt);
    return;
  }
  ++port.stats.completed;
  ++domains_[domain].completed;
  port.stats.latency_sum += now_ - record.release_cycle;
  std::uint64_t& digest = port.pair_digest[endpoint];
  digest = fnv_mix(digest, record.seq);
  digest = fnv_mix(digest, beat.payload);
  ++resolved_;
}

void Crossbar::step_endpoints() {
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointState& endpoint = endpoints_[e];
    if (endpoint.quarantined) continue;
    const unsigned domain = endpoint.config.domain;

    // Service completion: the response (with the credit) heads home.
    if (endpoint.busy && now_ >= endpoint.busy_until) {
      endpoint.busy = false;
      ++endpoint.stats.responses;
      DeliveredBeat response = endpoint.current;
      response.payload = respond(static_cast<std::uint32_t>(e),
                                 endpoint.current.payload);
      deliver_response(e, response, /*nak=*/false);
    }

    // Consume the next command beat.
    if (!endpoint.busy && !endpoint.input.empty()) {
      if (!endpoint.wedged && injector_ && domain_faultable(domain) &&
          injector_->should_fire(pt_endpoint_wedge_)) {
        endpoint.wedged = true;
        ++endpoint.stats.wedges;
      }
      if (!endpoint.wedged) {
        DeliveredBeat beat = endpoint.input.front();
        endpoint.input.pop_front();
        ++endpoint.stats.consumed;
        endpoint.last_progress = now_;
        const std::uint32_t crc =
            beat_crc(beat.port, static_cast<std::uint32_t>(e), beat.seq,
                     beat.payload);
        if (crc != beat.crc) {
          // Corruption caught at the boundary: NAK immediately, never
          // compute on a bad beat.
          ++endpoint.stats.crc_rejected;
          deliver_response(e, beat, /*nak=*/true);
        } else {
          endpoint.busy = true;
          endpoint.current = beat;
          endpoint.busy_until = now_ + endpoint.config.service_cycles;
        }
      }
    }
    if (endpoint.input.empty() && !endpoint.busy) {
      endpoint.last_progress = now_;  // idle is progress, not a wedge
    }
  }
}

void Crossbar::step_watchdogs() {
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointState& endpoint = endpoints_[e];
    if (endpoint.quarantined || endpoint.watchdog_tripped) continue;
    if (endpoint.input.empty()) continue;
    if (now_ - endpoint.last_progress < config_.progress_watchdog_cycles) {
      continue;
    }
    // Deadlock/wedge detected: beats are waiting and nothing has moved for
    // the whole watchdog window. One trip per episode (re-armed at readmit).
    endpoint.watchdog_tripped = true;
    ++endpoint.stats.watchdog_trips;
    const unsigned domain = endpoint.config.domain;
    publish(fdir::Severity::kUncorrectable, ErrorCode::kDeadlineExceeded,
            domain);
    if (config_.quarantine_on_watchdog) quarantine_domain(domain);
  }
}

void Crossbar::quarantine_domain(unsigned domain) {
  if (domain >= num_domains_ || domain_quarantined(domain)) return;
  for (std::size_t e = 0; e < endpoints_.size(); ++e) {
    EndpointState& endpoint = endpoints_[e];
    if (endpoint.config.domain != domain) continue;
    endpoint.quarantined = true;
    endpoint.busy = false;
    endpoint.input.clear();
    // Drain: every beat bound to this endpoint fails cleanly at the source
    // and its credit pool resets — other domains' traffic never waits on a
    // quarantined domain's queues.
    for (std::size_t p = 0; p < ports_.size(); ++p) {
      PortState& port = ports_[p];
      const std::size_t pending =
          port.vc[e].size() + port.outstanding[e].size();
      for (std::size_t i = 0; i < pending; ++i) {
        ++domains_[domain].drained;
        fail_beat(port, e, 0);
      }
      port.vc[e].clear();
      port.outstanding[e].clear();
      credits_[p * endpoints_.size() + e] = endpoint.config.credits;
    }
  }
  ++domains_[domain].quarantines;
}

void Crossbar::quarantine_all() {
  for (unsigned d = 0; d < num_domains_; ++d) quarantine_domain(d);
}

bool Crossbar::readmit_domain(unsigned domain) {
  if (domain >= num_domains_ || !domain_quarantined(domain)) return false;
  for (EndpointState& endpoint : endpoints_) {
    if (endpoint.config.domain != domain) continue;
    endpoint.quarantined = false;
    endpoint.wedged = false;
    endpoint.watchdog_tripped = false;
    endpoint.busy = false;
    endpoint.input.clear();
    endpoint.last_progress = now_;
  }
  ++domains_[domain].readmissions;
  return true;
}

unsigned Crossbar::readmit_all() {
  unsigned readmitted = 0;
  for (unsigned d = 0; d < num_domains_; ++d) {
    if (readmit_domain(d)) ++readmitted;
  }
  return readmitted;
}

bool Crossbar::domain_quarantined(unsigned domain) const {
  for (const EndpointState& endpoint : endpoints_) {
    if (endpoint.config.domain == domain && endpoint.quarantined) return true;
  }
  return false;
}

void Crossbar::mask_partition(hv::PartitionId partition) {
  for (PortState& port : ports_) {
    if (port.config.owner == partition) port.masked = true;
  }
}

void Crossbar::unmask_partition(hv::PartitionId partition) {
  for (PortState& port : ports_) {
    if (port.config.owner == partition) port.masked = false;
  }
}

FabricResult Crossbar::run() {
  const std::uint64_t deadline = now_ + config_.run_deadline_cycles;
  while (resolved_ < total_requests_ && now_ < deadline) {
    step_inject();
    step_credit_audit();
    step_timeouts();
    step_arbitrate();
    step_endpoints();
    step_watchdogs();
    ++now_;
  }

  FabricResult result;
  if (resolved_ < total_requests_) {
    // The run bound expired: convert the hang into an error and fail every
    // unresolved beat cleanly so the fabric is quiescent for the next run.
    result.status = Status::Error(
        ErrorCode::kDeadlineExceeded,
        format("NoC run exceeded %llu cycles with %llu beats unresolved",
               static_cast<unsigned long long>(config_.run_deadline_cycles),
               static_cast<unsigned long long>(total_requests_ - resolved_)));
    for (std::size_t p = 0; p < ports_.size(); ++p) {
      PortState& port = ports_[p];
      while (port.next_request < port.work.size()) {
        const BeatRequest& request = port.work[port.next_request];
        if (request.endpoint < endpoints_.size()) {
          fail_beat(port, request.endpoint, 0);
        } else {
          ++port.stats.failed;
          ++resolved_;
        }
        ++port.next_request;
      }
      for (std::size_t e = 0; e < endpoints_.size(); ++e) {
        const std::size_t pending =
            port.vc[e].size() + port.outstanding[e].size();
        for (std::size_t i = 0; i < pending; ++i) fail_beat(port, e, 0);
        port.vc[e].clear();
        port.outstanding[e].clear();
        credits_[p * endpoints_.size() + e] = endpoints_[e].config.credits;
      }
    }
  }
  // Workloads are consumed; counters and digests accumulate for the life of
  // the fabric (run-twice families construct a fresh fabric per run).
  for (PortState& port : ports_) {
    port.work.clear();
    port.next_request = 0;
  }

  result.cycles = now_;
  result.silent = silent_;
  result.domain_digest.assign(num_domains_, kFnvBasis);
  for (std::size_t p = 0; p < ports_.size(); ++p) {
    for (std::size_t e = 0; e < endpoints_.size(); ++e) {
      const unsigned domain = endpoints_[e].config.domain;
      result.domain_digest[domain] =
          fnv_mix(result.domain_digest[domain], ports_[p].pair_digest[e]);
    }
  }
  result.domains = domains_;
  result.ports.reserve(ports_.size());
  for (const PortState& port : ports_) result.ports.push_back(port.stats);
  result.endpoints.reserve(endpoints_.size());
  for (const EndpointState& endpoint : endpoints_) {
    result.endpoints.push_back(endpoint.stats);
  }
  return result;
}

}  // namespace hermes::noc
