// Virtual-device traffic generators and canned contention scenarios for the
// NoC crossbar.
//
// The ROADMAP's heavy-traffic multi-accelerator item calls for virtual-
// platform device families streaming work through the shared transport:
// camera producers emit dense frames, codec blocks arrive in bursts, packet
// streams trickle with jitter. Each generator is a pure function of its spec
// (seeded splitmix payloads, fixed shapes), so a scenario replays
// bit-identically — the property every chaos-soak family leans on.
#pragma once

#include <cstdint>
#include <vector>

#include "common/threadpool.hpp"
#include "dataflow/taskgraph.hpp"
#include "noc/noc.hpp"

namespace hermes::noc {

enum class TrafficPattern : std::uint8_t {
  kCameraFrames,  ///< dense frames: 64 back-to-back beats, 32-cycle gaps
  kCodecBlocks,   ///< bursty blocks: 16 beats, 8-cycle gaps
  kPacketStream,  ///< 1..8-beat packets with seeded 0..15-cycle jitter
};

struct WorkloadSpec {
  TrafficPattern pattern = TrafficPattern::kPacketStream;
  std::uint32_t endpoint = 0;
  std::uint32_t items = 8;  ///< frames / blocks / packets to emit
  std::uint64_t seed = 1;
  std::uint64_t start_cycle = 0;
};

/// Expands a spec into release-ordered beat requests for one (port, endpoint)
/// stream. Deterministic: same spec, same beats.
std::vector<BeatRequest> generate_workload(const WorkloadSpec& spec);

/// One port's bound traffic (possibly merged from several specs).
struct PortTraffic {
  std::uint32_t port = 0;
  std::vector<BeatRequest> beats;
};

/// Dataflow tasks as NoC traffic sources: every source task of the graph
/// becomes a beat stream whose inter-beat gap is the task's initiation
/// interval — the fabric sees the same token rate the discrete-event engine
/// would produce. Tasks are dealt round-robin across ports and endpoints.
std::vector<PortTraffic> workloads_from_taskgraph(const df::TaskGraph& graph,
                                                  std::uint64_t tokens,
                                                  std::uint64_t seed,
                                                  std::uint32_t num_ports,
                                                  std::uint32_t num_endpoints);

/// The canonical contention scenario used by tests, soaks, and benches:
/// 4 partition ports in 2 priority classes (weights 3:1 within a class)
/// driving 6 endpoints spread over 3 containment domains with camera, codec,
/// and two packet streams — enough crosstalk that arbitration, credits, and
/// containment all get exercised at once.
struct ContentionScenario {
  FabricConfig fabric;
  std::vector<PortConfig> ports;
  std::vector<EndpointConfig> endpoints;
  std::vector<PortTraffic> traffic;
};

ContentionScenario make_contention_scenario(std::uint64_t seed);

/// One chaos run: contention scenario + random plan over `points` (empty =
/// the noc.* catalog), quarantine-on-watchdog containment enabled. Returns
/// the run fingerprint folded with the injector's fire count, and reports
/// silent corruptions through `silent_out` when non-null (the soak asserts
/// the count stays zero).
std::uint64_t run_noc_chaos_once(std::uint64_t seed,
                                 std::span<const std::string_view> points,
                                 std::uint64_t* silent_out = nullptr);

/// Campaign over `count` seeds starting at `first_seed`, one fingerprint per
/// seed. Runs on `pool` when given (each index writes only its own slot —
/// bit-identical to the serial run, the TSan target), inline otherwise.
std::vector<std::uint64_t> run_noc_campaign(std::uint64_t first_seed,
                                            std::size_t count,
                                            ThreadPool* pool = nullptr);

}  // namespace hermes::noc
