#include "noc/workload.hpp"

#include <algorithm>

#include "common/rng.hpp"
#include "fdir/event.hpp"

namespace hermes::noc {
namespace {

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t fnv_mix(std::uint64_t hash, std::uint64_t value) {
  hash ^= value;
  return hash * 1099511628211ULL;
}

}  // namespace

std::vector<BeatRequest> generate_workload(const WorkloadSpec& spec) {
  std::vector<BeatRequest> beats;
  std::uint64_t payload_state =
      spec.seed ^ (0xA5A5A5A5A5A5A5A5ULL + spec.endpoint);
  std::uint64_t cycle = spec.start_cycle;
  Rng jitter(spec.seed ^ 0x1234ABCDULL);

  const auto emit_burst = [&](std::uint32_t beats_in_burst,
                              std::uint64_t gap_after) {
    for (std::uint32_t b = 0; b < beats_in_burst; ++b) {
      BeatRequest request;
      request.release_cycle = cycle++;
      request.endpoint = spec.endpoint;
      request.payload = splitmix(payload_state);
      beats.push_back(request);
    }
    cycle += gap_after;
  };

  switch (spec.pattern) {
    case TrafficPattern::kCameraFrames:
      for (std::uint32_t frame = 0; frame < spec.items; ++frame) {
        emit_burst(64, 32);
      }
      break;
    case TrafficPattern::kCodecBlocks:
      for (std::uint32_t block = 0; block < spec.items; ++block) {
        emit_burst(16, 8);
      }
      break;
    case TrafficPattern::kPacketStream:
      for (std::uint32_t packet = 0; packet < spec.items; ++packet) {
        const auto len = static_cast<std::uint32_t>(1 + jitter.next_below(8));
        emit_burst(len, jitter.next_below(16));
      }
      break;
  }
  return beats;
}

std::vector<PortTraffic> workloads_from_taskgraph(const df::TaskGraph& graph,
                                                  std::uint64_t tokens,
                                                  std::uint64_t seed,
                                                  std::uint32_t num_ports,
                                                  std::uint32_t num_endpoints) {
  std::vector<PortTraffic> traffic(num_ports);
  for (std::uint32_t p = 0; p < num_ports; ++p) traffic[p].port = p;
  if (num_ports == 0 || num_endpoints == 0) return traffic;

  for (std::size_t i = 0; i < graph.sources.size(); ++i) {
    const df::Task& task = graph.tasks[graph.sources[i]];
    const std::uint32_t port = static_cast<std::uint32_t>(i) % num_ports;
    const std::uint32_t endpoint =
        static_cast<std::uint32_t>(graph.sources[i]) % num_endpoints;
    std::uint64_t payload_state = seed ^ fnv_mix(0xD1F0ULL, i);
    std::uint64_t cycle = 0;
    for (std::uint64_t t = 0; t < tokens; ++t) {
      BeatRequest request;
      request.release_cycle = cycle;
      request.endpoint = endpoint;
      request.payload = splitmix(payload_state);
      traffic[port].beats.push_back(request);
      cycle += task.initiation();
    }
  }
  for (PortTraffic& port : traffic) {
    std::stable_sort(port.beats.begin(), port.beats.end(),
                     [](const BeatRequest& a, const BeatRequest& b) {
                       return a.release_cycle < b.release_cycle;
                     });
  }
  return traffic;
}

ContentionScenario make_contention_scenario(std::uint64_t seed) {
  ContentionScenario scenario;
  scenario.fabric.beat_timeout_cycles = 96;
  scenario.fabric.max_retries = 3;
  scenario.fabric.retry_backoff_cycles = 4;
  scenario.fabric.starvation_watchdog_cycles = 64;
  scenario.fabric.progress_watchdog_cycles = 128;
  scenario.fabric.run_deadline_cycles = 400'000;

  // Two priority classes; within class 0 the camera port outweighs the codec
  // port 3:1, within class 1 the two packet ports share evenly.
  scenario.ports = {
      {"hv0.camera", 0, 3, 8, 0},
      {"hv0.codec", 0, 1, 8, 0},
      {"hv1.packets-a", 1, 2, 8, 1},
      {"hv1.packets-b", 1, 2, 8, 1},
  };
  // Six endpoints over three containment domains (two accelerators each).
  scenario.endpoints = {
      {"efpga.scale", 0, 3, 4, 4}, {"efpga.filter", 0, 4, 4, 4},
      {"efpga.dct", 1, 2, 4, 4},   {"efpga.quant", 1, 5, 4, 4},
      {"efpga.csum", 2, 1, 4, 4},  {"efpga.frag", 2, 2, 4, 4},
  };

  const auto stream = [&](std::uint32_t port, TrafficPattern pattern,
                          std::uint32_t endpoint, std::uint32_t items,
                          std::uint64_t salt) {
    WorkloadSpec spec;
    spec.pattern = pattern;
    spec.endpoint = endpoint;
    spec.items = items;
    spec.seed = seed ^ salt;
    std::vector<BeatRequest> beats = generate_workload(spec);
    PortTraffic* slot = nullptr;
    for (PortTraffic& t : scenario.traffic) {
      if (t.port == port) slot = &t;
    }
    if (!slot) {
      scenario.traffic.push_back({port, {}});
      slot = &scenario.traffic.back();
    }
    slot->beats.insert(slot->beats.end(), beats.begin(), beats.end());
  };
  // Camera saturates domain 0, codec pounds domain 1, the packet ports spray
  // the remaining endpoints — every domain sees traffic from ≥2 ports.
  stream(0, TrafficPattern::kCameraFrames, 0, 3, 0x11);
  stream(0, TrafficPattern::kPacketStream, 2, 6, 0x12);
  stream(1, TrafficPattern::kCodecBlocks, 2, 6, 0x21);
  stream(1, TrafficPattern::kCodecBlocks, 3, 4, 0x22);
  stream(2, TrafficPattern::kPacketStream, 1, 10, 0x31);
  stream(2, TrafficPattern::kPacketStream, 4, 10, 0x32);
  stream(3, TrafficPattern::kPacketStream, 5, 10, 0x41);
  stream(3, TrafficPattern::kPacketStream, 0, 6, 0x42);
  for (PortTraffic& port : scenario.traffic) {
    std::stable_sort(port.beats.begin(), port.beats.end(),
                     [](const BeatRequest& a, const BeatRequest& b) {
                       return a.release_cycle < b.release_cycle;
                     });
  }
  return scenario;
}

std::uint64_t run_noc_chaos_once(std::uint64_t seed,
                                 std::span<const std::string_view> points,
                                 std::uint64_t* silent_out) {
  ContentionScenario scenario = make_contention_scenario(seed);
  Crossbar fabric(scenario.fabric, scenario.ports, scenario.endpoints);

  fault::FaultInjector injector(fault::make_random_plan(
      seed, points.empty() ? noc_point_catalog() : points));
  fabric.attach_injector(&injector);
  fdir::FdirBus bus;
  fabric.attach_fdir(&bus);

  for (PortTraffic& traffic : scenario.traffic) {
    fabric.bind_workload(traffic.port, std::move(traffic.beats));
  }
  const FabricResult result = fabric.run();
  if (silent_out) *silent_out = result.silent;

  std::uint64_t fingerprint = result.fingerprint();
  fingerprint = fnv_mix(fingerprint, injector.total_fires());
  std::vector<fdir::FdirEvent> events = bus.drain();
  fingerprint = fnv_mix(fingerprint, events.size());
  for (const fdir::FdirEvent& event : events) {
    fingerprint = fnv_mix(fingerprint, static_cast<std::uint64_t>(event.layer));
    fingerprint = fnv_mix(fingerprint,
                          static_cast<std::uint64_t>(event.severity));
    fingerprint = fnv_mix(fingerprint, static_cast<std::uint64_t>(event.code));
    fingerprint = fnv_mix(fingerprint, event.detail);
  }
  return fingerprint;
}

std::vector<std::uint64_t> run_noc_campaign(std::uint64_t first_seed,
                                            std::size_t count,
                                            ThreadPool* pool) {
  std::vector<std::uint64_t> fingerprints(count);
  const auto body = [&](std::size_t i) {
    fingerprints[i] = run_noc_chaos_once(first_seed + i, {});
  };
  if (pool) {
    pool->parallel_for(count, body);
  } else {
    for (std::size_t i = 0; i < count; ++i) body(i);
  }
  return fingerprints;
}

}  // namespace hermes::noc
