// Technology mapping: word-level netlist cells onto fabric primitives.
//
// The first NXmap stage (paper Fig. 3: synthesis). Each hw::Module cell is
// mapped to LUT4s / carry chains / DSPs; memories map onto block RAMs ("the
// components used by Bambu for arithmetic operations and the storage modules
// have been customized to be compliant with the NXmap synthesis guidelines",
// i.e. mapped onto the actual DSPs and True Dual Port RAMs of the fabric).
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.hpp"
#include "hls/techlib.hpp"
#include "hw/netlist.hpp"
#include "nxmap/device.hpp"

namespace hermes::nx {

enum class PrimKind : std::uint8_t { kLutCluster, kCarryChain, kDsp, kBram, kFf };

const char* to_string(PrimKind kind);

/// One mapped instance: the fabric realization of one netlist cell.
struct MappedInstance {
  PrimKind kind = PrimKind::kLutCluster;
  std::size_t cell_index = 0;   ///< originating hw cell (SIZE_MAX for memories)
  std::size_t memory_index = SIZE_MAX;
  unsigned luts = 0;
  unsigned ffs = 0;
  unsigned dsps = 0;
  unsigned brams = 0;
  double internal_delay_ns = 0.0;  ///< input-to-output through the primitive
};

struct Utilization {
  std::size_t luts = 0, ffs = 0, dsps = 0, brams = 0;
  double lut_pct = 0, dsp_pct = 0, bram_pct = 0;
};

struct MappedDesign {
  std::vector<MappedInstance> instances;
  /// instance index driving each wire (SIZE_MAX for input ports).
  std::vector<std::size_t> driver_of_wire;
  Utilization utilization;
};

/// Maps the module. Fails with kResourceExhausted if the design does not fit
/// the device.
Result<MappedDesign> techmap(const hw::Module& module, const NxDevice& device);

}  // namespace hermes::nx
