// Bitstream generation — the final NXmap stage (Fig. 3), and the artifact
// BL1 programs into the eFPGA matrix during boot (Sec. IV: BL1 "loads the
// eFPGA matrix configuration (i.e., the bitstream)").
//
// Frame-structured format with integrity features matching a rad-hard
// configuration memory: a header identifying the device, one configuration
// frame per used tile column with a CRC-32 each, and a global CRC so a
// corrupted bitstream is always detected before programming.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "nxmap/place.hpp"

namespace hermes::nx {

inline constexpr std::uint32_t kBitstreamMagic = 0x4E583031;  // "NX01"

/// Byte offset where the first configuration frame starts (magic, device id,
/// frame count — 4 bytes each).
inline constexpr std::size_t kBitstreamHeaderBytes = 12;

struct BitstreamInfo {
  std::uint32_t device_id = 0;
  unsigned frames = 0;
  std::size_t bytes = 0;
};

/// One configuration frame as stored in the image: the unit the eFPGA
/// configuration port writes, reads back, and re-writes on upset.
struct BitstreamFrame {
  std::uint32_t column = 0;              ///< tile column this frame configures
  std::vector<std::uint32_t> words;      ///< payload configuration words
  std::uint32_t crc = 0;                 ///< CRC-32 over column+count+payload
  std::size_t offset = 0;                ///< byte offset of the frame in the image
  std::size_t bytes = 0;                 ///< frame size incl. the trailing CRC
};

/// A verified bitstream split into its frames — the frame-addressable view
/// BL1 programs through the configuration port.
struct ParsedBitstream {
  std::uint32_t device_id = 0;
  std::vector<BitstreamFrame> frames;

  /// Total payload words across all frames (configuration-memory footprint).
  [[nodiscard]] std::size_t total_words() const;
};

/// CRC-32 of an encoded frame (column id, word count, payload) — the value
/// stored in the frame trailer and recomputed by per-frame readback.
std::uint32_t frame_crc(std::uint32_t column,
                        std::span<const std::uint32_t> words);

/// Low-level packer: header + one frame per entry (column/words taken from
/// each BitstreamFrame; CRCs computed here) + global CRC. pack_bitstream
/// lowers a placed design onto this; tests and the chaos soak use it directly
/// to build synthetic images in the exact wire format.
std::vector<std::uint8_t> pack_raw_bitstream(
    std::uint32_t device_id, std::span<const BitstreamFrame> frames);

/// Serializes the placed design into a bitstream image.
std::vector<std::uint8_t> pack_bitstream(const hw::Module& module,
                                         const MappedDesign& design,
                                         const Placement& placement,
                                         const NxDevice& device);

/// Parses and integrity-checks a bitstream (header magic, per-frame CRCs,
/// global CRC). This is the check BL1 runs before eFPGA programming.
Result<BitstreamInfo> verify_bitstream(std::span<const std::uint8_t> image);

/// verify_bitstream plus the frame split. Never returns frames from an image
/// that fails any integrity check.
Result<ParsedBitstream> parse_bitstream(std::span<const std::uint8_t> image);

}  // namespace hermes::nx
