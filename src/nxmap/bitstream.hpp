// Bitstream generation — the final NXmap stage (Fig. 3), and the artifact
// BL1 programs into the eFPGA matrix during boot (Sec. IV: BL1 "loads the
// eFPGA matrix configuration (i.e., the bitstream)").
//
// Frame-structured format with integrity features matching a rad-hard
// configuration memory: a header identifying the device, one configuration
// frame per used tile column with a CRC-32 each, and a global CRC so a
// corrupted bitstream is always detected before programming.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "nxmap/place.hpp"

namespace hermes::nx {

inline constexpr std::uint32_t kBitstreamMagic = 0x4E583031;  // "NX01"

struct BitstreamInfo {
  std::uint32_t device_id = 0;
  unsigned frames = 0;
  std::size_t bytes = 0;
};

/// Serializes the placed design into a bitstream image.
std::vector<std::uint8_t> pack_bitstream(const hw::Module& module,
                                         const MappedDesign& design,
                                         const Placement& placement,
                                         const NxDevice& device);

/// Parses and integrity-checks a bitstream (header magic, per-frame CRCs,
/// global CRC). This is the check BL1 runs before eFPGA programming.
Result<BitstreamInfo> verify_bitstream(std::span<const std::uint8_t> image);

}  // namespace hermes::nx
