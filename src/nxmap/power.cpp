#include "nxmap/power.hpp"

namespace hermes::nx {

PowerReport estimate_power(const MappedDesign& design, const NxDevice& device,
                           double freq_mhz, double activity) {
  const hls::FpgaTarget& t = device.target;
  const Utilization& u = design.utilization;
  PowerReport report;
  report.freq_mhz = freq_mhz;
  report.static_mw = t.static_power_mw;
  const double uw =
      activity * freq_mhz *
      (static_cast<double>(u.luts) * t.lut_dyn_uw_per_mhz +
       static_cast<double>(u.ffs) * t.ff_dyn_uw_per_mhz +
       static_cast<double>(u.dsps) * t.dsp_dyn_uw_per_mhz +
       static_cast<double>(u.brams) * t.bram_dyn_uw_per_mhz);
  report.dynamic_mw = uw / 1000.0;
  report.total_mw = report.static_mw + report.dynamic_mw;
  return report;
}

}  // namespace hermes::nx
