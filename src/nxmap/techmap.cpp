#include "nxmap/techmap.hpp"

#include "common/bits.hpp"
#include "common/strings.hpp"

namespace hermes::nx {
namespace {

/// IR operator corresponding to a netlist cell kind, for the tech library's
/// delay/area model (the library is op-indexed).
ir::Op op_for_cell(hw::CellKind kind) {
  using hw::CellKind;
  switch (kind) {
    case CellKind::kAdd: return ir::Op::kAdd;
    case CellKind::kSub: return ir::Op::kSub;
    case CellKind::kMul: return ir::Op::kMul;
    case CellKind::kDivU: case CellKind::kDivS: return ir::Op::kDiv;
    case CellKind::kRemU: case CellKind::kRemS: return ir::Op::kRem;
    case CellKind::kAnd: return ir::Op::kAnd;
    case CellKind::kOr: return ir::Op::kOr;
    case CellKind::kXor: return ir::Op::kXor;
    case CellKind::kNot: return ir::Op::kNot;
    case CellKind::kShl: return ir::Op::kShl;
    case CellKind::kShrU: case CellKind::kShrS: return ir::Op::kShr;
    case CellKind::kEq: return ir::Op::kEq;
    case CellKind::kNe: return ir::Op::kNe;
    case CellKind::kLtU: case CellKind::kLtS: return ir::Op::kLt;
    case CellKind::kLeU: case CellKind::kLeS: return ir::Op::kLe;
    case CellKind::kMux: return ir::Op::kSelect;
    default: return ir::Op::kCopy;
  }
}

}  // namespace

const char* to_string(PrimKind kind) {
  switch (kind) {
    case PrimKind::kLutCluster: return "lut_cluster";
    case PrimKind::kCarryChain: return "carry_chain";
    case PrimKind::kDsp: return "dsp";
    case PrimKind::kBram: return "bram";
    case PrimKind::kFf: return "ff";
  }
  return "?";
}

Result<MappedDesign> techmap(const hw::Module& module, const NxDevice& device) {
  const hls::TechLibrary lib(device.target);
  MappedDesign design;
  design.driver_of_wire.assign(module.wire_count(), SIZE_MAX);

  for (std::size_t c = 0; c < module.cells().size(); ++c) {
    const hw::Cell& cell = module.cells()[c];
    MappedInstance inst;
    inst.cell_index = c;

    const unsigned width =
        cell.outputs.empty() ? (cell.inputs.empty()
                                    ? 1u
                                    : module.wire_width(cell.inputs[0]))
                             : module.wire_width(cell.outputs[0]);

    switch (cell.kind) {
      case hw::CellKind::kConst:
      case hw::CellKind::kZext:
      case hw::CellKind::kSext:
      case hw::CellKind::kSlice:
      case hw::CellKind::kConcat:
        // Pure wiring: no fabric resources, no delay.
        inst.kind = PrimKind::kLutCluster;
        inst.internal_delay_ns = 0.0;
        break;
      case hw::CellKind::kRegister:
        inst.kind = PrimKind::kFf;
        inst.ffs = width;
        inst.internal_delay_ns = 0.0;  // clock-to-q folded into ff_setup model
        break;
      case hw::CellKind::kRamRead:
      case hw::CellKind::kRamWrite:
        // Port logic of the memory; the BRAM itself is charged per memory
        // below. Address/data muxing is already explicit as mux cells.
        inst.kind = PrimKind::kBram;
        inst.internal_delay_ns = device.target.bram_access_ns;
        break;
      case hw::CellKind::kMul: {
        inst.kind = PrimKind::kDsp;
        const hls::OpCost cost = lib.cost(ir::Op::kMul, width);
        inst.dsps = static_cast<unsigned>(cost.dsps);
        inst.luts = static_cast<unsigned>(cost.luts);
        inst.internal_delay_ns = lib.delay_ns(ir::Op::kMul, width);
        break;
      }
      case hw::CellKind::kAdd:
      case hw::CellKind::kSub:
      case hw::CellKind::kLtU:
      case hw::CellKind::kLtS:
      case hw::CellKind::kLeU:
      case hw::CellKind::kLeS: {
        inst.kind = PrimKind::kCarryChain;
        const ir::Op op = op_for_cell(cell.kind);
        const hls::OpCost cost = lib.cost(op, width);
        inst.luts = static_cast<unsigned>(cost.luts);
        inst.internal_delay_ns = lib.delay_ns(op, width);
        break;
      }
      default: {
        inst.kind = PrimKind::kLutCluster;
        const ir::Op op = op_for_cell(cell.kind);
        const hls::OpCost cost = lib.cost(op, width);
        inst.luts = static_cast<unsigned>(cost.luts);
        inst.ffs = static_cast<unsigned>(cost.ffs);
        inst.dsps = static_cast<unsigned>(cost.dsps);
        inst.internal_delay_ns = lib.delay_ns(op, width);
        break;
      }
    }

    const std::size_t index = design.instances.size();
    design.instances.push_back(inst);
    for (hw::WireId wire : cell.outputs) {
      design.driver_of_wire[wire] = index;
    }
  }

  // Memories -> block RAMs (width x depth packed into 48kbit TDP blocks).
  for (std::size_t m = 0; m < module.memories().size(); ++m) {
    const hw::Memory& memory = module.memories()[m];
    MappedInstance inst;
    inst.kind = PrimKind::kBram;
    inst.cell_index = SIZE_MAX;
    inst.memory_index = m;
    const std::size_t bits =
        static_cast<std::size_t>(memory.width) * memory.depth;
    inst.brams = static_cast<unsigned>(
        ceil_div(bits > 0 ? bits : 1, device.target.bram_kbits * 1024));
    inst.internal_delay_ns = device.target.bram_access_ns;
    design.instances.push_back(inst);
  }

  // Utilization + capacity check.
  Utilization& util = design.utilization;
  for (const MappedInstance& inst : design.instances) {
    util.luts += inst.luts;
    util.ffs += inst.ffs;
    util.dsps += inst.dsps;
    util.brams += inst.brams;
  }
  util.lut_pct = 100.0 * static_cast<double>(util.luts) /
                 static_cast<double>(device.total_luts());
  util.dsp_pct = device.total_dsps()
                     ? 100.0 * static_cast<double>(util.dsps) /
                           static_cast<double>(device.total_dsps())
                     : 0.0;
  util.bram_pct = device.total_brams()
                      ? 100.0 * static_cast<double>(util.brams) /
                            static_cast<double>(device.total_brams())
                      : 0.0;
  if (util.luts > device.total_luts()) {
    return Status::Error(ErrorCode::kResourceExhausted,
                         format("%zu LUTs needed, device has %zu", util.luts,
                                device.total_luts()));
  }
  if (util.dsps > device.total_dsps()) {
    return Status::Error(ErrorCode::kResourceExhausted,
                         format("%zu DSPs needed, device has %zu", util.dsps,
                                device.total_dsps()));
  }
  if (util.brams > device.total_brams()) {
    return Status::Error(ErrorCode::kResourceExhausted,
                         format("%zu BRAMs needed, device has %zu", util.brams,
                                device.total_brams()));
  }
  return design;
}

}  // namespace hermes::nx
