// The complete NXmap backend flow (paper Fig. 3):
//   HDL netlist -> logic synthesis/tech map -> place -> route -> STA ->
//   bitstream, with a power estimate.
//
// "Seamless integration between Bambu and NXmap through the automatic
// generation of backend synthesis scripts" — here the integration is a
// direct API call taking the hw::Module the HLS back-end produced.
#pragma once

#include <string>

#include "common/status.hpp"
#include "nxmap/bitstream.hpp"
#include "nxmap/detailed_route.hpp"
#include "nxmap/device.hpp"
#include "nxmap/place.hpp"
#include "nxmap/power.hpp"
#include "nxmap/route.hpp"
#include "nxmap/sta.hpp"
#include "nxmap/techmap.hpp"

namespace hermes::nx {

struct BackendOptions {
  double target_period_ns = 0.0;  ///< 0 = report-only STA
  PlaceOptions place;
  RouteOptions route;
  /// true: PathFinder negotiated-congestion routing (slower, real embeddings);
  /// false: bounding-box estimator.
  bool detailed_router = false;
  DetailedRouteOptions detailed;
};

struct BackendResult {
  MappedDesign mapped;
  Placement placement;
  Routing routing;
  TimingReport timing;
  PowerReport power;
  std::vector<std::uint8_t> bitstream;
  /// Self-check of the packed image: the backend re-runs verify_bitstream on
  /// its own output, so a flow never hands BL1 an unprogrammable bitstream.
  BitstreamInfo bitstream_info;
  /// Populated when the detailed router ran.
  unsigned route_iterations = 0;
  bool route_converged = true;
};

/// Runs the full backend on a synthesizable module for the given device.
Result<BackendResult> run_backend(const hw::Module& module,
                                  const NxDevice& device,
                                  const BackendOptions& options = {});

/// Human-readable end-of-flow report (utilization, timing, power, bitstream).
std::string backend_report(const BackendResult& result, const NxDevice& device);

}  // namespace hermes::nx
