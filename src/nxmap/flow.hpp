// The complete NXmap backend flow (paper Fig. 3):
//   HDL netlist -> logic synthesis/tech map -> place -> route -> STA ->
//   bitstream, with a power estimate.
//
// "Seamless integration between Bambu and NXmap through the automatic
// generation of backend synthesis scripts" — here the integration is a
// direct API call taking the hw::Module the HLS back-end produced.
#pragma once

#include <string>

#include "common/status.hpp"
#include "nxmap/bitstream.hpp"
#include "nxmap/detailed_route.hpp"
#include "nxmap/device.hpp"
#include "nxmap/place.hpp"
#include "nxmap/power.hpp"
#include "nxmap/route.hpp"
#include "nxmap/sta.hpp"
#include "nxmap/techmap.hpp"

namespace hermes::nx {

struct BackendOptions {
  double target_period_ns = 0.0;  ///< 0 = report-only STA
  PlaceOptions place;
  RouteOptions route;
  /// true: PathFinder negotiated-congestion routing (slower, real embeddings);
  /// false: bounding-box estimator.
  bool detailed_router = false;
  DetailedRouteOptions detailed;
};

/// Map/place/route/STA/power — everything except bitstream packing. The
/// compile service (src/svc/) caches this as the "mapped netlist" artifact;
/// pack_backend produces the bitstream from it alone, so a warm map entry
/// skips synthesis, placement and routing entirely.
struct MapResult {
  /// Post dead-cell-sweep module — the netlist placement/routing/packing
  /// actually operate on (pack_backend needs it verbatim).
  hw::Module synthesized{"<empty>"};
  MappedDesign mapped;
  Placement placement;
  Routing routing;
  TimingReport timing;
  PowerReport power;
  unsigned route_iterations = 0;
  bool route_converged = true;
};

/// Packed programming image plus its self-verification record.
struct PackResult {
  std::vector<std::uint8_t> bitstream;
  BitstreamInfo info;
};

struct BackendResult {
  MappedDesign mapped;
  Placement placement;
  Routing routing;
  TimingReport timing;
  PowerReport power;
  std::vector<std::uint8_t> bitstream;
  /// Self-check of the packed image: the backend re-runs verify_bitstream on
  /// its own output, so a flow never hands BL1 an unprogrammable bitstream.
  BitstreamInfo bitstream_info;
  /// Populated when the detailed router ran.
  unsigned route_iterations = 0;
  bool route_converged = true;
};

/// Runs the full backend on a synthesizable module for the given device.
/// Equivalent to run_backend_map followed by pack_backend.
Result<BackendResult> run_backend(const hw::Module& module,
                                  const NxDevice& device,
                                  const BackendOptions& options = {});

/// Stage 1: logic-synthesis cleanup, tech mapping, placement, routing, STA
/// and the power estimate.
Result<MapResult> run_backend_map(const hw::Module& module,
                                  const NxDevice& device,
                                  const BackendOptions& options = {});

/// Stage 2: packs and self-verifies the bitstream for a mapped design.
Result<PackResult> pack_backend(const MapResult& map, const NxDevice& device);

/// Human-readable end-of-flow report (utilization, timing, power, bitstream).
std::string backend_report(const BackendResult& result, const NxDevice& device);

}  // namespace hermes::nx
