#include "nxmap/place.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace hermes::nx {
namespace {

/// Net model: one net per driven wire, connecting the driver instance to
/// every consumer instance.
struct Net {
  std::vector<std::size_t> pins;  ///< instance indices (first = driver)
};

std::vector<Net> extract_nets(const hw::Module& module,
                              const MappedDesign& design) {
  std::vector<Net> nets;
  std::map<hw::WireId, std::size_t> net_of_wire;
  // Consumers per wire.
  for (std::size_t c = 0; c < module.cells().size(); ++c) {
    const hw::Cell& cell = module.cells()[c];
    for (hw::WireId wire : cell.inputs) {
      const std::size_t driver = design.driver_of_wire[wire];
      if (driver == SIZE_MAX) continue;  // port input: ignore for HPWL
      auto it = net_of_wire.find(wire);
      if (it == net_of_wire.end()) {
        nets.push_back({{driver}});
        it = net_of_wire.emplace(wire, nets.size() - 1).first;
      }
      nets[it->second].pins.push_back(c);  // cell index == instance index
    }
  }
  return nets;
}

double net_hpwl(const Net& net, const Placement& placement) {
  unsigned min_x = ~0u, max_x = 0, min_y = ~0u, max_y = 0;
  for (std::size_t pin : net.pins) {
    const auto [x, y] = placement.location[pin];
    min_x = std::min(min_x, x);
    max_x = std::max(max_x, x);
    min_y = std::min(min_y, y);
    max_y = std::max(max_y, y);
  }
  return static_cast<double>(max_x - min_x) + static_cast<double>(max_y - min_y);
}

}  // namespace

Placement place(const hw::Module& module, const MappedDesign& design,
                const NxDevice& device, const PlaceOptions& options) {
  Placement placement;
  const std::size_t n = design.instances.size();
  placement.location.resize(n);

  // Use a compact square region sized to the design (real placers pack too).
  std::size_t area_luts = 0;
  for (const MappedInstance& inst : design.instances) {
    area_luts += std::max<unsigned>(inst.luts + inst.ffs / 4, 1);
  }
  const unsigned needed_tiles = static_cast<unsigned>(
      (area_luts + device.luts_per_tile - 1) / device.luts_per_tile);
  // Spread the region well beyond the area lower bound: routability needs
  // whitespace (placers targeting ~25-35% logic density route best).
  unsigned side = static_cast<unsigned>(
      std::ceil(std::sqrt(static_cast<double>(needed_tiles) * 3.5)));
  side = std::max(side, 2u);
  side = std::min(side, std::min(device.rows, device.cols));
  placement.grid_side = side;

  Rng rng(options.seed);

  // Initial placement: random.
  for (std::size_t i = 0; i < n; ++i) {
    placement.location[i] = {static_cast<unsigned>(rng.next_below(side)),
                             static_cast<unsigned>(rng.next_below(side))};
  }

  const std::vector<Net> nets = extract_nets(module, design);
  // nets touching each instance (for incremental cost updates).
  std::vector<std::vector<std::size_t>> nets_of_instance(n);
  for (std::size_t ni = 0; ni < nets.size(); ++ni) {
    for (std::size_t pin : nets[ni].pins) {
      if (pin < n) nets_of_instance[pin].push_back(ni);
    }
  }

  // Tile usage map for the overflow penalty.
  std::vector<double> tile_usage(static_cast<std::size_t>(side) * side, 0.0);
  auto tile_index = [&](unsigned x, unsigned y) {
    return static_cast<std::size_t>(y) * side + x;
  };
  auto inst_area = [&](std::size_t i) {
    const MappedInstance& inst = design.instances[i];
    return static_cast<double>(std::max<unsigned>(inst.luts + inst.ffs / 4, 1));
  };
  for (std::size_t i = 0; i < n; ++i) {
    const auto [x, y] = placement.location[i];
    tile_usage[tile_index(x, y)] += inst_area(i);
  }
  const double capacity = device.luts_per_tile;
  auto overflow_at = [&](std::size_t tile) {
    const double over = tile_usage[tile] - capacity;
    return over > 0 ? over * over : 0.0;
  };

  auto cost_of_nets = [&](const std::vector<std::size_t>& net_ids) {
    double cost = 0;
    for (std::size_t ni : net_ids) cost += net_hpwl(nets[ni], placement);
    return cost;
  };

  double temperature = options.initial_temp;
  const std::size_t moves_per_round = std::max<std::size_t>(n, 16);
  const unsigned rounds = options.iterations_per_instance;

  for (unsigned round = 0; round < rounds; ++round) {
    for (std::size_t move = 0; move < moves_per_round; ++move) {
      const std::size_t i = rng.next_below(n);
      const auto old_loc = placement.location[i];
      const unsigned nx = static_cast<unsigned>(rng.next_below(side));
      const unsigned ny = static_cast<unsigned>(rng.next_below(side));
      if (nx == old_loc.first && ny == old_loc.second) continue;

      const std::size_t old_tile = tile_index(old_loc.first, old_loc.second);
      const std::size_t new_tile = tile_index(nx, ny);
      const double area = inst_area(i);

      const double before = cost_of_nets(nets_of_instance[i]) +
                            overflow_at(old_tile) + overflow_at(new_tile);
      placement.location[i] = {nx, ny};
      tile_usage[old_tile] -= area;
      tile_usage[new_tile] += area;
      const double after = cost_of_nets(nets_of_instance[i]) +
                           overflow_at(old_tile) + overflow_at(new_tile);

      const double delta = after - before;
      const bool accept =
          delta <= 0 || rng.next_double() < std::exp(-delta / temperature);
      if (!accept) {
        placement.location[i] = old_loc;
        tile_usage[old_tile] += area;
        tile_usage[new_tile] -= area;
      }
    }
    temperature *= options.cooling;
  }

  // Final metrics.
  placement.hpwl = 0;
  for (const Net& net : nets) placement.hpwl += net_hpwl(net, placement);
  placement.overflow = 0;
  for (std::size_t t = 0; t < tile_usage.size(); ++t) {
    const double over = tile_usage[t] - capacity;
    if (over > 0) placement.overflow += over;
  }
  return placement;
}

}  // namespace hermes::nx
