// Detailed global routing — PathFinder-style negotiated congestion.
//
// The estimator in route.hpp prices nets by bounding box; this router
// actually embeds every net into the routing grid: each net becomes a Steiner
// tree over tile nodes, built sink-by-sink with Dijkstra searches whose node
// costs rise with present overuse and accumulated history (the classic
// PathFinder negotiation), iterating rip-up-and-reroute until no tile's
// channel capacity is exceeded. The result slots into the same Routing
// structure, so STA and reports work identically on estimated or routed
// delays.
#pragma once

#include "nxmap/route.hpp"

namespace hermes::nx {

struct DetailedRouteOptions {
  double channel_capacity = 160.0;  ///< wire-bits one tile's channels carry
  unsigned max_iterations = 24;
  double present_factor = 0.6;      ///< penalty slope for current overuse
  double history_factor = 0.35;     ///< accumulated-congestion pressure
};

struct DetailedRouteResult {
  Routing routing;            ///< same consumer interface as the estimator
  unsigned iterations = 0;    ///< negotiation rounds used
  bool converged = false;     ///< no overused tile at exit
  std::size_t overused_tiles = 0;
  std::size_t total_tree_nodes = 0;  ///< routed wirelength in tile-nodes
};

DetailedRouteResult detailed_route(const hw::Module& module,
                                   const MappedDesign& design,
                                   const Placement& placement,
                                   const NxDevice& device,
                                   const DetailedRouteOptions& options = {});

}  // namespace hermes::nx
