#include "nxmap/device.hpp"

#include <cmath>
#include <sstream>

#include "common/strings.hpp"

namespace hermes::nx {

NxDevice make_device(const hls::FpgaTarget& target) {
  NxDevice device;
  device.name = target.name;
  device.target = target;
  device.luts_per_tile = 64;
  device.ffs_per_tile = 64;
  const double tiles =
      static_cast<double>(target.luts) / device.luts_per_tile;
  const unsigned side = static_cast<unsigned>(std::ceil(std::sqrt(tiles)));
  device.rows = side;
  device.cols = side;
  device.dsp_cols = static_cast<unsigned>(target.dsps / (side ? side : 1) + 1);
  device.bram_cols = static_cast<unsigned>(target.brams / (side ? side : 1) + 1);
  return device;
}

std::string device_inventory(const NxDevice& device) {
  std::ostringstream out;
  out << "=== " << device.name << " fabric inventory ===\n";
  out << format("logic grid     : %u x %u tiles (%u LUT4 + %u FF each)\n",
                device.rows, device.cols, device.luts_per_tile,
                device.ffs_per_tile);
  out << format("LUT4 capacity  : %zu\n", device.total_luts());
  out << format("DSP blocks     : %zu (max %ux%u multiply)\n",
                device.total_dsps(), device.target.dsp_mul_width,
                device.target.dsp_mul_width);
  out << format("TDP RAM blocks : %zu x %zu kbit\n", device.total_brams(),
                device.target.bram_kbits);
  out << format("LUT delay      : %.2f ns, routing hop %.2f ns, DSP %.2f ns, BRAM %.2f ns\n",
                device.target.lut_delay_ns, device.target.routing_delay_ns,
                device.target.dsp_delay_ns, device.target.bram_access_ns);
  out << format("static power   : %.0f mW\n", device.target.static_power_mw);
  return out.str();
}

}  // namespace hermes::nx
