// NX device model.
//
// Derives a tiled fabric (CLB-like clusters of LUT4s + FFs, DSP columns,
// block-RAM columns) from an hls::FpgaTarget so the placer, router estimate
// and STA have geometry to work with. For NG-ULTRA the headline capacity is
// the paper's "550k LUTs" with DSPs and True Dual-Port RAMs.
#pragma once

#include <cstdint>
#include <string>

#include "hls/target.hpp"

namespace hermes::nx {

struct NxDevice {
  std::string name;
  hls::FpgaTarget target;

  unsigned rows = 0, cols = 0;      ///< logic tile grid
  unsigned luts_per_tile = 64;      ///< LUT4s per logic tile (8 clusters of 8)
  unsigned ffs_per_tile = 64;
  unsigned dsp_cols = 0;            ///< DSP hard-block columns
  unsigned bram_cols = 0;           ///< block-RAM columns

  [[nodiscard]] std::size_t total_luts() const {
    return static_cast<std::size_t>(rows) * cols * luts_per_tile;
  }
  [[nodiscard]] std::size_t total_dsps() const { return target.dsps; }
  [[nodiscard]] std::size_t total_brams() const { return target.brams; }
};

/// Builds the device geometry for a target (square-ish logic grid sized to
/// the LUT capacity).
NxDevice make_device(const hls::FpgaTarget& target);

/// Human-readable inventory (Fig. 1 companion output).
std::string device_inventory(const NxDevice& device);

}  // namespace hermes::nx
