#include "nxmap/route.hpp"

#include <algorithm>
#include <cmath>

namespace hermes::nx {

Routing route(const hw::Module& module, const MappedDesign& design,
              const Placement& placement, const NxDevice& device,
              const RouteOptions& options) {
  Routing routing;
  routing.wire_delay_ns.assign(module.wire_count(), 0.0);
  const unsigned side = std::max(placement.grid_side, 1u);

  // Pass 1: accumulate routing demand per tile (net bbox spread).
  std::vector<double> demand(static_cast<std::size_t>(side) * side, 0.0);
  auto tile_index = [&](unsigned x, unsigned y) {
    return static_cast<std::size_t>(y) * side + x;
  };

  struct Span {
    unsigned min_x, max_x, min_y, max_y;
    double hops;
  };
  std::vector<Span> spans(module.wire_count(), {0, 0, 0, 0, -1.0});

  for (std::size_t c = 0; c < module.cells().size(); ++c) {
    const hw::Cell& cell = module.cells()[c];
    for (hw::WireId wire : cell.inputs) {
      const std::size_t driver = design.driver_of_wire[wire];
      if (driver == SIZE_MAX) continue;
      const auto [dx, dy] = placement.location[driver];
      const auto [cx, cy] = placement.location[c];
      Span& span = spans[wire];
      if (span.hops < 0) {
        span = {std::min(dx, cx), std::max(dx, cx), std::min(dy, cy),
                std::max(dy, cy), 0.0};
      } else {
        span.min_x = std::min(span.min_x, cx);
        span.max_x = std::max(span.max_x, cx);
        span.min_y = std::min(span.min_y, cy);
        span.max_y = std::max(span.max_y, cy);
      }
    }
  }
  for (hw::WireId wire = 0; wire < module.wire_count(); ++wire) {
    Span& span = spans[wire];
    if (span.hops < 0) continue;
    span.hops = static_cast<double>(span.max_x - span.min_x) +
                static_cast<double>(span.max_y - span.min_y);
    routing.total_wirelength += span.hops;
    // Spread one unit of demand per wire bit over the bbox tiles.
    const double bbox_tiles =
        static_cast<double>(span.max_x - span.min_x + 1) *
        static_cast<double>(span.max_y - span.min_y + 1);
    const double bits = module.wire_width(wire);
    for (unsigned y = span.min_y; y <= span.max_y && y < side; ++y) {
      for (unsigned x = span.min_x; x <= span.max_x && x < side; ++x) {
        demand[tile_index(x, y)] += bits / bbox_tiles;
      }
    }
  }

  // Pass 2: congestion metrics.
  std::size_t congested = 0;
  for (double d : demand) {
    const double ratio = d / options.channel_capacity;
    routing.max_congestion = std::max(routing.max_congestion, ratio);
    if (ratio > 1.0) ++congested;
  }
  routing.congested_tiles_pct =
      demand.empty() ? 0.0
                     : 100.0 * static_cast<double>(congested) /
                           static_cast<double>(demand.size());

  // Pass 3: per-wire routed delay = base hop delay * distance, dilated by
  // the worst congestion along the bbox (detour model).
  for (hw::WireId wire = 0; wire < module.wire_count(); ++wire) {
    const Span& span = spans[wire];
    if (span.hops < 0) continue;
    double worst = 0.0;
    for (unsigned y = span.min_y; y <= span.max_y && y < side; ++y) {
      for (unsigned x = span.min_x; x <= span.max_x && x < side; ++x) {
        worst = std::max(worst, demand[tile_index(x, y)] / options.channel_capacity);
      }
    }
    const double dilation = worst > 1.0 ? worst : 1.0;
    routing.wire_delay_ns[wire] =
        device.target.routing_delay_ns * (0.5 + 0.25 * span.hops) * dilation;
  }
  return routing;
}

}  // namespace hermes::nx
