#include "nxmap/flow.hpp"

#include <sstream>

#include "common/strings.hpp"

namespace hermes::nx {

Result<MapResult> run_backend_map(const hw::Module& module,
                                  const NxDevice& device,
                                  const BackendOptions& options) {
  MapResult result;
  // Logic-synthesis cleanup: drop logic that drives nothing before paying
  // for it in mapping, placement and routing.
  result.synthesized = module;
  hw::sweep_dead_cells(result.synthesized);

  auto mapped = techmap(result.synthesized, device);
  if (!mapped.ok()) return mapped.status();
  result.mapped = mapped.take();

  result.placement =
      place(result.synthesized, result.mapped, device, options.place);
  if (options.detailed_router) {
    DetailedRouteResult detailed =
        detailed_route(result.synthesized, result.mapped, result.placement,
                       device, options.detailed);
    result.routing = std::move(detailed.routing);
    result.route_iterations = detailed.iterations;
    result.route_converged = detailed.converged;
  } else {
    result.routing = route(result.synthesized, result.mapped, result.placement,
                           device, options.route);
  }
  auto timing = analyze_timing(result.synthesized, result.mapped,
                               result.routing, device,
                               options.target_period_ns);
  if (!timing.ok()) return timing.status();
  result.timing = timing.take();
  result.power = estimate_power(result.mapped, device, result.timing.fmax_mhz);
  return result;
}

Result<PackResult> pack_backend(const MapResult& map, const NxDevice& device) {
  PackResult result;
  result.bitstream =
      pack_bitstream(map.synthesized, map.mapped, map.placement, device);
  // Pack self-check: the image BL1 will program must verify here first.
  auto info = verify_bitstream(result.bitstream);
  if (!info.ok()) {
    return Status::Error(ErrorCode::kInternal,
                         "packed bitstream failed self-verification: " +
                             info.status().to_string());
  }
  result.info = info.take();
  return result;
}

Result<BackendResult> run_backend(const hw::Module& module,
                                  const NxDevice& device,
                                  const BackendOptions& options) {
  auto map = run_backend_map(module, device, options);
  if (!map.ok()) return map.status();
  auto pack = pack_backend(map.value(), device);
  if (!pack.ok()) return pack.status();

  BackendResult result;
  result.mapped = std::move(map.value().mapped);
  result.placement = std::move(map.value().placement);
  result.routing = std::move(map.value().routing);
  result.timing = std::move(map.value().timing);
  result.power = map.value().power;
  result.route_iterations = map.value().route_iterations;
  result.route_converged = map.value().route_converged;
  result.bitstream = std::move(pack.value().bitstream);
  result.bitstream_info = std::move(pack.value().info);
  return result;
}

std::string backend_report(const BackendResult& result, const NxDevice& device) {
  std::ostringstream out;
  const Utilization& u = result.mapped.utilization;
  out << "=== NXmap backend report (" << device.name << ") ===\n";
  out << format("utilization : %zu LUT (%.2f%%), %zu FF, %zu DSP (%.2f%%), %zu BRAM (%.2f%%)\n",
                u.luts, u.lut_pct, u.ffs, u.dsps, u.dsp_pct, u.brams, u.bram_pct);
  out << format("placement   : HPWL %.1f tiles (region %ux%u), overflow %.1f\n",
                result.placement.hpwl, result.placement.grid_side,
                result.placement.grid_side, result.placement.overflow);
  out << format("routing     : %.1f tile-hops, peak congestion %.2f, %.1f%% tiles congested\n",
                result.routing.total_wirelength, result.routing.max_congestion,
                result.routing.congested_tiles_pct);
  out << format("timing      : critical path %.2f ns -> Fmax %.1f MHz",
                result.timing.critical_path_ns, result.timing.fmax_mhz);
  if (result.timing.target_period_ns > 0) {
    out << format(" (target %.2f ns: %s, slack %.2f ns)",
                  result.timing.target_period_ns,
                  result.timing.meets_target ? "MET" : "VIOLATED",
                  result.timing.slack_ns);
  }
  out << '\n';
  out << format("power       : %.1f mW static + %.1f mW dynamic = %.1f mW @ %.1f MHz\n",
                result.power.static_mw, result.power.dynamic_mw,
                result.power.total_mw, result.power.freq_mhz);
  out << format("bitstream   : %zu bytes\n", result.bitstream.size());
  return out.str();
}

}  // namespace hermes::nx
