// Global routing estimate (paper Fig. 3: "route").
//
// Computes per-connection routed delays from Manhattan distance on the
// placed design, plus a congestion model: routing demand is spread over each
// net's bounding box; tiles over the channel capacity dilate all delays
// through them. This is a global-router-style estimate, which is what timing
// closure decisions in the real NXmap flow are first made on.
#pragma once

#include <vector>

#include "hw/netlist.hpp"
#include "nxmap/place.hpp"

namespace hermes::nx {

struct RouteOptions {
  /// Routing demand (wire-bits) one tile's channels sustain. Modern fabrics
  /// provide on the order of 100-200 tracks per channel.
  double channel_capacity = 160.0;
};

struct Routing {
  /// Routed delay (ns) from the driver of `wire` to its consumers.
  std::vector<double> wire_delay_ns;
  double total_wirelength = 0.0;   ///< tile hops summed over nets
  double max_congestion = 0.0;     ///< peak demand / capacity
  double congested_tiles_pct = 0.0;
};

Routing route(const hw::Module& module, const MappedDesign& design,
              const Placement& placement, const NxDevice& device,
              const RouteOptions& options = {});

}  // namespace hermes::nx
