// Power model.
//
// Supports the paper's headline comparison ("power consumption four times
// smaller" than current rad-hard FPGAs): dynamic power scales with used
// resources, clock frequency and an activity factor; static power is a
// device constant. Both sides of the CLAIM-SPEED benchmark run the same
// mapped design through this model on the two device targets.
#pragma once

#include "nxmap/techmap.hpp"

namespace hermes::nx {

struct PowerReport {
  double static_mw = 0.0;
  double dynamic_mw = 0.0;
  double total_mw = 0.0;
  double freq_mhz = 0.0;
};

/// Estimates power at `freq_mhz` with the given switching activity
/// (fraction of nodes toggling per cycle, default 12.5%).
PowerReport estimate_power(const MappedDesign& design, const NxDevice& device,
                           double freq_mhz, double activity = 0.125);

}  // namespace hermes::nx
