// Static timing analysis (NXmap "includes both synthesis and static timing
// analysis tools", HERMES Sec. II).
//
// Longest register-to-register (or port-to-register) combinational path over
// the mapped, placed and routed design: cell internal delays from the tech
// map, interconnect delays from the router. Reports the critical path and
// the resulting Fmax; checks an optional target clock.
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "hw/netlist.hpp"
#include "nxmap/route.hpp"
#include "nxmap/techmap.hpp"

namespace hermes::nx {

struct TimingReport {
  double critical_path_ns = 0.0;   ///< worst comb path incl. setup + skew
  double fmax_mhz = 0.0;
  bool meets_target = true;
  double target_period_ns = 0.0;
  double slack_ns = 0.0;
  std::vector<std::string> critical_path;  ///< cell names along the worst path
};

/// Runs STA. `target_period_ns` == 0 skips the timing check (report only).
Result<TimingReport> analyze_timing(const hw::Module& module,
                                    const MappedDesign& design,
                                    const Routing& routing,
                                    const NxDevice& device,
                                    double target_period_ns = 0.0);

}  // namespace hermes::nx
