// Placement (paper Fig. 3: "place").
//
// Simulated-annealing placement of mapped instances onto the logic tile
// grid, minimizing half-perimeter wirelength with a quadratic penalty on
// tile capacity overflow. Deterministic for a fixed seed.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "hw/netlist.hpp"
#include "nxmap/techmap.hpp"

namespace hermes::nx {

struct PlaceOptions {
  unsigned iterations_per_instance = 64;  ///< SA moves ~ N * this
  double initial_temp = 10.0;
  double cooling = 0.92;
  std::uint64_t seed = 7;
};

struct Placement {
  /// Tile (x, y) of each mapped instance.
  std::vector<std::pair<unsigned, unsigned>> location;
  double hpwl = 0.0;          ///< final half-perimeter wirelength (tiles)
  double overflow = 0.0;      ///< residual capacity overflow (0 = legal)
  unsigned grid_side = 0;     ///< placement region actually used
};

Placement place(const hw::Module& module, const MappedDesign& design,
                const NxDevice& device, const PlaceOptions& options = {});

}  // namespace hermes::nx
