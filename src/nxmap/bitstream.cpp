#include "nxmap/bitstream.hpp"

#include <cstring>
#include <map>

#include "common/crc.hpp"
#include "common/strings.hpp"

namespace hermes::nx {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t value) {
  out.push_back(static_cast<std::uint8_t>(value));
  out.push_back(static_cast<std::uint8_t>(value >> 8));
  out.push_back(static_cast<std::uint8_t>(value >> 16));
  out.push_back(static_cast<std::uint8_t>(value >> 24));
}

std::uint32_t get_u32(std::span<const std::uint8_t> data, std::size_t offset) {
  return static_cast<std::uint32_t>(data[offset]) |
         (static_cast<std::uint32_t>(data[offset + 1]) << 8) |
         (static_cast<std::uint32_t>(data[offset + 2]) << 16) |
         (static_cast<std::uint32_t>(data[offset + 3]) << 24);
}

std::uint32_t device_id_of(const NxDevice& device) {
  return crc32(device.name.data(), device.name.size());
}

}  // namespace

std::size_t ParsedBitstream::total_words() const {
  std::size_t total = 0;
  for (const BitstreamFrame& frame : frames) total += frame.words.size();
  return total;
}

std::uint32_t frame_crc(std::uint32_t column,
                        std::span<const std::uint32_t> words) {
  std::vector<std::uint8_t> encoded;
  encoded.reserve(8 + words.size() * 4);
  put_u32(encoded, column);
  put_u32(encoded, static_cast<std::uint32_t>(words.size()));
  for (std::uint32_t word : words) put_u32(encoded, word);
  return crc32(encoded.data(), encoded.size());
}

std::vector<std::uint8_t> pack_raw_bitstream(
    std::uint32_t device_id, std::span<const BitstreamFrame> frames) {
  std::vector<std::uint8_t> out;
  put_u32(out, kBitstreamMagic);
  put_u32(out, device_id);
  put_u32(out, static_cast<std::uint32_t>(frames.size()));
  for (const BitstreamFrame& frame : frames) {
    put_u32(out, frame.column);
    put_u32(out, static_cast<std::uint32_t>(frame.words.size()));
    for (std::uint32_t word : frame.words) put_u32(out, word);
    put_u32(out, frame_crc(frame.column, frame.words));
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> pack_bitstream(const hw::Module& module,
                                         const MappedDesign& design,
                                         const Placement& placement,
                                         const NxDevice& device) {
  // Group instance configuration words by tile column.
  std::map<unsigned, std::vector<std::uint32_t>> columns;
  for (std::size_t i = 0; i < design.instances.size(); ++i) {
    const MappedInstance& inst = design.instances[i];
    const auto [x, y] =
        i < placement.location.size() ? placement.location[i]
                                      : std::pair<unsigned, unsigned>{0, 0};
    // Deterministic "configuration word" per instance: identity + geometry.
    std::uint32_t word = static_cast<std::uint32_t>(inst.kind) << 28;
    word |= (y & 0x3FFu) << 18;
    word |= (inst.luts & 0xFFu) << 10;
    word |= static_cast<std::uint32_t>(i) & 0x3FFu;
    columns[x].push_back(word);
    // LUT truth-table payload: one word per LUT.
    if (inst.cell_index != SIZE_MAX) {
      const hw::Cell& cell = module.cells()[inst.cell_index];
      const std::uint32_t mask =
          crc32(&cell.kind, sizeof cell.kind) ^ static_cast<std::uint32_t>(i);
      for (unsigned l = 0; l < inst.luts; ++l) {
        columns[x].push_back(mask + l);
      }
    }
  }

  std::vector<BitstreamFrame> frames;
  frames.reserve(columns.size());
  for (auto& [col, words] : columns) {
    BitstreamFrame frame;
    frame.column = col;
    frame.words = std::move(words);
    frames.push_back(std::move(frame));
  }
  return pack_raw_bitstream(device_id_of(device), frames);
}

Result<BitstreamInfo> verify_bitstream(std::span<const std::uint8_t> image) {
  if (image.size() < 16) {
    return Status::Error(ErrorCode::kIntegrityError, "bitstream truncated");
  }
  if (get_u32(image, 0) != kBitstreamMagic) {
    return Status::Error(ErrorCode::kIntegrityError, "bad bitstream magic");
  }
  const std::uint32_t global_crc = get_u32(image, image.size() - 4);
  if (crc32(image.data(), image.size() - 4) != global_crc) {
    return Status::Error(ErrorCode::kIntegrityError, "global CRC mismatch");
  }

  BitstreamInfo info;
  info.device_id = get_u32(image, 4);
  const std::uint32_t frames = get_u32(image, 8);
  std::size_t offset = 12;
  for (std::uint32_t f = 0; f < frames; ++f) {
    if (offset + 8 > image.size() - 4) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("frame %u truncated", f));
    }
    const std::uint32_t words = get_u32(image, offset + 4);
    const std::size_t frame_bytes = 8 + static_cast<std::size_t>(words) * 4;
    if (offset + frame_bytes + 4 > image.size() - 4 + 1) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("frame %u payload truncated", f));
    }
    const std::uint32_t crc = get_u32(image, offset + frame_bytes);
    if (crc32(image.data() + offset, frame_bytes) != crc) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("frame %u CRC mismatch", f));
    }
    offset += frame_bytes + 4;
  }
  info.frames = frames;
  info.bytes = image.size();
  return info;
}

Result<ParsedBitstream> parse_bitstream(std::span<const std::uint8_t> image) {
  auto info = verify_bitstream(image);
  if (!info.ok()) return info.status();

  ParsedBitstream parsed;
  parsed.device_id = info.value().device_id;
  std::size_t offset = kBitstreamHeaderBytes;
  for (unsigned f = 0; f < info.value().frames; ++f) {
    BitstreamFrame frame;
    frame.column = get_u32(image, offset);
    const std::uint32_t words = get_u32(image, offset + 4);
    frame.words.reserve(words);
    for (std::uint32_t w = 0; w < words; ++w) {
      frame.words.push_back(get_u32(image, offset + 8 + w * 4));
    }
    frame.crc = get_u32(image, offset + 8 + words * 4);
    frame.offset = offset;
    frame.bytes = 8 + static_cast<std::size_t>(words) * 4 + 4;
    offset += frame.bytes;
    parsed.frames.push_back(std::move(frame));
  }
  return parsed;
}

}  // namespace hermes::nx
