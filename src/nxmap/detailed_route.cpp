#include "nxmap/detailed_route.hpp"

#include <algorithm>
#include <cmath>
#include <queue>

namespace hermes::nx {
namespace {

/// One net: the driver tile, every sink tile, and the demand it puts on a
/// tile it crosses (its bit width).
struct Net {
  hw::WireId wire;
  std::size_t driver_node;
  std::vector<std::size_t> sink_nodes;
  double bits;
  std::vector<std::size_t> tree;     ///< routed tile nodes (driver included)
  std::vector<std::size_t> charged;  ///< tree nodes that consumed channel capacity

  [[nodiscard]] bool is_terminal(std::size_t node) const {
    if (node == driver_node) return true;
    return std::find(sink_nodes.begin(), sink_nodes.end(), node) !=
           sink_nodes.end();
  }
};

}  // namespace

DetailedRouteResult detailed_route(const hw::Module& module,
                                   const MappedDesign& design,
                                   const Placement& placement,
                                   const NxDevice& device,
                                   const DetailedRouteOptions& options) {
  DetailedRouteResult result;
  result.routing.wire_delay_ns.assign(module.wire_count(), 0.0);

  const unsigned side = std::max(placement.grid_side, 1u);
  const std::size_t nodes = static_cast<std::size_t>(side) * side;
  auto node_of = [&](std::size_t instance) {
    const auto [x, y] = placement.location[instance];
    return static_cast<std::size_t>(y) * side + x;
  };

  // Build nets: driver instance + consumer instances per wire.
  std::vector<Net> nets;
  {
    std::vector<int> net_of_wire(module.wire_count(), -1);
    for (std::size_t c = 0; c < module.cells().size(); ++c) {
      for (hw::WireId wire : module.cells()[c].inputs) {
        const std::size_t driver = design.driver_of_wire[wire];
        if (driver == SIZE_MAX) continue;
        if (net_of_wire[wire] < 0) {
          Net net;
          net.wire = wire;
          net.driver_node = node_of(driver);
          net.bits = module.wire_width(wire);
          nets.push_back(std::move(net));
          net_of_wire[wire] = static_cast<int>(nets.size() - 1);
        }
        const std::size_t sink = node_of(c);
        Net& net = nets[net_of_wire[wire]];
        if (sink != net.driver_node &&
            std::find(net.sink_nodes.begin(), net.sink_nodes.end(), sink) ==
                net.sink_nodes.end()) {
          net.sink_nodes.push_back(sink);
        }
      }
    }
  }

  std::vector<double> usage(nodes, 0.0);
  std::vector<double> history(nodes, 0.0);
  const double capacity = options.channel_capacity;

  auto node_cost = [&](std::size_t node) {
    const double over = usage[node] + 1.0 - capacity;
    const double present =
        over > 0 ? 1.0 + options.present_factor * over : 1.0;
    return present + options.history_factor * history[node];
  };

  // Route one net as a Steiner tree: grow from the current tree to each
  // sink with Dijkstra over the 4-neighbour grid.
  std::vector<double> dist(nodes);
  std::vector<int> prev(nodes);
  auto route_net = [&](Net& net) {
    net.tree.assign(1, net.driver_node);
    for (std::size_t target : net.sink_nodes) {
      if (std::find(net.tree.begin(), net.tree.end(), target) != net.tree.end()) {
        continue;
      }
      std::fill(dist.begin(), dist.end(), 1e30);
      std::fill(prev.begin(), prev.end(), -1);
      using Item = std::pair<double, std::size_t>;
      std::priority_queue<Item, std::vector<Item>, std::greater<>> frontier;
      for (std::size_t seed : net.tree) {
        dist[seed] = 0.0;
        frontier.push({0.0, seed});
      }
      while (!frontier.empty()) {
        const auto [d, node] = frontier.top();
        frontier.pop();
        if (d > dist[node]) continue;
        if (node == target) break;
        const unsigned x = static_cast<unsigned>(node % side);
        const unsigned y = static_cast<unsigned>(node / side);
        const int neighbors[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
        for (const auto& [dx, dy] : neighbors) {
          const int nx = static_cast<int>(x) + dx;
          const int ny = static_cast<int>(y) + dy;
          if (nx < 0 || ny < 0 || nx >= static_cast<int>(side) ||
              ny >= static_cast<int>(side)) {
            continue;
          }
          const std::size_t next = static_cast<std::size_t>(ny) * side + nx;
          const double nd = d + node_cost(next);
          if (nd < dist[next]) {
            dist[next] = nd;
            prev[next] = static_cast<int>(node);
            frontier.push({nd, next});
          }
        }
      }
      // Walk back from the sink into the tree. Channel capacity is charged
      // on intermediate nodes only: a net's own terminals connect through
      // the tile's dedicated pin interconnect, and no amount of negotiation
      // could move an endpoint anyway.
      std::size_t cursor = target;
      while (cursor != SIZE_MAX &&
             std::find(net.tree.begin(), net.tree.end(), cursor) ==
                 net.tree.end()) {
        net.tree.push_back(cursor);
        if (!net.is_terminal(cursor)) {
          usage[cursor] += net.bits;
          net.charged.push_back(cursor);
        }
        cursor = prev[cursor] < 0 ? SIZE_MAX
                                  : static_cast<std::size_t>(prev[cursor]);
      }
    }
  };

  auto rip_up = [&](Net& net) {
    for (std::size_t node : net.charged) {
      usage[node] -= net.bits;
    }
    net.charged.clear();
    net.tree.clear();
  };

  // Negotiation loop.
  bool converged = false;
  unsigned iteration = 0;
  for (; iteration < options.max_iterations; ++iteration) {
    for (Net& net : nets) {
      if (!net.tree.empty()) rip_up(net);
      route_net(net);
    }
    std::size_t overused = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
      if (usage[node] > capacity) {
        ++overused;
        // Classic PathFinder: a unit of history pressure per overused
        // iteration (plus the relative excess), so even barely-over tiles
        // accumulate enough cost to force a detour within a few rounds.
        history[node] += 1.0 + (usage[node] - capacity) / capacity;
      }
    }
    result.overused_tiles = overused;
    if (overused == 0) {
      converged = true;
      break;
    }
  }
  result.iterations = std::min(iteration + 1, options.max_iterations);
  result.converged = converged;

  // Delays and metrics from the final trees.
  double peak = 0.0;
  std::size_t congested = 0;
  for (std::size_t node = 0; node < nodes; ++node) {
    peak = std::max(peak, usage[node] / capacity);
    if (usage[node] > capacity) ++congested;
  }
  result.routing.max_congestion = peak;
  result.routing.congested_tiles_pct =
      nodes ? 100.0 * static_cast<double>(congested) / static_cast<double>(nodes)
            : 0.0;

  for (const Net& net : nets) {
    result.total_tree_nodes += net.tree.size();
    const double hops =
        net.tree.empty() ? 0.0 : static_cast<double>(net.tree.size() - 1);
    result.routing.total_wirelength += hops;
    result.routing.wire_delay_ns[net.wire] =
        device.target.routing_delay_ns * (0.5 + 0.25 * hops);
  }
  return result;
}

}  // namespace hermes::nx
