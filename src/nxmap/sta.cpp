#include "nxmap/sta.hpp"

#include <algorithm>
#include <queue>

#include "common/strings.hpp"

namespace hermes::nx {

Result<TimingReport> analyze_timing(const hw::Module& module,
                                    const MappedDesign& design,
                                    const Routing& routing,
                                    const NxDevice& device,
                                    double target_period_ns) {
  const auto& cells = module.cells();

  // Arrival time per wire. Sources (register/RAM outputs, ports, consts)
  // start at their launch delay; combinational cells propagate in topo order.
  std::vector<double> arrival(module.wire_count(), 0.0);
  std::vector<std::size_t> critical_pred_cell(module.wire_count(), SIZE_MAX);

  // Topological order over comb cells (same algorithm as the simulator).
  std::vector<std::size_t> driver_of(module.wire_count(), SIZE_MAX);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    for (hw::WireId wire : cells[i].outputs) driver_of[wire] = i;
  }
  std::vector<unsigned> pending(cells.size(), 0);
  std::vector<std::vector<std::size_t>> dependents(cells.size());
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (hw::is_sequential(cells[i].kind)) continue;
    unsigned deps = 0;
    for (hw::WireId wire : cells[i].inputs) {
      const std::size_t driver = driver_of[wire];
      if (driver == SIZE_MAX || hw::is_sequential(cells[driver].kind)) continue;
      ++deps;
      dependents[driver].push_back(i);
    }
    pending[i] = deps;
    if (deps == 0) ready.push(i);
  }

  // Launch delays: sequential outputs start after clock-to-q (modeled inside
  // bram_access for RAM reads; registers launch at 0 + routing).
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!hw::is_sequential(cells[i].kind) || cells[i].outputs.empty()) continue;
    const double q_delay = cells[i].kind == hw::CellKind::kRamRead
                               ? device.target.bram_access_ns * 0.5
                               : 0.0;
    for (hw::WireId wire : cells[i].outputs) arrival[wire] = q_delay;
  }

  double worst = 0.0;
  std::size_t worst_cell = SIZE_MAX;

  std::size_t processed = 0;
  while (!ready.empty()) {
    const std::size_t index = ready.front();
    ready.pop();
    ++processed;
    const hw::Cell& cell = cells[index];
    double input_arrival = 0.0;
    for (hw::WireId wire : cell.inputs) {
      input_arrival = std::max(
          input_arrival, arrival[wire] + routing.wire_delay_ns[wire]);
    }
    const double out_arrival =
        input_arrival + design.instances[index].internal_delay_ns;
    for (hw::WireId wire : cell.outputs) {
      arrival[wire] = out_arrival;
      critical_pred_cell[wire] = index;
    }
    if (out_arrival > worst) {
      worst = out_arrival;
      worst_cell = index;
    }
    for (std::size_t dep : dependents[index]) {
      if (--pending[dep] == 0) ready.push(dep);
    }
  }
  std::size_t comb_count = 0;
  for (const hw::Cell& cell : cells) {
    if (!hw::is_sequential(cell.kind)) ++comb_count;
  }
  if (processed != comb_count) {
    return Status::Error(ErrorCode::kInternal, "combinational loop during STA");
  }

  // Also account for paths ending at sequential inputs.
  for (const hw::Cell& cell : cells) {
    if (!hw::is_sequential(cell.kind)) continue;
    for (hw::WireId wire : cell.inputs) {
      const double at = arrival[wire] + routing.wire_delay_ns[wire];
      if (at > worst) {
        worst = at;
        worst_cell = driver_of[wire];
      }
    }
  }

  TimingReport report;
  report.critical_path_ns =
      worst + device.target.ff_setup_ns + device.target.clock_skew_ns;
  report.fmax_mhz =
      report.critical_path_ns > 0 ? 1000.0 / report.critical_path_ns : 1e6;
  report.target_period_ns = target_period_ns;
  if (target_period_ns > 0) {
    report.slack_ns = target_period_ns - report.critical_path_ns;
    report.meets_target = report.slack_ns >= 0;
  }

  // Reconstruct the critical path (bounded length for the report).
  std::size_t cursor = worst_cell;
  for (int depth = 0; depth < 16 && cursor != SIZE_MAX; ++depth) {
    const hw::Cell& cell = cells[cursor];
    report.critical_path.push_back(
        cell.name.empty() ? hw::to_string(cell.kind) : cell.name);
    // Step to the input with the latest arrival.
    std::size_t next = SIZE_MAX;
    double best = -1.0;
    for (hw::WireId wire : cell.inputs) {
      if (arrival[wire] > best) {
        best = arrival[wire];
        next = critical_pred_cell[wire];
      }
    }
    cursor = next;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

}  // namespace hermes::nx
