#include "boot/spacewire.hpp"

#include "common/crc.hpp"
#include "common/strings.hpp"

namespace hermes::boot {

void SpaceWireLink::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) {
    pt_corrupt_ = fault::kNoFaultPoint;
    pt_drop_ = fault::kNoFaultPoint;
    return;
  }
  pt_corrupt_ = injector_->register_point("spw.frame.corrupt");
  pt_drop_ = injector_->register_point("spw.frame.drop");
}

bool SpaceWireLink::transfer(SpwPacket& packet, std::uint64_t& cycles) {
  // Frame: type + payload + CRC16 over both.
  std::vector<std::uint8_t> frame;
  frame.push_back(packet.type);
  frame.insert(frame.end(), packet.payload.begin(), packet.payload.end());
  const std::uint16_t crc = crc16_ccitt(frame);
  frame.push_back(static_cast<std::uint8_t>(crc >> 8));
  frame.push_back(static_cast<std::uint8_t>(crc));

  cycles += timing_.packet_overhead +
            static_cast<std::uint64_t>(frame.size()) * timing_.cycles_per_byte;

  // Injected loss: the frame never reaches the receiver (cycles were still
  // burned on the wire); the caller's retry loop re-sends it.
  if (injector_ && injector_->should_fire(pt_drop_)) {
    ++drops_;
    return false;
  }

  // Injected upset: flip bits in the framed bytes, CRC included — the
  // receiver-side CRC check below is what detects it.
  if (injector_ && injector_->should_fire(pt_corrupt_)) {
    injector_->mutate_bytes(pt_corrupt_, frame);
  }

  // Wire corruption.
  if (ber_ > 0) {
    for (std::size_t byte = 0; byte < frame.size(); ++byte) {
      for (unsigned bit = 0; bit < 8; ++bit) {
        if (rng_.next_bool(ber_)) {
          frame[byte] ^= static_cast<std::uint8_t>(1u << bit);
        }
      }
    }
  }

  // Receiver: re-check CRC.
  const std::uint16_t received =
      static_cast<std::uint16_t>((frame[frame.size() - 2] << 8) |
                                 frame[frame.size() - 1]);
  frame.resize(frame.size() - 2);
  if (crc16_ccitt(frame) != received) {
    ++crc_errors_;
    return false;
  }
  packet.type = frame[0];
  packet.payload.assign(frame.begin() + 1, frame.end());
  return true;
}

Result<std::vector<std::uint8_t>> SpaceWireLink::fetch(std::string_view name,
                                                       std::uint64_t& cycles,
                                                       unsigned max_retries) {
  const std::uint64_t deadline = cycles + timing_.deadline_cycles;
  const auto it = objects_.find(std::string(name));
  // The request packet still crosses the wire even for unknown objects.
  SpwPacket request;
  request.type = kSpwOpRequest;
  request.payload.assign(name.begin(), name.end());
  if (!transfer(request, cycles)) {
    // A corrupted request is simply re-sent.
  }
  if (it == objects_.end()) {
    SpwPacket nack;
    nack.type = kSpwOpNack;
    transfer(nack, cycles);
    return Status::Error(ErrorCode::kNotFound,
                         format("SpaceWire object '%.*s' not hosted",
                                static_cast<int>(name.size()), name.data()));
  }

  // Chunked transfer: 256-byte data packets, each retried on CRC failure.
  constexpr std::size_t kChunk = 256;
  const std::vector<std::uint8_t>& object = it->second;
  std::vector<std::uint8_t> received;
  received.reserve(object.size());
  for (std::size_t offset = 0; offset < object.size(); offset += kChunk) {
    const std::size_t n = std::min(kChunk, object.size() - offset);
    bool delivered = false;
    for (unsigned attempt = 0; attempt <= max_retries; ++attempt) {
      if (timing_.deadline_cycles != 0 && cycles >= deadline) {
        return Status::Error(ErrorCode::kDeadlineExceeded,
                             "SpaceWire fetch exceeded its cycle deadline");
      }
      SpwPacket data;
      data.type = offset + n >= object.size() ? kSpwOpEnd : kSpwOpData;
      data.payload.assign(object.begin() + offset, object.begin() + offset + n);
      if (transfer(data, cycles)) {
        received.insert(received.end(), data.payload.begin(), data.payload.end());
        delivered = true;
        break;
      }
      ++retries_;
    }
    if (!delivered) {
      return Status::Error(ErrorCode::kIntegrityError,
                           "SpaceWire chunk exceeded retry budget");
    }
  }
  return received;
}

}  // namespace hermes::boot
