#include "boot/flash.hpp"

#include <cassert>

#include "fault/tmr.hpp"

namespace hermes::boot {

void FlashDevice::program(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (addr + i < store_.size()) store_[addr + i] = data[i];
  }
}

std::uint64_t FlashDevice::read(std::uint64_t addr,
                                std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = peek(addr + i);
  }
  const std::uint64_t words = (out.size() + 3) / 4;
  return timing_.setup_cycles + words * timing_.cycles_per_word;
}

void FlashDevice::inject_bitflips(std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t byte = rng.next_below(store_.size());
    const unsigned bit = static_cast<unsigned>(rng.next_below(8));
    store_[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

FlashBank::FlashBank(std::size_t bytes, unsigned replicas, FlashTiming timing) {
  assert(replicas == 1 || replicas == 3);
  for (unsigned i = 0; i < replicas; ++i) {
    devices_.emplace_back(bytes, timing);
  }
}

void FlashBank::program(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (FlashDevice& device : devices_) device.program(addr, data);
}

FlashBank::ReadResult FlashBank::read(std::uint64_t addr,
                                      std::span<std::uint8_t> out) const {
  ReadResult result;
  if (devices_.size() == 1) {
    result.cycles = devices_[0].read(addr, out);
    return result;
  }
  std::vector<std::uint8_t> a(out.size()), b(out.size()), c(out.size());
  result.cycles += devices_[0].read(addr, a);
  result.cycles += devices_[1].read(addr, b);
  result.cycles += devices_[2].read(addr, c);
  for (std::size_t i = 0; i < out.size(); ++i) {
    const fault::VoteResult vote = fault::vote_bitwise(a[i], b[i], c[i]);
    out[i] = static_cast<std::uint8_t>(vote.value);
    if (vote.corrected) ++result.corrected_bytes;
  }
  return result;
}

}  // namespace hermes::boot
