#include "boot/flash.hpp"

#include <cassert>

#include "fault/tmr.hpp"

namespace hermes::boot {

void FlashDevice::program(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (addr + i < store_.size()) store_[addr + i] = data[i];
  }
}

std::uint64_t FlashDevice::read(std::uint64_t addr,
                                std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = peek(addr + i);
  }
  const std::uint64_t words = (out.size() + 3) / 4;
  return timing_.setup_cycles + words * timing_.cycles_per_word;
}

void FlashDevice::inject_bitflips(std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t byte = rng.next_below(store_.size());
    const unsigned bit = static_cast<unsigned>(rng.next_below(8));
    store_[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

FlashBank::FlashBank(std::size_t bytes, unsigned replicas, FlashTiming timing) {
  assert(replicas == 1 || replicas == 3);
  for (unsigned i = 0; i < replicas; ++i) {
    devices_.emplace_back(bytes, timing);
  }
}

void FlashBank::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (injector_ == nullptr) {
    pt_rot_replica_ = fault::kNoFaultPoint;
    pt_rot_voted_ = fault::kNoFaultPoint;
    return;
  }
  pt_rot_replica_ = injector_->register_point("flash.rot.replica");
  pt_rot_voted_ = injector_->register_point("flash.rot.voted");
}

void FlashBank::program(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (FlashDevice& device : devices_) device.program(addr, data);
}

FlashBank::ReadResult FlashBank::read(std::uint64_t addr,
                                      std::span<std::uint8_t> out) const {
  ReadResult result;
  if (devices_.size() == 1) {
    result.cycles = devices_[0].read(addr, out);
    if (injector_ && injector_->should_fire(pt_rot_voted_)) {
      injector_->mutate_bytes(pt_rot_voted_, out);
    }
    return result;
  }
  std::vector<std::uint8_t> a(out.size()), b(out.size()), c(out.size());
  result.cycles += devices_[0].read(addr, a);
  result.cycles += devices_[1].read(addr, b);
  result.cycles += devices_[2].read(addr, c);
  if (injector_ && injector_->should_fire(pt_rot_replica_)) {
    // Rot one copy's read data: the bitwise vote masks it (and counts it).
    injector_->mutate_bytes(pt_rot_replica_, a);
  }
  for (std::size_t i = 0; i < out.size(); ++i) {
    const fault::VoteResult vote = fault::vote_bitwise(a[i], b[i], c[i]);
    out[i] = static_cast<std::uint8_t>(vote.value);
    if (vote.corrected) ++result.corrected_bytes;
  }
  if (injector_ && injector_->should_fire(pt_rot_voted_)) {
    // Rot the post-vote data: TMR cannot help; the BL1 digest check must.
    injector_->mutate_bytes(pt_rot_voted_, out);
  }
  return result;
}

}  // namespace hermes::boot
