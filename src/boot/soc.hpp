// NG-ULTRA SoC model for the boot chain.
//
// Byte-accurate memory map (TCM / SRAM / DDR), device bring-up state (PLLs,
// DDR controller, flash controller, SpaceWire controller, caches, MPU) and
// the eFPGA configuration port. BL0/BL1 manipulate exactly this state, so
// the boot sequence of paper Fig. 5 is reproduced step by step, and skipping
// a mandatory init step is an observable failure (e.g. touching DDR before
// the controller is up).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.hpp"
#include "hv/types.hpp"
#include "nxmap/bitstream.hpp"

namespace hermes::boot {

struct MemoryMap {
  static constexpr std::uint64_t kTcmBase = 0x0000'0000;
  static constexpr std::uint64_t kTcmSize = 64 * 1024;
  static constexpr std::uint64_t kSramBase = 0x1000'0000;
  static constexpr std::uint64_t kSramSize = 1024 * 1024;
  static constexpr std::uint64_t kDdrBase = 0x8000'0000;
};

/// One MPU region descriptor (R52-style, region-based).
struct MpuRegion {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  bool writable = true;
};

class Soc {
 public:
  explicit Soc(std::size_t ddr_bytes = 8 * 1024 * 1024)
      : tcm_(MemoryMap::kTcmSize, 0),
        sram_(MemoryMap::kSramSize, 0),
        ddr_(ddr_bytes, 0) {}

  // ---- device bring-up state (set by the boot stages) ----
  bool cpu0_initialized = false;   ///< registers, caches, exception vectors
  bool pll_locked = false;
  bool ddr_ready = false;
  bool flash_ready = false;
  bool spw_ready = false;
  bool tcm_enabled = false;
  std::vector<MpuRegion> mpu;
  bool mpu_enabled = false;
  unsigned cores_released = 1;     ///< CPU0 runs first; BL2/app releases the rest

  // ---- eFPGA configuration port ----
  bool efpga_programmed = false;
  std::uint32_t efpga_device_id = 0;
  unsigned efpga_frames = 0;

  // ---- cycle accounting ----
  std::uint64_t cycles = 0;
  void charge(std::uint64_t n) { cycles += n; }

  // ---- memory access through the map ----
  /// Fails when the target region's controller is not initialized or the
  /// (enabled) MPU forbids the access.
  Status write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);
  Status read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Programs the eFPGA from a bitstream image (integrity-checked).
  Status program_efpga(std::span<const std::uint8_t> bitstream);

  [[nodiscard]] std::size_t ddr_size() const { return ddr_.size(); }

 private:
  Status resolve(std::uint64_t addr, std::uint64_t bytes, bool write,
                 std::vector<std::uint8_t> const** region,
                 std::uint64_t* offset) const;

  std::vector<std::uint8_t> tcm_, sram_, ddr_;
};

}  // namespace hermes::boot
