// NG-ULTRA SoC model for the boot chain.
//
// Byte-accurate memory map (TCM / SRAM / DDR), device bring-up state (PLLs,
// DDR controller, flash controller, SpaceWire controller, caches, MPU) and
// the eFPGA configuration port. BL0/BL1 manipulate exactly this state, so
// the boot sequence of paper Fig. 5 is reproduced step by step, and skipping
// a mandatory init step is an observable failure (e.g. touching DDR before
// the controller is up).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/cow_memory.hpp"
#include "common/status.hpp"
#include "fault/injector.hpp"
#include "fault/scrub_memory.hpp"
#include "fdir/event.hpp"
#include "hv/types.hpp"
#include "nxmap/bitstream.hpp"

namespace hermes::boot {

struct MemoryMap {
  static constexpr std::uint64_t kTcmBase = 0x0000'0000;
  static constexpr std::uint64_t kTcmSize = 64 * 1024;
  static constexpr std::uint64_t kSramBase = 0x1000'0000;
  static constexpr std::uint64_t kSramSize = 1024 * 1024;
  static constexpr std::uint64_t kDdrBase = 0x8000'0000;
};

/// One MPU region descriptor (R52-style, region-based).
struct MpuRegion {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  bool writable = true;
};

/// Knobs of the eFPGA programming-path recovery ladder.
struct EfpgaProgConfig {
  /// Re-writes allowed per frame (and for the header) after a failed
  /// readback before programming escalates to kDeadlineExceeded (the
  /// bounded-retry budget is a deadline in disguise).
  unsigned rewrite_budget = 4;
  /// Idle cycles before re-write attempt n (doubles each attempt), mirroring
  /// the AXI retry backoff.
  std::uint64_t rewrite_backoff_cycles = 16;
  /// Cycles per configuration word written or read back.
  std::uint64_t cycles_per_word = 1;
};

/// Counters of the eFPGA programming path and configuration-memory scrub —
/// the observable record of every upset hit, caught, and repaired.
struct EfpgaStats {
  std::uint64_t frames_programmed = 0;
  std::uint64_t frame_crc_mismatches = 0;  ///< readback caught a bad/lost write
  std::uint64_t frame_rewrites = 0;        ///< bounded re-writes taken
  std::uint64_t header_rewrites = 0;
  std::uint64_t prog_failures = 0;         ///< re-write budget exhausted
  std::uint64_t scrub_passes = 0;
  std::uint64_t scrub_corrected = 0;       ///< EDAC single-bit corrections
  std::uint64_t scrub_uncorrectable = 0;   ///< double upsets detected
  std::uint64_t frames_reprogrammed = 0;   ///< uncorrectable -> frame re-write
  std::uint64_t scrub_silent = 0;          ///< must stay zero: silent rot
};

class Soc;

/// A frozen copy-on-write image of a Soc — device bring-up state, memory
/// contents and eFPGA configuration at the moment snapshot() was taken.
/// Cheap to hold (memory pages and config frames are shared, not copied) and
/// immutable: forks taken from it later see the same state no matter what
/// the original Soc did in between. Carries no injector attachment.
class SocSnapshot {
 public:
  SocSnapshot() = default;
  [[nodiscard]] bool valid() const { return state_ != nullptr; }

 private:
  friend class Soc;
  std::shared_ptr<const Soc> state_;
};

class Soc {
 public:
  explicit Soc(std::size_t ddr_bytes = 8 * 1024 * 1024)
      : tcm_(MemoryMap::kTcmSize, 0),
        sram_(MemoryMap::kSramSize, 0),
        ddr_(ddr_bytes, 0) {}

  // ---- device bring-up state (set by the boot stages) ----
  bool cpu0_initialized = false;   ///< registers, caches, exception vectors
  bool pll_locked = false;
  bool ddr_ready = false;
  bool flash_ready = false;
  bool spw_ready = false;
  bool tcm_enabled = false;
  std::vector<MpuRegion> mpu;
  bool mpu_enabled = false;
  unsigned cores_released = 1;     ///< CPU0 runs first; BL2/app releases the rest

  // ---- eFPGA configuration port ----
  bool efpga_programmed = false;
  std::uint32_t efpga_device_id = 0;
  unsigned efpga_frames = 0;
  EfpgaProgConfig efpga_cfg;

  // ---- cycle accounting ----
  std::uint64_t cycles = 0;
  void charge(std::uint64_t n) { cycles += n; }

  /// Registers the eFPGA programming-path injection points
  /// ("efpga.prog.header.corrupt", "efpga.prog.frame.corrupt",
  /// "efpga.prog.frame.drop" strike writes in flight; "efpga.config.rot"
  /// upsets the static configuration memory between scrub passes).
  void attach_injector(fault::FaultInjector* injector);

  /// Publishes the eFPGA programming/scrub ladder onto an FDIR bus: frame
  /// re-writes as kRetried, scrub corrections as kCorrected, detected-
  /// uncorrectable words as kUncorrectable, budget exhaustion and silent
  /// config rot as kExhausted — all stamped with the SoC cycle counter and
  /// carrying the frame index in `detail`. Like the injector, this wiring is
  /// per-instance and never captured by snapshot().
  void attach_fdir(fdir::FdirBus* bus) { fdir_ = bus; }

  // ---- memory access through the map ----
  /// Fails when the target region's controller is not initialized or the
  /// (enabled) MPU forbids the access.
  Status write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);
  Status read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Programs the eFPGA from a bitstream image. The image is integrity-
  /// checked up front (a corrupt image is rejected before any frame is
  /// written), then written frame by frame into the EDAC-protected
  /// configuration memory with a per-frame CRC readback after each write.
  /// A failed readback (in-flight corruption or a dropped write) triggers a
  /// bounded re-write with backoff; an exhausted budget escalates to
  /// kDeadlineExceeded and leaves any previously active configuration
  /// untouched.
  Status program_efpga(std::span<const std::uint8_t> bitstream);

  /// One scrub pass over the programmed configuration memory: every frame's
  /// words are read through EDAC, single-bit upsets are corrected in place,
  /// detected-uncorrectable words force a frame re-program from the retained
  /// golden configuration. Injector point "efpga.config.rot" gets one
  /// opportunity per frame to rot the raw storage first. Returns the
  /// corrected + reprogrammed word count of this pass.
  std::uint64_t scrub_efpga();

  [[nodiscard]] const EfpgaStats& efpga_stats() const { return efpga_stats_; }

  /// FNV-1a fingerprint of the decoded configuration words (frame directory
  /// included) — the chaos soak compares it against the staged bitstream to
  /// prove no corrupt frame was silently accepted.
  [[nodiscard]] std::uint64_t efpga_config_digest() const;

  [[nodiscard]] std::size_t ddr_size() const { return ddr_.size(); }

  // ---- copy-on-write state forking ----
  /// Freezes the complete SoC state. O(pages) pointer copies: memory pages
  /// and the eFPGA configuration are shared with the snapshot, then cloned
  /// lazily as either side writes. The snapshot never carries the injector
  /// attachment — injection wiring is per-instance, not state.
  [[nodiscard]] SocSnapshot snapshot() const;

  /// New Soc resuming from `snapshot` — a booted system replicated without
  /// re-running the boot chain. Forks are independent: writes in one fork
  /// (or in the original Soc) are never visible in another. The fork has no
  /// injector; call attach_injector to arm it. An invalid snapshot yields a
  /// freshly constructed Soc.
  [[nodiscard]] static Soc fork(const SocSnapshot& snapshot);

  /// Fork-and-arm in one step: loads `reseeded(plan, seed)` into `injector`
  /// and returns a fork with it attached — the replica idiom of every
  /// forked campaign (same scenario shape, fresh per-point RNG streams)
  /// without the three-line dance at each call site.
  [[nodiscard]] static Soc fork(const SocSnapshot& snapshot,
                                fault::FaultInjector& injector,
                                fault::FaultPlan plan, std::uint64_t seed);

  /// Pages of `fork` still physically shared with this Soc across all three
  /// memory regions — observability for tests and campaign diagnostics.
  [[nodiscard]] std::size_t pages_shared_with(const Soc& other) const {
    return tcm_.pages_shared_with(other.tcm_) +
           sram_.pages_shared_with(other.sram_) +
           ddr_.pages_shared_with(other.ddr_);
  }

 private:
  Status resolve(std::uint64_t addr, std::uint64_t bytes, bool write,
                 CowMemory const** region, std::uint64_t* offset) const;

  /// Clones the eFPGA configuration when a snapshot or fork still shares it
  /// (scrub passes mutate it in place).
  fault::ScrubMemory& mutable_efpga_config();

  /// Directory entry: where a frame's payload lives in config memory.
  struct EfpgaFrameDir {
    std::uint32_t column = 0;
    std::size_t offset = 0;  ///< first word index in the config memory
    std::size_t words = 0;
    std::uint32_t crc = 0;   ///< expected frame CRC from the image
  };

  CowMemory tcm_, sram_, ddr_;

  /// Shared with snapshots/forks until a scrub or re-program writes to it.
  std::shared_ptr<fault::ScrubMemory> efpga_config_;
  std::vector<EfpgaFrameDir> efpga_dir_;
  EfpgaStats efpga_stats_;
  fault::FaultInjector* injector_ = nullptr;
  fdir::FdirBus* fdir_ = nullptr;
  fault::PointId pt_header_corrupt_ = fault::kNoFaultPoint;
  fault::PointId pt_frame_corrupt_ = fault::kNoFaultPoint;
  fault::PointId pt_frame_drop_ = fault::kNoFaultPoint;
  fault::PointId pt_config_rot_ = fault::kNoFaultPoint;
};

}  // namespace hermes::boot
