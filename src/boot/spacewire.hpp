// SpaceWire link model with the custom BL1 load protocol.
//
// BL0 can fetch BL1 "remotely from the SpaceWire bus", and BL1 manages "a
// load list, either stored in Flash or remotely received from SpaceWire
// following a custom protocol" (HERMES, Sec. IV). The model is a
// packet-based link (CRC-16-framed packets, configurable byte rate) to a
// ground-support endpoint that serves named objects (the load list, software
// images, bitstreams).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/rng.hpp"
#include "fault/injector.hpp"

namespace hermes::boot {

struct SpwTiming {
  unsigned cycles_per_byte = 10;  ///< ~100 Mbit at 1 GHz reference clock
  unsigned packet_overhead = 64;  ///< header + EOP handling
  /// Upper bound on link cycles a single fetch() may consume before it gives
  /// up with kDeadlineExceeded — a wedged link ends in an error, not a hang.
  std::uint64_t deadline_cycles = 100'000'000;
};

/// One framed packet on the wire.
struct SpwPacket {
  std::uint8_t type = 0;     ///< protocol opcode
  std::vector<std::uint8_t> payload;
};

inline constexpr std::uint8_t kSpwOpRequest = 0x01;  ///< payload = object name
inline constexpr std::uint8_t kSpwOpData = 0x02;     ///< payload = object chunk
inline constexpr std::uint8_t kSpwOpEnd = 0x03;      ///< final chunk marker
inline constexpr std::uint8_t kSpwOpNack = 0x7F;     ///< object unknown

/// Serializes/parses packets with CRC-16 framing; flips bits with the given
/// error rate to model link upsets (the protocol detects them by CRC).
class SpaceWireLink {
 public:
  explicit SpaceWireLink(SpwTiming timing = {}, double bit_error_rate = 0.0,
                         std::uint64_t seed = 99)
      : timing_(timing), ber_(bit_error_rate), rng_(seed) {}

  /// The remote endpoint: objects addressable by name.
  void host_object(std::string name, std::vector<std::uint8_t> data) {
    objects_[std::move(name)] = std::move(data);
  }

  /// Registers this link's injection points ("spw.frame.corrupt" flips bits
  /// in a frame on the wire — caught by CRC; "spw.frame.drop" loses the
  /// frame entirely — the chunk retry loop re-sends it).
  void attach_injector(fault::FaultInjector* injector);

  /// Requests an object; retries CRC-failed chunks up to `max_retries`.
  /// Returns the data; accumulates the transfer cycle count in `cycles`.
  Result<std::vector<std::uint8_t>> fetch(std::string_view name,
                                          std::uint64_t& cycles,
                                          unsigned max_retries = 3);

  [[nodiscard]] std::uint64_t crc_errors_detected() const { return crc_errors_; }
  [[nodiscard]] std::uint64_t retries() const { return retries_; }
  [[nodiscard]] std::uint64_t frames_dropped() const { return drops_; }

 private:
  /// Wire transfer of one packet: charges cycles, maybe corrupts payload.
  /// Returns false if the frame CRC check failed at the receiver.
  bool transfer(SpwPacket& packet, std::uint64_t& cycles);

  SpwTiming timing_;
  double ber_;
  Rng rng_;
  std::map<std::string, std::vector<std::uint8_t>> objects_;
  std::uint64_t crc_errors_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t drops_ = 0;
  fault::FaultInjector* injector_ = nullptr;
  fault::PointId pt_corrupt_ = fault::kNoFaultPoint;
  fault::PointId pt_drop_ = fault::kNoFaultPoint;
};

}  // namespace hermes::boot
