// The NG-ULTRA boot chain: BL0 (eROM) -> BL1 (field-loadable) -> BL2/app.
//
// Reproduces the sequence of paper Fig. 5 and the BL1 functional list of
// Sec. IV: master-CPU initialization, mandatory hardware bring-up (PLLs,
// DDR, flash, SpaceWire, TCM), MPU configuration, load-list management from
// flash or SpaceWire, integrity management of deployed software (SHA-256),
// eFPGA matrix programming (integrity-checked bitstream), flash TMR
// redundancy, and generation of a boot report for the next stage.
#pragma once

#include <string>
#include <vector>

#include "boot/flash.hpp"
#include "boot/loadlist.hpp"
#include "boot/soc.hpp"
#include "boot/spacewire.hpp"
#include "common/status.hpp"

namespace hermes::boot {

enum class BootSource : std::uint8_t { kFlash, kSpaceWire };
enum class BootStage : std::uint8_t { kBl0, kBl1, kBl2, kApplication };

const char* to_string(BootSource source);
const char* to_string(BootStage stage);

/// Flash layout used by the reference configuration.
struct FlashLayout {
  static constexpr std::uint64_t kBl1Header = 0x0000;     ///< magic/size/crc
  static constexpr std::uint64_t kBl1Image = 0x0100;
  static constexpr std::uint64_t kLoadList = 0x1'0000;    ///< 64 KiB
  static constexpr std::uint64_t kImages = 0x2'0000;      ///< payload area
};

inline constexpr std::uint32_t kBl1Magic = 0x424C3148;  // "BL1H"

struct BootOptions {
  BootSource bl1_source = BootSource::kFlash;
  BootSource loadlist_source = BootSource::kFlash;
  /// On an integrity failure from flash, retry once and then fall back to
  /// fetching the object over SpaceWire.
  bool spacewire_fallback = true;
};

/// One executed boot step, for the report.
struct StepRecord {
  std::string name;
  bool ok = true;
  std::uint64_t cycles = 0;
  std::string detail;
};

/// "Generation of a BL1 boot report made available for next-stage software".
/// Besides the in-memory struct, BL1 serializes a compact binary form into
/// DDR at kBootReportAddr (CRC-protected) so BL2/application code can read
/// it after the handoff.
struct BootReport {
  std::vector<StepRecord> steps;
  std::uint64_t total_cycles = 0;
  std::uint64_t flash_corrected_bytes = 0;  ///< TMR vote corrections
  std::uint64_t spw_crc_errors = 0;
  std::uint64_t integrity_retries = 0;
  std::uint64_t spw_fallbacks = 0;  ///< flash gave up -> SpaceWire recovery
  std::uint64_t efpga_frame_rewrites = 0;  ///< programming-path readback saves
  std::uint64_t efpga_scrub_corrections = 0;  ///< config-memory words healed
  [[nodiscard]] std::string render() const;

  /// Binary serialization (magic + counters + per-step records + CRC-32).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;
};

inline constexpr std::uint32_t kBootReportMagic = 0x42525054;  // "BRPT"
/// Fixed location of the serialized report: the top 4 KiB of SRAM — memory
/// BL1 owns, clear of any load-list deployment destination in DDR.
inline constexpr std::uint64_t kBootReportAddr =
    MemoryMap::kSramBase + MemoryMap::kSramSize - 0x1000;

/// Parses + CRC-checks a serialized boot report (what next-stage software
/// does after the BL2 handoff).
Result<BootReport> parse_boot_report(std::span<const std::uint8_t> data);

struct BootResult {
  BootStage reached = BootStage::kBl0;
  Status status;
  BootReport report;
  std::uint64_t bl0_cycles = 0;
  std::uint64_t bl1_cycles = 0;
  std::uint64_t bl2_cycles = 0;
};

/// The test/bench environment: devices the chain runs against.
struct BootEnvironment {
  Soc soc;
  FlashBank flash;
  SpaceWireLink spacewire;

  explicit BootEnvironment(unsigned flash_replicas = 3,
                           double spw_bit_error_rate = 0.0)
      : flash(2 * 1024 * 1024, flash_replicas),
        spacewire(SpwTiming{}, spw_bit_error_rate) {}

  /// Wires one injector into every boot-chain device, including the eFPGA
  /// configuration port.
  void attach_injector(fault::FaultInjector* injector) {
    flash.attach_injector(injector);
    spacewire.attach_injector(injector);
    soc.attach_injector(injector);
  }
};

/// Stages a bootable configuration: writes the BL1 image, load list and all
/// payload images into flash (at FlashLayout offsets) and hosts the same
/// objects on the SpaceWire endpoint. `images` must be parallel to
/// `list.entries` (entry.source_offset/size/digest are filled in here).
void stage_boot_media(BootEnvironment& env,
                      std::span<const std::uint8_t> bl1_image, LoadList& list,
                      const std::vector<std::vector<std::uint8_t>>& images);

/// Runs BL0 -> BL1 -> BL2. Returns how far the chain got and why it
/// stopped; a corrupted image is never deployed or branched to.
BootResult run_boot_chain(BootEnvironment& env, const BootOptions& options = {});

}  // namespace hermes::boot
