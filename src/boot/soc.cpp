#include "boot/soc.hpp"

#include <cstring>

#include "common/backoff.hpp"
#include "common/strings.hpp"

namespace hermes::boot {

Status Soc::resolve(std::uint64_t addr, std::uint64_t bytes, bool write,
                    CowMemory const** region, std::uint64_t* offset) const {
  const auto in = [&](std::uint64_t base, std::uint64_t size) {
    return addr >= base && addr + bytes <= base + size;
  };
  if (in(MemoryMap::kTcmBase, MemoryMap::kTcmSize)) {
    if (!tcm_enabled) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "TCM access before TCM initialization");
    }
    *region = &tcm_;
    *offset = addr - MemoryMap::kTcmBase;
  } else if (in(MemoryMap::kSramBase, MemoryMap::kSramSize)) {
    *region = &sram_;
    *offset = addr - MemoryMap::kSramBase;
  } else if (addr >= MemoryMap::kDdrBase &&
             addr + bytes <= MemoryMap::kDdrBase + ddr_.size()) {
    if (!ddr_ready) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "DDR access before controller initialization");
    }
    *region = &ddr_;
    *offset = addr - MemoryMap::kDdrBase;
  } else {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("access to unmapped address 0x%llx",
                                static_cast<unsigned long long>(addr)));
  }

  if (mpu_enabled) {
    bool allowed = false;
    for (const MpuRegion& mpu_region : mpu) {
      if (addr >= mpu_region.base &&
          addr + bytes <= mpu_region.base + mpu_region.size) {
        if (!write || mpu_region.writable) allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Status::Error(ErrorCode::kIsolationFault,
                           format("MPU forbids %s at 0x%llx",
                                  write ? "write" : "read",
                                  static_cast<unsigned long long>(addr)));
    }
  }
  return Status::Ok();
}

Status Soc::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
  CowMemory const* region = nullptr;
  std::uint64_t offset = 0;
  Status status = resolve(addr, data.size(), /*write=*/true, &region, &offset);
  if (!status.ok()) return status;
  const_cast<CowMemory*>(region)->write(offset, data);
  return Status::Ok();
}

Status Soc::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
  CowMemory const* region = nullptr;
  std::uint64_t offset = 0;
  Status status = resolve(addr, out.size(), /*write=*/false, &region, &offset);
  if (!status.ok()) return status;
  region->read(offset, out);
  return Status::Ok();
}

SocSnapshot Soc::snapshot() const {
  auto frozen = std::make_shared<Soc>(*this);
  // Injection and FDIR wiring are per-instance: the frozen image must not
  // dangle into an injector or event bus the snapshot outlives.
  frozen->injector_ = nullptr;
  frozen->fdir_ = nullptr;
  frozen->pt_header_corrupt_ = fault::kNoFaultPoint;
  frozen->pt_frame_corrupt_ = fault::kNoFaultPoint;
  frozen->pt_frame_drop_ = fault::kNoFaultPoint;
  frozen->pt_config_rot_ = fault::kNoFaultPoint;
  SocSnapshot snapshot;
  snapshot.state_ = std::move(frozen);
  return snapshot;
}

Soc Soc::fork(const SocSnapshot& snapshot) {
  if (!snapshot.valid()) return Soc();
  return *snapshot.state_;  // page tables copied, pages shared
}

Soc Soc::fork(const SocSnapshot& snapshot, fault::FaultInjector& injector,
              fault::FaultPlan plan, std::uint64_t seed) {
  injector.load_plan(fault::reseeded(std::move(plan), seed));
  Soc forked = fork(snapshot);
  forked.attach_injector(&injector);
  return forked;
}

fault::ScrubMemory& Soc::mutable_efpga_config() {
  if (efpga_config_.use_count() > 1) {
    efpga_config_ = std::make_shared<fault::ScrubMemory>(*efpga_config_);
  }
  return *efpga_config_;
}

void Soc::attach_injector(fault::FaultInjector* injector) {
  injector_ = injector;
  if (!injector_) return;
  pt_header_corrupt_ = injector_->register_point("efpga.prog.header.corrupt");
  pt_frame_corrupt_ = injector_->register_point("efpga.prog.frame.corrupt");
  pt_frame_drop_ = injector_->register_point("efpga.prog.frame.drop");
  pt_config_rot_ = injector_->register_point("efpga.config.rot");
}

Status Soc::program_efpga(std::span<const std::uint8_t> bitstream) {
  // Integrity gate: a corrupt image is rejected before touching the port.
  auto parsed = nx::parse_bitstream(bitstream);
  if (!parsed.ok()) return parsed.status();
  const nx::ParsedBitstream& image = parsed.value();

  // Header programming: write the three header words, read them back, and
  // re-write on mismatch — in-flight corruption must never install a wrong
  // device id or frame count.
  const std::uint32_t header[3] = {
      nx::kBitstreamMagic, image.device_id,
      static_cast<std::uint32_t>(image.frames.size())};
  bool header_ok = false;
  for (unsigned attempt = 0; attempt <= efpga_cfg.rewrite_budget; ++attempt) {
    if (attempt > 0) {
      charge(backoff_cycles(efpga_cfg.rewrite_backoff_cycles, attempt - 1));
      ++efpga_stats_.header_rewrites;
      if (fdir_) {
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kRetried,
                        ErrorCode::kIntegrityError, /*detail=*/0, cycles});
      }
    }
    std::uint32_t written[3] = {header[0], header[1], header[2]};
    charge(2 * 3 * efpga_cfg.cycles_per_word);  // write + readback
    if (injector_ && injector_->should_fire(pt_header_corrupt_)) {
      const auto idx =
          static_cast<std::size_t>(injector_->rand_below(pt_header_corrupt_, 3));
      written[idx] = static_cast<std::uint32_t>(
          injector_->mutate_word(pt_header_corrupt_, written[idx], 32));
    }
    if (written[0] == header[0] && written[1] == header[1] &&
        written[2] == header[2]) {
      header_ok = true;
      break;
    }
  }
  if (!header_ok) {
    ++efpga_stats_.prog_failures;
    if (fdir_) {
      fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kExhausted,
                      ErrorCode::kDeadlineExceeded, /*detail=*/0, cycles});
    }
    // The re-write budget is a bounded wait: exhausting it is a deadline
    // expiry, not an internal defect.
    return Status::Error(ErrorCode::kDeadlineExceeded,
                         format("eFPGA header programming failed after %u "
                                "re-writes",
                                efpga_cfg.rewrite_budget));
  }

  // Frame programming into a staging configuration memory: the active
  // configuration is only replaced once every frame passed its readback, so
  // a failed update never disturbs a running accelerator.
  fault::ScrubMemory staging(image.total_words(), fault::Protection::kEdac);
  std::vector<EfpgaFrameDir> dir;
  dir.reserve(image.frames.size());
  std::size_t offset = 0;
  for (std::size_t f = 0; f < image.frames.size(); ++f) {
    const nx::BitstreamFrame& frame = image.frames[f];
    bool frame_ok = false;
    for (unsigned attempt = 0; attempt <= efpga_cfg.rewrite_budget; ++attempt) {
      if (attempt > 0) {
        charge(backoff_cycles(efpga_cfg.rewrite_backoff_cycles, attempt - 1));
        ++efpga_stats_.frame_rewrites;
        if (fdir_) {
          fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kRetried,
                          ErrorCode::kIntegrityError,
                          static_cast<std::uint32_t>(f), cycles});
        }
      }
      // Write pass. A dropped frame never reaches the array; a corrupted one
      // lands with a flipped word — both are caught by the CRC readback.
      const bool dropped =
          injector_ && injector_->should_fire(pt_frame_drop_);
      charge(frame.words.size() * efpga_cfg.cycles_per_word);
      if (!dropped) {
        std::vector<std::uint32_t> in_flight = frame.words;
        if (injector_ && !in_flight.empty() &&
            injector_->should_fire(pt_frame_corrupt_)) {
          const auto idx = static_cast<std::size_t>(
              injector_->rand_below(pt_frame_corrupt_, in_flight.size()));
          in_flight[idx] = static_cast<std::uint32_t>(
              injector_->mutate_word(pt_frame_corrupt_, in_flight[idx], 32));
        }
        for (std::size_t w = 0; w < in_flight.size(); ++w) {
          staging.write(offset + w, in_flight[w]);
        }
      }
      // Readback: recompute the frame CRC from what the array actually holds.
      std::vector<std::uint32_t> readback(frame.words.size());
      for (std::size_t w = 0; w < readback.size(); ++w) {
        readback[w] = staging.read(offset + w);
      }
      charge(readback.size() * efpga_cfg.cycles_per_word);
      if (nx::frame_crc(frame.column, readback) == frame.crc) {
        frame_ok = true;
        break;
      }
      ++efpga_stats_.frame_crc_mismatches;
    }
    if (!frame_ok) {
      ++efpga_stats_.prog_failures;
      if (fdir_) {
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kExhausted,
                        ErrorCode::kDeadlineExceeded,
                        static_cast<std::uint32_t>(f), cycles});
      }
      return Status::Error(
          ErrorCode::kDeadlineExceeded,
          format("eFPGA frame %zu (column %u) programming failed after %u "
                 "re-writes",
                 f, frame.column, efpga_cfg.rewrite_budget));
    }
    ++efpga_stats_.frames_programmed;
    dir.push_back({frame.column, offset, frame.words.size(), frame.crc});
    offset += frame.words.size();
  }

  // Commit: swap in the fully verified configuration.
  charge(256);  // port finalization
  efpga_config_ = std::make_shared<fault::ScrubMemory>(std::move(staging));
  efpga_dir_ = std::move(dir);
  efpga_programmed = true;
  efpga_device_id = image.device_id;
  efpga_frames = static_cast<unsigned>(image.frames.size());
  return Status::Ok();
}

std::uint64_t Soc::scrub_efpga() {
  if (!efpga_programmed || !efpga_config_) return 0;
  // Scrubbing mutates the configuration in place; detach from any snapshot
  // or fork still sharing it before the first rot/repair.
  fault::ScrubMemory& config = mutable_efpga_config();
  ++efpga_stats_.scrub_passes;
  std::uint64_t repaired_words = 0;
  for (std::size_t f = 0; f < efpga_dir_.size(); ++f) {
    const EfpgaFrameDir& frame = efpga_dir_[f];
    if (frame.words == 0) continue;
    // One rot opportunity per frame per pass: 1 flip is an EDAC-correctable
    // upset, 2 distinct flips in the same word are detected-uncorrectable
    // (SECDED), forcing the frame re-program rung of the ladder.
    if (injector_ && injector_->should_fire(pt_config_rot_)) {
      const std::size_t word =
          frame.offset + static_cast<std::size_t>(
                             injector_->rand_below(pt_config_rot_, frame.words));
      const unsigned width = config.codeword_bits();
      const auto b1 = static_cast<unsigned>(
          injector_->rand_below(pt_config_rot_, width));
      config.flip_raw_bit(word, b1);
      if (injector_->rand_below(pt_config_rot_, 2) == 0) {
        unsigned b2 = b1;
        while (b2 == b1) {
          b2 = static_cast<unsigned>(
              injector_->rand_below(pt_config_rot_, width));
        }
        config.flip_raw_bit(word, b2);
      }
    }
    charge(frame.words * efpga_cfg.cycles_per_word);  // readback scrub
    const fault::ScrubReport report = config.scrub_range(
        frame.offset, frame.offset + frame.words, /*repair_uncorrectable=*/true);
    efpga_stats_.scrub_corrected += report.corrected;
    efpga_stats_.scrub_uncorrectable += report.detected_uncorrectable;
    efpga_stats_.scrub_silent += report.silent_corruptions;
    if (report.repaired > 0) {
      // Frame re-program from the retained configuration source.
      ++efpga_stats_.frames_reprogrammed;
      charge(frame.words * efpga_cfg.cycles_per_word);
    }
    if (fdir_) {
      const auto detail = static_cast<std::uint32_t>(f);
      if (report.corrected > 0) {
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kCorrected,
                        ErrorCode::kOk, detail, cycles});
      }
      if (report.detected_uncorrectable > 0) {
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kUncorrectable,
                        ErrorCode::kIntegrityError, detail, cycles});
      }
      if (report.repaired > 0) {
        // The frame re-program rung: a retry at frame granularity.
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kRetried,
                        ErrorCode::kIntegrityError, detail, cycles});
      }
      if (report.silent_corruptions > 0) {
        fdir_->publish({fdir::Layer::kEfpga, fdir::Severity::kExhausted,
                        ErrorCode::kIntegrityError, detail, cycles});
      }
    }
    repaired_words += report.corrected + report.repaired;
  }
  return repaired_words;
}

std::uint64_t Soc::efpga_config_digest() const {
  std::uint64_t hash = 14695981039346656037ULL;
  const auto mix = [&hash](std::uint64_t value) {
    hash ^= value;
    hash *= 1099511628211ULL;
  };
  if (!efpga_config_) return hash;
  for (const EfpgaFrameDir& frame : efpga_dir_) {
    mix(frame.column);
    mix(frame.words);
    mix(frame.crc);
    for (std::size_t w = 0; w < frame.words; ++w) {
      mix(efpga_config_->read(frame.offset + w));
    }
  }
  return hash;
}

}  // namespace hermes::boot
