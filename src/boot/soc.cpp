#include "boot/soc.hpp"

#include <cstring>

#include "common/strings.hpp"

namespace hermes::boot {

Status Soc::resolve(std::uint64_t addr, std::uint64_t bytes, bool write,
                    std::vector<std::uint8_t> const** region,
                    std::uint64_t* offset) const {
  const auto in = [&](std::uint64_t base, std::uint64_t size) {
    return addr >= base && addr + bytes <= base + size;
  };
  if (in(MemoryMap::kTcmBase, MemoryMap::kTcmSize)) {
    if (!tcm_enabled) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "TCM access before TCM initialization");
    }
    *region = &tcm_;
    *offset = addr - MemoryMap::kTcmBase;
  } else if (in(MemoryMap::kSramBase, MemoryMap::kSramSize)) {
    *region = &sram_;
    *offset = addr - MemoryMap::kSramBase;
  } else if (addr >= MemoryMap::kDdrBase &&
             addr + bytes <= MemoryMap::kDdrBase + ddr_.size()) {
    if (!ddr_ready) {
      return Status::Error(ErrorCode::kInvalidArgument,
                           "DDR access before controller initialization");
    }
    *region = &ddr_;
    *offset = addr - MemoryMap::kDdrBase;
  } else {
    return Status::Error(ErrorCode::kInvalidArgument,
                         format("access to unmapped address 0x%llx",
                                static_cast<unsigned long long>(addr)));
  }

  if (mpu_enabled) {
    bool allowed = false;
    for (const MpuRegion& mpu_region : mpu) {
      if (addr >= mpu_region.base &&
          addr + bytes <= mpu_region.base + mpu_region.size) {
        if (!write || mpu_region.writable) allowed = true;
        break;
      }
    }
    if (!allowed) {
      return Status::Error(ErrorCode::kIsolationFault,
                           format("MPU forbids %s at 0x%llx",
                                  write ? "write" : "read",
                                  static_cast<unsigned long long>(addr)));
    }
  }
  return Status::Ok();
}

Status Soc::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
  std::vector<std::uint8_t> const* region = nullptr;
  std::uint64_t offset = 0;
  Status status = resolve(addr, data.size(), /*write=*/true, &region, &offset);
  if (!status.ok()) return status;
  std::memcpy(const_cast<std::uint8_t*>(region->data()) + offset, data.data(),
              data.size());
  return Status::Ok();
}

Status Soc::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
  std::vector<std::uint8_t> const* region = nullptr;
  std::uint64_t offset = 0;
  Status status = resolve(addr, out.size(), /*write=*/false, &region, &offset);
  if (!status.ok()) return status;
  std::memcpy(out.data(), region->data() + offset, out.size());
  return Status::Ok();
}

Status Soc::program_efpga(std::span<const std::uint8_t> bitstream) {
  auto info = nx::verify_bitstream(bitstream);
  if (!info.ok()) return info.status();
  // Configuration port throughput: ~1 word per cycle.
  charge(bitstream.size() / 4 + 256);
  efpga_programmed = true;
  efpga_device_id = info.value().device_id;
  efpga_frames = info.value().frames;
  return Status::Ok();
}

}  // namespace hermes::boot
