// Boot flash device model.
//
// BL1 manages "basic redundancy for software components stored in Flash
// (either through TMR or through sequential accesses to multiple hardware
// Flash components)" (HERMES, Sec. IV). The model provides byte-accurate
// NOR-flash-like devices with read timing and radiation bit-flip injection,
// plus a redundant bank (1 or 3 devices) with TMR-voted reads.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "fault/injector.hpp"

namespace hermes::boot {

struct FlashTiming {
  unsigned setup_cycles = 12;    ///< per-command overhead
  unsigned cycles_per_word = 4;  ///< 32-bit word read
};

class FlashDevice {
 public:
  explicit FlashDevice(std::size_t bytes, FlashTiming timing = {})
      : store_(bytes, 0xFF), timing_(timing) {}

  [[nodiscard]] std::size_t size() const { return store_.size(); }

  void program(std::uint64_t addr, std::span<const std::uint8_t> data);
  /// Reads bytes; returns consumed device cycles.
  std::uint64_t read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Radiation: flips `count` random bits anywhere in the array.
  void inject_bitflips(std::size_t count, Rng& rng);

  [[nodiscard]] std::uint8_t peek(std::uint64_t addr) const {
    return addr < store_.size() ? store_[addr] : 0xFF;
  }

 private:
  std::vector<std::uint8_t> store_;
  FlashTiming timing_;
};

/// A bank of 1 or 3 flash devices storing identical images. Reads from a
/// 3-device bank are bitwise TMR-voted; corrections are counted.
class FlashBank {
 public:
  /// `replicas` must be 1 or 3.
  FlashBank(std::size_t bytes, unsigned replicas, FlashTiming timing = {});

  /// Registers this bank's injection points ("flash.rot.replica" rots one
  /// TMR copy's read data — the vote masks it; "flash.rot.voted" rots the
  /// post-vote data — only an integrity check above can catch it).
  void attach_injector(fault::FaultInjector* injector);

  [[nodiscard]] unsigned replicas() const {
    return static_cast<unsigned>(devices_.size());
  }
  [[nodiscard]] std::size_t size() const { return devices_[0].size(); }

  /// Programs all replicas.
  void program(std::uint64_t addr, std::span<const std::uint8_t> data);

  struct ReadResult {
    std::uint64_t cycles = 0;
    std::uint64_t corrected_bytes = 0;  ///< TMR vote disagreements fixed
  };
  ReadResult read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Reads one replica without voting — the BL1 per-copy recovery scan uses
  /// this to find an intact image when the bitwise vote itself is poisoned.
  std::uint64_t read_replica(unsigned index, std::uint64_t addr,
                             std::span<std::uint8_t> out) const {
    return devices_.at(index).read(addr, out);
  }

  FlashDevice& device(unsigned index) { return devices_.at(index); }

 private:
  std::vector<FlashDevice> devices_;
  fault::FaultInjector* injector_ = nullptr;
  fault::PointId pt_rot_replica_ = fault::kNoFaultPoint;
  fault::PointId pt_rot_voted_ = fault::kNoFaultPoint;
};

}  // namespace hermes::boot
