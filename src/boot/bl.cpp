#include "boot/bl.hpp"

#include <cstring>
#include <sstream>

#include "common/crc.hpp"
#include "common/strings.hpp"

namespace hermes::boot {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t o) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(d[o + i]) << (8 * i);
  return v;
}

/// Step cycle budgets (reference values for the NG-ULTRA bring-up).
constexpr std::uint64_t kCyclesInitCpu0 = 500;
constexpr std::uint64_t kCyclesInitPll = 2'000;
constexpr std::uint64_t kCyclesInitDdr = 8'000;
constexpr std::uint64_t kCyclesInitFlashCtrl = 1'000;
constexpr std::uint64_t kCyclesInitSpw = 1'500;
constexpr std::uint64_t kCyclesInitTcm = 300;
constexpr std::uint64_t kCyclesInitMpu = 200;
constexpr std::uint64_t kCyclesPerShaByte = 1;  ///< software SHA-256 ~1 B/cycle

}  // namespace

const char* to_string(BootSource source) {
  return source == BootSource::kFlash ? "flash" : "spacewire";
}

const char* to_string(BootStage stage) {
  switch (stage) {
    case BootStage::kBl0: return "BL0";
    case BootStage::kBl1: return "BL1";
    case BootStage::kBl2: return "BL2";
    case BootStage::kApplication: return "application";
  }
  return "?";
}

std::vector<std::uint8_t> BootReport::serialize() const {
  std::vector<std::uint8_t> out;
  auto put_u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put_u32(out, kBootReportMagic);
  put_u32(out, static_cast<std::uint32_t>(steps.size()));
  put_u64(total_cycles);
  put_u64(flash_corrected_bytes);
  put_u64(spw_crc_errors);
  put_u64(integrity_retries);
  put_u64(spw_fallbacks);
  put_u64(efpga_frame_rewrites);
  put_u64(efpga_scrub_corrections);
  for (const StepRecord& step : steps) {
    char name[24] = {0};
    for (std::size_t i = 0; i < step.name.size() && i < 23; ++i) {
      name[i] = step.name[i];
    }
    out.insert(out.end(), name, name + 24);
    out.push_back(step.ok ? 1 : 0);
    put_u64(step.cycles);
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Result<BootReport> parse_boot_report(std::span<const std::uint8_t> data) {
  auto get_u64 = [&data](std::size_t o) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[o + i]) << (8 * i);
    return v;
  };
  if (data.size() < 68) {
    return Status::Error(ErrorCode::kIntegrityError, "boot report truncated");
  }
  if (get_u32(data, 0) != kBootReportMagic) {
    return Status::Error(ErrorCode::kIntegrityError, "bad boot-report magic");
  }
  const std::uint32_t count = get_u32(data, 4);
  const std::size_t expected = 64 + static_cast<std::size_t>(count) * 33 + 4;
  if (data.size() < expected) {
    return Status::Error(ErrorCode::kIntegrityError, "boot report truncated");
  }
  if (crc32(data.data(), expected - 4) != get_u32(data, expected - 4)) {
    return Status::Error(ErrorCode::kIntegrityError, "boot-report CRC mismatch");
  }
  BootReport report;
  report.total_cycles = get_u64(8);
  report.flash_corrected_bytes = get_u64(16);
  report.spw_crc_errors = get_u64(24);
  report.integrity_retries = get_u64(32);
  report.spw_fallbacks = get_u64(40);
  report.efpga_frame_rewrites = get_u64(48);
  report.efpga_scrub_corrections = get_u64(56);
  std::size_t offset = 64;
  for (std::uint32_t i = 0; i < count; ++i) {
    StepRecord step;
    const char* name = reinterpret_cast<const char*>(data.data() + offset);
    step.name.assign(name, strnlen(name, 23));
    step.ok = data[offset + 24] != 0;
    step.cycles = get_u64(offset + 25);
    report.steps.push_back(std::move(step));
    offset += 33;
  }
  return report;
}

std::string BootReport::render() const {
  std::ostringstream out;
  out << "=== BL1 boot report ===\n";
  for (const StepRecord& step : steps) {
    out << format("  [%s] %-28s %8llu cycles", step.ok ? "OK" : "FAIL",
                  step.name.c_str(),
                  static_cast<unsigned long long>(step.cycles));
    if (!step.detail.empty()) out << "  " << step.detail;
    out << '\n';
  }
  out << format("  total %llu cycles; flash TMR corrections %llu B; "
                "SpW CRC errors %llu; integrity retries %llu; "
                "SpW fallbacks %llu\n",
                static_cast<unsigned long long>(total_cycles),
                static_cast<unsigned long long>(flash_corrected_bytes),
                static_cast<unsigned long long>(spw_crc_errors),
                static_cast<unsigned long long>(integrity_retries),
                static_cast<unsigned long long>(spw_fallbacks));
  out << format("  eFPGA frame re-writes %llu; config scrub corrections %llu\n",
                static_cast<unsigned long long>(efpga_frame_rewrites),
                static_cast<unsigned long long>(efpga_scrub_corrections));
  return out.str();
}

void stage_boot_media(BootEnvironment& env,
                      std::span<const std::uint8_t> bl1_image, LoadList& list,
                      const std::vector<std::vector<std::uint8_t>>& images) {
  // BL1 header: magic, size, crc over the image.
  std::vector<std::uint8_t> header;
  put_u32(header, kBl1Magic);
  put_u32(header, static_cast<std::uint32_t>(bl1_image.size()));
  put_u32(header, crc32(bl1_image));
  env.flash.program(FlashLayout::kBl1Header, header);
  env.flash.program(FlashLayout::kBl1Image, bl1_image);

  // SpaceWire hosts the BL1 image with the same header+image framing.
  std::vector<std::uint8_t> spw_bl1 = header;
  spw_bl1.insert(spw_bl1.end(), bl1_image.begin(), bl1_image.end());
  env.spacewire.host_object("bl1", spw_bl1);

  // Payload images at increasing offsets.
  std::uint64_t offset = FlashLayout::kImages;
  for (std::size_t i = 0; i < list.entries.size() && i < images.size(); ++i) {
    LoadEntry& entry = list.entries[i];
    entry.source_offset = offset;
    entry.size = images[i].size();
    entry.digest = sha256(images[i]);
    env.flash.program(offset, images[i]);
    env.spacewire.host_object(entry.name, images[i]);
    offset += (images[i].size() + 255) & ~255ULL;
  }

  const std::vector<std::uint8_t> list_bytes = serialize(list);
  env.flash.program(FlashLayout::kLoadList, list_bytes);
  env.spacewire.host_object("loadlist", list_bytes);
}

namespace {

/// BL0: hard-coded eROM loader (developed in DAHLIA; modeled here because
/// the chain cannot run without it). Fetches BL1 from flash or SpaceWire,
/// checks its CRC, "copies it to SRAM" and branches.
Status run_bl0(BootEnvironment& env, const BootOptions& options,
               BootResult& result) {
  const std::uint64_t start_cycles = env.soc.cycles;
  env.soc.cpu0_initialized = true;  // minimal eROM setup
  env.soc.charge(kCyclesInitCpu0 / 2);

  auto try_flash = [&]() -> Status {
    std::uint8_t header[12];
    const FlashBank::ReadResult h =
        env.flash.read(FlashLayout::kBl1Header, header);
    env.soc.charge(h.cycles);
    result.report.flash_corrected_bytes += h.corrected_bytes;
    if (get_u32(header, 0) != kBl1Magic) {
      return Status::Error(ErrorCode::kIntegrityError, "BL1 header magic bad");
    }
    const std::uint32_t size = get_u32(header, 4);
    const std::uint32_t crc = get_u32(header, 8);
    if (size == 0 || size > MemoryMap::kSramSize) {
      return Status::Error(ErrorCode::kIntegrityError, "BL1 size implausible");
    }
    std::vector<std::uint8_t> image(size);
    const FlashBank::ReadResult r = env.flash.read(FlashLayout::kBl1Image, image);
    env.soc.charge(r.cycles);
    result.report.flash_corrected_bytes += r.corrected_bytes;
    if (crc32(image.data(), image.size()) != crc) {
      return Status::Error(ErrorCode::kIntegrityError, "BL1 image CRC mismatch");
    }
    return env.soc.write_bytes(MemoryMap::kSramBase, image);
  };

  auto try_spacewire = [&]() -> Status {
    std::uint64_t cycles = 0;
    auto fetched = env.spacewire.fetch("bl1", cycles);
    env.soc.charge(cycles);
    if (!fetched.ok()) return fetched.status();
    const auto& data = fetched.value();
    if (data.size() < 12 || get_u32(data, 0) != kBl1Magic) {
      return Status::Error(ErrorCode::kIntegrityError, "remote BL1 header bad");
    }
    const std::uint32_t size = get_u32(data, 4);
    const std::uint32_t crc = get_u32(data, 8);
    if (data.size() < 12 + size) {
      return Status::Error(ErrorCode::kIntegrityError, "remote BL1 truncated");
    }
    std::vector<std::uint8_t> image(data.begin() + 12, data.begin() + 12 + size);
    if (crc32(image.data(), image.size()) != crc) {
      return Status::Error(ErrorCode::kIntegrityError, "remote BL1 CRC mismatch");
    }
    return env.soc.write_bytes(MemoryMap::kSramBase, image);
  };

  Status status;
  if (options.bl1_source == BootSource::kFlash) {
    status = try_flash();
    if (!status.ok() && options.spacewire_fallback) {
      ++result.report.spw_fallbacks;
      status = try_spacewire();
    }
  } else {
    status = try_spacewire();
    if (!status.ok() && options.spacewire_fallback) {
      status = try_flash();
    }
  }
  result.bl0_cycles = env.soc.cycles - start_cycles;
  return status;
}

/// BL1 main: hardware bring-up, load-list processing, boot report.
Status run_bl1(BootEnvironment& env, const BootOptions& options,
               BootResult& result) {
  const std::uint64_t start_cycles = env.soc.cycles;
  BootReport& report = result.report;

  auto step = [&](const char* name, std::uint64_t cycles, Status status,
                  std::string detail = {}) {
    env.soc.charge(cycles);
    report.steps.push_back({name, status.ok(), cycles,
                            status.ok() ? std::move(detail)
                                        : status.to_string()});
    return status;
  };

  // --- mandatory hardware initialization (Fig. 5 / Sec. IV list) ---
  env.soc.cpu0_initialized = true;
  step("init_cpu0_regs_caches_exc", kCyclesInitCpu0, Status::Ok());
  env.soc.pll_locked = true;
  step("init_clock_plls", kCyclesInitPll, Status::Ok());
  env.soc.ddr_ready = true;
  step("init_ddr_controller", kCyclesInitDdr, Status::Ok());
  env.soc.flash_ready = true;
  step("init_flash_controller", kCyclesInitFlashCtrl, Status::Ok());
  env.soc.spw_ready = true;
  step("init_spacewire_controller", kCyclesInitSpw, Status::Ok());
  env.soc.tcm_enabled = true;
  step("init_tightly_coupled_memories", kCyclesInitTcm, Status::Ok());

  env.soc.mpu = {
      {MemoryMap::kTcmBase, MemoryMap::kTcmSize, true},
      {MemoryMap::kSramBase, MemoryMap::kSramSize, true},
      {MemoryMap::kDdrBase, env.soc.ddr_size(), true},
  };
  env.soc.mpu_enabled = true;
  step("init_mpu", kCyclesInitMpu, Status::Ok(),
       format("%zu regions", env.soc.mpu.size()));

  // --- load-list acquisition ---
  std::vector<std::uint8_t> list_bytes;
  Status acquire_status;
  if (options.loadlist_source == BootSource::kFlash) {
    // The list size is unknown a priori: read a generous window; parse
    // validates the exact layout. (Real BL1 reads a fixed-size slot.)
    list_bytes.resize(8 * 1024);
    const FlashBank::ReadResult r =
        env.flash.read(FlashLayout::kLoadList, list_bytes);
    env.soc.charge(r.cycles);
    report.flash_corrected_bytes += r.corrected_bytes;
    // Trim to the self-described size: magic+count header.
    if (list_bytes.size() >= 8 && get_u32(list_bytes, 0) == kLoadListMagic) {
      const std::uint32_t count = get_u32(list_bytes, 4);
      const std::size_t expected = 8 + static_cast<std::size_t>(count) * 73 + 4;
      if (expected <= list_bytes.size()) list_bytes.resize(expected);
    }
    acquire_status = Status::Ok();
  } else {
    std::uint64_t cycles = 0;
    auto fetched = env.spacewire.fetch("loadlist", cycles);
    env.soc.charge(cycles);
    if (fetched.ok()) {
      list_bytes = fetched.take();
      acquire_status = Status::Ok();
    } else {
      acquire_status = fetched.status();
    }
  }
  auto parsed = acquire_status.ok()
                    ? parse_load_list(list_bytes)
                    : Result<LoadList>(acquire_status);
  if (!parsed.ok() && options.loadlist_source == BootSource::kFlash &&
      options.spacewire_fallback) {
    ++report.integrity_retries;
    ++report.spw_fallbacks;
    std::uint64_t cycles = 0;
    auto fetched = env.spacewire.fetch("loadlist", cycles);
    env.soc.charge(cycles);
    if (fetched.ok()) parsed = parse_load_list(fetched.value());
  }
  if (!parsed.ok()) {
    step("acquire_load_list", 0, parsed.status());
    return parsed.status();
  }
  const LoadList list = parsed.take();
  step("acquire_load_list", 0, Status::Ok(),
       format("%zu entries via %s", list.entries.size(),
              to_string(options.loadlist_source)));

  // --- entry deployment with integrity management ---
  for (const LoadEntry& entry : list.entries) {
    auto fetch_image = [&](bool via_spw) -> Result<std::vector<std::uint8_t>> {
      if (!via_spw) {
        std::vector<std::uint8_t> image(entry.size);
        const FlashBank::ReadResult r = env.flash.read(entry.source_offset, image);
        env.soc.charge(r.cycles);
        report.flash_corrected_bytes += r.corrected_bytes;
        return image;
      }
      std::uint64_t cycles = 0;
      auto fetched = env.spacewire.fetch(entry.name, cycles);
      env.soc.charge(cycles);
      return fetched;
    };

    bool via_spw = options.loadlist_source == BootSource::kSpaceWire;
    auto image = fetch_image(via_spw);
    // Integrity check: SHA-256 against the load-list digest.
    auto verify = [&](const std::vector<std::uint8_t>& data) {
      env.soc.charge(data.size() * kCyclesPerShaByte);
      return data.size() == entry.size && sha256(data) == entry.digest;
    };
    bool ok = image.ok() && verify(image.value());
    if (!ok) {
      // Recovery ladder: voted re-read (TMR may fix transients), then a
      // per-replica digest scan (finds an intact copy when the voted stream
      // itself is rotten), then SpaceWire. Every rung lands in the report.
      ++report.integrity_retries;
      image = fetch_image(via_spw);
      ok = image.ok() && verify(image.value());
      if (ok) {
        step(("recover " + entry.name).c_str(), 0, Status::Ok(),
             "voted flash re-read");
      }
      if (!ok && !via_spw) {
        for (unsigned r = 0; r < env.flash.replicas() && !ok; ++r) {
          ++report.integrity_retries;
          std::vector<std::uint8_t> copy(entry.size);
          env.soc.charge(env.flash.read_replica(r, entry.source_offset, copy));
          if (verify(copy)) {
            image = std::move(copy);
            ok = true;
            step(("recover " + entry.name).c_str(), 0, Status::Ok(),
                 format("replica %u digest scan", r));
          }
        }
      }
      if (!ok && options.spacewire_fallback && !via_spw) {
        ++report.integrity_retries;
        ++report.spw_fallbacks;
        image = fetch_image(true);
        ok = image.ok() && verify(image.value());
        if (ok) {
          step(("recover " + entry.name).c_str(), 0, Status::Ok(),
               "SpaceWire fallback");
        }
      }
    }
    if (!ok) {
      const Status failure =
          Status::Error(ErrorCode::kIntegrityError,
                        format("image '%s' failed integrity verification",
                               entry.name.c_str()));
      step(("deploy " + entry.name).c_str(), 0, failure);
      return failure;  // a corrupted image is never deployed
    }

    Status deploy;
    switch (entry.kind) {
      case LoadKind::kBitstream:
        deploy = env.soc.program_efpga(image.value());
        break;
      case LoadKind::kSoftware:
      case LoadKind::kBl2:
        deploy = env.soc.write_bytes(entry.dest_addr, image.value());
        // Copy cost: ~4 bytes/cycle.
        env.soc.charge(entry.size / 4);
        break;
    }
    step(("deploy " + entry.name).c_str(), 0, deploy,
         format("%s, %llu bytes -> 0x%llx", to_string(entry.kind),
                static_cast<unsigned long long>(entry.size),
                static_cast<unsigned long long>(entry.dest_addr)));
    if (!deploy.ok()) return deploy;
  }

  // --- configuration-memory scrub (only when a bitstream was deployed) ---
  // One readback/scrub pass over the programmed eFPGA frames: single-bit
  // config-memory upsets are corrected, uncorrectable words force a frame
  // re-program from the retained configuration. Mission software re-runs
  // this periodically; BL1 runs the first pass before the handoff.
  if (env.soc.efpga_programmed) {
    // scrub_efpga charges its own cycles; the step records 0 extra.
    const std::uint64_t healed = env.soc.scrub_efpga();
    const EfpgaStats& efpga = env.soc.efpga_stats();
    step("scrub_efpga", 0, Status::Ok(),
         format("%llu words healed, %llu frames reprogrammed",
                static_cast<unsigned long long>(healed),
                static_cast<unsigned long long>(efpga.frames_reprogrammed)));
  }
  report.efpga_frame_rewrites = env.soc.efpga_stats().frame_rewrites +
                                env.soc.efpga_stats().header_rewrites;
  report.efpga_scrub_corrections = env.soc.efpga_stats().scrub_corrected +
                                   env.soc.efpga_stats().frames_reprogrammed;

  result.bl1_cycles = env.soc.cycles - start_cycles;
  report.spw_crc_errors = env.spacewire.crc_errors_detected();
  return Status::Ok();
}

/// BL2 / application stage: verify the branch target exists and release the
/// remaining cores ("deploy itself on all the available processor cores").
Status run_bl2(BootEnvironment& env, const LoadList& list, BootResult& result) {
  const std::uint64_t start_cycles = env.soc.cycles;
  const LoadEntry* bl2 = nullptr;
  for (const LoadEntry& entry : list.entries) {
    if (entry.kind == LoadKind::kBl2) bl2 = &entry;
  }
  if (!bl2) {
    return Status::Error(ErrorCode::kNotFound, "no BL2 entry in the load list");
  }
  // Re-hash the deployed bytes: the branch target must be exactly what the
  // load list promised.
  std::vector<std::uint8_t> deployed(bl2->size);
  Status read = env.soc.read_bytes(bl2->dest_addr, deployed);
  if (!read.ok()) return read;
  env.soc.charge(deployed.size() * kCyclesPerShaByte);
  if (sha256(deployed) != bl2->digest) {
    return Status::Error(ErrorCode::kIntegrityError,
                         "BL2 bytes in memory do not match the manifest");
  }
  env.soc.cores_released = hv::kNumCores;
  env.soc.charge(4 * kCyclesInitCpu0);
  result.bl2_cycles = env.soc.cycles - start_cycles;
  return Status::Ok();
}

}  // namespace

BootResult run_boot_chain(BootEnvironment& env, const BootOptions& options) {
  BootResult result;

  result.status = run_bl0(env, options, result);
  if (!result.status.ok()) {
    result.report.total_cycles = env.soc.cycles;
    return result;
  }
  result.reached = BootStage::kBl1;

  result.status = run_bl1(env, options, result);
  result.report.total_cycles = env.soc.cycles;
  if (!result.status.ok()) return result;
  result.reached = BootStage::kBl2;

  // "Generation of a BL1 boot report made available for next-stage
  // software": serialize it into DDR at the published address.
  const std::vector<std::uint8_t> serialized = result.report.serialize();
  (void)env.soc.write_bytes(kBootReportAddr, serialized);

  // Re-acquire the (already verified) list for the BL2 handoff check.
  std::vector<std::uint8_t> list_bytes(8 * 1024);
  env.flash.read(FlashLayout::kLoadList, list_bytes);
  if (list_bytes.size() >= 8 && get_u32(list_bytes, 0) == kLoadListMagic) {
    const std::uint32_t count = get_u32(list_bytes, 4);
    const std::size_t expected = 8 + static_cast<std::size_t>(count) * 73 + 4;
    if (expected <= list_bytes.size()) list_bytes.resize(expected);
  }
  auto list = parse_load_list(list_bytes);
  if (list.ok()) {
    result.status = run_bl2(env, list.value(), result);
  } else {
    // SpaceWire-only configurations keep the list remote.
    std::uint64_t cycles = 0;
    auto fetched = env.spacewire.fetch("loadlist", cycles);
    env.soc.charge(cycles);
    if (fetched.ok()) {
      auto remote = parse_load_list(fetched.value());
      result.status = remote.ok() ? run_bl2(env, remote.value(), result)
                                  : remote.status();
    } else {
      result.status = fetched.status();
    }
  }
  result.report.total_cycles = env.soc.cycles;
  if (result.status.ok()) result.reached = BootStage::kApplication;
  return result;
}

}  // namespace hermes::boot
