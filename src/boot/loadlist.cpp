#include "boot/loadlist.hpp"

#include <cstring>

#include "common/crc.hpp"
#include "common/strings.hpp"

namespace hermes::boot {
namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint32_t get_u32(std::span<const std::uint8_t> d, std::size_t o) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(d[o + i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(std::span<const std::uint8_t> d, std::size_t o) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[o + i]) << (8 * i);
  return v;
}

constexpr std::size_t kEntryBytes = 1 + 16 + 8 + 8 + 8 + 32;

}  // namespace

const char* to_string(LoadKind kind) {
  switch (kind) {
    case LoadKind::kSoftware: return "software";
    case LoadKind::kBitstream: return "bitstream";
    case LoadKind::kBl2: return "bl2";
  }
  return "?";
}

std::vector<std::uint8_t> serialize(const LoadList& list) {
  std::vector<std::uint8_t> out;
  put_u32(out, kLoadListMagic);
  put_u32(out, static_cast<std::uint32_t>(list.entries.size()));
  for (const LoadEntry& entry : list.entries) {
    out.push_back(static_cast<std::uint8_t>(entry.kind));
    char name[16] = {0};
    for (std::size_t i = 0; i < entry.name.size() && i < 15; ++i) {
      name[i] = entry.name[i];
    }
    out.insert(out.end(), name, name + 16);
    put_u64(out, entry.source_offset);
    put_u64(out, entry.size);
    put_u64(out, entry.dest_addr);
    out.insert(out.end(), entry.digest.begin(), entry.digest.end());
  }
  put_u32(out, crc32(out.data(), out.size()));
  return out;
}

Result<LoadList> parse_load_list(std::span<const std::uint8_t> data) {
  if (data.size() < 12) {
    return Status::Error(ErrorCode::kIntegrityError, "load list truncated");
  }
  if (get_u32(data, 0) != kLoadListMagic) {
    return Status::Error(ErrorCode::kIntegrityError, "bad load-list magic");
  }
  const std::uint32_t crc = get_u32(data, data.size() - 4);
  if (crc32(data.data(), data.size() - 4) != crc) {
    return Status::Error(ErrorCode::kIntegrityError, "load-list CRC mismatch");
  }
  const std::uint32_t count = get_u32(data, 4);
  if (8 + static_cast<std::size_t>(count) * kEntryBytes + 4 != data.size()) {
    return Status::Error(ErrorCode::kIntegrityError,
                         format("load list size inconsistent (%u entries)", count));
  }
  LoadList list;
  std::size_t offset = 8;
  for (std::uint32_t i = 0; i < count; ++i) {
    LoadEntry entry;
    const std::uint8_t kind = data[offset];
    if (kind < 1 || kind > 3) {
      return Status::Error(ErrorCode::kIntegrityError,
                           format("entry %u: bad kind %u", i, kind));
    }
    entry.kind = static_cast<LoadKind>(kind);
    const char* name = reinterpret_cast<const char*>(data.data() + offset + 1);
    entry.name.assign(name, strnlen(name, 15));
    entry.source_offset = get_u64(data, offset + 17);
    entry.size = get_u64(data, offset + 25);
    entry.dest_addr = get_u64(data, offset + 33);
    for (int b = 0; b < 32; ++b) entry.digest[b] = data[offset + 41 + b];
    list.entries.push_back(std::move(entry));
    offset += kEntryBytes;
  }
  return list;
}

LoadEntry make_entry(LoadKind kind, std::string name,
                     std::span<const std::uint8_t> image,
                     std::uint64_t source_offset, std::uint64_t dest_addr) {
  LoadEntry entry;
  entry.kind = kind;
  entry.name = std::move(name);
  entry.source_offset = source_offset;
  entry.size = image.size();
  entry.dest_addr = dest_addr;
  entry.digest = sha256(image);
  return entry;
}

}  // namespace hermes::boot
