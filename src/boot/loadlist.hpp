// Load-list format.
//
// BL1 processes "a load list ... describing a set of application software to
// be deployed to memory, and bitstream to be programmed in the eFPGA matrix"
// with "management of integrity of deployed software" (HERMES, Sec. IV).
// The binary format carries per-entry SHA-256 digests and a CRC-32-protected
// header, so a corrupted list or image is always detected before deployment.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/sha256.hpp"
#include "common/status.hpp"

namespace hermes::boot {

enum class LoadKind : std::uint8_t {
  kSoftware = 1,   ///< image copied to a RAM destination
  kBitstream = 2,  ///< image programmed into the eFPGA matrix
  kBl2 = 3,        ///< next boot stage (branched to after deployment)
};

const char* to_string(LoadKind kind);

struct LoadEntry {
  LoadKind kind = LoadKind::kSoftware;
  std::string name;             ///< <= 15 chars; SpaceWire object name too
  std::uint64_t source_offset = 0;  ///< byte offset in flash (flash boot)
  std::uint64_t size = 0;
  std::uint64_t dest_addr = 0;  ///< RAM destination (software / BL2)
  Sha256Digest digest{};        ///< integrity reference
};

struct LoadList {
  std::vector<LoadEntry> entries;
};

inline constexpr std::uint32_t kLoadListMagic = 0x4C4F4144;  // "LOAD"

/// Serializes with a CRC-32 trailer.
std::vector<std::uint8_t> serialize(const LoadList& list);

/// Parses + CRC-checks.
Result<LoadList> parse_load_list(std::span<const std::uint8_t> data);

/// Convenience: builds an entry with the digest of `image` filled in.
LoadEntry make_entry(LoadKind kind, std::string name,
                     std::span<const std::uint8_t> image,
                     std::uint64_t source_offset, std::uint64_t dest_addr);

}  // namespace hermes::boot
